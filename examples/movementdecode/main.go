// Movement-intent decoding on an implanted BCI: the paper's second
// motivating workload. Firing rates from a 96-electrode Utah array
// are mapped to a 2-D cursor velocity by a linear decoder — a
// matrix-vector product MVM(96,120) over a 120-dimensional feature
// vector — executed on the two-level memory machine with the tiling
// schedule of Section 4.3 at its minimum fast memory (Table 1:
// 99 words Equal, 126 words Double Accumulator).
//
// The example also shows the configuration flip the paper highlights:
// under Equal weights the scheduler keeps all 96 accumulators
// resident; under Double Accumulator it pins the 120-entry vector
// instead.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"wrbpg/internal/core"
	"wrbpg/internal/ioopt"
	"wrbpg/internal/linalg"
	"wrbpg/internal/machine"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wcfg"
)

const (
	electrodes = 96
	features   = 120
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(7))

	// Synthetic decoder matrix (tuned preferred directions) and a
	// feature vector of smoothed firing rates.
	W := linalg.NewMatrix(electrodes, features)
	for i := 0; i < electrodes; i++ {
		for j := 0; j < features; j++ {
			W.Set(i, j, rng.NormFloat64()/math.Sqrt(features))
		}
	}
	x := make([]float64, features)
	for j := range x {
		x[j] = math.Abs(rng.NormFloat64()) * 20 // spikes/s
	}

	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		g, err := mvm.Build(electrodes, features, cfg)
		if err != nil {
			log.Fatal(err)
		}
		budget := g.MinMemory()
		tc, cost, err := g.Search(budget)
		if err != nil {
			log.Fatal(err)
		}
		moves, err := g.TileSchedule(tc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s MVM(%d,%d) ===\n", cfg.Name, electrodes, features)
		fmt.Printf("minimum fast memory: %d bits (%d words); strategy %v\n",
			budget, budget/16, tc)
		fmt.Printf("weighted I/O: %d bits (lower bound %d)\n", cost, core.LowerBound(g.G))

		model := ioopt.New(electrodes, features, cfg)
		fmt.Printf("IOOpt UB needs %d words (+%.1f%% memory) and moves %d bits (+%d)\n",
			model.MinMemoryWords(),
			100*float64(model.MinMemoryBits()-budget)/float64(budget),
			model.UpperBoundFloor(), model.UpperBoundFloor()-cost)

		prog, err := machine.FromMVM(g, W.Data, x)
		if err != nil {
			log.Fatal(err)
		}
		values, stats, err := machine.Run(prog, budget, moves)
		if err != nil {
			log.Fatal(err)
		}
		y := machine.MVMOutputs(g, values)
		want, err := W.MulVec(x)
		if err != nil {
			log.Fatal(err)
		}
		diff, err := linalg.MaxAbsDiff(y, want)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("machine: %d computes, peak fast use %d bits, max |Δ| vs reference %.2e\n",
			stats.Computes, stats.PeakFastBits, diff)

		// Decode 2-D intent from the first two decoder outputs.
		speed := math.Hypot(y[0], y[1])
		angle := math.Atan2(y[1], y[0]) * 180 / math.Pi
		fmt.Printf("decoded cursor velocity: %.2f units/s at %.0f°\n\n", speed, angle)
	}
}
