// Memory design walkthrough: from scheduler-derived minimum fast
// memory sizes (Definition 2.6) to synthesized SRAM macros — the
// hardware half of the paper's evaluation (Sections 5.3, Figures 7
// and 8). For each workload and weighting, the example derives the
// minimum capacity under our scheduler and under the comparison
// approach, rounds both to powers of two, synthesizes them with the
// AMC-style compiler model, and reports the area and power the
// optimal schedule saves on an implant's power budget.
package main

import (
	"fmt"
	"log"

	"wrbpg/internal/baseline"
	"wrbpg/internal/bench"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/energy"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/synth"
	"wrbpg/internal/wcfg"
)

func main() {
	log.SetFlags(0)

	rows, err := bench.Fig7(synth.TSMC65())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("On-chip memory design from WRBPG schedules")
	fmt.Println("===========================================")
	var areaRed, leakRed, memRed float64
	for i := 0; i+1 < len(rows); i += 2 {
		ours, base := rows[i], rows[i+1]
		fmt.Printf("\n%s %s\n", ours.Weights, ours.Workload)
		for _, r := range []bench.Fig7Row{ours, base} {
			fmt.Printf("  %-15s %4d words -> %5d bits (pow2 %5d): %7.0f λ², %5.2f mW leak, %4.1f mW read\n",
				r.Approach, r.Spec.Words, r.Spec.MinBits, r.Spec.Pow2Bits,
				r.Macro.AreaLambda2, r.Macro.LeakageMW, r.Macro.ReadPowerMW)
		}
		a := 100 * (base.Macro.AreaLambda2 - ours.Macro.AreaLambda2) / base.Macro.AreaLambda2
		l := 100 * (base.Macro.LeakageMW - ours.Macro.LeakageMW) / base.Macro.LeakageMW
		m := memdesign.Reduction(base.Spec.MinBits, ours.Spec.MinBits)
		fmt.Printf("  => memory −%.1f%%, area −%.1f%%, static power −%.1f%%\n", m, a, l)
		areaRed += a
		leakRed += l
		memRed += m
	}
	n := float64(len(rows) / 2)
	fmt.Printf("\naverages across workloads: memory −%.1f%%, area −%.1f%%, leakage −%.1f%%\n",
		memRed/n, areaRed/n, leakRed/n)
	fmt.Println("(paper, with its weaker layer-by-layer baseline: area −63%, leakage −43.4%)")

	// A single milliwatt matters at the implant's ~10 mW envelope:
	// put the leakage saving in that context.
	fmt.Println("\nthermal context: implanted BCIs budget only a few mW total;")
	for i := 0; i+1 < len(rows); i += 2 {
		ours, base := rows[i], rows[i+1]
		fmt.Printf("  %-28s saves %5.2f mW of always-on leakage\n",
			ours.Weights+" "+ours.Workload, base.Macro.LeakageMW-ours.Macro.LeakageMW)
	}

	// End-to-end energy for one DWT(256,8) window: schedule cost and
	// macro leakage combined (internal/energy).
	fmt.Println("\nper-window energy, Equal DWT(256,8):")
	cfg := wcfg.Equal(16)
	g, err := dwt.Build(256, 8, dwt.ConfigWeights(cfg))
	if err != nil {
		log.Fatal(err)
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		log.Fatal(err)
	}
	optB, err := s.MinMemory(16)
	if err != nil {
		log.Fatal(err)
	}
	optSched, err := s.Schedule(optB)
	if err != nil {
		log.Fatal(err)
	}
	lblB, err := baseline.MinMemory(g.G, g.Layers, 16)
	if err != nil {
		log.Fatal(err)
	}
	lblSched, err := baseline.LayerByLayer(g.G, g.Layers, lblB)
	if err != nil {
		log.Fatal(err)
	}
	p := energy.Default65nm()
	report := func(name string, budget int64, sched core.Schedule) energy.Report {
		stats, err := core.Simulate(g.G, budget, sched)
		if err != nil {
			log.Fatal(err)
		}
		macro, err := synth.Synthesize(memdesign.NewSpec(budget, 16).Pow2Bits, 16, synth.TSMC65())
		if err != nil {
			log.Fatal(err)
		}
		r, err := energy.Estimate(stats, len(sched), macro, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %v\n", name, r)
		return r
	}
	opt := report("optimum:", optB, optSched)
	lbl := report("layer-by-layer:", lblB, lblSched)
	fmt.Printf("  => %.1f%% less energy per processed window\n", energy.Compare(opt, lbl))
}
