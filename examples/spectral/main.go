// Spectral screening under a memory sweep: the Hong–Kung
// I/O-vs-memory law, live. A 256-point Walsh–Hadamard transform (the
// FFT's butterfly dataflow with ±1 twiddles) screens a neural channel
// for high-frequency content. The blocked schedule is run at every
// block size from 2 values up to the full transform; each run is
// validated, machine-executed, and its traffic reported — halving
// log-memory adds one full pass over the data, exactly the
// Θ(n log n / log S) trade hardware designers size buffers by.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"wrbpg/internal/core"
	"wrbpg/internal/fft"
	"wrbpg/internal/machine"
	"wrbpg/internal/wcfg"
)

const n = 256

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(5))

	// A slow rhythm plus a fast sequency burst.
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / 512.0
		x[i] = math.Sin(2*math.Pi*8*t) + 0.2*rng.NormFloat64()
		if i%2 == 0 {
			x[i] += 0.8 // alternating component → high sequency
		} else {
			x[i] -= 0.8
		}
	}

	g, err := fft.Build(n, wcfg.Equal(16))
	if err != nil {
		log.Fatal(err)
	}
	lb := core.LowerBound(g.G)
	fmt.Printf("WHT(%d): %d nodes, compulsory I/O %d bits\n\n", n, g.G.Len(), lb)
	fmt.Println("block  fast mem   passes  bits moved  vs compulsory")

	var outputs []float64
	for t := 1; t <= g.K; t++ {
		sched, err := g.BlockedSchedule(t)
		if err != nil {
			log.Fatal(err)
		}
		budget := g.PredictPeak(t)
		prog, err := machine.FromWHT(g, x)
		if err != nil {
			log.Fatal(err)
		}
		values, stats, err := machine.Run(prog, budget, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("2^%d    %5d bits  %d       %6d      ×%.2f\n",
			t, budget, g.Passes(t), stats.TrafficBits, float64(stats.TrafficBits)/float64(lb))
		outputs = machine.WHTOutputs(g, values)
	}

	// All block sizes computed identical spectra; report the verdict.
	ref := machine.WHTReference(x)
	var maxDiff float64
	for i := range ref {
		if d := math.Abs(ref[i] - outputs[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nreference check: max |Δ| = %.2e\n", maxDiff)

	// In the natural (Hadamard) ordering, the per-sample alternating
	// pattern (−1)^i is the Walsh function H[1][·] = (−1)^{popcount(1∧c)},
	// so its energy lands in coefficient index 1.
	var total float64
	for _, v := range outputs {
		total += v * v
	}
	alt := outputs[1] * outputs[1]
	fmt.Printf("alternating-component share (Walsh index 1): %.1f%%", 100*alt/total)
	if alt/total > 0.3 {
		fmt.Println("  -> fast alternating component detected")
	} else {
		fmt.Println("  -> low-frequency activity only")
	}
}
