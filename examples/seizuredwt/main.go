// Seizure detection on an implanted BCI: the motivating workload of
// the paper's Section 1. A 256-sample window of a synthetic
// intracranial EEG channel is decomposed with an 8-level Haar DWT —
// executed, value by value, on the two-level memory machine under
// the paper's 10-word minimum fast memory (Table 1) — and band
// energies of the wavelet coefficients flag the seizure burst.
//
// The point: the full signal-processing kernel runs inside 160 bits
// of SRAM with only compulsory data movement (8192 bits), because
// the schedule is the provably optimal one of Algorithm 1.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/machine"
	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

const (
	samples  = 256
	levels   = 8
	sampleHz = 512.0
)

// synthEEG generates a background rhythm with a high-frequency
// seizure-like burst in the second half of the window.
func synthEEG(rng *rand.Rand) []float64 {
	x := make([]float64, samples)
	for i := range x {
		t := float64(i) / sampleHz
		x[i] = 0.6*math.Sin(2*math.Pi*9*t) + 0.2*rng.NormFloat64()
		if i >= samples/2 && i < samples/2+64 {
			x[i] += 2.5 * math.Sin(2*math.Pi*70*t) // ictal burst
		}
	}
	return x
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(2025))
	signal := synthEEG(rng)

	cfg := wcfg.Equal(16)
	g, err := dwt.Build(samples, levels, dwt.ConfigWeights(cfg))
	if err != nil {
		log.Fatal(err)
	}
	sched, err := dwt.NewScheduler(g)
	if err != nil {
		log.Fatal(err)
	}
	budget, err := sched.MinMemory(16)
	if err != nil {
		log.Fatal(err)
	}
	moves, err := sched.Schedule(budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DWT(%d,%d) on %d bits of fast memory (%d words)\n",
		samples, levels, budget, budget/16)
	fmt.Printf("schedule: %d moves, weighted I/O %d bits (lower bound %d)\n",
		len(moves), mustCost(g, budget, moves), core.LowerBound(g.G))

	prog, err := machine.FromDWT(g, signal)
	if err != nil {
		log.Fatal(err)
	}
	values, stats, err := machine.Run(prog, budget, moves)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d computes, %d bits moved, peak fast use %d bits\n\n",
		stats.Computes, stats.TrafficBits, stats.PeakFastBits)

	coeffs, finalAvg := machine.DWTOutputs(g, values)

	// Cross-check against the textbook transform.
	ref, err := wavelet.Transform(signal, levels)
	if err != nil {
		log.Fatal(err)
	}
	refC, refA := wavelet.Outputs(ref)
	var maxDiff float64
	for l := range refC {
		for j := range refC[l] {
			if d := math.Abs(refC[l][j] - coeffs[l][j]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	for j := range refA {
		if d := math.Abs(refA[j] - finalAvg[j]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("reference check: max |Δ| = %.2e\n\n", maxDiff)

	// Band energies: level 1–2 coefficients carry the 64–256 Hz
	// content where the synthetic seizure lives.
	fmt.Println("per-level coefficient energy:")
	for l, cs := range coeffs {
		lo := sampleHz / float64(int(2)<<uint(l+1))
		hi := sampleHz / float64(int(2)<<uint(l))
		fmt.Printf("  level %d (%5.1f–%5.1f Hz): %8.2f\n", l+1, lo, hi, wavelet.Energy(cs))
	}
	highBand := wavelet.Energy(coeffs[0]) + wavelet.Energy(coeffs[1])
	total := wavelet.TransformEnergy(ref)
	fmt.Printf("\nhigh-band share: %.1f%% of signal energy", 100*highBand/total)
	if highBand/total > 0.15 {
		fmt.Println("  -> SEIZURE BURST DETECTED")
	} else {
		fmt.Println("  -> background activity")
	}
}

func mustCost(g *dwt.Graph, budget int64, moves core.Schedule) int64 {
	stats, err := core.Simulate(g.G, budget, moves)
	if err != nil {
		log.Fatal(err)
	}
	return stats.Cost
}
