// Quickstart: build a small DWT dataflow graph, generate a provably
// minimal data-movement schedule under a tight fast-memory budget,
// validate it against the game rules, and compare its cost to the
// algorithmic lower bound.
package main

import (
	"fmt"
	"log"

	"wrbpg"
)

func main() {
	log.SetFlags(0)

	// An 8-sample, 3-level Haar DWT with 16-bit samples; every node
	// costs one memory word (the paper's Equal configuration).
	g, err := wrbpg.BuildDWT(8, 3, wrbpg.Equal(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DWT(8,3): %d nodes, %d edges\n", g.G.Len(), g.G.EdgeCount())
	fmt.Printf("algorithmic lower bound: %d bits\n", wrbpg.LowerBound(g.G))

	// Schedule with room for just five 16-bit words of fast memory.
	budget := wrbpg.Weight(5 * 16)
	sched, cost, err := wrbpg.ScheduleDWT(g, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal schedule at %d bits: %d moves, %d bits transferred\n",
		budget, len(sched), cost)

	// The simulator re-checks every rule of the game plus the
	// weighted red-pebble constraint — nothing is taken on faith.
	stats, err := wrbpg.Simulate(g.G, budget, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated: cost %d bits, peak fast-memory use %d bits\n",
		stats.Cost, stats.PeakRedWeight)

	// More memory means less traffic, until the compulsory minimum.
	for _, words := range []int{3, 4, 5, 8, 16} {
		b := wrbpg.Weight(words * 16)
		_, c, err := wrbpg.ScheduleDWT(g, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d words -> %5d bits transferred\n", words, c)
	}
}
