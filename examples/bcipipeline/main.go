// End-to-end BCI processing pipeline: the modular composition story
// of the paper's introduction, executed. A DWT front end extracts
// time-frequency features from a neural channel; a linear decoder
// (MVM) maps the features to class scores. Each stage is scheduled by
// its own provably efficient pebbling algorithm at its own minimum
// memory; pipeline.Compose stitches graphs, schedules and executable
// programs into one validated whole, and the machine runs it under a
// single fast-memory budget — the maximum of the stage peaks, because
// stages execute strictly in sequence.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/linalg"
	"wrbpg/internal/machine"
	"wrbpg/internal/mvm"
	"wrbpg/internal/pipeline"
	"wrbpg/internal/wcfg"
)

const (
	samples = 64
	levels  = 6
	classes = 3 // rest / movement / seizure-like
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(99))
	cfg := wcfg.Equal(16)

	// Stage 1: DWT(64,6) front end at its 8-word minimum memory.
	dg, err := dwt.Build(samples, levels, dwt.ConfigWeights(cfg))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dwt.NewScheduler(dg)
	if err != nil {
		log.Fatal(err)
	}
	dBudget, err := ds.MinMemory(16)
	if err != nil {
		log.Fatal(err)
	}
	dSched, err := ds.Schedule(dBudget)
	if err != nil {
		log.Fatal(err)
	}
	features := dg.G.Sinks() // 64 coefficients + final average
	dwtStage := pipeline.Stage{Name: "dwt", G: dg.G, Schedule: dSched, Outputs: features}

	// Stage 2: linear decoder MVM(3, 64) at its tiling minimum.
	mg, err := mvm.Build(classes, len(features), cfg)
	if err != nil {
		log.Fatal(err)
	}
	mBudget := mg.MinMemory()
	tc, _, err := mg.Search(mBudget)
	if err != nil {
		log.Fatal(err)
	}
	mSched, err := mg.TileSchedule(tc)
	if err != nil {
		log.Fatal(err)
	}
	decodeStage := pipeline.Stage{Name: "decode", G: mg.G, Schedule: mSched, Inputs: mg.X, Outputs: mg.Outputs()}

	budget, err := pipeline.MinBudget(dwtStage, decodeStage)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := pipeline.Compose(budget, dwtStage, decodeStage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d nodes, %d moves, budget %d bits (%d words)\n",
		comp.G.Len(), len(comp.Schedule), budget, budget/16)
	fmt.Printf("  stage memory: dwt %d bits, decode %d bits (strategy %v)\n", dBudget, mBudget, tc)
	fmt.Printf("  weighted I/O: %d bits; boundary round-trip: %d bits\n",
		comp.Stats.Cost, pipeline.BoundaryCost(dwtStage, decodeStage))

	// Executable programs for both stages, spliced.
	signal := make([]float64, samples)
	for i := range signal {
		t := float64(i) / 256.0
		signal[i] = math.Sin(2*math.Pi*11*t) + 0.3*rng.NormFloat64()
	}
	dProg, err := machine.FromDWT(dg, signal)
	if err != nil {
		log.Fatal(err)
	}
	W := linalg.NewMatrix(classes, len(features))
	for i := range W.Data {
		W.Data[i] = rng.NormFloat64() / 8
	}
	mProg, err := machine.FromMVM(mg, W.Data, make([]float64, len(features)))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := pipeline.ComposePrograms(comp, []pipeline.Stage{dwtStage, decodeStage},
		[]*machine.Program{dProg, mProg})
	if err != nil {
		log.Fatal(err)
	}
	values, stats, err := machine.Run(prog, budget, comp.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  machine: %d computes, peak fast use %d bits\n\n", stats.Computes, stats.PeakFastBits)

	names := []string{"rest", "movement", "seizure-like"}
	best, bestScore := 0, math.Inf(-1)
	for r := 1; r <= classes; r++ {
		score := values[comp.NodeMaps[1][mg.Output(r)]]
		fmt.Printf("  class %-13s score %+.3f\n", names[r-1], score)
		if score > bestScore {
			best, bestScore = r-1, score
		}
	}
	fmt.Printf("\ndecoded state: %s\n", names[best])

	// Sanity: the pipeline's cost decomposes into the stage costs.
	dStats, err := core.Simulate(dg.G, budget, dSched)
	if err != nil {
		log.Fatal(err)
	}
	mStats, err := core.Simulate(mg.G, budget, mSched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost decomposition: %d (dwt) + %d (decode) = %d\n",
		dStats.Cost, mStats.Cost, comp.Stats.Cost)
}
