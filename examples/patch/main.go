// Incremental design-space exploration with the re-solve engine: a
// hardware designer sizing the fast memory of a DWT front end keeps
// one warm solver session and *patches* it as the design changes,
// instead of re-solving every variant cold.
//
// The WRBPG dynamic programs are subtree-local, so a weight change at
// one node dirties only the memo cells whose subtree contains it —
// the dependency-tracked invalidation clears exactly those and keeps
// the rest warm. A single-channel precision change on a 64-input DWT
// re-solves in a small fraction of the cold time while answering
// bit-identically (the property tests in internal/solve and the
// BENCH_6.json kernels pin both claims).
//
// The same engine backs `wrbpg schedule -json -patch FILE` and the
// wrbpgd endpoint POST /v1/schedule/patch (docs/SERVICE.md).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/solve"
	"wrbpg/internal/wcfg"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A 64-sample, 6-level Haar DWT front end with 16-bit samples.
	inst := solve.Instance{Family: solve.FamilyDWT, N: 64, D: 6, Cfg: wcfg.Equal(16)}
	se, err := solve.NewSession(inst)
	if err != nil {
		log.Fatal(err)
	}
	min := se.MinExistence()
	budgets := []cdag.Weight{min, min + 4*16, min + 8*16, min + 16*16}

	// Cold baseline: the first sweep fills every memo cell.
	start := time.Now()
	base, err := se.SweepCosts(ctx, guard.Limits{}, budgets, nil)
	if err != nil {
		log.Fatal(err)
	}
	coldTime := time.Since(start)
	show := func(p solve.CostPoint) {
		if !p.Feasible {
			fmt.Printf("  budget %5d bits -> no schedule exists\n", p.Budget)
			return
		}
		fmt.Printf("  budget %5d bits -> weighted I/O %d bits\n", p.Budget, p.Cost)
	}
	fmt.Printf("%s  (existence bound %d bits)\n", se.Label(), min)
	fmt.Println("cold sweep:")
	for _, p := range base {
		show(p)
	}

	// Design change: one sensor channel moves to 24-bit precision —
	// a weight delta on its input node, nothing else.
	node := se.Graph().Sources()[3]
	target := []cdag.WeightDelta{{Node: node, Weight: 24}}
	start = time.Now()
	st, err := se.PatchTo(target)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := se.SweepCosts(ctx, guard.Limits{}, budgets, nil)
	if err != nil {
		log.Fatal(err)
	}
	warmTime := time.Since(start)
	fmt.Printf("\npatch input node %d to 24 bits: %d weight written, "+
		"%d memo cells invalidated, %d kept warm\n",
		node, st.Changed, st.Invalidated, st.Reused)
	for _, p := range warm {
		show(p)
	}
	fmt.Printf("incremental re-solve %v vs %v cold\n",
		warmTime.Round(time.Microsecond), coldTime.Round(time.Microsecond))

	// Trust, then verify: a cold session built directly at the patched
	// weights must answer bit-identically.
	patched := inst
	patched.Deltas = target
	cold, err := solve.NewSession(patched)
	if err != nil {
		log.Fatal(err)
	}
	check, err := cold.SweepCosts(ctx, guard.Limits{}, budgets, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := range warm {
		if warm[i].Cost != check[i].Cost || warm[i].Feasible != check[i].Feasible {
			log.Fatalf("budget %d: incremental %d != cold %d", warm[i].Budget, warm[i].Cost, check[i].Cost)
		}
	}
	fmt.Println("verified: incremental answers are bit-identical to a cold re-solve")

	// PatchTo is declarative — an empty target reverts to the base
	// design, again touching only the dirtied cone.
	st, err = se.PatchTo(nil)
	if err != nil {
		log.Fatal(err)
	}
	back, err := se.SweepCosts(ctx, guard.Limits{}, budgets, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := range back {
		if back[i].Cost != base[i].Cost {
			log.Fatalf("revert: budget %d answers %d, base said %d", back[i].Budget, back[i].Cost, base[i].Cost)
		}
	}
	fmt.Printf("reverted to base (%d cells invalidated); answers match the first sweep\n", st.Invalidated)

	// The serving surface speaks the same deltas. Against a running
	// `wrbpgd`, the patched sweep above is one request:
	fmt.Println("\nover HTTP:")
	fmt.Printf("  curl -s localhost:8080/v1/schedule/patch -d '{\"family\":\"dwt\",\"n\":64,\"d\":6,"+
		"\"deltas\":[{\"node\":%d,\"weight_bits\":24}],\"budgets_bits\":[%d,%d]}'\n",
		node, budgets[0], budgets[1])
	fmt.Println("  (the response's base_key addresses the warm session in later patches)")
}
