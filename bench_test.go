package wrbpg

// One benchmark per table and figure of the paper's evaluation
// (Section 5), plus ablation benchmarks for the design choices called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks exercise the same code paths cmd/experiments renders;
// EXPERIMENTS.md records the regenerated values against the paper's.

import (
	"testing"

	"wrbpg/internal/banded"
	"wrbpg/internal/baseline"
	"wrbpg/internal/bench"
	"wrbpg/internal/cdag"
	"wrbpg/internal/conv"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/exact"
	"wrbpg/internal/fft"
	"wrbpg/internal/ktree"
	"wrbpg/internal/mmm"
	"wrbpg/internal/mvm"
	"wrbpg/internal/pipeline"
	"wrbpg/internal/synth"
	"wrbpg/internal/wcfg"
)

// --- Figure 5: bits transferred vs fast memory size ---------------

func benchFig5DWT(b *testing.B, cfg wcfg.Config) {
	b.Helper()
	if testing.Short() {
		b.Skip("full Figure 5 DWT sweep; skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5DWT(cfg, bench.DWTInputs, bench.DWTLevels, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig5aDWTEqual(b *testing.B)     { benchFig5DWT(b, wcfg.Equal(16)) }
func BenchmarkFig5bDWTDoubleAcc(b *testing.B) { benchFig5DWT(b, wcfg.DoubleAccumulator(16)) }

func benchFig5MVM(b *testing.B, cfg wcfg.Config) {
	b.Helper()
	if testing.Short() {
		b.Skip("full Figure 5 MVM sweep; skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5MVM(cfg, bench.MVMRows, bench.MVMCols, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig5cMVMEqual(b *testing.B)     { benchFig5MVM(b, wcfg.Equal(16)) }
func BenchmarkFig5dMVMDoubleAcc(b *testing.B) { benchFig5MVM(b, wcfg.DoubleAccumulator(16)) }

// --- Figure 6: minimum fast memory size vs problem size -----------

func benchFig6DWT(b *testing.B, cfg wcfg.Config) {
	b.Helper()
	if testing.Short() {
		b.Skip("full Figure 6 DWT sweep; skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6DWT(cfg, bench.DWTInputs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != bench.DWTInputs/2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig6aDWTEqual(b *testing.B)     { benchFig6DWT(b, wcfg.Equal(16)) }
func BenchmarkFig6bDWTDoubleAcc(b *testing.B) { benchFig6DWT(b, wcfg.DoubleAccumulator(16)) }

func benchFig6MVM(b *testing.B, cfg wcfg.Config) {
	b.Helper()
	if testing.Short() {
		b.Skip("full Figure 6 MVM sweep; skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6MVM(cfg, bench.MVMRows, bench.MVMCols)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != bench.MVMCols {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig6cMVMEqual(b *testing.B)     { benchFig6MVM(b, wcfg.Equal(16)) }
func BenchmarkFig6dMVMDoubleAcc(b *testing.B) { benchFig6MVM(b, wcfg.DoubleAccumulator(16)) }

// --- Table 1: minimum fast memory sizes ---------------------------

func BenchmarkTable1(b *testing.B) {
	if testing.Short() {
		b.Skip("full Table 1 computation; skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("want 8 rows")
		}
	}
}

// --- Figure 7: synthesis metrics of the Table 1 capacities --------

func BenchmarkFig7Synthesis(b *testing.B) {
	if testing.Short() {
		b.Skip("Table 1 plus synthesis; skipped in -short mode")
	}
	p := synth.TSMC65()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("want 8 macros")
		}
	}
}

// --- Figure 8: layout comparison -----------------------------------

func BenchmarkFig8Layouts(b *testing.B) {
	if testing.Short() {
		b.Skip("Table 1 plus layout rendering; skipped in -short mode")
	}
	p := synth.TSMC65()
	for i := 0; i < b.N; i++ {
		pairs, err := bench.Fig8(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range pairs {
			if pr.Ours.Macro.Layout(64) == "" || pr.Baseline.Macro.Layout(64) == "" {
				b.Fatal("empty layout")
			}
		}
	}
}

// --- Ablations ------------------------------------------------------

// BenchmarkAblationDWTMemoOn/Off: the memoization that makes
// Algorithm 1 polynomial (Theorem 3.5) versus the raw exponential
// recursion, on DWT(64,6).
func BenchmarkAblationDWTMemoOn(b *testing.B) {
	g, err := dwt.Build(64, 6, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, _ := dwt.NewScheduler(g)
		if c := s.MinCost(96); c >= dwt.Inf {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkAblationDWTMemoOff(b *testing.B) {
	if testing.Short() {
		b.Skip("exponential no-memo recursion; skipped in -short mode")
	}
	g, err := dwt.Build(64, 6, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if c := dwt.MinCostNoMemo(g, 96); c >= dwt.Inf {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkAblationKtreePruned/Full: the reduced 4-strategy set of
// Eq. 4 versus the full 2^k·k! enumeration of Eq. 3.
func BenchmarkAblationKtreePruned(b *testing.B) {
	tr, err := ktree.FullTree(2, 6, func(d, i int) cdag.Weight { return 16 })
	if err != nil {
		b.Fatal(err)
	}
	budget := core.MinExistenceBudget(tr.G) + 64
	for i := 0; i < b.N; i++ {
		s := ktree.NewScheduler(tr)
		if c := s.MinCost(budget); c >= ktree.Inf {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkAblationKtreeFull(b *testing.B) {
	tr, err := ktree.FullTree(2, 6, func(d, i int) cdag.Weight { return 16 })
	if err != nil {
		b.Fatal(err)
	}
	budget := core.MinExistenceBudget(tr.G) + 64
	for i := 0; i < b.N; i++ {
		if c := ktree.MinCostFullStrategySet(tr, budget); c >= ktree.Inf {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkAblationBaselineAlternate/Ascending: the alternating
// traversal direction of Section 5.1 versus plain ascending order.
func BenchmarkAblationBaselineAlternate(b *testing.B) {
	g, err := dwt.Build(256, 8, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := baseline.LayerByLayer(g.G, g.Layers, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaselineAscending(b *testing.B) {
	g, err := dwt.Build(256, 8, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := baseline.LayerByLayerAscending(g.G, g.Layers, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper ------------------------------------

// BenchmarkExtensionFFTSweep: blocked FFT schedules across all block
// sizes on FFT(256) — the Hong–Kung n log n / log S law inside the
// WRBPG.
func BenchmarkExtensionFFTSweep(b *testing.B) {
	g, err := fft.Build(256, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for t := 1; t <= g.K; t++ {
			sched, err := g.BlockedSchedule(t)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Simulate(g.G, g.PredictPeak(t), sched); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtensionMMMSweep: the three GEMM strategy families on
// MMM(24,24,24).
func BenchmarkExtensionMMMSweep(b *testing.B) {
	g, err := mmm.Build(24, 24, 24, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, c := range []mmm.Config{
			{Strategy: mmm.CTile, TileRows: 8, TileCols: 8},
			{Strategy: mmm.BResident},
			{Strategy: mmm.AResident},
		} {
			sched, err := g.Schedule(c)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Simulate(g.G, g.PredictPeak(c), sched); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtensionConvSweep: sliding-window FIR schedules across
// buffer sizes (Daubechies-4 shape).
func BenchmarkExtensionConvSweep(b *testing.B) {
	g, err := conv.Build(1024, 4, 2, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for c := 0; c <= g.Taps; c++ {
			sched, err := g.Schedule(c)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Simulate(g.G, g.PredictPeak(c), sched); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtensionPipeline: composing and validating the DWT→MVM
// BCI pipeline.
func BenchmarkExtensionPipeline(b *testing.B) {
	cfg := wcfg.Equal(16)
	dg, err := dwt.Build(64, 6, dwt.ConfigWeights(cfg))
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dwt.NewScheduler(dg)
	if err != nil {
		b.Fatal(err)
	}
	dBudget, err := ds.MinMemory(16)
	if err != nil {
		b.Fatal(err)
	}
	dSched, err := ds.Schedule(dBudget)
	if err != nil {
		b.Fatal(err)
	}
	mg, err := mvm.Build(4, 64, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tc, _, err := mg.Search(mg.MinMemory())
	if err != nil {
		b.Fatal(err)
	}
	mSched, err := mg.TileSchedule(tc)
	if err != nil {
		b.Fatal(err)
	}
	stages := []pipeline.Stage{
		{Name: "dwt", G: dg.G, Schedule: dSched, Outputs: dg.G.Sinks()},
		{Name: "decode", G: mg.G, Schedule: mSched, Inputs: mg.X, Outputs: mg.Outputs()},
	}
	budget, err := pipeline.MinBudget(stages...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Compose(budget, stages...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionBandedSweep: banded MVM sliding-window schedules
// across bandwidths on a 128×128 operator.
func BenchmarkExtensionBandedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []int{0, 2, 8, 32} {
			g, err := banded.Build(128, w, wcfg.Equal(16))
			if err != nil {
				b.Fatal(err)
			}
			sched := g.Schedule()
			_, peak := g.Metrics()
			if _, err := core.Simulate(g.G, peak, sched); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationExactVsDP: exhaustive state-space optimum vs the
// polynomial DP on a small instance, for the certification cost.
func BenchmarkAblationExactSolver(b *testing.B) {
	g, err := dwt.Build(4, 2, dwt.ConfigWeights(wcfg.Equal(1)))
	if err != nil {
		b.Fatal(err)
	}
	budget := core.MinExistenceBudget(g.G)
	for i := 0; i < b.N; i++ {
		if _, err := exact.Solve(g.G, budget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDPSolver(b *testing.B) {
	g, err := dwt.Build(4, 2, dwt.ConfigWeights(wcfg.Equal(1)))
	if err != nil {
		b.Fatal(err)
	}
	budget := core.MinExistenceBudget(g.G)
	for i := 0; i < b.N; i++ {
		s, _ := dwt.NewScheduler(g)
		if c := s.MinCost(budget); c >= dwt.Inf {
			b.Fatal("infeasible")
		}
	}
}
