module wrbpg

go 1.22
