// Command experiments regenerates every table and figure of the
// paper's evaluation (Section 5) as aligned text tables.
//
// Usage:
//
//	experiments [-table1] [-fig5] [-fig6] [-fig7] [-fig8] [-dse] [-all] [-short] [-bench-json FILE] [-bench-quick] [-anytime-json FILE]
//
// With no flags, -all is assumed. -short reduces the Figure 5/6
// sweep sizes for quick runs. -bench-json runs the hot-path
// perf-regression suite and writes a BENCH_*.json report; alone it
// skips the figures. -bench-quick runs each kernel once (CI smoke).
// -anytime-json runs the general-DAG anytime roster suite (the
// BENCH_9 report); alone it likewise skips the figures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"wrbpg/internal/bench"
	"wrbpg/internal/cdag"
	"wrbpg/internal/dse"
	"wrbpg/internal/energy"
	"wrbpg/internal/guard"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/obs"
	"wrbpg/internal/synth"
)

var (
	flagTable1 = flag.Bool("table1", false, "print Table 1 (minimum fast memory sizes)")
	flagFig5   = flag.Bool("fig5", false, "print Figure 5 (bits transferred vs fast memory)")
	flagFig6   = flag.Bool("fig6", false, "print Figure 6 (minimum fast memory vs problem size)")
	flagFig7   = flag.Bool("fig7", false, "print Figure 7 (synthesis metrics)")
	flagFig8   = flag.Bool("fig8", false, "print Figure 8 (layouts)")
	flagDSE    = flag.Bool("dse", false, "print the mixed-precision design-space exploration")
	flagAll    = flag.Bool("all", false, "print everything")
	flagShort  = flag.Bool("short", false, "reduced sweeps for quick runs")
	flagBench  = flag.String("bench-json", "", "run the perf-regression suite and write BENCH JSON to `file` ('-' for stdout)")
	flagQuick  = flag.Bool("bench-quick", false, "with -bench-json: run each kernel once (CI smoke artifact, not a baseline)")
	flagAny    = flag.String("anytime-json", "", "run the general-DAG anytime roster suite and write BENCH JSON to `file` ('-' for stdout)")
	flagAnyW   = flag.Int("anytime-workers", 0, "with -anytime-json: parallel search width (0 = GOMAXPROCS)")
	flagTime   = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0 = none)")
)

// runCtx carries cancellation (Ctrl-C, -timeout) into the parallel
// figure sweeps.
var runCtx = context.Background()

// logger is replaced in main once -log-format / -log-level are parsed.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func fatal(v any) { fatalf("%v", v) }

// fatalIfSweepFailed distinguishes a cancelled sweep from a real
// failure in its error message.
func fatalIfSweepFailed(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrDeadline) {
		fatalf("sweep aborted: %v", err)
	}
	fatal(err)
}

func main() {
	logFlags := obs.AddLogFlags(flag.CommandLine)
	flag.Parse()
	if l, err := logFlags.Logger(os.Stderr); err != nil {
		fatalf("%v", err)
	} else {
		logger = l
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *flagTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *flagTime)
		defer cancel()
	}
	runCtx = ctx
	if *flagBench != "" {
		benchJSON(*flagBench)
		if *flagAny == "" && !*flagTable1 && !*flagFig5 && !*flagFig6 && !*flagFig7 && !*flagFig8 && !*flagDSE && !*flagAll {
			return
		}
	}
	if *flagAny != "" {
		anytimeJSON(*flagAny)
		if !*flagTable1 && !*flagFig5 && !*flagFig6 && !*flagFig7 && !*flagFig8 && !*flagDSE && !*flagAll {
			return
		}
	}
	if !*flagTable1 && !*flagFig5 && !*flagFig6 && !*flagFig7 && !*flagFig8 && !*flagDSE {
		*flagAll = true
	}
	if *flagAll || *flagFig5 {
		fig5()
	}
	if *flagAll || *flagFig6 {
		fig6()
	}
	if *flagAll || *flagTable1 {
		table1()
	}
	if *flagAll || *flagFig7 {
		fig7()
	}
	if *flagAll || *flagFig8 {
		fig8()
	}
	if *flagAll || *flagDSE {
		dse2()
	}
}

// dse2 prints the mixed-precision exploration (extension beyond the
// paper's two fixed configurations).
func dse2() {
	header("Design-space exploration: DWT(256,8) precision grid (extension)")
	cfgs := dse.Precisions([]int{8, 12, 16}, []int{1, 2})
	pts, err := dse.ExploreDWT(bench.DWTInputs, bench.DWTLevels, cfgs, synth.TSMC65(), energy.Default65nm())
	if err != nil {
		fatal(err)
	}
	front := dse.Pareto(pts)
	onFront := map[string]bool{}
	for _, f := range front {
		onFront[f.Cfg.Name] = true
	}
	var out [][]string
	for _, p := range pts {
		mark := ""
		if onFront[p.Cfg.Name] {
			mark = "*"
		}
		out = append(out, []string{
			p.Cfg.Name + mark,
			fmt.Sprint(p.MinMemoryBits),
			fmt.Sprint(p.Spec.Pow2WordCapacity()),
			fmt.Sprint(p.CostBits),
			fmt.Sprintf("%.0f", p.Macro.AreaLambda2),
			fmt.Sprintf("%.1f", p.Energy.TotalPJ/1e3),
			fmt.Sprintf("%.3f", p.Energy.AvgPowerMW),
		})
	}
	must(bench.WriteTable(os.Stdout, []string{
		"Precision", "MinMem(bits)", "Synth(bits)", "I/O(bits)", "Area(λ²)", "Energy(nJ)", "AvgPwr(mW)",
	}, out))
	fmt.Println("\n  * = on the precision-vs-energy Pareto frontier")
}

// benchJSON runs the hot-path perf suite and writes the report; the
// output feeds the BENCH_*.json regression history (see
// docs/PERFORMANCE.md). With -bench-quick each kernel runs once —
// a smoke artifact for CI, not a comparable baseline.
func benchJSON(path string) {
	run := bench.RunPerfSuite
	if *flagQuick {
		run = bench.RunPerfSuiteQuick
	}
	rep, err := run()
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fatal(err)
	}
	if path != "-" {
		logger.Info("wrote perf report", "path", path)
	}
}

// anytimeJSON runs the general-DAG anytime suite — the fixed 20-graph
// roster at the acceptance slice of 50 ms — and writes the BENCH_9
// report: expansion rate, pruning ratio, time-to-beat-baseline, and
// the 1-vs-GOMAXPROCS time-to-match speedup (docs/PERFORMANCE.md).
func anytimeJSON(path string) {
	rep, err := bench.RunAnytimeSuiteWith(20, 50*time.Millisecond, *flagAnyW)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		fatal(err)
	}
	if path != "-" {
		logger.Info("wrote anytime report", "path", path,
			"beat_baseline", rep.BeatBaseline, "graphs", len(rep.Graphs),
			"total_parallel_speedup", rep.TotalParallelSpeedup)
	}
}

func header(s string) {
	fmt.Printf("\n================ %s ================\n\n", s)
}

func fig5() {
	dwtN, dwtD := bench.DWTInputs, bench.DWTLevels
	mvmM, mvmN := bench.MVMRows, bench.MVMCols
	if *flagShort {
		dwtN, dwtD = 64, 6
		mvmM, mvmN = 24, 30
	}
	for _, cfg := range bench.Configs() {
		header(fmt.Sprintf("Figure 5: %s DWT(%d,%d) — bits transferred vs fast memory", cfg.Name, dwtN, dwtD))
		rows, err := bench.Fig5DWTParallelCtx(runCtx, cfg, dwtN, dwtD, nil, 0)
		fatalIfSweepFailed(err)
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				fmt.Sprint(r.BudgetBits),
				fmt.Sprint(r.AlgorithmicLB),
				fmt.Sprint(r.LayerByLayer),
				fmt.Sprint(r.Optimum),
			})
		}
		must(bench.WriteTable(os.Stdout,
			[]string{"FastMem(bits)", "AlgorithmicLB", "Layer-by-Layer", "Optimum(Ours)"}, out))
	}
	for _, cfg := range bench.Configs() {
		header(fmt.Sprintf("Figure 5: %s MVM(%d,%d) — bits transferred vs fast memory", cfg.Name, mvmM, mvmN))
		rows, err := bench.Fig5MVMParallelCtx(runCtx, cfg, mvmM, mvmN, nil, 0)
		fatalIfSweepFailed(err)
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				fmt.Sprint(r.BudgetBits),
				fmt.Sprint(r.IOOptLB),
				ubString(r.IOOptUB),
				fmt.Sprint(r.Tiling),
			})
		}
		must(bench.WriteTable(os.Stdout,
			[]string{"FastMem(bits)", "IOOpt LB", "IOOpt UB", "Tiling(Ours)"}, out))
	}
}

func ubString(w cdag.Weight) string {
	if w > 1<<60 {
		return "inf"
	}
	return fmt.Sprint(w)
}

func fig6() {
	maxN := bench.DWTInputs
	mvmN := bench.MVMCols
	if *flagShort {
		maxN, mvmN = 64, 40
	}
	for _, cfg := range bench.Configs() {
		header(fmt.Sprintf("Figure 6: %s DWT(n, d*) — minimum fast memory (bits) vs n", cfg.Name))
		rows, err := bench.Fig6DWTParallelCtx(runCtx, cfg, maxN, 0)
		fatalIfSweepFailed(err)
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				fmt.Sprint(r.N), fmt.Sprint(r.D),
				fmt.Sprint(r.LayerByLayer), fmt.Sprint(r.Optimum),
			})
		}
		must(bench.WriteTable(os.Stdout, []string{"n", "d*", "Layer-by-Layer", "Optimum(Ours)"}, out))
	}
	for _, cfg := range bench.Configs() {
		header(fmt.Sprintf("Figure 6: %s MVM(%d, n) — minimum fast memory (bits) vs n", cfg.Name, bench.MVMRows))
		rows, err := bench.Fig6MVMParallelCtx(runCtx, cfg, bench.MVMRows, mvmN, 0)
		fatalIfSweepFailed(err)
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{fmt.Sprint(r.N), fmt.Sprint(r.IOOptUB), fmt.Sprint(r.Tiling)})
		}
		must(bench.WriteTable(os.Stdout, []string{"n", "IOOpt UB", "Tiling(Ours)"}, out))
	}
}

func table1() {
	header("Table 1: minimum fast memory size comparison (* = our approaches)")
	rows, err := bench.Table1()
	if err != nil {
		fatal(err)
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, r.Weights, r.Approach,
			fmt.Sprint(r.Spec.Words), fmt.Sprint(r.Spec.WordBits),
			fmt.Sprint(r.Spec.MinBits), fmt.Sprint(r.Spec.Pow2Bits),
		})
	}
	must(bench.WriteTable(os.Stdout, []string{
		"Workload", "Node Weights", "Approach", "MinFastMem(words)",
		"WordSize(bits)", "MinCapacity(bits)", "Pow2Capacity(bits)",
	}, out))

	fmt.Println()
	for i := 0; i+1 < len(rows); i += 2 {
		ours, base := rows[i], rows[i+1]
		fmt.Printf("  %s %s: %s reduces minimum memory by %.1f%% vs %s\n",
			ours.Weights, ours.Workload, ours.Approach,
			memdesign.Reduction(base.Spec.MinBits, ours.Spec.MinBits), base.Approach)
	}
}

func fig7() {
	header("Figure 7: synthesized memory metrics (AMC-model, TSMC 65 nm)")
	rows, err := bench.Fig7(synth.TSMC65())
	if err != nil {
		fatal(err)
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%s %s", r.Weights, r.Workload), r.Approach,
			fmt.Sprint(r.Spec.Pow2Bits),
			fmt.Sprintf("%.0f", r.Macro.AreaLambda2),
			fmt.Sprintf("%.2f", r.Macro.LeakageMW),
			fmt.Sprintf("%.1f", r.Macro.ReadPowerMW),
			fmt.Sprintf("%.1f", r.Macro.WritePowerMW),
			fmt.Sprintf("%.1f", r.Macro.ReadGBs),
			fmt.Sprintf("%.1f", r.Macro.WriteGBs),
		})
	}
	must(bench.WriteTable(os.Stdout, []string{
		"Workload", "Approach", "Capacity(bits)", "Area(λ²)",
		"Leakage(mW)", "ReadPwr(mW)", "WritePwr(mW)", "Read(GB/s)", "Write(GB/s)",
	}, out))

	fmt.Println()
	var areaRed, leakRed float64
	pairs := 0
	for i := 0; i+1 < len(rows); i += 2 {
		ours, base := rows[i], rows[i+1]
		areaRed += 100 * (base.Macro.AreaLambda2 - ours.Macro.AreaLambda2) / base.Macro.AreaLambda2
		leakRed += 100 * (base.Macro.LeakageMW - ours.Macro.LeakageMW) / base.Macro.LeakageMW
		pairs++
	}
	fmt.Printf("  average area reduction:    %.1f%% (paper: 63%%)\n", areaRed/float64(pairs))
	fmt.Printf("  average leakage reduction: %.1f%% (paper: 43.4%%)\n", leakRed/float64(pairs))
}

func fig8() {
	header("Figure 8: physical layout comparison (equal scale)")
	pairs, err := bench.Fig8(synth.TSMC65())
	if err != nil {
		fatal(err)
	}
	for _, p := range pairs {
		scale := p.Baseline.Macro.WidthLambda / 48
		fmt.Printf("--- %s ---\n", p.Label)
		fmt.Printf("%s (%d bits, %.0f×%.0f λ):\n%s\n",
			p.Ours.Approach, p.Ours.Spec.Pow2Bits, p.Ours.Macro.WidthLambda, p.Ours.Macro.HeightLambda,
			p.Ours.Macro.Layout(scale))
		fmt.Printf("%s (%d bits, %.0f×%.0f λ):\n%s\n",
			p.Baseline.Approach, p.Baseline.Spec.Pow2Bits, p.Baseline.Macro.WidthLambda, p.Baseline.Macro.HeightLambda,
			p.Baseline.Macro.Layout(scale))
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}
