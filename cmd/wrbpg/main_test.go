package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// TestBuildAllWorkloads: every workload flag combination builds and
// produces a valid minimum-memory schedule through the shared helper.
func TestBuildAllWorkloads(t *testing.T) {
	cases := []workloadFlags{
		{workload: "dwt", n: 16, d: 4, weights: "equal"},
		{workload: "dwt", n: 16, d: 4, weights: "da"},
		{workload: "mvm", m: 4, n: 6, weights: "equal"},
		{workload: "fft", n: 16, weights: "da"},
		{workload: "mmm", m: 3, k: 2, n: 4, weights: "equal"},
		{workload: "conv", n: 12, taps: 4, d: 2, weights: "equal"},
	}
	for _, wf := range cases {
		w := wf.build()
		if w.g == nil || w.label == "" {
			t.Fatalf("%s: empty build", wf.workload)
		}
		b, sched, err := buildSchedule(w, 0)
		if err != nil {
			t.Fatalf("%s: %v", wf.workload, err)
		}
		stats, err := core.Simulate(w.g, b, sched)
		if err != nil {
			t.Fatalf("%s: %v", wf.workload, err)
		}
		if stats.Cost != core.LowerBound(w.g) {
			t.Errorf("%s: minimum-memory schedule cost %d != LB %d", wf.workload, stats.Cost, core.LowerBound(w.g))
		}
	}
}

// TestBuildScheduleExplicitBudget: a generous explicit budget works
// for every workload.
func TestBuildScheduleExplicitBudget(t *testing.T) {
	wf := workloadFlags{workload: "dwt", n: 8, d: 3, weights: "equal"}
	w := wf.build()
	b, sched, err := buildSchedule(w, w.g.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	if b != w.g.TotalWeight() {
		t.Errorf("budget not honoured: %d", b)
	}
	if _, err := core.Simulate(w.g, b, sched); err != nil {
		t.Fatal(err)
	}
}

// TestJSONResultMatchesTextPath: the -json path (solve facade + wire
// result) reports the same schedule metrics the text path computes, so
// the two output modes can never disagree about a solve.
func TestJSONResultMatchesTextPath(t *testing.T) {
	wf := workloadFlags{workload: "mvm", m: 4, n: 6, weights: "equal"}
	w := wf.build()
	b, err := defaultBudget(w)
	if err != nil {
		t.Fatal(err)
	}
	out, err := solve.Run(context.Background(), problemFor(w), b, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res := wire.NewScheduleResult(w.label, out, core.LowerBound(w.g), false)
	if res.Source != "optimal" {
		t.Fatalf("source: %+v", res)
	}
	_, sched, err := buildSchedule(w, b)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Simulate(w.g, b, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostBits != int64(stats.Cost) || res.PeakBits != int64(stats.PeakRedWeight) {
		t.Fatalf("json path cost/peak %d/%d != text path %d/%d",
			res.CostBits, res.PeakBits, stats.Cost, stats.PeakRedWeight)
	}
	if res.MoveCount != len(sched) || res.Schedule != nil {
		t.Fatalf("move accounting: %+v vs %d moves", res, len(sched))
	}
}

// TestSchedulePatch: the CLI's incremental path answers a patched
// instance bit-identically to a cold solve of that instance, reports
// the memo reuse of the warm base session, and rejects the workloads
// and delta files the engine cannot patch.
func TestSchedulePatch(t *testing.T) {
	wf := &workloadFlags{workload: "dwt", n: 16, d: 4, weights: "equal"}
	inst := solve.Instance{Family: solve.FamilyDWT, N: wf.n, D: wf.d, Cfg: wf.config()}
	se, err := solve.NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	node := se.Graph().Sources()[0]
	b := se.MinExistence() + 64

	file := filepath.Join(t.TempDir(), "deltas.json")
	deltas := fmt.Sprintf(`[{"node":%d,"weight_bits":%d}]`, node, se.Graph().Weight(node)+8)
	if err := os.WriteFile(file, []byte(deltas), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := schedulePatch(wf, b, file, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Session != "cli" || res.DeltasApplied != 1 || res.ChangedNodes != 1 {
		t.Fatalf("patch outcome: %+v", res)
	}
	if res.CellsInvalidated <= 0 || res.CellsReused <= 0 {
		t.Errorf("warm base patch: invalidated=%d reused=%d, want both > 0",
			res.CellsInvalidated, res.CellsReused)
	}
	if res.BaseKey != inst.BaseShapeKey() || res.PatchKey == res.BaseKey {
		t.Fatalf("keys: base=%q patch=%q", res.BaseKey, res.PatchKey)
	}

	// The answer must equal a cold solve of the patched instance.
	patched := inst
	patched.Deltas = []cdag.WeightDelta{{Node: node, Weight: se.Graph().Weight(node) + 8}}
	cold, err := solve.NewSession(patched)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.CostCtx(context.Background(), guard.Limits{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Items[0].Feasible || res.Items[0].CostBits != int64(want) {
		t.Fatalf("patched item %+v, cold cost %d", res.Items[0], want)
	}

	// Rejections: non-incremental workload, missing file, empty list.
	if _, err := schedulePatch(&workloadFlags{workload: "mvm", m: 4, n: 4, weights: "equal"}, b, file, 0); err == nil {
		t.Error("mvm workload accepted")
	}
	if _, err := schedulePatch(wf, b, filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Error("missing delta file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := schedulePatch(wf, b, empty, 0); err == nil {
		t.Error("empty delta list accepted")
	}
}
