package main

import (
	"context"
	"testing"

	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
)

// TestBuildAllWorkloads: every workload flag combination builds and
// produces a valid minimum-memory schedule through the shared helper.
func TestBuildAllWorkloads(t *testing.T) {
	cases := []workloadFlags{
		{workload: "dwt", n: 16, d: 4, weights: "equal"},
		{workload: "dwt", n: 16, d: 4, weights: "da"},
		{workload: "mvm", m: 4, n: 6, weights: "equal"},
		{workload: "fft", n: 16, weights: "da"},
		{workload: "mmm", m: 3, k: 2, n: 4, weights: "equal"},
		{workload: "conv", n: 12, taps: 4, d: 2, weights: "equal"},
	}
	for _, wf := range cases {
		w := wf.build()
		if w.g == nil || w.label == "" {
			t.Fatalf("%s: empty build", wf.workload)
		}
		b, sched, err := buildSchedule(w, 0)
		if err != nil {
			t.Fatalf("%s: %v", wf.workload, err)
		}
		stats, err := core.Simulate(w.g, b, sched)
		if err != nil {
			t.Fatalf("%s: %v", wf.workload, err)
		}
		if stats.Cost != core.LowerBound(w.g) {
			t.Errorf("%s: minimum-memory schedule cost %d != LB %d", wf.workload, stats.Cost, core.LowerBound(w.g))
		}
	}
}

// TestBuildScheduleExplicitBudget: a generous explicit budget works
// for every workload.
func TestBuildScheduleExplicitBudget(t *testing.T) {
	wf := workloadFlags{workload: "dwt", n: 8, d: 3, weights: "equal"}
	w := wf.build()
	b, sched, err := buildSchedule(w, w.g.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	if b != w.g.TotalWeight() {
		t.Errorf("budget not honoured: %d", b)
	}
	if _, err := core.Simulate(w.g, b, sched); err != nil {
		t.Fatal(err)
	}
}

// TestJSONResultMatchesTextPath: the -json path (solve facade + wire
// result) reports the same schedule metrics the text path computes, so
// the two output modes can never disagree about a solve.
func TestJSONResultMatchesTextPath(t *testing.T) {
	wf := workloadFlags{workload: "mvm", m: 4, n: 6, weights: "equal"}
	w := wf.build()
	b, err := defaultBudget(w)
	if err != nil {
		t.Fatal(err)
	}
	out, err := solve.Run(context.Background(), problemFor(w), b, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	res := wire.NewScheduleResult(w.label, out, core.LowerBound(w.g), false)
	if res.Source != "optimal" {
		t.Fatalf("source: %+v", res)
	}
	_, sched, err := buildSchedule(w, b)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Simulate(w.g, b, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostBits != int64(stats.Cost) || res.PeakBits != int64(stats.PeakRedWeight) {
		t.Fatalf("json path cost/peak %d/%d != text path %d/%d",
			res.CostBits, res.PeakBits, stats.Cost, stats.PeakRedWeight)
	}
	if res.MoveCount != len(sched) || res.Schedule != nil {
		t.Fatalf("move accounting: %+v vs %d moves", res, len(sched))
	}
}
