// Command wrbpg is a CLI for the Weighted Red-Blue Pebble Game
// library: build the paper's dataflow graphs, run schedulers,
// validate schedules, search minimum memory sizes, and synthesize
// memory macros.
//
// Usage:
//
//	wrbpg info     -workload dwt|mvm|cdag [-n N] [-d D] [-m M] [-graph FILE] [-weights equal|da]
//	wrbpg schedule -workload dwt|mvm|cdag -budget BITS [...] [-moves] [-json] [-patch FILE]
//	wrbpg minmem   -workload dwt|mvm [...]
//	wrbpg synth    -bits CAPACITY [-word BITS]
//	wrbpg dot      -workload dwt|mvm [...]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"wrbpg/internal/anytime"
	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/conv"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/fft"
	"wrbpg/internal/guard"
	"wrbpg/internal/ioopt"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/mmm"
	"wrbpg/internal/mvm"
	"wrbpg/internal/obs"
	"wrbpg/internal/serve/wire"
	"wrbpg/internal/solve"
	"wrbpg/internal/synth"
	"wrbpg/internal/wcfg"
)

// logger is the process logger; subcommands reconfigure it from the
// shared -log-format/-log-level flags right after parsing.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// initLog resolves the shared logging flags into the process logger.
func initLog(lf *obs.LogFlags) {
	l, err := lf.Logger(os.Stderr)
	if err != nil {
		fatalf("%v", err)
	}
	logger = l
}

// fatalf logs at error level and exits non-zero — the structured
// replacement for log.Fatalf.
func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

// fatal is fatalf for a bare error or value.
func fatal(v any) { fatalf("%v", v) }

type workloadFlags struct {
	workload string
	n, d, m  int
	k, taps  int
	weights  string
	graph    string
	log      *obs.LogFlags
}

func addWorkloadFlags(fs *flag.FlagSet) *workloadFlags {
	wf := &workloadFlags{}
	fs.StringVar(&wf.workload, "workload", "dwt", "dwt, mvm, fft, mmm, conv or cdag")
	fs.StringVar(&wf.graph, "graph", "",
		"CDAG JSON file for -workload cdag (raw node/edge spec or the interchange form)")
	fs.IntVar(&wf.n, "n", 256, "DWT/FFT/conv inputs, MVM/MMM columns")
	fs.IntVar(&wf.d, "d", 8, "DWT level / conv downsample")
	fs.IntVar(&wf.m, "m", 96, "MVM/MMM rows")
	fs.IntVar(&wf.k, "k", 16, "MMM inner dimension")
	fs.IntVar(&wf.taps, "taps", 4, "conv filter taps")
	fs.StringVar(&wf.weights, "weights", "equal", "equal or da (double accumulator)")
	wf.log = obs.AddLogFlags(fs)
	return wf
}

func (wf *workloadFlags) config() wcfg.Config {
	switch wf.weights {
	case "equal":
		return wcfg.Equal(wcfg.DefaultWordBits)
	case "da", "double", "double-accumulator":
		return wcfg.DoubleAccumulator(wcfg.DefaultWordBits)
	default:
		fatalf("unknown weights %q (want equal or da)", wf.weights)
		panic("unreachable")
	}
}

// built bundles whichever workload graph was constructed; exactly one
// typed field is non-nil.
type built struct {
	g    *cdag.Graph
	dwt  *dwt.Graph
	mvm  *mvm.Graph
	fft  *fft.Graph
	mmm  *mmm.Graph
	conv *conv.Graph
	// cdag marks an arbitrary user-supplied graph (-workload cdag);
	// only g is set and scheduling goes through the anytime tier.
	cdag  bool
	label string
}

// build constructs the selected workload graph.
func (wf *workloadFlags) build() built {
	cfg := wf.config()
	switch wf.workload {
	case "dwt":
		g, err := dwt.Build(wf.n, wf.d, dwt.ConfigWeights(cfg))
		if err != nil {
			fatal(err)
		}
		return built{g: g.G, dwt: g, label: fmt.Sprintf("%s DWT(%d,%d)", cfg.Name, wf.n, wf.d)}
	case "mvm":
		g, err := mvm.Build(wf.m, wf.n, cfg)
		if err != nil {
			fatal(err)
		}
		return built{g: g.G, mvm: g, label: fmt.Sprintf("%s MVM(%d,%d)", cfg.Name, wf.m, wf.n)}
	case "fft":
		g, err := fft.Build(wf.n, cfg)
		if err != nil {
			fatal(err)
		}
		return built{g: g.G, fft: g, label: fmt.Sprintf("%s FFT(%d)", cfg.Name, wf.n)}
	case "mmm":
		g, err := mmm.Build(wf.m, wf.k, wf.n, cfg)
		if err != nil {
			fatal(err)
		}
		return built{g: g.G, mmm: g, label: fmt.Sprintf("%s MMM(%d,%d,%d)", cfg.Name, wf.m, wf.k, wf.n)}
	case "conv":
		g, err := conv.Build(wf.n, wf.taps, wf.d, cfg)
		if err != nil {
			fatal(err)
		}
		return built{g: g.G, conv: g, label: fmt.Sprintf("%s Conv(%d,%d,%d)", cfg.Name, wf.n, wf.taps, wf.d)}
	case "cdag":
		if wf.graph == "" {
			fatalf("-workload cdag requires -graph FILE")
		}
		g, err := loadGraphFile(wf.graph)
		if err != nil {
			fatal(err)
		}
		if err := g.Validate(); err != nil {
			fatal(err)
		}
		return built{g: g, cdag: true, label: fmt.Sprintf("CDAG(%d nodes)", g.Len())}
	default:
		fatalf("unknown workload %q (want dwt, mvm, fft, mmm, conv or cdag)", wf.workload)
		panic("unreachable")
	}
}

// loadGraphFile parses a CDAG from disk: the raw node/edge spec (named
// deps, any order — the same schema POST /v1/schedule takes) is tried
// first, falling back to the cdag interchange form (integer parents in
// topological order, as written by MarshalJSON).
func loadGraphFile(path string) (*cdag.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec wire.GraphSpec
	if err := dec.Decode(&spec); err == nil && len(spec.Nodes) > 0 && spec.Nodes[0].Name != "" {
		g, err := spec.Graph()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return g, nil
	}
	var g cdag.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("%s: not a raw node/edge spec and not the cdag interchange form: %v", path, err)
	}
	return &g, nil
}

func main() {
	// Library invariant violations surface as panics; report them as
	// ordinary fatal errors instead of a stack-trace crash.
	defer func() {
		if r := recover(); r != nil {
			fatalf("internal error: %v", r)
		}
	}()
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "info":
		cmdInfo(os.Args[2:])
	case "schedule":
		cmdSchedule(os.Args[2:])
	case "minmem":
		cmdMinMem(os.Args[2:])
	case "synth":
		cmdSynth(os.Args[2:])
	case "compile":
		cmdCompile(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "dot":
		cmdDOT(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		logger.Error("unknown subcommand", "cmd", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wrbpg <info|schedule|minmem|synth|compile|verify|dot> [flags]
  info      graph statistics and bounds
  schedule  run the optimal scheduler at a budget and validate
  minmem    minimum fast memory per approach (Definition 2.6)
  synth     synthesize an SRAM macro for a capacity
  compile   write a schedule manifest (JSON) for deployment
  verify    re-validate a manifest against its workload
  dot       emit the graph in Graphviz DOT`)
	os.Exit(2)
}

// buildSchedule produces the workload's preferred schedule at the
// budget (0 = the workload's minimum memory), shared by compile and
// schedule.
func buildSchedule(w built, budget cdag.Weight) (cdag.Weight, core.Schedule, error) {
	b := budget
	switch {
	case w.dwt != nil:
		s, err := dwt.NewScheduler(w.dwt)
		if err != nil {
			return 0, nil, err
		}
		if b == 0 {
			if b, err = s.MinMemory(16); err != nil {
				return 0, nil, err
			}
		}
		sched, err := s.Schedule(b)
		return b, sched, err
	case w.mvm != nil:
		if b == 0 {
			b = w.mvm.MinMemory()
		}
		tc, _, err := w.mvm.Search(b)
		if err != nil {
			return 0, nil, err
		}
		sched, err := w.mvm.TileSchedule(tc)
		return b, sched, err
	case w.fft != nil:
		if b == 0 {
			b = w.fft.MinMemory()
		}
		t, _, err := w.fft.Search(b)
		if err != nil {
			return 0, nil, err
		}
		sched, err := w.fft.BlockedSchedule(t)
		return b, sched, err
	case w.mmm != nil:
		if b == 0 {
			b = w.mmm.MinMemory()
		}
		c, _, err := w.mmm.Search(b)
		if err != nil {
			return 0, nil, err
		}
		sched, err := w.mmm.Schedule(c)
		return b, sched, err
	case w.conv != nil:
		if b == 0 {
			b = w.conv.MinMemory()
		}
		c, _, err := w.conv.Search(b)
		if err != nil {
			return 0, nil, err
		}
		sched, err := w.conv.Schedule(c)
		return b, sched, err
	case w.cdag:
		if b == 0 {
			b = core.MinExistenceBudget(w.g)
		}
		res, err := anytime.Search(context.Background(), w.g, b,
			guard.Limits{Deadline: cdagCLIDeadline}, anytime.Options{})
		if err != nil {
			return 0, nil, err
		}
		return b, res.Schedule, nil
	}
	return 0, nil, fmt.Errorf("no workload built")
}

// cdagCLIDeadline bounds the anytime search when the CLI schedules an
// arbitrary graph without an explicit -timeout: long enough to drain
// small graphs (a certified answer), short enough to stay interactive.
const cdagCLIDeadline = 2 * time.Second

func cmdCompile(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	budget := fs.Int64("budget", 0, "fast memory budget in bits (0 = minimum memory)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	initLog(wf.log)
	w := wf.build()
	b, sched, err := buildSchedule(w, cdag.Weight(*budget))
	if err != nil {
		fatal(err)
	}
	m, err := core.NewManifest(w.label, w.g, b, sched)
	if err != nil {
		fatal(err)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := core.WriteManifest(dst, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "compiled %s: %d moves, %d bits I/O at %d bits fast memory\n",
		w.label, len(m.Moves), m.CostBits, m.BudgetBits)
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	in := fs.String("manifest", "", "manifest file to verify")
	fs.Parse(args)
	initLog(wf.log)
	if *in == "" {
		fatal("verify: -manifest is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := core.ReadManifest(f)
	if err != nil {
		fatal(err)
	}
	w := wf.build()
	if err := m.Verify(w.g); err != nil {
		fatalf("verification FAILED: %v", err)
	}
	fmt.Printf("manifest %q verifies against %s: cost %d bits, peak %d bits at budget %d\n",
		m.Workload, w.label, m.CostBits, m.PeakBits, m.BudgetBits)
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	fs.Parse(args)
	initLog(wf.log)
	b := wf.build()
	g, label := b.g, b.label
	fmt.Printf("%s\n", label)
	fmt.Printf("  nodes:            %d\n", g.Len())
	fmt.Printf("  edges:            %d\n", g.EdgeCount())
	fmt.Printf("  sources:          %d (weight %d bits)\n", len(g.Sources()), g.SourceWeight())
	fmt.Printf("  sinks:            %d (weight %d bits)\n", len(g.Sinks()), g.SinkWeight())
	fmt.Printf("  total weight:     %d bits\n", g.TotalWeight())
	fmt.Printf("  algorithmic LB:   %d bits (Proposition 2.4)\n", core.LowerBound(g))
	fmt.Printf("  existence bound:  %d bits (Proposition 2.3)\n", core.MinExistenceBudget(g))
}

// defaultBudget resolves the budget-0 convention ("use the workload's
// minimum memory") without running the full scheduler.
func defaultBudget(w built) (cdag.Weight, error) {
	switch {
	case w.dwt != nil:
		s, err := dwt.NewScheduler(w.dwt)
		if err != nil {
			return 0, err
		}
		return s.MinMemory(16)
	case w.mvm != nil:
		return w.mvm.MinMemory(), nil
	case w.fft != nil:
		return w.fft.MinMemory(), nil
	case w.mmm != nil:
		return w.mmm.MinMemory(), nil
	case w.conv != nil:
		return w.conv.MinMemory(), nil
	case w.cdag:
		return core.MinExistenceBudget(w.g), nil
	}
	return 0, fmt.Errorf("no workload built")
}

// problemFor adapts the built workload to the solve facade. The dwt
// and mvm solvers cancel cooperatively; the others rely on the
// facade's goroutine isolation to honour the deadline.
func problemFor(w built) solve.Problem {
	switch {
	case w.dwt != nil:
		return solve.DWT(w.dwt)
	case w.mvm != nil:
		return solve.MVM(w.mvm)
	case w.cdag:
		return solve.AnytimeCDAG(w.g)
	case w.fft != nil:
		return solve.Problem{Name: "fft", G: w.g,
			Optimal: func(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
				t, _, err := w.fft.Search(b)
				if err != nil {
					return nil, err
				}
				return w.fft.BlockedSchedule(t)
			}}
	case w.mmm != nil:
		return solve.Problem{Name: "mmm", G: w.g,
			Optimal: func(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
				c, _, err := w.mmm.Search(b)
				if err != nil {
					return nil, err
				}
				return w.mmm.Schedule(c)
			}}
	default:
		return solve.Problem{Name: "conv", G: w.g,
			Optimal: func(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
				c, _, err := w.conv.Search(b)
				if err != nil {
					return nil, err
				}
				return w.conv.Schedule(c)
			}}
	}
}

func cmdSchedule(args []string) {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	budget := fs.Int64("budget", 0, "fast memory budget in bits (0 = minimum memory)")
	moves := fs.Bool("moves", false, "print the full move sequence")
	trace := fs.Bool("trace", false, "print the fast-memory occupancy sparkline")
	timeout := fs.Duration("timeout", 0,
		"wall-clock limit for the solve; on expiry degrade to the baseline scheduler (0 = no limit)")
	jsonOut := fs.Bool("json", false,
		"emit the machine-readable result (the wrbpgd wire format) instead of the text report")
	patchFile := fs.String("patch", "",
		"JSON file of weight deltas [{\"node\":N,\"weight_bits\":W},...] applied to the warm base session "+
			"before re-solving incrementally (requires -json; dwt workload only)")
	fs.Parse(args)
	initLog(wf.log)
	w := wf.build()

	var sched core.Schedule
	var err error
	b := cdag.Weight(*budget)
	if *patchFile != "" {
		if !*jsonOut {
			fatal("-patch requires -json (the result is the wrbpgd patch wire format)")
		}
		if b == 0 {
			if b, err = defaultBudget(w); err != nil {
				fatal(err)
			}
		}
		res, perr := schedulePatch(wf, b, *patchFile, *timeout)
		if perr != nil {
			fatal(perr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	if *jsonOut {
		// The -json path always goes through the hardened solve facade
		// so the CLI and wrbpgd emit the identical result struct.
		if b == 0 {
			if b, err = defaultBudget(w); err != nil {
				fatal(err)
			}
		}
		out, rerr := solve.Run(context.Background(), problemFor(w), b, guard.Limits{Deadline: *timeout})
		if rerr != nil {
			fatal(rerr)
		}
		res := wire.NewScheduleResult(w.label, out, core.LowerBound(w.g), *moves)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	if *timeout > 0 {
		if b == 0 {
			if b, err = defaultBudget(w); err != nil {
				fatal(err)
			}
		}
		out, rerr := solve.Run(context.Background(), problemFor(w), b, guard.Limits{Deadline: *timeout})
		if rerr != nil {
			fatal(rerr)
		}
		if out.Source == solve.SourceFallback {
			logger.Warn("degraded: optimal solve abandoned; using baseline schedule",
				"reason", solve.FallbackReason(out.Err), "err", out.Err)
		}
		fmt.Printf("path: %s (%s)\n", out.Source, out.Elapsed.Round(time.Microsecond))
		printScheduleReport(w, b, out.Schedule, *moves, *trace)
		return
	}
	switch {
	case w.dwt != nil:
		s, serr := dwt.NewScheduler(w.dwt)
		if serr != nil {
			fatal(serr)
		}
		if b == 0 {
			if b, err = s.MinMemory(16); err != nil {
				fatal(err)
			}
		}
		sched, err = s.Schedule(b)
	case w.mvm != nil:
		if b == 0 {
			b = w.mvm.MinMemory()
		}
		tc, _, serr := w.mvm.Search(b)
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("tile configuration: %v\n", tc)
		sched, err = w.mvm.TileSchedule(tc)
	case w.fft != nil:
		if b == 0 {
			b = w.fft.MinMemory()
		}
		t, _, serr := w.fft.Search(b)
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("block exponent: %d (%d passes)\n", t, w.fft.Passes(t))
		sched, err = w.fft.BlockedSchedule(t)
	case w.mmm != nil:
		if b == 0 {
			b = w.mmm.MinMemory()
		}
		cfg, _, serr := w.mmm.Search(b)
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("strategy: %v\n", cfg)
		sched, err = w.mmm.Schedule(cfg)
	case w.conv != nil:
		if b == 0 {
			b = w.conv.MinMemory()
		}
		c, _, serr := w.conv.Search(b)
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("resident window buffer: %d inputs\n", c)
		sched, err = w.conv.Schedule(c)
	case w.cdag:
		if b == 0 {
			b = core.MinExistenceBudget(w.g)
		}
		res, serr := anytime.Search(context.Background(), w.g, b,
			guard.Limits{Deadline: cdagCLIDeadline}, anytime.Options{})
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("anytime: seed %d -> %d bits (complete=%v, %d states expanded)\n",
			res.SeedCost, res.Cost, res.Complete, res.Expanded)
		sched = res.Schedule
	}
	if err != nil {
		fatal(err)
	}
	printScheduleReport(w, b, sched, *moves, *trace)
}

// schedulePatch is the CLI face of the incremental re-solve engine:
// build the base session, warm it at the budget, move it to the delta
// file's target state with dependency-tracked invalidation, and
// re-answer the budget from the surviving memo cells. It emits the
// same wire.PatchResponse the wrbpgd patch endpoint returns, so the
// examples/patch walkthrough scripts work against either surface.
func schedulePatch(wf *workloadFlags, b cdag.Weight, file string, timeout time.Duration) (*wire.PatchResponse, error) {
	if wf.workload != "dwt" {
		return nil, fmt.Errorf("-patch supports the incremental dwt workload, not %q", wf.workload)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var wds []wire.PatchDelta
	if err := json.Unmarshal(raw, &wds); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	if len(wds) == 0 {
		return nil, fmt.Errorf("%s: no deltas", file)
	}
	ds, err := wire.CanonicalDeltas(wds)
	if err != nil {
		return nil, err
	}
	inst := solve.Instance{Family: solve.FamilyDWT, N: wf.n, D: wf.d, Cfg: wf.config()}
	se, err := solve.NewSession(inst)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ctx := context.Background()
	lim := guard.Limits{Deadline: timeout}
	// Warm the base memo first, so the reported reuse measures what the
	// incremental engine saved versus a cold re-solve.
	if _, err := se.CostCtx(ctx, lim, b); err != nil {
		return nil, err
	}
	st, err := se.PatchTo(ds)
	if err != nil {
		return nil, err
	}
	pts, err := se.SweepCosts(ctx, lim, []cdag.Weight{b}, nil)
	if err != nil {
		return nil, err
	}
	if pts[0].Err != nil {
		return nil, pts[0].Err
	}
	inst.Deltas = ds
	it := wire.SweepItem{BudgetBits: int64(pts[0].Budget), Feasible: pts[0].Feasible}
	if pts[0].Feasible {
		it.CostBits = int64(pts[0].Cost)
	}
	return &wire.PatchResponse{
		Workload:         se.Label(),
		BaseKey:          inst.BaseShapeKey(),
		PatchKey:         inst.ShapeKey(),
		LowerBoundBits:   int64(se.LowerBound()),
		MinExistenceBits: int64(se.MinExistence()),
		Items:            []wire.SweepItem{it},
		Succeeded:        1,
		Session:          "cli",
		DeltasApplied:    len(ds),
		ChangedNodes:     st.Changed,
		CellsInvalidated: st.Invalidated,
		CellsReused:      st.Reused,
		ElapsedUS:        wire.Elapsed(start),
	}, nil
}

// printScheduleReport validates the schedule and prints the shared
// summary block of the schedule subcommand.
func printScheduleReport(w built, b cdag.Weight, sched core.Schedule, moves, trace bool) {
	stats, err := core.Simulate(w.g, b, sched)
	if err != nil {
		fatalf("schedule failed validation: %v", err)
	}
	fmt.Printf("%s at %d bits:\n", w.label, b)
	fmt.Printf("  moves:        %d (M1 %d, M2 %d, M3 %d, M4 %d)\n",
		len(sched), stats.Moves[core.M1], stats.Moves[core.M2], stats.Moves[core.M3], stats.Moves[core.M4])
	fmt.Printf("  weighted I/O: %d bits (LB %d)\n", stats.Cost, core.LowerBound(w.g))
	fmt.Printf("  peak red:     %d bits\n", stats.PeakRedWeight)
	if trace {
		tr, err := core.OccupancyTrace(w.g, b, sched)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  occupancy:    %s\n", core.Sparkline(tr, b, 72))
	}
	if moves {
		fmt.Println(sched)
	}
}

func cmdMinMem(args []string) {
	fs := flag.NewFlagSet("minmem", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	fs.Parse(args)
	initLog(wf.log)
	w := wf.build()
	cfg := wf.config()
	fmt.Printf("%s minimum fast memory (Definition 2.6):\n", w.label)
	switch {
	case w.dwt != nil:
		s, err := dwt.NewScheduler(w.dwt)
		if err != nil {
			fatal(err)
		}
		opt, err := s.MinMemory(16)
		if err != nil {
			fatal(err)
		}
		lbl, err := baseline.MinMemory(w.dwt.G, w.dwt.Layers, 16)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  optimum (ours):  %v\n", memdesign.NewSpec(opt, cfg.WordBits))
		fmt.Printf("  layer-by-layer:  %v\n", memdesign.NewSpec(lbl, cfg.WordBits))
		fmt.Printf("  reduction:       %.1f%%\n", memdesign.Reduction(lbl, opt))
	case w.mvm != nil:
		model := ioopt.New(wf.m, wf.n, cfg)
		tiling := w.mvm.MinMemory()
		io := model.MinMemoryBits()
		fmt.Printf("  tiling (ours):   %v\n", memdesign.NewSpec(tiling, cfg.WordBits))
		fmt.Printf("  IOOpt UB:        %v\n", memdesign.NewSpec(io, cfg.WordBits))
		fmt.Printf("  reduction:       %.1f%%\n", memdesign.Reduction(io, tiling))
	case w.fft != nil:
		fmt.Printf("  blocked (t=%d):  %v\n", w.fft.K, memdesign.NewSpec(w.fft.MinMemory(), cfg.WordBits))
	case w.mmm != nil:
		c, _, err := w.mmm.Search(w.mmm.MinMemory())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-15v %v\n", c, memdesign.NewSpec(w.mmm.MinMemory(), cfg.WordBits))
	case w.conv != nil:
		fmt.Printf("  full window:     %v\n", memdesign.NewSpec(w.conv.MinMemory(), cfg.WordBits))
	case w.cdag:
		fmt.Printf("  existence bound: %v (Proposition 2.3)\n",
			memdesign.NewSpec(core.MinExistenceBudget(w.g), cfg.WordBits))
	}
}

func cmdSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	bits := fs.Int64("bits", 2048, "capacity in bits")
	word := fs.Int("word", 16, "word size in bits")
	lf := obs.AddLogFlags(fs)
	fs.Parse(args)
	initLog(lf)
	m, err := synth.Synthesize(cdag.Weight(*bits), *word, synth.TSMC65())
	if err != nil {
		fatal(err)
	}
	fmt.Println(m)
	fmt.Print(m.Layout(m.WidthLambda / 40))
}

func cmdDOT(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	fs.Parse(args)
	initLog(wf.log)
	w := wf.build()
	fmt.Print(w.g.DOT(w.label))
}
