// Fleet observability acceptance tests, run by `make cluster-check`
// (TestClusterFleetObservability rides the same -run prefix as
// TestClusterFleet) and `make metrics-lint` (TestMetricsLint):
//
//   - a traced request answered by a peer fill must yield ONE complete
//     trace on the forwarder — the owner's span subtree grafted under
//     peer.fill, no orphans — plus a peer-tier cost block and an
//     OpenMetrics exemplar carrying the trace ID;
//   - a shed storm must move the SLO burn rate exactly as the raw
//     good/bad counts say it should;
//   - every wrbpg_* series a replica exposes, in both exposition
//     flavors, must carry HELP/TYPE metadata and round-trip through
//     the strict parser.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"wrbpg/internal/obs"
	"wrbpg/internal/obs/slo"
	"wrbpg/internal/serve"
	"wrbpg/internal/serve/wire"
)

// postSchedule POSTs a schedule request, optionally traced, returning
// the response and body.
func postSchedule(t *testing.T, url string, req wire.ScheduleRequest, traced bool) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/schedule", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traced {
		hreq.Header.Set(serve.TraceHeader, "on")
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// fetchJSON GETs url and decodes the body into v when non-nil.
func fetchJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

// findSpan walks a span forest for the first span named name.
func findSpan(nodes []*obs.SpanNode, name string) *obs.SpanNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if hit := findSpan(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// countSpans sizes a span forest.
func countSpans(nodes []*obs.SpanNode) int {
	n := 0
	for _, sp := range nodes {
		n += 1 + countSpans(sp.Children)
	}
	return n
}

// checkNesting asserts every child starts at or after its parent — the
// orphan-free property: a grafted subtree whose clock rebase failed
// would surface as a child starting before the span that awaited it.
func checkNesting(t *testing.T, nodes []*obs.SpanNode, parentStart int64) {
	t.Helper()
	for _, n := range nodes {
		if n.StartUS < parentStart {
			t.Errorf("span %q starts at %dus, before its parent at %dus", n.Name, n.StartUS, parentStart)
		}
		checkNesting(t, n.Children, n.StartUS)
	}
}

// TestClusterFleetObservability: cross-replica trace propagation, cost
// accounting, SLO burn and exemplars on a live 3-replica fleet.
func TestClusterFleetObservability(t *testing.T) {
	f, err := startFleet(3, serve.Options{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()

	// Hunt for a traced request that was answered by a peer fill: walk
	// budgets and replicas until a response carries the peer cost tier.
	// With 3 replicas, roughly 2 in 3 cold keys land on a non-owner.
	var (
		traceID   string
		forwarder string
		res       wire.ScheduleResult
	)
	for budget := int64(300); budget < 340 && traceID == ""; budget++ {
		for _, u := range f.urls {
			req := wire.ScheduleRequest{Family: "dwt", N: 32, D: 4, BudgetBits: budget}
			resp, body := postSchedule(t, u, req, true)
			if resp.StatusCode != http.StatusOK {
				continue // a shed during warmup is not what this test is about
			}
			var r wire.ScheduleResult
			if err := json.Unmarshal(body, &r); err != nil {
				t.Fatalf("schedule body: %v\n%s", err, body)
			}
			if r.Cost == nil {
				t.Fatalf("schedule response carries no cost block: %s", body)
			}
			if r.Cost.SourceTier == wire.TierPeer {
				traceID = resp.Header.Get(serve.TraceIDHeader)
				forwarder = u
				res = r
				break
			}
		}
	}
	if traceID == "" {
		t.Fatal("no peer-filled schedule observed across 40 budgets x 3 replicas")
	}
	if res.Cost.PeerHops < 1 {
		t.Errorf("peer-filled response cost = %+v, want peer_hops >= 1", res.Cost)
	}

	// The forwarder's trace must be complete: the owner's peer.serve
	// subtree grafted under the forwarder's peer.fill span, every span
	// reachable from the single request root (no orphans), children
	// clock-rebased to start within their parents.
	var ex obs.TraceExport
	if r := fetchJSON(t, forwarder+"/v1/trace/"+traceID, &ex); r.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch on forwarder: %d", r.StatusCode)
	}
	if ex.TraceID != traceID {
		t.Fatalf("trace body ID %q, want %q", ex.TraceID, traceID)
	}
	if len(ex.Spans) != 1 || ex.Spans[0].Name != "request" {
		t.Fatalf("trace roots = %d (first %q), want the single request root",
			len(ex.Spans), ex.Spans[0].Name)
	}
	fill := findSpan(ex.Spans, "peer.fill")
	if fill == nil {
		t.Fatal("forwarder trace has no peer.fill span")
	}
	srv := findSpan(fill.Children, "peer.serve")
	if srv == nil {
		t.Fatalf("peer.fill has no grafted peer.serve child (children: %+v)", fill.Children)
	}
	if countSpans(srv.Children) == 0 {
		t.Error("grafted peer.serve subtree is bare — the owner's solve spans did not travel")
	}
	checkNesting(t, ex.Spans, 0)

	// The same trace exports as a loadable Chrome trace.
	var evs []obs.ChromeEvent
	if r := fetchJSON(t, forwarder+"/v1/trace/"+traceID+"?format=chrome", &evs); r.StatusCode != http.StatusOK {
		t.Fatalf("chrome fetch: %d", r.StatusCode)
	}
	if len(evs) < countSpans(ex.Spans) {
		t.Errorf("chrome export has %d events, tree has %d spans", len(evs), countSpans(ex.Spans))
	}
	// Malformed format selector: structured 400, not a silent default.
	if r := fetchJSON(t, forwarder+"/v1/trace/"+traceID+"?format=bogus", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("format=bogus: %d, want 400", r.StatusCode)
	}

	// The traced request's ID must ride the matching wrbpg_request_seconds
	// bucket as an OpenMetrics exemplar — and only in OpenMetrics mode.
	resp, err := http.Get(forwarder + "/metrics?openmetrics=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatalf("openmetrics exposition unparseable: %v", err)
	}
	foundExemplar := false
	for _, s := range samples {
		if s.Name == "wrbpg_request_seconds_bucket" && s.Exemplar != nil &&
			s.Exemplar.Labels["trace_id"] == traceID {
			foundExemplar = true
			if s.Exemplar.Value <= 0 {
				t.Errorf("exemplar value %v, want the positive request latency", s.Exemplar.Value)
			}
		}
	}
	if !foundExemplar {
		t.Errorf("trace %s not found as an exemplar on any wrbpg_request_seconds bucket", traceID)
	}
	resp, err = http.Get(forwarder + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	plain, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatalf("prometheus exposition unparseable: %v", err)
	}
	for _, s := range plain {
		if s.Exemplar != nil {
			t.Fatalf("series %s carries an exemplar in plain Prometheus mode", s.Series())
		}
	}

	// /v1/cluster/stats on any replica merges the whole fleet.
	var cs serve.ClusterStats
	if r := fetchJSON(t, forwarder+"/v1/cluster/stats", &cs); r.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster/stats: %d", r.StatusCode)
	}
	if cs.Replicas != 3 || cs.Scraped != 3 {
		t.Fatalf("cluster stats replicas=%d scraped=%d, want 3/3: %+v", cs.Replicas, cs.Scraped, cs)
	}
	if cs.PeerRequests == 0 || cs.PeerFill["filled"] == 0 {
		t.Errorf("merged cluster stats show no peer traffic: %+v", cs)
	}
	if cs.Solves == 0 || cs.Requests == 0 {
		t.Errorf("merged cluster stats show no solve traffic: %+v", cs)
	}
}

// TestClusterFleetSLOBurn: a deliberate shed storm against one replica
// must register on its SLO engine with a burn rate that matches the raw
// good/bad counts, both on GET /v1/slo and the exported gauges.
func TestClusterFleetSLOBurn(t *testing.T) {
	f, err := startFleet(2, serve.Options{MaxInflight: 1, MaxQueue: -1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()
	target := f.urls[0]

	// Concurrent cold solves with a 1ms deadline against one slot and no
	// queue: everything past the slot holder sheds as a structured 429.
	var mu sync.Mutex
	sent, bad := 0, 0
	for round := 0; round < 10 && bad == 0; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 24; i++ {
			wg.Add(1)
			go func(budget int64) {
				defer wg.Done()
				req := wire.ScheduleRequest{Family: "dwt", N: 32, D: 4,
					BudgetBits: budget, TimeoutMS: 1}
				resp, _ := postSchedule(t, target, req, false)
				mu.Lock()
				sent++
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
					bad++
				}
				mu.Unlock()
			}(int64(1000 + round*100 + i))
		}
		wg.Wait()
	}
	if bad == 0 {
		t.Fatal("shed storm produced no 429s — cannot exercise the burn rate")
	}

	var rep slo.Report
	if r := fetchJSON(t, target+"/v1/slo", &rep); r.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo: %d", r.StatusCode)
	}
	var avail *slo.ObjectiveStatus
	for i := range rep.Objectives {
		if rep.Objectives[i].Name == slo.ObjectiveAvailability {
			avail = &rep.Objectives[i]
		}
	}
	if avail == nil || len(avail.Windows) == 0 {
		t.Fatalf("availability objective missing from /v1/slo: %+v", rep)
	}
	w := avail.Windows[0] // shortest window, well inside 5m
	if w.Total != uint64(sent) || w.Bad != uint64(bad) {
		t.Fatalf("SLO window counts total=%d bad=%d, storm sent=%d bad=%d",
			w.Total, w.Bad, sent, bad)
	}
	want := slo.BurnRate(w.Total, w.Bad, avail.Budget)
	if math.Abs(w.BurnRate-want) > 1e-9 {
		t.Errorf("reported burn rate %v, counts say %v", w.BurnRate, want)
	}
	if w.BurnRate <= 1 {
		t.Errorf("burn rate %v after a %d/%d shed storm, want > 1x budget", w.BurnRate, bad, sent)
	}

	// The exported gauge must agree with the endpoint.
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples, err := obs.ParseText(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	gauge := math.NaN()
	for _, s := range samples {
		if s.Name == "wrbpg_slo_burn_rate" && s.Labels["slo"] == "availability_"+w.Window {
			gauge = s.Value
		}
	}
	if math.IsNaN(gauge) {
		t.Fatal(`wrbpg_slo_burn_rate{slo="availability_` + w.Window + `"} not exported`)
	}
	if math.Abs(gauge-want) > 1e-9 {
		t.Errorf("gauge burn rate %v, counts say %v", gauge, want)
	}
}

// TestMetricsLint: every wrbpg_* series each replica of a live fleet
// exposes must carry HELP and TYPE metadata, in both exposition
// flavors, and both flavors must round-trip through the strict parser.
func TestMetricsLint(t *testing.T) {
	f, err := startFleet(3, serve.Options{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()

	// Touch every serving path so label-valued families materialize.
	for i, u := range f.urls {
		req := wire.ScheduleRequest{Family: "dwt", N: 32, D: 4, BudgetBits: int64(600 + i)}
		postSchedule(t, u, req, true)
		b, _ := json.Marshal(wire.SweepRequest{Family: "dwt", N: 32, D: 4,
			BudgetsBits: []int64{500, 700}})
		if resp, err := http.Post(u+"/v1/schedule/sweep", "application/json", bytes.NewReader(b)); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}

	for _, u := range f.urls {
		for _, mode := range []struct {
			name, query, wantCT string
			openMetrics         bool
		}{
			{"prometheus", "", "version=0.0.4", false},
			{"openmetrics", "?openmetrics=1", "application/openmetrics-text", true},
		} {
			resp, err := http.Get(u + "/metrics" + mode.query)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, mode.wantCT) {
				t.Errorf("%s %s: Content-Type %q, want %q", u, mode.name, ct, mode.wantCT)
			}
			if mode.openMetrics && !strings.HasSuffix(strings.TrimSpace(string(raw)), "# EOF") {
				t.Errorf("%s openmetrics exposition not terminated by # EOF", u)
			}
			lintExposition(t, fmt.Sprintf("%s %s", u, mode.name), string(raw))
		}
	}
}

// lintExposition asserts the metadata contract over one scrape: strict
// parse, and HELP+TYPE present for the family of every wrbpg_* sample
// (histogram series resolve through their _bucket/_sum/_count suffix).
func lintExposition(t *testing.T, scrape, text string) {
	t.Helper()
	samples, err := obs.ParseText(text)
	if err != nil {
		t.Errorf("%s: exposition unparseable: %v", scrape, err)
		return
	}
	help, typ := map[string]bool{}, map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) >= 3 && f[0] == "#" && f[1] == "HELP" {
			help[f[2]] = true
		}
		if len(f) == 4 && f[0] == "#" && f[1] == "TYPE" {
			typ[f[2]] = f[3]
		}
	}
	for _, s := range samples {
		if !strings.HasPrefix(s.Name, "wrbpg_") {
			continue
		}
		fam := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name {
				if k := typ[base]; k == "histogram" || k == "summary" {
					fam = base
				}
			}
		}
		if !help[fam] {
			t.Errorf("%s: series %s has no # HELP %s", scrape, s.Series(), fam)
		}
		if typ[fam] == "" {
			t.Errorf("%s: series %s has no # TYPE %s", scrape, s.Series(), fam)
		}
	}
}
