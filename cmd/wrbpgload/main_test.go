package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestInprocChaosSmoke is the soak-smoke core: a short closed-loop run
// against the in-process server with fault injection. Injected panics
// must never surface as 5xx — they degrade to baseline answers or
// per-item errors — and the report must land on disk.
func TestInprocChaosSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-inproc",
		"-duration", "1500ms",
		"-workers", "3",
		"-timeout", "300ms",
		"-fault-every", "5",
		"-assert-no-5xx",
		"-out", out,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Run == nil || rep.Run.Sent == 0 || rep.Run.OK == 0 {
		t.Fatalf("no traffic recorded: %s", b)
	}
	if rep.Run.ServerErr != 0 {
		t.Fatalf("5xx despite -assert-no-5xx passing: %s", b)
	}
	if rep.FaultsFired == 0 {
		t.Fatalf("fault hook never fired (sent=%d): %s", rep.Run.Sent, b)
	}
	if rep.GeneratedAt == "" {
		t.Fatal("report missing generated_at")
	}
}

// TestOverloadTwoPhase exercises the capacity-probe → open-loop flow
// on a tiny scale: the report must carry both phases.
func TestOverloadTwoPhase(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-inproc",
		"-max-inflight", "1",
		"-max-queue", "2",
		"-workers", "2",
		"-probe", "700ms",
		"-overload", "4",
		"-duration", "900ms",
		"-timeout", "150ms",
		"-assert-no-5xx",
		"-out", out,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Capacity == nil || rep.Capacity.Mode != "closed" {
		t.Fatalf("missing capacity phase: %s", b)
	}
	if rep.Run == nil || rep.Run.Mode != "open" {
		t.Fatalf("missing open-loop phase: %s", b)
	}
	if rep.Run.RateOffered < 4*rep.Capacity.ThroughputRPS*0.99 {
		t.Fatalf("offered %.0f rps, want >= 4x capacity %.0f", rep.Run.RateOffered, rep.Capacity.ThroughputRPS)
	}
}

// TestClusterFleet is the `make cluster-check` entry point: a 3-replica
// in-process cluster under round-robin load with a fixed hot-key
// roster, then a kill-one soak. Acceptance: cross-replica singleflight
// keeps fleet duplicate cold solves near zero, and losing a replica
// mid-soak produces zero 5xx.
func TestClusterFleet(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-inproc-replicas", "3",
		"-workers", "3",
		"-duration", "1500ms",
		"-timeout", "400ms",
		"-hot-budgets", "3",
		"-kill-soak", "1200ms",
		"-assert-no-5xx",
		"-max-duplicates", "5",
		"-out", out,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	cr := rep.Cluster
	if cr == nil || cr.Replicas != 3 {
		t.Fatalf("missing cluster section: %s", b)
	}
	if cr.DistinctKeys == 0 || cr.FleetSolves == 0 {
		t.Fatalf("no fleet traffic accounted: %+v", cr)
	}
	if cr.DuplicateSolves > 5 {
		t.Fatalf("%d duplicate cold solves — singleflight not deduplicating: %+v", cr.DuplicateSolves, cr)
	}
	if cr.PeerRequests == 0 || cr.PeerFill["filled"] == 0 {
		t.Fatalf("no peer fills happened — ring routing inert: %+v", cr)
	}
	if cr.KilledReplica == "" || cr.KillSoak == nil {
		t.Fatalf("kill soak did not run: %s", b)
	}
	if cr.KillSoak.ServerErr != 0 {
		t.Fatalf("5xx during kill soak: %+v", cr.KillSoak)
	}
	if cr.KillSoak.OK == 0 {
		t.Fatalf("kill soak served nothing: %+v", cr.KillSoak)
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                          // neither -target nor -inproc
		{"-target", "x", "-inproc"}, // both
		{"-fault-every", "3", "-target", "http://x"}, // faults need inproc
		{"-inproc", "-mix", "1,2"},                   // short mix
		{"-inproc", "-mix", "0,0,0"},                 // all-zero mix
		{"-inproc", "positional"},                    // stray arg
		{"-inproc-replicas", "3", "-inproc"},         // two modes
		{"-inproc-replicas", "1"},                    // fleet of one
		{"-kill-soak", "1s", "-inproc"},              // soak needs replicas
		{"-max-duplicates", "0", "-inproc"},          // bound needs replicas
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix(" 6, 2 ,2")
	if err != nil || m.Schedule != 6 || m.Sweep != 2 || m.Patch != 2 {
		t.Fatalf("parseMix: %+v, %v", m, err)
	}
	if m2, err := parseMix("10,0,0"); err != nil || m2.Sweep != 0 {
		t.Fatalf("parseMix single-kind: %+v, %v", m2, err)
	}
}
