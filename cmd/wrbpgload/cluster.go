// In-process replica fleet for cluster benchmarking: -inproc-replicas N
// boots N full wrbpg servers on loopback ports, wires them into one
// consistent-hash ring (every replica lists the others as peers), and
// points the load generator at all of them round-robin — the same
// topology a real deployment reaches with N wrbpgd processes behind a
// balancer, compressed into one process so CI can run it.
//
// The fleet exposes the two measurements BENCH_8 is built on:
//
//   - duplicate cold solves: Σ over replicas of solver invocations on
//     the /v1/schedule path, minus the distinct schedule keys the
//     generator saw answered. With cross-replica singleflight this is
//     ~0 — each key is solved once fleet-wide, wherever it landed.
//   - kill-one soak: mid-run one replica drains (503 on /readyz) and
//     closes; the prober and the peer health loops route around it and
//     the acceptance bar is zero 5xx.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"wrbpg/internal/cluster"
	"wrbpg/internal/loadgen"
	"wrbpg/internal/serve"
)

// clusterReport is the cluster section of the wrbpgload JSON report.
type clusterReport struct {
	Replicas int `json:"replicas"`
	// FleetSolves is Σ replica /v1/schedule solver invocations during
	// the main phase; DuplicateSolves = FleetSolves − DistinctKeys.
	FleetSolves     uint64 `json:"fleet_solves"`
	DistinctKeys    int    `json:"distinct_schedule_keys"`
	DuplicateSolves int64  `json:"duplicate_solves"`
	// PeerRequests / PeerFill aggregate the replica-to-replica traffic:
	// fills by outcome (filled, degraded, shed, timeout, error).
	PeerRequests uint64            `json:"peer_requests"`
	PeerFill     map[string]uint64 `json:"peer_fill,omitempty"`
	// KillSoak is the post-kill measurement phase, when -kill-soak ran.
	KilledReplica string          `json:"killed_replica,omitempty"`
	KillSoak      *loadgen.Result `json:"kill_soak,omitempty"`
}

// fleet is the running in-process replica set.
type fleet struct {
	urls     []string
	servers  []*serve.Server
	https    []*http.Server
	clusters []*cluster.Cluster
	killed   int
	cancel   context.CancelFunc
}

// startFleet boots n replicas. Listeners are allocated first so every
// replica's ring can name all the others' real URLs; the ring seed and
// vnode count match fleet-wide (they must — ownership is computed
// independently on each replica).
func startFleet(n int, opts serve.Options, seed uint64) (*fleet, error) {
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &fleet{urls: urls, killed: -1, cancel: cancel}
	for i, self := range urls {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cl, err := cluster.New(cluster.Config{
			Self:           self,
			Peers:          peers,
			Seed:           seed,
			HealthInterval: 100 * time.Millisecond,
		})
		if err != nil {
			f.stop()
			return nil, err
		}
		o := opts
		o.Cluster = cl
		srv := serve.New(o)
		hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go hs.Serve(lns[i]) //nolint:errcheck // torn down with the fleet
		cl.Start(ctx)
		f.servers = append(f.servers, srv)
		f.https = append(f.https, hs)
		f.clusters = append(f.clusters, cl)
	}
	return f, nil
}

// killOne takes the last replica out the way a real deploy would: it
// announces the drain on /readyz, waits long enough for the load
// generator's prober and the peers' health loops to observe the 503
// and route around it, then closes the listener.
func (f *fleet) killOne(stdout io.Writer) string {
	i := len(f.urls) - 1
	f.servers[i].BeginDrain()
	time.Sleep(400 * time.Millisecond)
	f.https[i].Close() //nolint:errcheck
	f.killed = i
	fmt.Fprintf(stdout, "killed replica %s (drained, then closed)\n", f.urls[i])
	return f.urls[i]
}

// solves sums /v1/schedule solver invocations across the fleet.
func (f *fleet) solves() uint64 {
	var n uint64
	for _, s := range f.servers {
		n += s.Stats().Solves
	}
	return n
}

// peerTraffic aggregates the replica-to-replica counters.
func (f *fleet) peerTraffic() (reqs uint64, fill map[string]uint64) {
	fill = make(map[string]uint64)
	for _, s := range f.servers {
		st := s.Stats()
		reqs += st.PeerRequests
		for outcome, n := range st.PeerFill {
			fill[outcome] += n
		}
	}
	return reqs, fill
}

func (f *fleet) stop() {
	f.cancel()
	for _, hs := range f.https {
		hs.Close() //nolint:errcheck
	}
}
