// Command wrbpgload is the chaos/soak load harness for wrbpgd: it
// replays a mixed schedule/sweep/patch workload against a live daemon
// (-target) or an in-process server (-inproc), in closed loop (capacity
// measurement) or open loop (overload probing), and writes a JSON
// report of status mix, shed rate and latency percentiles.
//
// The two-phase overload run behind docs/PERFORMANCE.md's BENCH_7:
//
//	wrbpgload -inproc -workers 4 -probe 3s -overload 4 -duration 10s \
//	          -assert-no-5xx -out BENCH_7.json
//
// measures capacity closed-loop first, then offers 4× that rate open
// loop: the acceptance criterion is nothing but 200s and 429s.
//
// With -inproc, -fault-every N injects a panic into every Nth solver
// work item via the internal fault hook — the chaos half: injected
// crashes must surface as degraded 200s (fallback) or per-item errors,
// never 5xx.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wrbpg/internal/loadgen"
	"wrbpg/internal/obs/slo"
	"wrbpg/internal/par"
	"wrbpg/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wrbpgload:", err)
		os.Exit(1)
	}
}

// report is the JSON document written to -out.
type report struct {
	Target      string      `json:"target"`
	Mix         loadgen.Mix `json:"mix"`
	TimeoutMS   int64       `json:"timeout_ms"`
	FaultEvery  int         `json:"fault_every,omitempty"`
	FaultsFired int64       `json:"faults_fired,omitempty"`
	// Capacity is the closed-loop probe result when -overload is used.
	Capacity *loadgen.Result `json:"capacity,omitempty"`
	// Run is the main measurement phase.
	Run *loadgen.Result `json:"run"`
	// Cluster carries the fleet accounting for -inproc-replicas runs.
	Cluster     *clusterReport `json:"cluster,omitempty"`
	GeneratedAt string         `json:"generated_at"`
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("wrbpgload", flag.ContinueOnError)
	var (
		target      = fs.String("target", "", "comma-separated base URLs of running wrbpgd replicas, load-balanced round-robin (mutually exclusive with -inproc)")
		inproc      = fs.Bool("inproc", false, "serve an in-process wrbpg server on a loopback port (enables -fault-every)")
		replicas    = fs.Int("inproc-replicas", 0, "boot an N-replica in-process cluster (consistent-hash ring, peer fill) and load it round-robin")
		killSoak    = fs.Duration("kill-soak", 0, "after the main run, soak this long while one replica drains and dies mid-soak (-inproc-replicas only)")
		hotBudgets  = fs.Int("hot-budgets", 0, "draw schedule budgets from a fixed roster of this size per shape, bounding the distinct-key population (0 = unbounded)")
		maxDup      = fs.Int64("max-duplicates", -1, "exit nonzero if fleet duplicate cold solves exceed this (-inproc-replicas only, -1 = no bound)")
		duration    = fs.Duration("duration", 10*time.Second, "main measurement duration")
		workers     = fs.Int("workers", 4, "closed-loop concurrent requesters (ignored when -rate or -overload set)")
		rate        = fs.Float64("rate", 0, "open-loop offered rate in req/s (overrides -workers)")
		maxPending  = fs.Int("max-pending", 0, "open-loop in-flight cap (0 = derived)")
		timeout     = fs.Duration("timeout", 500*time.Millisecond, "per-request solve deadline sent as timeout_ms")
		retries     = fs.Int("retries", 0, "client retries on 429/503 (honors Retry-After)")
		seed        = fs.Int64("seed", 1, "PRNG seed for shapes and budgets")
		mixFlag     = fs.String("mix", "6,2,2", "traffic weights schedule,sweep,patch")
		faultEvery  = fs.Int("fault-every", 0, "inject a panic into every Nth solver work item (-inproc only, 0 = off)")
		maxInflight = fs.Int("max-inflight", 0, "-inproc server max concurrent solves (0 = default)")
		maxQueue    = fs.Int("max-queue", 0, "-inproc server admission queue depth (0 = default)")
		overload    = fs.Float64("overload", 0, "measure capacity closed-loop, then offer this multiple of it open-loop")
		probe       = fs.Duration("probe", 3*time.Second, "closed-loop capacity probe duration for -overload")
		outPath     = fs.String("out", "", "write the JSON report here")
		assertNo5xx = fs.Bool("assert-no-5xx", false, "exit nonzero if any response was a 5xx")
		maxP99      = fs.Duration("max-p99", 0, "exit nonzero if the run's p99 exceeds this (0 = no bound)")
		sloP99      = fs.Duration("slo-p99", 0, "latency SLO gate: exit nonzero if the run's p99 exceeds this target (0 = no gate)")
		sloAvail    = fs.Float64("slo-availability", 0, "availability SLO gate: exit nonzero if sheds+5xx burned more than the error budget for this target fraction, e.g. 0.999 (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	modes := 0
	for _, on := range []bool{*target != "", *inproc, *replicas > 0} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return errors.New("exactly one of -target, -inproc or -inproc-replicas is required")
	}
	if *faultEvery > 0 && !*inproc {
		return errors.New("-fault-every needs -inproc (the fault hook is process-local)")
	}
	if (*killSoak > 0 || *maxDup >= 0) && *replicas == 0 {
		return errors.New("-kill-soak and -max-duplicates need -inproc-replicas")
	}
	if *replicas == 1 {
		return errors.New("-inproc-replicas needs at least 2 (use -inproc for a single server)")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	var targets []string
	for _, t := range strings.Split(*target, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	var flt *fleet
	if *replicas > 1 {
		var err error
		flt, err = startFleet(*replicas, serve.Options{MaxInflight: *maxInflight, MaxQueue: *maxQueue}, uint64(*seed))
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		defer flt.stop()
		targets = flt.urls
		fmt.Fprintf(stdout, "wrbpgload inproc fleet: %s\n", strings.Join(targets, ", "))
	}

	var base string
	var faults atomic.Int64
	if *inproc {
		srv := serve.New(serve.Options{MaxInflight: *maxInflight, MaxQueue: *maxQueue})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go httpSrv.Serve(ln) //nolint:errcheck // torn down with the process
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stdout, "wrbpgload inproc server on %s\n", base)

		if *faultEvery > 0 {
			n := int64(*faultEvery)
			var calls atomic.Int64
			restore := par.SetFaultHook(func(i int) {
				if calls.Add(1)%n == 0 {
					faults.Add(1)
					panic(fmt.Sprintf("wrbpgload: injected fault (item %d)", i))
				}
			})
			defer restore()
		}
	}

	if base != "" {
		targets = []string{base}
	}
	cfg := loadgen.Config{
		Mix:        mix,
		Duration:   *duration,
		Timeout:    *timeout,
		MaxRetries: *retries,
		MaxPending: *maxPending,
		Seed:       *seed,
		HotBudgets: *hotBudgets,
	}
	if len(targets) == 1 {
		cfg.BaseURL = targets[0]
	} else {
		cfg.BaseURLs = targets
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	rep := &report{Target: strings.Join(targets, ","), Mix: mix, TimeoutMS: timeout.Milliseconds(), FaultEvery: *faultEvery}
	ctx := context.Background()

	switch {
	case *overload > 0:
		// Phase 1: capacity, closed loop.
		pcfg := cfg
		pcfg.Workers, pcfg.Duration = *workers, *probe
		capRes, err := loadgen.Run(ctx, pcfg)
		if err != nil {
			return fmt.Errorf("capacity probe: %w", err)
		}
		rep.Capacity = capRes
		offered := capRes.ThroughputRPS * *overload
		if offered < 1 {
			offered = 1
		}
		fmt.Fprintf(stdout, "capacity %.0f rps (p99 %v); offering %.0f rps (%gx)\n",
			capRes.ThroughputRPS, time.Duration(capRes.P99US)*time.Microsecond, offered, *overload)
		// Phase 2: overload, open loop.
		cfg.Rate = offered
	case *rate > 0:
		cfg.Rate = *rate
	default:
		cfg.Workers = *workers
	}

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	rep.Run = res
	rep.FaultsFired = faults.Load()

	if flt != nil {
		// Fleet accounting is snapshotted before the kill soak so the
		// duplicate metric covers exactly the main phase's traffic.
		cr := &clusterReport{
			Replicas:     len(flt.urls),
			FleetSolves:  flt.solves(),
			DistinctKeys: res.DistinctScheduleKeys,
		}
		cr.DuplicateSolves = int64(cr.FleetSolves) - int64(cr.DistinctKeys)
		cr.PeerRequests, cr.PeerFill = flt.peerTraffic()
		rep.Cluster = cr
		fmt.Fprintf(stdout, "fleet: solves=%d distinct_keys=%d duplicates=%d peer_requests=%d fill=%v\n",
			cr.FleetSolves, cr.DistinctKeys, cr.DuplicateSolves, cr.PeerRequests, cr.PeerFill)

		if *killSoak > 0 {
			scfg := cfg
			scfg.Duration = *killSoak
			type soakOut struct {
				res *loadgen.Result
				err error
			}
			ch := make(chan soakOut, 1)
			go func() {
				r, e := loadgen.Run(ctx, scfg)
				ch <- soakOut{r, e}
			}()
			// Kill a quarter of the way in: in-flight requests, ring
			// rebalance and re-routing all happen under live traffic.
			time.Sleep(*killSoak / 4)
			cr.KilledReplica = flt.killOne(stdout)
			so := <-ch
			if so.err != nil {
				return fmt.Errorf("kill soak: %w", so.err)
			}
			cr.KillSoak = so.res
			fmt.Fprintf(stdout, "kill soak: sent=%d ok=%d shed429=%d 5xx=%d transport=%d\n",
				so.res.Sent, so.res.OK, so.res.Shed429, so.res.ServerErr, so.res.TransportErr)
		}
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	fmt.Fprintf(stdout,
		"%s: sent=%d ok=%d shed429=%d degraded=%d 5xx=%d 4xx=%d blown=%d dropped=%d faults=%d p50=%v p99=%v %.0f rps\n",
		res.Mode, res.Sent, res.OK, res.Shed429, res.DegradedShed, res.ServerErr,
		res.ClientErr, res.DeadlineBlown, res.Dropped, rep.FaultsFired,
		time.Duration(res.P50US)*time.Microsecond, time.Duration(res.P99US)*time.Microsecond,
		res.ThroughputRPS)

	if *outPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *outPath)
	}

	// Assertions last, so the report is on disk even when they fail.
	if *assertNo5xx && res.ServerErr > 0 {
		return fmt.Errorf("%d server errors (5xx) — overload must shed, not fail", res.ServerErr)
	}
	if cr := rep.Cluster; cr != nil {
		if *assertNo5xx && cr.KillSoak != nil && cr.KillSoak.ServerErr > 0 {
			return fmt.Errorf("%d server errors (5xx) during the kill soak — losing a replica must cost capacity, not correctness", cr.KillSoak.ServerErr)
		}
		if *maxDup >= 0 && cr.DuplicateSolves > *maxDup {
			return fmt.Errorf("%d duplicate cold solves across the fleet exceed the -max-duplicates bound %d (cross-replica singleflight should dedup)", cr.DuplicateSolves, *maxDup)
		}
	}
	if *assertNo5xx && res.DeadlineBlown > 0 {
		return fmt.Errorf("%d deadline-blown 200s — admission should have shed them", res.DeadlineBlown)
	}
	if *maxP99 > 0 && time.Duration(res.P99US)*time.Microsecond > *maxP99 {
		return fmt.Errorf("p99 %v exceeds bound %v",
			time.Duration(res.P99US)*time.Microsecond, *maxP99)
	}
	// SLO gates: the identical objective arithmetic wrbpgd serves live
	// on GET /v1/slo, applied to the offline run — burn rate above 1.0
	// means the run spent more than its whole error budget.
	if *sloAvail > 0 {
		if *sloAvail >= 1 {
			return fmt.Errorf("-slo-availability %v: want a target fraction in (0,1), e.g. 0.999", *sloAvail)
		}
		total := uint64(res.OK + res.Shed429 + res.ClientErr + res.ServerErr)
		bad := uint64(res.Shed429 + res.ServerErr)
		if burn := slo.BurnRate(total, bad, 1-*sloAvail); burn > 1 {
			return fmt.Errorf("availability SLO violated: %d/%d bad responses burn %.2fx the error budget for target %v",
				bad, total, burn, *sloAvail)
		}
	}
	if *sloP99 > 0 && time.Duration(res.P99US)*time.Microsecond > *sloP99 {
		return fmt.Errorf("latency SLO violated: p99 %v exceeds target %v",
			time.Duration(res.P99US)*time.Microsecond, *sloP99)
	}
	return nil
}

// parseMix reads "schedule,sweep,patch" weights.
func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return loadgen.Mix{}, fmt.Errorf("mix %q: want three comma-separated weights (schedule,sweep,patch)", s)
	}
	var w [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return loadgen.Mix{}, fmt.Errorf("mix %q: bad weight %q", s, p)
		}
		w[i] = n
	}
	if w[0]+w[1]+w[2] == 0 {
		return loadgen.Mix{}, fmt.Errorf("mix %q: all weights zero", s)
	}
	return loadgen.Mix{Schedule: w[0], Sweep: w[1], Patch: w[2]}, nil
}
