package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"wrbpg/internal/serve"
	"wrbpg/internal/serve/wire"
)

// TestServeEndToEnd builds the real wrbpgd binary, boots it on a
// random port, exercises every endpoint with a plain HTTP client, and
// verifies graceful shutdown on SIGTERM. This is the `make serve-check`
// entry point.
func TestServeEndToEnd(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven shutdown test is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "wrbpgd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-default-timeout", "10s", "-drain-delay", "500ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // safety net; normal path is SIGTERM below

	// The first stdout line announces the bound address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v (stderr: %s)", err, stderr.String())
	}
	addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "wrbpgd listening on "))
	if addr == "" || strings.Contains(addr, " ") {
		t.Fatalf("unparseable listen line %q", line)
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	get := func(path string, out any) int {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s: decoding: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	post := func(path, body string, out any) int {
		t.Helper()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("POST %s: decoding: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Liveness, and readiness: a fresh idle daemon is routable.
	var health map[string]any
	if code := get("/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: code %d body %v", code, health)
	}
	var ready map[string]any
	if code := get("/readyz", &ready); code != http.StatusOK || ready["status"] != "ok" {
		t.Fatalf("readyz: code %d body %v", code, ready)
	}

	// Cold solve, then an identical warm request answered by the cache.
	reqBody := `{"family":"dwt","n":32,"d":4,"budget_bits":2048}`
	var cold, warm wire.ScheduleResult
	if code := post("/v1/schedule", reqBody, &cold); code != http.StatusOK {
		t.Fatalf("cold schedule: code %d", code)
	}
	if cold.Cache != "miss" || cold.Source != "optimal" || cold.CostBits < cold.LowerBoundBits {
		t.Fatalf("cold result: %+v", cold)
	}
	if code := post("/v1/schedule", reqBody, &warm); code != http.StatusOK {
		t.Fatalf("warm schedule: code %d", code)
	}
	if warm.Cache != "hit" || warm.CacheKey != cold.CacheKey || warm.CostBits != cold.CostBits {
		t.Fatalf("warm result not a cache hit of the cold one:\ncold %+v\nwarm %+v", cold, warm)
	}

	// Malformed requests come back as structured 400s, not 500s.
	var werr wire.Error
	if code := post("/v1/schedule", `{"family":"mvm","m":0,"n":8,"budget_bits":64}`, &werr); code != http.StatusBadRequest || werr.Message == "" {
		t.Fatalf("invalid mvm: code %d body %+v", code, werr)
	}

	// Batch with partial failure.
	batch := fmt.Sprintf(`{"requests":[%s,{"family":"nope","budget_bits":1},%s]}`,
		reqBody, `{"family":"mvm","m":4,"n":4,"budget_bits":1024}`)
	var bresp wire.BatchResponse
	if code := post("/v1/schedule/batch", batch, &bresp); code != http.StatusOK {
		t.Fatalf("batch: code %d", code)
	}
	if bresp.Succeeded != 2 || bresp.Failed != 1 || len(bresp.Items) != 3 {
		t.Fatalf("batch outcome: %+v", bresp)
	}
	if bresp.Items[1].Error == nil || bresp.Items[1].Result != nil {
		t.Fatalf("batch item 1 should have failed: %+v", bresp.Items[1])
	}

	// Bounds endpoint, no solve.
	var lb wire.LowerBoundResult
	if code := get("/v1/lowerbound?family=dwt&n=32&d=4", &lb); code != http.StatusOK {
		t.Fatalf("lowerbound: code %d", code)
	}
	if lb.LowerBoundBits <= 0 || int64(cold.LowerBoundBits) != lb.LowerBoundBits {
		t.Fatalf("lowerbound mismatch: endpoint %d vs schedule %d", lb.LowerBoundBits, cold.LowerBoundBits)
	}

	// Budget sweep: one warm session answers several budgets, including
	// an infeasible one (a legitimate answer, not a failure), and the
	// shared-budget item agrees with the single-budget solve above.
	sweepBody := fmt.Sprintf(`{"family":"dwt","n":32,"d":4,"budgets_bits":[%d,2048,%d]}`,
		lb.MinExistenceBits-1, lb.MinExistenceBits)
	var sweep1, sweep2 wire.SweepResponse
	if code := post("/v1/schedule/sweep", sweepBody, &sweep1); code != http.StatusOK {
		t.Fatalf("sweep: code %d", code)
	}
	if sweep1.Session != "miss" || sweep1.Succeeded != 3 || sweep1.Failed != 0 || len(sweep1.Items) != 3 {
		t.Fatalf("sweep outcome: %+v", sweep1)
	}
	if sweep1.Items[0].Feasible || sweep1.Items[0].Error != nil {
		t.Fatalf("below-existence budget should be infeasible without error: %+v", sweep1.Items[0])
	}
	if !sweep1.Items[1].Feasible || sweep1.Items[1].CostBits != cold.CostBits {
		t.Fatalf("sweep at 2048 disagrees with /v1/schedule: %+v vs cost %d", sweep1.Items[1], cold.CostBits)
	}
	if code := post("/v1/schedule/sweep", sweepBody, &sweep2); code != http.StatusOK || sweep2.Session != "hit" {
		t.Fatalf("repeat sweep should hit the session pool: code %d session %q", code, sweep2.Session)
	}
	if code := post("/v1/schedule/sweep", `{"family":"dwt","n":32,"d":4,"budgets_bits":[]}`, &werr); code != http.StatusBadRequest {
		t.Fatalf("empty sweep accepted: code %d", code)
	}

	// Incremental patch: an inline base builds (and pools) the warm
	// session, a second call addresses it by base_key and reuses the
	// surviving memo cells, and the answers agree with a cold solve of
	// the patched instance through /v1/schedule.
	var klb wire.LowerBoundResult
	if code := get("/v1/lowerbound?family=ktree&k=3&height=3", &klb); code != http.StatusOK {
		t.Fatalf("ktree lowerbound: code %d", code)
	}
	pb := klb.MinExistenceBits + 9
	var p1, p2 wire.PatchResponse
	patchBody := fmt.Sprintf(`{"family":"ktree","k":3,"height":3,"deltas":[{"node":0,"weight_bits":1}],"budgets_bits":[%d]}`, pb)
	if code := post("/v1/schedule/patch", patchBody, &p1); code != http.StatusOK {
		t.Fatalf("inline patch: code %d", code)
	}
	if p1.Session != "miss" || p1.ChangedNodes != 1 || p1.Failed != 0 || p1.BaseKey == "" {
		t.Fatalf("inline patch outcome: %+v", p1)
	}
	byKey := fmt.Sprintf(`{"base_key":%q,"deltas":[{"node":0,"weight_bits":2}],"budgets_bits":[%d]}`, p1.BaseKey, pb)
	if code := post("/v1/schedule/patch", byKey, &p2); code != http.StatusOK {
		t.Fatalf("base_key patch: code %d", code)
	}
	if p2.Session != "hit" || p2.CellsInvalidated <= 0 || p2.CellsReused <= 0 {
		t.Fatalf("base_key patch outcome: %+v", p2)
	}
	var pcold wire.ScheduleResult
	scheduleBody := fmt.Sprintf(`{"family":"ktree","k":3,"height":3,"deltas":[{"node":0,"weight_bits":2}],"budget_bits":%d}`, pb)
	if code := post("/v1/schedule", scheduleBody, &pcold); code != http.StatusOK {
		t.Fatalf("schedule with deltas: code %d", code)
	}
	if !p2.Items[0].Feasible || pcold.CostBits != p2.Items[0].CostBits {
		t.Fatalf("patch cost %+v disagrees with cold patched solve cost %d", p2.Items[0], pcold.CostBits)
	}
	if code := post("/v1/schedule/patch", fmt.Sprintf(`{"base_key":"ktree/0000","deltas":[{"node":0,"weight_bits":1}],"budgets_bits":[%d]}`, pb), &werr); code != http.StatusNotFound {
		t.Fatalf("unknown base_key: code %d, want 404", code)
	}

	// Counters reflect the traffic above.
	var stats serve.Stats
	if code := get("/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz: code %d", code)
	}
	if stats.Cache.Hits < 2 || stats.Cache.Misses < 1 || stats.Solves < 2 || stats.BadRequests < 1 {
		t.Fatalf("statsz counters: %+v", stats)
	}
	if stats.Sweeps < 3 || stats.SweepBudgets < 6 || stats.SessionHits < 1 ||
		stats.SessionMisses < 1 || stats.SessionsLive < 1 {
		t.Fatalf("sweep counters: %+v", stats)
	}
	if stats.Patches < 2 || stats.PatchDeltas < 2 || stats.PatchChangedNodes < 2 ||
		stats.SessionCapacity < 1 {
		t.Fatalf("patch counters: %+v", stats)
	}

	// Graceful shutdown: SIGTERM flips /readyz to "draining" while the
	// listener still answers (-drain-delay window, so load balancers
	// stop routing first), then the process drains and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDraining := false
	for i := 0; i < 40 && !sawDraining; i++ {
		resp, err := client.Get(base + "/readyz")
		if err != nil {
			break // listener already closed: the window was missed, tolerated below
		}
		var rd map[string]any
		json.NewDecoder(resp.Body).Decode(&rd) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && rd["status"] == "draining" {
			sawDraining = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Errorf("never observed /readyz 503 draining inside the drain-delay window")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("daemon did not exit within 30s of SIGTERM\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining in-flight solves") {
		t.Errorf("shutdown log missing drain message:\n%s", stderr.String())
	}
}

// TestRunRejectsBadFlags keeps flag errors as errors, not hangs.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}, os.Stdout); err == nil {
		t.Fatal("missing flag value accepted")
	}
	if err := run([]string{"positional"}, os.Stdout); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1:bad"}, os.Stdout); err == nil {
		t.Fatal("unlistenable address accepted")
	}
	if err := run([]string{"-peers", "http://127.0.0.1:9"}, os.Stdout); err == nil {
		t.Fatal("-peers without -cluster-self accepted")
	} else if !strings.Contains(err.Error(), "cluster-self") {
		t.Fatalf("peer validation error should name -cluster-self: %v", err)
	}
}
