// Command wrbpgd is the scheduling daemon: an HTTP/JSON service over
// the hardened solve facade with a content-addressed schedule cache.
// See docs/SERVICE.md for the API and docs/OBSERVABILITY.md for the
// metrics, tracing and profiling surface.
//
// The daemon prints "wrbpgd listening on ADDR" once the listener is
// bound (so -addr :0 is usable from scripts and tests), and drains
// in-flight solves on SIGINT/SIGTERM before exiting. With -debug-addr
// a second listener serves /debug/pprof/* and /metrics; it prints
// "wrbpgd debug listening on ADDR" when bound.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wrbpg/internal/cluster"
	"wrbpg/internal/guard"
	"wrbpg/internal/obs"
	"wrbpg/internal/serve"
	"wrbpg/internal/solve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wrbpgd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: flag parsing, listener setup, and
// the serve/shutdown lifecycle.
func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("wrbpgd", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
		debugAddr      = fs.String("debug-addr", "", "optional debug listen address serving /debug/pprof/* and /metrics (keep it loopback)")
		cacheShards    = fs.Int("cache-shards", 0, "schedule cache shard count (0 = default)")
		cachePerShard  = fs.Int("cache-per-shard", 0, "schedule cache entries per shard (0 = default)")
		maxInflight    = fs.Int("max-inflight", 0, "max concurrent solver invocations (0 = default)")
		defaultTimeout = fs.Duration("default-timeout", 0, "per-solve deadline when the request names none (0 = default)")
		maxTimeout     = fs.Duration("max-timeout", 0, "upper clamp on request-supplied solve deadlines (0 = default)")
		maxMemo        = fs.Int("max-memo", 0, "memo-entry ceiling per solve, 0 = unlimited")
		maxStates      = fs.Int("max-states", 0, "search-state ceiling per solve, 0 = unlimited")
		maxSweep       = fs.Int("max-sweep-budgets", 0, "max budgets per sweep request (0 = default)")
		sweepSessions  = fs.Int("sweep-sessions", 0, "warm solver sessions kept for /v1/schedule/sweep (0 = default)")
		traceBuffer    = fs.Int("trace-buffer", 0, "completed request traces kept for /v1/trace/{id} (0 = default)")
		maxQueue       = fs.Int("max-queue", 0, "admission queue depth behind the solver slots (0 = default 8×max-inflight, negative = no queue)")
		brkWindow      = fs.Int("breaker-window", 0, "fallback-storm breaker sliding window size (0 = default, negative = disabled)")
		brkThreshold   = fs.Float64("breaker-threshold", 0, "fallback rate that trips the breaker (0 = default)")
		brkMinSamples  = fs.Int("breaker-min-samples", 0, "window samples required before the breaker may trip (0 = default)")
		brkCooldown    = fs.Duration("breaker-cooldown", 0, "open-state cooldown before a half-open probe (0 = default)")
		readTimeout    = fs.Duration("read-timeout", 30*time.Second, "max duration for reading an entire request, body included")
		writeTimeout   = fs.Duration("write-timeout", 0, "max duration for writing a response; 0 derives max-timeout + 30s (must exceed the longest solve deadline)")
		idleTimeout    = fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
		drainTimeout   = fs.Duration("drain-timeout", 35*time.Second, "grace period for in-flight solves on shutdown")
		drainDelay     = fs.Duration("drain-delay", 0, "pause between announcing drain on /readyz and closing the listener, so load balancers stop routing first")
		peers          = fs.String("peers", "", "comma-separated base URLs of the other replicas (enables cluster peer routing; requires -cluster-self)")
		clusterSelf    = fs.String("cluster-self", "", "this replica's advertised base URL on the ring, e.g. http://10.0.0.3:8080")
		clusterSeed    = fs.Uint64("cluster-seed", 0, "ring hash seed; must match across the fleet")
		peerVNodes     = fs.Int("peer-vnodes", 0, "virtual nodes per ring member (0 = default; must match across the fleet)")
		peerTimeout    = fs.Duration("peer-timeout", 0, "peer-fill round-trip bound (0 = default 250ms)")
		peerHealth     = fs.Duration("peer-health-interval", 0, "peer /readyz probe period (0 = default 1s)")
		sloLatencyP99  = fs.Duration("slo-latency-p99", 0, "latency SLO target: p99 of API requests must finish within this (0 = default 250ms)")
		sloAvail       = fs.Float64("slo-availability", 0, "availability SLO target fraction of requests not shed/5xx (0 = default 0.999)")
	)
	logFlags := obs.AddLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	// Cluster membership: -peers turns this replica into a ring member
	// that forwards cold solves for keys it does not own to their owner
	// (docs/CLUSTER.md). Peer routing is strictly additive — a replica
	// with an empty peer list behaves exactly like the single-node
	// daemon.
	var cl *cluster.Cluster
	if *peers != "" || *clusterSelf != "" {
		if *clusterSelf == "" {
			return errors.New("-peers requires -cluster-self (the ring needs this replica's advertised URL)")
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		cl, err = cluster.New(cluster.Config{
			Self:           *clusterSelf,
			Peers:          peerList,
			VNodes:         *peerVNodes,
			Seed:           *clusterSeed,
			PeerTimeout:    *peerTimeout,
			HealthInterval: *peerHealth,
		})
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}

	srv := serve.New(serve.Options{
		Cluster:        cl,
		Logger:         logger,
		CacheShards:    *cacheShards,
		CachePerShard:  *cachePerShard,
		MaxInflight:    *maxInflight,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Limits: guard.Limits{
			MaxMemoEntries: *maxMemo,
			MaxStates:      *maxStates,
		},
		MaxSweepBudgets:   *maxSweep,
		SweepSessions:     *sweepSessions,
		TraceBuffer:       *traceBuffer,
		MaxQueue:          *maxQueue,
		BreakerWindow:     *brkWindow,
		BreakerThreshold:  *brkThreshold,
		BreakerMinSamples: *brkMinSamples,
		BreakerCooldown:   *brkCooldown,
		SLOLatencyP99:     *sloLatencyP99,
		SLOAvailability:   *sloAvail,
	})

	// The write timeout must outlast the slowest admitted solve (queue
	// wait + solve deadline + encoding), or the daemon would cut off
	// exactly the long-running answers it queued for.
	if *writeTimeout <= 0 {
		mt := *maxTimeout
		if mt <= 0 {
			mt = 30 * time.Second // serve.Options default
		}
		*writeTimeout = mt + 30*time.Second
	}

	// Surface degraded solves in the daemon log: a burst of fallbacks
	// means the deadline or resource ceilings are too tight for the
	// traffic mix.
	restore := solve.SetHook(func(name string, out solve.Outcome, err error) {
		switch {
		case err != nil:
			logger.Error("solve failed", "workload", name, "err", err)
		case out.Source == solve.SourceFallback:
			logger.Warn("solve degraded to baseline", "workload", name,
				"reason", solve.FallbackReason(out.Err), "err", out.Err, "elapsed", out.Elapsed)
		}
	})
	defer restore()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout so callers that passed :0 can
	// read the real port; everything else logs to stderr.
	fmt.Fprintf(stdout, "wrbpgd listening on %s\n", ln.Addr())
	logger.Info("serving", "config", srv.String(), "addr", ln.Addr().String())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// The debug listener is separate so pprof and metrics scraping
	// never share the public port; it is torn down with the daemon.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(stdout, "wrbpgd debug listening on %s\n", dln.Addr())
		logger.Info("debug listener up", "addr", dln.Addr().String())
		debugSrv = &http.Server{
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       *readTimeout,
			WriteTimeout:      *writeTimeout,
			IdleTimeout:       *idleTimeout,
		}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The health loop ejects unreachable peers from the ring and
	// re-admits them when /readyz answers again; it dies with the
	// signal context on shutdown.
	if cl != nil {
		cl.Start(ctx)
		logger.Info("cluster", "members", len(cl.Health().Peers)+1, "self", cl.Self())
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	// Announce the drain on /readyz first: load balancers see 503
	// "draining" and stop routing while the listener is still accepting,
	// so no request hits a closed port. The delay gives them a health-
	// check interval to notice before connections start closing.
	srv.BeginDrain()
	if *drainDelay > 0 {
		logger.Info("shutdown: announced on /readyz, delaying listener close", "delay", *drainDelay)
		time.Sleep(*drainDelay)
	}
	logger.Info("shutdown: draining in-flight solves", "grace", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Shutdown(dctx) //nolint:errcheck // best-effort; the daemon is exiting
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("exit", "cache", slog.AnyValue(srv.CacheStats()))
	return nil
}
