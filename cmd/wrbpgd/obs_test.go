package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"wrbpg/internal/obs"
)

// TestObsEndToEnd is the `make obs-check` entry point: it boots the
// real daemon with a debug listener and JSON logs, drives a traced
// request, and validates the whole observability surface — /metrics
// parses as Prometheus text exposition with a full series catalog, the
// trace is retrievable by ID, pprof answers on the debug port, and
// stderr carries structured JSON log records.
func TestObsEndToEnd(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("signal-driven shutdown test is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "wrbpgd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-debug-addr", "127.0.0.1:0",
		"-log-format", "json",
		"-default-timeout", "10s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // safety net; normal path is SIGTERM below

	// Stdout announces the public listener first, the debug one second.
	rd := bufio.NewReader(stdout)
	readAddr := func(prefix string) string {
		t.Helper()
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("reading %q line: %v (stderr: %s)", prefix, err, stderr.String())
		}
		addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), prefix))
		if addr == "" || strings.Contains(addr, " ") {
			t.Fatalf("unparseable line %q", line)
		}
		return addr
	}
	base := "http://" + readAddr("wrbpgd listening on")
	debug := "http://" + readAddr("wrbpgd debug listening on")
	client := &http.Client{Timeout: 30 * time.Second}

	// A traced schedule request: the response must carry the trace ID
	// header and the trace must be retrievable afterwards.
	req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule",
		strings.NewReader(`{"family":"dwt","n":32,"d":4,"budget_bits":256}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Wrbpg-Trace", "on")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Wrbpg-Trace-Id")
	if traceID == "" {
		t.Fatal("traced request returned no X-Wrbpg-Trace-Id header")
	}
	var ex obs.TraceExport
	tresp, err := client.Get(base + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(tresp.Body).Decode(&ex)
	tresp.Body.Close()
	if err != nil || tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d, err %v", tresp.StatusCode, err)
	}
	if len(ex.Spans) == 0 || ex.Spans[0].Name != "request" {
		t.Fatalf("trace export %+v, want a request root span", ex)
	}

	// /metrics must parse as text exposition 0.0.4 with the full
	// catalog, on both the public and the debug listener.
	for _, url := range []string{base + "/metrics", debug + "/metrics"} {
		mresp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if mresp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", url, mresp.StatusCode)
		}
		if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("%s: Content-Type %q, want exposition 0.0.4", url, ct)
		}
		samples, err := obs.ParseText(string(raw))
		if err != nil {
			t.Fatalf("%s unparseable: %v", url, err)
		}
		series := map[string]bool{}
		for _, s := range samples {
			series[s.Series()] = true
		}
		if len(series) < 15 {
			t.Errorf("%s exposes %d series, want >= 15:\n%s", url, len(series), raw)
		}
	}

	// pprof on the debug listener only.
	presp, err := client.Get(debug + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body) //nolint:errcheck
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("debug pprof index: %d", presp.StatusCode)
	}

	// Graceful shutdown, then check the structured logs: every stderr
	// line must be a JSON record with msg and level fields.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	lines := strings.Split(strings.TrimSpace(stderr.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no structured log output on stderr")
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line %d is not JSON with -log-format=json: %q", i, line)
		}
		if rec["msg"] == nil || rec["level"] == nil {
			t.Errorf("stderr line %d lacks msg/level: %q", i, line)
		}
	}
}
