package wrbpg

import (
	"testing"
)

// The facade must cover the full quickstart path without touching the
// internal packages directly.
func TestFacadeDWT(t *testing.T) {
	g, err := BuildDWT(16, 4, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(g.G); lb != (16+16)*16 {
		t.Errorf("LB = %d", lb)
	}
	sched, cost, err := ScheduleDWT(g, 6*16)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Simulate(g.G, 6*16, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != cost {
		t.Errorf("cost mismatch: %d vs %d", stats.Cost, cost)
	}
}

func TestFacadeMVM(t *testing.T) {
	g, err := BuildMVM(4, 5, DoubleAccumulator(16))
	if err != nil {
		t.Fatal(err)
	}
	budget := g.MinMemory()
	sched, cost, err := ScheduleMVM(g, budget)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Simulate(g.G, budget, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != cost || stats.Cost != LowerBound(g.G) {
		t.Errorf("cost %d, search %d, LB %d", stats.Cost, cost, LowerBound(g.G))
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := BuildDWT(3, 1, Equal(16)); err == nil {
		t.Error("bad DWT params accepted")
	}
	if _, err := BuildMVM(1, 1, Equal(16)); err == nil {
		t.Error("bad MVM params accepted")
	}
	g, err := BuildDWT(8, 3, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScheduleDWT(g, 16); err == nil {
		t.Error("infeasible budget accepted")
	}
	m, err := BuildMVM(4, 4, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScheduleMVM(m, 16); err == nil {
		t.Error("infeasible MVM budget accepted")
	}
}

// TestFacadeExtensions: every extension dataflow schedules to its
// lower bound through the facade at its minimum memory.
func TestFacadeExtensions(t *testing.T) {
	fftG, err := BuildFFT(16, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if sched, cost, err := ScheduleFFT(fftG, fftG.MinMemory()); err != nil {
		t.Fatal(err)
	} else if stats, err := Simulate(fftG.G, fftG.MinMemory(), sched); err != nil || stats.Cost != cost {
		t.Fatalf("fft: %v cost %d vs %d", err, stats.Cost, cost)
	}

	mmmG, err := BuildMMM(3, 2, 4, DoubleAccumulator(16))
	if err != nil {
		t.Fatal(err)
	}
	if sched, cost, err := ScheduleMMM(mmmG, mmmG.MinMemory()); err != nil {
		t.Fatal(err)
	} else if stats, err := Simulate(mmmG.G, mmmG.MinMemory(), sched); err != nil || stats.Cost != cost || cost != LowerBound(mmmG.G) {
		t.Fatalf("mmm: %v cost %d vs %d (LB %d)", err, stats.Cost, cost, LowerBound(mmmG.G))
	}

	convG, err := BuildConv(10, 4, 2, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if sched, cost, err := ScheduleConv(convG, convG.MinMemory()); err != nil {
		t.Fatal(err)
	} else if stats, err := Simulate(convG.G, convG.MinMemory(), sched); err != nil || stats.Cost != cost || cost != LowerBound(convG.G) {
		t.Fatalf("conv: %v cost %d vs %d", err, stats.Cost, cost)
	}

	bG, err := BuildBanded(8, 2, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	cost, peak := bG.Metrics()
	if stats, err := Simulate(bG.G, peak, bG.Schedule()); err != nil || stats.Cost != cost || cost != LowerBound(bG.G) {
		t.Fatalf("banded: %v", err)
	}
}

func TestFacadeMoveKinds(t *testing.T) {
	// The re-exported constants must match the internal ones in
	// behaviour: a hand-written schedule through the facade validates.
	g, err := BuildDWT(2, 1, Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	x1, x2 := g.NodeAt(1, 1), g.NodeAt(1, 2)
	a, c := g.NodeAt(2, 1), g.NodeAt(2, 2)
	sched := Schedule{
		{Kind: M1, Node: x1}, {Kind: M1, Node: x2},
		{Kind: M3, Node: a}, {Kind: M2, Node: a}, {Kind: M4, Node: a},
		{Kind: M3, Node: c}, {Kind: M2, Node: c}, {Kind: M4, Node: c},
		{Kind: M4, Node: x1}, {Kind: M4, Node: x2},
	}
	stats, err := Simulate(g.G, 64, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != 4*16 {
		t.Errorf("cost = %d, want 64", stats.Cost)
	}
}
