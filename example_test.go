package wrbpg_test

import (
	"fmt"

	"wrbpg"
)

// Build a small DWT, schedule it optimally under five words of fast
// memory, and validate the schedule against the game rules.
func Example() {
	g, err := wrbpg.BuildDWT(8, 3, wrbpg.Equal(16))
	if err != nil {
		panic(err)
	}
	budget := wrbpg.Weight(5 * 16)
	sched, cost, err := wrbpg.ScheduleDWT(g, budget)
	if err != nil {
		panic(err)
	}
	stats, err := wrbpg.Simulate(g.G, budget, sched)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost=%d bits (LB %d), peak=%d bits, moves=%d\n",
		cost, wrbpg.LowerBound(g.G), stats.PeakRedWeight, len(sched))
	// Output: cost=256 bits (LB 256), peak=80 bits, moves=52
}

// The Double Accumulator weighting flips the MVM tiling strategy from
// accumulator-resident to vector-resident.
func ExampleBuildMVM() {
	for _, cfg := range []wrbpg.WeightConfig{wrbpg.Equal(16), wrbpg.DoubleAccumulator(16)} {
		g, err := wrbpg.BuildMVM(96, 120, cfg)
		if err != nil {
			panic(err)
		}
		budget := g.MinMemory()
		_, cost, err := wrbpg.ScheduleMVM(g, budget)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d words, %d bits moved\n", cfg.Name, budget/16, cost)
	}
	// Output:
	// Equal: 99 words, 187776 bits moved
	// Double Accumulator: 126 words, 189312 bits moved
}

// Hand-written schedules are validated move by move.
func ExampleSimulate() {
	g, err := wrbpg.BuildDWT(2, 1, wrbpg.Equal(16))
	if err != nil {
		panic(err)
	}
	x1, x2 := g.NodeAt(1, 1), g.NodeAt(1, 2)
	avg, coef := g.NodeAt(2, 1), g.NodeAt(2, 2)
	sched := wrbpg.Schedule{
		{Kind: wrbpg.M1, Node: x1}, {Kind: wrbpg.M1, Node: x2},
		{Kind: wrbpg.M3, Node: avg}, {Kind: wrbpg.M2, Node: avg}, {Kind: wrbpg.M4, Node: avg},
		{Kind: wrbpg.M3, Node: coef}, {Kind: wrbpg.M2, Node: coef}, {Kind: wrbpg.M4, Node: coef},
		{Kind: wrbpg.M4, Node: x1}, {Kind: wrbpg.M4, Node: x2},
	}
	stats, err := wrbpg.Simulate(g.G, 48, sched)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost=%d peak=%d\n", stats.Cost, stats.PeakRedWeight)
	// Output: cost=64 peak=48
}
