package ktree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// TestFullStrategySetMatchesPruned: Eq. 3's full 2^k·k! enumeration
// and Eq. 4's pruned set agree everywhere — the dominance argument of
// Lemma 3.3 in executable form.
func TestFullStrategySetMatchesPruned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, 2+rng.Intn(4), 1+rng.Intn(3), 3)
		if err != nil {
			return false
		}
		minB := core.MinExistenceBudget(tr.G)
		for b := minB; b <= minB+4; b++ {
			s := NewScheduler(tr)
			if s.MinCost(b) != MinCostFullStrategySet(tr, b) {
				t.Logf("seed %d b=%d: pruned %d != full %d", seed, b, s.MinCost(b), MinCostFullStrategySet(tr, b))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFullStrategySetInfeasible(t *testing.T) {
	tr, err := Star(2, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if MinCostFullStrategySet(tr, 10) < Inf {
		t.Error("budget below existence should be Inf")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := FullTree(0, 1, unitW); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FullTree(2, 0, unitW); err == nil {
		t.Error("height 0 accepted")
	}
	if _, err := Chain(1, func(i int) cdag.Weight { return 1 }); err == nil {
		t.Error("chain length 1 accepted")
	}
	if _, err := Star(0, 1, 1); err == nil {
		t.Error("star k=0 accepted")
	}
	if _, err := Star(MaxK+1, 1, 1); err == nil {
		t.Error("star k too large accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(rng, 0, 2, 3); err == nil {
		t.Error("zero internal nodes accepted")
	}
}

func TestScheduleBelowExistenceFails(t *testing.T) {
	tr, err := FullTree(2, 2, unitW)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	if _, err := s.Schedule(core.MinExistenceBudget(tr.G) - 1); err == nil {
		t.Error("infeasible budget accepted")
	}
}

// TestMinMemoryStepAlignment: non-unit steps round the answer up.
func TestMinMemoryStepAlignment(t *testing.T) {
	tr, err := FullTree(2, 3, func(d, i int) cdag.Weight { return 16 })
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	fine, err := s.MinMemory(1)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := s.MinMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	if coarse < fine || coarse%16 != 0 {
		t.Errorf("coarse %d vs fine %d", coarse, fine)
	}
}
