package ktree

import (
	"math/rand"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// coldTreeMinCost rebuilds the full tree at tr's current weights and
// solves cold — the reference a patched scheduler must match
// bit-identically. FullTree numbers nodes deterministically, so the
// rebuilt tree shares tr's node IDs.
func coldTreeMinCost(t *testing.T, k, height int, tr *Tree, b cdag.Weight) cdag.Weight {
	t.Helper()
	tr2, err := FullTree(k, height, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.G.Len(); v++ {
		if err := tr2.G.TrySetWeight(cdag.NodeID(v), tr.G.Weight(cdag.NodeID(v))); err != nil {
			t.Fatal(err)
		}
	}
	return NewScheduler(tr2).MinCost(b)
}

// TestSetWeightsMatchesColdScheduler is the incremental-determinism
// property: a scheduler patched through a shuffled random delta
// sequence — any node, duplicates allowed — must answer every budget
// bit-identically to a cold scheduler at the same weights.
func TestSetWeightsMatchesColdScheduler(t *testing.T) {
	const k, height = 3, 3
	rng := rand.New(rand.NewSource(23))
	tr, err := FullTree(k, height, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	n := tr.G.Len()
	for round := 0; round < 30; round++ {
		ds := make([]cdag.WeightDelta, 1+rng.Intn(3))
		for i := range ds {
			ds[i] = cdag.WeightDelta{
				Node:   cdag.NodeID(rng.Intn(n)),
				Weight: 1 + cdag.Weight(rng.Intn(4)),
			}
		}
		if _, _, err := s.SetWeights(ds); err != nil {
			t.Fatalf("round %d: SetWeights(%v): %v", round, ds, err)
		}
		min := core.MinExistenceBudget(tr.G)
		for _, b := range []cdag.Weight{min - 1, min, min + 2, min + 7} {
			warm := s.MinCost(b)
			if cold := coldTreeMinCost(t, k, height, tr, b); warm != cold {
				t.Fatalf("round %d budget %d: warm %d != cold %d after %v", round, b, warm, cold, ds)
			}
		}
	}
}

// TestSetWeightsRevertsOnError: a failing delta list leaves the tree,
// the memo and the existence table exactly as they were.
func TestSetWeightsRevertsOnError(t *testing.T) {
	tr, err := FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	b := core.MinExistenceBudget(tr.G) + 5
	want := s.MinCost(b)
	saved := make([]cdag.Weight, tr.G.Len())
	for v := range saved {
		saved[v] = tr.G.Weight(cdag.NodeID(v))
	}
	for _, bad := range [][]cdag.WeightDelta{
		{{Node: 0, Weight: 0}},
		{{Node: -3, Weight: 1}},
		{{Node: cdag.NodeID(tr.G.Len() + 1), Weight: 1}},
		// Applied prefix must unwind when a later delta fails.
		{{Node: 0, Weight: 7}, {Node: 1, Weight: -2}},
	} {
		if _, _, err := s.SetWeights(bad); err == nil {
			t.Fatalf("SetWeights(%v): want error", bad)
		}
		for v := range saved {
			if w := tr.G.Weight(cdag.NodeID(v)); w != saved[v] {
				t.Fatalf("after failed %v: node %d weight %d, want %d", bad, v, w, saved[v])
			}
		}
		if got := s.MinCost(b); got != want {
			t.Fatalf("after failed %v: MinCost %d, want %d", bad, got, want)
		}
	}
}

// TestSetWeightsInvalidatesOnlyRootChain: in an in-tree, a leaf
// weight change dirties exactly the leaf-to-root chain; everything
// else survives and is reported as reused.
func TestSetWeightsInvalidatesOnlyRootChain(t *testing.T) {
	tr, err := FullTree(3, 3, func(d, i int) cdag.Weight { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	b := core.MinExistenceBudget(tr.G) + 4
	s.MinCost(b)
	leaf := tr.G.Sources()[0]
	inv, reused, err := s.SetWeights([]cdag.WeightDelta{{Node: leaf, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if inv <= 0 || reused <= 0 {
		t.Fatalf("leaf patch: inv=%d reused=%d, want both > 0", inv, reused)
	}
	// The chain has height+1 nodes; the other ~4/5 of the tree must
	// keep strictly more intervals than the chain lost.
	if reused < inv {
		t.Errorf("leaf patch invalidated %d but only %d survived; expected most of the memo to stay warm", inv, reused)
	}
}
