package ktree

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// TestPtMemoHitZeroAlloc: a warm Pt(v, b) cell costs one budget-index
// probe and a slice load — no allocations.
func TestPtMemoHitZeroAlloc(t *testing.T) {
	tr, err := FullTree(4, 2, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	b := core.MinExistenceBudget(tr.G) + 2
	want := s.MinCost(b) // warm every cell this query touches
	if n := testing.AllocsPerRun(100, func() {
		if got := s.MinCost(b); got != want {
			t.Fatalf("cost changed: %d != %d", got, want)
		}
	}); n != 0 {
		t.Errorf("memo-hit MinCost allocates %v times per run, want 0", n)
	}
}

func BenchmarkFullTreeBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FullTree(2, 7, func(d, i int) cdag.Weight { return 1 }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostWarmK4(b *testing.B) {
	tr, err := FullTree(4, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
	if err != nil {
		b.Fatal(err)
	}
	s := NewScheduler(tr)
	budget := core.MinExistenceBudget(tr.G) + 3
	s.MinCost(budget)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MinCost(budget)
	}
}
