package ktree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
)

func unitW(depth, index int) cdag.Weight { return 1 }

func TestFullTreeShape(t *testing.T) {
	cases := []struct {
		k, h   int
		nodes  int
		leaves int
	}{
		{2, 1, 3, 2},
		{2, 3, 15, 8},
		{3, 2, 13, 9},
		{4, 1, 5, 4},
	}
	for _, c := range cases {
		tr, err := FullTree(c.k, c.h, unitW)
		if err != nil {
			t.Fatalf("FullTree(%d,%d): %v", c.k, c.h, err)
		}
		if tr.G.Len() != c.nodes {
			t.Errorf("FullTree(%d,%d) nodes = %d, want %d", c.k, c.h, tr.G.Len(), c.nodes)
		}
		if got := len(tr.G.Sources()); got != c.leaves {
			t.Errorf("FullTree(%d,%d) leaves = %d, want %d", c.k, c.h, got, c.leaves)
		}
		if tr.K != c.k {
			t.Errorf("FullTree(%d,%d) K = %d", c.k, c.h, tr.K)
		}
		if !tr.G.IsTree() {
			t.Errorf("FullTree(%d,%d) not a tree", c.k, c.h)
		}
	}
}

func TestNewRejectsNonTrees(t *testing.T) {
	// Diamond: a node with out-degree 2.
	g := &cdag.Graph{}
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b", a)
	c := g.AddNode(1, "c", a)
	g.AddNode(1, "d", b, c)
	if _, err := New(g); err == nil {
		t.Error("diamond should be rejected")
	}
	// Too-high in-degree.
	g2 := &cdag.Graph{}
	var ps []cdag.NodeID
	for i := 0; i < MaxK+1; i++ {
		ps = append(ps, g2.AddNode(1, "l"))
	}
	g2.AddNode(1, "r", ps...)
	if _, err := New(g2); err == nil {
		t.Error("in-degree beyond MaxK should be rejected")
	}
}

func TestChainCost(t *testing.T) {
	// A path leaf → ... → root: optimal cost is w_leaf + w_root as
	// long as every adjacent pair fits in the budget.
	tr, err := Chain(6, func(i int) cdag.Weight { return cdag.Weight(i + 1) })
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	minB := core.MinExistenceBudget(tr.G) // = 5+6 = 11
	if minB != 11 {
		t.Fatalf("existence bound = %d, want 11", minB)
	}
	want := cdag.Weight(1 + 6)
	if got := s.MinCost(minB); got != want {
		t.Errorf("chain MinCost(%d) = %d, want %d", minB, got, want)
	}
	if got := s.MinCost(minB - 1); got < Inf {
		t.Errorf("chain below existence bound should be Inf, got %d", got)
	}
}

func TestStarCost(t *testing.T) {
	// Root consuming k leaves directly: cost = k·w_leaf + w_root at
	// the existence bound (all leaves must be red simultaneously).
	for k := 1; k <= 5; k++ {
		tr, err := Star(k, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScheduler(tr)
		b := core.MinExistenceBudget(tr.G)
		if b != cdag.Weight(3*k+7) {
			t.Fatalf("star existence bound = %d", b)
		}
		want := cdag.Weight(3*k + 7)
		if got := s.MinCost(b); got != want {
			t.Errorf("star(k=%d) cost = %d, want %d", k, got, want)
		}
	}
}

func TestScheduleSimulatesToMinCost(t *testing.T) {
	trees := []*Tree{}
	for _, c := range []struct{ k, h int }{{2, 2}, {2, 3}, {3, 2}, {4, 1}} {
		tr, err := FullTree(c.k, c.h, func(depth, index int) cdag.Weight {
			return cdag.Weight(1 + (depth+index)%3)
		})
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	for _, tr := range trees {
		s := NewScheduler(tr)
		minB := core.MinExistenceBudget(tr.G)
		for b := minB; b <= minB+6; b++ {
			want := s.MinCost(b)
			if want >= Inf {
				t.Fatalf("infeasible above existence bound (b=%d)", b)
			}
			sched, err := s.Schedule(b)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := core.Simulate(tr.G, b, sched)
			if err != nil {
				t.Fatalf("b=%d: %v", b, err)
			}
			if stats.Cost != want {
				t.Errorf("b=%d: simulated %d != DP %d", b, stats.Cost, want)
			}
		}
	}
}

func TestOptimalityAgainstExactBinary(t *testing.T) {
	tr, err := FullTree(2, 2, func(depth, index int) cdag.Weight {
		return cdag.Weight(1 + depth)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	minB := core.MinExistenceBudget(tr.G)
	for b := minB; b <= minB+5; b++ {
		res, err := exact.Solve(tr.G, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MinCost(b); got != res.Cost {
			t.Errorf("b=%d: DP=%d exact=%d", b, got, res.Cost)
		}
	}
}

func TestOptimalityAgainstExactTernary(t *testing.T) {
	tr, err := FullTree(3, 1, func(depth, index int) cdag.Weight {
		return cdag.Weight(1 + index%2)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	minB := core.MinExistenceBudget(tr.G)
	for b := minB; b <= minB+4; b++ {
		res, err := exact.Solve(tr.G, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MinCost(b); got != res.Cost {
			t.Errorf("b=%d: DP=%d exact=%d", b, got, res.Cost)
		}
	}
}

// TestOptimalityRandomTreesQuick cross-checks random small weighted
// trees against the exact solver. Pt enumerates subtree-contiguous
// strategies (child permutation × spill subset), so its cost is
// always achievable — never below the exact optimum — and matches it
// exactly once the budget is generous enough to hold the whole tree.
// Under tight budgets the exact solver can be strictly cheaper by
// interleaving sibling subtrees (e.g. a 10-node binary tree at
// b = minB where pausing one subtree to hold a grandchild red beats
// every contiguous order, DP 16 vs exact 12), so exact equality at
// arbitrary budgets is NOT a property of Pt.
func TestOptimalityRandomTreesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := Random(rng, 2+rng.Intn(2), 3, 3)
		if err != nil || tr.G.Len() > 12 {
			return true // skip oversized instances
		}
		s := NewScheduler(tr)
		b := core.MinExistenceBudget(tr.G) + cdag.Weight(rng.Intn(4))
		res, err := exact.Solve(tr.G, b)
		if err != nil {
			return true
		}
		dp := s.MinCost(b)
		if dp < res.Cost {
			t.Logf("seed=%d b=%d DP=%d below exact=%d nodes=%d", seed, b, dp, res.Cost, tr.G.Len())
			return false
		}
		if generous := tr.G.TotalWeight(); b >= generous {
			if dp != res.Cost {
				t.Logf("seed=%d b=%d ≥ total %d but DP=%d != exact=%d", seed, b, generous, dp, res.Cost)
				return false
			}
		}
		// The emitted schedule must realize exactly the DP cost.
		sched, err := s.Schedule(b)
		if err != nil {
			return false
		}
		stats, err := core.Simulate(tr.G, b, sched)
		return err == nil && stats.Cost == dp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMinCostMonotone: more budget never hurts.
func TestMinCostMonotone(t *testing.T) {
	tr, err := FullTree(3, 2, func(depth, index int) cdag.Weight {
		return cdag.Weight(1 + (depth*3+index)%4)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	minB := core.MinExistenceBudget(tr.G)
	prev := s.MinCost(minB)
	for b := minB + 1; b <= minB+20; b++ {
		cur := s.MinCost(b)
		if cur > prev {
			t.Fatalf("MinCost not monotone: b=%d cost=%d, b-1 cost=%d", b, cur, prev)
		}
		prev = cur
	}
}

func TestMinMemory(t *testing.T) {
	// Complete binary tree, unit weights: the minimum budget meeting
	// the lower bound is height + 2 pebbles (classic tree pebbling).
	for h := 1; h <= 5; h++ {
		tr, err := FullTree(2, h, unitW)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScheduler(tr)
		got, err := s.MinMemory(1)
		if err != nil {
			t.Fatal(err)
		}
		if want := cdag.Weight(h + 2); got != want {
			t.Errorf("height %d: MinMemory = %d, want %d", h, got, want)
		}
	}
}

func TestMinMemoryMatchesExact(t *testing.T) {
	tr, err := FullTree(2, 2, func(depth, index int) cdag.Weight {
		return cdag.Weight(1 + depth%2)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(tr)
	got, err := s.MinMemory(1)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := exact.MinimumBudget(tr.G, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MinMemory = %d, exact = %d", got, want)
	}
}

func TestStrategyCount(t *testing.T) {
	cases := map[int]int{1: 2, 2: 8, 3: 48, 4: 384}
	for k, want := range cases {
		if got := StrategyCount(k); got != want {
			t.Errorf("StrategyCount(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestRandomTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		tr, err := Random(rng, 1+rng.Intn(6), 1+rng.Intn(4), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.G.IsTree() {
			t.Fatal("Random produced a non-tree")
		}
		if err := tr.G.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkScheduleBinaryHeight6(b *testing.B) {
	tr, err := FullTree(2, 6, unitW)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s := NewScheduler(tr)
		if _, err := s.Schedule(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyEnumerationK4(b *testing.B) {
	tr, err := FullTree(4, 2, unitW)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s := NewScheduler(tr)
		s.MinCost(core.MinExistenceBudget(tr.G) + 2)
	}
}
