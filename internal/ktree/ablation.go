package ktree

import (
	"wrbpg/internal/cdag"
)

// MinCostFullStrategySet evaluates the k-ary DP over the full
// 2^k·k! strategy set of Eq. 3 — including the four dominated
// spill-then-also-reload-the-other entries that Eq. 4 prunes for the
// binary case. It always returns the same value as
// Scheduler.MinCost; the ablation benchmark measures what the
// pruning and the skip-source-spill shortcut save.
func MinCostFullStrategySet(t *Tree, b cdag.Weight) cdag.Weight {
	g := t.G
	memo := map[cdag.NodeID]map[cdag.Weight]cdag.Weight{}
	var pt func(v cdag.NodeID, b cdag.Weight) cdag.Weight
	pt = func(v cdag.NodeID, b cdag.Weight) cdag.Weight {
		if m, ok := memo[v]; ok {
			if c, ok := m[b]; ok {
				return c
			}
		} else {
			memo[v] = map[cdag.Weight]cdag.Weight{}
		}
		var best cdag.Weight
		if g.IsSource(v) {
			if g.Weight(v) <= b {
				best = g.Weight(v)
			} else {
				best = Inf
			}
			memo[v][b] = best
			return best
		}
		parents := g.Parents(v)
		k := len(parents)
		var sum cdag.Weight
		for _, p := range parents {
			sum += g.Weight(p)
		}
		if g.Weight(v)+sum > b {
			memo[v][b] = Inf
			return Inf
		}
		best = Inf
		perm := make([]uint8, k)
		for i := range perm {
			perm[i] = uint8(i)
		}
		var rec func(n int)
		eval := func(order []uint8) {
			for delta := uint16(0); delta < 1<<uint(k); delta++ {
				var cost, held cdag.Weight
				bad := false
				for i := 0; i < k; i++ {
					p := parents[order[i]]
					sub := pt(p, b-held)
					if sub >= Inf {
						bad = true
						break
					}
					cost += sub
					if delta&(1<<uint(i)) != 0 {
						held += g.Weight(p)
					} else {
						cost += 2 * g.Weight(p)
					}
				}
				if !bad && cost < best {
					best = cost
				}
			}
		}
		rec = func(n int) {
			if n == 1 {
				eval(perm)
				return
			}
			for i := 0; i < n; i++ {
				rec(n - 1)
				if n%2 == 0 {
					perm[i], perm[n-1] = perm[n-1], perm[i]
				} else {
					perm[0], perm[n-1] = perm[n-1], perm[0]
				}
			}
		}
		rec(k)
		memo[v][b] = best
		return best
	}
	c := pt(t.Root, b)
	if c >= Inf {
		return Inf
	}
	return c + g.Weight(t.Root)
}
