package ktree

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
)

func sessionTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSessionMatchesOneShot: session answers over an out-of-order,
// repeating budget list must be identical to independent cold
// schedulers — the warm memo changes the work, never the answer.
func TestSessionMatchesOneShot(t *testing.T) {
	tr := sessionTree(t)
	se := NewSession(tr)
	ctx := context.Background()
	min := core.MinExistenceBudget(tr.G)
	budgets := []cdag.Weight{min + 9, min, min + 4, min - 1, min + 9, min + 2, min + 7}
	for _, b := range budgets {
		got, err := se.CostCtx(ctx, guard.Limits{}, b)
		if err != nil {
			t.Fatalf("CostCtx(%d): %v", b, err)
		}
		if want := NewScheduler(tr).MinCost(b); got != want {
			t.Errorf("CostCtx(%d) = %d, cold MinCost = %d", b, got, want)
		}
		gs, gerr := se.ScheduleCtx(ctx, guard.Limits{}, b)
		ws, werr := NewScheduler(tr).Schedule(b)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("ScheduleCtx(%d) err %v, cold Schedule err %v", b, gerr, werr)
		}
		if gerr == nil && !reflect.DeepEqual(gs, ws) {
			t.Errorf("ScheduleCtx(%d) differs from cold Schedule", b)
		}
	}
}

// TestSessionWarmCostZeroAlloc: a repeated budget query is a pure memo
// probe through the session's reused guard checker.
func TestSessionWarmCostZeroAlloc(t *testing.T) {
	tr := sessionTree(t)
	se := NewSession(tr)
	ctx := context.Background()
	b := core.MinExistenceBudget(tr.G) + 3
	if _, err := se.CostCtx(ctx, guard.Limits{}, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		se.CostCtx(ctx, guard.Limits{}, b) //nolint:errcheck
	})
	if allocs != 0 {
		t.Errorf("warm CostCtx allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSessionAbortThenReuse: a resource-limited query aborts with the
// typed error, and the same session then answers correctly with no
// limits — aborted work never poisons the memo.
func TestSessionAbortThenReuse(t *testing.T) {
	tr := sessionTree(t)
	se := NewSession(tr)
	ctx := context.Background()
	b := core.MinExistenceBudget(tr.G) + 5
	if _, err := se.CostCtx(ctx, guard.Limits{MaxMemoEntries: 1}, b); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("limited query: got %v, want ErrBudgetExceeded", err)
	}
	got, err := se.CostCtx(ctx, guard.Limits{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := NewScheduler(tr).MinCost(b); got != want {
		t.Errorf("after abort, CostCtx(%d) = %d, want %d", b, got, want)
	}
}
