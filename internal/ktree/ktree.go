// Package ktree implements the k-ary tree graphs of Definition 3.6
// and the optimal WRBPG scheduler of Lemma 3.7 / Theorem 3.8.
//
// A k-ary tree graph is an in-tree: a rooted tree whose unique sink r
// is the root and whose edges are directed from parents toward r,
// with in-degree bounded by k. The minimum weighted schedule cost of
// the root is w_r + Pt(r, B), where Pt (Eq. 6) minimizes over every
// permutation of a node's parents and every keep-or-spill decision
// vector δ ∈ {0,1}^k: parents with δ=1 keep their red pebbles (which
// reduces the budget available to later parents), parents with δ=0
// are written to slow memory and re-read before the node is computed
// (costing 2·w extra).
//
// The enumeration is 2^k·k! per node, so schedule generation is
// polynomial only for k = O(log log n) (Theorem 3.8); the
// constructors enforce a practical bound.
package ktree

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"wrbpg/internal/cdag"
)

// Inf is the sentinel cost of an infeasible subproblem.
const Inf cdag.Weight = math.MaxInt64 / 4

// MaxK bounds the in-degree accepted by the scheduler; 2^k·k! grows
// so fast that k beyond 8 is never practical.
const MaxK = 8

// Tree wraps a cdag.Graph known to be an in-tree with a unique root.
type Tree struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// Root is the unique sink.
	Root cdag.NodeID
	// K is the maximum in-degree.
	K int
}

// New validates that g is an in-tree with in-degree at most MaxK and
// wraps it.
func New(g *cdag.Graph) (*Tree, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsTree() {
		return nil, fmt.Errorf("ktree: graph is not an in-tree (every out-degree ≤ 1, one sink)")
	}
	k := g.MaxInDegree()
	if k > MaxK {
		return nil, fmt.Errorf("ktree: in-degree %d exceeds supported bound %d", k, MaxK)
	}
	sinks := g.Sinks()
	return &Tree{G: g, Root: sinks[0], K: k}, nil
}

// FullTree builds a complete k-ary tree of the given height
// (height ≥ 1 edges from leaves to root) with weights produced by wf,
// which receives the depth (0 = root) and a per-depth index.
func FullTree(k, height int, wf func(depth, index int) cdag.Weight) (*Tree, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("ktree: k=%d out of range [1,%d]", k, MaxK)
	}
	if height < 1 {
		return nil, fmt.Errorf("ktree: height must be ≥ 1, got %d", height)
	}
	g := &cdag.Graph{}
	// Build bottom-up: the leaves are at depth == height.
	prev := []cdag.NodeID{}
	leaves := 1
	for i := 0; i < height; i++ {
		leaves *= k
	}
	for i := 0; i < leaves; i++ {
		prev = append(prev, g.AddNode(wf(height, i), "leaf"+strconv.Itoa(i)))
	}
	for depth := height - 1; depth >= 0; depth-- {
		var cur []cdag.NodeID
		for i := 0; i < len(prev)/k; i++ {
			parents := prev[i*k : (i+1)*k]
			cur = append(cur, g.AddNode(wf(depth, i), "n"+strconv.Itoa(depth)+"_"+strconv.Itoa(i), parents...))
		}
		prev = cur
	}
	return New(g)
}

// Random builds a random in-tree with the given number of internal
// nodes, in-degrees drawn from [1,k] and weights from [1,maxW]; used
// by property tests.
func Random(rng *rand.Rand, internal, k int, maxW cdag.Weight) (*Tree, error) {
	if k < 1 || k > MaxK || internal < 1 {
		return nil, fmt.Errorf("ktree: bad parameters internal=%d k=%d", internal, k)
	}
	g := &cdag.Graph{}
	w := func() cdag.Weight { return 1 + cdag.Weight(rng.Int63n(int64(maxW))) }
	// Maintain a frontier of roots of already-built subtrees; each new
	// internal node consumes 1..k of them (creating fresh leaves when
	// it wants more parents than available).
	var frontier []cdag.NodeID
	for i := 0; i < internal; i++ {
		deg := 1 + rng.Intn(k)
		var parents []cdag.NodeID
		for d := 0; d < deg; d++ {
			if len(frontier) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(frontier))
				parents = append(parents, frontier[j])
				frontier = append(frontier[:j], frontier[j+1:]...)
			} else {
				parents = append(parents, g.AddNode(w(), "l"+strconv.Itoa(i)+"_"+strconv.Itoa(d)))
			}
		}
		frontier = append(frontier, g.AddNode(w(), "i"+strconv.Itoa(i), parents...))
	}
	// Chain any remaining frontier roots into a single root.
	for len(frontier) > 1 {
		take := 2
		if take > len(frontier) {
			take = len(frontier)
		}
		node := g.AddNode(w(), "join", frontier[:take]...)
		frontier = append(frontier[take:], node)
	}
	return New(g)
}

// Chain builds a 1-ary tree (a path) of the given length from leaf to
// root; the degenerate k=1 case exercised by tests.
func Chain(length int, wf func(i int) cdag.Weight) (*Tree, error) {
	if length < 2 {
		return nil, fmt.Errorf("ktree: chain length must be ≥ 2")
	}
	g := &cdag.Graph{}
	prev := g.AddNode(wf(0), "leaf")
	for i := 1; i < length; i++ {
		prev = g.AddNode(wf(i), "n"+strconv.Itoa(i), prev)
	}
	return New(g)
}

// Star builds a k-leaf, single-internal-node tree: the root directly
// consumes k leaves. Its optimal cost has the closed form
// Σ leaf weights + w_root (all loads plus the final store), reachable
// whenever B ≥ w_root + Σ leaf weights.
func Star(k int, leafW, rootW cdag.Weight) (*Tree, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("ktree: k=%d out of range", k)
	}
	g := &cdag.Graph{}
	var parents []cdag.NodeID
	for i := 0; i < k; i++ {
		parents = append(parents, g.AddNode(leafW, "leaf"+strconv.Itoa(i)))
	}
	g.AddNode(rootW, "root", parents...)
	return New(g)
}
