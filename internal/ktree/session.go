package ktree

import (
	"context"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
)

// Session answers repeated CostCtx/ScheduleCtx budget queries against
// one warm Scheduler. The Pt(v, b) memo shares all sub-budget cells
// across root queries, so a sweep over k budgets costs roughly one
// cold solve at the largest budget instead of k cold solves; the
// Session adds the guard plumbing that makes each query cancellable
// without re-allocating a checker (warm queries allocate nothing when
// lim carries no deadline).
//
// No-poison semantics carry over from the Scheduler: a query aborted
// by cancellation, deadline or resource budget never memoizes partial
// results, so the session stays reusable afterwards. A Session is not
// safe for concurrent use.
type Session struct {
	s  *Scheduler
	ck guard.Checker
}

// NewSession builds a session (and its warm Scheduler) for the tree.
func NewSession(t *Tree) *Session {
	return &Session{s: NewScheduler(t)}
}

// Scheduler returns the warm scheduler, for plain (unguarded) queries.
func (se *Session) Scheduler() *Scheduler { return se.s }

// Tree returns the underlying tree.
func (se *Session) Tree() *Tree { return se.s.t }

// TakeCounts returns and resets the session's cumulative solver
// observation counters (memo hits, entries, splits) for metric export.
func (se *Session) TakeCounts() guard.Counts { return se.ck.TakeCounts() }

// Patch applies weight deltas to the underlying tree, invalidating
// only the memo rows on the changed nodes' root paths
// (Scheduler.SetWeights); every other interval stays warm, so the next
// query re-solves just the dirtied chain against warm children. On
// error the tree and memo are unchanged. The invalidated/reused counts
// feed the session's observation counters (wrbpg_solver_cells_* after
// the next flush) and are also returned.
func (se *Session) Patch(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	invalidated, reused, err = se.s.SetWeights(ds)
	if err != nil {
		return 0, 0, err
	}
	se.ck.NoteInvalidation(invalidated, reused)
	return invalidated, reused, nil
}

// begin installs the session checker for one query; end uninstalls it.
func (se *Session) begin(ctx context.Context, lim guard.Limits) {
	se.ck.Reset(ctx, lim)
	se.s.ck = &se.ck
}

func (se *Session) end() {
	se.s.ck = nil
	se.ck.Release()
}

// CostCtx returns MinCost(b) under the session's warm memo (Inf when
// no schedule exists). The error is non-nil only when the query was
// aborted; resource limits in lim are per query, not cumulative.
func (se *Session) CostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	se.begin(ctx, lim)
	defer se.end()
	c := se.s.MinCost(b)
	if err := se.ck.Err(); err != nil {
		return 0, fmt.Errorf("ktree: %w", err)
	}
	return c, nil
}

// ScheduleCtx returns Schedule(b) under the session's warm memo, with
// CostCtx's abort semantics.
func (se *Session) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	se.begin(ctx, lim)
	defer se.end()
	sched, err := se.s.Schedule(b)
	if cerr := se.ck.Err(); cerr != nil {
		return nil, fmt.Errorf("ktree: %w", cerr)
	}
	return sched, err
}
