package ktree

import (
	"context"
	"fmt"
	"slices"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/perm"
)

// entry is one memoized Pt(v, ·) value. The chosen parent order is
// stored as a row index into the shared permutation table of the
// node's arity (perm.Table), so cells hold no per-cell slices; delta
// bit i set means the parent at position i of that row keeps its red
// pebble while later parents are computed (δ_i = 1 in Eq. 6).
type entry struct {
	cost    cdag.Weight
	permIdx int32
	delta   uint16
}

// Budget-interval sentinels: Pt(v, ·) is a non-increasing step
// function of the budget, so every computed value is valid on a whole
// interval. Inf doubles as +∞ on the budget axis (no real budget
// reaches it — weights sum far below MaxInt64/4).
const (
	budgetMax = Inf
	budgetMin = -Inf
)

// ival is one step of Pt(v, ·): the entry holds on every budget in
// [lo, hi] (inclusive).
type ival struct {
	lo, hi cdag.Weight
	e      entry
}

// Scheduler computes Pt(v, b) (Eq. 6) with memoization and generates
// optimal schedules for k-ary trees.
//
// The memo stores, per node, the steps of Pt(v, ·) as a sorted list
// of disjoint budget intervals. A cold cell derives the interval on
// which its value holds by intersecting the (shifted) intervals of
// every child cell it consulted, so a query at a nearby budget — the
// dominant access pattern of budget sweeps and the memory-design
// binary search — is a warm hit instead of a fresh enumeration. A hit
// is one branchless binary search over a short slice: no map, no
// allocation.
type Scheduler struct {
	t    *Tree
	memo [][]ival
	// exist[v] is the subtree existence bound: Pt(v, b) is finite iff
	// b ≥ exist[v]. The all-spill strategy computes every subtree node
	// with only itself and its parents resident, so the bound is the
	// subtree max of w_u + Σ parent weights (Proposition 2.3 applied
	// to the subtree) — exact, and computable in one bottom-up pass.
	// It short-circuits the whole infeasible region to an O(1) answer
	// with a maximally wide interval, which is what keeps budget
	// sweeps cheap near the existence boundary.
	exist []cdag.Weight
	// live counts currently stored budget intervals; SetWeights reports
	// it as the reused-cell count after an invalidation.
	live int64
	// mark/epoch/dirty/saved are SetWeights scratch: mark[v] equal to
	// the current epoch means v's row was already cleared this patch, so
	// root paths shared by several changed nodes are walked once.
	mark  []uint32
	epoch uint32
	dirty []cdag.NodeID
	saved []cdag.Weight
	// ck, when non-nil, is the active cancellation/budget guard of a
	// *Ctx call. The DP checks it per cold cell and never memoizes
	// results computed after it trips. nil (the default) costs one
	// pointer test per cell.
	ck *guard.Checker
}

// NewScheduler returns a scheduler for the tree. The k! permutation
// tables for every arity in the tree are built (or fetched from the
// process-wide cache) here, once, instead of being re-enumerated with
// Heap's algorithm on every DP cell.
func NewScheduler(t *Tree) *Scheduler {
	for v := 0; v < t.G.Len(); v++ {
		if k := t.G.InDegree(cdag.NodeID(v)); k > 0 {
			perm.Table(k)
		}
	}
	g := t.G
	exist := make([]cdag.Weight, g.Len())
	// Node IDs are topological by construction, so one forward pass
	// sees every parent before its child.
	for v := 0; v < g.Len(); v++ {
		id := cdag.NodeID(v)
		e := g.Weight(id)
		for _, p := range g.Parents(id) {
			e += g.Weight(p)
		}
		for _, p := range g.Parents(id) {
			if exist[p] > e {
				e = exist[p]
			}
		}
		exist[v] = e
	}
	return &Scheduler{
		t:     t,
		memo:  make([][]ival, t.G.Len()),
		exist: exist,
		mark:  make([]uint32, t.G.Len()),
	}
}

// SetWeights applies weight deltas to the tree and invalidates exactly
// the memo rows whose value can change: Pt(v, b) depends only on
// weights inside v's subtree (Eq. 6), and in an in-tree the cells
// whose subtree contains a changed node u are u and its ancestors —
// the chain from u to the root. Rows keep their capacity ([:0]), the
// exist bounds of the dirtied chain are recomputed bottom-up, and the
// graph is reverted unchanged on any validation error. It returns the
// number of budget intervals cleared and the number surviving.
func (s *Scheduler) SetWeights(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	g := s.t.G
	s.saved = s.saved[:0]
	applied := 0
	for _, d := range ds {
		var old cdag.Weight
		if int(d.Node) >= 0 && int(d.Node) < g.Len() {
			old = g.Weight(d.Node)
		}
		if err := g.TrySetWeight(d.Node, d.Weight); err != nil {
			for j := applied - 1; j >= 0; j-- {
				g.SetWeight(ds[j].Node, s.saved[j])
			}
			return 0, 0, fmt.Errorf("ktree: patch: %w", err)
		}
		s.saved = append(s.saved, old)
		applied++
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: every stale mark now looks current
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	dirty := s.dirty[:0]
	for _, d := range ds {
		for v := d.Node; ; {
			if s.mark[v] == s.epoch {
				break
			}
			s.mark[v] = s.epoch
			dirty = append(dirty, v)
			invalidated += int64(len(s.memo[v]))
			s.memo[v] = s.memo[v][:0]
			ch := g.Children(v)
			if len(ch) == 0 {
				break
			}
			v = ch[0] // in-tree: out-degree ≤ 1
		}
	}
	// Node IDs are topological, so recomputing exist in ascending ID
	// order sees every dirty parent before its child; off-chain parents
	// kept their (unchanged) bounds.
	slices.Sort(dirty)
	s.dirty = dirty
	for _, v := range dirty {
		e := g.Weight(v)
		for _, p := range g.Parents(v) {
			e += g.Weight(p)
		}
		for _, p := range g.Parents(v) {
			if s.exist[p] > e {
				e = s.exist[p]
			}
		}
		s.exist[v] = e
	}
	s.live -= invalidated
	return invalidated, s.live, nil
}

// lookup returns the memoized step covering budget b, or nil.
func (s *Scheduler) lookup(v cdag.NodeID, b cdag.Weight) *ival {
	row := s.memo[v]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].lo <= b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && row[lo-1].hi >= b {
		return &row[lo-1]
	}
	return nil
}

// store memoizes a freshly computed step unless the guard has tripped
// (poisoned partial results must never persist) or the memo budget is
// exhausted (which trips the guard for the rest of the solve). The
// interval is clipped to the uncovered gap around b, keeping the
// per-node list sorted and disjoint; neighbouring steps computed from
// different query points agree wherever they overlap, so clipping
// loses nothing but redundancy.
func (s *Scheduler) store(v cdag.NodeID, b cdag.Weight, iv ival) {
	if s.ck != nil && (s.ck.Err() != nil || s.ck.AddMemo(1) != nil) {
		return
	}
	row := s.memo[v]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].lo <= b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	clipped := false
	if lo > 0 && row[lo-1].hi >= iv.lo {
		iv.lo = row[lo-1].hi + 1
		clipped = true
	}
	if lo < len(row) && row[lo].lo <= iv.hi {
		iv.hi = row[lo].lo - 1
		clipped = true
	}
	if clipped {
		s.ck.NoteSplit()
	}
	row = append(row, ival{})
	copy(row[lo+1:], row[lo:])
	row[lo] = iv
	s.memo[v] = row
	s.live++
}

// pt computes Pt(v, b) of Eq. 6, minimizing over parent permutations
// σ and keep/spill vectors δ. Configurations that spill a source
// parent are skipped: re-ordering the source to the end of the
// permutation with δ=1 is always at least 2·w cheaper (sources
// already hold blue pebbles), so the minimum is unchanged and the
// generator never writes a blue pebble onto a node that has one.
//
// Alongside the entry, pt returns the budget interval [lo, hi] on
// which it is valid: a cold cell starts from the feasibility cutoff
// and narrows by every child interval it consults (shifted by the
// red-pebble weight held while that child was queried). On the
// intersection every configuration evaluates identically, so both
// the minimum and the argmin are constant there.
func (s *Scheduler) pt(v cdag.NodeID, b cdag.Weight) (entry, cdag.Weight, cdag.Weight) {
	if iv := s.lookup(v, b); iv != nil {
		s.ck.NoteHit()
		return iv.e, iv.lo, iv.hi
	}
	// Cancellation checkpoint on the cold path only: warm hits return
	// above untouched, and an all-warm solve finishes in microseconds.
	// The poisoned value carries the empty-width interval [b, b] so a
	// caller can never widen its own step with it; store refuses it
	// and everything above anyway.
	if s.ck != nil && s.ck.Tick() != nil {
		return entry{cost: Inf}, b, b
	}
	g := s.t.G
	// The whole infeasible region is one O(1) step: Pt(v, b) is finite
	// exactly when b reaches the subtree existence bound.
	if b < s.exist[v] {
		e := entry{cost: Inf}
		s.store(v, b, ival{lo: budgetMin, hi: s.exist[v] - 1, e: e})
		return e, budgetMin, s.exist[v] - 1
	}
	if g.IsSource(v) {
		w := g.Weight(v)
		e := entry{cost: w}
		s.store(v, b, ival{lo: w, hi: budgetMax, e: e})
		return e, w, budgetMax
	}
	parents := g.Parents(v)
	k := len(parents)
	// Every feasible configuration consults all k children, whose
	// intervals start no lower than their own existence bounds, so the
	// narrowing below keeps lo ≥ exist[v] automatically; starting from
	// the local co-residency cutoff is enough.
	lo, hi := s.exist[v], budgetMax
	best := entry{cost: Inf}
	for pi, order := range perm.Table(k) {
		for delta := uint16(0); delta < 1<<uint(k); delta++ {
			skip := false
			var cost, held cdag.Weight
			for i := 0; i < k && !skip; i++ {
				p := parents[order[i]]
				keep := delta&(1<<uint(i)) != 0
				if !keep && g.IsSource(p) {
					skip = true // dominated; see doc comment
					break
				}
				sub, slo, shi := s.pt(p, b-held)
				if nlo := slo + held; nlo > lo {
					lo = nlo
				}
				if nhi := shi + held; nhi < hi {
					hi = nhi
				}
				if sub.cost >= Inf {
					skip = true
					break
				}
				cost += sub.cost
				if keep {
					held += g.Weight(p)
				} else {
					cost += 2 * g.Weight(p)
				}
			}
			if skip || cost >= best.cost {
				continue
			}
			best = entry{cost: cost, permIdx: int32(pi), delta: delta}
		}
	}
	s.store(v, b, ival{lo: lo, hi: hi, e: best})
	return best, lo, hi
}

// MinCost returns the minimum weighted schedule cost for the whole
// tree under budget b: w_root + Pt(root, b) (Eq. 7), or Inf when no
// valid schedule exists.
func (s *Scheduler) MinCost(b cdag.Weight) cdag.Weight {
	e, _, _ := s.pt(s.t.Root, b)
	if e.cost >= Inf {
		return Inf
	}
	return e.cost + s.t.G.Weight(s.t.Root)
}

// MinCostCtx is MinCost under a cancellation context and resource
// limits. It returns guard.ErrCanceled / guard.ErrDeadline /
// guard.ErrBudgetExceeded (wrapped) when the solve was aborted; the
// scheduler remains usable afterwards — partial results computed after
// the abort are never memoized.
func (s *Scheduler) MinCostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	defer func() { guard.CountersFor("ktree").Record(ck.TakeCounts()) }()
	s.ck = ck
	defer func() { s.ck = nil }()
	c := s.MinCost(b)
	if err := ck.Err(); err != nil {
		return 0, fmt.Errorf("ktree: %w", err)
	}
	return c, nil
}

// ScheduleCtx is Schedule under a cancellation context and resource
// limits, with the same abort semantics as MinCostCtx.
func (s *Scheduler) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	defer func() { guard.CountersFor("ktree").Record(ck.TakeCounts()) }()
	s.ck = ck
	defer func() { s.ck = nil }()
	sched, err := s.Schedule(b)
	if cerr := ck.Err(); cerr != nil {
		return nil, fmt.Errorf("ktree: %w", cerr)
	}
	return sched, err
}

// Schedule generates an optimal schedule under budget b; it always
// passes core.Simulate with cost MinCost(b).
func (s *Scheduler) Schedule(b cdag.Weight) (core.Schedule, error) {
	if s.MinCost(b) >= Inf {
		return nil, fmt.Errorf("ktree: no valid schedule under budget %d (existence bound %d)", b, core.MinExistenceBudget(s.t.G))
	}
	var sched core.Schedule
	if err := s.gen(s.t.Root, b, &sched); err != nil {
		return nil, err
	}
	sched = sched.Append(
		core.Move{Kind: core.M2, Node: s.t.Root},
		core.Move{Kind: core.M4, Node: s.t.Root},
	)
	return sched, nil
}

// gen emits the moves realizing Pt(v, b): red pebble on v at the end,
// no other red pebbles in v's subtree.
func (s *Scheduler) gen(v cdag.NodeID, b cdag.Weight, sched *core.Schedule) error {
	g := s.t.G
	e, _, _ := s.pt(v, b)
	if e.cost >= Inf {
		return fmt.Errorf("ktree: internal error: infeasible subproblem node %d budget %d", v, b)
	}
	if g.IsSource(v) {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: v})
		return nil
	}
	parents := g.Parents(v)
	order := perm.Table(len(parents))[e.permIdx]
	var held cdag.Weight
	var spilled []cdag.NodeID
	for i, oi := range order {
		p := parents[oi]
		if err := s.gen(p, b-held, sched); err != nil {
			return err
		}
		if e.delta&(1<<uint(i)) != 0 {
			held += g.Weight(p)
		} else {
			*sched = sched.Append(
				core.Move{Kind: core.M2, Node: p},
				core.Move{Kind: core.M4, Node: p},
			)
			spilled = append(spilled, p)
		}
	}
	for _, p := range spilled {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: p})
	}
	*sched = sched.Append(core.Move{Kind: core.M3, Node: v})
	for _, p := range parents {
		*sched = sched.Append(core.Move{Kind: core.M4, Node: p})
	}
	return nil
}

// MinMemory returns the smallest budget (on multiples of step) whose
// optimal cost equals the algorithmic lower bound (Definition 2.6).
// The binary search runs inside this scheduler's warm memo via
// memdesign.SearchMonotone.
func (s *Scheduler) MinMemory(step cdag.Weight) (cdag.Weight, error) {
	g := s.t.G
	lb := core.LowerBound(g)
	b, err := memdesign.SearchMonotone(s.MinCost, lb, core.MinExistenceBudget(g), g.TotalWeight(), step)
	if err != nil {
		return 0, fmt.Errorf("ktree: %w", err)
	}
	return b, nil
}

// StrategyCount returns 2^k·k!, the number of per-node strategies the
// DP enumerates for in-degree k — the quantity bounding Theorem 3.8.
func StrategyCount(k int) int {
	return perm.Count(k) << uint(k)
}
