package ktree

import (
	"context"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/perm"
)

// entry is one memoized Pt(v, b) cell. The chosen parent order is
// stored as a row index into the shared permutation table of the
// node's arity (perm.Table), so cells hold no per-cell slices; delta
// bit i set means the parent at position i of that row keeps its red
// pebble while later parents are computed (δ_i = 1 in Eq. 6).
type entry struct {
	cost    cdag.Weight
	permIdx int32
	delta   uint16
	valid   bool
}

// Scheduler computes Pt(v, b) (Eq. 6) with memoization and generates
// optimal schedules for k-ary trees.
//
// The memo is a per-node slice indexed by a dense budget index (the
// map below assigns consecutive indices to distinct budgets as they
// are first seen), replacing the former map-of-maps: a cache hit is
// one small map probe plus a slice load, with zero allocations.
type Scheduler struct {
	t         *Tree
	budgetIdx map[cdag.Weight]int
	memo      [][]entry
	// ck, when non-nil, is the active cancellation/budget guard of a
	// *Ctx call. The DP checks it per cold cell and never memoizes
	// results computed after it trips. nil (the default) costs one
	// pointer test per cell.
	ck *guard.Checker
}

// NewScheduler returns a scheduler for the tree. The k! permutation
// tables for every arity in the tree are built (or fetched from the
// process-wide cache) here, once, instead of being re-enumerated with
// Heap's algorithm on every DP cell.
func NewScheduler(t *Tree) *Scheduler {
	for v := 0; v < t.G.Len(); v++ {
		if k := t.G.InDegree(cdag.NodeID(v)); k > 0 {
			perm.Table(k)
		}
	}
	return &Scheduler{
		t:         t,
		budgetIdx: map[cdag.Weight]int{},
		memo:      make([][]entry, t.G.Len()),
	}
}

// cell returns a pointer to the memo slot for (v, b), growing the
// node's row on first touch of a new budget index.
func (s *Scheduler) cell(v cdag.NodeID, b cdag.Weight) *entry {
	bi, ok := s.budgetIdx[b]
	if !ok {
		bi = len(s.budgetIdx)
		s.budgetIdx[b] = bi
	}
	row := s.memo[v]
	if bi >= len(row) {
		grown := make([]entry, bi+1)
		copy(grown, row)
		s.memo[v] = grown
		row = grown
	}
	return &row[bi]
}

// store memoizes a freshly computed cell unless the guard has tripped
// (poisoned partial results must never persist) or the memo budget is
// exhausted (which trips the guard for the rest of the solve).
func (s *Scheduler) store(v cdag.NodeID, b cdag.Weight, e entry) {
	if s.ck != nil && (s.ck.Err() != nil || s.ck.AddMemo(1) != nil) {
		return
	}
	*s.cell(v, b) = e
}

// pt computes Pt(v, b) of Eq. 6, minimizing over parent permutations
// σ and keep/spill vectors δ. Configurations that spill a source
// parent are skipped: re-ordering the source to the end of the
// permutation with δ=1 is always at least 2·w cheaper (sources
// already hold blue pebbles), so the minimum is unchanged and the
// generator never writes a blue pebble onto a node that has one.
func (s *Scheduler) pt(v cdag.NodeID, b cdag.Weight) entry {
	if c := s.cell(v, b); c.valid {
		return *c
	}
	// Cancellation checkpoint on the cold path only: warm hits return
	// above untouched, and an all-warm solve finishes in microseconds.
	if s.ck != nil && s.ck.Tick() != nil {
		return entry{cost: Inf}
	}
	g := s.t.G
	var best entry
	if g.IsSource(v) {
		if g.Weight(v) <= b {
			best = entry{cost: g.Weight(v)}
		} else {
			best = entry{cost: Inf}
		}
		best.valid = true
		s.store(v, b, best)
		return best
	}
	parents := g.Parents(v)
	k := len(parents)
	var parentSum cdag.Weight
	for _, p := range parents {
		parentSum += g.Weight(p)
	}
	if g.Weight(v)+parentSum > b {
		best = entry{cost: Inf, valid: true}
		s.store(v, b, best)
		return best
	}
	best = entry{cost: Inf}
	for pi, order := range perm.Table(k) {
		for delta := uint16(0); delta < 1<<uint(k); delta++ {
			skip := false
			var cost, held cdag.Weight
			for i := 0; i < k && !skip; i++ {
				p := parents[order[i]]
				keep := delta&(1<<uint(i)) != 0
				if !keep && g.IsSource(p) {
					skip = true // dominated; see doc comment
					break
				}
				sub := s.pt(p, b-held)
				if sub.cost >= Inf {
					skip = true
					break
				}
				cost += sub.cost
				if keep {
					held += g.Weight(p)
				} else {
					cost += 2 * g.Weight(p)
				}
			}
			if skip || cost >= best.cost {
				continue
			}
			best = entry{cost: cost, permIdx: int32(pi), delta: delta}
		}
	}
	best.valid = true
	s.store(v, b, best)
	return best
}

// MinCost returns the minimum weighted schedule cost for the whole
// tree under budget b: w_root + Pt(root, b) (Eq. 7), or Inf when no
// valid schedule exists.
func (s *Scheduler) MinCost(b cdag.Weight) cdag.Weight {
	e := s.pt(s.t.Root, b)
	if e.cost >= Inf {
		return Inf
	}
	return e.cost + s.t.G.Weight(s.t.Root)
}

// MinCostCtx is MinCost under a cancellation context and resource
// limits. It returns guard.ErrCanceled / guard.ErrDeadline /
// guard.ErrBudgetExceeded (wrapped) when the solve was aborted; the
// scheduler remains usable afterwards — partial results computed after
// the abort are never memoized.
func (s *Scheduler) MinCostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	s.ck = ck
	defer func() { s.ck = nil }()
	c := s.MinCost(b)
	if err := ck.Err(); err != nil {
		return 0, fmt.Errorf("ktree: %w", err)
	}
	return c, nil
}

// ScheduleCtx is Schedule under a cancellation context and resource
// limits, with the same abort semantics as MinCostCtx.
func (s *Scheduler) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	s.ck = ck
	defer func() { s.ck = nil }()
	sched, err := s.Schedule(b)
	if cerr := ck.Err(); cerr != nil {
		return nil, fmt.Errorf("ktree: %w", cerr)
	}
	return sched, err
}

// Schedule generates an optimal schedule under budget b; it always
// passes core.Simulate with cost MinCost(b).
func (s *Scheduler) Schedule(b cdag.Weight) (core.Schedule, error) {
	if s.MinCost(b) >= Inf {
		return nil, fmt.Errorf("ktree: no valid schedule under budget %d (existence bound %d)", b, core.MinExistenceBudget(s.t.G))
	}
	var sched core.Schedule
	if err := s.gen(s.t.Root, b, &sched); err != nil {
		return nil, err
	}
	sched = sched.Append(
		core.Move{Kind: core.M2, Node: s.t.Root},
		core.Move{Kind: core.M4, Node: s.t.Root},
	)
	return sched, nil
}

// gen emits the moves realizing Pt(v, b): red pebble on v at the end,
// no other red pebbles in v's subtree.
func (s *Scheduler) gen(v cdag.NodeID, b cdag.Weight, sched *core.Schedule) error {
	g := s.t.G
	e := s.pt(v, b)
	if e.cost >= Inf {
		return fmt.Errorf("ktree: internal error: infeasible subproblem node %d budget %d", v, b)
	}
	if g.IsSource(v) {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: v})
		return nil
	}
	parents := g.Parents(v)
	order := perm.Table(len(parents))[e.permIdx]
	var held cdag.Weight
	var spilled []cdag.NodeID
	for i, oi := range order {
		p := parents[oi]
		if err := s.gen(p, b-held, sched); err != nil {
			return err
		}
		if e.delta&(1<<uint(i)) != 0 {
			held += g.Weight(p)
		} else {
			*sched = sched.Append(
				core.Move{Kind: core.M2, Node: p},
				core.Move{Kind: core.M4, Node: p},
			)
			spilled = append(spilled, p)
		}
	}
	for _, p := range spilled {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: p})
	}
	*sched = sched.Append(core.Move{Kind: core.M3, Node: v})
	for _, p := range parents {
		*sched = sched.Append(core.Move{Kind: core.M4, Node: p})
	}
	return nil
}

// MinMemory returns the smallest budget (on multiples of step) whose
// optimal cost equals the algorithmic lower bound (Definition 2.6).
func (s *Scheduler) MinMemory(step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	g := s.t.G
	lb := core.LowerBound(g)
	lo := core.MinExistenceBudget(g)
	if r := lo % step; r != 0 {
		lo += step - r
	}
	hi := g.TotalWeight()
	if r := hi % step; r != 0 {
		hi += step - r
	}
	if s.MinCost(hi) != lb {
		return 0, fmt.Errorf("ktree: lower bound %d not attained even at budget %d", lb, hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		mid -= mid % step
		if mid < lo {
			mid = lo
		}
		if s.MinCost(mid) == lb {
			hi = mid
		} else {
			lo = mid + step
		}
	}
	return hi, nil
}

// StrategyCount returns 2^k·k!, the number of per-node strategies the
// DP enumerates for in-degree k — the quantity bounding Theorem 3.8.
func StrategyCount(k int) int {
	return perm.Count(k) << uint(k)
}
