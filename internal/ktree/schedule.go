package ktree

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

type entry struct {
	cost cdag.Weight
	// perm is the chosen parent order (indices into Parents(v));
	// delta bit i set means perm[i] keeps its red pebble while later
	// parents are computed (δ_i = 1 in Eq. 6).
	perm  []uint8
	delta uint16
}

// Scheduler computes Pt(v, b) (Eq. 6) with memoization and generates
// optimal schedules for k-ary trees.
type Scheduler struct {
	t    *Tree
	memo map[cdag.NodeID]map[cdag.Weight]entry
}

// NewScheduler returns a scheduler for the tree.
func NewScheduler(t *Tree) *Scheduler {
	return &Scheduler{t: t, memo: map[cdag.NodeID]map[cdag.Weight]entry{}}
}

// pt computes Pt(v, b) of Eq. 6, minimizing over parent permutations
// σ and keep/spill vectors δ. Configurations that spill a source
// parent are skipped: re-ordering the source to the end of the
// permutation with δ=1 is always at least 2·w cheaper (sources
// already hold blue pebbles), so the minimum is unchanged and the
// generator never writes a blue pebble onto a node that has one.
func (s *Scheduler) pt(v cdag.NodeID, b cdag.Weight) entry {
	if m, ok := s.memo[v]; ok {
		if e, ok := m[b]; ok {
			return e
		}
	} else {
		s.memo[v] = map[cdag.Weight]entry{}
	}
	g := s.t.G
	var best entry
	if g.IsSource(v) {
		if g.Weight(v) <= b {
			best = entry{cost: g.Weight(v)}
		} else {
			best = entry{cost: Inf}
		}
		s.memo[v][b] = best
		return best
	}
	parents := g.Parents(v)
	k := len(parents)
	var parentSum cdag.Weight
	for _, p := range parents {
		parentSum += g.Weight(p)
	}
	if g.Weight(v)+parentSum > b {
		best = entry{cost: Inf}
		s.memo[v][b] = best
		return best
	}
	best = entry{cost: Inf}
	perm := make([]uint8, k)
	for i := range perm {
		perm[i] = uint8(i)
	}
	s.forEachPermutation(perm, func(order []uint8) {
		for delta := uint16(0); delta < 1<<uint(k); delta++ {
			skip := false
			var cost, held cdag.Weight
			for i := 0; i < k && !skip; i++ {
				p := parents[order[i]]
				keep := delta&(1<<uint(i)) != 0
				if !keep && g.IsSource(p) {
					skip = true // dominated; see doc comment
					break
				}
				sub := s.pt(p, b-held)
				if sub.cost >= Inf {
					skip = true
					break
				}
				cost += sub.cost
				if keep {
					held += g.Weight(p)
				} else {
					cost += 2 * g.Weight(p)
				}
			}
			if skip || cost >= best.cost {
				continue
			}
			best = entry{cost: cost, perm: append([]uint8(nil), order...), delta: delta}
		}
	})
	s.memo[v][b] = best
	return best
}

// forEachPermutation invokes f with every permutation of p (Heap's
// algorithm, in place; f must not retain the slice).
func (s *Scheduler) forEachPermutation(p []uint8, f func([]uint8)) {
	var rec func(n int)
	rec = func(n int) {
		if n == 1 {
			f(p)
			return
		}
		for i := 0; i < n; i++ {
			rec(n - 1)
			if n%2 == 0 {
				p[i], p[n-1] = p[n-1], p[i]
			} else {
				p[0], p[n-1] = p[n-1], p[0]
			}
		}
	}
	rec(len(p))
}

// MinCost returns the minimum weighted schedule cost for the whole
// tree under budget b: w_root + Pt(root, b) (Eq. 7), or Inf when no
// valid schedule exists.
func (s *Scheduler) MinCost(b cdag.Weight) cdag.Weight {
	e := s.pt(s.t.Root, b)
	if e.cost >= Inf {
		return Inf
	}
	return e.cost + s.t.G.Weight(s.t.Root)
}

// Schedule generates an optimal schedule under budget b; it always
// passes core.Simulate with cost MinCost(b).
func (s *Scheduler) Schedule(b cdag.Weight) (core.Schedule, error) {
	if s.MinCost(b) >= Inf {
		return nil, fmt.Errorf("ktree: no valid schedule under budget %d (existence bound %d)", b, core.MinExistenceBudget(s.t.G))
	}
	var sched core.Schedule
	if err := s.gen(s.t.Root, b, &sched); err != nil {
		return nil, err
	}
	sched = sched.Append(
		core.Move{Kind: core.M2, Node: s.t.Root},
		core.Move{Kind: core.M4, Node: s.t.Root},
	)
	return sched, nil
}

// gen emits the moves realizing Pt(v, b): red pebble on v at the end,
// no other red pebbles in v's subtree.
func (s *Scheduler) gen(v cdag.NodeID, b cdag.Weight, sched *core.Schedule) error {
	g := s.t.G
	e := s.pt(v, b)
	if e.cost >= Inf {
		return fmt.Errorf("ktree: internal error: infeasible subproblem node %d budget %d", v, b)
	}
	if g.IsSource(v) {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: v})
		return nil
	}
	parents := g.Parents(v)
	var held cdag.Weight
	var spilled []cdag.NodeID
	for i, oi := range e.perm {
		p := parents[oi]
		if err := s.gen(p, b-held, sched); err != nil {
			return err
		}
		if e.delta&(1<<uint(i)) != 0 {
			held += g.Weight(p)
		} else {
			*sched = sched.Append(
				core.Move{Kind: core.M2, Node: p},
				core.Move{Kind: core.M4, Node: p},
			)
			spilled = append(spilled, p)
		}
	}
	for _, p := range spilled {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: p})
	}
	*sched = sched.Append(core.Move{Kind: core.M3, Node: v})
	for _, p := range parents {
		*sched = sched.Append(core.Move{Kind: core.M4, Node: p})
	}
	return nil
}

// MinMemory returns the smallest budget (on multiples of step) whose
// optimal cost equals the algorithmic lower bound (Definition 2.6).
func (s *Scheduler) MinMemory(step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	g := s.t.G
	lb := core.LowerBound(g)
	lo := core.MinExistenceBudget(g)
	if r := lo % step; r != 0 {
		lo += step - r
	}
	hi := g.TotalWeight()
	if r := hi % step; r != 0 {
		hi += step - r
	}
	if s.MinCost(hi) != lb {
		return 0, fmt.Errorf("ktree: lower bound %d not attained even at budget %d", lb, hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		mid -= mid % step
		if mid < lo {
			mid = lo
		}
		if s.MinCost(mid) == lb {
			hi = mid
		} else {
			lo = mid + step
		}
	}
	return hi, nil
}

// StrategyCount returns 2^k·k!, the number of per-node strategies the
// DP enumerates for in-degree k — the quantity bounding Theorem 3.8.
func StrategyCount(k int) int {
	n := 1
	for i := 2; i <= k; i++ {
		n *= i
	}
	return n << uint(k)
}
