// Package perm provides shared, immutable permutation tables for the
// strategy enumerations of Eq. 3/Eq. 6/Eq. 8: every scheduler that
// minimizes over parent orders σ iterates the same k! rows instead of
// regenerating them with Heap's algorithm on every DP cell. Tables are
// built once per arity and cached for the life of the process.
package perm

import (
	"fmt"
	"sync"
)

// MaxK bounds the supported arity. 2^k·k! growth makes anything
// larger impractical for the tree schedulers (Theorem 3.8), and the
// cached tables stay tiny: Σ_{k≤8} k!·k ≈ 0.4 MB of uint8s.
const MaxK = 8

var (
	tables [MaxK + 1][][]uint8
	once   [MaxK + 1]sync.Once
)

// Table returns all k! permutations of {0, …, k-1} as rows of a
// shared table. Rows are aliased, not copied: callers must not mutate
// them. Row 0 is always the identity permutation. It panics for k
// outside [0, MaxK]; use TryTable when the arity comes from untrusted
// input.
func Table(k int) [][]uint8 {
	t, err := TryTable(k)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// TryTable is Table returning an error instead of panicking on an
// arity outside [0, MaxK].
func TryTable(k int) ([][]uint8, error) {
	if k < 0 || k > MaxK {
		return nil, fmt.Errorf("perm: arity %d out of range [0,%d]", k, MaxK)
	}
	once[k].Do(func() { tables[k] = build(k) })
	return tables[k], nil
}

// Count returns k!.
func Count(k int) int {
	n := 1
	for i := 2; i <= k; i++ {
		n *= i
	}
	return n
}

// build enumerates the permutations with Heap's algorithm, emitting
// the identity first, and freezes them into the table.
func build(k int) [][]uint8 {
	p := make([]uint8, k)
	for i := range p {
		p[i] = uint8(i)
	}
	// One backing array for all rows keeps the table cache-friendly.
	backing := make([]uint8, 0, Count(k)*k)
	out := make([][]uint8, 0, Count(k))
	emit := func() {
		backing = append(backing, p...)
		out = append(out, backing[len(backing)-k:])
	}
	if k == 0 {
		out = append(out, []uint8{})
		return out
	}
	var rec func(n int)
	rec = func(n int) {
		if n == 1 {
			emit()
			return
		}
		for i := 0; i < n; i++ {
			rec(n - 1)
			if n%2 == 0 {
				p[i], p[n-1] = p[n-1], p[i]
			} else {
				p[0], p[n-1] = p[n-1], p[0]
			}
		}
	}
	rec(k)
	return out
}
