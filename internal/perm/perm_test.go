package perm

import "testing"

func TestCount(t *testing.T) {
	want := []int{1, 1, 2, 6, 24, 120, 720, 5040, 40320}
	for k, w := range want {
		if got := Count(k); got != w {
			t.Errorf("Count(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestTableComplete(t *testing.T) {
	for k := 1; k <= 5; k++ {
		rows := Table(k)
		if len(rows) != Count(k) {
			t.Fatalf("k=%d: %d rows, want %d", k, len(rows), Count(k))
		}
		seen := map[string]bool{}
		for _, r := range rows {
			if len(r) != k {
				t.Fatalf("k=%d: row length %d", k, len(r))
			}
			var used [MaxK]bool
			for _, x := range r {
				if int(x) >= k || used[x] {
					t.Fatalf("k=%d: invalid row %v", k, r)
				}
				used[x] = true
			}
			seen[string(r)] = true
		}
		if len(seen) != Count(k) {
			t.Fatalf("k=%d: %d distinct rows, want %d", k, len(seen), Count(k))
		}
	}
}

func TestIdentityFirst(t *testing.T) {
	for k := 1; k <= 6; k++ {
		r := Table(k)[0]
		for i, x := range r {
			if int(x) != i {
				t.Fatalf("k=%d: row 0 = %v, want identity", k, r)
			}
		}
	}
}

func TestTableStable(t *testing.T) {
	a, b := Table(4), Table(4)
	for i := range a {
		if &a[i][0] != &b[i][0] {
			t.Fatal("Table should return the cached instance")
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Table(9) should panic")
		}
	}()
	Table(MaxK + 1)
}

func TestTryTable(t *testing.T) {
	if _, err := TryTable(-1); err == nil {
		t.Fatal("negative arity accepted")
	}
	if _, err := TryTable(MaxK + 1); err == nil {
		t.Fatal("arity above MaxK accepted")
	}
	rows, err := TryTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("TryTable(3) returned %d rows, want 6", len(rows))
	}
}
