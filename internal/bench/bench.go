// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5): the I/O-versus-memory curves of Figure 5,
// the minimum-memory scaling of Figure 6, the memory sizes of
// Table 1, the synthesis metrics of Figure 7 and the layout
// comparison of Figure 8. cmd/experiments renders these as text; the
// repository-root benchmarks time them.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/ioopt"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/mvm"
	"wrbpg/internal/synth"
	"wrbpg/internal/wcfg"
)

// Workload dimensions of Section 5.1.
const (
	DWTInputs = 256
	DWTLevels = 8
	MVMRows   = 96
	MVMCols   = 120
	WordBits  = wcfg.DefaultWordBits
)

// Configs returns the two node-weight configurations evaluated.
func Configs() []wcfg.Config {
	return []wcfg.Config{wcfg.Equal(WordBits), wcfg.DoubleAccumulator(WordBits)}
}

// LogBudgets returns word-aligned budgets from lo to hi (inclusive)
// growing geometrically by ratio, in bits.
func LogBudgets(lo, hi cdag.Weight, ratio float64, wordBits int) []cdag.Weight {
	if ratio <= 1 {
		ratio = 1.25
	}
	wb := cdag.Weight(wordBits)
	align := func(b cdag.Weight) cdag.Weight {
		if r := b % wb; r != 0 {
			b += wb - r
		}
		return b
	}
	set := map[cdag.Weight]bool{}
	for b := float64(lo); cdag.Weight(b) <= hi; b *= ratio {
		set[align(cdag.Weight(b))] = true
	}
	set[align(lo)] = true
	set[align(hi)] = true
	var out []cdag.Weight
	for b := range set {
		if b >= lo && b <= hi+wb {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fig5DWTRow is one budget point of Figure 5a/5b: bits transferred by
// each approach for DWT(256,8).
type Fig5DWTRow struct {
	BudgetBits    cdag.Weight
	AlgorithmicLB cdag.Weight
	LayerByLayer  cdag.Weight
	Optimum       cdag.Weight
}

// Fig5DWT sweeps fast memory sizes for DWT(n,d) under cfg. A nil
// budget list selects a default log sweep from the existence bound to
// past both approaches' convergence.
func Fig5DWT(cfg wcfg.Config, n, d int, budgets []cdag.Weight) ([]Fig5DWTRow, error) {
	g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
	if err != nil {
		return nil, err
	}
	sched, err := dwt.NewScheduler(g)
	if err != nil {
		return nil, err
	}
	lb := core.LowerBound(g.G)
	if budgets == nil {
		lblMem, err := baseline.MinMemory(g.G, g.Layers, cdag.Weight(cfg.WordBits))
		if err != nil {
			return nil, err
		}
		budgets = LogBudgets(core.MinExistenceBudget(g.G), 2*lblMem, 1.3, cfg.WordBits)
	}
	var rows []Fig5DWTRow
	for _, b := range budgets {
		lbl, err := baseline.Cost(g.G, g.Layers, b)
		if err != nil {
			return nil, fmt.Errorf("bench: layer-by-layer at %d: %w", b, err)
		}
		opt := sched.MinCost(b)
		if opt >= dwt.Inf {
			return nil, fmt.Errorf("bench: optimum infeasible at %d", b)
		}
		rows = append(rows, Fig5DWTRow{BudgetBits: b, AlgorithmicLB: lb, LayerByLayer: lbl, Optimum: opt})
	}
	return rows, nil
}

// Fig5MVMRow is one budget point of Figure 5c/5d for MVM(96,120).
type Fig5MVMRow struct {
	BudgetBits cdag.Weight
	IOOptLB    cdag.Weight
	IOOptUB    cdag.Weight
	Tiling     cdag.Weight
}

// Fig5MVM sweeps fast memory sizes for MVM(m,n) under cfg.
func Fig5MVM(cfg wcfg.Config, m, n int, budgets []cdag.Weight) ([]Fig5MVMRow, error) {
	g, err := mvm.Build(m, n, cfg)
	if err != nil {
		return nil, err
	}
	model := ioopt.New(m, n, cfg)
	if budgets == nil {
		hi := 2 * model.MinMemoryBits()
		budgets = LogBudgets(g.TilingMinBudget(), hi, 1.3, cfg.WordBits)
	}
	var rows []Fig5MVMRow
	for _, b := range budgets {
		words := int(b) / cfg.WordBits
		tiling := g.MinCost(b)
		if tiling >= mvm.Inf {
			continue // below the tiling minimum; the paper's axis starts above it
		}
		rows = append(rows, Fig5MVMRow{
			BudgetBits: b,
			IOOptLB:    model.LowerBound(words),
			IOOptUB:    model.UpperBound(words),
			Tiling:     tiling,
		})
	}
	return rows, nil
}

// Fig6DWTRow is one problem size of Figure 6a/6b: minimum fast memory
// for DWT(n, d*) with d* the largest level n admits.
type Fig6DWTRow struct {
	N, D         int
	LayerByLayer cdag.Weight
	Optimum      cdag.Weight
}

// fig6DWTPoint computes one problem size of Figure 6a/6b.
func fig6DWTPoint(cfg wcfg.Config, n int) (Fig6DWTRow, error) {
	d := dwt.MaxLevel(n)
	g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
	if err != nil {
		return Fig6DWTRow{}, err
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		return Fig6DWTRow{}, err
	}
	opt, err := s.MinMemory(cdag.Weight(cfg.WordBits))
	if err != nil {
		return Fig6DWTRow{}, err
	}
	lbl, err := baseline.MinMemory(g.G, g.Layers, cdag.Weight(cfg.WordBits))
	if err != nil {
		return Fig6DWTRow{}, err
	}
	return Fig6DWTRow{N: n, D: d, LayerByLayer: lbl, Optimum: opt}, nil
}

// Fig6DWT scans even n in [2, maxN].
func Fig6DWT(cfg wcfg.Config, maxN int) ([]Fig6DWTRow, error) {
	var rows []Fig6DWTRow
	for n := 2; n <= maxN; n += 2 {
		r, err := fig6DWTPoint(cfg, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig6MVMRow is one problem size of Figure 6c/6d: minimum fast memory
// for MVM(96, n).
type Fig6MVMRow struct {
	N       int
	IOOptUB cdag.Weight
	Tiling  cdag.Weight
}

// fig6MVMPoint computes one problem size of Figure 6c/6d.
func fig6MVMPoint(cfg wcfg.Config, m, n int) (Fig6MVMRow, error) {
	g, err := mvm.Build(m, n, cfg)
	if err != nil {
		return Fig6MVMRow{}, err
	}
	model := ioopt.New(m, n, cfg)
	return Fig6MVMRow{N: n, IOOptUB: model.MinMemoryBits(), Tiling: g.MinMemory()}, nil
}

// Fig6MVM scans n in [1, maxN] with m fixed at 96.
func Fig6MVM(cfg wcfg.Config, m, maxN int) ([]Fig6MVMRow, error) {
	var rows []Fig6MVMRow
	for n := 1; n <= maxN; n++ {
		r, err := fig6MVMPoint(cfg, m, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table1Row mirrors one row of Table 1.
type Table1Row struct {
	Workload string
	Weights  string
	Approach string
	Ours     bool
	Spec     memdesign.Spec
}

// Table1 computes all eight rows of Table 1.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, cfg := range Configs() {
		g, err := dwt.Build(DWTInputs, DWTLevels, dwt.ConfigWeights(cfg))
		if err != nil {
			return nil, err
		}
		s, err := dwt.NewScheduler(g)
		if err != nil {
			return nil, err
		}
		opt, err := s.MinMemory(cdag.Weight(cfg.WordBits))
		if err != nil {
			return nil, err
		}
		lbl, err := baseline.MinMemory(g.G, g.Layers, cdag.Weight(cfg.WordBits))
		if err != nil {
			return nil, err
		}
		wl := fmt.Sprintf("DWT(%d, %d)", DWTInputs, DWTLevels)
		rows = append(rows,
			Table1Row{wl, cfg.Name, "Optimum*", true, memdesign.NewSpec(opt, cfg.WordBits)},
			Table1Row{wl, cfg.Name, "Layer-by-Layer", false, memdesign.NewSpec(lbl, cfg.WordBits)},
		)
	}
	for _, cfg := range Configs() {
		g, err := mvm.Build(MVMRows, MVMCols, cfg)
		if err != nil {
			return nil, err
		}
		model := ioopt.New(MVMRows, MVMCols, cfg)
		wl := fmt.Sprintf("MVM(%d, %d)", MVMRows, MVMCols)
		rows = append(rows,
			Table1Row{wl, cfg.Name, "Tiling*", true, memdesign.NewSpec(g.MinMemory(), cfg.WordBits)},
			Table1Row{wl, cfg.Name, "IOOpt UB", false, memdesign.NewSpec(model.MinMemoryBits(), cfg.WordBits)},
		)
	}
	return rows, nil
}

// Fig7Row pairs a Table 1 design point with its synthesized macro.
type Fig7Row struct {
	Table1Row
	Macro synth.Macro
}

// Fig7 synthesizes the power-of-two capacity of every Table 1 row
// under the process model.
func Fig7(p synth.Process) ([]Fig7Row, error) {
	t1, err := Table1()
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, r := range t1 {
		m, err := synth.Synthesize(r.Spec.Pow2Bits, r.Spec.WordBits, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{Table1Row: r, Macro: m})
	}
	return rows, nil
}

// Fig8Pair is one subfigure of Figure 8: our macro against the
// corresponding baseline macro for the same workload and weighting.
type Fig8Pair struct {
	Label    string
	Ours     Fig7Row
	Baseline Fig7Row
}

// Fig8 pairs the Fig7 rows per workload/weighting.
func Fig8(p synth.Process) ([]Fig8Pair, error) {
	rows, err := Fig7(p)
	if err != nil {
		return nil, err
	}
	var pairs []Fig8Pair
	for i := 0; i+1 < len(rows); i += 2 {
		if !rows[i].Ours || rows[i+1].Ours {
			return nil, fmt.Errorf("bench: unexpected Fig7 row pairing at %d", i)
		}
		pairs = append(pairs, Fig8Pair{
			Label:    fmt.Sprintf("%s %s", rows[i].Weights, rows[i].Workload),
			Ours:     rows[i],
			Baseline: rows[i+1],
		})
	}
	return pairs, nil
}

// WriteTable renders rows with aligned columns.
func WriteTable(w io.Writer, headers []string, rows [][]string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
