package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/guard"
	"wrbpg/internal/ktree"
	"wrbpg/internal/memstate"
	"wrbpg/internal/mvm"
	"wrbpg/internal/schedcache"
	"wrbpg/internal/serve"
	"wrbpg/internal/solve"
)

// PerfResult is one kernel's measurement, comparable across commits:
// ns/op plus the allocator counters that the DP hot paths are
// expected to keep at zero on memo hits.
type PerfResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfReport is the BENCH_*.json document emitted by
// cmd/experiments -bench-json: environment metadata plus one
// PerfResult per hot-path kernel.
type PerfReport struct {
	GoOS       string       `json:"goos"`
	GoArch     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []PerfResult `json:"results"`
}

// perfKernel is one entry of the regression suite. setup runs outside
// the timed region and returns the per-iteration body.
type perfKernel struct {
	name  string
	setup func() (func() error, error)
}

// sweepTree builds the k-ary instance the sweep kernels share: a full
// tree under the paper's Double Accumulator weighting (32-bit
// accumulators over 16-bit inputs), the same depth-staggered weight
// profile the Table-1 workloads use.
func sweepTree(k, height int) (*ktree.Tree, error) {
	cfg := Configs()[1]
	return ktree.FullTree(k, height, func(depth, index int) cdag.Weight {
		if depth == height {
			return cfg.Input()
		}
		return cfg.Node()
	})
}

// sweepBudgets returns n budgets descending geometrically from the
// total weight to the existence bound — the grid a Figure-5 curve
// samples, answered largest-first so the first solve warms the memo
// for the rest.
func sweepBudgets(min, total cdag.Weight, n int) []cdag.Weight {
	lo, hi := 1.0001, 8.0
	var ratio float64
	for it := 0; it < 60; it++ {
		ratio = (lo + hi) / 2
		p := 1.0
		for i := 0; i < n-1; i++ {
			p *= ratio
		}
		if float64(min)*p > float64(total) {
			hi = ratio
		} else {
			lo = ratio
		}
	}
	out := make([]cdag.Weight, n)
	b := float64(min)
	for i := range out {
		out[n-1-i] = cdag.Weight(b + 0.5)
		b *= ratio
	}
	return out
}

// perfKernels returns the hot-path suite: DP cost evaluation with
// warm memos (the packed-key lookups that must not allocate), cold
// full sweeps, the tile search, and graph construction.
func perfKernels() []perfKernel {
	return []perfKernel{
		{"MemstateSchedulerCostWarm", func() (func() error, error) {
			tr, err := ktree.FullTree(2, 6, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%3) })
			if err != nil {
				return nil, err
			}
			s, err := memstate.NewScheduler(tr.G)
			if err != nil {
				return nil, err
			}
			leaf := tr.G.Sources()[0]
			reuse := memstate.NewBitset(leaf)
			b := core.MinExistenceBudget(tr.G) + 4
			s.Cost(tr.Root, b, memstate.Bitset{}, reuse)
			return func() error { s.Cost(tr.Root, b, memstate.Bitset{}, reuse); return nil }, nil
		}},
		{"MemstateKSchedulerCostWarm", func() (func() error, error) {
			tr, err := ktree.FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
			if err != nil {
				return nil, err
			}
			s, err := memstate.NewKScheduler(tr.G)
			if err != nil {
				return nil, err
			}
			leaf := tr.G.Sources()[0]
			reuse := memstate.NewBitset(leaf)
			b := core.MinExistenceBudget(tr.G) + 4
			s.Cost(tr.Root, b, memstate.Bitset{}, reuse)
			return func() error { s.Cost(tr.Root, b, memstate.Bitset{}, reuse); return nil }, nil
		}},
		{"MemstateKSchedulerCostCold", func() (func() error, error) {
			tr, err := ktree.FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
			if err != nil {
				return nil, err
			}
			b := core.MinExistenceBudget(tr.G) + 4
			return func() error {
				s, err := memstate.NewKScheduler(tr.G)
				if err != nil {
					return err
				}
				s.PlainCost(tr.Root, b)
				return nil
			}, nil
		}},
		{"KtreeMinCostWarm", func() (func() error, error) {
			tr, err := ktree.FullTree(4, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
			if err != nil {
				return nil, err
			}
			s := ktree.NewScheduler(tr)
			b := core.MinExistenceBudget(tr.G) + 3
			s.MinCost(b)
			return func() error { s.MinCost(b); return nil }, nil
		}},
		{"KtreeMinCostCold", func() (func() error, error) {
			tr, err := ktree.FullTree(4, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
			if err != nil {
				return nil, err
			}
			b := core.MinExistenceBudget(tr.G) + 3
			return func() error { ktree.NewScheduler(tr).MinCost(b); return nil }, nil
		}},
		{"DWTMinCostCold", func() (func() error, error) {
			cfg := Configs()[0]
			g, err := dwt.Build(64, 6, dwt.ConfigWeights(cfg))
			if err != nil {
				return nil, err
			}
			b := core.MinExistenceBudget(g.G) + 4*cdag.Weight(cfg.WordBits)
			return func() error {
				s, err := dwt.NewScheduler(g)
				if err != nil {
					return err
				}
				s.MinCost(b)
				return nil
			}, nil
		}},
		{"MVMSearch", func() (func() error, error) {
			cfg := Configs()[0]
			g, err := mvm.Build(MVMRows, MVMCols, cfg)
			if err != nil {
				return nil, err
			}
			b := g.TilingMinBudget() + 20*cdag.Weight(cfg.WordBits)
			return func() error {
				_, _, err := g.Search(b)
				return err
			}, nil
		}},
		{"MVMMinMemory", func() (func() error, error) {
			cfg := Configs()[0]
			g, err := mvm.Build(MVMRows, MVMCols, cfg)
			if err != nil {
				return nil, err
			}
			return func() error { g.MinMemory(); return nil }, nil
		}},
		{"KtreeFullTreeBuild", func() (func() error, error) {
			return func() error {
				_, err := ktree.FullTree(2, 7, func(d, i int) cdag.Weight { return 1 })
				return err
			}, nil
		}},
		// The schedcache pair measures the serving layer's cache around
		// a realistic key population: a hit must stay allocation-light
		// (one LRU bump under a shard lock), and a keyed miss that finds
		// the value absent must stay cheap relative to any solve.
		{"SchedcacheHit", func() (func() error, error) {
			c := schedcache.New[int](16, 64)
			keys := make([]string, 256)
			for i := range keys {
				keys[i] = fmt.Sprintf("dwt/%032x", i)
				c.Put(keys[i], i)
			}
			var i int
			return func() error {
				k := keys[i&(len(keys)-1)]
				i++
				if _, _, err := c.Do(k, func() (int, bool, error) {
					return 0, false, fmt.Errorf("bench: unexpected miss for %s", k)
				}); err != nil {
					return err
				}
				return nil
			}, nil
		}},
		// The sweep-engine kernels back the warm-start acceptance claim:
		// a 16-budget sweep against one warm scheduler must cost < 2× a
		// single cold solve at the largest budget (the interval memo
		// shares all sub-budget cells), and the serving path's warm
		// sweep must not allocate. The budget grid is the Figure-5
		// pattern — geometric from the existence bound to the total
		// weight, answered largest-first — under the paper's Double
		// Accumulator weighting, whose per-level weights stagger the
		// subtree existence bounds the way real mixed-precision
		// workloads do.
		{"KtreeSweep16Cold", func() (func() error, error) {
			tr, err := sweepTree(4, 3)
			if err != nil {
				return nil, err
			}
			budgets := sweepBudgets(core.MinExistenceBudget(tr.G), tr.G.TotalWeight(), 16)
			return func() error {
				s := ktree.NewScheduler(tr)
				for _, b := range budgets {
					s.MinCost(b)
				}
				return nil
			}, nil
		}},
		{"KtreeMinCostColdMax", func() (func() error, error) {
			tr, err := sweepTree(4, 3)
			if err != nil {
				return nil, err
			}
			max := sweepBudgets(core.MinExistenceBudget(tr.G), tr.G.TotalWeight(), 16)[0]
			return func() error { ktree.NewScheduler(tr).MinCost(max); return nil }, nil
		}},
		{"MemstateKSweep16Cold", func() (func() error, error) {
			tr, err := sweepTree(3, 3)
			if err != nil {
				return nil, err
			}
			reuse := memstate.NewBitset(tr.G.Sources()[0])
			budgets := sweepBudgets(core.MinExistenceBudget(tr.G), tr.G.TotalWeight(), 16)
			return func() error {
				s, err := memstate.NewKScheduler(tr.G)
				if err != nil {
					return err
				}
				for _, b := range budgets {
					s.Cost(tr.Root, b, memstate.Bitset{}, reuse)
				}
				return nil
			}, nil
		}},
		{"MemstateKSchedulerCostColdMax", func() (func() error, error) {
			tr, err := sweepTree(3, 3)
			if err != nil {
				return nil, err
			}
			reuse := memstate.NewBitset(tr.G.Sources()[0])
			max := sweepBudgets(core.MinExistenceBudget(tr.G), tr.G.TotalWeight(), 16)[0]
			return func() error {
				s, err := memstate.NewKScheduler(tr.G)
				if err != nil {
					return err
				}
				s.Cost(tr.Root, max, memstate.Bitset{}, reuse)
				return nil
			}, nil
		}},
		{"ServeSweepWarm", func() (func() error, error) {
			// The full serving sweep core — session-pool hit plus 16 warm
			// budget queries — measured steady-state: the workspace slices
			// and shape key are reused exactly as the handler reuses its
			// pooled workspace, so this kernel must report 0 allocs/op.
			srv := serve.New(serve.Options{})
			in := solve.Instance{Family: solve.FamilyKTree, K: 4, Height: 3, Cfg: Configs()[0]}
			se, err := solve.NewSession(in)
			if err != nil {
				return nil, err
			}
			key := in.ShapeKey()
			max := se.MinExistence() + 18
			budgets := make([]cdag.Weight, 0, 16)
			for b := max; b > max-16; b-- {
				budgets = append(budgets, b)
			}
			pts := make([]solve.CostPoint, 0, 16)
			ctx := context.Background()
			if _, _, err := srv.SweepCosts(ctx, &in, key, budgets, pts[:0]); err != nil {
				return nil, err
			}
			return func() error {
				_, _, err := srv.SweepCosts(ctx, &in, key, budgets, pts[:0])
				return err
			}, nil
		}},
		// The incremental-engine kernels back the patch acceptance
		// claims: a single-node weight delta followed by a re-query
		// against the warm session (the *PatchResolveWarm kernels, which
		// must report 0 allocs/op) versus rebuilding the scheduler cold
		// on the same patched graph (the *PatchResolveCold pair). The
		// warm path re-solves only the dirtied subtree cone / root chain
		// — the ≥5× cold/warm ratio recorded in BENCH_6.json.
		{"DWTPatchResolveWarm", func() (func() error, error) {
			cfg := Configs()[0]
			g, err := dwt.Build(64, 6, dwt.ConfigWeights(cfg))
			if err != nil {
				return nil, err
			}
			se, err := dwt.NewSession(g)
			if err != nil {
				return nil, err
			}
			// Patch an input-layer node: layer-1 weights are outside the
			// Lemma 3.2 pair constraint, so both toggle states are valid.
			node := g.G.Sources()[0]
			w := g.G.Weight(node)
			b := core.MinExistenceBudget(g.G) + 4*cdag.Weight(cfg.WordBits)
			deltas := [2][]cdag.WeightDelta{
				{{Node: node, Weight: w + 1}},
				{{Node: node, Weight: w}},
			}
			ctx := context.Background()
			var lim guard.Limits
			var i int
			body := func() error {
				if _, _, err := se.Patch(deltas[i&1]); err != nil {
					return err
				}
				i++
				_, err := se.CostCtx(ctx, lim, b)
				return err
			}
			// Warm both toggle states so every budget index exists and
			// the memo rows have their final capacity.
			if err := body(); err != nil {
				return nil, err
			}
			return body, body()
		}},
		{"DWTPatchResolveCold", func() (func() error, error) {
			cfg := Configs()[0]
			g, err := dwt.Build(64, 6, dwt.ConfigWeights(cfg))
			if err != nil {
				return nil, err
			}
			node := g.G.Sources()[0]
			w := g.G.Weight(node)
			b := core.MinExistenceBudget(g.G) + 4*cdag.Weight(cfg.WordBits)
			var i int
			return func() error {
				if err := g.G.TrySetWeight(node, w+cdag.Weight(i&1)); err != nil {
					return err
				}
				i++
				s, err := dwt.NewScheduler(g)
				if err != nil {
					return err
				}
				s.MinCost(b)
				return nil
			}, nil
		}},
		{"KtreePatchResolveWarm", func() (func() error, error) {
			tr, err := ktree.FullTree(4, 4, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
			if err != nil {
				return nil, err
			}
			se := ktree.NewSession(tr)
			node := tr.G.Sources()[0]
			w := tr.G.Weight(node)
			b := core.MinExistenceBudget(tr.G) + 4
			deltas := [2][]cdag.WeightDelta{
				{{Node: node, Weight: w + 1}},
				{{Node: node, Weight: w}},
			}
			ctx := context.Background()
			var lim guard.Limits
			var i int
			body := func() error {
				if _, _, err := se.Patch(deltas[i&1]); err != nil {
					return err
				}
				i++
				_, err := se.CostCtx(ctx, lim, b)
				return err
			}
			if err := body(); err != nil {
				return nil, err
			}
			return body, body()
		}},
		{"KtreePatchResolveCold", func() (func() error, error) {
			tr, err := ktree.FullTree(4, 4, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
			if err != nil {
				return nil, err
			}
			node := tr.G.Sources()[0]
			w := tr.G.Weight(node)
			b := core.MinExistenceBudget(tr.G) + 4
			var i int
			return func() error {
				if err := tr.G.TrySetWeight(node, w+cdag.Weight(i&1)); err != nil {
					return err
				}
				i++
				ktree.NewScheduler(tr).MinCost(b)
				return nil
			}, nil
		}},
		{"MemstatePatchResolveWarm", func() (func() error, error) {
			tr, err := ktree.FullTree(2, 5, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
			if err != nil {
				return nil, err
			}
			se, err := memstate.NewSession(tr.G, tr.Root, memstate.Bitset{}, memstate.Bitset{})
			if err != nil {
				return nil, err
			}
			node := tr.G.Sources()[0]
			w := tr.G.Weight(node)
			b := core.MinExistenceBudget(tr.G) + 4
			deltas := [2][]cdag.WeightDelta{
				{{Node: node, Weight: w + 1}},
				{{Node: node, Weight: w}},
			}
			ctx := context.Background()
			var lim guard.Limits
			var i int
			body := func() error {
				if _, _, err := se.Patch(deltas[i&1]); err != nil {
					return err
				}
				i++
				_, err := se.CostCtx(ctx, lim, b)
				return err
			}
			if err := body(); err != nil {
				return nil, err
			}
			return body, body()
		}},
		{"MemstatePatchResolveCold", func() (func() error, error) {
			tr, err := ktree.FullTree(2, 5, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
			if err != nil {
				return nil, err
			}
			node := tr.G.Sources()[0]
			w := tr.G.Weight(node)
			b := core.MinExistenceBudget(tr.G) + 4
			var i int
			return func() error {
				if err := tr.G.TrySetWeight(node, w+cdag.Weight(i&1)); err != nil {
					return err
				}
				i++
				s, err := memstate.NewKScheduler(tr.G)
				if err != nil {
					return err
				}
				s.PlainCost(tr.Root, b)
				return nil
			}, nil
		}},
		{"ServePatchWarm", func() (func() error, error) {
			// The full serving patch core — session-pool hit, delta diff
			// with dependency-tracked invalidation, 16 warm budget queries
			// — measured steady-state like ServeSweepWarm: keys and delta
			// slices precomputed, workspace slices reused, 0 allocs/op.
			srv := serve.New(serve.Options{})
			in := solve.Instance{Family: solve.FamilyKTree, K: 4, Height: 3, Cfg: Configs()[0]}
			se, err := solve.NewSession(in)
			if err != nil {
				return nil, err
			}
			node := se.Graph().Sources()[0]
			w := se.Graph().Weight(node)
			baseKey := in.BaseShapeKey()
			max := se.MinExistence() + 20
			budgets := make([]cdag.Weight, 0, 16)
			for b := max; b > max-16; b-- {
				budgets = append(budgets, b)
			}
			insts := [2]solve.Instance{in, in}
			insts[0].Deltas = []cdag.WeightDelta{{Node: node, Weight: w + 1}}
			insts[1].Deltas = []cdag.WeightDelta{{Node: node, Weight: w + 2}}
			pts := make([]solve.CostPoint, 0, 16)
			ctx := context.Background()
			var i int
			body := func() error {
				_, _, err := srv.PatchCosts(ctx, &insts[i&1], baseKey, budgets, pts[:0])
				i++
				return err
			}
			if err := body(); err != nil {
				return nil, err
			}
			return body, body()
		}},
		{"SchedcacheMissKey", func() (func() error, error) {
			cfg := Configs()[0]
			in := solve.Instance{Family: solve.FamilyDWT, N: 64, D: 6, Cfg: cfg}
			c := schedcache.New[int](16, 64)
			var b int64
			return func() error {
				// Fresh budget each iteration keeps every lookup a miss:
				// key derivation (sha256 canonicalization) + singleflight
				// leader dispatch, with a trivial fill standing in for
				// the solve.
				b++
				_, _, err := c.Do(in.Key(b), func() (int, bool, error) { return int(b), true, nil })
				return err
			}, nil
		}},
	}
}

// RunPerfSuite measures every kernel with testing.Benchmark and
// returns the report. It is callable from a plain binary — the
// standard benchmark machinery does not require a test context.
func RunPerfSuite() (PerfReport, error) {
	rep := PerfReport{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, k := range perfKernels() {
		body, err := k.setup()
		if err != nil {
			return rep, fmt.Errorf("bench: perf kernel %s: %w", k.name, err)
		}
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := body(); err != nil {
					runErr = err
					b.Fatalf("bench: perf kernel %s: %v", k.name, err)
				}
			}
		})
		if runErr != nil {
			return rep, fmt.Errorf("bench: perf kernel %s: %w", k.name, runErr)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:        k.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return rep, nil
}

// RunPerfSuiteQuick runs every kernel body exactly once and reports
// wall-clock-only results (Iterations=1, no allocator counters). It is
// the CI smoke mode: it proves each kernel still sets up and runs, and
// produces a BENCH_*.json artifact in seconds, without the statistical
// weight of RunPerfSuite. Quick reports are not comparable baselines.
func RunPerfSuiteQuick() (PerfReport, error) {
	rep := PerfReport{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, k := range perfKernels() {
		body, err := k.setup()
		if err != nil {
			return rep, fmt.Errorf("bench: perf kernel %s: %w", k.name, err)
		}
		start := time.Now()
		if err := body(); err != nil {
			return rep, fmt.Errorf("bench: perf kernel %s: %w", k.name, err)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:       k.name,
			Iterations: 1,
			NsPerOp:    float64(time.Since(start).Nanoseconds()),
		})
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (the BENCH_*.json
// format; see docs/PERFORMANCE.md for the benchstat workflow).
func (r PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
