package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestAnytimeSuiteSmoke runs the BENCH_9 suite in a tiny
// configuration — 3 graphs, 5 ms slices — and checks the report's
// structural invariants. The headline numbers (≥2× parallel speedup,
// ≥half beating baseline) are timing-sensitive and belong to the full
// `make bench-anytime` run, not to this smoke pass.
func TestAnytimeSuiteSmoke(t *testing.T) {
	rep, err := RunAnytimeSuiteWith(3, 5*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 3 || rep.Workers != 2 || rep.SliceMs != 5 {
		t.Fatalf("report shape wrong: %d graphs, workers %d, slice %d",
			len(rep.Graphs), rep.Workers, rep.SliceMs)
	}
	for _, g := range rep.Graphs {
		if g.CostBits > g.BaselineBits {
			t.Fatalf("graph %d: incumbent %d above baseline %d", g.Index, g.CostBits, g.BaselineBits)
		}
		if g.CostBits < g.LowerBoundBits {
			t.Fatalf("graph %d: incumbent %d below lower bound %d", g.Index, g.CostBits, g.LowerBoundBits)
		}
		if g.SeedBits < g.CostBits {
			t.Fatalf("graph %d: seed %d below final cost %d (trajectory not monotone)", g.Index, g.SeedBits, g.CostBits)
		}
		if g.PruningRatio < 0 || g.PruningRatio > 1 {
			t.Fatalf("graph %d: pruning ratio %f outside [0,1]", g.Index, g.PruningRatio)
		}
		if g.OneWorkerCostBits < g.LowerBoundBits || g.OneWorkerCostBits > g.SeedBits {
			t.Fatalf("graph %d: 1-worker cost %d outside [lb %d, seed %d]",
				g.Index, g.OneWorkerCostBits, g.LowerBoundBits, g.SeedBits)
		}
		if g.ParallelMatchNs <= 0 {
			t.Fatalf("graph %d: target run recorded no wall clock", g.Index)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back AnytimeReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Graphs) != len(rep.Graphs) {
		t.Fatalf("round-trip lost graphs: %d != %d", len(back.Graphs), len(rep.Graphs))
	}
}
