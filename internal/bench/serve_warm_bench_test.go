package bench

import (
	"testing"
)

// BenchmarkServeSweepWarm runs the ServeSweepWarm perf kernel under
// the standard benchmark driver so the warm serving path can be A/B
// compared in isolation (the BENCH_10.json overhead check) without
// running the whole RunPerfSuite.
func BenchmarkServeSweepWarm(b *testing.B) {
	for _, k := range perfKernels() {
		if k.name != "ServeSweepWarm" {
			continue
		}
		body, err := k.setup()
		if err != nil {
			b.Fatalf("setup: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := body(); err != nil {
				b.Fatalf("kernel body: %v", err)
			}
		}
		return
	}
	b.Fatal("ServeSweepWarm kernel not found")
}
