package bench

import (
	"context"
	"fmt"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/ioopt"
	"wrbpg/internal/mvm"
	"wrbpg/internal/par"
	"wrbpg/internal/wcfg"
)

// ParMap evaluates f over every input on a bounded worker pool and
// returns the outputs in input order. The experiment sweeps of
// Figures 5 and 6 are embarrassingly parallel — every budget or
// problem size builds its own graphs and schedulers — so the harness
// fans them out across cores; the first error aborts the sweep (jobs
// not yet started are skipped) and is returned after all workers
// drain. It is a thin wrapper over par.Map, kept for compatibility.
func ParMap[I, O any](workers int, in []I, f func(I) (O, error)) ([]O, error) {
	return par.Map(workers, in, f)
}

// Fig6DWTParallel is Fig6DWT fanned out across cores; results are
// identical (the computation is deterministic per problem size).
func Fig6DWTParallel(cfg wcfg.Config, maxN, workers int) ([]Fig6DWTRow, error) {
	return Fig6DWTParallelCtx(context.Background(), cfg, maxN, workers)
}

// Fig6DWTParallelCtx is Fig6DWTParallel under a cancellation context:
// once ctx dies no further problem size is dispatched and the typed
// reason (guard.ErrCanceled / guard.ErrDeadline) is returned.
func Fig6DWTParallelCtx(ctx context.Context, cfg wcfg.Config, maxN, workers int) ([]Fig6DWTRow, error) {
	var sizes []int
	for n := 2; n <= maxN; n += 2 {
		sizes = append(sizes, n)
	}
	return par.MapCtx(ctx, workers, sizes, func(n int) (Fig6DWTRow, error) {
		return fig6DWTPoint(cfg, n)
	})
}

// Fig6MVMParallel is Fig6MVM fanned out across cores.
func Fig6MVMParallel(cfg wcfg.Config, m, maxN, workers int) ([]Fig6MVMRow, error) {
	return Fig6MVMParallelCtx(context.Background(), cfg, m, maxN, workers)
}

// Fig6MVMParallelCtx is Fig6MVMParallel under a cancellation context.
func Fig6MVMParallelCtx(ctx context.Context, cfg wcfg.Config, m, maxN, workers int) ([]Fig6MVMRow, error) {
	var sizes []int
	for n := 1; n <= maxN; n++ {
		sizes = append(sizes, n)
	}
	return par.MapCtx(ctx, workers, sizes, func(n int) (Fig6MVMRow, error) {
		return fig6MVMPoint(cfg, m, n)
	})
}

// Fig5DWTParallel is Fig5DWT with the budget axis split into
// contiguous chunks, one dwt.Scheduler per chunk. The scheduler's
// memo is not safe for concurrent use, so budgets cannot share one
// instance; chunking keeps the within-chunk memo reuse (adjacent
// budgets solve overlapping subproblems) while still fanning out.
// Results are identical to Fig5DWT.
func Fig5DWTParallel(cfg wcfg.Config, n, d int, budgets []cdag.Weight, workers int) ([]Fig5DWTRow, error) {
	return Fig5DWTParallelCtx(context.Background(), cfg, n, d, budgets, workers)
}

// Fig5DWTParallelCtx is Fig5DWTParallel under a cancellation context:
// once ctx dies no further budget chunk is dispatched and the typed
// reason (guard.ErrCanceled / guard.ErrDeadline) is returned.
func Fig5DWTParallelCtx(ctx context.Context, cfg wcfg.Config, n, d int, budgets []cdag.Weight, workers int) ([]Fig5DWTRow, error) {
	g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
	if err != nil {
		return nil, err
	}
	lb := core.LowerBound(g.G)
	if budgets == nil {
		lblMem, err := baseline.MinMemory(g.G, g.Layers, cdag.Weight(cfg.WordBits))
		if err != nil {
			return nil, err
		}
		budgets = LogBudgets(core.MinExistenceBudget(g.G), 2*lblMem, 1.3, cfg.WordBits)
	}
	chunks := par.Chunks(len(budgets), workers)
	parts, err := par.MapCtx(ctx, workers, chunks, func(c [2]int) ([]Fig5DWTRow, error) {
		sched, err := dwt.NewScheduler(g)
		if err != nil {
			return nil, err
		}
		rows := make([]Fig5DWTRow, 0, c[1]-c[0])
		for _, b := range budgets[c[0]:c[1]] {
			lbl, err := baseline.Cost(g.G, g.Layers, b)
			if err != nil {
				return nil, fmt.Errorf("bench: layer-by-layer at %d: %w", b, err)
			}
			opt := sched.MinCost(b)
			if opt >= dwt.Inf {
				return nil, fmt.Errorf("bench: optimum infeasible at %d", b)
			}
			rows = append(rows, Fig5DWTRow{BudgetBits: b, AlgorithmicLB: lb, LayerByLayer: lbl, Optimum: opt})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig5DWTRow
	for _, p := range parts {
		rows = append(rows, p...)
	}
	return rows, nil
}

// Fig5MVMParallel is Fig5MVM with the budget axis fanned out per
// point; mvm cost prediction is closed-form and stateless, so budgets
// share the graph safely. Results are identical to Fig5MVM.
func Fig5MVMParallel(cfg wcfg.Config, m, n int, budgets []cdag.Weight, workers int) ([]Fig5MVMRow, error) {
	return Fig5MVMParallelCtx(context.Background(), cfg, m, n, budgets, workers)
}

// Fig5MVMParallelCtx is Fig5MVMParallel under a cancellation context.
func Fig5MVMParallelCtx(ctx context.Context, cfg wcfg.Config, m, n int, budgets []cdag.Weight, workers int) ([]Fig5MVMRow, error) {
	g, err := mvm.Build(m, n, cfg)
	if err != nil {
		return nil, err
	}
	model := ioopt.New(m, n, cfg)
	if budgets == nil {
		hi := 2 * model.MinMemoryBits()
		budgets = LogBudgets(g.TilingMinBudget(), hi, 1.3, cfg.WordBits)
	}
	pts, err := par.MapCtx(ctx, workers, budgets, func(b cdag.Weight) (Fig5MVMRow, error) {
		words := int(b) / cfg.WordBits
		tiling := g.MinCost(b)
		if tiling >= mvm.Inf {
			// Below the tiling minimum; the paper's axis starts above
			// it. Marked by a zero BudgetBits and filtered below.
			return Fig5MVMRow{}, nil
		}
		return Fig5MVMRow{
			BudgetBits: b,
			IOOptLB:    model.LowerBound(words),
			IOOptUB:    model.UpperBound(words),
			Tiling:     tiling,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5MVMRow, 0, len(pts))
	for _, r := range pts {
		if r.BudgetBits != 0 {
			rows = append(rows, r)
		}
	}
	return rows, nil
}
