package bench

import (
	"runtime"
	"sync"

	"wrbpg/internal/wcfg"
)

// ParMap evaluates f over every input on a bounded worker pool and
// returns the outputs in input order. The experiment sweeps of
// Figures 5 and 6 are embarrassingly parallel — every budget or
// problem size builds its own graphs and schedulers — so the harness
// fans them out across cores; the first error wins and is returned
// after all workers drain.
func ParMap[I, O any](workers int, in []I, f func(I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]O, len(in))
	if len(in) == 0 {
		return out, nil
	}
	if workers <= 1 {
		for i, x := range in {
			y, err := f(x)
			if err != nil {
				return nil, err
			}
			out[i] = y
		}
		return out, nil
	}
	type job struct{ idx int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				y, err := f(in[j.idx])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[j.idx] = y
			}
		}()
	}
	for i := range in {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Fig6DWTParallel is Fig6DWT fanned out across cores; results are
// identical (the computation is deterministic per problem size).
func Fig6DWTParallel(cfg wcfg.Config, maxN, workers int) ([]Fig6DWTRow, error) {
	var sizes []int
	for n := 2; n <= maxN; n += 2 {
		sizes = append(sizes, n)
	}
	return ParMap(workers, sizes, func(n int) (Fig6DWTRow, error) {
		return fig6DWTPoint(cfg, n)
	})
}

// Fig6MVMParallel is Fig6MVM fanned out across cores.
func Fig6MVMParallel(cfg wcfg.Config, m, maxN, workers int) ([]Fig6MVMRow, error) {
	var sizes []int
	for n := 1; n <= maxN; n++ {
		sizes = append(sizes, n)
	}
	return ParMap(workers, sizes, func(n int) (Fig6MVMRow, error) {
		return fig6MVMPoint(cfg, m, n)
	})
}
