package bench

import (
	"bytes"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/synth"
)

func TestLogBudgets(t *testing.T) {
	bs := LogBudgets(48, 8192, 1.3, 16)
	if len(bs) < 10 {
		t.Fatalf("too few budgets: %v", bs)
	}
	for i, b := range bs {
		if b%16 != 0 {
			t.Errorf("budget %d not word-aligned", b)
		}
		if i > 0 && bs[i] <= bs[i-1] {
			t.Errorf("budgets not strictly increasing: %v", bs)
		}
	}
	if bs[0] != 48 {
		t.Errorf("first budget %d, want 48", bs[0])
	}
}

// TestFig5DWTShape: the series obey LB ≤ Optimum ≤ LayerByLayer at
// every point, the optimum is non-increasing, and both converge to
// the lower bound.
func TestFig5DWTShape(t *testing.T) {
	for _, cfg := range Configs() {
		rows, err := Fig5DWT(cfg, 64, 6, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 5 {
			t.Fatalf("too few rows: %d", len(rows))
		}
		prevOpt := cdag.Weight(1 << 62)
		for _, r := range rows {
			if r.Optimum < r.AlgorithmicLB {
				t.Fatalf("%s b=%d: optimum %d below LB %d", cfg.Name, r.BudgetBits, r.Optimum, r.AlgorithmicLB)
			}
			if r.LayerByLayer < r.Optimum {
				t.Fatalf("%s b=%d: baseline %d below optimum %d", cfg.Name, r.BudgetBits, r.LayerByLayer, r.Optimum)
			}
			if r.Optimum > prevOpt {
				t.Fatalf("%s b=%d: optimum not non-increasing", cfg.Name, r.BudgetBits)
			}
			prevOpt = r.Optimum
		}
		last := rows[len(rows)-1]
		if last.Optimum != last.AlgorithmicLB || last.LayerByLayer != last.AlgorithmicLB {
			t.Errorf("%s: series do not converge to the LB: %+v", cfg.Name, last)
		}
	}
}

// TestFig5DWTAnchors: the Equal DWT(256,8) series starts at the known
// extremes of Figure 5a.
func TestFig5DWTAnchors(t *testing.T) {
	rows, err := Fig5DWT(Configs()[0], 256, 8, []cdag.Weight{48, 160, 7120})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].AlgorithmicLB != 8192 {
		t.Errorf("LB = %d, want 8192", rows[0].AlgorithmicLB)
	}
	// At the minimum feasible budget (3 words) every internal node of
	// the pruned tree spills exactly one child: 127 spills × 2 words
	// = 4064 extra bits over the LB. (Certified optimal against
	// exhaustive search on small instances in internal/dwt.)
	if rows[0].Optimum != 12256 {
		t.Errorf("optimum at 48 bits = %d, want 12256", rows[0].Optimum)
	}
	// At 160 bits (Table 1's minimum) the optimum meets the LB.
	if rows[1].Optimum != 8192 {
		t.Errorf("optimum at 160 bits = %d, want 8192", rows[1].Optimum)
	}
}

// TestFig5MVMShape: tiling never exceeds the IOOpt upper bound and
// sits at or above the algorithmic LB; all series decrease.
func TestFig5MVMShape(t *testing.T) {
	for _, cfg := range Configs() {
		rows, err := Fig5MVM(cfg, 24, 30, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 5 {
			t.Fatalf("too few rows")
		}
		for _, r := range rows {
			if r.IOOptUB < Inf() && r.Tiling > r.IOOptUB {
				t.Errorf("%s b=%d: tiling %d above IOOpt UB %d", cfg.Name, r.BudgetBits, r.Tiling, r.IOOptUB)
			}
		}
		last := rows[len(rows)-1]
		if last.Tiling >= last.IOOptUB {
			t.Errorf("%s: tiling should beat IOOpt UB at large memory (%d vs %d)", cfg.Name, last.Tiling, last.IOOptUB)
		}
	}
}

// Inf re-exports the mvm sentinel for test readability.
func Inf() cdag.Weight { return 1 << 60 }

// TestTable1Values pins every row of Table 1 (ours exactly; baseline
// rows at our implementation's measured values — see EXPERIMENTS.md).
func TestTable1Values(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	want := []struct {
		approach string
		words    int
		pow2     cdag.Weight
	}{
		{"Optimum*", 10, 256},
		{"Layer-by-Layer", 131, 4096},
		{"Optimum*", 18, 512},
		{"Layer-by-Layer", 260, 8192},
		{"Tiling*", 99, 2048},
		{"IOOpt UB", 193, 4096},
		{"Tiling*", 126, 2048},
		{"IOOpt UB", 289, 8192},
	}
	for i, w := range want {
		r := rows[i]
		if r.Approach != w.approach || r.Spec.Words != w.words || r.Spec.Pow2Bits != w.pow2 {
			t.Errorf("row %d: %s %d words pow2 %d; want %s %d words pow2 %d",
				i, r.Approach, r.Spec.Words, r.Spec.Pow2Bits, w.approach, w.words, w.pow2)
		}
	}
}

// TestFig7MemoryReductions: our designs are smaller and leak less
// than the corresponding baselines in every pair.
func TestFig7MemoryReductions(t *testing.T) {
	rows, err := Fig7(synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		ours, base := rows[i], rows[i+1]
		if !ours.Ours || base.Ours {
			t.Fatalf("pairing broken at %d", i)
		}
		if ours.Macro.AreaLambda2 >= base.Macro.AreaLambda2 {
			t.Errorf("%s %s: our area %.0f not below baseline %.0f", ours.Weights, ours.Workload, ours.Macro.AreaLambda2, base.Macro.AreaLambda2)
		}
		if ours.Macro.LeakageMW >= base.Macro.LeakageMW {
			t.Errorf("%s %s: our leakage not below baseline", ours.Weights, ours.Workload)
		}
		// Figures 7e/7f: performance stays comparable (within 20%).
		if ours.Macro.ReadGBs < base.Macro.ReadGBs*0.8 {
			t.Errorf("%s %s: our bandwidth degraded", ours.Weights, ours.Workload)
		}
	}
}

// TestFig8Pairs: four workload pairs with ours strictly smaller.
func TestFig8Pairs(t *testing.T) {
	pairs, err := Fig8(synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("pairs = %d, want 4", len(pairs))
	}
	for _, p := range pairs {
		oursA := p.Ours.Macro.WidthLambda * p.Ours.Macro.HeightLambda
		baseA := p.Baseline.Macro.WidthLambda * p.Baseline.Macro.HeightLambda
		if oursA >= baseA {
			t.Errorf("%s: our footprint %.0f not below baseline %.0f", p.Label, oursA, baseA)
		}
	}
}

// TestFig6DWTSmall: on a reduced range, the optimum needs no more
// memory than the baseline anywhere.
func TestFig6DWTSmall(t *testing.T) {
	for _, cfg := range Configs() {
		rows, err := Fig6DWT(cfg, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 32 {
			t.Fatalf("rows = %d, want 32", len(rows))
		}
		for _, r := range rows {
			if r.Optimum > r.LayerByLayer {
				t.Errorf("%s n=%d: optimum %d above baseline %d", cfg.Name, r.N, r.Optimum, r.LayerByLayer)
			}
			if r.D != 0 && r.N%(1<<uint(r.D)) != 0 {
				t.Errorf("n=%d: d*=%d not admissible", r.N, r.D)
			}
		}
	}
}

// TestFig6MVMSmall: tiling stays at or below IOOpt UB across n, and
// the Equal curve flattens at m+3 words once n is large.
func TestFig6MVMSmall(t *testing.T) {
	rows, err := Fig6MVM(Configs()[0], 24, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tiling > r.IOOptUB {
			t.Errorf("n=%d: tiling %d above IOOpt UB %d", r.N, r.Tiling, r.IOOptUB)
		}
	}
	// m+3 words for m=24 at n ≥ m.
	if rows[39].Tiling != 27*16 {
		t.Errorf("tiling at n=40 = %d bits, want %d", rows[39].Tiling, 27*16)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"333", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}
