package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"wrbpg/internal/anytime"
	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
)

// AnytimeGraphResult is one roster graph's measurement in the BENCH_9
// anytime report: search throughput and pruning effectiveness of the
// deadline-sliced run, the incumbent trajectory against the
// layer-by-layer baseline, and the 1-vs-N-worker time-to-match kernel.
type AnytimeGraphResult struct {
	Index int `json:"index"`
	Nodes int `json:"nodes"`

	BudgetBits     int64 `json:"budget_bits"`
	LowerBoundBits int64 `json:"lower_bound_bits"`
	BaselineBits   int64 `json:"baseline_bits"`
	SeedBits       int64 `json:"seed_bits"`
	CostBits       int64 `json:"cost_bits"`
	Complete       bool  `json:"complete"`

	Expanded       int64   `json:"expanded"`
	Pruned         int64   `json:"pruned"`
	Deduped        int64   `json:"deduped"`
	Improvements   int64   `json:"improvements"`
	ExpandedPerSec float64 `json:"expanded_per_sec"`
	// PruningRatio is pruned / (pruned + expanded): the fraction of
	// generated states the incumbent bound cut before expansion.
	PruningRatio float64 `json:"pruning_ratio"`

	// TimeToMatchBaselineNs is the wall-clock offset at which the
	// incumbent first reached the baseline cost. The seed already
	// includes the baseline, so this is 0 by construction — recorded to
	// pin the "never worse than the ladder" floor.
	TimeToMatchBaselineNs int64 `json:"time_to_match_baseline_ns"`
	// TimeToBeatBaselineNs is the offset of the first incumbent
	// strictly below the baseline cost, or -1 when the run never beat
	// it (the baseline was already optimal for this graph).
	TimeToBeatBaselineNs int64 `json:"time_to_beat_baseline_ns"`

	// The speedup kernel: a 1-worker run at the same slice records its
	// final incumbent cost and the offset at which it was installed;
	// an N-worker run with TargetCost set to that incumbent measures
	// the wall clock to match it.
	OneWorkerCostBits    int64   `json:"one_worker_cost_bits"`
	OneWorkerIncumbentNs int64   `json:"one_worker_incumbent_ns"`
	ParallelMatchNs      int64   `json:"parallel_match_ns"`
	ParallelSpeedup      float64 `json:"parallel_speedup,omitempty"`
}

// AnytimeReport is the BENCH_9.json document: per-graph kernels over
// the fixed random-CDAG roster plus the aggregate headline numbers.
type AnytimeReport struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Workers int   `json:"workers"`
	SliceMs int64 `json:"slice_ms"`

	Graphs []AnytimeGraphResult `json:"graphs"`

	// BeatBaseline counts roster graphs whose final incumbent was
	// strictly below layer-by-layer (acceptance wants ≥ half).
	BeatBaseline int `json:"beat_baseline"`

	MeanExpandedPerSec float64 `json:"mean_expanded_per_sec"`
	MeanPruningRatio   float64 `json:"mean_pruning_ratio"`

	// SpeedupSamples counts graphs where the 1-worker run improved on
	// its seed late enough to time (the others match instantly in both
	// configurations and carry no signal). TotalParallelSpeedup is
	// Σ one_worker_incumbent_ns / Σ parallel_match_ns over those
	// samples — the duration-weighted speedup the acceptance gates on —
	// and MedianParallelSpeedup the per-graph median.
	SpeedupSamples        int     `json:"speedup_samples"`
	TotalParallelSpeedup  float64 `json:"total_parallel_speedup"`
	MedianParallelSpeedup float64 `json:"median_parallel_speedup"`

	// SpeedupNote flags reports whose speedup kernel cannot show real
	// parallelism: on a single-CPU host the N-worker run time-slices
	// one core, so the kernel's ceiling is parity (≈1.0×), and any
	// value near 1.0 certifies zero parallelization overhead rather
	// than speedup. The ≥2× acceptance reading applies to multi-core
	// hosts.
	SpeedupNote string `json:"speedup_note,omitempty"`
}

// anytimeRoster returns the fixed roster shared with the anytime
// package's acceptance test: deterministic random CDAGs spanning
// 15–60 nodes.
func anytimeRoster(count int) []*cdag.Graph {
	out := make([]*cdag.Graph, count)
	for i := range out {
		n := 15
		if count > 1 {
			n += (i * 45) / (count - 1)
		}
		out[i] = cdag.Random(int64(1000+i), n)
	}
	return out
}

// speedupFloor is the minimum 1-worker incumbent-install offset for a
// graph to count toward the speedup aggregate: below it both
// configurations match the target within scheduler-startup noise and
// the ratio is meaningless.
const speedupFloor = 500 * time.Microsecond

// RunAnytimeSuite measures the general-DAG anytime tier on the fixed
// 20-graph roster with the acceptance slice of 50 ms per graph and
// GOMAXPROCS search workers.
func RunAnytimeSuite() (AnytimeReport, error) {
	return RunAnytimeSuiteWith(20, 50*time.Millisecond, 0)
}

// RunAnytimeSuiteWith is the parameterized suite: graphs roster
// entries, slice per deadline-bounded search, and workers parallel
// width (≤0 selects GOMAXPROCS). Small rosters and slices make a CI
// smoke configuration; the committed BENCH_9.json uses the defaults.
func RunAnytimeSuiteWith(graphs int, slice time.Duration, workers int) (AnytimeReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := AnytimeReport{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		SliceMs:    slice.Milliseconds(),
	}
	if runtime.NumCPU() == 1 {
		rep.SpeedupNote = "single-CPU host: the parallel kernel time-slices one core, so its ceiling is parity (1.0x); values near 1.0 certify zero parallel overhead, not speedup"
	}
	ctx := context.Background()
	var sumRate, sumRatio float64
	var speedups []float64
	var sumOne, sumPar int64
	for i, g := range anytimeRoster(graphs) {
		b := core.MinExistenceBudget(g) * 2
		lbl, err := baseline.LayerByLayer(g, anytime.DepthLayers(g), b)
		if err != nil {
			return rep, fmt.Errorf("bench: anytime graph %d: baseline: %w", i, err)
		}
		baseCost := core.Cost(g, lbl)

		start := time.Now()
		res, err := anytime.Search(ctx, g, b, guard.Limits{Deadline: slice},
			anytime.Options{Workers: workers})
		if err != nil {
			return rep, fmt.Errorf("bench: anytime graph %d: %w", i, err)
		}
		elapsed := time.Since(start)
		if _, err := core.Simulate(g, b, res.Schedule); err != nil {
			return rep, fmt.Errorf("bench: anytime graph %d: invalid incumbent: %w", i, err)
		}
		if res.Cost > baseCost {
			return rep, fmt.Errorf("bench: anytime graph %d: incumbent %d above baseline %d",
				i, res.Cost, baseCost)
		}

		r := AnytimeGraphResult{
			Index:                i,
			Nodes:                g.Len(),
			BudgetBits:           int64(b),
			LowerBoundBits:       int64(res.LowerBound),
			BaselineBits:         int64(baseCost),
			SeedBits:             int64(res.SeedCost),
			CostBits:             int64(res.Cost),
			Complete:             res.Complete,
			Expanded:             res.Expanded,
			Pruned:               res.Pruned,
			Deduped:              res.Deduped,
			Improvements:         res.Improvements,
			ExpandedPerSec:       float64(res.Expanded) / elapsed.Seconds(),
			TimeToBeatBaselineNs: -1,
		}
		if gen := res.Expanded + res.Pruned; gen > 0 {
			r.PruningRatio = float64(res.Pruned) / float64(gen)
		}
		for _, imp := range res.Trajectory {
			if imp.Cost <= baseCost && r.TimeToMatchBaselineNs == 0 {
				r.TimeToMatchBaselineNs = imp.Elapsed.Nanoseconds()
			}
			if imp.Cost < baseCost {
				r.TimeToBeatBaselineNs = imp.Elapsed.Nanoseconds()
				break
			}
		}
		if res.Cost < baseCost {
			rep.BeatBaseline++
		}
		sumRate += r.ExpandedPerSec
		sumRatio += r.PruningRatio

		// Speedup kernel: 1-worker reference run, then an N-worker race
		// to its incumbent. The reference time is the offset at which
		// the 1-worker run *installed* its final incumbent — the rest of
		// its slice was spent failing to improve and would inflate the
		// ratio.
		one, err := anytime.Search(ctx, g, b, guard.Limits{Deadline: slice},
			anytime.Options{Workers: 1})
		if err != nil {
			return rep, fmt.Errorf("bench: anytime graph %d: 1-worker run: %w", i, err)
		}
		r.OneWorkerCostBits = int64(one.Cost)
		if len(one.Trajectory) > 0 {
			r.OneWorkerIncumbentNs = one.Trajectory[len(one.Trajectory)-1].Elapsed.Nanoseconds()
		}
		start = time.Now()
		match, err := anytime.Search(ctx, g, b, guard.Limits{Deadline: 20 * slice},
			anytime.Options{Workers: workers, TargetCost: one.Cost})
		if err != nil {
			return rep, fmt.Errorf("bench: anytime graph %d: target run: %w", i, err)
		}
		r.ParallelMatchNs = time.Since(start).Nanoseconds()
		if match.Cost > one.Cost {
			return rep, fmt.Errorf("bench: anytime graph %d: target run stopped at %d above target %d",
				i, match.Cost, one.Cost)
		}
		if one.Improvements > 0 && r.OneWorkerIncumbentNs >= speedupFloor.Nanoseconds() &&
			r.ParallelMatchNs > 0 {
			r.ParallelSpeedup = float64(r.OneWorkerIncumbentNs) / float64(r.ParallelMatchNs)
			speedups = append(speedups, r.ParallelSpeedup)
			sumOne += r.OneWorkerIncumbentNs
			sumPar += r.ParallelMatchNs
		}
		rep.Graphs = append(rep.Graphs, r)
	}
	rep.MeanExpandedPerSec = sumRate / float64(len(rep.Graphs))
	rep.MeanPruningRatio = sumRatio / float64(len(rep.Graphs))
	rep.SpeedupSamples = len(speedups)
	if sumPar > 0 {
		rep.TotalParallelSpeedup = float64(sumOne) / float64(sumPar)
	}
	if len(speedups) > 0 {
		sort.Float64s(speedups)
		mid := len(speedups) / 2
		if len(speedups)%2 == 1 {
			rep.MedianParallelSpeedup = speedups[mid]
		} else {
			rep.MedianParallelSpeedup = (speedups[mid-1] + speedups[mid]) / 2
		}
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON (the BENCH_9.json
// format; see docs/PERFORMANCE.md §anytime).
func (r AnytimeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
