package bench

import (
	"strings"
	"testing"
)

// TestWarmKernelsZeroAlloc is the alloc-regression guard: every perf
// kernel whose name ends in "Warm" exercises a memo-hit or pooled
// steady-state path whose zero-allocation behavior is a documented
// contract (BENCH_*.json, docs/PERFORMANCE.md). The suite runs under
// `go test`, so `make check` fails if any warm path regresses to
// allocating — no one has to notice a drifting benchmark number.
func TestWarmKernelsZeroAlloc(t *testing.T) {
	for _, k := range perfKernels() {
		if !strings.HasSuffix(k.name, "Warm") {
			continue
		}
		k := k
		t.Run(k.name, func(t *testing.T) {
			body, err := k.setup()
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			// One extra call outside the measured region: setup already
			// warms its memo, this shields against a future kernel that
			// forgets to.
			if err := body(); err != nil {
				t.Fatalf("warm call: %v", err)
			}
			var runErr error
			allocs := testing.AllocsPerRun(100, func() {
				if err := body(); err != nil && runErr == nil {
					runErr = err
				}
			})
			if runErr != nil {
				t.Fatalf("kernel body: %v", runErr)
			}
			if allocs != 0 {
				t.Errorf("%s allocates %.1f allocs/op on the warm path, want 0", k.name, allocs)
			}
		})
	}
}
