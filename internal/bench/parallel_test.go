package bench

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParMapOrderAndValues(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out, err := ParMap(8, in, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParMapErrorPropagation(t *testing.T) {
	in := []int{1, 2, 3, 4, 5}
	boom := errors.New("boom")
	_, err := ParMap(3, in, func(x int) (int, error) {
		if x == 4 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestParMapEdgeCases(t *testing.T) {
	out, err := ParMap(4, nil, func(x int) (int, error) { return x, nil })
	if err != nil || len(out) != 0 {
		t.Error("empty input")
	}
	// workers > len(in), workers == 0, workers == 1 all behave.
	for _, w := range []int{0, 1, 10} {
		out, err := ParMap(w, []int{7}, func(x int) (int, error) { return x + 1, nil })
		if err != nil || out[0] != 8 {
			t.Errorf("workers=%d: %v %v", w, out, err)
		}
	}
}

func TestParMapActuallyConcurrent(t *testing.T) {
	var inFlight, peak int32
	in := make([]int, 32)
	done := make(chan struct{})
	_, err := ParMap(4, in, func(int) (int, error) {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		// A tiny synchronization point to let workers overlap.
		select {
		case <-done:
		default:
		}
		atomic.AddInt32(&inFlight, -1)
		return 0, nil
	})
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	// With 4 workers over 32 jobs at least two should have
	// overlapped at some point on any multi-core runner; on a single
	// core this can legitimately be 1, so only sanity-check bounds.
	if peak < 1 || peak > 4 {
		t.Errorf("peak in-flight = %d", peak)
	}
}

// TestParallelSweepsMatchSequential: the parallel Figure 6 harness
// returns exactly the sequential rows.
func TestParallelSweepsMatchSequential(t *testing.T) {
	cfg := Configs()[0]
	seq, err := Fig6DWT(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig6DWTParallel(cfg, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
	seqM, err := Fig6MVM(cfg, 12, 20)
	if err != nil {
		t.Fatal(err)
	}
	parM, err := Fig6MVMParallel(cfg, 12, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqM {
		if seqM[i] != parM[i] {
			t.Fatalf("MVM row %d differs", i)
		}
	}
}

// TestFig5ParallelMatchesSequential: the chunked/fanned budget sweeps
// of Figure 5 return exactly the sequential rows, for several worker
// counts (including more workers than budgets).
func TestFig5ParallelMatchesSequential(t *testing.T) {
	cfg := Configs()[0]
	seqD, err := Fig5DWT(cfg, 32, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqM, err := Fig5MVM(cfg, 12, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 64} {
		parD, err := Fig5DWTParallel(cfg, 32, 5, nil, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(parD) != len(seqD) {
			t.Fatalf("workers=%d: DWT lengths differ: %d vs %d", w, len(parD), len(seqD))
		}
		for i := range seqD {
			if seqD[i] != parD[i] {
				t.Fatalf("workers=%d: DWT row %d differs: %+v vs %+v", w, i, seqD[i], parD[i])
			}
		}
		parM, err := Fig5MVMParallel(cfg, 12, 16, nil, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(parM) != len(seqM) {
			t.Fatalf("workers=%d: MVM lengths differ: %d vs %d", w, len(parM), len(seqM))
		}
		for i := range seqM {
			if seqM[i] != parM[i] {
				t.Fatalf("workers=%d: MVM row %d differs: %+v vs %+v", w, i, seqM[i], parM[i])
			}
		}
	}
}
