package exact

import (
	"errors"
	"math"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

func pair(wa, wb, wc cdag.Weight) *cdag.Graph {
	g := &cdag.Graph{}
	a := g.AddNode(wa, "a")
	b := g.AddNode(wb, "b")
	g.AddNode(wc, "c", a, b)
	return g
}

// TestPairOptimal: the optimal cost of a two-input/one-output graph
// is exactly the lower bound once feasible.
func TestPairOptimal(t *testing.T) {
	g := pair(2, 3, 4)
	res, err := Solve(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != core.LowerBound(g) {
		t.Errorf("cost = %d, want LB %d", res.Cost, core.LowerBound(g))
	}
	// The returned schedule must be valid and meet the cost.
	stats, err := core.Simulate(g, 9, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != res.Cost {
		t.Errorf("schedule cost %d != reported %d", stats.Cost, res.Cost)
	}
}

func TestInfeasible(t *testing.T) {
	g := pair(2, 3, 4)
	if _, err := Solve(g, 8); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if CostOrInf(g, 8) != math.MaxInt64 {
		t.Error("CostOrInf should be MaxInt64 when infeasible")
	}
	if CostOrInf(g, 9) != 9 {
		t.Errorf("CostOrInf(9) = %d", CostOrInf(g, 9))
	}
}

func TestTooLarge(t *testing.T) {
	g := &cdag.Graph{}
	prev := g.AddNode(1, "v")
	for i := 0; i < MaxNodes+1; i++ {
		prev = g.AddNode(1, "v", prev)
	}
	if _, err := Solve(g, 100); !errors.Is(err, ErrTooLarge) {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
}

// TestChainOptimal: a path graph costs w_leaf + w_root at any
// feasible budget — the exact solver must find it.
func TestChainOptimal(t *testing.T) {
	g := &cdag.Graph{}
	prev := g.AddNode(5, "leaf")
	for i := 0; i < 4; i++ {
		prev = g.AddNode(cdag.Weight(i+1), "n", prev)
	}
	minB := core.MinExistenceBudget(g)
	res, err := Solve(g, minB)
	if err != nil {
		t.Fatal(err)
	}
	if want := cdag.Weight(5 + 4); res.Cost != want {
		t.Errorf("chain cost = %d, want %d", res.Cost, want)
	}
}

// TestDiamondReuse: a value consumed twice should be computed once
// and kept when memory allows — the exact optimum exploits reuse.
func TestDiamondReuse(t *testing.T) {
	g := &cdag.Graph{}
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b", a)
	c := g.AddNode(1, "c", b)
	d := g.AddNode(1, "d", b)
	g.AddNode(1, "e", c, d)
	// With enough memory: load a once, compute b once, reuse for c
	// and d: cost = w_a + w_e = 2.
	res, err := Solve(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 {
		t.Errorf("diamond cost = %d, want 2", res.Cost)
	}
	// At budget 3 the reuse still works (b, c, d fit one at a time).
	res3, err := Solve(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cost < 2 {
		t.Errorf("budget 3 cost %d below LB", res3.Cost)
	}
}

// TestTightMemoryForcesSpills: shrinking the budget strictly
// increases the optimum on a graph with reuse pressure.
func TestTightMemoryForcesSpills(t *testing.T) {
	// Binary tree of height 2 with unit weights: budget 4 reaches the
	// LB (4+1 ... classic h+2 pebbles), budget 3 must respill.
	g := &cdag.Graph{}
	l := make([]cdag.NodeID, 4)
	for i := range l {
		l[i] = g.AddNode(1, "l")
	}
	m1 := g.AddNode(1, "m1", l[0], l[1])
	m2 := g.AddNode(1, "m2", l[2], l[3])
	g.AddNode(1, "r", m1, m2)
	at4, err := Solve(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	at3, err := Solve(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if at4.Cost != core.LowerBound(g) {
		t.Errorf("cost at 4 = %d, want LB %d", at4.Cost, core.LowerBound(g))
	}
	if at3.Cost <= at4.Cost {
		t.Errorf("tighter budget should cost more: %d vs %d", at3.Cost, at4.Cost)
	}
}

func TestMinimumBudget(t *testing.T) {
	g := &cdag.Graph{}
	l := make([]cdag.NodeID, 4)
	for i := range l {
		l[i] = g.AddNode(1, "l")
	}
	m1 := g.AddNode(1, "m1", l[0], l[1])
	m2 := g.AddNode(1, "m2", l[2], l[3])
	g.AddNode(1, "r", m1, m2)
	b, cost, err := MinimumBudget(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != 4 {
		t.Errorf("minimum budget = %d, want 4", b)
	}
	if cost != core.LowerBound(g) {
		t.Errorf("cost = %d, want LB", cost)
	}
}

// TestStatesExplored: the search reports its work, and more memory
// explores at least a different amount of state.
func TestStatesExplored(t *testing.T) {
	g := pair(1, 1, 1)
	res, err := Solve(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatesExplored <= 0 {
		t.Error("no states explored?")
	}
}

// TestScheduleReconstruction: the move list replays to the goal from
// the start for a multi-level graph.
func TestScheduleReconstruction(t *testing.T) {
	g := &cdag.Graph{}
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	c := g.AddNode(1, "c", a, b)
	g.AddNode(1, "d", c)
	res, err := Solve(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Simulate(g, 3, res.Schedule)
	if err != nil {
		t.Fatalf("reconstructed schedule invalid: %v", err)
	}
	if stats.Cost != res.Cost {
		t.Errorf("cost mismatch: %d vs %d", stats.Cost, res.Cost)
	}
}
