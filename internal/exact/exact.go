// Package exact computes provably optimal WRBPG schedules by searching
// the full game-state space with Dijkstra's algorithm.
//
// Each game state is the vector of node labels; moves are edges whose
// cost is the weighted I/O they incur (w_v for M1/M2, zero for M3/M4).
// The search starts from C_0 (sources blue) and stops at the first
// state satisfying the stopping condition, which by Dijkstra's
// invariant carries the minimum weighted schedule cost.
//
// The state space is exponential in |V|, so this package is only
// practical for small graphs (roughly |V| ≤ 14). Its purpose is to
// certify the polynomial-time dataflow-specific schedulers: property
// tests compare their costs against this ground truth on randomly
// weighted small instances.
package exact

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
)

// ErrTooLarge is returned when the graph exceeds MaxNodes.
var ErrTooLarge = errors.New("exact: graph too large for exhaustive search")

// ErrInfeasible is returned when no valid schedule exists under the
// budget (Proposition 2.3 violated).
var ErrInfeasible = errors.New("exact: no valid schedule exists under this budget")

// MaxNodes bounds the graph size accepted by Solve. 4^20 nominal
// states is far beyond reach; the practical reachable set is much
// smaller, but we still refuse clearly hopeless inputs.
const MaxNodes = 20

type stateKey string

func encode(labels []core.Label) stateKey {
	b := make([]byte, (len(labels)+3)/4)
	for i, l := range labels {
		b[i/4] |= byte(l) << uint((i%4)*2)
	}
	return stateKey(b)
}

type item struct {
	key   stateKey
	cost  cdag.Weight
	index int
}

type pq []*item

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].index = i; p[j].index = j }
func (p *pq) Push(x interface{}) { it := x.(*item); it.index = len(*p); *p = append(*p, it) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return it
}

type nodeInfo struct {
	prevKey  stateKey
	prevMove core.Move
	hasPrev  bool
}

// Result of an exact search.
type Result struct {
	// Cost is the optimal weighted schedule cost.
	Cost cdag.Weight
	// Schedule is one optimal schedule achieving Cost.
	Schedule core.Schedule
	// StatesExplored counts settled Dijkstra states, for ablation
	// benchmarks comparing exact search against the DP schedulers.
	StatesExplored int
}

// Solve finds a minimum weighted-cost WRBPG schedule for g under the
// budget, or an error if the graph is too large or infeasible.
func Solve(g *cdag.Graph, budget cdag.Weight) (*Result, error) {
	return SolveCtx(context.Background(), g, budget, guard.Limits{})
}

// SolveCtx is Solve under a cancellation context and resource limits:
// the search checks for cancellation at every settled state and charges
// each newly tracked state against lim.MaxStates, returning
// guard.ErrCanceled / guard.ErrDeadline / guard.ErrBudgetExceeded
// (wrapped) when aborted. Since the state space is exponential, callers
// running exact search outside tests should always bound it this way.
func SolveCtx(ctx context.Context, g *cdag.Graph, budget cdag.Weight, lim guard.Limits) (*Result, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	// Export the states-explored count for this solve (the exact search
	// is the one solver whose cost is measured in states, not memo
	// cells).
	defer func() { guard.CountersFor("cdag").Record(ck.TakeCounts()) }()
	if g.Len() > MaxNodes {
		return nil, ErrTooLarge
	}
	if !core.ScheduleExists(g, budget) {
		return nil, ErrInfeasible
	}

	n := g.Len()
	start := make([]core.Label, n)
	for _, v := range g.Sources() {
		start[v] = core.LabelBlue
	}
	startKey := encode(start)

	dist := map[stateKey]cdag.Weight{startKey: 0}
	prev := map[stateKey]nodeInfo{}
	open := &pq{}
	heap.Init(open)
	heap.Push(open, &item{key: startKey, cost: 0})
	settled := map[stateKey]bool{}
	explored := 0

	decode := func(k stateKey) []core.Label {
		labels := make([]core.Label, n)
		for i := range labels {
			labels[i] = core.Label((k[i/4] >> uint((i%4)*2)) & 3)
		}
		return labels
	}

	isGoal := func(labels []core.Label) bool {
		for v := 0; v < n; v++ {
			id := cdag.NodeID(v)
			if g.IsSink(id) && !labels[v].HasBlue() {
				return false
			}
		}
		return true
	}

	redWeight := func(labels []core.Label) cdag.Weight {
		var s cdag.Weight
		for v, l := range labels {
			if l.HasRed() {
				s += g.Weight(cdag.NodeID(v))
			}
		}
		return s
	}

	var goalKey stateKey
	found := false

	for open.Len() > 0 {
		if ck.Tick() != nil {
			break
		}
		cur := heap.Pop(open).(*item)
		if settled[cur.key] {
			continue
		}
		settled[cur.key] = true
		explored++
		labels := decode(cur.key)
		if isGoal(labels) {
			goalKey = cur.key
			found = true
			break
		}
		rw := redWeight(labels)
		for v := 0; v < n; v++ {
			id := cdag.NodeID(v)
			w := g.Weight(id)
			l := labels[v]
			try := func(m core.Move, next core.Label, cost cdag.Weight) {
				old := labels[v]
				labels[v] = next
				k := encode(labels)
				labels[v] = old
				nd := cur.cost + cost
				if d, ok := dist[k]; !ok || nd < d {
					// Charge only newly tracked states against the limit;
					// relaxations revisit states already paid for.
					if !ok && ck.AddStates(1) != nil {
						return
					}
					dist[k] = nd
					prev[k] = nodeInfo{prevKey: cur.key, prevMove: m, hasPrev: true}
					heap.Push(open, &item{key: k, cost: nd})
				}
			}
			switch l {
			case core.LabelBlue:
				if rw+w <= budget {
					try(core.Move{Kind: core.M1, Node: id}, core.LabelBoth, w)
				}
			case core.LabelRed:
				try(core.Move{Kind: core.M2, Node: id}, core.LabelBoth, w)
				try(core.Move{Kind: core.M4, Node: id}, core.LabelNone, 0)
			case core.LabelBoth:
				try(core.Move{Kind: core.M4, Node: id}, core.LabelBlue, 0)
			}
			// M3: compute v if it has no red pebble, is not a source,
			// and all parents are red.
			if !l.HasRed() && !g.IsSource(id) && rw+w <= budget {
				ok := true
				for _, p := range g.Parents(id) {
					if !labels[p].HasRed() {
						ok = false
						break
					}
				}
				if ok {
					next := core.LabelRed
					if l.HasBlue() {
						next = core.LabelBoth
					}
					try(core.Move{Kind: core.M3, Node: id}, next, 0)
				}
			}
		}
	}

	if err := ck.Err(); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	if !found {
		return nil, ErrInfeasible
	}

	// Reconstruct the move sequence by walking predecessors.
	var rev core.Schedule
	k := goalKey
	for k != startKey {
		info := prev[k]
		if !info.hasPrev {
			break
		}
		rev = append(rev, info.prevMove)
		k = info.prevKey
	}
	sched := make(core.Schedule, len(rev))
	for i := range rev {
		sched[i] = rev[len(rev)-1-i]
	}
	return &Result{Cost: dist[goalKey], Schedule: sched, StatesExplored: explored}, nil
}

// MinimumBudget returns the smallest budget (searching by the given
// step, starting at the existence bound) whose exact optimal cost
// equals the algorithmic lower bound — the exact counterpart of
// Definition 2.6 for small graphs. The second return is that cost.
func MinimumBudget(g *cdag.Graph, step cdag.Weight) (cdag.Weight, cdag.Weight, error) {
	lb := core.LowerBound(g)
	b := core.MinExistenceBudget(g)
	if step <= 0 {
		step = 1
	}
	// Round up to a multiple of step.
	if r := b % step; r != 0 {
		b += step - r
	}
	limit := g.TotalWeight() + step
	for ; b <= limit; b += step {
		res, err := Solve(g, b)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			return 0, 0, err
		}
		if res.Cost == lb {
			return b, res.Cost, nil
		}
	}
	return 0, 0, errors.New("exact: lower bound not attained up to total graph weight")
}

// CostOrInf returns the exact optimal cost, or math.MaxInt64 when no
// schedule exists — mirroring the ∞ entries of the paper's recurrences.
func CostOrInf(g *cdag.Graph, budget cdag.Weight) cdag.Weight {
	res, err := Solve(g, budget)
	if err != nil {
		return math.MaxInt64
	}
	return res.Cost
}
