package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// randomDAG builds a small random CDAG (not necessarily a tree):
// a couple of sources, then nodes with 1–2 random earlier parents,
// random weights in [1, maxW].
func randomDAG(rng *rand.Rand, extra int, maxW int64) *cdag.Graph {
	g := &cdag.Graph{}
	g.AddNode(cdag.Weight(1+rng.Int63n(maxW)), "s0")
	g.AddNode(cdag.Weight(1+rng.Int63n(maxW)), "s1")
	for i := 0; i < extra; i++ {
		n := g.Len()
		p1 := cdag.NodeID(rng.Intn(n))
		if rng.Intn(2) == 0 {
			p2 := cdag.NodeID(rng.Intn(n))
			if p2 != p1 {
				g.AddNode(cdag.Weight(1+rng.Int63n(maxW)), "n", p1, p2)
				continue
			}
		}
		g.AddNode(cdag.Weight(1+rng.Int63n(maxW)), "n", p1)
	}
	return g
}

// TestGreedyNeverBeatsExactOnRandomDAGs: the constructive scheduler
// of Proposition 2.3 is an upper bound on the true optimum for
// arbitrary CDAGs — including graphs with reuse, which neither the
// tree DPs nor the tiling schedulers cover.
func TestGreedyNeverBeatsExactOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(4), 2)
		if g.Validate() != nil {
			return true // isolated node; skip
		}
		b := core.MinExistenceBudget(g) + cdag.Weight(rng.Intn(4))
		res, err := Solve(g, b)
		if err != nil {
			return true
		}
		sched, err := baseline.Greedy(g, b)
		if err != nil {
			t.Logf("seed %d: greedy failed where exact succeeded: %v", seed, err)
			return false
		}
		stats, err := core.Simulate(g, b, sched)
		if err != nil {
			return false
		}
		if stats.Cost < res.Cost {
			t.Logf("seed %d: greedy %d beat exact %d", seed, stats.Cost, res.Cost)
			return false
		}
		return res.Cost >= core.LowerBound(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExactMonotoneOnRandomDAGs: the true optimum never increases
// with budget.
func TestExactMonotoneOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(3), 2)
		if g.Validate() != nil {
			return true
		}
		b := core.MinExistenceBudget(g)
		prev, err := Solve(g, b)
		if err != nil {
			return true
		}
		for step := 1; step <= 3; step++ {
			cur, err := Solve(g, b+cdag.Weight(step))
			if err != nil {
				return false
			}
			if cur.Cost > prev.Cost {
				t.Logf("seed %d: cost rose from %d to %d", seed, prev.Cost, cur.Cost)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCompactPreservesExactCost: compacting an exact optimal schedule
// never changes its cost (there is nothing to strip).
func TestCompactPreservesExactCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(3), 2)
		if g.Validate() != nil {
			return true
		}
		b := core.MinExistenceBudget(g) + 2
		res, err := Solve(g, b)
		if err != nil {
			return true
		}
		out := core.Compact(g, res.Schedule)
		stats, err := core.Simulate(g, b, out)
		return err == nil && stats.Cost == res.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
