package mvm

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/wcfg"
)

func sessionGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(12, 16, wcfg.Equal(8))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSessionMatchesOneShot: memoized answers across an out-of-order,
// repeating budget list must be identical to independent Search calls,
// including the infeasible region below the tiling minimum.
func TestSessionMatchesOneShot(t *testing.T) {
	g := sessionGraph(t)
	se := NewSession(g)
	ctx := context.Background()
	min := g.TilingMinBudget()
	budgets := []cdag.Weight{min + 200, min, min + 64, min - 1, min + 200, min + 16}
	for _, b := range budgets {
		got, err := se.CostCtx(ctx, guard.Limits{}, b)
		if err != nil {
			t.Fatalf("CostCtx(%d): %v", b, err)
		}
		if want := g.MinCost(b); got != want {
			t.Errorf("CostCtx(%d) = %d, MinCost = %d", b, got, want)
		}
		tc, cost, serr := se.SearchCtx(ctx, guard.Limits{}, b)
		wtc, wcost, werr := g.Search(b)
		if (serr == nil) != (werr == nil) {
			t.Fatalf("SearchCtx(%d) err %v, Search err %v", b, serr, werr)
		}
		if serr == nil && (!reflect.DeepEqual(tc, wtc) || cost != wcost) {
			t.Errorf("SearchCtx(%d) = (%+v, %d), Search = (%+v, %d)", b, tc, cost, wtc, wcost)
		}
	}
}

// TestSessionWarmCostZeroAlloc: a repeated budget query is a map probe.
func TestSessionWarmCostZeroAlloc(t *testing.T) {
	g := sessionGraph(t)
	se := NewSession(g)
	ctx := context.Background()
	b := g.TilingMinBudget() + 64
	if _, err := se.CostCtx(ctx, guard.Limits{}, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		se.CostCtx(ctx, guard.Limits{}, b) //nolint:errcheck
	})
	if allocs != 0 {
		t.Errorf("warm CostCtx allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSessionCanceledSweepNotMemoized forces the parallel candidate
// sweep with a dead context: the abort must surface as an error, not be
// memoized as "infeasible", and the session must then answer the same
// budget correctly.
func TestSessionCanceledSweepNotMemoized(t *testing.T) {
	old := searchParallelThreshold
	defer func() { searchParallelThreshold = old }()
	searchParallelThreshold = 1

	g := sessionGraph(t)
	se := NewSession(g)
	b := g.TilingMinBudget() + 64
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := se.CostCtx(canceled, guard.Limits{}, b); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled sweep: got %v, want ErrCanceled", err)
	}
	got, err := se.CostCtx(context.Background(), guard.Limits{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.MinCost(b); got != want {
		t.Errorf("after cancellation, CostCtx(%d) = %d, want %d", b, got, want)
	}
}
