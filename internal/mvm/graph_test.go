package mvm

import (
	"testing"

	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

func buildOrFatal(t *testing.T, m, n int, cfg wcfg.Config) *Graph {
	t.Helper()
	g, err := Build(m, n, cfg)
	if err != nil {
		t.Fatalf("Build(%d,%d): %v", m, n, err)
	}
	return g
}

func TestBuildRejectsBadParams(t *testing.T) {
	eq := wcfg.Equal(16)
	for _, c := range []struct{ m, n int }{{1, 2}, {0, 2}, {2, 0}, {-3, 4}} {
		if _, err := Build(c.m, c.n, eq); err == nil {
			t.Errorf("Build(%d,%d) should fail", c.m, c.n)
		}
	}
}

// TestMVM32Structure matches Figure 4a: MVM(3,2) has layers of size
// 8, 6, 3 and 18 edges.
func TestMVM32Structure(t *testing.T) {
	g := buildOrFatal(t, 3, 2, wcfg.Equal(16))
	sizes := g.LayerSizes()
	want := []int{8, 6, 3}
	if len(sizes) != len(want) {
		t.Fatalf("layer sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("layer sizes = %v, want %v", sizes, want)
		}
	}
	if got := g.G.Len(); got != 17 {
		t.Errorf("nodes = %d, want 17", got)
	}
	if got := g.G.EdgeCount(); got != 18 {
		t.Errorf("edges = %d, want 18", got)
	}
	// x_1 feeds the three column-1 products; a_{2,1} feeds p[2,1].
	for r := 1; r <= 3; r++ {
		if !g.G.HasEdge(g.X[0], g.Prod[r-1][0]) {
			t.Errorf("missing edge x1 → p[%d,1]", r)
		}
	}
	if !g.G.HasEdge(g.A[1][0], g.Prod[1][0]) {
		t.Error("missing edge a[2,1] → p[2,1]")
	}
	// Rule 2: column-1 products feed the accumulators.
	for r := 1; r <= 3; r++ {
		if !g.G.HasEdge(g.Prod[r-1][0], g.Acc[r-1][0]) {
			t.Errorf("missing edge p[%d,1] → s[%d,2]", r, r)
		}
		if !g.G.HasEdge(g.Prod[r-1][1], g.Acc[r-1][0]) {
			t.Errorf("missing edge p[%d,2] → s[%d,2]", r, r)
		}
	}
	// Outputs are the final accumulators.
	sinks := g.G.Sinks()
	if len(sinks) != 3 {
		t.Fatalf("sinks = %v", sinks)
	}
	for r := 1; r <= 3; r++ {
		if g.Output(r) != sinks[r-1] {
			t.Errorf("output %d mismatch", r)
		}
	}
}

// TestMVM23Structure matches Figure 4b: MVM(2,3) has layers
// 9, 6, 2, 2.
func TestMVM23Structure(t *testing.T) {
	g := buildOrFatal(t, 2, 3, wcfg.Equal(16))
	sizes := g.LayerSizes()
	want := []int{9, 6, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("layer sizes = %v, want %v", sizes, want)
		}
	}
	// Accumulator chain: s[r,2] → s[r,3].
	for r := 1; r <= 2; r++ {
		if !g.G.HasEdge(g.Acc[r-1][0], g.Acc[r-1][1]) {
			t.Errorf("missing chain edge for row %d", r)
		}
	}
}

func TestMVMN1ProductsAreOutputs(t *testing.T) {
	g := buildOrFatal(t, 3, 1, wcfg.Equal(16))
	if len(g.Acc) != 0 {
		t.Errorf("n=1 should have no accumulators")
	}
	sinks := g.G.Sinks()
	if len(sinks) != 3 {
		t.Fatalf("sinks = %v", sinks)
	}
	for r := 1; r <= 3; r++ {
		if g.Output(r) != g.Prod[r-1][0] {
			t.Errorf("output of row %d should be its product", r)
		}
	}
}

func TestLowerBoundAnchors(t *testing.T) {
	// Fig. 5 anchors: Equal MVM(96,120) LB = (96·120+120+96)·16.
	eq := buildOrFatal(t, 96, 120, wcfg.Equal(16))
	if lb := core.LowerBound(eq.G); lb != 187776 {
		t.Errorf("Equal LB = %d, want 187776", lb)
	}
	da := buildOrFatal(t, 96, 120, wcfg.DoubleAccumulator(16))
	if lb := core.LowerBound(da.G); lb != 189312 {
		t.Errorf("DA LB = %d, want 189312", lb)
	}
}

func TestHeadAndOutput(t *testing.T) {
	g := buildOrFatal(t, 2, 3, wcfg.Equal(16))
	if g.Head(1, 1) != g.Prod[0][0] {
		t.Error("Head(1,1) should be the first product")
	}
	if g.Head(1, 2) != g.Acc[0][0] || g.Head(1, 3) != g.Acc[0][1] {
		t.Error("Head chain broken")
	}
	if g.Output(1) != g.Acc[0][1] {
		t.Error("Output(1) should be the last accumulator")
	}
}

func TestWeightsByClass(t *testing.T) {
	g := buildOrFatal(t, 2, 2, wcfg.DoubleAccumulator(16))
	if w := g.G.Weight(g.X[0]); w != 16 {
		t.Errorf("vector weight = %d", w)
	}
	if w := g.G.Weight(g.A[0][0]); w != 16 {
		t.Errorf("matrix weight = %d", w)
	}
	if w := g.G.Weight(g.Prod[0][0]); w != 32 {
		t.Errorf("product weight = %d", w)
	}
	if w := g.G.Weight(g.Acc[0][0]); w != 32 {
		t.Errorf("accumulator weight = %d", w)
	}
}

func TestNodeCountLarge(t *testing.T) {
	g := buildOrFatal(t, 96, 120, wcfg.Equal(16))
	// mn+n inputs, mn products, m(n−1) accumulators.
	want := 96*120 + 120 + 96*120 + 96*119
	if g.G.Len() != want {
		t.Errorf("nodes = %d, want %d", g.G.Len(), want)
	}
}
