package mvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/wcfg"
)

// TestTileScheduleValidAndPredicted is the central tiling contract:
// generated schedules pass the simulator, and both the closed-form
// cost and peak predictions match the simulation exactly.
func TestTileScheduleValidAndPredicted(t *testing.T) {
	configs := []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)}
	dims := []struct{ m, n int }{{2, 1}, {2, 2}, {3, 2}, {2, 3}, {4, 4}, {5, 3}, {8, 6}}
	for _, cfg := range configs {
		for _, d := range dims {
			g := buildOrFatal(t, d.m, d.n, cfg)
			for h := 1; h <= d.m; h++ {
				for vc := 0; vc <= d.n; vc++ {
					tc := TileConfig{Height: h, ResidentVector: vc}
					sched, err := g.TileSchedule(tc)
					if err != nil {
						t.Fatalf("%s MVM(%d,%d) %v: %v", cfg.Name, d.m, d.n, tc, err)
					}
					peak := g.PredictPeak(tc)
					stats, err := core.Simulate(g.G, peak, sched)
					if err != nil {
						t.Fatalf("%s MVM(%d,%d) %v: simulate at predicted peak: %v", cfg.Name, d.m, d.n, tc, err)
					}
					if stats.PeakRedWeight != peak {
						t.Errorf("%s MVM(%d,%d) %v: simulated peak %d != predicted %d", cfg.Name, d.m, d.n, tc, stats.PeakRedWeight, peak)
					}
					if want := g.PredictCost(tc); stats.Cost != want {
						t.Errorf("%s MVM(%d,%d) %v: simulated cost %d != predicted %d", cfg.Name, d.m, d.n, tc, stats.Cost, want)
					}
				}
			}
		}
	}
}

func TestTileScheduleValidLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation")
	}
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		g := buildOrFatal(t, 96, 120, cfg)
		for _, tc := range []TileConfig{
			{Height: 96}, {Height: 1, ResidentVector: 120},
			{Height: 32, ResidentVector: 10}, {Height: 1},
		} {
			sched, err := g.TileSchedule(tc)
			if err != nil {
				t.Fatal(err)
			}
			peak := g.PredictPeak(tc)
			stats, err := core.Simulate(g.G, peak, sched)
			if err != nil {
				t.Fatalf("%s %v: %v", cfg.Name, tc, err)
			}
			if stats.Cost != g.PredictCost(tc) || stats.PeakRedWeight != peak {
				t.Errorf("%s %v: cost %d/%d peak %d/%d", cfg.Name, tc,
					stats.Cost, g.PredictCost(tc), stats.PeakRedWeight, peak)
			}
		}
	}
}

// TestTable1MVMAnchors reproduces the tiling rows of Table 1:
// 99 words (Equal) and 126 words (DA) for MVM(96,120).
func TestTable1MVMAnchors(t *testing.T) {
	cases := []struct {
		cfg   wcfg.Config
		words int
		bits  cdag.Weight
	}{
		{wcfg.Equal(16), 99, 1584},
		{wcfg.DoubleAccumulator(16), 126, 2016},
	}
	for _, c := range cases {
		g := buildOrFatal(t, 96, 120, c.cfg)
		got := g.MinMemory()
		if got != c.bits {
			t.Errorf("%s MVM(96,120) MinMemory = %d bits, want %d (%d words)", c.cfg.Name, got, c.bits, c.words)
		}
		// The winning strategy flips between configurations:
		// accumulator-priority for Equal, vector-priority for DA.
		acc := g.PredictPeak(TileConfig{Height: 96})
		vec := g.PredictPeak(TileConfig{Height: 1, ResidentVector: 120})
		if c.cfg.NodeWords == 1 && acc >= vec {
			t.Error("Equal: accumulator-priority should win")
		}
		if c.cfg.NodeWords == 2 && vec >= acc {
			t.Error("DA: vector-priority should win")
		}
	}
}

// TestCostAtMinMemoryIsLB: at MinMemory the searched cost equals the
// algorithmic lower bound; one word below it does not.
func TestCostAtMinMemoryIsLB(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range []struct{ m, n int }{{96, 120}, {8, 5}, {5, 8}, {96, 10}} {
			g := buildOrFatal(t, d.m, d.n, cfg)
			b := g.MinMemory()
			lb := core.LowerBound(g.G)
			if got := g.MinCost(b); got != lb {
				t.Errorf("%s MVM(%d,%d): cost at MinMemory = %d, want LB %d", cfg.Name, d.m, d.n, got, lb)
			}
			if got := g.MinCost(b - 16); got == lb {
				t.Errorf("%s MVM(%d,%d): LB already met below MinMemory", cfg.Name, d.m, d.n)
			}
		}
	}
}

// TestSearchMonotone: more budget never increases the searched cost.
func TestSearchMonotone(t *testing.T) {
	g := buildOrFatal(t, 12, 10, wcfg.DoubleAccumulator(16))
	prev := Inf
	for b := cdag.Weight(64); b <= 1600; b += 16 {
		cur := g.MinCost(b)
		if cur > prev {
			t.Fatalf("cost not monotone at %d: %d > %d", b, cur, prev)
		}
		if cur < Inf {
			prev = cur
		}
	}
}

// TestSearchRespectsBudget: the chosen configuration's peak fits.
func TestSearchRespectsBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(12), 1+rng.Intn(12)
		cfgs := []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)}
		g, err := Build(m, n, cfgs[rng.Intn(2)])
		if err != nil {
			return false
		}
		b := g.TilingMinBudget() + cdag.Weight(rng.Intn(40))*16
		tc, cost, err := g.Search(b)
		if err != nil {
			return false
		}
		return g.PredictPeak(tc) <= b && cost == g.PredictCost(tc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSearchFailsBelowMinimum: budgets under the single-row peak have
// no tiling schedule.
func TestSearchFailsBelowMinimum(t *testing.T) {
	g := buildOrFatal(t, 4, 4, wcfg.Equal(16))
	if _, _, err := g.Search(g.TilingMinBudget() - 1); err == nil {
		t.Error("expected error below tiling minimum")
	}
	if got := g.MinCost(g.TilingMinBudget() - 1); got < Inf {
		t.Errorf("MinCost below minimum = %d, want Inf", got)
	}
}

// TestTilingNearExactOnSmall: on tiny MVMs the tiling scheduler
// matches the exhaustive optimum at generous budgets (both reach the
// algorithmic lower bound) and stays within the vector-reload
// overhead at the tightest tiling budget.
func TestTilingNearExactOnSmall(t *testing.T) {
	g := buildOrFatal(t, 2, 2, wcfg.Equal(1))
	big := g.G.TotalWeight()
	res, err := exact.Solve(g.G, big)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinCost(big); got != res.Cost {
		t.Errorf("tiling at full budget = %d, exact = %d", got, res.Cost)
	}
	// Tight budget: exact may exploit moves outside the tiling space,
	// so tiling is only an upper bound.
	tight := g.TilingMinBudget()
	resT, err := exact.Solve(g.G, tight)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinCost(tight); got < resT.Cost {
		t.Errorf("tiling beat the exact optimum: %d < %d", got, resT.Cost)
	}
}

// TestCandidates: heights cover every distinct tile count and stay
// within range.
func TestCandidates(t *testing.T) {
	g := buildOrFatal(t, 96, 120, wcfg.Equal(16))
	hs := g.Candidates()
	seen := map[int]bool{}
	for _, h := range hs {
		if h < 1 || h > 96 {
			t.Fatalf("candidate %d out of range", h)
		}
		q := (96 + h - 1) / h
		seen[q] = true
	}
	for q := 1; q <= 96; q++ {
		hMin := (96 + q - 1) / q
		qq := (96 + hMin - 1) / hMin
		if !seen[qq] {
			t.Errorf("tile count %d (via h=%d) not covered", qq, hMin)
		}
	}
}

// TestFig5MVMEndpoints: the tiling curve's endpoints match the
// closed-form worst case (h=1, vc=0) and the lower bound.
func TestFig5MVMEndpoints(t *testing.T) {
	g := buildOrFatal(t, 96, 120, wcfg.Equal(16))
	worst := g.MinCost(g.TilingMinBudget())
	if want := cdag.Weight(370176); worst != want {
		t.Errorf("Equal MVM(96,120) worst-case tiling cost = %d, want %d", worst, want)
	}
	best := g.MinCost(g.MinMemory())
	if best != core.LowerBound(g.G) {
		t.Errorf("best tiling cost %d != LB %d", best, core.LowerBound(g.G))
	}
}

func TestPredictPeakMonotoneInHeight(t *testing.T) {
	g := buildOrFatal(t, 16, 8, wcfg.DoubleAccumulator(16))
	prev := cdag.Weight(0)
	for h := 1; h <= 16; h++ {
		p := g.PredictPeak(TileConfig{Height: h})
		if p < prev {
			t.Fatalf("peak decreased at h=%d", h)
		}
		prev = p
	}
}

func TestTileConfigValidation(t *testing.T) {
	g := buildOrFatal(t, 4, 4, wcfg.Equal(16))
	for _, tc := range []TileConfig{{0, 0}, {5, 0}, {1, -1}, {1, 5}} {
		if _, err := g.TileSchedule(tc); err == nil {
			t.Errorf("TileSchedule(%v) should fail", tc)
		}
	}
	if s := (TileConfig{Height: 2, ResidentVector: 3}).String(); s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkTileScheduleMVM96x120(b *testing.B) {
	g, err := Build(96, 120, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := g.TileSchedule(TileConfig{Height: 96}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchMVM96x120(b *testing.B) {
	g, err := Build(96, 120, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Search(1584); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSearchParallelPathMatchesSerial: forcing the chunked parallel
// search (by dropping the threshold) returns exactly the serial
// configuration at every budget, including tie cases.
func TestSearchParallelPathMatchesSerial(t *testing.T) {
	g, err := Build(96, 120, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	old := searchParallelThreshold
	defer func() { searchParallelThreshold = old }()
	lo := g.TilingMinBudget()
	hi := g.MinMemory() + 64
	for b := lo; b <= hi; b += 16 {
		searchParallelThreshold = 1 << 30
		tcS, costS, errS := g.Search(b)
		searchParallelThreshold = 1
		tcP, costP, errP := g.Search(b)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("b=%d: error mismatch: %v vs %v", b, errS, errP)
		}
		if errS != nil {
			continue
		}
		if tcS != tcP || costS != costP {
			t.Fatalf("b=%d: serial %v cost %d, parallel %v cost %d", b, tcS, costS, tcP, costP)
		}
	}
}

// TestCandidatesDistinctAndComplete: adjacent-dedup yields every
// distinct ceil-division height exactly once, in decreasing order.
func TestCandidatesDistinctAndComplete(t *testing.T) {
	for _, m := range []int{2, 7, 96, 97} {
		g, err := Build(m, 3, wcfg.Equal(16))
		if err != nil {
			t.Fatal(err)
		}
		hs := g.Candidates()
		want := map[int]bool{}
		for q := 1; q <= m; q++ {
			want[(m+q-1)/q] = true
		}
		if len(hs) != len(want) {
			t.Fatalf("m=%d: %d candidates, want %d distinct", m, len(hs), len(want))
		}
		for i, h := range hs {
			if !want[h] {
				t.Fatalf("m=%d: unexpected height %d", m, h)
			}
			if i > 0 && hs[i-1] <= h {
				t.Fatalf("m=%d: candidates not strictly decreasing: %v", m, hs)
			}
		}
	}
}

func BenchmarkMinMemoryMVM96x120(b *testing.B) {
	g, err := Build(96, 120, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.MinMemory()
	}
}
