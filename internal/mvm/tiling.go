package mvm

import (
	"context"
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// Inf is the sentinel cost of an infeasible configuration.
const Inf cdag.Weight = math.MaxInt64 / 4

// TileConfig parameterizes the tiling scheduler of Section 4.3.
//
// Height is the tile height h: the number of output rows whose
// partial sums stay resident in fast memory while the tile streams
// across the matrix columns (the "accumulators simultaneously in fast
// memory"). ResidentVector is the number of leading vector entries
// kept resident across all tiles; the remaining n−ResidentVector
// entries are reloaded once per tile. The tile width is one column,
// the shape the paper finds best in most cases.
type TileConfig struct {
	Height         int
	ResidentVector int
}

func (tc TileConfig) String() string {
	return fmt.Sprintf("tile{h=%d, residentVec=%d}", tc.Height, tc.ResidentVector)
}

// validate clamps and checks a configuration against the graph.
func (g *Graph) validate(tc TileConfig) (TileConfig, error) {
	if tc.Height < 1 || tc.Height > g.M {
		return tc, fmt.Errorf("mvm: tile height %d out of range [1,%d]", tc.Height, g.M)
	}
	if tc.ResidentVector < 0 || tc.ResidentVector > g.N {
		return tc, fmt.Errorf("mvm: resident vector %d out of range [0,%d]", tc.ResidentVector, g.N)
	}
	return tc, nil
}

// TileSchedule generates the full WRBPG schedule for the
// configuration. The schedule is budget-independent; its peak red
// weight is PredictPeak(tc) and its cost PredictCost(tc), both
// verified against core.Simulate in the package tests.
//
// Per tile (block of Height rows), the schedule streams columns
// left to right. A transient column's x is loaded at the top of the
// column and dropped right after its last product in the tile, so it
// never overlaps the final row's accumulation. Each matrix entry is
// loaded exactly once overall; each output is stored exactly once —
// the property that separates the tiling scheduler from IOOpt's
// read-and-write-every-output strategy (Section 5.2).
func (g *Graph) TileSchedule(tc TileConfig) (core.Schedule, error) {
	tc, err := g.validate(tc)
	if err != nil {
		return nil, err
	}
	var s core.Schedule
	mv := func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	}
	// Resident vector prefix, loaded once.
	for c := 1; c <= tc.ResidentVector; c++ {
		mv(core.M1, g.X[c-1])
	}
	for lo := 1; lo <= g.M; lo += tc.Height {
		hi := lo + tc.Height - 1
		if hi > g.M {
			hi = g.M
		}
		for c := 1; c <= g.N; c++ {
			transient := c > tc.ResidentVector
			if transient {
				mv(core.M1, g.X[c-1])
			}
			for r := lo; r <= hi; r++ {
				mv(core.M1, g.A[r-1][c-1])
				mv(core.M3, g.Prod[r-1][c-1])
				mv(core.M4, g.A[r-1][c-1])
				if transient && r == hi {
					// Last use of x_c within this tile.
					mv(core.M4, g.X[c-1])
				}
				if c >= 2 {
					mv(core.M3, g.Acc[r-1][c-2])
					mv(core.M4, g.Prod[r-1][c-1])
					mv(core.M4, g.Head(r, c-1))
				} else if g.N == 1 {
					// Products are the outputs; store immediately so
					// no head accumulates.
					mv(core.M2, g.Prod[r-1][0])
					mv(core.M4, g.Prod[r-1][0])
				}
			}
		}
		if g.N >= 2 {
			for r := lo; r <= hi; r++ {
				out := g.Output(r)
				mv(core.M2, out)
				mv(core.M4, out)
			}
		}
	}
	for c := 1; c <= tc.ResidentVector; c++ {
		mv(core.M4, g.X[c-1])
	}
	return s, nil
}

// Tiles returns ⌈m/h⌉, the number of tiles (row blocks).
func (g *Graph) Tiles(tc TileConfig) int {
	return (g.M + tc.Height - 1) / tc.Height
}

// PredictCost returns the weighted I/O of TileSchedule(tc) in closed
// form: the algorithmic lower bound plus one reload of every
// non-resident vector entry per additional tile.
func (g *Graph) PredictCost(tc TileConfig) cdag.Weight {
	wi := g.Cfg.Input()
	extra := cdag.Weight(g.Tiles(tc)-1) * cdag.Weight(g.N-tc.ResidentVector) * wi
	return g.lb + extra
}

// PredictPeak returns the peak red weight of TileSchedule(tc) in
// closed form (bits). The three candidate peaks are: a product
// computation with the tile's heads, the matrix entry and the column
// x resident; an accumulation of a non-final row with the transient x
// still resident; and an accumulation of the final row after the
// transient x has been dropped.
func (g *Graph) PredictPeak(tc TileConfig) cdag.Weight {
	wi, wn := g.Cfg.Input(), g.Cfg.Node()
	resident := cdag.Weight(tc.ResidentVector) * wi
	if g.N == 1 {
		// x + a + product; resident x (vc=1) replaces the transient x.
		if tc.ResidentVector == 1 {
			return wi + wi + wn
		}
		return 2*wi + wn
	}
	h := cdag.Weight(tc.Height)
	if int(h) > g.M {
		h = cdag.Weight(g.M)
	}
	var xExtra cdag.Weight
	if tc.ResidentVector < g.N {
		xExtra = wi
	}
	p1 := (h+1)*wn + wi + xExtra
	p3 := (h + 2) * wn
	peak := p1
	if tc.Height >= 2 {
		if p2 := (h+2)*wn + xExtra; p2 > peak {
			peak = p2
		}
	}
	if p3 > peak {
		peak = p3
	}
	return resident + peak
}

// Candidates returns the tile heights worth searching: for each
// distinct tile count q = ⌈m/h⌉ the smallest h achieving it, since
// cost depends on h only through q while peak grows with h. The set
// depends only on M, so Build computes it once; Candidates returns a
// copy (Search reads the cached slice directly and allocates nothing).
func (g *Graph) Candidates() []int {
	cand := g.cand
	if cand == nil {
		cand = g.candidates()
	}
	out := make([]int, len(cand))
	copy(out, cand)
	return out
}

// candidates enumerates the distinct heights. As q grows the height
// ⌈m/q⌉ is non-increasing, so duplicates are always adjacent and a
// single previous-value check replaces the former seen-map.
func (g *Graph) candidates() []int {
	out := make([]int, 0, 2*isqrt(g.M))
	prev := -1
	for q := 1; q <= g.M; q++ {
		h := (g.M + q - 1) / q
		if h != prev {
			out = append(out, h)
			prev = h
		}
	}
	return out
}

// isqrt returns ⌊√n⌋; Candidates yields at most ~2√m distinct heights.
func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// searchParallelThreshold is the candidate count above which Search
// fans the height axis out across the par worker pool. Package tests
// lower it to force the parallel path on small graphs.
var searchParallelThreshold = 64

// searchResult is one candidate height's best configuration.
type searchResult struct {
	tc   TileConfig
	cost cdag.Weight
	peak cdag.Weight
}

// searchHeight evaluates the two interesting resident-vector choices
// for one candidate height: a fully resident vector, and the largest
// vc < n the leftover budget allows (peak is monotone in vc, cost
// strictly decreases with vc, so intermediate values never win).
// PredictPeak is evaluated exactly once per configuration.
func (g *Graph) searchHeight(h int, budget cdag.Weight) searchResult {
	wi := g.Cfg.Input()
	best := searchResult{cost: Inf, peak: Inf}
	for _, full := range []bool{true, false} {
		tc := TileConfig{Height: h}
		if full {
			tc.ResidentVector = g.N
		} else {
			base := g.PredictPeak(TileConfig{Height: h})
			if base > budget {
				continue
			}
			vc := int((budget - base) / wi)
			if vc > g.N-1 {
				vc = g.N - 1
			}
			tc.ResidentVector = vc
		}
		peak := g.PredictPeak(tc)
		if peak > budget {
			continue
		}
		cost := g.PredictCost(tc)
		if cost < best.cost || (cost == best.cost && peak < best.peak) {
			best = searchResult{tc: tc, cost: cost, peak: peak}
		}
	}
	return best
}

// Search returns the minimum-cost tile configuration whose peak fits
// the budget, or an error when no configuration fits. For each
// candidate height it gives any leftover budget to the resident
// vector, which strictly reduces cost. Large candidate sets are
// fanned out across the par worker pool; ties between heights resolve
// to the earlier (larger-height) candidate in both paths, so the
// parallel search returns exactly the serial configuration.
func (g *Graph) Search(budget cdag.Weight) (TileConfig, cdag.Weight, error) {
	return g.sharedSearch(nil, budget)
}

// SearchCtx is Search under a cancellation context and resource
// limits: the height sweep checks for cancellation per candidate and
// the parallel fan-out stops dispatching chunks once the context dies,
// returning guard.ErrCanceled / guard.ErrDeadline (wrapped).
func (g *Graph) SearchCtx(ctx context.Context, lim guard.Limits, budget cdag.Weight) (TileConfig, cdag.Weight, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	defer func() { guard.CountersFor("mvm").Record(ck.TakeCounts()) }()
	tc, cost, err := g.sharedSearch(ck, budget)
	if cerr := ck.Err(); cerr != nil {
		return TileConfig{}, 0, fmt.Errorf("mvm: %w", cerr)
	}
	return tc, cost, err
}

// sharedSearch implements Search for an optional guard. ck == nil is
// the plain Search hot path and must stay allocation-free (the
// candidate heights are cached on the graph); every guard access below
// is nil-safe.
func (g *Graph) sharedSearch(ck *guard.Checker, budget cdag.Weight) (TileConfig, cdag.Weight, error) {
	heights := g.cand
	if heights == nil {
		heights = g.candidates() // hand-constructed Graph (tests)
	}
	best := searchResult{cost: Inf, peak: Inf}
	if len(heights) >= searchParallelThreshold {
		chunks := par.Chunks(len(heights), 0)
		parts, err := par.MapCtx(ck.Context(), 0, chunks, func(c [2]int) (searchResult, error) {
			b := searchResult{cost: Inf, peak: Inf}
			for _, h := range heights[c[0]:c[1]] {
				if r := g.searchHeight(h, budget); r.cost < b.cost || (r.cost == b.cost && r.peak < b.peak) {
					b = r
				}
			}
			return b, nil
		})
		if err != nil {
			return TileConfig{}, 0, fmt.Errorf("mvm: search aborted: %w", err)
		}
		for _, r := range parts {
			if r.cost < best.cost || (r.cost == best.cost && r.peak < best.peak) {
				best = r
			}
		}
	} else {
		for _, h := range heights {
			if ck != nil && ck.Tick() != nil {
				return TileConfig{}, 0, fmt.Errorf("mvm: search aborted: %w", ck.Err())
			}
			if r := g.searchHeight(h, budget); r.cost < best.cost || (r.cost == best.cost && r.peak < best.peak) {
				best = r
			}
		}
	}
	if best.cost >= Inf {
		return TileConfig{}, Inf, fmt.Errorf("mvm: no tile configuration fits budget %d (tiling minimum %d): %w", budget, g.TilingMinBudget(), guard.ErrOptimalInfeasible)
	}
	return best.tc, best.cost, nil
}

// MinCost returns the best tiling cost under the budget, or Inf when
// no configuration fits.
func (g *Graph) MinCost(budget cdag.Weight) cdag.Weight {
	_, cost, err := g.Search(budget)
	if err != nil {
		return Inf
	}
	return cost
}

// TilingMinBudget returns the smallest budget any tile configuration
// fits in: a single row with no resident vector.
func (g *Graph) TilingMinBudget() cdag.Weight {
	return g.PredictPeak(TileConfig{Height: 1})
}

// MinMemory returns the minimum fast memory size of Definition 2.6
// under the tiling scheduler: the smallest budget whose best tiling
// cost equals the algorithmic lower bound. The lower bound is reached
// exactly when a configuration with one tile (h = m) or a fully
// resident vector (vc = n) fits, so the answer is the smaller of
// those two peaks.
func (g *Graph) MinMemory() cdag.Weight {
	a := g.PredictPeak(TileConfig{Height: g.M})
	b := g.PredictPeak(TileConfig{Height: 1, ResidentVector: g.N})
	if b < a {
		return b
	}
	return a
}
