package mvm

import (
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// Inf is the sentinel cost of an infeasible configuration.
const Inf cdag.Weight = math.MaxInt64 / 4

// TileConfig parameterizes the tiling scheduler of Section 4.3.
//
// Height is the tile height h: the number of output rows whose
// partial sums stay resident in fast memory while the tile streams
// across the matrix columns (the "accumulators simultaneously in fast
// memory"). ResidentVector is the number of leading vector entries
// kept resident across all tiles; the remaining n−ResidentVector
// entries are reloaded once per tile. The tile width is one column,
// the shape the paper finds best in most cases.
type TileConfig struct {
	Height         int
	ResidentVector int
}

func (tc TileConfig) String() string {
	return fmt.Sprintf("tile{h=%d, residentVec=%d}", tc.Height, tc.ResidentVector)
}

// validate clamps and checks a configuration against the graph.
func (g *Graph) validate(tc TileConfig) (TileConfig, error) {
	if tc.Height < 1 || tc.Height > g.M {
		return tc, fmt.Errorf("mvm: tile height %d out of range [1,%d]", tc.Height, g.M)
	}
	if tc.ResidentVector < 0 || tc.ResidentVector > g.N {
		return tc, fmt.Errorf("mvm: resident vector %d out of range [0,%d]", tc.ResidentVector, g.N)
	}
	return tc, nil
}

// TileSchedule generates the full WRBPG schedule for the
// configuration. The schedule is budget-independent; its peak red
// weight is PredictPeak(tc) and its cost PredictCost(tc), both
// verified against core.Simulate in the package tests.
//
// Per tile (block of Height rows), the schedule streams columns
// left to right. A transient column's x is loaded at the top of the
// column and dropped right after its last product in the tile, so it
// never overlaps the final row's accumulation. Each matrix entry is
// loaded exactly once overall; each output is stored exactly once —
// the property that separates the tiling scheduler from IOOpt's
// read-and-write-every-output strategy (Section 5.2).
func (g *Graph) TileSchedule(tc TileConfig) (core.Schedule, error) {
	tc, err := g.validate(tc)
	if err != nil {
		return nil, err
	}
	var s core.Schedule
	mv := func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	}
	// Resident vector prefix, loaded once.
	for c := 1; c <= tc.ResidentVector; c++ {
		mv(core.M1, g.X[c-1])
	}
	for lo := 1; lo <= g.M; lo += tc.Height {
		hi := lo + tc.Height - 1
		if hi > g.M {
			hi = g.M
		}
		for c := 1; c <= g.N; c++ {
			transient := c > tc.ResidentVector
			if transient {
				mv(core.M1, g.X[c-1])
			}
			for r := lo; r <= hi; r++ {
				mv(core.M1, g.A[r-1][c-1])
				mv(core.M3, g.Prod[r-1][c-1])
				mv(core.M4, g.A[r-1][c-1])
				if transient && r == hi {
					// Last use of x_c within this tile.
					mv(core.M4, g.X[c-1])
				}
				if c >= 2 {
					mv(core.M3, g.Acc[r-1][c-2])
					mv(core.M4, g.Prod[r-1][c-1])
					mv(core.M4, g.Head(r, c-1))
				} else if g.N == 1 {
					// Products are the outputs; store immediately so
					// no head accumulates.
					mv(core.M2, g.Prod[r-1][0])
					mv(core.M4, g.Prod[r-1][0])
				}
			}
		}
		if g.N >= 2 {
			for r := lo; r <= hi; r++ {
				out := g.Output(r)
				mv(core.M2, out)
				mv(core.M4, out)
			}
		}
	}
	for c := 1; c <= tc.ResidentVector; c++ {
		mv(core.M4, g.X[c-1])
	}
	return s, nil
}

// Tiles returns ⌈m/h⌉, the number of tiles (row blocks).
func (g *Graph) Tiles(tc TileConfig) int {
	return (g.M + tc.Height - 1) / tc.Height
}

// PredictCost returns the weighted I/O of TileSchedule(tc) in closed
// form: the algorithmic lower bound plus one reload of every
// non-resident vector entry per additional tile.
func (g *Graph) PredictCost(tc TileConfig) cdag.Weight {
	wi := g.Cfg.Input()
	lb := core.LowerBound(g.G)
	extra := cdag.Weight(g.Tiles(tc)-1) * cdag.Weight(g.N-tc.ResidentVector) * wi
	return lb + extra
}

// PredictPeak returns the peak red weight of TileSchedule(tc) in
// closed form (bits). The three candidate peaks are: a product
// computation with the tile's heads, the matrix entry and the column
// x resident; an accumulation of a non-final row with the transient x
// still resident; and an accumulation of the final row after the
// transient x has been dropped.
func (g *Graph) PredictPeak(tc TileConfig) cdag.Weight {
	wi, wn := g.Cfg.Input(), g.Cfg.Node()
	resident := cdag.Weight(tc.ResidentVector) * wi
	if g.N == 1 {
		// x + a + product; resident x (vc=1) replaces the transient x.
		if tc.ResidentVector == 1 {
			return wi + wi + wn
		}
		return 2*wi + wn
	}
	h := cdag.Weight(tc.Height)
	if int(h) > g.M {
		h = cdag.Weight(g.M)
	}
	var xExtra cdag.Weight
	if tc.ResidentVector < g.N {
		xExtra = wi
	}
	p1 := (h+1)*wn + wi + xExtra
	p3 := (h + 2) * wn
	peak := p1
	if tc.Height >= 2 {
		if p2 := (h+2)*wn + xExtra; p2 > peak {
			peak = p2
		}
	}
	if p3 > peak {
		peak = p3
	}
	return resident + peak
}

// Candidates returns the tile heights worth searching: for each
// distinct tile count q = ⌈m/h⌉ the smallest h achieving it, since
// cost depends on h only through q while peak grows with h.
func (g *Graph) Candidates() []int {
	seen := map[int]bool{}
	var out []int
	for q := 1; q <= g.M; q++ {
		h := (g.M + q - 1) / q
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// Search returns the minimum-cost tile configuration whose peak fits
// the budget, or an error when no configuration fits. For each
// candidate height it gives any leftover budget to the resident
// vector, which strictly reduces cost.
func (g *Graph) Search(budget cdag.Weight) (TileConfig, cdag.Weight, error) {
	wi := g.Cfg.Input()
	best := TileConfig{}
	bestCost := Inf
	bestPeak := Inf
	for _, h := range g.Candidates() {
		for _, full := range []bool{true, false} {
			tc := TileConfig{Height: h}
			if full {
				tc.ResidentVector = g.N
			} else {
				// Largest vc < n fitting the budget, found by the
				// monotonicity of PredictPeak in vc.
				base := g.PredictPeak(TileConfig{Height: h})
				if base > budget {
					continue
				}
				vc := int((budget - base) / wi)
				if vc > g.N-1 {
					vc = g.N - 1
				}
				tc.ResidentVector = vc
			}
			if g.PredictPeak(tc) > budget {
				continue
			}
			cost := g.PredictCost(tc)
			peak := g.PredictPeak(tc)
			if cost < bestCost || (cost == bestCost && peak < bestPeak) {
				best, bestCost, bestPeak = tc, cost, peak
			}
		}
	}
	if bestCost >= Inf {
		return TileConfig{}, Inf, fmt.Errorf("mvm: no tile configuration fits budget %d (tiling minimum %d)", budget, g.TilingMinBudget())
	}
	return best, bestCost, nil
}

// MinCost returns the best tiling cost under the budget, or Inf when
// no configuration fits.
func (g *Graph) MinCost(budget cdag.Weight) cdag.Weight {
	_, cost, err := g.Search(budget)
	if err != nil {
		return Inf
	}
	return cost
}

// TilingMinBudget returns the smallest budget any tile configuration
// fits in: a single row with no resident vector.
func (g *Graph) TilingMinBudget() cdag.Weight {
	return g.PredictPeak(TileConfig{Height: 1})
}

// MinMemory returns the minimum fast memory size of Definition 2.6
// under the tiling scheduler: the smallest budget whose best tiling
// cost equals the algorithmic lower bound. The lower bound is reached
// exactly when a configuration with one tile (h = m) or a fully
// resident vector (vc = n) fits, so the answer is the smaller of
// those two peaks.
func (g *Graph) MinMemory() cdag.Weight {
	a := g.PredictPeak(TileConfig{Height: g.M})
	b := g.PredictPeak(TileConfig{Height: 1, ResidentVector: g.N})
	if b < a {
		return b
	}
	return a
}
