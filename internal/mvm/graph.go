// Package mvm builds the MVM(m, n) matrix-vector multiplication
// dataflow graphs of Definition 4.1 and implements the paper's tiling
// scheduler (Section 4.3), which composes minimal tile schedules under
// initial/reuse memory-state semantics into a schedule for the whole
// graph.
//
// Layer S_1 interleaves the inputs column by column — x_c followed by
// a_{1,c} … a_{m,c} — exactly as the definition's indexing demands.
// Layer S_2 holds the mn products a_{r,c}·x_c; layers S_3 … S_{n+1}
// hold the m running accumulators after each additional column. The
// outputs are the final accumulators (the products themselves when
// n = 1).
package mvm

import (
	"fmt"
	"strconv"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// Graph is an MVM(m, n) CDAG plus its layout and weight classes.
type Graph struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// M is the number of matrix rows (outputs), N the number of
	// columns (vector length).
	M, N int
	// Cfg records the weight configuration the graph was built with.
	Cfg wcfg.Config
	// X[c-1] is the vector input x_c.
	X []cdag.NodeID
	// A[r-1][c-1] is the matrix input a_{r,c}.
	A [][]cdag.NodeID
	// Prod[r-1][c-1] is the product a_{r,c}·x_c (layer S_2).
	Prod [][]cdag.NodeID
	// Acc[r-1][c-2] is the accumulator of row r after column c ≥ 2
	// (layer S_{c+1}).
	Acc [][]cdag.NodeID
	// lb caches core.LowerBound(G), which is a full-graph scan; the
	// graph is immutable after Build and Search's candidate loop hits
	// PredictCost once or twice per height.
	lb cdag.Weight
	// cand caches the candidate tile heights (see Candidates): they
	// depend only on M, so Build computes them once and Search's hot
	// path reads them without allocating.
	cand []int
}

// Build constructs MVM(m, n) with class weights from cfg. m ≥ 2 and
// n ≥ 1 per Definition 4.1.
func Build(m, n int, cfg wcfg.Config) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("mvm: m=%d must be ≥ 2", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("mvm: n=%d must be ≥ 1", n)
	}
	g := &cdag.Graph{}
	out := &Graph{G: g, M: m, N: n, Cfg: cfg}
	wi, wn := cfg.Input(), cfg.Node()

	out.X = make([]cdag.NodeID, n)
	out.A = make([][]cdag.NodeID, m)
	out.Prod = make([][]cdag.NodeID, m)
	for r := 0; r < m; r++ {
		out.A[r] = make([]cdag.NodeID, n)
		out.Prod[r] = make([]cdag.NodeID, n)
	}
	if n > 1 {
		out.Acc = make([][]cdag.NodeID, m)
		for r := 0; r < m; r++ {
			out.Acc[r] = make([]cdag.NodeID, n-1)
		}
	}

	// S_1: for each column c, x_c then a_{1,c} … a_{m,c} — this is
	// exactly the j = (c−1)(m+1)+1 … c(m+1) indexing of rule (1).
	for c := 1; c <= n; c++ {
		out.X[c-1] = g.AddNode(wi, "x["+strconv.Itoa(c)+"]")
		for r := 1; r <= m; r++ {
			out.A[r-1][c-1] = g.AddNode(wi, "a["+strconv.Itoa(r)+","+strconv.Itoa(c)+"]")
		}
	}
	// S_2: products v²_{(c−1)m+r} with parents {x_c, a_{r,c}}.
	for c := 1; c <= n; c++ {
		for r := 1; r <= m; r++ {
			out.Prod[r-1][c-1] = g.AddNode(wn, "p["+strconv.Itoa(r)+","+strconv.Itoa(c)+"]",
				out.X[c-1], out.A[r-1][c-1])
		}
	}
	// S_3 … S_{n+1}: accumulators. Rule (2) supplies the edge from the
	// previous partial sum, rule (3) the edge from the column product.
	for c := 2; c <= n; c++ {
		for r := 1; r <= m; r++ {
			out.Acc[r-1][c-2] = g.AddNode(wn, "s["+strconv.Itoa(r)+","+strconv.Itoa(c)+"]",
				out.Head(r, c-1), out.Prod[r-1][c-1])
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mvm: internal construction error: %w", err)
	}
	out.lb = core.LowerBound(g)
	out.cand = out.candidates()
	return out, nil
}

// Head returns the node holding row r's partial sum after column c
// (both 1-based): the product for c = 1, the accumulator otherwise.
func (g *Graph) Head(r, c int) cdag.NodeID {
	if c == 1 {
		return g.Prod[r-1][0]
	}
	return g.Acc[r-1][c-2]
}

// Output returns the sink node of row r: y_r = Head(r, n).
func (g *Graph) Output(r int) cdag.NodeID { return g.Head(r, g.N) }

// Outputs returns all m sink nodes in row order.
func (g *Graph) Outputs() []cdag.NodeID {
	out := make([]cdag.NodeID, g.M)
	for r := 1; r <= g.M; r++ {
		out[r-1] = g.Output(r)
	}
	return out
}

// LayerSizes returns |S_1| … |S_{n+1}| for cross-checking against
// Definition 4.1.
func (g *Graph) LayerSizes() []int {
	sizes := []int{g.M*g.N + g.N, g.M * g.N}
	for c := 2; c <= g.N; c++ {
		sizes = append(sizes, g.M)
	}
	return sizes
}
