package mvm

import (
	"context"
	"errors"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// Session answers repeated budget queries against one Graph, memoizing
// the tile search per budget: the first query at a budget runs the
// candidate-height sweep, later queries are a single map probe with no
// allocations. Unlike the tree DPs, whose memo tables already persist
// inside their Schedulers, the tile search had no warm state at all —
// the Session supplies it, giving mvm the same CostCtx/ScheduleCtx
// surface as the other solver families.
//
// A Session is not safe for concurrent use; serving layers serialize
// access per session (internal/serve's session pool).
type Session struct {
	g    *Graph
	memo map[cdag.Weight]searchResult
	ck   guard.Checker
}

// NewSession wraps a built Graph.
func NewSession(g *Graph) *Session {
	return &Session{g: g, memo: map[cdag.Weight]searchResult{}}
}

// Graph returns the underlying MVM graph.
func (se *Session) Graph() *Graph { return se.g }

// TakeCounts returns and resets the session's cumulative solver
// observation counters (memo hits, states, …) for metric export.
func (se *Session) TakeCounts() guard.Counts { return se.ck.TakeCounts() }

// search returns the memoized best configuration for the budget,
// running the guarded candidate sweep on a miss. Aborted sweeps are
// never memoized (no-poison), so the session stays reusable after a
// cancellation or deadline. Infeasible budgets memoize an Inf-cost
// result — "nothing fits" is a valid, budget-monotone answer.
func (se *Session) search(ctx context.Context, lim guard.Limits, b cdag.Weight) (searchResult, error) {
	if r, ok := se.memo[b]; ok {
		se.ck.NoteHit()
		return r, nil
	}
	se.ck.Reset(ctx, lim)
	defer se.ck.Release()
	tc, cost, err := se.g.sharedSearch(&se.ck, b)
	if cerr := se.ck.Err(); cerr != nil {
		return searchResult{}, fmt.Errorf("mvm: %w", cerr)
	}
	if aborted(err) {
		// The parallel candidate sweep reports cancellation through its
		// own error, not the session checker — an aborted sweep must not
		// masquerade as "infeasible" in the memo.
		return searchResult{}, err
	}
	r := searchResult{cost: Inf, peak: Inf}
	if err == nil {
		r = searchResult{tc: tc, cost: cost, peak: se.g.PredictPeak(tc)}
	}
	se.memo[b] = r
	return r, nil
}

// aborted distinguishes an interrupted search (guard trip, worker
// panic) from sharedSearch's legitimate "nothing fits" error.
func aborted(err error) bool {
	var pe *par.PanicError
	return errors.Is(err, guard.ErrCanceled) ||
		errors.Is(err, guard.ErrDeadline) ||
		errors.Is(err, guard.ErrBudgetExceeded) ||
		errors.As(err, &pe)
}

// CostCtx returns the best tiling cost under the budget (MinCost
// semantics: Inf when no configuration fits), against the warm
// per-budget memo. The error is non-nil only when the solve was
// aborted (guard.ErrCanceled / guard.ErrDeadline wrapped).
func (se *Session) CostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	r, err := se.search(ctx, lim, b)
	if err != nil {
		return 0, err
	}
	return r.cost, nil
}

// SearchCtx returns the memoized best configuration, with Search's
// error contract for infeasible budgets.
func (se *Session) SearchCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (TileConfig, cdag.Weight, error) {
	r, err := se.search(ctx, lim, b)
	if err != nil {
		return TileConfig{}, 0, err
	}
	if r.cost >= Inf {
		return TileConfig{}, Inf, fmt.Errorf("mvm: no tile configuration fits budget %d (tiling minimum %d): %w", b, se.g.TilingMinBudget(), guard.ErrOptimalInfeasible)
	}
	return r.tc, r.cost, nil
}

// ScheduleCtx generates the schedule of the memoized best
// configuration for the budget.
func (se *Session) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	tc, _, err := se.SearchCtx(ctx, lim, b)
	if err != nil {
		return nil, err
	}
	return se.g.TileSchedule(tc)
}
