package wcfg

import "testing"

func TestEqual(t *testing.T) {
	c := Equal(16)
	if c.Name != "Equal" || c.Input() != 16 || c.Node() != 16 {
		t.Errorf("Equal(16) = %+v", c)
	}
}

func TestDoubleAccumulator(t *testing.T) {
	c := DoubleAccumulator(16)
	if c.Input() != 16 || c.Node() != 32 {
		t.Errorf("DA(16) = %+v", c)
	}
	if c.Name == "" {
		t.Error("missing name")
	}
}

func TestWordsBits(t *testing.T) {
	c := Equal(16)
	if c.Words(160) != 10 || c.Words(161) != 11 || c.Words(1) != 1 {
		t.Error("Words rounding wrong")
	}
	if c.Bits(10) != 160 {
		t.Error("Bits wrong")
	}
}

func TestOtherWordSizes(t *testing.T) {
	c := DoubleAccumulator(8)
	if c.Input() != 8 || c.Node() != 16 {
		t.Errorf("DA(8) = %+v", c)
	}
}
