// Package wcfg defines the node-weight configurations used throughout
// the paper's evaluation (Section 5.1): Equal, where every node costs
// one memory word, and Double Accumulator, where non-input nodes
// (partial or accumulated results) cost two words — the
// mixed-precision scenario in which accumulated values need higher
// numerical precision than raw inputs.
package wcfg

import "wrbpg/internal/cdag"

// DefaultWordBits is the paper's word size: 16 bits, a common sample
// size for BCI sensor data.
const DefaultWordBits = 16

// Config fixes the word size and the per-class node weights in words.
type Config struct {
	// Name labels the configuration in reports ("Equal", "Double Accumulator").
	Name string
	// WordBits is the memory word size in bits.
	WordBits int
	// InputWords is the weight of input (source) nodes, in words.
	InputWords int
	// NodeWords is the weight of non-input nodes, in words.
	NodeWords int
}

// Equal returns the configuration where all nodes weigh one word.
func Equal(wordBits int) Config {
	return Config{Name: "Equal", WordBits: wordBits, InputWords: 1, NodeWords: 1}
}

// DoubleAccumulator returns the configuration where non-input nodes
// weigh two words.
func DoubleAccumulator(wordBits int) Config {
	return Config{Name: "Double Accumulator", WordBits: wordBits, InputWords: 1, NodeWords: 2}
}

// Input returns the input-node weight in bits.
func (c Config) Input() cdag.Weight { return cdag.Weight(c.InputWords * c.WordBits) }

// Node returns the non-input node weight in bits.
func (c Config) Node() cdag.Weight { return cdag.Weight(c.NodeWords * c.WordBits) }

// Words converts a weight in bits to whole words, rounding up.
func (c Config) Words(bits cdag.Weight) int {
	wb := cdag.Weight(c.WordBits)
	return int((bits + wb - 1) / wb)
}

// Bits converts a word count to bits.
func (c Config) Bits(words int) cdag.Weight {
	return cdag.Weight(words) * cdag.Weight(c.WordBits)
}
