// Package dse explores the mixed-precision design space the paper's
// introduction motivates: "compute logic attached to memory which may
// vary in bit-width to the lowest possible value that still achieves
// the desired accuracy for the computational task, thereby minimizing
// power". For each candidate precision configuration it derives the
// scheduler's minimum fast memory, synthesizes the power-of-two
// macro, and estimates per-window energy — producing the
// precision-versus-energy frontier a neuroengineer actually chooses
// from.
package dse

import (
	"context"
	"fmt"
	"sort"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/energy"
	"wrbpg/internal/guard"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/mvm"
	"wrbpg/internal/synth"
	"wrbpg/internal/wcfg"
)

// shape is the graph-determining part of a precision configuration:
// two configs with equal shapes (differing only in display name) build
// identical graphs, so they share one warm solver session during
// exploration and the second evaluation runs entirely on memo hits.
type shape struct{ wb, iw, nw int }

func shapeOf(cfg wcfg.Config) shape {
	return shape{cfg.WordBits, cfg.InputWords, cfg.NodeWords}
}

// Point is one evaluated design.
type Point struct {
	// Cfg is the precision configuration.
	Cfg wcfg.Config
	// MinMemoryBits is the scheduler's minimum fast memory
	// (Definition 2.6); Spec its word/pow-2 form.
	MinMemoryBits cdag.Weight
	Spec          memdesign.Spec
	// CostBits is the schedule's weighted I/O at that memory.
	CostBits cdag.Weight
	// Macro is the synthesized SRAM; Energy the per-window estimate.
	Macro  synth.Macro
	Energy energy.Report
}

// evaluator derives minimum memory, schedule length and cost for one
// precision configuration.
type evaluator func(cfg wcfg.Config) (minMem cdag.Weight, moves int, stats core.Stats, err error)

func explore(cfgs []wcfg.Config, proc synth.Process, ep energy.Params, eval evaluator) ([]Point, error) {
	var out []Point
	for _, cfg := range cfgs {
		minMem, moves, stats, err := eval(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", cfg.Name, err)
		}
		spec := memdesign.NewSpec(minMem, cfg.WordBits)
		// Round to a power-of-two word count so odd word sizes (12-bit
		// samples are common in neural ADCs) stay synthesizable.
		macro, err := synth.Synthesize(spec.Pow2WordCapacity(), cfg.WordBits, proc)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", cfg.Name, err)
		}
		rep, err := energy.Estimate(stats, moves, macro, ep)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", cfg.Name, err)
		}
		out = append(out, Point{
			Cfg: cfg, MinMemoryBits: minMem, Spec: spec,
			CostBits: stats.Cost, Macro: macro, Energy: rep,
		})
	}
	return out, nil
}

// Precisions builds the candidate grid: every input word size paired
// with every accumulator multiple.
func Precisions(wordBits []int, accWords []int) []wcfg.Config {
	var out []wcfg.Config
	for _, wb := range wordBits {
		for _, aw := range accWords {
			cfg := wcfg.Config{
				Name:       fmt.Sprintf("in%d/acc%d", wb, wb*aw),
				WordBits:   wb,
				InputWords: 1,
				NodeWords:  aw,
			}
			out = append(out, cfg)
		}
	}
	return out
}

// ExploreDWT evaluates the grid on DWT(n, d) with the optimum
// scheduler. Configs sharing a weight shape reuse one warm
// dwt.Session: the minimum-memory binary search probes and the final
// schedule all land in the same P(v, b) memo.
func ExploreDWT(n, d int, cfgs []wcfg.Config, proc synth.Process, ep energy.Params) ([]Point, error) {
	ctx := context.Background()
	sessions := make(map[shape]*dwt.Session, len(cfgs))
	return explore(cfgs, proc, ep, func(cfg wcfg.Config) (cdag.Weight, int, core.Stats, error) {
		se, ok := sessions[shapeOf(cfg)]
		if !ok {
			g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
			if err != nil {
				return 0, 0, core.Stats{}, err
			}
			if se, err = dwt.NewSession(g); err != nil {
				return 0, 0, core.Stats{}, err
			}
			sessions[shapeOf(cfg)] = se
		}
		g := se.Graph().G
		b, err := memdesign.SearchMonotoneSession(ctx, guard.Limits{}, se,
			core.LowerBound(g), core.MinExistenceBudget(g), g.TotalWeight(),
			cdag.Weight(cfg.WordBits))
		if err != nil {
			return 0, 0, core.Stats{}, err
		}
		sched, err := se.ScheduleCtx(ctx, guard.Limits{}, b)
		if err != nil {
			return 0, 0, core.Stats{}, err
		}
		stats, err := core.Simulate(g, b, sched)
		return b, len(sched), stats, err
	})
}

// ExploreMVM evaluates the grid on MVM(m, n) with the tiling
// scheduler. Configs sharing a weight shape reuse one warm
// mvm.Session, so repeated budgets answer from the tile-search memo.
func ExploreMVM(m, n int, cfgs []wcfg.Config, proc synth.Process, ep energy.Params) ([]Point, error) {
	ctx := context.Background()
	sessions := make(map[shape]*mvm.Session, len(cfgs))
	return explore(cfgs, proc, ep, func(cfg wcfg.Config) (cdag.Weight, int, core.Stats, error) {
		se, ok := sessions[shapeOf(cfg)]
		if !ok {
			g, err := mvm.Build(m, n, cfg)
			if err != nil {
				return 0, 0, core.Stats{}, err
			}
			se = mvm.NewSession(g)
			sessions[shapeOf(cfg)] = se
		}
		g := se.Graph()
		b := g.MinMemory()
		sched, err := se.ScheduleCtx(ctx, guard.Limits{}, b)
		if err != nil {
			return 0, 0, core.Stats{}, err
		}
		stats, err := core.Simulate(g.G, b, sched)
		return b, len(sched), stats, err
	})
}

// ExploreDWTBaseline evaluates the grid with the layer-by-layer
// scheduler — the "what if you don't have the optimal scheduler"
// column of the design space.
func ExploreDWTBaseline(n, d int, cfgs []wcfg.Config, proc synth.Process, ep energy.Params) ([]Point, error) {
	return explore(cfgs, proc, ep, func(cfg wcfg.Config) (cdag.Weight, int, core.Stats, error) {
		g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
		if err != nil {
			return 0, 0, core.Stats{}, err
		}
		b, err := baseline.MinMemory(g.G, g.Layers, cdag.Weight(cfg.WordBits))
		if err != nil {
			return 0, 0, core.Stats{}, err
		}
		sched, err := baseline.LayerByLayer(g.G, g.Layers, b)
		if err != nil {
			return 0, 0, core.Stats{}, err
		}
		stats, err := core.Simulate(g.G, b, sched)
		return b, len(sched), stats, err
	})
}

// Pareto returns the non-dominated points under (input precision ↑,
// total energy ↓): a point survives unless some other point has at
// least its precision and strictly less energy, or more precision
// and no more energy. The result is sorted by precision.
func Pareto(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Cfg.WordBits >= p.Cfg.WordBits && q.Energy.TotalPJ < p.Energy.TotalPJ {
				dominated = true
				break
			}
			if q.Cfg.WordBits > p.Cfg.WordBits && q.Energy.TotalPJ <= p.Energy.TotalPJ {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cfg.WordBits != out[j].Cfg.WordBits {
			return out[i].Cfg.WordBits < out[j].Cfg.WordBits
		}
		return out[i].Energy.TotalPJ < out[j].Energy.TotalPJ
	})
	return out
}
