package dse

import (
	"testing"

	"wrbpg/internal/energy"
	"wrbpg/internal/synth"
)

func TestPrecisions(t *testing.T) {
	cfgs := Precisions([]int{8, 16}, []int{1, 2})
	if len(cfgs) != 4 {
		t.Fatalf("grid size = %d", len(cfgs))
	}
	if cfgs[0].WordBits != 8 || cfgs[0].NodeWords != 1 {
		t.Errorf("first config = %+v", cfgs[0])
	}
	if cfgs[3].WordBits != 16 || cfgs[3].Node() != 32 {
		t.Errorf("last config = %+v", cfgs[3])
	}
	for _, c := range cfgs {
		if c.Name == "" {
			t.Error("unnamed config")
		}
	}
}

func TestExploreDWT(t *testing.T) {
	cfgs := Precisions([]int{8, 16}, []int{1, 2})
	pts, err := ExploreDWT(64, 6, cfgs, synth.TSMC65(), energy.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.MinMemoryBits <= 0 || p.CostBits <= 0 || p.Energy.TotalPJ <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Cfg.Name, p)
		}
		if p.Spec.Pow2Bits < p.MinMemoryBits {
			t.Errorf("%s: pow2 below minimum", p.Cfg.Name)
		}
	}
	// Narrower words must never need more memory or energy than the
	// same structure at wider words.
	if pts[0].MinMemoryBits >= pts[2].MinMemoryBits {
		t.Errorf("8-bit min memory %d not below 16-bit %d", pts[0].MinMemoryBits, pts[2].MinMemoryBits)
	}
	if pts[0].Energy.TotalPJ >= pts[2].Energy.TotalPJ {
		t.Errorf("8-bit energy not below 16-bit")
	}
}

func TestExploreMVM(t *testing.T) {
	cfgs := Precisions([]int{16}, []int{1, 2})
	pts, err := ExploreMVM(8, 10, cfgs, synth.TSMC65(), energy.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Double accumulators need at least as much memory.
	if pts[1].MinMemoryBits < pts[0].MinMemoryBits {
		t.Errorf("acc2 memory %d below acc1 %d", pts[1].MinMemoryBits, pts[0].MinMemoryBits)
	}
}

func TestBaselineColumnDominatedByOptimum(t *testing.T) {
	cfgs := Precisions([]int{16}, []int{1})
	opt, err := ExploreDWT(64, 6, cfgs, synth.TSMC65(), energy.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExploreDWTBaseline(64, 6, cfgs, synth.TSMC65(), energy.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if opt[0].MinMemoryBits >= base[0].MinMemoryBits {
		t.Errorf("optimum memory %d not below baseline %d", opt[0].MinMemoryBits, base[0].MinMemoryBits)
	}
	if opt[0].Energy.TotalPJ >= base[0].Energy.TotalPJ {
		t.Errorf("optimum energy not below baseline")
	}
}

func TestPareto(t *testing.T) {
	cfgs := Precisions([]int{8, 12, 16}, []int{1, 2})
	pts, err := ExploreDWT(32, 5, cfgs, synth.TSMC65(), energy.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	front := Pareto(pts)
	if len(front) == 0 || len(front) > len(pts) {
		t.Fatalf("front size = %d", len(front))
	}
	// The frontier is sorted by precision and strictly improving in
	// energy as precision drops.
	for i := 1; i < len(front); i++ {
		if front[i].Cfg.WordBits < front[i-1].Cfg.WordBits {
			t.Error("front not sorted by precision")
		}
	}
	// No frontier point is dominated by any grid point.
	for _, f := range front {
		for _, p := range pts {
			if p.Cfg.WordBits >= f.Cfg.WordBits && p.Energy.TotalPJ < f.Energy.TotalPJ {
				t.Errorf("front point %s dominated by %s", f.Cfg.Name, p.Cfg.Name)
			}
		}
	}
	// At each precision level exactly the cheapest accumulator
	// variant can survive.
	seen := map[int]int{}
	for _, f := range front {
		seen[f.Cfg.WordBits]++
	}
	for wb, cnt := range seen {
		if cnt > 1 {
			t.Errorf("precision %d has %d frontier points", wb, cnt)
		}
	}
}
