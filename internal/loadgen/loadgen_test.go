package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wrbpg/internal/serve"
)

// TestClosedLoopAgainstServer drives a real in-process server for a
// short burst: every response must be 200 or 429, never 5xx, and the
// counters must reconcile.
func TestClosedLoopAgainstServer(t *testing.T) {
	s := serve.New(serve.Options{MaxInflight: 2, MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:    ts.URL,
		Workers:    4,
		Duration:   700 * time.Millisecond,
		Timeout:    300 * time.Millisecond,
		MaxRetries: 1,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("no traffic landed: %+v", res)
	}
	if res.ServerErr != 0 {
		t.Fatalf("server errors under closed-loop load: %+v", res)
	}
	if res.ClientErr != 0 {
		t.Fatalf("generated invalid requests (4xx): %+v (by_status=%v)", res, res.ByStatus)
	}
	if res.TransportErr != 0 {
		t.Fatalf("transport errors: %+v", res)
	}
	if res.OK > 0 && (res.P50US <= 0 || res.P99US < res.P50US) {
		t.Fatalf("nonsense percentiles: p50=%d p99=%d", res.P50US, res.P99US)
	}
	var total int64
	for _, n := range res.ByStatus {
		total += n
	}
	if total != res.Sent-res.TransportErr {
		t.Fatalf("status counts %d don't reconcile with sent %d", total, res.Sent)
	}
}

// TestOpenLoopOverload offers far more than one slot can absorb: the
// run must finish inside its duration with only 200s and 429s — the
// ladder sheds, it does not 5xx — and report drops/sheds.
func TestOpenLoopOverload(t *testing.T) {
	s := serve.New(serve.Options{MaxInflight: 1, MaxQueue: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:    ts.URL,
		Rate:       300,
		MaxPending: 32,
		Duration:   700 * time.Millisecond,
		Timeout:    100 * time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerErr != 0 {
		t.Fatalf("5xx under overload: %+v (by_status=%v)", res, res.ByStatus)
	}
	if res.ClientErr != 0 {
		t.Fatalf("4xx under overload: %+v (by_status=%v)", res, res.ByStatus)
	}
	if res.Offered <= res.Sent {
		t.Logf("offered=%d sent=%d (no client-side drops this run)", res.Offered, res.Sent)
	}
	if res.DeadlineBlown != 0 {
		t.Fatalf("%d deadline-blown 200s: admission should shed those", res.DeadlineBlown)
	}
}

// TestRetryClientHonorsRetryAfter: a 429 with retry_after_s must delay
// the retry (capped), and the retry must then succeed.
func TestRetryClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"status":429,"error":"overloaded","reason":"shed","retry_after_s":1}`))
			return
		}
		w.Write([]byte(`{}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := newRetryClient(nil, 2, time.Second)
	cl.cap = 150 * time.Millisecond // don't actually sleep 1s in tests
	start := time.Now()
	st, _, retries, err := cl.post(context.Background(), ts.URL, []byte(`{}`))
	if err != nil || st != 200 {
		t.Fatalf("status %d err %v", st, err)
	}
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
	if waited := time.Since(start); waited < cl.cap {
		t.Fatalf("retried after %v, want >= the %v cap (Retry-After honored, capped)", waited, cl.cap)
	}
}

// TestRetryClientGivesUpOn400: client errors are final.
func TestRetryClientGivesUpOn400(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := newRetryClient(nil, 3, time.Second)
	st, _, retries, err := cl.post(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if st != 400 || retries != 0 || calls.Load() != 1 {
		t.Fatalf("status=%d retries=%d calls=%d, want 400/0/1", st, retries, calls.Load())
	}
}

func TestRetryAfterParse(t *testing.T) {
	for _, tc := range []struct {
		body string
		want time.Duration
	}{
		{`{"retry_after_s":3}`, 3 * time.Second},
		{`{"status":429,"retry_after_s":12,"reason":"shed"}`, 12 * time.Second},
		{`{"no_hint":true}`, 99 * time.Millisecond},
		{`{"retry_after_s":0}`, 99 * time.Millisecond},
		{``, 99 * time.Millisecond},
	} {
		if got := retryAfter([]byte(tc.body), 99*time.Millisecond); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.body, got, tc.want)
		}
	}
}

// TestMixCoversAllKinds: with a seeded generator every traffic kind in
// the mix appears.
func TestMixCoversAllKinds(t *testing.T) {
	var schedule, sweep, patch atomic.Int64
	s := serve.New(serve.Options{})
	inner := s.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/schedule":
			schedule.Add(1)
		case "/v1/schedule/sweep":
			sweep.Add(1)
		case "/v1/schedule/patch":
			patch.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Workers:  2,
		Duration: 700 * time.Millisecond,
		Timeout:  300 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientErr != 0 {
		t.Fatalf("4xx: %v", res.ByStatus)
	}
	if schedule.Load() == 0 || sweep.Load() == 0 || patch.Load() == 0 {
		t.Fatalf("mix incomplete: schedule=%d sweep=%d patch=%d (sent=%d)",
			schedule.Load(), sweep.Load(), patch.Load(), res.Sent)
	}
}

// TestWarmupRejectsBadTarget: a target that answers errors fails fast.
func TestWarmupRejectsBadTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer ts.Close()
	_, err := Run(context.Background(), Config{BaseURL: ts.URL, Workers: 1, Duration: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("Run succeeded against a non-wrbpgd target")
	}
}

func BenchmarkNextRequest(b *testing.B) {
	g := &generator{
		cfg:    Config{Mix: DefaultMix(), Timeout: 500 * time.Millisecond},
		shapes: DefaultShapes(),
	}
	for i := range g.shapes {
		g.shapes[i].minExist = 256
		g.shapes[i].nodes = 15
	}
	g.patchable = patchableShapes(g.shapes)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, body, _ := g.nextRequest(rng)
		if len(body) == 0 {
			b.Fatal("empty body")
		}
	}
}

// TestMultiTargetRoundRobin: traffic spreads across every replica in
// the target list, and the per-target breakdown reconciles with the
// aggregate counters.
func TestMultiTargetRoundRobin(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		s := serve.New(serve.Options{MaxInflight: 2, MaxQueue: 8})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	res, err := Run(context.Background(), Config{
		BaseURLs: urls,
		Workers:  4,
		Duration: 600 * time.Millisecond,
		Timeout:  300 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByTarget) != 3 {
		t.Fatalf("by_target has %d rows, want 3: %+v", len(res.ByTarget), res.ByTarget)
	}
	var sent, ok int64
	for u, tr := range res.ByTarget {
		if tr.Sent == 0 {
			t.Errorf("target %s got no traffic (round-robin broken)", u)
		}
		sent += tr.Sent
		ok += tr.OK
	}
	if sent != res.Sent || ok != res.OK {
		t.Fatalf("per-target sums (sent=%d ok=%d) don't reconcile with aggregate (sent=%d ok=%d)",
			sent, ok, res.Sent, res.OK)
	}
	if res.DistinctScheduleKeys == 0 {
		t.Fatal("no distinct schedule keys recorded")
	}
}

// TestMultiTargetDownMarking: a replica that dies mid-run is taken out
// of rotation by the readiness prober; the survivors absorb the
// traffic and the dead replica accounts for at most a handful of
// transport errors (the in-flight window before the probe notices).
func TestMultiTargetDownMarking(t *testing.T) {
	s0 := serve.New(serve.Options{MaxInflight: 2, MaxQueue: 8})
	ts0 := httptest.NewServer(s0.Handler())
	defer ts0.Close()
	s1 := serve.New(serve.Options{MaxInflight: 2, MaxQueue: 8})
	ts1 := httptest.NewServer(s1.Handler())

	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := Run(context.Background(), Config{
			BaseURLs:      []string{ts0.URL, ts1.URL},
			ProbeInterval: 20 * time.Millisecond,
			Workers:       4,
			Duration:      900 * time.Millisecond,
			Timeout:       200 * time.Millisecond,
			Seed:          13,
		})
		done <- res
		errc <- err
	}()
	time.Sleep(250 * time.Millisecond)
	ts1.Close() // kill one replica mid-run

	res, err := <-done, <-errc
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerErr != 0 {
		t.Fatalf("5xx during kill: %+v", res.ByTarget)
	}
	alive := res.ByTarget[ts0.URL]
	if alive == nil || alive.OK == 0 {
		t.Fatalf("surviving replica served nothing: %+v", res.ByTarget)
	}
	// The kill window allows a few in-flight transport errors before
	// the prober reacts; they must not dominate.
	if res.TransportErr > res.Sent/4 {
		t.Fatalf("transport_err=%d of sent=%d: down-marking is not working", res.TransportErr, res.Sent)
	}
	if res.Sent > 0 && res.OK == 0 {
		t.Fatalf("nothing succeeded: %+v", res)
	}
}

// TestHotBudgetsBoundDistinctKeys: with a fixed hot roster the
// distinct schedule-key census is bounded by shapes × HotBudgets, so
// fleet benchmarks can compare it against fleet-wide solves.
func TestHotBudgetsBoundDistinctKeys(t *testing.T) {
	s := serve.New(serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const hot = 3
	res, err := Run(context.Background(), Config{
		BaseURL:    ts.URL,
		HotBudgets: hot,
		Workers:    2,
		Duration:   500 * time.Millisecond,
		Timeout:    300 * time.Millisecond,
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if max := len(DefaultShapes()) * hot; res.DistinctScheduleKeys == 0 || res.DistinctScheduleKeys > max {
		t.Fatalf("distinct_schedule_keys=%d, want in (0, %d]", res.DistinctScheduleKeys, max)
	}
}
