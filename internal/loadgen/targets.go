// Multi-target support: the generator can spread traffic across a
// replica fleet, emulating the load balancer a real deployment would
// put in front of wrbpgd. Targets rotate round-robin; a prober watches
// each replica's /readyz and takes non-ready targets out of rotation
// until they answer 200 again — so a killed replica costs the fleet
// capacity, not errors, exactly as it would behind a balancer.

package loadgen

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// targetPool is the round-robin rotation over replica base URLs with
// per-target down flags maintained by the prober.
type targetPool struct {
	urls []string
	next atomic.Uint64
	down []atomic.Bool
}

func newTargetPool(urls []string) *targetPool {
	return &targetPool{urls: urls, down: make([]atomic.Bool, len(urls))}
}

// pick returns the next target in rotation, skipping targets marked
// down. When every target is down it degrades to plain round-robin
// over all of them — the resulting transport errors are the honest
// outcome of a fully-dead fleet.
func (p *targetPool) pick() string {
	n := len(p.urls)
	start := p.next.Add(1)
	for i := 0; i < n; i++ {
		idx := int(start+uint64(i)) % n
		if !p.down[idx].Load() {
			return p.urls[idx]
		}
	}
	return p.urls[int(start)%n]
}

// upCount returns how many targets are currently in rotation.
func (p *targetPool) upCount() int {
	up := 0
	for i := range p.down {
		if !p.down[i].Load() {
			up++
		}
	}
	return up
}

// probe runs one readiness sweep: GET /readyz per target, 200 keeps it
// in rotation, anything else (including transport failure) takes it
// out.
func (p *targetPool) probe(ctx context.Context, hc Doer, timeout time.Duration) {
	for i, u := range p.urls {
		pctx, cancel := context.WithTimeout(ctx, timeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, u+"/readyz", nil)
		ok := false
		if err == nil {
			if resp, rerr := hc.Do(req); rerr == nil {
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
		}
		cancel()
		p.down[i].Store(!ok)
	}
}

// watch probes every interval until ctx ends. Only started for
// multi-target runs — a single-target generator keeps the historical
// behavior of sending regardless and counting what comes back.
func (p *targetPool) watch(ctx context.Context, hc Doer, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.probe(ctx, hc, interval)
		}
	}
}

// TargetStats is one replica's row in the per-target breakdown.
type TargetStats struct {
	Sent         int64 `json:"sent"`
	OK           int64 `json:"ok_200"`
	Shed429      int64 `json:"shed_429"`
	ClientErr    int64 `json:"client_4xx"`
	ServerErr    int64 `json:"server_5xx"`
	TransportErr int64 `json:"transport_err"`
}
