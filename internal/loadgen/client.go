package loadgen

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Doer abstracts *http.Client for tests.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// retryClient is the well-behaved wrbpg client: it retries 429/503 and
// transport errors with exponential backoff plus jitter, and when the
// server sends Retry-After — the admission queue's drain estimate — it
// honors that instead (capped, so a pathological estimate can't stall
// the generator). Other statuses are final: a 400 won't improve with
// repetition.
type retryClient struct {
	hc         Doer
	maxRetries int
	// base/cap bound the backoff schedule; cap also bounds how long a
	// Retry-After hint is honored.
	base, cap time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetryClient(hc Doer, maxRetries int, timeout time.Duration) *retryClient {
	if hc == nil {
		hc = &http.Client{Timeout: timeout + 5*time.Second}
	}
	return &retryClient{
		hc:         hc,
		maxRetries: maxRetries,
		base:       25 * time.Millisecond,
		cap:        2 * time.Second,
		rng:        rand.New(rand.NewSource(1)),
	}
}

// post sends body to url, retrying per the policy. It returns the
// final status, response body and how many retries were spent.
func (c *retryClient) post(ctx context.Context, url string, body []byte) (status int, resp []byte, retries int, err error) {
	for attempt := 0; ; attempt++ {
		status, resp, err = c.once(ctx, http.MethodPost, url, body)
		if err == nil && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return status, resp, attempt, nil
		}
		if attempt >= c.maxRetries || ctx.Err() != nil {
			return status, resp, attempt, err
		}
		delay := c.backoff(attempt)
		if status == http.StatusTooManyRequests {
			if ra := retryAfter(resp, delay); ra > 0 {
				delay = ra
			}
		}
		if delay > c.cap {
			delay = c.cap
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return status, resp, attempt, ctx.Err()
		}
	}
}

func (c *retryClient) get(ctx context.Context, url string) (int, []byte, error) {
	return c.once(ctx, http.MethodGet, url, nil)
}

func (c *retryClient) once(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// backoff is exponential with full jitter: uniform in (0, base·2^n].
func (c *retryClient) backoff(attempt int) time.Duration {
	d := c.base << uint(attempt)
	if d > c.cap || d <= 0 {
		d = c.cap
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d))) + 1
	c.mu.Unlock()
	return j
}

// retryAfter extracts the server's retry_after_s hint from a 429 body
// (the JSON mirror of the Retry-After header); fallback when absent.
func retryAfter(body []byte, fallback time.Duration) time.Duration {
	// Cheap scan instead of full decode: the field is top-level.
	const key = `"retry_after_s":`
	i := bytes.Index(body, []byte(key))
	if i < 0 {
		return fallback
	}
	rest := body[i+len(key):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	s, err := strconv.Atoi(string(rest[:end]))
	if err != nil || s < 1 {
		return fallback
	}
	return time.Duration(s) * time.Second
}
