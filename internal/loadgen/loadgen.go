// Package loadgen generates mixed schedule/sweep/patch traffic against
// a wrbpgd endpoint — the measurement half of the overload-resilience
// story. It drives either a closed loop (N workers, each issuing the
// next request when the previous answers: measures capacity) or an
// open loop (a fixed offered rate independent of completions: measures
// behavior *beyond* capacity, where the admission queue and shed tiers
// earn their keep).
//
// Before generating load it warms up by asking /v1/lowerbound for each
// shape in the roster, learning the existence bound so every generated
// budget is feasible — a load test should exercise the solver, not the
// 400 path. Patch traffic uses the ktree shapes only: DWT node weights
// are constrained by the transform structure (Lemma 3.2), so random
// DWT deltas would be rejected as client errors.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Shape names one parametric instance in the traffic roster.
type Shape struct {
	Family string `json:"family"`
	N      int    `json:"n,omitempty"`
	D      int    `json:"d,omitempty"`
	K      int    `json:"k,omitempty"`
	Height int    `json:"height,omitempty"`
	M      int    `json:"m,omitempty"`

	// learned during warmup
	minExist int64
	nodes    int
}

func (s Shape) label() string {
	switch s.Family {
	case "dwt":
		return fmt.Sprintf("dwt(%d,%d)", s.N, s.D)
	case "ktree":
		return fmt.Sprintf("ktree(%d,%d)", s.K, s.Height)
	case "mvm":
		return fmt.Sprintf("mvm(%d,%d)", s.M, s.N)
	}
	return s.Family
}

// DefaultShapes is the mixed roster: two DWT sizes, two k-trees, one
// MVM — small enough to solve in milliseconds, varied enough to churn
// the schedule cache and session pool.
func DefaultShapes() []Shape {
	return []Shape{
		{Family: "dwt", N: 16, D: 2},
		{Family: "dwt", N: 32, D: 4},
		{Family: "ktree", K: 2, Height: 3},
		{Family: "ktree", K: 3, Height: 3},
		{Family: "mvm", M: 6, N: 8},
	}
}

// Mix weights the traffic kinds; zero entries drop that kind.
type Mix struct {
	Schedule int `json:"schedule"`
	Sweep    int `json:"sweep"`
	Patch    int `json:"patch"`
}

// DefaultMix is schedule-heavy with a steady sweep/patch minority,
// matching the interactive-tool usage the server is designed for.
func DefaultMix() Mix { return Mix{Schedule: 6, Sweep: 2, Patch: 2} }

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs, when non-empty, spreads traffic round-robin across a
	// replica fleet (BaseURL is then ignored). A readiness prober takes
	// non-ready replicas out of rotation and re-admits them on recovery,
	// emulating a load balancer; warmup runs against the first target.
	BaseURLs []string
	// ProbeInterval is the multi-target readiness probe period (default
	// 100ms). Single-target runs never probe.
	ProbeInterval time.Duration
	// HotBudgets, when > 0, draws every schedule budget from a fixed
	// per-shape roster of that many distinct feasible budgets instead of
	// the full [minExist, 2·minExist] range. A finite key population
	// lets fleet benchmarks compute duplicate cold solves exactly:
	// fleet-wide solves minus Result.DistinctScheduleKeys.
	HotBudgets int
	// Shapes is the instance roster (DefaultShapes when empty).
	Shapes []Shape
	// Mix weights the traffic kinds (DefaultMix when zero).
	Mix Mix
	// Workers > 0 runs a closed loop with that many concurrent
	// requesters. Rate is ignored.
	Workers int
	// Rate, with Workers == 0, runs an open loop offering Rate
	// requests/second regardless of completions.
	Rate float64
	// MaxPending caps open-loop in-flight requests; an arrival finding
	// the cap is counted Dropped, not sent (default 256). The cap keeps
	// the generator's own queueing out of the latency measurement: an
	// unbounded client would attribute its goroutine backlog to the
	// server.
	MaxPending int
	// Duration bounds the generation phase (warmup excluded).
	Duration time.Duration
	// Timeout is the per-request deadline sent as timeout_ms and used
	// as the client-side request timeout (plus slack).
	Timeout time.Duration
	// MaxRetries bounds the retry client (0 = no retries).
	MaxRetries int
	// Seed makes budget/shape choices reproducible.
	Seed int64
	// Client overrides the HTTP client (tests).
	Client Doer
}

// Result is the aggregated outcome of a run, JSON-shaped for
// BENCH_7.json.
type Result struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Workers     int     `json:"workers,omitempty"`
	RateOffered float64 `json:"rate_offered,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Offered     int64   `json:"offered"`
	Sent        int64   `json:"sent"`
	Dropped     int64   `json:"dropped"` // open loop: pending cap hit
	Retries     int64   `json:"retries"`

	OK           int64            `json:"ok_200"`
	Shed429      int64            `json:"shed_429"`
	ClientErr    int64            `json:"client_4xx"`
	ServerErr    int64            `json:"server_5xx"`
	TransportErr int64            `json:"transport_err"`
	ByStatus     map[string]int64 `json:"by_status"`
	// ByTarget breaks the outcome down per replica on multi-target runs
	// (absent on single-target runs).
	ByTarget map[string]*TargetStats `json:"by_target,omitempty"`
	// DistinctScheduleKeys counts the distinct (shape, budget) pairs
	// sent to /v1/schedule — the exact number of cold solves a perfectly
	// deduplicating fleet would perform for this run's schedule traffic.
	DistinctScheduleKeys int `json:"distinct_schedule_keys"`

	// DegradedShed counts 200s answered by the shed baseline tier
	// (fallback_cause == "shed").
	DegradedShed int64 `json:"degraded_shed"`
	// Fallback counts all 200s with source == "fallback";
	// FallbackByCause breaks them down by fallback_cause (deadline,
	// budget, shed, …).
	Fallback        int64            `json:"fallback"`
	FallbackByCause map[string]int64 `json:"fallback_by_cause,omitempty"`
	// DeadlineBlown counts 200s that took longer than 2×timeout + 1s —
	// answers the admission layer should have shed instead.
	DeadlineBlown int64 `json:"deadline_blown"`

	ThroughputRPS float64 `json:"throughput_rps"`
	ShedRate      float64 `json:"shed_rate"`
	P50US         int64   `json:"p50_us"`
	P99US         int64   `json:"p99_us"`
	MaxUS         int64   `json:"max_us"`
}

// Run executes one load-generation pass: warmup, then closed- or
// open-loop traffic for cfg.Duration.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Shapes) == 0 {
		cfg.Shapes = DefaultShapes()
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix()
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	cl := newRetryClient(cfg.Client, cfg.MaxRetries, cfg.Timeout)

	targets := cfg.BaseURLs
	if len(targets) == 0 {
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("need BaseURL or BaseURLs")
		}
		targets = []string{cfg.BaseURL}
	}
	shapes, err := warmup(ctx, cl, targets[0], cfg.Shapes)
	if err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	g := &generator{cfg: cfg, cl: cl, shapes: shapes, targets: newTargetPool(targets)}
	g.patchable = patchableShapes(shapes)
	if cfg.HotBudgets > 0 {
		g.hot = make(map[string][]int64, len(shapes))
		for _, s := range shapes {
			budgets := make([]int64, cfg.HotBudgets)
			// Spread the roster across (1.5·minExist, 2·minExist]: the
			// existence bound is necessary but not sufficient, so budgets
			// just above it can be infeasible for the optimal tier (or
			// worst-case branch-and-bound). Those answers never cache and
			// would turn the fixed roster into a permanent fallback storm
			// — the hot set is meant to measure caching, not feasibility
			// edges.
			step := s.minExist / int64(2*cfg.HotBudgets)
			if step < 1 {
				step = 1
			}
			for i := range budgets {
				budgets[i] = 3*s.minExist/2 + int64(i+1)*step
			}
			g.hot[s.label()] = budgets
		}
	}
	if len(targets) > 1 {
		interval := cfg.ProbeInterval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		pctx, stopProbe := context.WithCancel(ctx)
		defer stopProbe()
		g.targets.probe(pctx, cl.hc, interval) // initial sweep before traffic
		go g.targets.watch(pctx, cl.hc, interval)
	}
	if cfg.Workers > 0 {
		return g.closedLoop(ctx)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("need Workers > 0 (closed loop) or Rate > 0 (open loop)")
	}
	return g.openLoop(ctx)
}

// warmup resolves each shape's existence bound and node count from
// /v1/lowerbound, so generated budgets are always feasible and patch
// deltas name real nodes.
func warmup(ctx context.Context, cl *retryClient, base string, shapes []Shape) ([]Shape, error) {
	out := make([]Shape, len(shapes))
	for i, s := range shapes {
		q := url.Values{"family": {s.Family}}
		for _, f := range []struct {
			k string
			v int
		}{{"n", s.N}, {"d", s.D}, {"k", s.K}, {"height", s.Height}, {"m", s.M}} {
			if f.v != 0 {
				q.Set(f.k, strconv.Itoa(f.v))
			}
		}
		st, body, err := cl.get(ctx, base+"/v1/lowerbound?"+q.Encode())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.label(), err)
		}
		if st != 200 {
			return nil, fmt.Errorf("%s: lowerbound status %d: %s", s.label(), st, body)
		}
		var lb struct {
			MinExistenceBits int64 `json:"min_existence_bits"`
			Nodes            int   `json:"nodes"`
		}
		if err := json.Unmarshal(body, &lb); err != nil {
			return nil, fmt.Errorf("%s: %w", s.label(), err)
		}
		s.minExist, s.nodes = lb.MinExistenceBits, lb.Nodes
		out[i] = s
	}
	return out, nil
}

func patchableShapes(shapes []Shape) []Shape {
	var out []Shape
	for _, s := range shapes {
		if s.Family == "ktree" {
			out = append(out, s)
		}
	}
	return out
}

// generator holds the per-run state shared by the loop drivers.
type generator struct {
	cfg       Config
	cl        *retryClient
	shapes    []Shape
	patchable []Shape
	targets   *targetPool
	hot       map[string][]int64 // per-shape fixed budget roster (HotBudgets mode)

	mu        sync.Mutex
	latencies []int64             // µs, successful 200s only
	seenKeys  map[string]struct{} // distinct schedule (shape, budget) pairs
	res       Result
}

// budgetFor picks a feasible budget for s: from the fixed hot roster
// when configured, otherwise uniform in [minExist, 2·minExist].
func (g *generator) budgetFor(rng *rand.Rand, s Shape) int64 {
	if roster := g.hot[s.label()]; len(roster) > 0 {
		return roster[rng.Intn(len(roster))]
	}
	return s.minExist + rng.Int63n(s.minExist+1)
}

// nextRequest picks a traffic kind by mix weight and builds its
// method, path and body. rng is per-worker: no lock on the hot path.
// schedKey identifies a /v1/schedule request's (shape, budget) pair
// for the distinct-key census, "" for other kinds.
func (g *generator) nextRequest(rng *rand.Rand) (path string, body []byte, schedKey string) {
	m := g.cfg.Mix
	total := m.Schedule + m.Sweep + m.Patch
	pick := rng.Intn(total)
	timeoutMS := g.cfg.Timeout.Milliseconds()
	sh := g.shapes[rng.Intn(len(g.shapes))]
	budget := g.budgetFor(rng, sh)

	switch {
	case pick < m.Schedule || len(g.patchable) == 0 && pick >= m.Schedule+m.Sweep:
		req := map[string]any{
			"family": sh.Family, "budget_bits": budget, "timeout_ms": timeoutMS,
		}
		addDims(req, sh)
		b, _ := json.Marshal(req)
		return "/v1/schedule", b, fmt.Sprintf("%s@%d", sh.label(), budget)
	case pick < m.Schedule+m.Sweep:
		budgets := make([]int64, 1+rng.Intn(4))
		for i := range budgets {
			budgets[i] = g.budgetFor(rng, sh)
		}
		req := map[string]any{
			"family": sh.Family, "budgets_bits": budgets, "timeout_ms": timeoutMS,
		}
		addDims(req, sh)
		b, _ := json.Marshal(req)
		return "/v1/schedule/sweep", b, ""
	default:
		ps := g.patchable[rng.Intn(len(g.patchable))]
		deltas := []map[string]any{{
			"node":        rng.Intn(ps.nodes),
			"weight_bits": 8 + rng.Int63n(57), // [8, 64]
		}}
		req := map[string]any{
			"family": ps.Family, "deltas": deltas,
			"budgets_bits": []int64{g.budgetFor(rng, ps)},
			"timeout_ms":   timeoutMS,
		}
		addDims(req, ps)
		b, _ := json.Marshal(req)
		return "/v1/schedule/patch", b, ""
	}
}

func addDims(req map[string]any, s Shape) {
	for k, v := range map[string]int{"n": s.N, "d": s.D, "k": s.K, "height": s.Height, "m": s.M} {
		if v != 0 {
			req[k] = v
		}
	}
}

// fire sends one request and records its outcome.
func (g *generator) fire(ctx context.Context, rng *rand.Rand) {
	path, body, schedKey := g.nextRequest(rng)
	target := g.targets.pick()
	start := time.Now()
	st, respBody, retries, err := g.cl.post(ctx, target+path, body)
	lat := time.Since(start)

	g.mu.Lock()
	defer g.mu.Unlock()
	g.res.Sent++
	g.res.Retries += int64(retries)
	var tgt *TargetStats
	if len(g.targets.urls) > 1 {
		if g.res.ByTarget == nil {
			g.res.ByTarget = make(map[string]*TargetStats, len(g.targets.urls))
		}
		if tgt = g.res.ByTarget[target]; tgt == nil {
			tgt = &TargetStats{}
			g.res.ByTarget[target] = tgt
		}
		tgt.Sent++
	}
	if err != nil {
		if ctx.Err() != nil {
			g.res.Sent-- // run ended mid-flight: not a sample
			if tgt != nil {
				tgt.Sent--
			}
			return
		}
		g.res.TransportErr++
		if tgt != nil {
			tgt.TransportErr++
		}
		return
	}
	if g.res.ByStatus == nil {
		g.res.ByStatus = make(map[string]int64)
	}
	g.res.ByStatus[strconv.Itoa(st)]++
	switch {
	case st == 200:
		g.res.OK++
		if tgt != nil {
			tgt.OK++
		}
		if schedKey != "" {
			// Only answered keys join the census: a 200 for a schedule
			// key means some replica solved it at least once, so fleet
			// duplicate accounting (Σ solves − distinct keys) stays
			// non-negative even when part of the traffic was shed.
			if g.seenKeys == nil {
				g.seenKeys = make(map[string]struct{})
			}
			g.seenKeys[schedKey] = struct{}{}
		}
		g.latencies = append(g.latencies, lat.Microseconds())
		if lat > 2*g.cfg.Timeout+time.Second {
			g.res.DeadlineBlown++
		}
		if path == "/v1/schedule" {
			var r struct {
				Source        string `json:"source"`
				FallbackCause string `json:"fallback_cause"`
			}
			if json.Unmarshal(respBody, &r) == nil && r.Source == "fallback" {
				g.res.Fallback++
				if g.res.FallbackByCause == nil {
					g.res.FallbackByCause = make(map[string]int64)
				}
				g.res.FallbackByCause[r.FallbackCause]++
				if r.FallbackCause == "shed" {
					g.res.DegradedShed++
				}
			}
		}
	case st == 429:
		g.res.Shed429++
		if tgt != nil {
			tgt.Shed429++
		}
	case st >= 500:
		g.res.ServerErr++
		if tgt != nil {
			tgt.ServerErr++
		}
	case st >= 400:
		g.res.ClientErr++
		if tgt != nil {
			tgt.ClientErr++
		}
	}
}

// closedLoop: Workers requesters, each issuing the next request as
// soon as the previous completes. Throughput here IS capacity.
func (g *generator) closedLoop(ctx context.Context) (*Result, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(id)))
			for ctx.Err() == nil {
				g.fire(ctx, rng)
			}
		}(w)
	}
	wg.Wait()
	g.res.Mode, g.res.Workers = "closed", g.cfg.Workers
	g.res.Offered = g.res.Sent
	g.finish(time.Since(start))
	return &g.res, nil
}

// openLoop: offer requests at a fixed rate regardless of completions —
// the overload probe. Arrivals beyond MaxPending in-flight are dropped
// client-side (counted, not sent) so the generator itself can't
// deadlock the measurement or pollute it with its own queueing delay.
// The ticker is clamped to a schedulable period and catches up on
// arrivals between ticks, so the offered count tracks Rate even when
// Rate exceeds the tick frequency.
func (g *generator) openLoop(ctx context.Context) (*Result, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Duration)
	defer cancel()
	maxPending := g.cfg.MaxPending
	if maxPending <= 0 {
		maxPending = 256
	}
	interval := time.Duration(float64(time.Second) / g.cfg.Rate)
	if interval < 200*time.Microsecond {
		interval = 200 * time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()

	var pending atomic.Int64
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	start := time.Now()
	var offered, dropped int64
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-tick.C:
			want := int64(time.Since(start).Seconds() * g.cfg.Rate)
			for ; offered < want; offered++ {
				if pending.Load() >= int64(maxPending) {
					dropped++
					continue
				}
				pending.Add(1)
				seed := rng.Int63()
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer pending.Add(-1)
					g.fire(ctx, rand.New(rand.NewSource(seed)))
				}()
			}
		}
	}
	wg.Wait()
	g.res.Mode, g.res.RateOffered = "open", g.cfg.Rate
	g.res.Offered, g.res.Dropped = offered, dropped
	g.finish(time.Since(start))
	return &g.res, nil
}

// finish derives the aggregate fields from raw samples.
func (g *generator) finish(elapsed time.Duration) {
	g.res.DurationS = elapsed.Seconds()
	g.res.DistinctScheduleKeys = len(g.seenKeys)
	if elapsed > 0 {
		g.res.ThroughputRPS = float64(g.res.OK) / elapsed.Seconds()
	}
	if g.res.Sent > 0 {
		g.res.ShedRate = float64(g.res.Shed429+g.res.DegradedShed) / float64(g.res.Sent)
	}
	ls := g.latencies
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	if n := len(ls); n > 0 {
		g.res.P50US = ls[n/2]
		g.res.P99US = ls[n*99/100]
		g.res.MaxUS = ls[n-1]
	}
}
