package machine

import (
	"math"
	"math/rand"
	"testing"

	"wrbpg/internal/conv"
	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

// db4High is the Daubechies-4 high-pass filter paired with db4 (the
// quadrature mirror: reversed taps with alternating signs).
var db4High = []float64{db4[3], -db4[2], db4[1], -db4[0]}

// TestMultiLevelExecutionMatchesReference across Haar and DB4.
func TestMultiLevelExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	haarLow := []float64{1 / wavelet.Sqrt2, 1 / wavelet.Sqrt2}
	haarHigh := []float64{1 / wavelet.Sqrt2, -1 / wavelet.Sqrt2}
	cases := []struct {
		n, levels   int
		hLow, hHigh []float64
	}{
		{32, 5, haarLow, haarHigh},
		{22, 3, db4, db4High},
	}
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, c := range cases {
			m, err := conv.BuildMultiLevel(c.n, len(c.hLow), 2, c.levels, cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := randSignal(rng, c.n)
			prog, err := FromMultiLevel(m, x, c.hLow, c.hHigh)
			if err != nil {
				t.Fatal(err)
			}
			_, peak := m.Metrics()
			values, stats, err := Run(prog, peak, m.Schedule())
			if err != nil {
				t.Fatalf("%s taps=%d: %v", cfg.Name, len(c.hLow), err)
			}
			cost, _ := m.Metrics()
			if stats.TrafficBits != cost {
				t.Errorf("traffic %d != metrics %d", stats.TrafficBits, cost)
			}
			gotH, gotL := MultiLevelOutputs(m, values)
			wantH, wantL := MultiLevelReference(x, c.hLow, c.hHigh, 2, c.levels)
			for l := range wantH {
				for o := range wantH[l] {
					if math.Abs(gotH[l][o]-wantH[l][o]) > 1e-9 {
						t.Fatalf("%s level %d coeff %d: %g vs %g", cfg.Name, l+1, o, gotH[l][o], wantH[l][o])
					}
				}
			}
			for o := range wantL {
				if math.Abs(gotL[o]-wantL[o]) > 1e-9 {
					t.Fatalf("%s final low %d: %g vs %g", cfg.Name, o, gotL[o], wantL[o])
				}
			}
		}
	}
}

// TestMultiLevelHaarMatchesWaveletPackage: the general machinery at
// T = 2 reproduces the dedicated Haar implementation.
func TestMultiLevelHaarMatchesWaveletPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x := randSignal(rng, 32)
	haarLow := []float64{1 / wavelet.Sqrt2, 1 / wavelet.Sqrt2}
	haarHigh := []float64{1 / wavelet.Sqrt2, -1 / wavelet.Sqrt2}
	gotH, gotL := MultiLevelReference(x, haarLow, haarHigh, 2, 5)
	levels, err := wavelet.Transform(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantH, wantL := wavelet.Outputs(levels)
	for l := range wantH {
		for o := range wantH[l] {
			if math.Abs(gotH[l][o]-wantH[l][o]) > 1e-9 {
				t.Fatalf("level %d coeff %d: %g vs %g", l+1, o, gotH[l][o], wantH[l][o])
			}
		}
	}
	for o := range wantL {
		if math.Abs(gotL[o]-wantL[o]) > 1e-9 {
			t.Fatalf("final avg %d: %g vs %g", o, gotL[o], wantL[o])
		}
	}
}

func TestFromMultiLevelRejectsBadShapes(t *testing.T) {
	m, err := conv.BuildMultiLevel(16, 2, 2, 2, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromMultiLevel(m, make([]float64, 15), []float64{1, 1}, []float64{1, -1}); err == nil {
		t.Error("bad signal length accepted")
	}
	if _, err := FromMultiLevel(m, make([]float64, 16), []float64{1}, []float64{1, -1}); err == nil {
		t.Error("bad filter length accepted")
	}
}
