package machine

import (
	"math/rand"
	"testing"

	"wrbpg/internal/banded"
	"wrbpg/internal/linalg"
	"wrbpg/internal/wcfg"
)

func TestBandedExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range [][2]int{{4, 0}, {6, 1}, {8, 3}, {12, 11}} {
			g, err := banded.Build(d[0], d[1], cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := randSignal(rng, g.N)
			entries := make([][]float64, g.N)
			for i := 1; i <= g.N; i++ {
				lo, hi := g.Band(i)
				entries[i-1] = randSignal(rng, hi-lo+1)
			}
			prog, err := FromBanded(g, entries, x)
			if err != nil {
				t.Fatal(err)
			}
			_, peak := g.Metrics()
			values, stats, err := Run(prog, peak, g.Schedule())
			if err != nil {
				t.Fatalf("%s Banded%v: %v", cfg.Name, d, err)
			}
			got := BandedOutputs(g, values)
			want := BandedReference(g, entries, x)
			diff, err := linalg.MaxAbsDiff(got, want)
			if err != nil {
				t.Fatal(err)
			}
			if diff > 1e-9 {
				t.Fatalf("%s Banded%v: max diff %g", cfg.Name, d, diff)
			}
			cost, _ := g.Metrics()
			if stats.TrafficBits != cost {
				t.Errorf("traffic %d != metrics cost %d", stats.TrafficBits, cost)
			}
		}
	}
}

func TestFromBandedRejectsBadShapes(t *testing.T) {
	g, err := banded.Build(4, 1, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromBanded(g, make([][]float64, 4), make([]float64, 3)); err == nil {
		t.Error("bad vector length accepted")
	}
	if _, err := FromBanded(g, make([][]float64, 3), make([]float64, 4)); err == nil {
		t.Error("bad row count accepted")
	}
	rows := make([][]float64, 4)
	for i := range rows {
		rows[i] = make([]float64, 1) // wrong band widths
	}
	if _, err := FromBanded(g, rows, make([]float64, 4)); err == nil {
		t.Error("bad band width accepted")
	}
}
