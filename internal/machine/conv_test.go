package machine

import (
	"math"
	"math/rand"
	"testing"

	"wrbpg/internal/conv"
	"wrbpg/internal/linalg"
	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

// db4 holds the Daubechies-4 low-pass taps — the concrete wavelet the
// paper's future-work sentence points at.
var db4 = []float64{0.48296291314453414, 0.8365163037378079, 0.2241438680420134, -0.12940952255126037}

// TestConvExecutionMatchesReference across filters, buffers and
// weightings.
func TestConvExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		n, down int
		h       []float64
	}{
		{12, 2, []float64{1 / wavelet.Sqrt2, 1 / wavelet.Sqrt2}}, // Haar low-pass
		{12, 2, db4},
		{10, 1, []float64{0.25, 0.5, 0.25}}, // smoothing FIR
	}
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, c := range cases {
			g, err := conv.Build(c.n, len(c.h), c.down, cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := randSignal(rng, c.n)
			want := ConvReference(x, c.h, c.down)
			for buf := 0; buf <= g.Taps; buf += 2 {
				sched, err := g.Schedule(buf)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := FromConv(g, x, c.h)
				if err != nil {
					t.Fatal(err)
				}
				budget := g.PredictPeak(buf)
				values, _, err := Run(prog, budget, sched)
				if err != nil {
					t.Fatalf("%s taps=%d buf=%d: %v", cfg.Name, len(c.h), buf, err)
				}
				got := ConvOutputs(g, values)
				diff, err := linalg.MaxAbsDiff(got, want)
				if err != nil {
					t.Fatal(err)
				}
				if diff > 1e-9 {
					t.Fatalf("%s taps=%d buf=%d: max diff %g", cfg.Name, len(c.h), buf, diff)
				}
			}
		}
	}
}

// TestConvHaarMatchesWaveletAverages: the T=D=2 filter with Haar taps
// reproduces the wavelet package's level-1 averages.
func TestConvHaarMatchesWaveletAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := randSignal(rng, 16)
	h := []float64{1 / wavelet.Sqrt2, 1 / wavelet.Sqrt2}
	got := ConvReference(x, h, 2)
	avg, _, err := wavelet.Step(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range avg {
		if math.Abs(got[i]-avg[i]) > 1e-12 {
			t.Fatalf("avg[%d]: %g vs %g", i, got[i], avg[i])
		}
	}
}

func TestFromConvRejectsBadShapes(t *testing.T) {
	g, err := conv.Build(10, 4, 2, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromConv(g, make([]float64, 9), db4); err == nil {
		t.Error("bad signal length accepted")
	}
	if _, err := FromConv(g, make([]float64, 10), db4[:3]); err == nil {
		t.Error("bad tap count accepted")
	}
}

func TestConvReferenceDegenerate(t *testing.T) {
	if ConvReference([]float64{1}, []float64{1, 2}, 1) != nil {
		t.Error("short signal should return nil")
	}
	if ConvReference([]float64{1, 2}, []float64{1}, 0) != nil {
		t.Error("zero downsample should return nil")
	}
}
