package machine

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/conv"
)

// FromConv builds an executable FIR filter over a conv.Graph with the
// given tap coefficients (len(h) must equal the graph's tap count).
func FromConv(g *conv.Graph, x, h []float64) (*Program, error) {
	if len(x) != g.N {
		return nil, fmt.Errorf("machine: signal length %d != n=%d", len(x), g.N)
	}
	if len(h) != g.Taps {
		return nil, fmt.Errorf("machine: %d coefficients for %d taps", len(h), g.Taps)
	}
	p := NewProgram(g.G)
	for i, v := range g.X {
		p.Inputs[v] = x[i]
	}
	for o := 0; o < g.Outputs(); o++ {
		h0, h1 := h[0], h[1]
		p.Ops[g.Mac[o][0]] = func(a []float64) float64 { return h0*a[0] + h1*a[1] }
		for t := 2; t < g.Taps; t++ {
			ht := h[t]
			p.Ops[g.Mac[o][t-1]] = func(a []float64) float64 { return a[0] + ht*a[1] }
		}
	}
	return p, nil
}

// ConvOutputs extracts y in output order.
func ConvOutputs(g *conv.Graph, values map[cdag.NodeID]float64) []float64 {
	out := make([]float64, g.Outputs())
	for o := range out {
		out[o] = values[g.Output(o)]
	}
	return out
}

// ConvReference computes the valid downsampled convolution directly.
func ConvReference(x, h []float64, down int) []float64 {
	if len(x) < len(h) || down < 1 {
		return nil
	}
	numOut := (len(x)-len(h))/down + 1
	out := make([]float64, numOut)
	for o := 0; o < numOut; o++ {
		var s float64
		for t := range h {
			s += h[t] * x[o*down+t]
		}
		out[o] = s
	}
	return out
}
