package machine

import (
	"math/rand"
	"testing"

	"wrbpg/internal/linalg"
	"wrbpg/internal/mmm"
	"wrbpg/internal/wcfg"
)

// TestMMMExecutionMatchesReference: every strategy computes C = A·B
// exactly at its predicted peak.
func TestMMMExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range [][3]int{{2, 2, 2}, {3, 4, 2}, {4, 2, 5}, {2, 1, 3}} {
			m, k, n := d[0], d[1], d[2]
			g, err := mmm.Build(m, k, n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			a := randSignal(rng, m*k)
			bm := randSignal(rng, k*n)
			// Reference: column-by-column MVM.
			A := &linalg.Matrix{Rows: m, Cols: k, Data: a}
			want := make([]float64, m*n)
			for j := 0; j < n; j++ {
				col := make([]float64, k)
				for l := 0; l < k; l++ {
					col[l] = bm[l*n+j]
				}
				y, err := A.MulVec(col)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < m; i++ {
					want[i*n+j] = y[i]
				}
			}
			for _, c := range []mmm.Config{
				{Strategy: mmm.CTile, TileRows: 1, TileCols: 1},
				{Strategy: mmm.CTile, TileRows: m, TileCols: n},
				{Strategy: mmm.BResident},
				{Strategy: mmm.AResident},
			} {
				sched, err := g.Schedule(c)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := FromMMM(g, a, bm)
				if err != nil {
					t.Fatal(err)
				}
				budget := g.PredictPeak(c)
				values, stats, err := Run(prog, budget, sched)
				if err != nil {
					t.Fatalf("%s MMM%v %v: %v", cfg.Name, d, c, err)
				}
				got := MMMOutputs(g, values)
				diff, err := linalg.MaxAbsDiff(got, want)
				if err != nil {
					t.Fatal(err)
				}
				if diff > 1e-9 {
					t.Fatalf("%s MMM%v %v: max diff %g", cfg.Name, d, c, diff)
				}
				if stats.TrafficBits != g.PredictCost(c) {
					t.Errorf("%s MMM%v %v: traffic %d != predicted %d", cfg.Name, d, c, stats.TrafficBits, g.PredictCost(c))
				}
			}
		}
	}
}

func TestFromMMMRejectsWrongShapes(t *testing.T) {
	g, err := mmm.Build(2, 3, 2, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromMMM(g, make([]float64, 5), make([]float64, 6)); err == nil {
		t.Error("bad A accepted")
	}
	if _, err := FromMMM(g, make([]float64, 6), make([]float64, 5)); err == nil {
		t.Error("bad B accepted")
	}
}
