package machine

import (
	"math"
	"math/rand"
	"testing"

	"wrbpg/internal/fft"
	"wrbpg/internal/wcfg"
)

// TestWHTExecutionMatchesReference: blocked butterfly schedules
// compute the Walsh–Hadamard transform exactly, at every block size.
func TestWHTExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, n := range []int{2, 4, 16, 64} {
			g, err := fft.Build(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := randSignal(rng, n)
			want := WHTReference(x)
			for tt := 1; tt <= g.K; tt++ {
				sched, err := g.BlockedSchedule(tt)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := FromWHT(g, x)
				if err != nil {
					t.Fatal(err)
				}
				budget := g.PredictPeak(tt)
				values, stats, err := Run(prog, budget, sched)
				if err != nil {
					t.Fatalf("%s WHT(%d) t=%d: %v", cfg.Name, n, tt, err)
				}
				got := WHTOutputs(g, values)
				for j := range want {
					if math.Abs(got[j]-want[j]) > 1e-9 {
						t.Fatalf("%s WHT(%d) t=%d: y[%d] = %g, want %g", cfg.Name, n, tt, j, got[j], want[j])
					}
				}
				if stats.PeakFastBits > budget {
					t.Fatalf("peak %d > budget %d", stats.PeakFastBits, budget)
				}
			}
		}
	}
}

// TestWHTReferenceInvolution: H·H·x = n·x — a self-check of the
// reference itself.
func TestWHTReferenceInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randSignal(rng, 16)
	twice := WHTReference(WHTReference(x))
	for i := range x {
		if math.Abs(twice[i]-16*x[i]) > 1e-9 {
			t.Fatalf("involution broken at %d: %g vs %g", i, twice[i], 16*x[i])
		}
	}
}

// TestWHTParseval: energy scales by n under the unnormalised WHT.
func TestWHTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randSignal(rng, 32)
	y := WHTReference(x)
	var ex, ey float64
	for i := range x {
		ex += x[i] * x[i]
		ey += y[i] * y[i]
	}
	if math.Abs(ey-32*ex) > 1e-6 {
		t.Errorf("Parseval broken: %g vs %g", ey, 32*ex)
	}
}

func TestFromWHTRejectsWrongLength(t *testing.T) {
	g, err := fft.Build(8, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromWHT(g, make([]float64, 7)); err == nil {
		t.Error("expected length error")
	}
}
