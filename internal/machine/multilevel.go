package machine

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/conv"
)

// FromMultiLevel builds an executable multi-resolution wavelet
// transform over a conv.MultiLevel graph with the given low-pass and
// high-pass filter taps.
func FromMultiLevel(m *conv.MultiLevel, x, hLow, hHigh []float64) (*Program, error) {
	if len(x) != m.N {
		return nil, fmt.Errorf("machine: signal length %d != n=%d", len(x), m.N)
	}
	if len(hLow) != m.Taps || len(hHigh) != m.Taps {
		return nil, fmt.Errorf("machine: filters must have %d taps", m.Taps)
	}
	p := NewProgram(m.G)
	for i, v := range m.Inputs {
		p.Inputs[v] = x[i]
	}
	bind := func(chain []cdag.NodeID, h []float64) {
		h0, h1 := h[0], h[1]
		p.Ops[chain[0]] = func(a []float64) float64 { return h0*a[0] + h1*a[1] }
		for t := 2; t < m.Taps; t++ {
			ht := h[t]
			p.Ops[chain[t-1]] = func(a []float64) float64 { return a[0] + ht*a[1] }
		}
	}
	for l := 0; l < m.Levels; l++ {
		for o := range m.LowChain[l] {
			bind(m.LowChain[l][o], hLow)
			bind(m.HighChain[l][o], hHigh)
		}
	}
	return p, nil
}

// MultiLevelOutputs extracts the per-level high-pass coefficients and
// the final low-pass values from a Run result.
func MultiLevelOutputs(m *conv.MultiLevel, values map[cdag.NodeID]float64) (highs [][]float64, finalLow []float64) {
	counts := m.LevelOutputs()
	for l := 1; l <= m.Levels; l++ {
		hs := make([]float64, counts[l-1])
		for o := range hs {
			hs[o] = values[m.High(l, o)]
		}
		highs = append(highs, hs)
	}
	finalLow = make([]float64, counts[m.Levels-1])
	for o := range finalLow {
		finalLow[o] = values[m.Low(m.Levels, o)]
	}
	return highs, finalLow
}

// MultiLevelReference computes the transform directly via repeated
// downsampled convolutions.
func MultiLevelReference(x, hLow, hHigh []float64, down, levels int) (highs [][]float64, finalLow []float64) {
	cur := x
	for l := 0; l < levels; l++ {
		highs = append(highs, ConvReference(cur, hHigh, down))
		cur = ConvReference(cur, hLow, down)
	}
	return highs, cur
}
