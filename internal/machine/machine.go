// Package machine executes WRBPG schedules with real arithmetic on a
// simulated two-level memory hierarchy — the end-to-end proof that a
// schedule computes the right numbers inside the fast-memory budget.
//
// A Program attaches an operation to every non-source node of a CDAG
// and initial values to the sources (which live in slow memory, per
// the game's starting condition). Run replays a schedule move by
// move: M1 copies slow → fast, M2 fast → slow, M3 applies the node's
// operation to its parents' fast-memory values, M4 evicts. The
// weighted fast-memory occupancy is enforced on every move, so a
// schedule that cheats the budget fails here exactly as it fails
// core.Simulate.
package machine

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wavelet"
)

// Op computes a node's value from its parents' values (in parent
// order).
type Op func(args []float64) float64

// Program couples a CDAG with per-node operations and source values.
type Program struct {
	G *cdag.Graph
	// Ops[v] is nil for source nodes.
	Ops []Op
	// Inputs[v] holds the initial slow-memory value of each source.
	Inputs map[cdag.NodeID]float64
}

// NewProgram allocates an empty program for a graph.
func NewProgram(g *cdag.Graph) *Program {
	return &Program{G: g, Ops: make([]Op, g.Len()), Inputs: map[cdag.NodeID]float64{}}
}

// Stats summarises an execution.
type Stats struct {
	// TrafficBits is the weighted data moved between memories — it
	// always equals the schedule's weighted cost.
	TrafficBits cdag.Weight
	// PeakFastBits is the high-water mark of fast-memory occupancy.
	PeakFastBits cdag.Weight
	// Computes counts M3 moves executed.
	Computes int
}

// CoreStats converts execution counters to the simulator's stats
// shape, for downstream consumers (e.g. the energy model) that accept
// either source.
func (s Stats) CoreStats() core.Stats {
	return core.Stats{Cost: s.TrafficBits, PeakRedWeight: s.PeakFastBits, Computations: s.Computes}
}

// Run executes a schedule under the budget and returns the
// slow-memory values of all sink nodes plus execution stats.
func Run(p *Program, budget cdag.Weight, sched core.Schedule) (map[cdag.NodeID]float64, Stats, error) {
	g := p.G
	fast := map[cdag.NodeID]float64{}
	slow := map[cdag.NodeID]float64{}
	for _, v := range g.Sources() {
		val, ok := p.Inputs[v]
		if !ok {
			return nil, Stats{}, fmt.Errorf("machine: source %d (%s) has no input value", v, g.Name(v))
		}
		slow[v] = val
	}
	var st Stats
	var fastBits cdag.Weight
	for i, m := range sched {
		v := m.Node
		w := g.Weight(v)
		switch m.Kind {
		case core.M1:
			val, ok := slow[v]
			if !ok {
				return nil, st, fmt.Errorf("machine: step %d: M1(%d) but node not in slow memory", i, v)
			}
			if _, dup := fast[v]; dup {
				return nil, st, fmt.Errorf("machine: step %d: M1(%d) but node already in fast memory", i, v)
			}
			if fastBits+w > budget {
				return nil, st, fmt.Errorf("machine: step %d: M1(%d) overflows fast memory (%d+%d > %d)", i, v, fastBits, w, budget)
			}
			fast[v] = val
			fastBits += w
			st.TrafficBits += w
		case core.M2:
			val, ok := fast[v]
			if !ok {
				return nil, st, fmt.Errorf("machine: step %d: M2(%d) but node not in fast memory", i, v)
			}
			slow[v] = val
			st.TrafficBits += w
		case core.M3:
			if p.Ops[v] == nil {
				return nil, st, fmt.Errorf("machine: step %d: M3(%d) but node has no operation", i, v)
			}
			if _, dup := fast[v]; dup {
				return nil, st, fmt.Errorf("machine: step %d: M3(%d) but node already in fast memory", i, v)
			}
			args := make([]float64, 0, g.InDegree(v))
			for _, par := range g.Parents(v) {
				pv, ok := fast[par]
				if !ok {
					return nil, st, fmt.Errorf("machine: step %d: M3(%d) but parent %d not in fast memory", i, v, par)
				}
				args = append(args, pv)
			}
			if fastBits+w > budget {
				return nil, st, fmt.Errorf("machine: step %d: M3(%d) overflows fast memory", i, v)
			}
			fast[v] = p.Ops[v](args)
			fastBits += w
			st.Computes++
		case core.M4:
			if _, ok := fast[v]; !ok {
				return nil, st, fmt.Errorf("machine: step %d: M4(%d) but node not in fast memory", i, v)
			}
			delete(fast, v)
			fastBits -= w
		default:
			return nil, st, fmt.Errorf("machine: step %d: unknown move kind %v", i, m.Kind)
		}
		if fastBits > st.PeakFastBits {
			st.PeakFastBits = fastBits
		}
	}
	out := map[cdag.NodeID]float64{}
	for _, v := range g.Sinks() {
		val, ok := slow[v]
		if !ok {
			return nil, st, fmt.Errorf("machine: sink %d (%s) not in slow memory at the end", v, g.Name(v))
		}
		out[v] = val
	}
	return out, st, nil
}

// FromDWT builds the executable program of a DWT graph over a signal:
// odd-index nodes average, even-index nodes difference, both with the
// Haar 1/√2 normalisation.
func FromDWT(dg *dwt.Graph, signal []float64) (*Program, error) {
	if len(signal) != dg.N {
		return nil, fmt.Errorf("machine: signal length %d != n=%d", len(signal), dg.N)
	}
	p := NewProgram(dg.G)
	for j, v := range dg.Layers[0] {
		p.Inputs[v] = signal[j]
	}
	avg := func(a []float64) float64 { return (a[0] + a[1]) / wavelet.Sqrt2 }
	diff := func(a []float64) float64 { return (a[0] - a[1]) / wavelet.Sqrt2 }
	for layer := 2; layer <= dg.D+1; layer++ {
		for j, v := range dg.Layers[layer-1] {
			if (j+1)%2 == 1 {
				p.Ops[v] = avg
			} else {
				p.Ops[v] = diff
			}
		}
	}
	return p, nil
}

// FromMVM builds the executable program of an MVM graph over a
// row-major m×n matrix and a length-n vector.
func FromMVM(g *mvm.Graph, mat []float64, vec []float64) (*Program, error) {
	if len(mat) != g.M*g.N {
		return nil, fmt.Errorf("machine: matrix has %d entries, want %d", len(mat), g.M*g.N)
	}
	if len(vec) != g.N {
		return nil, fmt.Errorf("machine: vector has %d entries, want %d", len(vec), g.N)
	}
	p := NewProgram(g.G)
	for c := 1; c <= g.N; c++ {
		p.Inputs[g.X[c-1]] = vec[c-1]
		for r := 1; r <= g.M; r++ {
			p.Inputs[g.A[r-1][c-1]] = mat[(r-1)*g.N+(c-1)]
		}
	}
	mul := func(a []float64) float64 { return a[0] * a[1] }
	add := func(a []float64) float64 { return a[0] + a[1] }
	for r := 1; r <= g.M; r++ {
		for c := 1; c <= g.N; c++ {
			p.Ops[g.Prod[r-1][c-1]] = mul
			if c >= 2 {
				p.Ops[g.Acc[r-1][c-2]] = add
			}
		}
	}
	return p, nil
}

// DWTOutputs reorganises a Run result into per-level coefficient
// slices plus the final averages, matching wavelet.Outputs.
func DWTOutputs(dg *dwt.Graph, values map[cdag.NodeID]float64) (coeffs [][]float64, finalAvg []float64) {
	for layer := 2; layer <= dg.D+1; layer++ {
		l := dg.Layers[layer-1]
		cs := make([]float64, 0, len(l)/2)
		for j := 2; j <= len(l); j += 2 {
			cs = append(cs, values[l[j-1]])
		}
		coeffs = append(coeffs, cs)
	}
	last := dg.Layers[dg.D]
	for j := 1; j <= len(last); j += 2 {
		finalAvg = append(finalAvg, values[last[j-1]])
	}
	return coeffs, finalAvg
}

// MVMOutputs extracts y = A·x from a Run result in row order.
func MVMOutputs(g *mvm.Graph, values map[cdag.NodeID]float64) []float64 {
	out := make([]float64, g.M)
	for r := 1; r <= g.M; r++ {
		out[r-1] = values[g.Output(r)]
	}
	return out
}
