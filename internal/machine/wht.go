package machine

import (
	"fmt"
	"wrbpg/internal/cdag"

	"wrbpg/internal/fft"
)

// FromWHT builds an executable Walsh–Hadamard transform over the
// radix-2 butterfly graph of package fft: each butterfly maps its
// parent pair (a, b) to (a+b, a−b). The WHT shares the FFT's exact
// dataflow with ±1 twiddles, which keeps execution real-valued.
func FromWHT(g *fft.Graph, x []float64) (*Program, error) {
	if len(x) != g.N {
		return nil, fmt.Errorf("machine: signal length %d != n=%d", len(x), g.N)
	}
	p := NewProgram(g.G)
	for j, v := range g.Stages[0] {
		p.Inputs[v] = x[j]
	}
	// Parents are ordered (self, partner): the low member of a pair
	// adds, the high member subtracts (partner − is the low value).
	add := func(a []float64) float64 { return a[0] + a[1] }
	subRev := func(a []float64) float64 { return a[1] - a[0] }
	for s := 1; s <= g.K; s++ {
		bit := 1 << uint(s-1)
		for j, v := range g.Stages[s] {
			if j&bit == 0 {
				p.Ops[v] = add
			} else {
				p.Ops[v] = subRev
			}
		}
	}
	return p, nil
}

// WHTOutputs extracts the transform result in index order.
func WHTOutputs(g *fft.Graph, values map[cdag.NodeID]float64) []float64 {
	out := make([]float64, g.N)
	for j, v := range g.Stages[g.K] {
		out[j] = values[v]
	}
	return out
}

// WHTReference computes the Walsh–Hadamard transform directly from
// the Kronecker recursion H_{2n} = [[H, H], [H, −H]] — an independent
// O(n²) check for the machine-executed butterflies.
func WHTReference(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for r := 0; r < n; r++ {
		var s float64
		for c := 0; c < n; c++ {
			// H[r][c] = (−1)^{popcount(r & c)}
			if popcount(r&c)%2 == 0 {
				s += x[c]
			} else {
				s -= x[c]
			}
		}
		out[r] = s
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		n += x & 1
		x >>= 1
	}
	return n
}
