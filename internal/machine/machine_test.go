package machine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/linalg"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

const tol = 1e-9

func randSignal(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// TestDWTExecutionMatchesReference: the optimum schedule at minimum
// memory computes exactly the Haar transform.
func TestDWTExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, nd := range []struct{ n, d int }{{4, 1}, {4, 2}, {16, 4}, {64, 6}, {256, 8}} {
			g, err := dwt.Build(nd.n, nd.d, dwt.ConfigWeights(cfg))
			if err != nil {
				t.Fatal(err)
			}
			s, err := dwt.NewScheduler(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.MinMemory(16)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := s.Schedule(b)
			if err != nil {
				t.Fatal(err)
			}
			signal := randSignal(rng, nd.n)
			prog, err := FromDWT(g, signal)
			if err != nil {
				t.Fatal(err)
			}
			values, stats, err := Run(prog, b, sched)
			if err != nil {
				t.Fatalf("%s DWT(%d,%d): %v", cfg.Name, nd.n, nd.d, err)
			}
			if stats.PeakFastBits > b {
				t.Fatalf("peak fast %d > budget %d", stats.PeakFastBits, b)
			}
			levels, err := wavelet.Transform(signal, nd.d)
			if err != nil {
				t.Fatal(err)
			}
			wantC, wantA := wavelet.Outputs(levels)
			gotC, gotA := DWTOutputs(g, values)
			for l := range wantC {
				for j := range wantC[l] {
					if math.Abs(gotC[l][j]-wantC[l][j]) > tol {
						t.Fatalf("%s DWT(%d,%d) level %d coeff %d: got %g want %g", cfg.Name, nd.n, nd.d, l+1, j, gotC[l][j], wantC[l][j])
					}
				}
			}
			for j := range wantA {
				if math.Abs(gotA[j]-wantA[j]) > tol {
					t.Fatalf("final avg %d: got %g want %g", j, gotA[j], wantA[j])
				}
			}
		}
	}
}

// TestMVMExecutionMatchesReference: tiling schedules compute A·x.
func TestMVMExecutionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range []struct{ m, n int }{{2, 1}, {3, 2}, {2, 3}, {8, 6}, {16, 12}} {
			g, err := mvm.Build(d.m, d.n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b := g.MinMemory()
			tc, _, err := g.Search(b)
			if err != nil {
				t.Fatal(err)
			}
			sched, err := g.TileSchedule(tc)
			if err != nil {
				t.Fatal(err)
			}
			mat := randSignal(rng, d.m*d.n)
			vec := randSignal(rng, d.n)
			prog, err := FromMVM(g, mat, vec)
			if err != nil {
				t.Fatal(err)
			}
			values, stats, err := Run(prog, b, sched)
			if err != nil {
				t.Fatalf("%s MVM(%d,%d): %v", cfg.Name, d.m, d.n, err)
			}
			got := MVMOutputs(g, values)
			A := &linalg.Matrix{Rows: d.m, Cols: d.n, Data: mat}
			want, err := A.MulVec(vec)
			if err != nil {
				t.Fatal(err)
			}
			diff, err := linalg.MaxAbsDiff(got, want)
			if err != nil {
				t.Fatal(err)
			}
			if diff > tol {
				t.Fatalf("%s MVM(%d,%d): max diff %g", cfg.Name, d.m, d.n, diff)
			}
			if stats.TrafficBits != g.PredictCost(tc) {
				t.Errorf("traffic %d != predicted cost %d", stats.TrafficBits, g.PredictCost(tc))
			}
		}
	}
}

// TestBaselineExecutionMatchesReference: the layer-by-layer schedule
// also computes correct results (validity ≠ optimality).
func TestBaselineExecutionMatchesReference(t *testing.T) {
	g, err := dwt.Build(16, 4, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		t.Fatal(err)
	}
	b := core.MinExistenceBudget(g.G) + 64
	sched, err := baseline.LayerByLayer(g.G, g.Layers, b)
	if err != nil {
		t.Fatal(err)
	}
	signal := randSignal(rand.New(rand.NewSource(3)), 16)
	prog, err := FromDWT(g, signal)
	if err != nil {
		t.Fatal(err)
	}
	values, _, err := Run(prog, b, sched)
	if err != nil {
		t.Fatal(err)
	}
	levels, _ := wavelet.Transform(signal, 4)
	wantC, _ := wavelet.Outputs(levels)
	gotC, _ := DWTOutputs(g, values)
	for l := range wantC {
		for j := range wantC[l] {
			if math.Abs(gotC[l][j]-wantC[l][j]) > tol {
				t.Fatalf("level %d coeff %d: got %g want %g", l+1, j, gotC[l][j], wantC[l][j])
			}
		}
	}
}

// TestTrafficEqualsScheduleCost: machine traffic always equals the
// simulator's weighted cost.
func TestTrafficEqualsScheduleCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := dwt.Build(8, 3, dwt.ConfigWeights(wcfg.Equal(16)))
		if err != nil {
			return false
		}
		s, err := dwt.NewScheduler(g)
		if err != nil {
			return false
		}
		b := core.MinExistenceBudget(g.G) + cdag.Weight(rng.Intn(10))*16
		sched, err := s.Schedule(b)
		if err != nil {
			return false
		}
		stats, err := core.Simulate(g.G, b, sched)
		if err != nil {
			return false
		}
		prog, err := FromDWT(g, randSignal(rng, 8))
		if err != nil {
			return false
		}
		_, ms, err := Run(prog, b, sched)
		return err == nil && ms.TrafficBits == stats.Cost && ms.PeakFastBits == stats.PeakRedWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestBudgetEnforced: shrinking the budget below the schedule's peak
// fails execution.
func TestBudgetEnforced(t *testing.T) {
	g, err := dwt.Build(8, 3, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MinMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := FromDWT(g, randSignal(rand.New(rand.NewSource(4)), 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(prog, b-16, sched); err == nil {
		t.Error("running above budget should fail")
	}
}

// TestRunErrors: malformed schedules are rejected with specific
// errors.
func TestRunErrors(t *testing.T) {
	g := &cdag.Graph{}
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b")
	c := g.AddNode(1, "c", a, b)
	prog := NewProgram(g)
	prog.Inputs[a] = 1
	prog.Inputs[b] = 2
	prog.Ops[c] = func(x []float64) float64 { return x[0] + x[1] }

	cases := []struct {
		name  string
		moves core.Schedule
	}{
		{"M1 of non-slow node", core.Schedule{{Kind: core.M1, Node: c}}},
		{"M3 without parents", core.Schedule{{Kind: core.M3, Node: c}}},
		{"M2 of non-fast node", core.Schedule{{Kind: core.M2, Node: a}}},
		{"M4 of non-fast node", core.Schedule{{Kind: core.M4, Node: a}}},
		{"missing sink store", core.Schedule{
			{Kind: core.M1, Node: a}, {Kind: core.M1, Node: b}, {Kind: core.M3, Node: c},
		}},
	}
	for _, tc := range cases {
		if _, _, err := Run(prog, 100, tc.moves); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// A correct schedule succeeds and computes 3.
	ok := core.Schedule{
		{Kind: core.M1, Node: a}, {Kind: core.M1, Node: b}, {Kind: core.M3, Node: c},
		{Kind: core.M2, Node: c}, {Kind: core.M4, Node: a}, {Kind: core.M4, Node: b}, {Kind: core.M4, Node: c},
	}
	vals, _, err := Run(prog, 100, ok)
	if err != nil {
		t.Fatal(err)
	}
	if vals[c] != 3 {
		t.Errorf("c = %f, want 3", vals[c])
	}
}

// TestMissingInput: a source without a value is caught up front.
func TestMissingInput(t *testing.T) {
	g := &cdag.Graph{}
	a := g.AddNode(1, "a")
	g.AddNode(1, "b", a)
	prog := NewProgram(g)
	if _, _, err := Run(prog, 10, nil); err == nil {
		t.Error("expected missing-input error")
	}
}

func TestFromDWTRejectsWrongLength(t *testing.T) {
	g, err := dwt.Build(8, 3, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromDWT(g, make([]float64, 7)); err == nil {
		t.Error("expected length error")
	}
}

func TestFromMVMRejectsWrongShapes(t *testing.T) {
	g, err := mvm.Build(3, 2, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromMVM(g, make([]float64, 5), make([]float64, 2)); err == nil {
		t.Error("expected matrix size error")
	}
	if _, err := FromMVM(g, make([]float64, 6), make([]float64, 3)); err == nil {
		t.Error("expected vector size error")
	}
}
