package machine

import (
	"fmt"

	"wrbpg/internal/banded"
	"wrbpg/internal/cdag"
)

// FromBanded builds an executable banded matrix-vector product. The
// matrix is supplied in per-row band order: entries[i-1] holds
// a_{i,lo(i)} … a_{i,hi(i)}.
func FromBanded(g *banded.Graph, entries [][]float64, x []float64) (*Program, error) {
	if len(x) != g.N {
		return nil, fmt.Errorf("machine: vector length %d != n=%d", len(x), g.N)
	}
	if len(entries) != g.N {
		return nil, fmt.Errorf("machine: %d rows of entries, want %d", len(entries), g.N)
	}
	p := NewProgram(g.G)
	for j := 1; j <= g.N; j++ {
		p.Inputs[g.X[j-1]] = x[j-1]
	}
	mul := func(a []float64) float64 { return a[0] * a[1] }
	add := func(a []float64) float64 { return a[0] + a[1] }
	for i := 1; i <= g.N; i++ {
		lo, hi := g.Band(i)
		if len(entries[i-1]) != hi-lo+1 {
			return nil, fmt.Errorf("machine: row %d has %d entries, want %d", i, len(entries[i-1]), hi-lo+1)
		}
		for j := lo; j <= hi; j++ {
			p.Inputs[g.A[i-1][j-lo]] = entries[i-1][j-lo]
			p.Ops[g.Prod[i-1][j-lo]] = mul
		}
		for c := range g.Acc[i-1] {
			p.Ops[g.Acc[i-1][c]] = add
		}
	}
	return p, nil
}

// BandedOutputs extracts y in row order.
func BandedOutputs(g *banded.Graph, values map[cdag.NodeID]float64) []float64 {
	out := make([]float64, g.N)
	for i := 1; i <= g.N; i++ {
		out[i-1] = values[g.Output(i)]
	}
	return out
}

// BandedReference computes the banded product directly.
func BandedReference(g *banded.Graph, entries [][]float64, x []float64) []float64 {
	out := make([]float64, g.N)
	for i := 1; i <= g.N; i++ {
		lo, hi := g.Band(i)
		var s float64
		for j := lo; j <= hi; j++ {
			s += entries[i-1][j-lo] * x[j-1]
		}
		out[i-1] = s
	}
	return out
}
