package machine

import (
	"fmt"

	"wrbpg/internal/cdag"

	"wrbpg/internal/mmm"
)

// FromMMM builds an executable matrix-matrix product over an
// mmm.Graph: A is row-major m×k, B row-major k×n.
func FromMMM(g *mmm.Graph, a, b []float64) (*Program, error) {
	if len(a) != g.M*g.K {
		return nil, fmt.Errorf("machine: A has %d entries, want %d", len(a), g.M*g.K)
	}
	if len(b) != g.K*g.N {
		return nil, fmt.Errorf("machine: B has %d entries, want %d", len(b), g.K*g.N)
	}
	p := NewProgram(g.G)
	for i := 1; i <= g.M; i++ {
		for l := 1; l <= g.K; l++ {
			p.Inputs[g.A[i-1][l-1]] = a[(i-1)*g.K+(l-1)]
		}
	}
	for l := 1; l <= g.K; l++ {
		for j := 1; j <= g.N; j++ {
			p.Inputs[g.B[l-1][j-1]] = b[(l-1)*g.N+(j-1)]
		}
	}
	mul := func(x []float64) float64 { return x[0] * x[1] }
	add := func(x []float64) float64 { return x[0] + x[1] }
	for i := 1; i <= g.M; i++ {
		for j := 1; j <= g.N; j++ {
			for l := 1; l <= g.K; l++ {
				p.Ops[g.Prod[i-1][j-1][l-1]] = mul
				if l >= 2 {
					p.Ops[g.Acc[i-1][j-1][l-2]] = add
				}
			}
		}
	}
	return p, nil
}

// MMMOutputs extracts C = A·B in row-major order from a Run result.
func MMMOutputs(g *mmm.Graph, values map[cdag.NodeID]float64) []float64 {
	out := make([]float64, g.M*g.N)
	for i := 1; i <= g.M; i++ {
		for j := 1; j <= g.N; j++ {
			out[(i-1)*g.N+(j-1)] = values[g.Output(i, j)]
		}
	}
	return out
}
