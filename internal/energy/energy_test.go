package energy

import (
	"strings"
	"testing"

	"wrbpg/internal/baseline"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/memdesign"
	"wrbpg/internal/synth"
	"wrbpg/internal/wcfg"
)

func TestEstimateBasics(t *testing.T) {
	m, err := synth.Synthesize(256, 16, synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}
	p := Default65nm()
	stats := core.Stats{Cost: 8192, Computations: 510}
	r, err := Estimate(stats, 1788, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.TransferPJ != 8192*p.TransferPJPerBit {
		t.Errorf("transfer = %f", r.TransferPJ)
	}
	if r.TotalPJ <= r.TransferPJ || r.TotalPJ <= r.LeakagePJ {
		t.Error("total must exceed each component")
	}
	if r.Seconds <= 0 || r.AvgPowerMW <= 0 {
		t.Error("time/power must be positive")
	}
	if !strings.Contains(r.String(), "nJ") {
		t.Errorf("String = %q", r.String())
	}
}

func TestEstimateErrors(t *testing.T) {
	m, _ := synth.Synthesize(256, 16, synth.TSMC65())
	if _, err := Estimate(core.Stats{}, 0, m, Default65nm()); err == nil {
		t.Error("zero moves accepted")
	}
	bad := Default65nm()
	bad.ClockHz = 0
	if _, err := Estimate(core.Stats{}, 10, m, bad); err == nil {
		t.Error("zero clock accepted")
	}
}

// TestOptimumBeatsBaselineEndToEnd: the paper's bottom line in energy
// terms — the optimum DWT schedule on its small memory consumes less
// total energy than layer-by-layer on its large one.
func TestOptimumBeatsBaselineEndToEnd(t *testing.T) {
	cfg := wcfg.Equal(16)
	g, err := dwt.Build(256, 8, dwt.ConfigWeights(cfg))
	if err != nil {
		t.Fatal(err)
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	optB, err := s.MinMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	optSched, err := s.Schedule(optB)
	if err != nil {
		t.Fatal(err)
	}
	optStats, err := core.Simulate(g.G, optB, optSched)
	if err != nil {
		t.Fatal(err)
	}
	optMacro, err := synth.Synthesize(memdesign.NewSpec(optB, 16).Pow2Bits, 16, synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}

	lblB, err := baseline.MinMemory(g.G, g.Layers, 16)
	if err != nil {
		t.Fatal(err)
	}
	lblSched, err := baseline.LayerByLayer(g.G, g.Layers, lblB)
	if err != nil {
		t.Fatal(err)
	}
	lblStats, err := core.Simulate(g.G, lblB, lblSched)
	if err != nil {
		t.Fatal(err)
	}
	lblMacro, err := synth.Synthesize(memdesign.NewSpec(lblB, 16).Pow2Bits, 16, synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}

	p := Default65nm()
	opt, err := Estimate(optStats, len(optSched), optMacro, p)
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := Estimate(lblStats, len(lblSched), lblMacro, p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalPJ >= lbl.TotalPJ {
		t.Errorf("optimum energy %f pJ not below baseline %f pJ", opt.TotalPJ, lbl.TotalPJ)
	}
	if red := Compare(opt, lbl); red <= 0 || red >= 100 {
		t.Errorf("reduction = %f%%", red)
	}
}

// TestLeakageDominatesOnBigMemory: with the large baseline macro,
// leakage is a significant share — the thermal argument.
func TestLeakageShare(t *testing.T) {
	m, err := synth.Synthesize(8192, 16, synth.TSMC65())
	if err != nil {
		t.Fatal(err)
	}
	stats := core.Stats{Cost: 12288, Computations: 510}
	r, err := Estimate(stats, 5000, m, Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	if r.LeakagePJ/r.TotalPJ < 0.2 {
		t.Errorf("leakage share = %.2f; expected the big macro to leak heavily", r.LeakagePJ/r.TotalPJ)
	}
}

func TestCompareDegenerate(t *testing.T) {
	if Compare(Report{TotalPJ: 5}, Report{}) != 0 {
		t.Error("zero denominator should yield 0")
	}
}
