// Package energy turns schedules and synthesized memories into
// end-to-end energy and thermal estimates — the quantity the paper's
// domain actually constrains: "implanted BCIs that even slightly
// increase brain temperature can induce seizures, or long-term
// neurological damage, making power efficiency paramount"
// (Section 1). The weighted schedule cost "minimizes the total data
// transferred, and by extension, the energy cost of the schedule"
// (Section 2); this package makes the extension explicit.
//
// The model charges every bit moved between memories with a transfer
// energy, every computation with an operation energy, and the fast
// memory with its synthesized leakage for the kernel's duration:
//
//	E = cost_bits·E_xfer + computes·E_op + P_leak·T
//
// The slow memory (non-volatile, per Section 1) costs energy per
// access but no standby power in this model.
package energy

import (
	"fmt"

	"wrbpg/internal/core"
	"wrbpg/internal/synth"
)

// Params are the per-event energies and timing of the model.
type Params struct {
	// TransferPJPerBit is the energy to move one bit between fast
	// and slow memory (wire + slow-memory access), in picojoules.
	TransferPJPerBit float64
	// OpPJ is the energy of one compute node evaluation (M3), pJ.
	OpPJ float64
	// FastAccessPJPerBit is the fast-memory read/write energy per
	// bit touched by a compute (operands + result), pJ.
	FastAccessPJPerBit float64
	// ClockHz is the execution rate: one schedule move per cycle, the
	// granularity of the asynchronous pipeline the paper's domain
	// uses.
	ClockHz float64
}

// Default65nm returns parameters in the ballpark of 65 nm embedded
// design practice: on-chip SRAM accesses cost ~0.1 pJ/bit, off-macro
// transfers to non-volatile memory an order of magnitude more, and a
// 16-bit MAC a few pJ.
func Default65nm() Params {
	return Params{
		TransferPJPerBit:   1.5,
		OpPJ:               2.0,
		FastAccessPJPerBit: 0.1,
		ClockHz:            20e6,
	}
}

// Report is the energy breakdown of one schedule execution.
type Report struct {
	// Moves is the schedule length; Seconds the execution time at the
	// model's clock.
	Moves   int
	Seconds float64
	// TransferPJ, ComputePJ, LeakagePJ are the three energy terms;
	// TotalPJ their sum.
	TransferPJ, ComputePJ, LeakagePJ, TotalPJ float64
	// AvgPowerMW is TotalPJ over the execution time.
	AvgPowerMW float64
}

// Estimate combines schedule statistics with a synthesized macro.
func Estimate(stats core.Stats, moves int, m synth.Macro, p Params) (Report, error) {
	if p.ClockHz <= 0 {
		return Report{}, fmt.Errorf("energy: clock must be positive")
	}
	if moves <= 0 {
		return Report{}, fmt.Errorf("energy: schedule has no moves")
	}
	r := Report{Moves: moves}
	r.Seconds = float64(moves) / p.ClockHz
	r.TransferPJ = float64(stats.Cost) * p.TransferPJPerBit
	// Each compute touches roughly three fast-memory words of the
	// macro's width (two operands, one result).
	r.ComputePJ = float64(stats.Computations) * (p.OpPJ + 3*float64(m.WordBits)*p.FastAccessPJPerBit)
	r.LeakagePJ = m.LeakageMW * 1e9 * r.Seconds // mW · s = mJ; ×1e9 → pJ
	r.TotalPJ = r.TransferPJ + r.ComputePJ + r.LeakagePJ
	r.AvgPowerMW = r.TotalPJ * 1e-9 / r.Seconds
	return r, nil
}

func (r Report) String() string {
	return fmt.Sprintf("%.1f nJ total (%.1f transfer + %.1f compute + %.1f leakage) over %.1f µs, %.3f mW avg",
		r.TotalPJ/1e3, r.TransferPJ/1e3, r.ComputePJ/1e3, r.LeakagePJ/1e3, r.Seconds*1e6, r.AvgPowerMW)
}

// Compare returns the percent total-energy reduction of a versus b.
func Compare(a, b Report) float64 {
	if b.TotalPJ <= 0 {
		return 0
	}
	return 100 * (b.TotalPJ - a.TotalPJ) / b.TotalPJ
}
