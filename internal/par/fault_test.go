package par

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wrbpg/internal/guard"
)

// TestMapPanicIsolated: a panicking worker must surface as a
// *PanicError naming the offending item, not crash the process, on
// both the serial and the pooled path.
func TestMapPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		in := []int{10, 20, 30, 40, 50, 60, 70, 80}
		_, err := Map(workers, in, func(x int) (int, error) {
			if x == 30 {
				panic("injected worker crash")
			}
			return x, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 2 {
			t.Fatalf("workers=%d: PanicError.Index = %d, want 2", workers, pe.Index)
		}
		if !strings.Contains(pe.Error(), "injected worker crash") {
			t.Fatalf("workers=%d: error text %q lacks panic value", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError.Stack empty", workers)
		}
	}
}

// TestFaultHookPanic: the injection hook deterministically crashes a
// chosen item; the pool survives and reports that item.
func TestFaultHookPanic(t *testing.T) {
	restore := SetFaultHook(func(i int) {
		if i == 5 {
			panic("hooked fault on item 5")
		}
	})
	defer restore()
	in := make([]int, 16)
	_, err := Map(4, in, func(x int) (int, error) { return x, nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 5 {
		t.Fatalf("PanicError.Index = %d, want 5", pe.Index)
	}
	restore()
	if _, err := Map(4, in, func(x int) (int, error) { return x, nil }); err != nil {
		t.Fatalf("after restore: err = %v", err)
	}
}

// TestFaultHookRestoresPrevious: SetFaultHook returns a restore that
// reinstates whatever hook was active before.
func TestFaultHookRestoresPrevious(t *testing.T) {
	var outerCalls atomic.Int64
	restoreOuter := SetFaultHook(func(int) { outerCalls.Add(1) })
	defer restoreOuter()
	restoreInner := SetFaultHook(nil)
	if _, err := Map(2, []int{1, 2}, func(x int) (int, error) { return x, nil }); err != nil {
		t.Fatal(err)
	}
	if outerCalls.Load() != 0 {
		t.Fatal("cleared hook still ran")
	}
	restoreInner()
	if _, err := Map(2, []int{1, 2}, func(x int) (int, error) { return x, nil }); err != nil {
		t.Fatal(err)
	}
	if outerCalls.Load() != 2 {
		t.Fatalf("outer hook ran %d times after restore, want 2", outerCalls.Load())
	}
}

// TestMapCtxCanceledBeforeStart: an already-canceled context aborts
// before any evaluation.
func TestMapCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(ctx, workers, []int{1, 2, 3, 4, 5, 6, 7, 8}, func(x int) (int, error) {
			calls.Add(1)
			return x, nil
		})
		if !errors.Is(err, guard.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want guard.ErrCanceled", workers, err)
		}
	}
	if n := calls.Load(); n > 8 {
		t.Fatalf("%d evaluations after pre-cancellation", n)
	}
}

// TestMapCtxPromptAbort: cancelling mid-flight stops dispatch promptly
// — delayed items keep the pool busy while the context dies, and the
// vast majority of the input must never be evaluated.
func TestMapCtxPromptAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 10000
	in := make([]int, n)
	var calls atomic.Int64
	restore := SetFaultHook(func(i int) {
		calls.Add(1)
		// Hold every worker long enough for the cancellation to land.
		time.Sleep(5 * time.Millisecond)
	})
	defer restore()
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := MapCtx(ctx, 4, in, func(x int) (int, error) { return x, nil })
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
	if c := calls.Load(); c > n/10 {
		t.Fatalf("%d of %d items evaluated after cancellation", c, n)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("MapCtx took %v to abort", d)
	}
}

// TestMapCtxDeadline maps a deadline onto guard.ErrDeadline.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	restore := SetFaultHook(func(int) { time.Sleep(2 * time.Millisecond) })
	defer restore()
	in := make([]int, 1000)
	_, err := MapCtx(ctx, 2, in, func(x int) (int, error) { return x, nil })
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("err = %v, want guard.ErrDeadline", err)
	}
}

// TestMapWorkerErrorBeatsCancellation: when a worker fails and the
// context dies in the same window, the worker's error wins (it is the
// more informative first cause).
func TestMapWorkerErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapCtx(ctx, 2, []int{0, 1, 2, 3}, func(x int) (int, error) {
		if x == 0 {
			cancel()
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
