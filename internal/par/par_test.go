package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out, err := Map(4, in, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range out {
		if y != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, y, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(x int) (int, error) { return x, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapSerialError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Map(1, []int{1, 2, 3, 4}, func(x int) (int, error) {
		calls++
		if x == 2 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("serial path evaluated %d jobs after error, want 2", calls)
	}
}

// TestMapEarlyAbort: after the first failure no queued job should be
// evaluated. The first job fails immediately while holding all other
// workers at a gate, so all remaining jobs must be skipped.
func TestMapEarlyAbort(t *testing.T) {
	const n = 1000
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	boom := errors.New("boom")
	gate := make(chan struct{})
	var calls atomic.Int64
	_, err := Map(4, in, func(x int) (int, error) {
		calls.Add(1)
		if x == 0 {
			defer close(gate)
			return 0, boom
		}
		<-gate
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Worker count jobs may already be in flight when the error lands;
	// everything else must have been skipped.
	if c := calls.Load(); c > 8 {
		t.Fatalf("%d jobs evaluated after early error, want ≤ 8", c)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	in := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(4, in, func(x int) (int, error) {
		if x%2 == 1 {
			time.Sleep(time.Millisecond)
			return 0, fmt.Errorf("err-%d", x)
		}
		return x, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, parts int
		want     [][2]int
	}{
		{0, 4, nil},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{6, 2, [][2]int{{0, 3}, {3, 6}}},
	}
	for _, c := range cases {
		got := Chunks(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			}
		}
	}
	// Chunks cover [0,n) exactly for a spread of shapes.
	for n := 1; n <= 17; n++ {
		for parts := 1; parts <= 6; parts++ {
			cs := Chunks(n, parts)
			pos := 0
			for _, c := range cs {
				if c[0] != pos || c[1] <= c[0] {
					t.Fatalf("Chunks(%d,%d) = %v not contiguous", n, parts, cs)
				}
				pos = c[1]
			}
			if pos != n {
				t.Fatalf("Chunks(%d,%d) covers [0,%d), want [0,%d)", n, parts, pos, n)
			}
		}
	}
}
