// Package par provides the bounded worker pool shared by the
// experiment sweeps (internal/bench), the mvm tile search, and the
// memdesign budget sweeps. It lives below all of them so that packages
// bench depends on can use it without an import cycle.
//
// Workers are crash-isolated: a panic inside f is recovered and
// surfaced as a *PanicError naming the offending item and carrying the
// recovery-time stack, instead of killing the process. MapCtx
// additionally stops dispatching when the context is canceled; the
// cancellation is visible to in-flight workers through whatever
// context their closure captured (hand them the same ctx).
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wrbpg/internal/guard"
	"wrbpg/internal/obs"
)

// Worker-pool observability: items evaluated, panics recovered, and
// cumulative busy time across all workers (busy seconds divided by
// wall time and GOMAXPROCS gives pool utilization). Items are
// coarse-grained (a solve, a sweep point), so two clock reads per item
// are noise.
var (
	tasksTotal  = obs.Default.Counter("wrbpg_par_tasks_total", "Worker-pool items evaluated.")
	panicsTotal = obs.Default.Counter("wrbpg_par_panics_total", "Worker panics recovered as *par.PanicError.")
	busyNanos   atomic.Int64
)

func init() {
	obs.Default.CounterFunc("wrbpg_par_busy_seconds_total",
		"Cumulative worker busy time across the pool.",
		func() float64 { return float64(busyNanos.Load()) / 1e9 })
}

// PanicError wraps a panic recovered inside a worker: the index of the
// input item whose evaluation panicked, the recovered value, and the
// stack captured at recovery time.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic on item %d: %v\n%s", e.Index, e.Value, e.Stack)
}

// faultHook, when installed, runs before each item is evaluated — a
// deterministic fault-injection point for tests (panic or delay chosen
// items). It must be safe for concurrent use.
var faultHook atomic.Pointer[func(index int)]

// SetFaultHook installs a test-only fault-injection hook called with
// each item's index before f runs, and returns a restore function.
// Pass the hook a panic or a sleep to simulate crashing or hung
// workers. SetFaultHook(nil) clears the hook.
func SetFaultHook(h func(index int)) (restore func()) {
	var prev *func(index int)
	if h == nil {
		prev = faultHook.Swap(nil)
	} else {
		prev = faultHook.Swap(&h)
	}
	return func() { faultHook.Store(prev) }
}

// Fault invokes the installed fault hook for item index i, or does
// nothing when no hook is installed. Serial iteration points outside
// the pool (session budget sweeps) call it per item so the same
// SetFaultHook tests exercise them; callers are expected to recover
// the hook's panic exactly as the pool workers do.
func Fault(i int) {
	if h := faultHook.Load(); h != nil {
		(*h)(i)
	}
}

// Map evaluates f over every input on a bounded worker pool and
// returns the outputs in input order. workers ≤ 0 selects
// GOMAXPROCS. The first error wins: once any job fails, the producer
// stops submitting new work, the remaining workers drain, and Map
// returns that error — jobs not yet started are never evaluated.
// A panicking f surfaces as a *PanicError, not a process crash.
func Map[I, O any](workers int, in []I, f func(I) (O, error)) ([]O, error) {
	return MapCtx(context.Background(), workers, in, f)
}

// MapCtx is Map under a context: once ctx is done, no further job is
// dispatched, the pool drains, and the typed cancellation reason
// (guard.ErrCanceled / guard.ErrDeadline) is returned — unless a
// worker failed first, in which case that error wins as in Map.
// In-flight evaluations are not preempted (Go cannot kill a
// goroutine); long-running f bodies should capture ctx and check it.
func MapCtx[I, O any](ctx context.Context, workers int, in []I, f func(I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]O, len(in))
	if len(in) == 0 {
		return out, nil
	}
	eval := func(i int) (err error) {
		start := time.Now()
		tasksTotal.Inc()
		defer func() {
			busyNanos.Add(int64(time.Since(start)))
			if r := recover(); r != nil {
				panicsTotal.Inc()
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		if h := faultHook.Load(); h != nil {
			(*h)(i)
		}
		y, err := f(in[i])
		if err != nil {
			return err
		}
		out[i] = y
		return nil
	}
	if workers <= 1 {
		for i := range in {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			if err := eval(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		stop.Store(true)
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stop.Load() {
					continue // drain without evaluating
				}
				if err := eval(i); err != nil {
					fail(err)
				}
			}
		}()
	}
	var ctxAbort error
	done := ctx.Done()
produce:
	for i := range in {
		if stop.Load() {
			break
		}
		select {
		case <-done:
			ctxAbort = guard.Wrap(ctx.Err())
			stop.Store(true)
			break produce
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	// A worker's own failure is more informative than the cancellation
	// that raced with it; keep the original first-error-wins contract.
	if firstErr != nil {
		return nil, firstErr
	}
	if ctxAbort != nil {
		return nil, ctxAbort
	}
	return out, nil
}

// ctxErr polls ctx without blocking, mapping the reason onto the
// guard taxonomy.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return guard.Wrap(ctx.Err())
	default:
		return nil
	}
}

// Chunks splits the half-open index range [0, n) into at most parts
// contiguous chunks of near-equal length, returned as [lo, hi) pairs.
// Useful for handing each worker a contiguous slice when per-item
// dispatch is too fine-grained (e.g. one stateful scheduler per chunk).
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = runtime.GOMAXPROCS(0)
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		size := n / parts
		if i < n%parts {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
