// Package par provides the bounded worker pool shared by the
// experiment sweeps (internal/bench), the mvm tile search, and the
// memdesign budget sweeps. It lives below all of them so that packages
// bench depends on can use it without an import cycle.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map evaluates f over every input on a bounded worker pool and
// returns the outputs in input order. workers ≤ 0 selects
// GOMAXPROCS. The first error wins: once any job fails, the producer
// stops submitting new work, the remaining workers drain, and Map
// returns that error — jobs not yet started are never evaluated.
func Map[I, O any](workers int, in []I, f func(I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]O, len(in))
	if len(in) == 0 {
		return out, nil
	}
	if workers <= 1 {
		for i, x := range in {
			y, err := f(x)
			if err != nil {
				return nil, err
			}
			out[i] = y
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stop.Load() {
					continue // drain without evaluating
				}
				y, err := f(in[i])
				if err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = y
			}
		}()
	}
	for i := range in {
		if stop.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Chunks splits the half-open index range [0, n) into at most parts
// contiguous chunks of near-equal length, returned as [lo, hi) pairs.
// Useful for handing each worker a contiguous slice when per-item
// dispatch is too fine-grained (e.g. one stateful scheduler per chunk).
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = runtime.GOMAXPROCS(0)
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		size := n / parts
		if i < n%parts {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
