package banded

import (
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wcfg"
)

func buildOrFatal(t *testing.T, n, w int, cfg wcfg.Config) *Graph {
	t.Helper()
	g, err := Build(n, w, cfg)
	if err != nil {
		t.Fatalf("Build(%d,%d): %v", n, w, err)
	}
	return g
}

func TestBuildRejectsBadParams(t *testing.T) {
	eq := wcfg.Equal(16)
	for _, d := range [][2]int{{1, 0}, {4, -1}, {4, 4}, {0, 0}} {
		if _, err := Build(d[0], d[1], eq); err == nil {
			t.Errorf("Build(%v) should fail", d)
		}
	}
}

func TestBandRanges(t *testing.T) {
	g := buildOrFatal(t, 6, 2, wcfg.Equal(16))
	cases := map[int][2]int{1: {1, 3}, 2: {1, 4}, 3: {1, 5}, 4: {2, 6}, 6: {4, 6}}
	for i, want := range cases {
		lo, hi := g.Band(i)
		if lo != want[0] || hi != want[1] {
			t.Errorf("Band(%d) = [%d,%d], want %v", i, lo, hi, want)
		}
	}
	if g.NNZ() != 3+4+5+5+4+3 {
		t.Errorf("NNZ = %d", g.NNZ())
	}
}

func TestDiagonalCase(t *testing.T) {
	// W = 0: one product per row, products are the outputs.
	g := buildOrFatal(t, 4, 0, wcfg.Equal(16))
	if g.NNZ() != 4 {
		t.Fatalf("NNZ = %d", g.NNZ())
	}
	for i := 1; i <= 4; i++ {
		if g.Output(i) != g.Prod[i-1][0] {
			t.Errorf("diagonal output %d should be the product", i)
		}
	}
	sched := g.Schedule()
	cost, peak := g.Metrics()
	stats, err := core.Simulate(g.G, peak, sched)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cost != cost || cost != core.LowerBound(g.G) {
		t.Errorf("diagonal cost = %d, LB %d", cost, core.LowerBound(g.G))
	}
}

// TestScheduleValidAndLB: the sliding-window schedule always
// validates at its own peak and performs compulsory-only I/O.
func TestScheduleValidAndLB(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range [][2]int{{4, 0}, {4, 1}, {8, 2}, {8, 7}, {16, 3}} {
			g := buildOrFatal(t, d[0], d[1], cfg)
			sched := g.Schedule()
			cost, peak := g.Metrics()
			stats, err := core.Simulate(g.G, peak, sched)
			if err != nil {
				t.Fatalf("%s Banded%v: %v", cfg.Name, d, err)
			}
			if stats.Cost != cost || stats.PeakRedWeight != peak {
				t.Errorf("%s Banded%v: metrics (%d,%d) vs simulated (%d,%d)",
					cfg.Name, d, cost, peak, stats.Cost, stats.PeakRedWeight)
			}
			if cost != core.LowerBound(g.G) {
				t.Errorf("%s Banded%v: cost %d != LB %d", cfg.Name, d, cost, core.LowerBound(g.G))
			}
			// One word less must fail.
			if _, err := core.Simulate(g.G, peak-1, sched); err == nil {
				t.Errorf("%s Banded%v: schedule valid below its peak", cfg.Name, d)
			}
		}
	}
}

// TestMemoryScalesWithBandNotSize: the headline structural result —
// for fixed W, minimum memory is flat in n; the dense scheduler's
// grows linearly.
func TestMemoryScalesWithBandNotSize(t *testing.T) {
	cfg := wcfg.Equal(16)
	m16 := buildOrFatal(t, 16, 2, cfg).MinMemory()
	m64 := buildOrFatal(t, 64, 2, cfg).MinMemory()
	m256 := buildOrFatal(t, 256, 2, cfg).MinMemory()
	if m64 != m16 || m256 != m16 {
		t.Errorf("banded min memory should be flat in n: %d %d %d", m16, m64, m256)
	}
	// Dense comparison: MVM(n,n) minimum grows with n.
	d16, err := mvm.Build(16, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d64, err := mvm.Build(64, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d64.MinMemory() <= d16.MinMemory() {
		t.Error("dense min memory should grow with n")
	}
	if m256 >= d64.MinMemory() {
		t.Errorf("banded(256,W=2) %d should undercut dense(64) %d", m256, d64.MinMemory())
	}
}

// TestMemoryGrowsWithBand: for fixed n, widening the band raises the
// window.
func TestMemoryGrowsWithBand(t *testing.T) {
	cfg := wcfg.Equal(16)
	prev := cdag.Weight(0)
	for w := 0; w <= 7; w++ {
		m := buildOrFatal(t, 16, w, cfg).MinMemory()
		if m < prev {
			t.Fatalf("min memory decreased at W=%d", w)
		}
		prev = m
	}
}

// TestFullBandMatchesDenseLB: W = n−1 is the dense MVM; costs agree
// with the dense lower bound for the same shape.
func TestFullBandMatchesDenseLB(t *testing.T) {
	cfg := wcfg.Equal(16)
	g := buildOrFatal(t, 6, 5, cfg)
	d, err := mvm.Build(6, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cost, _ := g.Metrics()
	if cost != core.LowerBound(d.G) {
		t.Errorf("full-band cost %d != dense LB %d", cost, core.LowerBound(d.G))
	}
}

// TestAgainstExactTiny: Banded(3,0) — 6 nodes — matches the
// exhaustive optimum.
func TestAgainstExactTiny(t *testing.T) {
	g := buildOrFatal(t, 3, 0, wcfg.Equal(1))
	res, err := exact.Solve(g.G, g.G.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	cost, _ := g.Metrics()
	if cost != res.Cost {
		t.Errorf("banded = %d, exact = %d", cost, res.Cost)
	}
}

// TestPeakQuick: the peak never exceeds (2W+2) vector words plus the
// chain working set.
func TestPeakQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 4 + int(uint64(seed)%12)
		w := int(uint64(seed>>8) % uint64(n))
		g, err := Build(n, w, wcfg.Equal(16))
		if err != nil {
			return false
		}
		_, peak := g.Metrics()
		bound := cdag.Weight((2*w+2)+4) * 16
		return peak <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
