// Package banded implements structured-sparse matrix-vector
// multiplication dataflows — the second half of the paper's
// Section 4 claim that the data-reuse approach "not only extends to
// dense and structured sparse tensor multiplication, but to less
// regular CDAGs as well".
//
// Banded(n, W) is y = A·x for an n×n matrix whose entries lie within
// half-bandwidth W of the diagonal (|i−j| ≤ W) — the shape of the
// temporal filtering and smoothing operators BCI pipelines apply to
// electrode streams. The structure collapses the memory floor: a
// vector entry x_j is needed only by rows within W of j, so a
// row-major schedule with a sliding resident window of ≤ 2W+1 vector
// entries performs compulsory-only I/O in Θ(W) fast memory — in
// contrast to the dense MVM, whose lower-bound-achieving schedules
// need Θ(min(m, n)) residency (package mvm, Table 1).
package banded

import (
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// Inf is the sentinel cost of an infeasible configuration.
const Inf cdag.Weight = math.MaxInt64 / 4

// Graph is a Banded(n, W) CDAG with its layout.
type Graph struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// N is the matrix dimension; W the half-bandwidth (0 ≤ W < N).
	N, W int
	// Cfg records the weight configuration.
	Cfg wcfg.Config
	// X[j-1] is the vector input x_j.
	X []cdag.NodeID
	// A[i-1][j-lo(i)] is a_{ij} for j in the row's band.
	A [][]cdag.NodeID
	// Prod[i-1][j-lo(i)] is a_{ij}·x_j.
	Prod [][]cdag.NodeID
	// Acc[i-1][c] is row i's partial sum after c+2 band entries.
	Acc [][]cdag.NodeID
}

// Build constructs Banded(n, W). n ≥ 2, 0 ≤ W < n.
func Build(n, w int, cfg wcfg.Config) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("banded: n=%d must be ≥ 2", n)
	}
	if w < 0 || w >= n {
		return nil, fmt.Errorf("banded: bandwidth W=%d out of range [0,%d]", w, n-1)
	}
	g := &cdag.Graph{}
	out := &Graph{G: g, N: n, W: w, Cfg: cfg}
	wi, wn := cfg.Input(), cfg.Node()
	out.X = make([]cdag.NodeID, n)
	for j := 1; j <= n; j++ {
		out.X[j-1] = g.AddNode(wi, fmt.Sprintf("x[%d]", j))
	}
	out.A = make([][]cdag.NodeID, n)
	out.Prod = make([][]cdag.NodeID, n)
	out.Acc = make([][]cdag.NodeID, n)
	for i := 1; i <= n; i++ {
		lo, hi := out.Band(i)
		out.A[i-1] = make([]cdag.NodeID, hi-lo+1)
		for j := lo; j <= hi; j++ {
			out.A[i-1][j-lo] = g.AddNode(wi, fmt.Sprintf("a[%d,%d]", i, j))
		}
	}
	for i := 1; i <= n; i++ {
		lo, hi := out.Band(i)
		out.Prod[i-1] = make([]cdag.NodeID, hi-lo+1)
		for j := lo; j <= hi; j++ {
			out.Prod[i-1][j-lo] = g.AddNode(wn, fmt.Sprintf("p[%d,%d]", i, j),
				out.X[j-1], out.A[i-1][j-lo])
		}
		nnz := hi - lo + 1
		if nnz > 1 {
			out.Acc[i-1] = make([]cdag.NodeID, nnz-1)
			prev := out.Prod[i-1][0]
			for c := 1; c < nnz; c++ {
				out.Acc[i-1][c-1] = g.AddNode(wn, fmt.Sprintf("s[%d,%d]", i, c+1),
					prev, out.Prod[i-1][c])
				prev = out.Acc[i-1][c-1]
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("banded: internal construction error: %w", err)
	}
	return out, nil
}

// Band returns the inclusive column range [lo, hi] of row i
// (1-based).
func (g *Graph) Band(i int) (lo, hi int) {
	lo, hi = i-g.W, i+g.W
	if lo < 1 {
		lo = 1
	}
	if hi > g.N {
		hi = g.N
	}
	return lo, hi
}

// Output returns y_i's node: the last accumulator of row i, or its
// only product for single-entry rows.
func (g *Graph) Output(i int) cdag.NodeID {
	if len(g.Acc[i-1]) == 0 {
		return g.Prod[i-1][0]
	}
	return g.Acc[i-1][len(g.Acc[i-1])-1]
}

// NNZ returns the number of stored matrix entries.
func (g *Graph) NNZ() int {
	n := 0
	for i := 1; i <= g.N; i++ {
		lo, hi := g.Band(i)
		n += hi - lo + 1
	}
	return n
}

// emit drives the row-major sliding-window schedule: vector entries
// load on first use and drop after their last consuming row;
// everything else streams.
func (g *Graph) emit(mv func(core.MoveKind, cdag.NodeID)) {
	resident := map[int]bool{}
	for i := 1; i <= g.N; i++ {
		lo, hi := g.Band(i)
		var head cdag.NodeID = cdag.None
		for j := lo; j <= hi; j++ {
			if !resident[j] {
				mv(core.M1, g.X[j-1])
				resident[j] = true
			}
			a := g.A[i-1][j-lo]
			p := g.Prod[i-1][j-lo]
			mv(core.M1, a)
			mv(core.M3, p)
			mv(core.M4, a)
			if head == cdag.None {
				head = p
			} else {
				acc := g.Acc[i-1][j-lo-1]
				mv(core.M3, acc)
				mv(core.M4, p)
				mv(core.M4, head)
				head = acc
			}
			// x_j's last consumer is row min(n, j+W).
			if i == min(g.N, j+g.W) {
				mv(core.M4, g.X[j-1])
				delete(resident, j)
			}
		}
		out := g.Output(i)
		mv(core.M2, out)
		mv(core.M4, out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Schedule returns the row-major sliding-window schedule.
func (g *Graph) Schedule() core.Schedule {
	var s core.Schedule
	g.emit(func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	})
	return s
}

// Metrics returns the schedule's exact weighted I/O and peak red
// weight via a counting replay of the emission.
func (g *Graph) Metrics() (cost, peak cdag.Weight) {
	var red cdag.Weight
	g.emit(func(k core.MoveKind, v cdag.NodeID) {
		w := g.G.Weight(v)
		switch k {
		case core.M1:
			cost += w
			red += w
		case core.M2:
			cost += w
		case core.M3:
			red += w
		case core.M4:
			red -= w
		}
		if red > peak {
			peak = red
		}
	})
	return cost, peak
}

// MinMemory returns the sliding-window schedule's peak — Θ(W) fast
// memory for compulsory-only I/O.
func (g *Graph) MinMemory() cdag.Weight {
	_, peak := g.Metrics()
	return peak
}
