package schedcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/guard"
	"wrbpg/internal/solve"
	"wrbpg/internal/wcfg"
)

// TestEvictionOrder: with a single shard of capacity 3, the
// least-recently-used entry goes first, and a Get refreshes recency.
func TestEvictionOrder(t *testing.T) {
	c := New[int](1, 3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if _, ok := c.Get("a"); !ok { // refresh a: order is now c, b behind a
		t.Fatal("a missing before eviction")
	}
	c.Put("d", 4) // evicts b, the LRU entry
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	st := c.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}

// TestEvictionRespectsCapacity: inserting far past capacity never
// grows a shard beyond its cap.
func TestEvictionRespectsCapacity(t *testing.T) {
	c := New[int](4, 2)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("cache holds %d entries, cap is 8", n)
	}
	st := c.Snapshot()
	if st.Stores != 100 {
		t.Fatalf("stores = %d, want 100", st.Stores)
	}
	if int(st.Stores)-int(st.Evictions) != st.Entries {
		t.Fatalf("stores %d - evictions %d != entries %d", st.Stores, st.Evictions, st.Entries)
	}
}

// TestSingleflightDedup: N concurrent Do calls for one key run fn
// exactly once; every caller sees the same value, and exactly one
// reports Miss with the rest Shared. Run under -race (make race).
func TestSingleflightDedup(t *testing.T) {
	c := New[int](8, 16)
	const callers = 32
	var calls atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	states := make([]State, callers)
	vals := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, st, err := c.Do("hot", func() (int, bool, error) {
				calls.Add(1)
				<-release // hold the leader so every waiter piles up
				return 42, true, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], states[i] = v, st
		}(i)
	}
	// Let the goroutines reach Do before releasing the leader. The
	// sleep only widens the dedup window; correctness (exactly one fn
	// call) must hold regardless of interleaving.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", got)
	}
	miss, shared := 0, 0
	for i := 0; i < callers; i++ {
		if vals[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, vals[i])
		}
		switch states[i] {
		case Miss:
			miss++
		case Shared:
			shared++
		case Hit:
			t.Fatalf("caller %d reported Hit during a cold singleflight", i)
		}
	}
	if miss != 1 || shared != callers-1 {
		t.Fatalf("miss=%d shared=%d, want 1 and %d", miss, shared, callers-1)
	}
	// A later call is a plain hit.
	if _, st, _ := c.Do("hot", func() (int, bool, error) { return 0, true, nil }); st != Hit {
		t.Fatalf("post-singleflight state = %v, want Hit", st)
	}
}

// TestDoErrorNotCached: a failing fn propagates to every waiter and
// leaves nothing behind, so the next Do retries.
func TestDoErrorNotCached(t *testing.T) {
	c := New[int](1, 4)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (int, bool, error) { return 0, true, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed computation was cached")
	}
	v, st, err := c.Do("k", func() (int, bool, error) { return 7, true, nil })
	if err != nil || v != 7 || st != Miss {
		t.Fatalf("retry got (%d, %v, %v), want (7, Miss, nil)", v, st, err)
	}
}

// TestUncacheableNotStored: fn can succeed while declining caching
// (the serving layer does this for deadline-degraded fallbacks).
func TestUncacheableNotStored(t *testing.T) {
	c := New[int](1, 4)
	runs := 0
	for i := 0; i < 2; i++ {
		v, st, err := c.Do("k", func() (int, bool, error) { runs++; return 9, false, nil })
		if err != nil || v != 9 || st != Miss {
			t.Fatalf("call %d: got (%d, %v, %v), want (9, Miss, nil)", i, v, st, err)
		}
	}
	if runs != 2 {
		t.Fatalf("fn ran %d times; uncacheable results must not be stored", runs)
	}
}

// TestHitAfterSolveDeterminism: a real DWT solve cached on miss is
// byte-identical to an independent fresh solve of the same canonical
// instance — the content-addressing contract that makes cache hits
// indistinguishable from solving.
func TestHitAfterSolveDeterminism(t *testing.T) {
	build := func() (solve.Problem, *dwt.Graph) {
		g, err := dwt.Build(32, 4, dwt.ConfigWeights(wcfg.Equal(16)))
		if err != nil {
			t.Fatal(err)
		}
		return solve.DWT(g), g
	}
	p, g := build()
	budget := core.MinExistenceBudget(g.G) + 64

	c := New[core.Schedule](1, 4)
	key := "dwt-instance"
	doSolve := func() (core.Schedule, bool, error) {
		out, err := solve.Run(context.Background(), p, budget, guard.Limits{Deadline: time.Minute})
		if err != nil {
			return nil, false, err
		}
		return out.Schedule, out.Source == solve.SourceOptimal, nil
	}
	cached, st, err := c.Do(key, doSolve)
	if err != nil || st != Miss {
		t.Fatalf("cold solve: state %v err %v", st, err)
	}
	warm, st, err := c.Do(key, func() (core.Schedule, bool, error) {
		t.Fatal("warm request must not re-solve")
		return nil, false, nil
	})
	if err != nil || st != Hit {
		t.Fatalf("warm lookup: state %v err %v", st, err)
	}

	// Fresh solve on an independently built (but canonically identical)
	// instance.
	p2, _ := build()
	out2, err := solve.Run(context.Background(), p2, budget, guard.Limits{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	enc := func(s core.Schedule) []byte {
		b, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(enc(cached), enc(warm)) {
		t.Fatal("cache returned different bytes for the same key")
	}
	if !bytes.Equal(enc(warm), enc(out2.Schedule)) {
		t.Fatal("cached schedule differs from a fresh solve of the same instance")
	}
}

// TestShardStats: per-shard rows sum to the aggregate snapshot, and
// evictions land on the shard that overflowed.
func TestShardStats(t *testing.T) {
	c := New[int](4, 2) // 4 shards × 2 entries
	if c.Shards() != 4 {
		t.Fatalf("Shards=%d, want 4", c.Shards())
	}
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	agg := c.Snapshot()
	rows := c.ShardStats()
	if len(rows) != 4 {
		t.Fatalf("ShardStats returned %d rows, want 4", len(rows))
	}
	entries, evictions := 0, uint64(0)
	for i, row := range rows {
		if row.Capacity != 2 {
			t.Fatalf("shard %d capacity=%d, want 2", i, row.Capacity)
		}
		if row.Entries > row.Capacity {
			t.Fatalf("shard %d entries=%d exceeds capacity", i, row.Entries)
		}
		if got := c.ShardStat(i); got != row {
			t.Fatalf("ShardStat(%d)=%+v != ShardStats()[%d]=%+v", i, got, i, row)
		}
		entries += row.Entries
		evictions += row.Evictions
	}
	if entries != agg.Entries {
		t.Fatalf("per-shard entries sum %d != aggregate %d", entries, agg.Entries)
	}
	if evictions != agg.Evictions {
		t.Fatalf("per-shard evictions sum %d != aggregate %d", evictions, agg.Evictions)
	}
	if evictions == 0 {
		t.Fatal("40 inserts into 8 total capacity evicted nothing")
	}
}
