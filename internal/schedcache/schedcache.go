// Package schedcache is the content-addressed schedule cache behind
// the wrbpgd serving layer. Solving a WRBPG instance is NP-hard in
// general (Papp & Wattenhofer), but serving workloads re-submit the
// same dataflow shapes constantly; keying solved results by a digest
// of the canonical instance (family + parameters + weight digest +
// budget, see solve.Instance.Key) turns repeated exponential solves
// into microsecond lookups.
//
// The cache is a sharded LRU with per-key singleflight: concurrent
// requests for the same key trigger exactly one computation, with the
// other callers blocking on the leader's result. Sharding keeps lock
// contention bounded under concurrent serving traffic; statistics are
// lock-free atomics so GET /statsz never contends with the request
// path.
package schedcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// State classifies how a Do call obtained its value.
type State int

const (
	// Miss: this caller computed the value itself.
	Miss State = iota
	// Hit: the value was already cached.
	Hit
	// Shared: another in-flight caller was computing the same key;
	// this caller waited and shares that result (singleflight dedup).
	Shared
)

func (s State) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"shared"`
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// call is one in-flight computation other callers can wait on.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// entry is one cached key/value pair; elem is its LRU list node.
type entry[V any] struct {
	key string
	val V
}

// shard is one lock domain: an LRU (front = most recent) plus the
// singleflight table for keys currently being computed. evictions is
// per-shard so ShardStats can expose skew — a single hot shard
// evicting while the others idle means the key distribution (or the
// shard count) is off.
type shard[V any] struct {
	mu        sync.Mutex
	lru       *list.List // of *entry[V]
	byKey     map[string]*list.Element
	inflight  map[string]*call[V]
	cap       int
	evictions atomic.Uint64
}

// Cache is a sharded LRU of solved results, safe for concurrent use.
type Cache[V any] struct {
	shards    []shard[V]
	mask      uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	shared    atomic.Uint64
	stores    atomic.Uint64
	evictions atomic.Uint64
}

// New builds a cache with the given shard count (rounded up to a power
// of two, minimum 1) and per-shard entry capacity (minimum 1). Total
// capacity is shards × perShard.
func New[V any](shards, perShard int) *Cache[V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			lru:      list.New(),
			byKey:    make(map[string]*list.Element),
			inflight: make(map[string]*call[V]),
			cap:      perShard,
		}
	}
	return c
}

// fnv1a hashes the key for shard selection (64-bit FNV-1a, inlined to
// avoid the hash.Hash allocation on every request).
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key, if present, promoting it to
// most-recently-used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// put inserts or refreshes key under the shard lock (caller holds it).
func (c *Cache[V]) put(s *shard[V], key string, v V) {
	if el, ok := s.byKey[key]; ok {
		el.Value.(*entry[V]).val = v
		s.lru.MoveToFront(el)
		return
	}
	s.byKey[key] = s.lru.PushFront(&entry[V]{key: key, val: v})
	c.stores.Add(1)
	for s.lru.Len() > s.cap {
		last := s.lru.Back()
		s.lru.Remove(last)
		delete(s.byKey, last.Value.(*entry[V]).key)
		c.evictions.Add(1)
		s.evictions.Add(1)
	}
}

// Put stores key → v unconditionally.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	c.put(s, key, v)
	s.mu.Unlock()
}

// Do returns the value for key, computing it with fn on a miss. At
// most one fn runs per key at a time: concurrent Do calls for the same
// key block on the leader and share its result (State Shared). fn
// reports via cacheable whether a successful result may be stored —
// the serving layer declines to cache deadline-degraded fallback
// schedules, since a later request with more headroom could still
// solve optimally. An fn error is returned to every waiter and nothing
// is cached.
func (c *Cache[V]) Do(key string, fn func() (v V, cacheable bool, err error)) (V, State, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, Hit, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-cl.done
		c.shared.Add(1)
		return cl.val, Shared, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()

	v, cacheable, err := fn()
	cl.val, cl.err = v, err

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil && cacheable {
		c.put(s, key, v)
	}
	s.mu.Unlock()
	close(cl.done)
	c.misses.Add(1)
	return v, Miss, err
}

// Len returns the number of cached entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// ShardStat is one shard's row in ShardStats: its live entry count,
// its share of the evictions, and its fixed capacity.
type ShardStat struct {
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
	Capacity  int    `json:"capacity"`
}

// ShardStats snapshots every shard, indexed by shard number. The rows
// expose distribution skew the aggregate Snapshot hides: FNV-1a over
// content digests should load shards near-uniformly, so one shard
// evicting while its siblings sit half-empty points at a pathological
// key population or an undersized shard count.
func (c *Cache[V]) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = ShardStat{Entries: s.lru.Len(), Evictions: s.evictions.Load(), Capacity: s.cap}
		s.mu.Unlock()
	}
	return out
}

// ShardStat snapshots a single shard (panics on an out-of-range
// index, like a slice).
func (c *Cache[V]) ShardStat(i int) ShardStat {
	s := &c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStat{Entries: s.lru.Len(), Evictions: s.evictions.Load(), Capacity: s.cap}
}

// Shards returns the shard count (power of two; see New).
func (c *Cache[V]) Shards() int { return len(c.shards) }

// Snapshot returns the current counters.
func (c *Cache[V]) Snapshot() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  len(c.shards) * c.shards[0].cap,
	}
}
