package obs

import (
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

// TestLogFlagsResolve: the shared -log-format/-log-level pair must
// produce the right handler shape and level filtering.
func TestLogFlagsResolve(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := AddLogFlags(fs)
	if err := fs.Parse([]string{"-log-format=json", "-log-level=warn"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	logger, err := lf.Logger(&sb)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("filtered out")
	logger.Warn("kept", "k", "v")
	out := strings.TrimSpace(sb.String())
	if strings.Contains(out, "filtered out") {
		t.Errorf("info line survived -log-level=warn: %q", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("-log-format=json output is not JSON: %v\n%q", err, out)
	}
	if rec["msg"] != "kept" || rec["k"] != "v" || rec["level"] != "WARN" {
		t.Errorf("json record = %v", rec)
	}
}

// TestNewLoggerRejectsUnknown: bad flag values fail at startup rather
// than silently defaulting.
func TestNewLoggerRejectsUnknown(t *testing.T) {
	var sb strings.Builder
	if _, err := NewLogger(&sb, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&sb, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

// TestNewLoggerTextDefault: empty strings mean text/info.
func TestNewLoggerTextDefault(t *testing.T) {
	var sb strings.Builder
	logger, err := NewLogger(&sb, "", "")
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("filtered")
	logger.Info("hello")
	out := sb.String()
	if strings.Contains(out, "filtered") {
		t.Error("debug line survived default info level")
	}
	if !strings.Contains(out, "msg=hello") {
		t.Errorf("text handler output missing msg=hello: %q", out)
	}
}
