// A minimal Prometheus text-exposition parser: enough to validate that
// GET /metrics output is machine-parseable (names, labels, float
// values, HELP/TYPE comments) and to let tests assert on series. It is
// a validator, not a full client — unsupported constructs are errors,
// not extensions.
package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its (possibly
// empty) label set, and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the parsed OpenMetrics exemplar riding the sample
	// line, nil when absent (always nil in plain Prometheus output).
	Exemplar *SampleExemplar
}

// SampleExemplar is a parsed OpenMetrics exemplar:
// `# {trace_id="..."} value [timestamp]` after a sample value.
type SampleExemplar struct {
	Labels     map[string]string
	Value      float64
	TimestampS float64 // seconds; 0 when absent
}

// Series returns the full series identity, e.g.
// `wrbpg_fallback_total{reason="deadline"}`.
func (s Sample) Series() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses Prometheus text exposition format, returning every
// sample in order. It validates the shape strictly: metric and label
// names must be legal, every TYPE must be a known kind, and values
// must parse as floats (+Inf/NaN included).
func ParseText(text string) ([]Sample, error) {
	var samples []Sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// checkComment validates a # HELP / # TYPE line (bare comments pass).
func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// parseSample parses `name{label="v",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' && rest[i] != '\t' {
		i++
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	// Label set.
	if strings.HasPrefix(rest, "{") {
		end := labelSetEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	// OpenMetrics exemplar: `value [ts] # {labels} exval [exts]`. The
	// label values this registry emits never contain '#', so the first
	// hash after the label set is the exemplar marker.
	if hash := strings.IndexByte(rest, '#'); hash >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(rest[hash+1:]))
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
		rest = rest[:hash]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q: %v", fields[1], err)
		}
	}
	return s, nil
}

// labelSetEnd returns the index of the '}' closing the label set that
// opens at s[0], scanning quote-aware; -1 when unterminated.
func labelSetEnd(s string) int {
	inQuote := false
	for j := 1; j < len(s); j++ {
		switch {
		case inQuote && s[j] == '\\':
			j++ // skip escaped char
		case s[j] == '"':
			inQuote = !inQuote
		case !inQuote && s[j] == '}':
			return j
		}
	}
	return -1
}

// parseExemplar parses the OpenMetrics exemplar body after the '#'
// marker: `{labels} value [timestamp]`, timestamp in float seconds.
func parseExemplar(body string) (*SampleExemplar, error) {
	if !strings.HasPrefix(body, "{") {
		return nil, fmt.Errorf("exemplar must open with a label set, got %q", body)
	}
	end := labelSetEnd(body)
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set in %q", body)
	}
	ex := &SampleExemplar{Labels: map[string]string{}}
	if err := parseLabels(body[1:end], ex.Labels); err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	fields := strings.Fields(body[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("want `value [timestamp]` after exemplar labels, got %q", body[end+1:])
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %v", fields[0], err)
	}
	ex.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q: %v", fields[1], err)
		}
		ex.TimestampS = ts
	}
	return ex, nil
}

// parseLabels parses `k1="v1",k2="v2"` into dst.
func parseLabels(body string, dst map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("label %s: value not quoted", name)
		}
		val, rest, err := unquotePrefix(body)
		if err != nil {
			return fmt.Errorf("label %s: %w", name, err)
		}
		dst[name] = val
		body = strings.TrimPrefix(rest, ",")
	}
	return nil
}

// unquotePrefix consumes a leading quoted string, handling \\, \" and
// \n escapes, and returns the decoded value plus the remainder.
func unquotePrefix(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string %q", s)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
