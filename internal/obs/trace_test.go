package obs

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// TestStartSpanUntraced: without a trace on the context, StartSpan must
// return the context unchanged and a nil span whose methods are no-ops
// — the contract that keeps untraced hot paths branch-free.
func TestStartSpanUntraced(t *testing.T) {
	ctx := context.Background()
	got, sp := StartSpan(ctx, "phase")
	if got != ctx {
		t.Error("StartSpan without a trace rewrote the context")
	}
	if sp != nil {
		t.Fatal("StartSpan without a trace returned a non-nil span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	if tr := TraceFrom(ctx); tr != nil {
		t.Errorf("TraceFrom(plain ctx) = %v, want nil", tr)
	}
}

// TestSpanTreeNesting builds a known three-level span tree and checks
// the export nests and annotates it faithfully.
func TestSpanTreeNesting(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}

	rctx, root := StartSpan(ctx, "request")
	root.SetAttr("method", "POST")
	cctx, cache := StartSpan(rctx, "cache")
	_, solve := StartSpan(cctx, "solve")
	solve.SetAttr("source", "optimal")
	solve.End()
	solve.SetAttr("late", "dropped") // after End: must be discarded
	cache.End()
	_, sim := StartSpan(rctx, "simulate")
	sim.End()
	root.End()
	tr.Finish()

	ex := tr.Tree()
	if ex.TraceID != tr.ID() || len(ex.TraceID) != 16 {
		t.Errorf("trace ID %q, want the 16-hex-digit %q", ex.TraceID, tr.ID())
	}
	if len(ex.Spans) != 1 || ex.Spans[0].Name != "request" {
		t.Fatalf("roots = %+v, want single 'request' root", ex.Spans)
	}
	r := ex.Spans[0]
	if len(r.Attrs) != 1 || r.Attrs[0].Key != "method" || r.Attrs[0].Value != "POST" {
		t.Errorf("root attrs = %v", r.Attrs)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "cache" || r.Children[1].Name != "simulate" {
		t.Fatalf("request children = %+v, want [cache simulate]", r.Children)
	}
	c := r.Children[0]
	if len(c.Children) != 1 || c.Children[0].Name != "solve" {
		t.Fatalf("cache children = %+v, want [solve]", c.Children)
	}
	if attrs := c.Children[0].Attrs; len(attrs) != 1 || attrs[0].Key != "source" {
		t.Errorf("solve attrs = %v, want only the pre-End one", attrs)
	}

	// New spans after Finish must be rejected.
	if _, sp := StartSpan(rctx, "late"); sp != nil {
		t.Error("StartSpan after Finish returned a live span")
	}
}

// TestSpanTreeProperty is a randomized structural test: build many
// random span forests through the public context API and assert, for
// each, that (a) every span lands under exactly the parent whose
// context started it, (b) siblings appear in creation order (starts
// are non-decreasing, sort is stable), and (c) ChromeTrace emits one
// event per span with tid = depth+1.
func TestSpanTreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		tr := NewTrace()
		base := WithTrace(context.Background(), tr)

		type rec struct {
			ctx    context.Context
			name   string
			parent int // index into recs; -1 = root
		}
		recs := []rec{}
		ctxOf := func(i int) context.Context {
			if i < 0 {
				return base
			}
			return recs[i].ctx
		}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			parent := rng.Intn(len(recs)+1) - 1 // -1 .. len(recs)-1
			name := string(rune('a' + i%26))
			ctx, sp := StartSpan(ctxOf(parent), name)
			if sp == nil {
				t.Fatalf("iter %d: StartSpan returned nil with a live trace", iter)
			}
			recs = append(recs, rec{ctx: ctx, name: name, parent: parent})
		}
		// End in random order; Finish sweeps up any still open.
		for _, i := range rng.Perm(n) {
			if rng.Intn(2) == 0 {
				tr.spans[i].End()
			}
		}
		tr.Finish()

		// Expected children of each parent, in creation order.
		wantKids := map[int][]string{}
		for i, r := range recs {
			wantKids[r.parent] = append(wantKids[r.parent], recs[i].name)
		}

		ex := tr.Tree()
		var walk func(parent int, nodes []*SpanNode)
		walk = func(parent int, nodes []*SpanNode) {
			want := wantKids[parent]
			if len(nodes) != len(want) {
				t.Fatalf("iter %d: parent %d has %d children, want %d", iter, parent, len(nodes), len(want))
			}
			// Map node back to its rec index by matching names in order:
			// creation order is the expected stable order.
			ki := 0
			for _, node := range nodes {
				if node.Name != want[ki] {
					t.Fatalf("iter %d: parent %d child %d = %q, want %q (creation order)",
						iter, parent, ki, node.Name, want[ki])
				}
				// Find this child's rec index to recurse.
				idx := -1
				seen := 0
				for j, r := range recs {
					if r.parent == parent {
						if seen == ki {
							idx = j
							break
						}
						seen++
					}
				}
				walk(idx, node.Children)
				ki++
			}
		}
		walk(-1, ex.Spans)

		// Chrome export: one event per span, tid = depth+1, all ended.
		evs := tr.ChromeTrace()
		if len(evs) != n {
			t.Fatalf("iter %d: ChromeTrace has %d events, want %d", iter, len(evs), n)
		}
		depth := func(i int) int {
			d := 0
			for p := recs[i].parent; p >= 0; p = recs[p].parent {
				d++
			}
			return d
		}
		for i, ev := range evs {
			if ev.Ph != "X" {
				t.Fatalf("iter %d: event %d ph=%q, want X", iter, i, ev.Ph)
			}
			if ev.TID != depth(i)+1 {
				t.Errorf("iter %d: event %d tid=%d, want depth+1=%d", iter, i, ev.TID, depth(i)+1)
			}
			if ev.Dur < 0 {
				t.Errorf("iter %d: event %d negative duration %d", iter, i, ev.Dur)
			}
		}
	}
}

// TestTraceMarshalJSON: a *Trace must serialize as its span tree.
func TestTraceMarshalJSON(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "only")
	sp.End()
	tr.Finish()
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var ex TraceExport
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != tr.ID() || len(ex.Spans) != 1 || ex.Spans[0].Name != "only" {
		t.Errorf("round-tripped export = %+v", ex)
	}
}

// TestTraceStoreEviction: the ring must retain exactly the newest cap
// traces and evict by insertion order.
func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	t1, t2, t3 := NewTrace(), NewTrace(), NewTrace()
	ts.Put(t1)
	ts.Put(t2)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	ts.Put(t3)
	if ts.Len() != 2 {
		t.Fatalf("Len after eviction = %d, want 2", ts.Len())
	}
	if _, ok := ts.Get(t1.ID()); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, tr := range []*Trace{t2, t3} {
		if _, ok := ts.Get(tr.ID()); !ok {
			t.Errorf("trace %s missing from store", tr.ID())
		}
	}
	if _, ok := ts.Get("nope"); ok {
		t.Error("Get of unknown ID succeeded")
	}
}
