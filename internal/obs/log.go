// Structured-logging setup shared by the three binaries (wrbpg,
// wrbpgd, experiments): one -log-format=text|json / -log-level flag
// pair, resolved to a log/slog logger, so every process in the fleet
// emits the same leveled, machine-parseable log shape.
package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFlags carries the shared logging flag values; register with
// AddLogFlags and resolve with Logger.
type LogFlags struct {
	Format string
	Level  string
}

// AddLogFlags registers -log-format and -log-level on fs and returns
// the destination struct.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Format, "log-format", "text", "log output format: text or json")
	fs.StringVar(&lf.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	return lf
}

// Logger resolves the flags to a slog.Logger writing to w.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	return NewLogger(w, lf.Format, lf.Level)
}

// NewLogger builds a slog.Logger with the given format ("text" or
// "json") and level ("debug", "info", "warn", "error").
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
