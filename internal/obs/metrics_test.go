package obs

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics pins the scalar metric semantics.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge after Set = %d, want -7", got)
	}
}

// TestRegistryConcurrent hammers every metric kind from many goroutines
// (run under -race) and checks the totals are exact: lock-free must not
// mean lossy.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	g := r.Gauge("conc_gauge", "h")
	cv := r.CounterVec("conc_vec_total", "h", "kind")
	h := r.Histogram("conc_hist", "h", []float64{1, 10, 100})

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"a", "b", "c"}[w%3]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				cv.With(kind).Inc()
				h.Observe(float64(i % 200))
				// Interleave exposition with the writes: snapshots must
				// never block or corrupt writers.
				if i%4096 == 0 {
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Errorf("WriteText: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	var vecTotal uint64
	for _, k := range []string{"a", "b", "c"} {
		vecTotal += cv.With(k).Value()
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var bucketTotal uint64
	for i := 0; i <= len(h.Bounds()); i++ {
		bucketTotal += h.Bucket(i)
	}
	if bucketTotal != h.Count() {
		t.Errorf("bucket sum = %d, want count %d", bucketTotal, h.Count())
	}
	wantSum := float64(workers) * float64(perWorker/200) * (199 * 200 / 2)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestWriteTextRoundTrip renders a populated registry and re-parses it
// with ParseText: the writer and the validator must agree on the
// exposition grammar.
func TestWriteTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_total", "a counter\nwith a newline and a back\\slash")
	c.Add(3)
	g := r.Gauge("rt_gauge", "gauge")
	g.Set(-4)
	cv := r.CounterVec("rt_vec_total", "vec", "reason")
	cv.With(`quote"and\slash`).Add(2)
	cv.With("plain").Inc()
	h := r.Histogram("rt_hist", "hist", []float64{0.5, 2.5})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(99)
	r.GaugeFunc("rt_func_gauge", "fn", func() float64 { return 1.5 })
	r.CounterFunc("rt_func_total", "fn", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(sb.String())
	if err != nil {
		t.Fatalf("ParseText of own output: %v\n%s", err, sb.String())
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Series()] = s.Value
	}
	want := map[string]float64{
		"rt_total": 3,
		"rt_gauge": -4,
		`rt_vec_total{reason="quote\"and\\slash"}`: 2,
		`rt_vec_total{reason="plain"}`:             1,
		`rt_hist_bucket{le="0.5"}`:                 1,
		`rt_hist_bucket{le="2.5"}`:                 2, // cumulative
		`rt_hist_bucket{le="+Inf"}`:                3,
		"rt_hist_sum":                              100.25,
		"rt_hist_count":                            3,
		"rt_func_gauge":                            1.5,
		"rt_func_total":                            42,
	}
	for series, v := range want {
		gv, ok := got[series]
		if !ok {
			t.Errorf("series %s missing from exposition:\n%s", series, sb.String())
			continue
		}
		if gv != v {
			t.Errorf("series %s = %g, want %g", series, gv, v)
		}
	}
}

// TestDuplicateRegistrationPanics: a duplicate metric name is a
// programming error and must fail fast.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "h")
}

// TestHistogramBoundsValidation: non-increasing bounds must panic at
// registration, not mis-bucket at observe time.
func TestHistogramBoundsValidation(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	r.Histogram("bad_hist", "h", []float64{1, 1})
}

// TestHandlerMergesRegistries: the HTTP handler concatenates several
// registries into one parseable exposition with the Prometheus content
// type.
func TestHandlerMergesRegistries(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("merge_a_total", "h").Inc()
	r2 := NewRegistry()
	r2.Counter("merge_b_total", "h").Add(2)

	rec := httptest.NewRecorder()
	Handler(r1, r2).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want a 0.0.4 exposition", ct)
	}
	samples, err := ParseText(rec.Body.String())
	if err != nil {
		t.Fatalf("merged exposition unparseable: %v", err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Series()] = s.Value
	}
	if got["merge_a_total"] != 1 || got["merge_b_total"] != 2 {
		t.Errorf("merged samples = %v, want merge_a_total=1 merge_b_total=2", got)
	}
}

// TestFuncVec pins the labeled callback families: per-label series,
// evaluated at exposition time, sorted by label value, with the
// registered kind driving the TYPE line.
func TestFuncVec(t *testing.T) {
	reg := NewRegistry()
	live := []float64{3, 1, 4}
	gv := reg.GaugeFuncVec("test_shard_entries", "Entries by shard.", "shard")
	cv := reg.CounterFuncVec("test_shard_evictions_total", "Evictions by shard.", "shard")
	for i := range live {
		i := i
		gv.With(strconv.Itoa(i), func() float64 { return live[i] })
		cv.With(strconv.Itoa(i), func() float64 { return live[i] * 10 })
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_shard_entries gauge",
		"# TYPE test_shard_evictions_total counter",
		`test_shard_entries{shard="0"} 3`,
		`test_shard_entries{shard="1"} 1`,
		`test_shard_entries{shard="2"} 4`,
		`test_shard_evictions_total{shard="2"} 40`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Callbacks are live, not captured values.
	live[1] = 9
	sb.Reset()
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `test_shard_entries{shard="1"} 9`) {
		t.Error("FuncVec did not re-evaluate its callback at exposition time")
	}
	// Labels stay ordered even when registered out of order.
	gv.With("10", func() float64 { return 0 })
	sb.Reset()
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if i0, i10 := strings.Index(sb.String(), `shard="0"`), strings.Index(sb.String(), `shard="10"`); i10 > i0 {
		// "10" < "2" lexically; just assert both series render.
		if i0 < 0 || i10 < 0 {
			t.Error("missing series after late With")
		}
	}
}
