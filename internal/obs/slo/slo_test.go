package slo

import (
	"math"
	"strings"
	"testing"
	"time"

	"wrbpg/internal/obs"
)

// fakeClock drives the window rings deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestEngine(cfg Config) (*Engine, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.now = clk.now
	return New(cfg), clk
}

func TestBurnRateArithmetic(t *testing.T) {
	for _, tc := range []struct {
		total, bad uint64
		budget     float64
		burn, rem  float64
	}{
		{0, 0, 0.001, 0, 1},       // empty window burns nothing
		{1000, 1, 0.001, 1, 0},    // exactly on budget
		{1000, 10, 0.001, 10, -1}, // 10x burn, remaining clamps at -1
		{1000, 0, 0.001, 0, 1},
		{100, 50, 0.5, 1, 0},
		{10, 5, 0, 0, 1}, // degenerate budget guards, not divides
	} {
		if got := BurnRate(tc.total, tc.bad, tc.budget); math.Abs(got-tc.burn) > 1e-12 {
			t.Errorf("BurnRate(%d,%d,%v) = %v, want %v", tc.total, tc.bad, tc.budget, got, tc.burn)
		}
		if got := BudgetRemaining(tc.total, tc.bad, tc.budget); math.Abs(got-tc.rem) > 1e-12 {
			t.Errorf("BudgetRemaining(%d,%d,%v) = %v, want %v", tc.total, tc.bad, tc.budget, got, tc.rem)
		}
	}
}

func TestRecordAndReport(t *testing.T) {
	e, _ := newTestEngine(Config{LatencyTarget: 100 * time.Millisecond, Availability: 0.999})
	for i := 0; i < 997; i++ {
		e.Record(10*time.Millisecond, false)
	}
	e.Record(time.Second, false) // slow but available
	e.Record(time.Millisecond, true)
	e.Record(time.Millisecond, true)

	rep := e.Report()
	if len(rep.Objectives) != 2 {
		t.Fatalf("report has %d objectives, want availability+latency", len(rep.Objectives))
	}
	var avail, lat *ObjectiveStatus
	for i := range rep.Objectives {
		switch rep.Objectives[i].Name {
		case ObjectiveAvailability:
			avail = &rep.Objectives[i]
		case ObjectiveLatency:
			lat = &rep.Objectives[i]
		}
	}
	if avail == nil || lat == nil {
		t.Fatalf("objectives = %+v", rep.Objectives)
	}
	if len(avail.Windows) != 3 || avail.Windows[0].Window != "5m" {
		t.Fatalf("availability windows = %+v, want 5m/1h/6h", avail.Windows)
	}
	for _, w := range avail.Windows {
		if w.Total != 1000 || w.Bad != 2 {
			t.Errorf("availability %s: total=%d bad=%d, want 1000/2", w.Window, w.Total, w.Bad)
		}
		if math.Abs(w.BurnRate-2) > 1e-9 { // 2/1000 against a 0.001 budget
			t.Errorf("availability %s burn = %v, want 2", w.Window, w.BurnRate)
		}
	}
	for _, w := range lat.Windows {
		if w.Bad != 1 { // only the 1s request breached 100ms
			t.Errorf("latency %s bad = %d, want 1", w.Window, w.Bad)
		}
	}
	if !strings.Contains(lat.Detail, "p99") || !strings.Contains(lat.Detail, "100ms") {
		t.Errorf("latency detail %q, want the quantile and target spelled out", lat.Detail)
	}
}

// TestWindowExpiry: outcomes age out of the short window while the
// long windows still remember them.
func TestWindowExpiry(t *testing.T) {
	e, clk := newTestEngine(Config{})
	for i := 0; i < 100; i++ {
		e.Record(time.Millisecond, true)
	}
	clk.advance(6 * time.Minute) // past 5m + slack, inside 1h
	e.Record(time.Millisecond, false)

	rep := e.Report()
	avail := rep.Objectives[0]
	if avail.Name != ObjectiveAvailability {
		t.Fatalf("first objective %q", avail.Name)
	}
	short, long := avail.Windows[0], avail.Windows[1]
	if short.Bad != 0 || short.Total != 1 {
		t.Errorf("5m window after expiry: total=%d bad=%d, want 1/0", short.Total, short.Bad)
	}
	if long.Bad != 100 || long.Total != 101 {
		t.Errorf("1h window: total=%d bad=%d, want 101/100", long.Total, long.Bad)
	}
}

func TestSummaryWorstBurn(t *testing.T) {
	e, clk := newTestEngine(Config{})
	// Blow the budget, then go quiet: the 5m window forgets, the 6h
	// window keeps burning, so the summary's worst-burn must pick it up.
	for i := 0; i < 100; i++ {
		e.Record(time.Millisecond, true)
	}
	clk.advance(10 * time.Minute)
	for i := 0; i < 100; i++ {
		e.Record(time.Millisecond, false)
	}
	sum := e.Summary()
	av, ok := sum[ObjectiveAvailability].(map[string]any)
	if !ok {
		t.Fatalf("summary = %+v", sum)
	}
	if worst := av["worst_burn_rate"].(float64); worst <= 1 {
		t.Errorf("worst_burn_rate = %v, want the long window's blown budget to dominate", worst)
	}
	if av["window"].(string) != "5m" {
		t.Errorf("summary window = %v, want the shortest (5m)", av["window"])
	}
}

func TestRegisterMetrics(t *testing.T) {
	e, _ := newTestEngine(Config{})
	for i := 0; i < 10; i++ {
		e.Record(time.Millisecond, i == 0) // 1/10 bad: burn 100x a 0.001 budget
	}
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(sb.String())
	if err != nil {
		t.Fatalf("slo gauges unparseable: %v", err)
	}
	series := map[string]float64{}
	for _, s := range samples {
		series[s.Series()] = s.Value
	}
	for _, want := range []string{"availability_5m", "availability_1h", "availability_6h",
		"latency_5m", "latency_1h", "latency_6h"} {
		if _, ok := series[`wrbpg_slo_burn_rate{slo="`+want+`"}`]; !ok {
			t.Errorf("missing burn-rate series for %s:\n%s", want, sb.String())
		}
		if _, ok := series[`wrbpg_slo_budget_remaining{slo="`+want+`"}`]; !ok {
			t.Errorf("missing budget-remaining series for %s", want)
		}
	}
	if got := series[`wrbpg_slo_burn_rate{slo="availability_5m"}`]; math.Abs(got-100) > 1e-9 {
		t.Errorf(`availability_5m burn gauge = %v, want 100`, got)
	}
	if got := series[`wrbpg_slo_budget_remaining{slo="availability_5m"}`]; got != -1 {
		t.Errorf(`availability_5m remaining gauge = %v, want the -1 clamp`, got)
	}
}

func TestWindowName(t *testing.T) {
	for d, want := range map[time.Duration]string{
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		6 * time.Hour:    "6h",
		90 * time.Second: "1m30s",
	} {
		if got := windowName(d); got != want {
			t.Errorf("windowName(%v) = %q, want %q", d, got, want)
		}
	}
}
