// Package slo tracks service-level objectives over multi-window
// sliding counters and computes error-budget burn rates.
//
// Two objective shapes cover the serving stack: a latency objective
// (a quantile of requests must complete within a target, e.g. p99 ≤
// 250ms — a request slower than the target is "bad") and an
// availability objective (a request shed with 429 or failed with 5xx
// is "bad"). Both reduce to the same budget arithmetic: with target
// fraction T of good requests, the error budget is 1−T, and the burn
// rate over a window is (bad/total)/(1−T) — 1.0 means the window is
// consuming budget exactly as fast as the objective allows, 14.4 is
// the classic "page now" multi-window threshold. The arithmetic lives
// in exported functions (BurnRate, BudgetRemaining) so cmd/wrbpgload's
// report gates apply the identical math to offline results.
//
// The engine keeps one ring of sub-buckets per window (5m/1h/6h by
// default); Record is O(windows) under one mutex and allocation-free,
// so it sits comfortably on the per-request path.
package slo

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"wrbpg/internal/obs"
)

// ringBuckets is the resolution of each sliding window: the window
// reports over at most windowLen + windowLen/ringBuckets of history,
// which keeps the 5m window honest to ±10s.
const ringBuckets = 30

// Config sets the engine's objectives. Zero fields take defaults.
type Config struct {
	// LatencyTarget is the latency objective's threshold: a request
	// slower than this is latency-bad. Default 250ms.
	LatencyTarget time.Duration
	// LatencyQuantile is the fraction of requests that must meet
	// LatencyTarget (0.99 ⇒ "p99 ≤ target"). Default 0.99.
	LatencyQuantile float64
	// Availability is the fraction of requests that must not be shed
	// (429) or fail (5xx). Default 0.999.
	Availability float64
	// Windows are the sliding-window lengths. Default 5m, 1h, 6h.
	Windows []time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 250 * time.Millisecond
	}
	if c.LatencyQuantile <= 0 || c.LatencyQuantile >= 1 {
		c.LatencyQuantile = 0.99
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour}
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// bucket is one ring slot's tallies.
type bucket struct {
	total uint64
	bad   uint64 // availability-bad: shed or 5xx
	slow  uint64 // latency-bad: slower than LatencyTarget
}

// window is one sliding window: a ring of sub-buckets rotated by the
// clock on every Record/snapshot.
type window struct {
	name     string
	length   time.Duration
	slotLen  time.Duration
	ring     [ringBuckets]bucket
	cur      int
	curStart time.Time
}

// rotate advances the ring so ring[cur] covers now.
func (w *window) rotate(now time.Time) {
	steps := int(now.Sub(w.curStart) / w.slotLen)
	if steps <= 0 {
		return
	}
	if steps > ringBuckets {
		steps = ringBuckets
		w.curStart = now
	} else {
		w.curStart = w.curStart.Add(time.Duration(steps) * w.slotLen)
	}
	for i := 0; i < steps; i++ {
		w.cur = (w.cur + 1) % ringBuckets
		w.ring[w.cur] = bucket{}
	}
}

// sum tallies the whole ring.
func (w *window) sum() bucket {
	var b bucket
	for i := range w.ring {
		b.total += w.ring[i].total
		b.bad += w.ring[i].bad
		b.slow += w.ring[i].slow
	}
	return b
}

// Engine records per-request outcomes and reports burn rates.
type Engine struct {
	cfg Config

	mu   sync.Mutex
	wins []*window
}

// New returns an engine tracking the configured objectives.
func New(cfg Config) *Engine {
	cfg.applyDefaults()
	e := &Engine{cfg: cfg}
	now := cfg.now()
	for _, d := range cfg.Windows {
		e.wins = append(e.wins, &window{
			name:     windowName(d),
			length:   d,
			slotLen:  d / ringBuckets,
			curStart: now,
		})
	}
	return e
}

// windowName renders a window length compactly ("5m", "1h", "6h"),
// dropping only genuinely zero trailing components so a 90s window
// still reads "1m30s".
func windowName(d time.Duration) string {
	s := d.String() // e.g. "5m0s", "1h0m0s"
	if strings.HasSuffix(s, "m0s") {
		s = s[:len(s)-2]
	}
	if strings.HasSuffix(s, "h0m") {
		s = s[:len(s)-2]
	}
	return s
}

// Record tallies one finished request: its latency and whether it was
// availability-bad (shed with 429 or failed with 5xx).
func (e *Engine) Record(latency time.Duration, bad bool) {
	slow := latency > e.cfg.LatencyTarget
	now := e.cfg.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range e.wins {
		w.rotate(now)
		b := &w.ring[w.cur]
		b.total++
		if bad {
			b.bad++
		}
		if slow {
			b.slow++
		}
	}
}

// BurnRate is the rate at which a window consumes error budget:
// (bad/total)/budget. 1.0 consumes the budget exactly over the SLO
// period; an empty window burns nothing.
func BurnRate(total, bad uint64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// BudgetRemaining is the fraction of a window's error budget still
// unspent: 1 − (bad/total)/budget, clamped below at -1 so a blown
// window reads as "overspent" without unbounded negatives.
func BudgetRemaining(total, bad uint64, budget float64) float64 {
	rem := 1 - BurnRate(total, bad, budget)
	if rem < -1 {
		return -1
	}
	return rem
}

// WindowStatus is one window's view of one objective.
type WindowStatus struct {
	Window          string  `json:"window"`
	Total           uint64  `json:"total"`
	Bad             uint64  `json:"bad"`
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// ObjectiveStatus is one objective across all windows.
type ObjectiveStatus struct {
	Name    string         `json:"name"`
	Target  float64        `json:"target"`
	Budget  float64        `json:"budget"`
	Detail  string         `json:"detail"`
	Windows []WindowStatus `json:"windows"`
}

// Report is the GET /v1/slo response body.
type Report struct {
	Objectives []ObjectiveStatus `json:"objectives"`
}

// objectiveNames used in reports, metrics labels and log lines.
const (
	ObjectiveAvailability = "availability"
	ObjectiveLatency      = "latency"
)

// Report snapshots both objectives across every window.
func (e *Engine) Report() Report {
	now := e.cfg.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	avail := ObjectiveStatus{
		Name:   ObjectiveAvailability,
		Target: e.cfg.Availability,
		Budget: 1 - e.cfg.Availability,
		Detail: "requests not shed (429) or failed (5xx)",
	}
	lat := ObjectiveStatus{
		Name:   ObjectiveLatency,
		Target: e.cfg.LatencyQuantile,
		Budget: 1 - e.cfg.LatencyQuantile,
		Detail: "p" + trimQuantile(e.cfg.LatencyQuantile) + " ≤ " + e.cfg.LatencyTarget.String(),
	}
	for _, w := range e.wins {
		w.rotate(now)
		b := w.sum()
		avail.Windows = append(avail.Windows, WindowStatus{
			Window:          w.name,
			Total:           b.total,
			Bad:             b.bad,
			BurnRate:        BurnRate(b.total, b.bad, avail.Budget),
			BudgetRemaining: BudgetRemaining(b.total, b.bad, avail.Budget),
		})
		lat.Windows = append(lat.Windows, WindowStatus{
			Window:          w.name,
			Total:           b.total,
			Bad:             b.slow,
			BurnRate:        BurnRate(b.total, b.slow, lat.Budget),
			BudgetRemaining: BudgetRemaining(b.total, b.slow, lat.Budget),
		})
	}
	return Report{Objectives: []ObjectiveStatus{avail, lat}}
}

// trimQuantile renders 0.99 as "99", 0.999 as "99.9".
func trimQuantile(q float64) string {
	return strconv.FormatFloat(q*100, 'f', -1, 64)
}

// Summary condenses the report for /readyz: per objective, the worst
// burn rate across windows and the shortest window's budget remaining.
func (e *Engine) Summary() map[string]any {
	rep := e.Report()
	out := make(map[string]any, len(rep.Objectives))
	for _, o := range rep.Objectives {
		worst := 0.0
		for _, w := range o.Windows {
			if w.BurnRate > worst {
				worst = w.BurnRate
			}
		}
		var shortest WindowStatus
		if len(o.Windows) > 0 {
			shortest = o.Windows[0]
		}
		out[o.Name] = map[string]any{
			"worst_burn_rate":  worst,
			"budget_remaining": shortest.BudgetRemaining,
			"window":           shortest.Window,
		}
	}
	return out
}

// RegisterMetrics exposes wrbpg_slo_burn_rate and
// wrbpg_slo_budget_remaining gauge families on reg, one series per
// objective×window (label value "availability_5m" etc.), evaluated at
// scrape time.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	burn := reg.GaugeFuncVec("wrbpg_slo_burn_rate",
		"Error-budget burn rate per objective and window (1.0 = consuming budget exactly at the objective's rate).", "slo")
	rem := reg.GaugeFuncVec("wrbpg_slo_budget_remaining",
		"Fraction of the error budget left per objective and window (negative = overspent).", "slo")
	e.mu.Lock()
	wins := append([]*window(nil), e.wins...)
	e.mu.Unlock()
	for _, w := range wins {
		for _, obj := range []string{ObjectiveAvailability, ObjectiveLatency} {
			obj, name := obj, w.name
			burn.With(obj+"_"+name, func() float64 { return e.lookup(obj, name).BurnRate })
			rem.With(obj+"_"+name, func() float64 { return e.lookup(obj, name).BudgetRemaining })
		}
	}
}

// lookup finds one objective×window status in a fresh report.
func (e *Engine) lookup(objective, window string) WindowStatus {
	rep := e.Report()
	for _, o := range rep.Objectives {
		if o.Name != objective {
			continue
		}
		for _, w := range o.Windows {
			if w.Window == window {
				return w
			}
		}
	}
	return WindowStatus{}
}
