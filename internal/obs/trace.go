// Request-scoped tracing: context-propagated trace IDs with
// parent/child spans recording the solver phases of one request
// (canonicalize → cache → build → admission → solve → simulate →
// fallback). Tracing is strictly opt-in per request: when no trace
// rides the context, StartSpan returns the context unchanged and a nil
// span whose methods are no-ops, so untraced hot paths pay one context
// lookup and zero allocations.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Trace is one request's span collection. Spans append concurrently
// (the solve facade runs the optimal solver on its own goroutine), so
// the trace carries a mutex; a span itself is owned by the goroutine
// that started it.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []*Span
	done  bool
}

// Span is one timed phase within a trace. End it exactly once; attrs
// set after End are dropped.
type Span struct {
	tr       *Trace
	id       int
	parent   int // -1 for a root span
	name     string
	start    time.Duration // offset from trace start
	duration time.Duration
	ended    bool
	attrs    []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// NewTrace starts a trace with a fresh random 64-bit ID.
func NewTrace() *Trace {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// time-derived ID keeps tracing usable in that degenerate case.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return &Trace{id: hex.EncodeToString(b[:]), start: time.Now()}
}

// ResumeTrace continues a trace that was started on another replica:
// the returned trace reuses the propagated ID, so spans recorded here
// stitch into the originator's tree when the subtree is exported back
// (Span.Graft on the forwarding side). IDs that could not have been
// minted by this package fall back to a fresh trace rather than
// letting a peer inject arbitrary identifiers into the store.
func ResumeTrace(id string) *Trace {
	if !ValidTraceID(id) {
		return NewTrace()
	}
	return &Trace{id: id, start: time.Now()}
}

// ValidTraceID reports whether id looks like a trace identifier this
// package mints: 1–64 lowercase hex characters.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TraceParent encodes the context's active trace position as a
// "traceid:spanid" pair for cross-replica propagation (the
// X-Wrbpg-Trace-Parent peer header). Empty when ctx carries no trace.
func TraceParent(ctx context.Context) string {
	a, ok := ctx.Value(ctxKey{}).(active)
	if !ok || a.tr == nil {
		return ""
	}
	return a.tr.id + ":" + strconv.Itoa(a.spanID)
}

// SplitTraceParent parses a TraceParent value back into its trace ID
// and parent span ID. ok is false for anything malformed, so callers
// can treat a bad header as "untraced" without further validation.
func SplitTraceParent(v string) (id string, span int, ok bool) {
	i := strings.LastIndexByte(v, ':')
	if i <= 0 {
		return "", 0, false
	}
	id = v[:i]
	if !ValidTraceID(id) {
		return "", 0, false
	}
	n, err := strconv.Atoi(v[i+1:])
	if err != nil || n < -1 {
		return "", 0, false
	}
	return id, n, true
}

// ID returns the trace's hex identifier.
func (t *Trace) ID() string { return t.id }

// Start returns the trace's wall-clock start time.
func (t *Trace) Start() time.Time { return t.start }

// ctxKey is the context key type for the active span.
type ctxKey struct{}

// active identifies the current span position within a trace.
type active struct {
	tr     *Trace
	spanID int
}

// WithTrace returns a context carrying t with no active span: spans
// started from it become roots.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, active{tr: t, spanID: -1})
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if a, ok := ctx.Value(ctxKey{}).(active); ok {
		return a.tr
	}
	return nil
}

// StartSpan opens a child span of the context's active span (a root
// span when none is active). When ctx carries no trace it returns ctx
// unchanged and a nil span — every Span method is nil-safe, so call
// sites need no tracing-enabled branch.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	a, ok := ctx.Value(ctxKey{}).(active)
	if !ok || a.tr == nil {
		return ctx, nil
	}
	sp := a.tr.newSpan(name, a.spanID)
	if sp == nil { // trace already finished
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, active{tr: a.tr, spanID: sp.id}), sp
}

// newSpan appends a span under the trace lock.
func (t *Trace) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil
	}
	sp := &Span{
		tr:     t,
		id:     len(t.spans),
		parent: parent,
		name:   name,
		start:  time.Since(t.start),
	}
	t.spans = append(t.spans, sp)
	return sp
}

// End closes the span. Safe on nil and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.duration = time.Since(s.tr.start) - s.start
}

// SetAttr annotates the span. Safe on nil; dropped after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
}

// Graft appends a span forest exported by another trace — typically
// the owner replica's subtree returned in the peer response envelope —
// as children of s. Node offsets are re-based from the subtree's wall
// clock onto this trace's clock, clamped so no grafted span starts
// before s itself (cross-host clock skew must not render a child ahead
// of its parent). Parent IDs are assigned at append time under the
// trace lock, so a graft can never introduce orphan spans. Safe on
// nil; dropped once the trace is finished.
func (s *Span) Graft(ex *TraceExport) {
	if s == nil || ex == nil || len(ex.Spans) == 0 {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	base := time.Duration(ex.StartUS-t.start.UnixMicro()) * time.Microsecond
	if base < s.start {
		base = s.start
	}
	var add func(n *SpanNode, parent int)
	add = func(n *SpanNode, parent int) {
		if n == nil {
			return
		}
		sp := &Span{
			tr:       t,
			id:       len(t.spans),
			parent:   parent,
			name:     n.Name,
			start:    base + time.Duration(n.StartUS)*time.Microsecond,
			duration: time.Duration(n.DurationUS) * time.Microsecond,
			ended:    true,
			attrs:    append([]Attr(nil), n.Attrs...),
		}
		t.spans = append(t.spans, sp)
		for _, c := range n.Children {
			add(c, sp.id)
		}
	}
	for _, n := range ex.Spans {
		add(n, s.id)
	}
}

// Finish marks the trace complete: open spans are ended and no further
// spans may start. Call it once, after the request's root span ended.
func (t *Trace) Finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	now := time.Since(t.start)
	for _, sp := range t.spans {
		if !sp.ended {
			sp.ended = true
			sp.duration = now - sp.start
		}
	}
}

// SpanNode is one node of the exported span tree.
type SpanNode struct {
	Name       string      `json:"name"`
	StartUS    int64       `json:"start_us"`
	DurationUS int64       `json:"duration_us"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanNode `json:"children,omitempty"`
}

// TraceExport is the GET /v1/trace/{id} response body: the span forest
// of one completed request.
type TraceExport struct {
	TraceID string      `json:"trace_id"`
	StartUS int64       `json:"start_unix_us"`
	Spans   []*SpanNode `json:"spans"`
}

// Tree exports the trace as a parent-nested span forest. Children are
// ordered by start offset (ties by creation order, which is stable
// because span IDs increase monotonically).
func (t *Trace) Tree() *TraceExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make([]*SpanNode, len(t.spans))
	for i, sp := range t.spans {
		nodes[i] = &SpanNode{
			Name:       sp.name,
			StartUS:    sp.start.Microseconds(),
			DurationUS: sp.duration.Microseconds(),
			Attrs:      append([]Attr(nil), sp.attrs...),
		}
	}
	ex := &TraceExport{TraceID: t.id, StartUS: t.start.UnixMicro()}
	for i, sp := range t.spans {
		if sp.parent >= 0 {
			p := nodes[sp.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			ex.Spans = append(ex.Spans, nodes[i])
		}
	}
	var sortKids func(ns []*SpanNode)
	sortKids = func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartUS < ns[j].StartUS })
		for _, n := range ns {
			sortKids(n.Children)
		}
	}
	sortKids(ex.Spans)
	return ex
}

// ChromeEvent is one chrome://tracing / Perfetto trace_event (complete
// event, ph "X"; timestamps in microseconds).
type ChromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace exports the trace in Chrome trace_event JSON array
// format, loadable by chrome://tracing and Perfetto. Span depth maps
// to the tid column so nested phases stack visually.
func (t *Trace) ChromeTrace() []ChromeEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := make([]int, len(t.spans))
	for i, sp := range t.spans {
		if sp.parent >= 0 {
			depth[i] = depth[sp.parent] + 1
		}
	}
	base := t.start.UnixMicro()
	evs := make([]ChromeEvent, 0, len(t.spans))
	for i, sp := range t.spans {
		ev := ChromeEvent{
			Name: sp.name,
			Ph:   "X",
			TS:   base + sp.start.Microseconds(),
			Dur:  sp.duration.Microseconds(),
			PID:  1,
			TID:  depth[i] + 1,
		}
		if len(sp.attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		evs = append(evs, ev)
	}
	return evs
}

// MarshalJSON renders the trace as its span tree, so a *Trace drops
// straight into a JSON response.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Tree())
}

// TraceStore retains the most recent completed traces for retrieval by
// ID (GET /v1/trace/{id}): a fixed-capacity ring plus an ID index.
type TraceStore struct {
	mu   sync.Mutex
	byID map[string]*Trace
	ring []*Trace
	next int
}

// NewTraceStore returns a store retaining up to cap traces (minimum 1).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceStore{
		byID: make(map[string]*Trace, capacity),
		ring: make([]*Trace, capacity),
	}
}

// Put finishes t and retains it, evicting the oldest stored trace once
// the ring is full.
func (ts *TraceStore) Put(t *Trace) {
	t.Finish()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if old := ts.ring[ts.next]; old != nil {
		delete(ts.byID, old.id)
	}
	ts.ring[ts.next] = t
	ts.byID[t.id] = t
	ts.next = (ts.next + 1) % len(ts.ring)
}

// Get returns the stored trace with the given ID.
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byID[id]
	return t, ok
}

// Len returns the number of stored traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.byID)
}

// String renders a one-line summary for logs.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("trace %s (%d spans)", t.id, len(t.spans))
}
