package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteOpenMetrics renders every registered metric in the OpenMetrics
// flavor of the text exposition: the families and sample lines match
// WriteText (this registry keeps Prometheus-style family names, e.g.
// counters retain their _total suffix in the TYPE line), with two
// additions — histogram bucket lines carry their exemplar when a
// traced observation has landed in the bucket, and the caller is
// expected to terminate the full exposition with `# EOF` (Handler
// does, after the last registry).
//
// Exemplar syntax, per the OpenMetrics spec:
//
//	name_bucket{le="0.25"} 7 # {trace_id="7bf1..."} 0.231 1731000000.123
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	ms := r.snapshotMetrics()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, typeName(m.kind))
		switch {
		case m.hist != nil:
			h := m.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.Bucket(i)
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d%s\n",
					m.name, formatFloat(bound), cum, exemplarSuffix(h.Exemplar(i)))
			}
			cum += h.Bucket(len(h.bounds))
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d%s\n",
				m.name, cum, exemplarSuffix(h.Exemplar(len(h.bounds))))
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, cum)
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(float64(m.counter.Value())))
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(float64(m.gauge.Value())))
		case m.fn != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.fn()))
		case m.vec != nil:
			m.vec.mu.RLock()
			vals := make([]string, 0, len(m.vec.kids))
			for v := range m.vec.kids {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n",
					m.name, m.vec.label, v, formatFloat(float64(m.vec.kids[v].Value())))
			}
			m.vec.mu.RUnlock()
		case m.fvec != nil:
			m.fvec.mu.RLock()
			vals := make([]string, 0, len(m.fvec.kids))
			for v := range m.fvec.kids {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n",
					m.name, m.fvec.label, v, formatFloat(m.fvec.kids[v]()))
			}
			m.fvec.mu.RUnlock()
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// exemplarSuffix renders one bucket's exemplar (empty when the slot is
// unset). The timestamp is seconds with millisecond precision, as the
// spec requires.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	ts := strconv.FormatFloat(float64(e.UnixMS)/1000, 'f', 3, 64)
	return fmt.Sprintf(" # {trace_id=%q} %s %s", e.TraceID, formatFloat(e.Value), ts)
}
