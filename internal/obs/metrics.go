// Package obs is the zero-dependency observability core shared by the
// solver stack and the serving layer: lock-free counter/gauge/histogram
// registries with a Prometheus text-exposition writer, request-scoped
// trace spans with Chrome trace_event export, and log/slog helpers for
// the command-line binaries.
//
// The package sits below every other internal package (it imports only
// the standard library), so the DP kernels, the worker pool and the
// HTTP layer can all feed the same registry without import cycles.
// Hot paths pay one atomic add per event; snapshots and exposition
// never block writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// unusable — obtain counters from a Registry so they are exported.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, live
// sessions).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative histogram with fixed upper bounds. Observe
// is lock-free: one atomic add on the matching bucket plus a CAS loop
// on the (rarely contended) sum.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf implicit
	buckets []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
	count   atomic.Uint64
	// exemplars holds one last-writer-wins slot per bucket (including
	// +Inf at index len(bounds)), linking a recent observation in that
	// bucket back to the trace that produced it. Stores are lock-free
	// pointer swaps; slots stay nil until a traced observation lands.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar pins one recent observation's trace identity to a histogram
// bucket, rendered in OpenMetrics exemplar syntax so a tail-latency
// bucket links straight to GET /v1/trace/{id}.
type Exemplar struct {
	TraceID string
	Value   float64
	UnixMS  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			goto sum
		}
	}
	h.inf.Add(1)
sum:
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// replaces the matching bucket's exemplar slot (last writer wins, one
// atomic pointer swap — racing observers lose nothing but the slot).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := len(h.bounds)
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, UnixMS: time.Now().UnixMilli()})
}

// Exemplar returns bucket i's exemplar, or nil when no traced
// observation has landed there; i == len(bounds) addresses +Inf.
func (h *Histogram) Exemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket returns the (non-cumulative) count of bucket i; i ==
// len(bounds) addresses the +Inf bucket.
func (h *Histogram) Bucket(i int) uint64 {
	if i >= len(h.bounds) {
		return h.inf.Load()
	}
	return h.buckets[i].Load()
}

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// CounterVec is a family of counters partitioned by one label. With
// interns each label value once; callers on hot paths should capture
// the returned *Counter instead of calling With per event.
type CounterVec struct {
	mu    sync.RWMutex
	label string
	kids  map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use.
func (cv *CounterVec) With(value string) *Counter {
	cv.mu.RLock()
	c := cv.kids[value]
	cv.mu.RUnlock()
	if c != nil {
		return c
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c = cv.kids[value]; c == nil {
		c = &Counter{}
		cv.kids[value] = c
	}
	return c
}

// FuncVec is a family of callback-valued series partitioned by one
// label — for per-shard or per-peer quantities another component
// already tracks (shard entry counts, eviction counters) that need no
// second atomic on the hot path. Register the family once
// (GaugeFuncVec / CounterFuncVec), then attach one callback per label
// value with With; each callback is evaluated at exposition time.
type FuncVec struct {
	mu    sync.RWMutex
	label string
	kids  map[string]func() float64
}

// With binds fn as the series for the given label value, replacing any
// earlier binding.
func (fv *FuncVec) With(value string, fn func() float64) {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	fv.kids[value] = fn
}

// metricKind discriminates the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered family: exactly one of the value fields is
// set.
type metric struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	vec        *CounterVec
	fvec       *FuncVec
	fn         func() float64 // counterFunc / gaugeFunc callback
}

// Registry holds registered metrics and renders them in Prometheus
// text exposition format (version 0.0.4). Registration takes a lock;
// updating registered metrics is lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// Default is the process-wide registry the solver-side packages feed
// (memo hit/miss counters, worker-pool counters). Serving layers merge
// it into their own exposition.
var Default = NewRegistry()

// register adds m, panicking on a duplicate name — metric names are
// compile-time constants, so a duplicate is a programming error worth
// failing fast on (mirroring prometheus.MustRegister).
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterVec registers and returns a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{label: label, kids: map[string]*Counter{}}
	r.register(&metric{name: name, help: help, kind: kindCounter, vec: cv})
	return cv
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is fn() at exposition time —
// for quantities another component already tracks (cache entries, pool
// occupancy) that need no second counter on the hot path.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// CounterFunc registers a counter whose value is fn() at exposition
// time; fn must be monotonically non-decreasing (it reads an existing
// atomic counter, e.g. schedcache's).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFuncVec registers and returns a gauge family keyed by label
// whose series are callbacks evaluated at exposition time.
func (r *Registry) GaugeFuncVec(name, help, label string) *FuncVec {
	fv := &FuncVec{label: label, kids: map[string]func() float64{}}
	r.register(&metric{name: name, help: help, kind: kindGauge, fvec: fv})
	return fv
}

// CounterFuncVec registers and returns a counter family keyed by label
// whose series are callbacks evaluated at exposition time; every
// callback must be monotonically non-decreasing.
func (r *Registry) CounterFuncVec(name, help, label string) *FuncVec {
	fv := &FuncVec{label: label, kids: map[string]func() float64{}}
	r.register(&metric{name: name, help: help, kind: kindCounter, fvec: fv})
	return fv
}

// Histogram registers and returns a histogram with the given strictly
// increasing finite upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(h.bounds))
	h.exemplars = make([]atomic.Pointer[Exemplar], len(h.bounds)+1)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// snapshotMetrics copies the registered list under the lock, so the
// (lock-free) value reads below never race with registration.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// WriteText renders every registered metric in Prometheus text
// exposition format, sorted by metric name.
func (r *Registry) WriteText(w io.Writer) error {
	ms := r.snapshotMetrics()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, typeName(m.kind))
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(float64(m.counter.Value())))
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(float64(m.gauge.Value())))
		case m.fn != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.fn()))
		case m.vec != nil:
			m.vec.mu.RLock()
			vals := make([]string, 0, len(m.vec.kids))
			for v := range m.vec.kids {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n",
					m.name, m.vec.label, v, formatFloat(float64(m.vec.kids[v].Value())))
			}
			m.vec.mu.RUnlock()
		case m.fvec != nil:
			m.fvec.mu.RLock()
			vals := make([]string, 0, len(m.fvec.kids))
			for v := range m.fvec.kids {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n",
					m.name, m.fvec.label, v, formatFloat(m.fvec.kids[v]()))
			}
			m.fvec.mu.RUnlock()
		case m.hist != nil:
			h := m.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.Bucket(i)
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += h.Bucket(len(h.bounds))
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, cum)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the merged text exposition of the given registries
// (later registries append after earlier ones; names must not collide
// across them). `?openmetrics=1` (or an Accept header naming
// application/openmetrics-text) switches to the OpenMetrics flavor,
// which carries histogram exemplars and the `# EOF` terminator.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantOpenMetrics(req) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			for _, r := range regs {
				if err := r.WriteOpenMetrics(w); err != nil {
					return
				}
			}
			io.WriteString(w, "# EOF\n")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WriteText(w); err != nil {
				return // client went away; nothing useful to do
			}
		}
	})
}

// wantOpenMetrics implements the /metrics content negotiation: the
// explicit query knob wins, otherwise an Accept header naming the
// OpenMetrics media type.
func wantOpenMetrics(req *http.Request) bool {
	if v := req.URL.Query().Get("openmetrics"); v != "" {
		return v == "1" || v == "true"
	}
	return strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text")
}

func typeName(k metricKind) string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// formatFloat renders a sample value the way Prometheus clients do:
// integral values without an exponent, everything else shortest-form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition
// format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
