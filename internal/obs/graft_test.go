// Tests for the cross-replica tracing primitives: trace-parent header
// round-trips, subtree grafting (the forwarder adopting the owner's
// span export), and the trace store under concurrent churn.
package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestSplitTraceParent(t *testing.T) {
	for _, tc := range []struct {
		in   string
		id   string
		span int
		ok   bool
	}{
		{"ab12cd34ab12cd34:3", "ab12cd34ab12cd34", 3, true},
		{"ab12cd34ab12cd34:-1", "ab12cd34ab12cd34", -1, true},
		{"", "", 0, false},
		{"noseparator", "", 0, false},
		{":5", "", 0, false},
		{"UPPERHEX:5", "", 0, false},
		{"ab12:notanumber", "", 0, false},
		{"ab12:-2", "", 0, false},
	} {
		id, span, ok := SplitTraceParent(tc.in)
		if ok != tc.ok || (ok && (id != tc.id || span != tc.span)) {
			t.Errorf("SplitTraceParent(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.in, id, span, ok, tc.id, tc.span, tc.ok)
		}
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, sp := StartSpan(ctx, "request")
	defer sp.End()
	hdr := TraceParent(ctx)
	id, span, ok := SplitTraceParent(hdr)
	if !ok || id != tr.ID() || span != 0 {
		t.Fatalf("TraceParent %q split to (%q, %d, %v), want (%q, 0, true)", hdr, id, span, ok, tr.ID())
	}
	// Resuming under the parsed ID continues the same trace identity.
	resumed := ResumeTrace(id)
	if resumed.ID() != tr.ID() {
		t.Fatalf("ResumeTrace(%q).ID() = %q", id, resumed.ID())
	}
	// A mangled ID must not be adopted: resume mints a fresh one.
	if got := ResumeTrace("NOT HEX").ID(); !ValidTraceID(got) || got == "NOT HEX" {
		t.Fatalf("ResumeTrace of an invalid ID yielded %q", got)
	}
	if TraceParent(context.Background()) != "" {
		t.Error("TraceParent of an untraced context is non-empty")
	}
}

// TestGraftResumeNoOrphans is the cross-replica stitching property
// test: random owner-side span forests, exported and grafted under a
// random forwarder-side span, must always produce a single connected
// tree — every grafted span reachable from the forwarder's roots, no
// orphans — with starts clamped inside the adopting span's timeline.
func TestGraftResumeNoOrphans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		// Forwarder: a request root with a peer.fill child, exactly the
		// serve-layer shape, plus some unrelated siblings.
		fw := NewTrace()
		fctx := WithTrace(context.Background(), fw)
		rctx, root := StartSpan(fctx, "request")
		extra := rng.Intn(3)
		for i := 0; i < extra; i++ {
			_, s := StartSpan(rctx, fmt.Sprintf("local%d", i))
			s.End()
		}
		pctx, fill := StartSpan(rctx, "peer.fill")
		_ = pctx

		// Owner: resume from the forwarder's trace-parent, then record a
		// random span forest the way handlePeerSchedule does.
		id, _, ok := SplitTraceParent(TraceParent(pctx))
		if !ok {
			t.Fatalf("iter %d: forwarder produced an unparseable trace parent", iter)
		}
		own := ResumeTrace(id)
		if own.ID() != fw.ID() {
			t.Fatalf("iter %d: owner resumed trace %q, want %q", iter, own.ID(), fw.ID())
		}
		octx, oroot := StartSpan(WithTrace(context.Background(), own), "peer.serve")
		ownerSpans := 1
		ctxs := []context.Context{octx}
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			c, s := StartSpan(ctxs[rng.Intn(len(ctxs))], fmt.Sprintf("o%d", i))
			s.End()
			ctxs = append(ctxs, c)
			ownerSpans++
		}
		oroot.End()
		sub := own.Tree()

		fill.Graft(sub)
		fill.End()
		root.End()
		fw.Finish()

		ex := fw.Tree()
		if len(ex.Spans) != 1 || ex.Spans[0].Name != "request" {
			t.Fatalf("iter %d: forwarder roots = %+v, want the single request root", iter, ex.Spans)
		}
		// No orphans: every span — forwarder-local and grafted — is in
		// the tree under the request root.
		total := countTree(ex.Spans)
		want := 2 + extra + ownerSpans // request + peer.fill + locals + graft
		if total != want {
			t.Fatalf("iter %d: tree has %d spans, want %d (orphans dropped?)", iter, total, want)
		}
		var fillNode *SpanNode
		for _, c := range ex.Spans[0].Children {
			if c.Name == "peer.fill" {
				fillNode = c
			}
		}
		if fillNode == nil {
			t.Fatalf("iter %d: peer.fill missing from request children", iter)
		}
		if len(fillNode.Children) != 1 || fillNode.Children[0].Name != "peer.serve" {
			t.Fatalf("iter %d: peer.fill children = %+v, want the grafted peer.serve root",
				iter, fillNode.Children)
		}
		if got := countTree(fillNode.Children); got != ownerSpans {
			t.Fatalf("iter %d: grafted subtree has %d spans, want %d", iter, got, ownerSpans)
		}
		// Clock rebase: the grafted root never starts before the span
		// that awaited it, children never before their parents.
		assertNested(t, iter, fillNode.Children, fillNode.StartUS)
	}
}

func countTree(nodes []*SpanNode) int {
	n := 0
	for _, sp := range nodes {
		n += 1 + countTree(sp.Children)
	}
	return n
}

func assertNested(t *testing.T, iter int, nodes []*SpanNode, parentStart int64) {
	t.Helper()
	for _, n := range nodes {
		if n.StartUS < parentStart {
			t.Fatalf("iter %d: span %q starts %dus before its parent", iter, n.Name, parentStart-n.StartUS)
		}
		assertNested(t, iter, n.Children, n.StartUS)
	}
}

// TestGraftAfterFinishIsNoop: a straggler peer response arriving after
// the forwarder's trace is finished (stored, exported) must not mutate
// the exported tree.
func TestGraftAfterFinishIsNoop(t *testing.T) {
	fw := NewTrace()
	ctx := WithTrace(context.Background(), fw)
	_, fill := StartSpan(ctx, "peer.fill")
	fill.End()
	fw.Finish()
	before := countTree(fw.Tree().Spans)
	fill.Graft(&TraceExport{TraceID: fw.ID(), Spans: []*SpanNode{{Name: "late"}}})
	if after := countTree(fw.Tree().Spans); after != before {
		t.Fatalf("graft after Finish grew the tree from %d to %d spans", before, after)
	}
}

// TestTraceStoreChurn: concurrent writers evicting through a tiny ring
// while readers Get random IDs — run under -race by `make obs-check`.
// Every lookup must be a clean hit or miss, the ring must never exceed
// its capacity, and the newest traces must remain retrievable.
func TestTraceStoreChurn(t *testing.T) {
	const (
		capacity = 8
		writers  = 8
		perW     = 200
	)
	ts := NewTraceStore(capacity)
	ids := make(chan string, writers*perW)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tr := NewTrace()
				ctx := WithTrace(context.Background(), tr)
				_, sp := StartSpan(ctx, "request")
				sp.End()
				ts.Put(tr)
				ids <- tr.ID()
				if got, ok := ts.Get(tr.ID()); ok && got.ID() != tr.ID() {
					t.Errorf("Get(%q) returned trace %q", tr.ID(), got.ID())
				}
			}
		}()
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			seen := []string{}
			for {
				select {
				case id := <-ids:
					seen = append(seen, id)
				case <-done:
					return
				default:
					if len(seen) > 0 {
						id := seen[rand.Intn(len(seen))]
						if tr, ok := ts.Get(id); ok {
							// Evicted-or-present is fine; a hit must export.
							if tr.Tree().TraceID != id {
								t.Errorf("trace %q exported wrong ID", id)
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if ts.Len() != capacity {
		t.Fatalf("store holds %d traces after churn, want the full ring of %d", ts.Len(), capacity)
	}
	// The very last Put from some writer is among the newest `capacity`
	// traces fleet-wide only per-writer ordering is guaranteed, so just
	// assert Get still works on whatever the ring reports as resident.
	last := NewTrace()
	ts.Put(last)
	if _, ok := ts.Get(last.ID()); !ok {
		t.Fatal("freshly put trace not retrievable after churn")
	}
}
