package fft

import (
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/wcfg"
)

func buildOrFatal(t *testing.T, n int, cfg wcfg.Config) *Graph {
	t.Helper()
	g, err := Build(n, cfg)
	if err != nil {
		t.Fatalf("Build(%d): %v", n, err)
	}
	return g
}

func TestBuildRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12, -8} {
		if _, err := Build(n, wcfg.Equal(16)); err == nil {
			t.Errorf("Build(%d) should fail", n)
		}
	}
}

func TestStructure(t *testing.T) {
	g := buildOrFatal(t, 8, wcfg.Equal(16))
	if g.K != 3 {
		t.Fatalf("K = %d", g.K)
	}
	if g.G.Len() != 8+3*8 {
		t.Errorf("nodes = %d, want 32", g.G.Len())
	}
	if g.G.EdgeCount() != 2*3*8 {
		t.Errorf("edges = %d, want 48", g.G.EdgeCount())
	}
	// Stage 1 pairs at distance 1, stage 2 at distance 2, stage 3 at 4.
	for s := 1; s <= 3; s++ {
		bit := 1 << uint(s-1)
		for j := 0; j < 8; j++ {
			ps := g.G.Parents(g.Stages[s][j])
			if ps[0] != g.Stages[s-1][j] || ps[1] != g.Stages[s-1][j^bit] {
				t.Fatalf("stage %d node %d parents wrong", s, j)
			}
		}
	}
	// Every non-final node has out-degree 2; outputs are the final
	// stage.
	for s := 0; s < 3; s++ {
		for _, v := range g.Stages[s] {
			if g.G.OutDegree(v) != 2 {
				t.Errorf("stage %d node out-degree %d", s, g.G.OutDegree(v))
			}
		}
	}
	if len(g.G.Sinks()) != 8 {
		t.Errorf("sinks = %d", len(g.G.Sinks()))
	}
	if g.G.IsTree() {
		t.Error("butterfly graph must not be a tree")
	}
}

// TestBlockedScheduleValidAndPredicted: across sizes, block exponents
// and weightings, schedules validate and match both closed forms.
func TestBlockedScheduleValidAndPredicted(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, n := range []int{2, 4, 8, 16, 32} {
			g := buildOrFatal(t, n, cfg)
			for tt := 1; tt <= g.K; tt++ {
				sched, err := g.BlockedSchedule(tt)
				if err != nil {
					t.Fatalf("%s FFT(%d) t=%d: %v", cfg.Name, n, tt, err)
				}
				peak := g.PredictPeak(tt)
				stats, err := core.Simulate(g.G, peak, sched)
				if err != nil {
					t.Fatalf("%s FFT(%d) t=%d: %v", cfg.Name, n, tt, err)
				}
				if stats.PeakRedWeight != peak {
					t.Errorf("%s FFT(%d) t=%d: peak %d != predicted %d", cfg.Name, n, tt, stats.PeakRedWeight, peak)
				}
				if want := g.PredictCost(tt); stats.Cost != want {
					t.Errorf("%s FFT(%d) t=%d: cost %d != predicted %d", cfg.Name, n, tt, stats.Cost, want)
				}
			}
		}
	}
}

func TestCostDecreasesWithBlockSize(t *testing.T) {
	g := buildOrFatal(t, 64, wcfg.Equal(16))
	prev := Inf
	for tt := 1; tt <= g.K; tt++ {
		c := g.PredictCost(tt)
		if c > prev {
			t.Fatalf("cost increased at t=%d", tt)
		}
		prev = c
	}
	if got := g.PredictCost(g.K); got != core.LowerBound(g.G) {
		t.Errorf("single-pass cost %d != LB %d", got, core.LowerBound(g.G))
	}
}

// TestHongKungShape: halving log-memory roughly doubles the extra
// I/O — the n log n / log S law.
func TestHongKungShape(t *testing.T) {
	g := buildOrFatal(t, 256, wcfg.Equal(16)) // K = 8
	lb := core.LowerBound(g.G)
	extra := func(tt int) cdag.Weight { return g.PredictCost(tt) - lb }
	// t=8 → 1 pass (0 extra); t=4 → 2 passes; t=2 → 4; t=1 → 8.
	if extra(8) != 0 {
		t.Errorf("extra at t=8 = %d", extra(8))
	}
	e4, e2, e1 := extra(4), extra(2), extra(1)
	if !(e1 > e2 && e2 > e4 && e4 > 0) {
		t.Fatalf("extras not ordered: %d %d %d", e4, e2, e1)
	}
	if e2 != 3*e4 || e1 != 7*e4 {
		t.Errorf("pass scaling wrong: e4=%d e2=%d e1=%d", e4, e2, e1)
	}
}

func TestSearchAndMinMemory(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		g := buildOrFatal(t, 16, cfg)
		b := g.MinMemory()
		tt, cost, err := g.Search(b)
		if err != nil {
			t.Fatal(err)
		}
		if tt != g.K || cost != core.LowerBound(g.G) {
			t.Errorf("%s: at MinMemory t=%d cost=%d", cfg.Name, tt, cost)
		}
		if g.MinCost(b-1) == core.LowerBound(g.G) {
			t.Errorf("%s: LB met below MinMemory", cfg.Name)
		}
		if _, _, err := g.Search(g.PredictPeak(1) - 1); err == nil {
			t.Error("budget below minimum should fail")
		}
	}
}

// TestLinearMemoryContrast: the butterfly's minimum memory for
// compulsory-only I/O grows linearly in n, whereas the DWT's grows
// logarithmically — the structural point of this package.
func TestLinearMemoryContrast(t *testing.T) {
	m16 := buildOrFatal(t, 16, wcfg.Equal(16)).MinMemory()
	m64 := buildOrFatal(t, 64, wcfg.Equal(16)).MinMemory()
	if m64 < 3*m16 {
		t.Errorf("min memory should scale ~linearly: %d vs %d", m16, m64)
	}
}

// TestOptimalityGapAgainstExact: on FFT(4) the blocked schedule is
// exactly optimal at full memory and within the window overhead at
// t=1.
func TestOptimalityGapAgainstExact(t *testing.T) {
	g := buildOrFatal(t, 4, wcfg.Equal(1))
	full := g.MinMemory()
	res, err := exact.Solve(g.G, full)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinCost(full); got != res.Cost {
		t.Errorf("blocked at full memory = %d, exact = %d", got, res.Cost)
	}
	small := g.PredictPeak(1)
	resS, err := exact.Solve(g.G, small)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinCost(small); got < resS.Cost {
		t.Errorf("blocked beat exact: %d < %d", got, resS.Cost)
	}
}

func TestBlockedScheduleBadT(t *testing.T) {
	g := buildOrFatal(t, 8, wcfg.Equal(16))
	for _, tt := range []int{0, -1, 4} {
		if _, err := g.BlockedSchedule(tt); err == nil {
			t.Errorf("t=%d should fail", tt)
		}
	}
}

func TestPassCounts(t *testing.T) {
	g := buildOrFatal(t, 256, wcfg.Equal(16))
	cases := map[int]int{1: 8, 2: 4, 3: 3, 4: 2, 8: 1, 9: 1}
	for tt, want := range cases {
		if got := g.Passes(tt); got != want {
			t.Errorf("Passes(%d) = %d, want %d", tt, got, want)
		}
	}
	if g.Passes(0) != 0 {
		t.Error("Passes(0) should be 0")
	}
}

// TestEveryNodeComputedOnce: the blocked schedule computes each
// non-input node exactly once (no recomputation, ever).
func TestEveryNodeComputedOnce(t *testing.T) {
	g := buildOrFatal(t, 16, wcfg.Equal(16))
	sched, err := g.BlockedSchedule(2)
	if err != nil {
		t.Fatal(err)
	}
	count := map[cdag.NodeID]int{}
	for _, m := range sched {
		if m.Kind == core.M3 {
			count[m.Node]++
		}
	}
	for s := 1; s <= g.K; s++ {
		for _, v := range g.Stages[s] {
			if count[v] != 1 {
				t.Fatalf("stage %d node computed %d times", s, count[v])
			}
		}
	}
}

func TestPeakMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 1 << uint(2+int(seed&3)) // 4..32
		g, err := Build(n, wcfg.DoubleAccumulator(16))
		if err != nil {
			return false
		}
		prev := cdag.Weight(0)
		for tt := 1; tt <= g.K; tt++ {
			p := g.PredictPeak(tt)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
