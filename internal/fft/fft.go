// Package fft extends the dataflow-specific scheduling approach to
// the radix-2 butterfly graphs of the fast Fourier transform — the
// family the paper's introduction points to as sharing the DWT's
// recursive divide-and-conquer structure ("DWT's recursive
// divide-and-conquer structure appears in filters and fast Fourier
// transforms").
//
// An FFT(n) graph has log₂(n) stages of n nodes; the two nodes of a
// butterfly share the same two parents from the previous stage, so
// unlike the DWT's pruned binary trees every node has out-degree two
// and the graph is *not* a tree — tree-optimal pebbling does not
// apply, and the classic blocked FFT schedule takes its place: with
// room for 2^t values, the transform runs in ⌈log₂(n)/t⌉ passes,
// each pass streaming groups of 2^t values through t stages entirely
// in fast memory. This reproduces the Hong–Kung Θ(n log n / log S)
// I/O behaviour inside the WRBPG, weighted variants included.
//
// The same dataflow computes the Walsh–Hadamard transform with ±1
// butterflies, which keeps the machine-execution tests real-valued
// (package machine works on float64 scalars); the pebbling structure
// is identical to the complex FFT's.
package fft

import (
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// Inf is the sentinel cost of an infeasible configuration.
const Inf cdag.Weight = math.MaxInt64 / 4

// Graph is a radix-2 butterfly CDAG with its stage layout.
type Graph struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// N is the transform size (a power of two ≥ 2); K = log₂(N).
	N, K int
	// Cfg records the weight configuration.
	Cfg wcfg.Config
	// Stages[s][j] is the node of index j after s stages; Stages[0]
	// holds the inputs, Stages[K] the outputs.
	Stages [][]cdag.NodeID
}

// Build constructs the FFT(n) butterfly graph. n must be a power of
// two, at least 2.
func Build(n int, cfg wcfg.Config) (*Graph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: n=%d must be a power of two ≥ 2", n)
	}
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	g := &cdag.Graph{}
	out := &Graph{G: g, N: n, K: k, Cfg: cfg, Stages: make([][]cdag.NodeID, k+1)}
	out.Stages[0] = make([]cdag.NodeID, n)
	for j := 0; j < n; j++ {
		out.Stages[0][j] = g.AddNode(cfg.Input(), fmt.Sprintf("x[%d]", j))
	}
	for s := 1; s <= k; s++ {
		out.Stages[s] = make([]cdag.NodeID, n)
		bit := 1 << uint(s-1)
		for j := 0; j < n; j++ {
			p1 := out.Stages[s-1][j]
			p2 := out.Stages[s-1][j^bit]
			out.Stages[s][j] = g.AddNode(cfg.Node(), fmt.Sprintf("s%d[%d]", s, j), p1, p2)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("fft: internal construction error: %w", err)
	}
	return out, nil
}

// Passes returns ⌈K/t⌉, the number of passes of the blocked schedule
// with block exponent t.
func (g *Graph) Passes(t int) int {
	if t < 1 {
		return 0
	}
	if t > g.K {
		t = g.K
	}
	return (g.K + t - 1) / t
}

// BlockedSchedule emits the classic I/O-efficient FFT schedule for
// block exponent t (block size 2^t values): each pass loads one
// group of 2^t values sharing all index bits outside the pass's
// stage window, runs the window's stages with butterflies resolved
// pairwise (compute both children, then release both parents), and
// stores the window's final stage.
func (g *Graph) BlockedSchedule(t int) (core.Schedule, error) {
	if t < 1 || t > g.K {
		return nil, fmt.Errorf("fft: block exponent %d out of range [1,%d]", t, g.K)
	}
	var s core.Schedule
	mv := func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	}
	for lo := 0; lo < g.K; lo += t {
		hi := lo + t
		if hi > g.K {
			hi = g.K
		}
		width := hi - lo
		group := 1 << uint(width)
		// Enumerate group bases: indices with zeros in bit window
		// [lo, hi).
		mask := (group - 1) << uint(lo)
		for base := 0; base < g.N; base++ {
			if base&mask != 0 {
				continue
			}
			members := make([]int, group)
			for m := 0; m < group; m++ {
				members[m] = base | m<<uint(lo)
			}
			for _, j := range members {
				mv(core.M1, g.Stages[lo][j])
			}
			for st := lo + 1; st <= hi; st++ {
				bit := 1 << uint(st-1)
				for _, j := range members {
					if j&bit != 0 {
						continue // handled as the pair's low member
					}
					p := j | bit
					mv(core.M3, g.Stages[st][j])
					mv(core.M3, g.Stages[st][p])
					mv(core.M4, g.Stages[st-1][j])
					mv(core.M4, g.Stages[st-1][p])
				}
			}
			for _, j := range members {
				mv(core.M2, g.Stages[hi][j])
				mv(core.M4, g.Stages[hi][j])
			}
		}
	}
	return s, nil
}

// PredictCost returns the weighted I/O of BlockedSchedule(t): inputs
// once, the window boundary of every pass written once and (except
// the final outputs) read back by the next pass.
func (g *Graph) PredictCost(t int) cdag.Weight {
	p := g.Passes(t)
	if p == 0 {
		return Inf
	}
	wi, wn := g.Cfg.Input(), g.Cfg.Node()
	n := cdag.Weight(g.N)
	return n*wi + n*wn*cdag.Weight(2*p-1)
}

// PredictPeak returns the peak red weight of BlockedSchedule(t): a
// full group resident plus the two in-flight butterfly outputs.
func (g *Graph) PredictPeak(t int) cdag.Weight {
	if t > g.K {
		t = g.K
	}
	if t < 1 {
		return Inf
	}
	wi, wn := g.Cfg.Input(), g.Cfg.Node()
	group := cdag.Weight(int64(1) << uint(t))
	// Within the first stage of the first pass, residency after i
	// butterflies is (group−2i)·wi + 2i·wn plus the two in-flight
	// children — linear in i, so the peak sits at an endpoint. Later
	// stages hold stage values only.
	peak := group*wi + 2*wn             // first butterfly of the input stage
	if p := 2*wi + group*wn; p > peak { // last butterfly of the input stage
		peak = p
	}
	if g.K >= 2 { // stages with stage-value parents exist
		if p := (group + 2) * wn; p > peak {
			peak = p
		}
	}
	return peak
}

// Search returns the cheapest block exponent whose peak fits the
// budget, with its predicted cost.
func (g *Graph) Search(budget cdag.Weight) (int, cdag.Weight, error) {
	for t := g.K; t >= 1; t-- {
		if g.PredictPeak(t) <= budget {
			return t, g.PredictCost(t), nil
		}
	}
	return 0, Inf, fmt.Errorf("fft: no blocked schedule fits budget %d (minimum %d)", budget, g.PredictPeak(1))
}

// MinCost returns the best blocked cost under the budget, Inf if none
// fits.
func (g *Graph) MinCost(budget cdag.Weight) cdag.Weight {
	_, c, err := g.Search(budget)
	if err != nil {
		return Inf
	}
	return c
}

// MinMemory returns the smallest budget at which the blocked
// scheduler meets the algorithmic lower bound: one pass over the
// whole transform (t = K). Unlike the DWT's logarithmic minimum,
// the butterfly dataflow needs linear fast memory for
// compulsory-only I/O — the structural contrast the package exists
// to exhibit.
func (g *Graph) MinMemory() cdag.Weight {
	return g.PredictPeak(g.K)
}
