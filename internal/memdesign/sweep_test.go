package memdesign

import (
	"testing"

	"wrbpg/internal/cdag"
)

// stepFn is non-increasing: 100 above b=40, 10 from 40.
func stepFn(b cdag.Weight) cdag.Weight {
	if b >= 40 {
		return 10
	}
	return 100
}

// combFn is non-monotone: hits target only at exactly b = 28 and 52.
func combFn(b cdag.Weight) cdag.Weight {
	if b == 28 || b == 52 {
		return 7
	}
	return 99
}

func TestSweepCosts(t *testing.T) {
	budgets := []cdag.Weight{8, 16, 40, 48}
	for _, w := range []int{1, 4} {
		got := SweepCosts(stepFn, budgets, w)
		want := []cdag.Weight{100, 100, 10, 10}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: SweepCosts[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
	if got := SweepCosts(stepFn, nil, 4); len(got) != 0 {
		t.Fatalf("empty sweep returned %v", got)
	}
}

func TestSearchLinearParallelMatchesSerial(t *testing.T) {
	want, err := SearchLinear(combFn, 7, 0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 16} {
		got, err := SearchLinearParallel(combFn, 7, 0, 100, 4, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: parallel found %d, serial %d", w, got, want)
		}
	}
}

func TestSearchLinearParallelMiss(t *testing.T) {
	if _, err := SearchLinearParallel(combFn, 7, 0, 20, 4, 3); err == nil {
		t.Error("target beyond range should error")
	}
	if _, err := SearchLinearParallel(combFn, 7, 60, 20, 4, 3); err == nil {
		t.Error("empty range should error")
	}
}

// TestSearchLinearParallelSmallestWins: with hits in two different
// chunks, the smaller budget is returned.
func TestSearchLinearParallelSmallestWins(t *testing.T) {
	got, err := SearchLinearParallel(combFn, 7, 0, 100, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 28 {
		t.Fatalf("found %d, want 28", got)
	}
}
