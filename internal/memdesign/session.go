// Session-aware budget searches: the same monotone/linear searches and
// sweeps as memdesign.go, but threading a context and guard limits
// through a warm solver session (dwt.Session, ktree.Session,
// memstate.Session, mvm.Session, solve.Session) instead of calling a
// bare CostFn. Every budget probe lands in the same memo, so a binary
// search costs O(log) warm queries inside one cold solve's worth of
// work rather than O(log) independent cold solves.

package memdesign

import (
	"context"
	"fmt"
	"runtime/debug"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// CostQuerier answers repeated budget → cost queries against shared
// warm state. The family Session types implement it. Implementations
// return the cost (with the family's Inf sentinel for infeasible
// budgets) and a non-nil error only when the query was aborted
// (guard.ErrCanceled / guard.ErrDeadline / guard.ErrBudgetExceeded,
// wrapped).
type CostQuerier interface {
	CostCtx(ctx context.Context, lim guard.Limits, budget cdag.Weight) (cdag.Weight, error)
}

// SearchMonotoneSession is SearchMonotone over a warm session: it
// finds the smallest budget in [lo, hi] (multiples of step) at which q
// reports target, assuming the cost is non-increasing in the budget.
// The O(log) probes all land in the session's memo.
func SearchMonotoneSession(ctx context.Context, lim guard.Limits, q CostQuerier, target cdag.Weight, lo, hi, step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	if r := lo % step; r != 0 {
		lo += step - r
	}
	if r := hi % step; r != 0 {
		hi += step - r
	}
	c, err := q.CostCtx(ctx, lim, hi)
	if err != nil {
		return 0, err
	}
	if c != target {
		return 0, fmt.Errorf("memdesign: target cost %d not reached at budget %d", target, hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		mid -= mid % step
		if mid < lo {
			mid = lo
		}
		c, err := q.CostCtx(ctx, lim, mid)
		if err != nil {
			return 0, err
		}
		if c == target {
			hi = mid
		} else {
			lo = mid + step
		}
	}
	return hi, nil
}

// SearchLinearSession is SearchLinear over a warm session: the first
// budget in [lo, hi] (multiples of step) at which q reports target,
// for cost functions that are not monotone.
func SearchLinearSession(ctx context.Context, lim guard.Limits, q CostQuerier, target cdag.Weight, lo, hi, step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	if r := lo % step; r != 0 {
		lo += step - r
	}
	for b := lo; b <= hi; b += step {
		c, err := q.CostCtx(ctx, lim, b)
		if err != nil {
			return 0, err
		}
		if c == target {
			return b, nil
		}
	}
	return 0, fmt.Errorf("memdesign: target cost %d not reached up to budget %d", target, hi)
}

// SweepCostsSession evaluates every budget against the warm session,
// appending the costs to out (pass out[:0] of a retained slice for
// allocation-free steady state) in budget order. Sessions are
// stateful, so the sweep is serial — warm queries make parallelism
// pointless anyway. Each item passes through the par fault-injection
// hook (par.SetFaultHook); a hook- or solver-panic surfaces as a
// *par.PanicError naming the budget index, with the partial prefix
// returned. An aborted query likewise returns the prefix and its
// error.
func SweepCostsSession(ctx context.Context, lim guard.Limits, q CostQuerier, budgets []cdag.Weight, out []cdag.Weight) ([]cdag.Weight, error) {
	for i, b := range budgets {
		c, err := sweepOne(ctx, lim, q, i, b)
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
	return out, nil
}

// sweepOne evaluates one budget with fault injection and panic
// recovery, mirroring a par pool worker's crash isolation.
func sweepOne(ctx context.Context, lim guard.Limits, q CostQuerier, i int, b cdag.Weight) (c cdag.Weight, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &par.PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	par.Fault(i)
	return q.CostCtx(ctx, lim, b)
}
