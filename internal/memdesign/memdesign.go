// Package memdesign turns the WRBPG's minimum fast memory sizes
// (Definition 2.6) into concrete on-chip memory specifications:
// word-granular capacities and the power-of-two rounding used before
// physical synthesis (Section 5.3), plus generic budget-search
// helpers shared by the schedulers.
package memdesign

import (
	"fmt"

	"wrbpg/internal/cdag"
)

// Spec is a fast-memory design point: the scheduler-derived minimum
// plus the synthesizable rounded capacity.
type Spec struct {
	// Words is the minimum fast memory size in memory words.
	Words int
	// WordBits is the word width in bits.
	WordBits int
	// MinBits is Words × WordBits — the "Minimum Capacity" column of
	// Table 1.
	MinBits cdag.Weight
	// Pow2Bits is MinBits rounded up to a power of two — the
	// "Power-of-Two Capacity" column, the size actually synthesized.
	Pow2Bits cdag.Weight
}

// NewSpec builds a Spec from a budget in bits (rounded up to whole
// words). It panics on a non-positive word size; use TrySpec when the
// word size comes from untrusted input (flags, config files).
func NewSpec(bits cdag.Weight, wordBits int) Spec {
	s, err := TrySpec(bits, wordBits)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// TrySpec is NewSpec returning an error instead of panicking on
// invalid parameters.
func TrySpec(bits cdag.Weight, wordBits int) (Spec, error) {
	if wordBits <= 0 {
		return Spec{}, fmt.Errorf("memdesign: word size must be positive, got %d", wordBits)
	}
	if bits < 0 {
		return Spec{}, fmt.Errorf("memdesign: capacity must be non-negative, got %d bits", bits)
	}
	wb := cdag.Weight(wordBits)
	words := int((bits + wb - 1) / wb)
	minBits := cdag.Weight(words) * wb
	return Spec{Words: words, WordBits: wordBits, MinBits: minBits, Pow2Bits: Pow2(minBits)}, nil
}

// Pow2WordCapacity returns the capacity rounded up to a power-of-two
// number of *words* — the rounding that stays synthesizable for word
// sizes that do not divide powers of two (e.g. 12-bit words), used by
// the mixed-precision design-space explorer.
func (s Spec) Pow2WordCapacity() cdag.Weight {
	return Pow2(cdag.Weight(s.Words)) * cdag.Weight(s.WordBits)
}

func (s Spec) String() string {
	return fmt.Sprintf("%d words × %d bits = %d bits (synthesized: %d)", s.Words, s.WordBits, s.MinBits, s.Pow2Bits)
}

// Pow2 rounds a positive capacity up to the next power of two.
func Pow2(bits cdag.Weight) cdag.Weight {
	if bits <= 0 {
		return 0
	}
	p := cdag.Weight(1)
	for p < bits {
		p <<= 1
	}
	return p
}

// Reduction returns the percent reduction from base to ours,
// e.g. Reduction(8192, 256) = 96.875.
func Reduction(base, ours cdag.Weight) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * float64(base-ours) / float64(base)
}

// CostFn maps a budget to a schedule cost; Inf-like sentinels mark
// infeasible budgets.
type CostFn func(budget cdag.Weight) cdag.Weight

// SearchMonotone finds the smallest budget in [lo, hi] (multiples of
// step) at which fn returns target, assuming fn is non-increasing in
// the budget. It returns an error when even hi misses the target.
func SearchMonotone(fn CostFn, target cdag.Weight, lo, hi, step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	if r := lo % step; r != 0 {
		lo += step - r
	}
	if r := hi % step; r != 0 {
		hi += step - r
	}
	if fn(hi) != target {
		return 0, fmt.Errorf("memdesign: target cost %d not reached at budget %d", target, hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		mid -= mid % step
		if mid < lo {
			mid = lo
		}
		if fn(mid) == target {
			hi = mid
		} else {
			lo = mid + step
		}
	}
	return hi, nil
}

// SearchLinear scans budgets from lo to hi (multiples of step) for
// the first one where fn returns target; for cost functions that are
// not monotone, such as spill heuristics.
func SearchLinear(fn CostFn, target cdag.Weight, lo, hi, step cdag.Weight) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	if r := lo % step; r != 0 {
		lo += step - r
	}
	for b := lo; b <= hi; b += step {
		if fn(b) == target {
			return b, nil
		}
	}
	return 0, fmt.Errorf("memdesign: target cost %d not reached up to budget %d", target, hi)
}
