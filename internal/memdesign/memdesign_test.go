package memdesign

import (
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
)

func TestPow2(t *testing.T) {
	cases := map[cdag.Weight]cdag.Weight{
		1: 1, 2: 2, 3: 4, 160: 256, 288: 512, 1584: 2048, 2016: 2048,
		3088: 4096, 4624: 8192, 7120: 8192, 10176: 16384, 4096: 4096,
	}
	for in, want := range cases {
		if got := Pow2(in); got != want {
			t.Errorf("Pow2(%d) = %d, want %d", in, got, want)
		}
	}
	if Pow2(0) != 0 || Pow2(-5) != 0 {
		t.Error("Pow2 of non-positive should be 0")
	}
}

func TestPow2Property(t *testing.T) {
	f := func(x uint16) bool {
		if x == 0 {
			return true
		}
		p := Pow2(cdag.Weight(x))
		return p >= cdag.Weight(x) && p < 2*cdag.Weight(x) && p&(p-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTable1Specs reproduces the word/bit/pow-2 columns of Table 1
// for our approaches' minimum sizes.
func TestTable1Specs(t *testing.T) {
	cases := []struct {
		bits  cdag.Weight
		words int
		pow2  cdag.Weight
	}{
		{160, 10, 256},    // Optimum Equal DWT
		{288, 18, 512},    // Optimum DA DWT
		{1584, 99, 2048},  // Tiling Equal MVM
		{2016, 126, 2048}, // Tiling DA MVM
		{3088, 193, 4096}, // IOOpt UB Equal MVM
		{4624, 289, 8192}, // IOOpt UB DA MVM
	}
	for _, c := range cases {
		s := NewSpec(c.bits, 16)
		if s.Words != c.words || s.MinBits != c.bits || s.Pow2Bits != c.pow2 {
			t.Errorf("NewSpec(%d): %+v, want words=%d pow2=%d", c.bits, s, c.words, c.pow2)
		}
	}
}

func TestNewSpecRoundsUp(t *testing.T) {
	s := NewSpec(17, 16)
	if s.Words != 2 || s.MinBits != 32 {
		t.Errorf("NewSpec(17,16) = %+v, want 2 words / 32 bits", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestPow2WordCapacity(t *testing.T) {
	s := NewSpec(120, 12) // 10 words of 12 bits
	if s.Words != 10 {
		t.Fatalf("words = %d", s.Words)
	}
	if got := s.Pow2WordCapacity(); got != 16*12 {
		t.Errorf("Pow2WordCapacity = %d, want 192", got)
	}
	// For 16-bit words it agrees with the bit rounding of Table 1.
	s16 := NewSpec(160, 16)
	if s16.Pow2WordCapacity() != s16.Pow2Bits {
		t.Errorf("16-bit pow2 forms disagree: %d vs %d", s16.Pow2WordCapacity(), s16.Pow2Bits)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(8192, 256); got < 96.8 || got > 96.9 {
		t.Errorf("Reduction(8192,256) = %f", got)
	}
	if got := Reduction(0, 10); got != 0 {
		t.Errorf("Reduction with zero base = %f", got)
	}
	if got := Reduction(100, 100); got != 0 {
		t.Errorf("Reduction equal = %f", got)
	}
}

func TestSearchMonotone(t *testing.T) {
	// Step cost: 100 above budget 50, 10 at or above.
	fn := func(b cdag.Weight) cdag.Weight {
		if b >= 50 {
			return 10
		}
		return 100
	}
	got, err := SearchMonotone(fn, 10, 1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("SearchMonotone = %d, want 50", got)
	}
	// Step alignment: with step 16 the answer rounds up to 64.
	got, err = SearchMonotone(fn, 10, 16, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Errorf("SearchMonotone step 16 = %d, want 64", got)
	}
	if _, err := SearchMonotone(fn, 5, 1, 1000, 1); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestSearchLinear(t *testing.T) {
	// Non-monotone: target hit only at exactly 37.
	fn := func(b cdag.Weight) cdag.Weight {
		if b == 37 {
			return 1
		}
		return 2
	}
	got, err := SearchLinear(fn, 1, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 37 {
		t.Errorf("SearchLinear = %d, want 37", got)
	}
	if _, err := SearchLinear(fn, 3, 1, 100, 1); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestSearchAgreesOnMonotone(t *testing.T) {
	f := func(cut uint8) bool {
		threshold := cdag.Weight(cut%97) + 1
		fn := func(b cdag.Weight) cdag.Weight {
			if b >= threshold {
				return 0
			}
			return 1
		}
		a, err1 := SearchMonotone(fn, 0, 1, 200, 1)
		b, err2 := SearchLinear(fn, 0, 1, 200, 1)
		return err1 == nil && err2 == nil && a == b && a == threshold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
