package memdesign

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// fnQuerier adapts a pure cost function to CostQuerier, counting
// queries so tests can assert probe budgets.
type fnQuerier struct {
	fn    func(cdag.Weight) cdag.Weight
	err   error
	calls int
}

func (q *fnQuerier) CostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	q.calls++
	if q.err != nil {
		return 0, q.err
	}
	return q.fn(b), nil
}

// TestSearchSessionMatchesPlain: the session-aware searches must find
// exactly what their CostFn counterparts find.
func TestSearchSessionMatchesPlain(t *testing.T) {
	ctx := context.Background()
	wantM, err := SearchMonotone(stepFn, 10, 0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := SearchMonotoneSession(ctx, guard.Limits{}, &fnQuerier{fn: stepFn}, 10, 0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gotM != wantM {
		t.Errorf("SearchMonotoneSession = %d, SearchMonotone = %d", gotM, wantM)
	}

	wantL, err := SearchLinear(combFn, 7, 0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	gotL, err := SearchLinearSession(ctx, guard.Limits{}, &fnQuerier{fn: combFn}, 7, 0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gotL != wantL {
		t.Errorf("SearchLinearSession = %d, SearchLinear = %d", gotL, wantL)
	}

	// Miss cases error like the plain searches.
	if _, err := SearchMonotoneSession(ctx, guard.Limits{}, &fnQuerier{fn: stepFn}, 1, 0, 100, 4); err == nil {
		t.Error("unreachable monotone target should error")
	}
	if _, err := SearchLinearSession(ctx, guard.Limits{}, &fnQuerier{fn: combFn}, 7, 0, 20, 4); err == nil {
		t.Error("target beyond linear range should error")
	}
}

// TestSearchSessionPropagatesAbort: a querier abort (deadline etc.)
// surfaces from the search instead of being misread as a cost.
func TestSearchSessionPropagatesAbort(t *testing.T) {
	ctx := context.Background()
	q := &fnQuerier{err: fmt.Errorf("wrapped: %w", guard.ErrDeadline)}
	if _, err := SearchMonotoneSession(ctx, guard.Limits{}, q, 10, 0, 100, 4); !errors.Is(err, guard.ErrDeadline) {
		t.Errorf("monotone abort: got %v", err)
	}
	if _, err := SearchLinearSession(ctx, guard.Limits{}, q, 7, 0, 100, 4); !errors.Is(err, guard.ErrDeadline) {
		t.Errorf("linear abort: got %v", err)
	}
}

// TestSweepCostsSession: session sweep matches direct evaluation,
// reuses the out buffer, and reports injected faults as typed panic
// errors with the partial prefix.
func TestSweepCostsSession(t *testing.T) {
	ctx := context.Background()
	budgets := []cdag.Weight{8, 16, 40, 48}
	out, err := SweepCostsSession(ctx, guard.Limits{}, &fnQuerier{fn: stepFn}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []cdag.Weight{100, 100, 10, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SweepCostsSession[%d] = %d, want %d", i, out[i], want[i])
		}
	}

	restore := par.SetFaultHook(func(i int) {
		if i == 2 {
			panic("injected memdesign fault")
		}
	})
	defer restore()
	partial, err := SweepCostsSession(ctx, guard.Limits{}, &fnQuerier{fn: stepFn}, budgets, out[:0])
	var pe *par.PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("fault run: err = %v, want *par.PanicError at index 2", err)
	}
	if len(partial) != 2 || partial[0] != 100 || partial[1] != 100 {
		t.Fatalf("fault run prefix = %v, want the first two costs", partial)
	}
}
