package memdesign

import (
	"context"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/par"
)

// SweepCosts evaluates fn at every budget on a bounded worker pool
// and returns the costs in budget order. fn must be safe for
// concurrent use (the closed-form mvm predictors are; a memoizing
// scheduler is not — wrap each worker's share in its own scheduler,
// or pass workers = 1).
func SweepCosts(fn CostFn, budgets []cdag.Weight, workers int) []cdag.Weight {
	out, _ := SweepCostsCtx(context.Background(), fn, budgets, workers)
	return out
}

// SweepCostsCtx is SweepCosts under a cancellation context: once ctx
// dies no further budget is evaluated and the typed reason
// (guard.ErrCanceled / guard.ErrDeadline) is returned. A panicking fn
// surfaces as a *par.PanicError naming the offending budget index.
func SweepCostsCtx(ctx context.Context, fn CostFn, budgets []cdag.Weight, workers int) ([]cdag.Weight, error) {
	return par.MapCtx(ctx, workers, budgets, func(b cdag.Weight) (cdag.Weight, error) {
		return fn(b), nil
	})
}

// SearchLinearParallel is SearchLinear with the budget axis split
// into contiguous chunks evaluated concurrently; each chunk stops at
// its first local hit and the smallest hitting budget wins, so the
// result is identical to the serial scan. fn must be safe for
// concurrent use. Use it for non-monotone cost functions over wide
// budget ranges; SearchMonotone's binary search is cheaper whenever
// monotonicity holds.
func SearchLinearParallel(fn CostFn, target cdag.Weight, lo, hi, step cdag.Weight, workers int) (cdag.Weight, error) {
	return SearchLinearParallelCtx(context.Background(), fn, target, lo, hi, step, workers)
}

// SearchLinearParallelCtx is SearchLinearParallel under a cancellation
// context, with the same abort semantics as SweepCostsCtx.
func SearchLinearParallelCtx(ctx context.Context, fn CostFn, target cdag.Weight, lo, hi, step cdag.Weight, workers int) (cdag.Weight, error) {
	if step <= 0 {
		step = 1
	}
	if r := lo % step; r != 0 {
		lo += step - r
	}
	if lo > hi {
		return 0, fmt.Errorf("memdesign: target cost %d not reached up to budget %d", target, hi)
	}
	n := int((hi-lo)/step) + 1
	chunks := par.Chunks(n, workers)
	hits, err := par.MapCtx(ctx, workers, chunks, func(c [2]int) (cdag.Weight, error) {
		for i := c[0]; i < c[1]; i++ {
			b := lo + cdag.Weight(i)*step
			if fn(b) == target {
				return b, nil
			}
		}
		return -1, nil
	})
	if err != nil {
		return 0, err
	}
	for _, b := range hits {
		if b >= 0 {
			return b, nil // chunks are in budget order; first hit is smallest
		}
	}
	return 0, fmt.Errorf("memdesign: target cost %d not reached up to budget %d", target, hi)
}
