package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestMaxLevel(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 4: 2, 6: 1, 8: 3, 12: 2, 256: 8, -4: 0}
	for n, want := range cases {
		if got := MaxLevel(n); got != want {
			t.Errorf("MaxLevel(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestStepKnownValues(t *testing.T) {
	avg, coeff, err := Step([]float64{1, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	s2 := math.Sqrt2
	wantAvg := []float64{2 / s2, 6 / s2}
	wantCoeff := []float64{0, -2 / s2}
	for i := range wantAvg {
		if math.Abs(avg[i]-wantAvg[i]) > tol || math.Abs(coeff[i]-wantCoeff[i]) > tol {
			t.Errorf("step[%d] = (%g,%g), want (%g,%g)", i, avg[i], coeff[i], wantAvg[i], wantCoeff[i])
		}
	}
}

func TestStepErrors(t *testing.T) {
	if _, _, err := Step(nil); err == nil {
		t.Error("empty signal should fail")
	}
	if _, _, err := Step([]float64{1, 2, 3}); err == nil {
		t.Error("odd-length signal should fail")
	}
}

func TestTransformShapes(t *testing.T) {
	x := make([]float64, 16)
	levels, err := Transform(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("levels = %d", len(levels))
	}
	for i, l := range levels {
		want := 16 >> uint(i+1)
		if len(l.Averages) != want || len(l.Coefficients) != want {
			t.Errorf("level %d sizes %d/%d, want %d", i+1, len(l.Averages), len(l.Coefficients), want)
		}
	}
}

func TestTransformErrors(t *testing.T) {
	if _, err := Transform(make([]float64, 16), 0); err == nil {
		t.Error("level 0 should fail")
	}
	if _, err := Transform(make([]float64, 12), 3); err == nil {
		t.Error("12 samples cannot do 3 levels")
	}
}

func TestInverseReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 8, 64, 256} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		d := MaxLevel(n)
		levels, err := Transform(x, d)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(levels)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: reconstruction error at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestInverseErrors(t *testing.T) {
	if _, err := Inverse(nil); err == nil {
		t.Error("empty levels should fail")
	}
	bad := []Level{{Averages: []float64{1}, Coefficients: []float64{1, 2}}}
	if _, err := Inverse(bad); err == nil {
		t.Error("mismatched sizes should fail")
	}
}

// TestParseval: the orthonormal Haar transform preserves energy.
func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << uint(1+rng.Intn(7))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		levels, err := Transform(x, MaxLevel(n))
		if err != nil {
			return false
		}
		return math.Abs(Energy(x)-TransformEnergy(levels)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLinearity: transform of a+b equals transform(a)+transform(b).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 32
	a := make([]float64, n)
	b := make([]float64, n)
	sum := make([]float64, n)
	for i := range a {
		a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		sum[i] = a[i] + b[i]
	}
	la, _ := Transform(a, 5)
	lb, _ := Transform(b, 5)
	ls, _ := Transform(sum, 5)
	for l := range ls {
		for j := range ls[l].Coefficients {
			if math.Abs(ls[l].Coefficients[j]-(la[l].Coefficients[j]+lb[l].Coefficients[j])) > 1e-9 {
				t.Fatalf("linearity violated at level %d", l+1)
			}
		}
	}
}

// TestConstantSignal: a constant signal has zero coefficients at
// every level and a scaled final average.
func TestConstantSignal(t *testing.T) {
	n, d := 64, 6
	x := make([]float64, n)
	for i := range x {
		x[i] = 3
	}
	levels, err := Transform(x, d)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, finalAvg := Outputs(levels)
	for l, cs := range coeffs {
		for _, c := range cs {
			if math.Abs(c) > tol {
				t.Fatalf("level %d has nonzero coefficient %g", l+1, c)
			}
		}
	}
	// After d levels each average is 3·(√2)^d.
	want := 3 * math.Pow(math.Sqrt2, float64(d))
	if math.Abs(finalAvg[0]-want) > 1e-9 {
		t.Errorf("final average = %g, want %g", finalAvg[0], want)
	}
}

func TestOutputsEmpty(t *testing.T) {
	c, a := Outputs(nil)
	if c != nil || a != nil {
		t.Error("Outputs(nil) should be empty")
	}
}
