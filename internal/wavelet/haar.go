// Package wavelet provides a reference implementation of the Haar
// discrete wavelet transform used to cross-check the DWT dataflow
// graphs and the schedules executed on the machine simulator.
//
// The transform follows Section 3.1 of the paper: at each level d the
// averages a[j] = (x[2j] + x[2j+1])/√2 and coefficients
// c[j] = (x[2j] − x[2j+1])/√2 are produced, and the recursion
// continues on the averages.
package wavelet

import (
	"errors"
	"fmt"
	"math"
)

// Sqrt2 is the Haar normalisation factor.
var Sqrt2 = math.Sqrt2

// Level holds the outputs of one decomposition level.
type Level struct {
	Averages     []float64 // scaling function ā_d
	Coefficients []float64 // wavelet function c̄_d
}

// MaxLevel returns the largest admissible level for a signal of
// length n under Definition 3.1: the largest d with 2^d dividing n.
// It returns 0 for odd or non-positive n.
func MaxLevel(n int) int {
	d := 0
	for n > 0 && n%2 == 0 {
		n /= 2
		d++
	}
	return d
}

// Step performs one Haar level on x, which must have even length.
func Step(x []float64) (avg, coeff []float64, err error) {
	if len(x) == 0 || len(x)%2 != 0 {
		return nil, nil, fmt.Errorf("wavelet: signal length %d is not positive and even", len(x))
	}
	h := len(x) / 2
	avg = make([]float64, h)
	coeff = make([]float64, h)
	for j := 0; j < h; j++ {
		avg[j] = (x[2*j] + x[2*j+1]) / Sqrt2
		coeff[j] = (x[2*j] - x[2*j+1]) / Sqrt2
	}
	return avg, coeff, nil
}

// Transform runs d levels of the Haar DWT on x (len(x) must be a
// multiple of 2^d) and returns one Level per decomposition step,
// level 1 first.
func Transform(x []float64, d int) ([]Level, error) {
	if d < 1 {
		return nil, errors.New("wavelet: level must be at least 1")
	}
	if MaxLevel(len(x)) < d {
		return nil, fmt.Errorf("wavelet: signal length %d does not admit %d levels", len(x), d)
	}
	out := make([]Level, 0, d)
	cur := append([]float64(nil), x...)
	for i := 0; i < d; i++ {
		avg, coeff, err := Step(cur)
		if err != nil {
			return nil, err
		}
		out = append(out, Level{Averages: avg, Coefficients: coeff})
		cur = avg
	}
	return out, nil
}

// Outputs flattens a transform into the values the DWT CDAG exposes as
// sinks: the coefficients of every level plus the final averages.
func Outputs(levels []Level) (coeffs [][]float64, finalAvg []float64) {
	for _, l := range levels {
		coeffs = append(coeffs, l.Coefficients)
	}
	if len(levels) > 0 {
		finalAvg = levels[len(levels)-1].Averages
	}
	return coeffs, finalAvg
}

// Inverse reconstructs the original signal from a full decomposition.
func Inverse(levels []Level) ([]float64, error) {
	if len(levels) == 0 {
		return nil, errors.New("wavelet: no levels to invert")
	}
	cur := append([]float64(nil), levels[len(levels)-1].Averages...)
	for i := len(levels) - 1; i >= 0; i-- {
		c := levels[i].Coefficients
		if len(c) != len(cur) {
			return nil, fmt.Errorf("wavelet: level %d size mismatch: %d averages vs %d coefficients", i+1, len(cur), len(c))
		}
		next := make([]float64, 2*len(cur))
		for j := range cur {
			next[2*j] = (cur[j] + c[j]) / Sqrt2
			next[2*j+1] = (cur[j] - c[j]) / Sqrt2
		}
		cur = next
	}
	return cur, nil
}

// Energy returns the squared L2 norm of a signal; the orthonormal Haar
// transform preserves it across levels (Parseval), which tests use as
// an invariant.
func Energy(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// TransformEnergy sums the energy of all transform outputs
// (coefficients of each level plus final averages).
func TransformEnergy(levels []Level) float64 {
	var e float64
	for _, l := range levels {
		e += Energy(l.Coefficients)
	}
	if len(levels) > 0 {
		e += Energy(levels[len(levels)-1].Averages)
	}
	return e
}
