// The peer-fill client half of the POST /v1/peer/schedule protocol.
// The serving layer is the other half (internal/serve): on a local
// cache miss whose key the ring assigns elsewhere, it calls Fill
// against the owner instead of cold-solving, bounded by a slice of the
// request deadline, and falls back to the local solver on any error.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"wrbpg/internal/obs"
	"wrbpg/internal/serve/wire"
)

const (
	// HopHeader marks a request as replica-to-replica. The peer endpoint
	// requires it, and any schedule path seeing it never forwards again:
	// a peer fill is exactly one hop, so ownership disagreement (rings
	// mid-re-ring, version skew) can cost one wasted hop but never a
	// forwarding loop.
	HopHeader = "X-Wrbpg-Peer-Hop"
	// TraceParentHeader propagates the forwarder's trace context
	// ("traceid:spanid", obs.TraceParent) on a peer fill, so the owner
	// resumes the same trace and returns its span subtree in the
	// response envelope.
	TraceParentHeader = "X-Wrbpg-Trace-Parent"
	// PeerPath is the internal peer-fill endpoint.
	PeerPath = "/v1/peer/schedule"
)

// maxPeerBody bounds a peer response read (schedules with full move
// lists are well under this).
const maxPeerBody = 32 << 20

// Fill asks owner to answer preq. Exactly one of result/apiErr/err is
// meaningful:
//
//   - result: the owner answered 200 (it solved, or hit its cache).
//     When the forwarder propagated trace context (preq.TraceParent),
//     trace carries the owner's span subtree alongside it;
//   - apiErr: the owner answered a structured API error — notably a
//     429 carrying its Retry-After shed estimate, which cluster-aware
//     shedding may propagate to the end client;
//   - err: the transport failed (refused, reset, deadline) or the
//     response was undecodable. The caller should treat the owner as
//     suspect (ReportFillError) and solve locally.
//
// The caller bounds the round trip via ctx (the peer-timeout slice of
// the request deadline).
func (c *Cluster) Fill(ctx context.Context, owner string, preq *wire.PeerScheduleRequest) (*wire.ScheduleResult, *obs.TraceExport, *wire.Error, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cluster: encode peer request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+PeerPath, bytes.NewReader(body))
	if err != nil {
		return nil, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	if preq.TraceParent != "" {
		req.Header.Set(TraceParentHeader, preq.TraceParent)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cluster: read peer response: %w", err)
	}
	if resp.StatusCode == http.StatusOK {
		var env wire.PeerScheduleResponse
		if err := json.Unmarshal(b, &env); err != nil {
			return nil, nil, nil, fmt.Errorf("cluster: decode peer result: %w", err)
		}
		if env.Result == nil {
			// Pre-envelope owner (version skew): the 200 body is a bare
			// ScheduleResult.
			var res wire.ScheduleResult
			if err := json.Unmarshal(b, &res); err != nil || res.Workload == "" {
				return nil, nil, nil, fmt.Errorf("cluster: peer %s answered 200 with unrecognized body", owner)
			}
			return &res, nil, nil, nil
		}
		return env.Result, env.Trace, nil, nil
	}
	var we wire.Error
	if err := json.Unmarshal(b, &we); err != nil || we.Status == 0 {
		// Not a structured API error (proxy page, truncation): surface as
		// a transport-class failure so the caller solves locally.
		return nil, nil, nil, fmt.Errorf("cluster: peer %s answered %d with unstructured body", owner, resp.StatusCode)
	}
	return nil, nil, &we, nil
}

// GetJSON fetches path from peer (GET) and decodes the 200 body into
// v. Non-200s and transport failures come back as errors — callers
// (the /v1/cluster/stats fan-out) report the peer as unreachable
// rather than failing the whole scrape.
func (c *Cluster) GetJSON(ctx context.Context, peer, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return fmt.Errorf("cluster: read %s%s: %w", peer, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s%s answered %d", peer, path, resp.StatusCode)
	}
	return json.Unmarshal(b, v)
}
