// The peer-fill client half of the POST /v1/peer/schedule protocol.
// The serving layer is the other half (internal/serve): on a local
// cache miss whose key the ring assigns elsewhere, it calls Fill
// against the owner instead of cold-solving, bounded by a slice of the
// request deadline, and falls back to the local solver on any error.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"wrbpg/internal/serve/wire"
)

const (
	// HopHeader marks a request as replica-to-replica. The peer endpoint
	// requires it, and any schedule path seeing it never forwards again:
	// a peer fill is exactly one hop, so ownership disagreement (rings
	// mid-re-ring, version skew) can cost one wasted hop but never a
	// forwarding loop.
	HopHeader = "X-Wrbpg-Peer-Hop"
	// PeerPath is the internal peer-fill endpoint.
	PeerPath = "/v1/peer/schedule"
)

// maxPeerBody bounds a peer response read (schedules with full move
// lists are well under this).
const maxPeerBody = 32 << 20

// Fill asks owner to answer preq. Exactly one of the three returns is
// meaningful:
//
//   - result: the owner answered 200 (it solved, or hit its cache);
//   - apiErr: the owner answered a structured API error — notably a
//     429 carrying its Retry-After shed estimate, which cluster-aware
//     shedding may propagate to the end client;
//   - err: the transport failed (refused, reset, deadline) or the
//     response was undecodable. The caller should treat the owner as
//     suspect (ReportFillError) and solve locally.
//
// The caller bounds the round trip via ctx (the peer-timeout slice of
// the request deadline).
func (c *Cluster) Fill(ctx context.Context, owner string, preq *wire.PeerScheduleRequest) (*wire.ScheduleResult, *wire.Error, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: encode peer request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+PeerPath, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: read peer response: %w", err)
	}
	if resp.StatusCode == http.StatusOK {
		var res wire.ScheduleResult
		if err := json.Unmarshal(b, &res); err != nil {
			return nil, nil, fmt.Errorf("cluster: decode peer result: %w", err)
		}
		return &res, nil, nil
	}
	var we wire.Error
	if err := json.Unmarshal(b, &we); err != nil || we.Status == 0 {
		// Not a structured API error (proxy page, truncation): surface as
		// a transport-class failure so the caller solves locally.
		return nil, nil, fmt.Errorf("cluster: peer %s answered %d with unstructured body", owner, resp.StatusCode)
	}
	return nil, &we, nil
}
