package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wrbpg/internal/obs"
	"wrbpg/internal/serve/wire"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without Self")
	}
	c, err := New(Config{
		Self:  "http://a:1/",
		Peers: []string{"http://b:1", "http://b:1/", " http://a:1 ", ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a:1" {
		t.Fatalf("Self=%q, want trailing slash stripped", c.Self())
	}
	rep := c.Health()
	if rep.Total != 2 || rep.Healthy != 2 {
		t.Fatalf("health %+v: self + deduped peer should make a 2-member cluster", rep)
	}
	if c.PeerTimeout() != 250*time.Millisecond {
		t.Fatalf("PeerTimeout=%v, want 250ms default", c.PeerTimeout())
	}
}

func TestRouteLocalWhenPeerless(t *testing.T) {
	c, err := New(Config{Self: "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		owner, local := c.Route(fmt.Sprintf("k%d", i))
		if !local || owner != "http://a:1" {
			t.Fatalf("peerless cluster routed %q to %q local=%v", fmt.Sprintf("k%d", i), owner, local)
		}
	}
}

// flakyPeer is a /readyz endpoint whose status is flipped by the test.
type flakyPeer struct {
	status atomic.Int32
}

func (p *flakyPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(int(p.status.Load()))
}

func TestHealthEjectAndReadmit(t *testing.T) {
	peer := &flakyPeer{}
	peer.status.Store(http.StatusOK)
	ts := httptest.NewServer(peer)
	defer ts.Close()

	c, err := New(Config{
		Self:          "http://self:1",
		Peers:         []string{ts.URL},
		FailThreshold: 2,
		Client:        ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	c.ProbeOnce(ctx)
	if !c.ring.Has(ts.URL) {
		t.Fatal("healthy peer ejected")
	}

	// One failed probe: below threshold, still on the ring.
	peer.status.Store(http.StatusServiceUnavailable)
	c.ProbeOnce(ctx)
	if !c.ring.Has(ts.URL) {
		t.Fatal("peer ejected after a single failed probe (threshold 2)")
	}
	// Second consecutive failure ejects.
	c.ProbeOnce(ctx)
	if c.ring.Has(ts.URL) {
		t.Fatal("peer not ejected after reaching the fail threshold")
	}
	if c.Ejections() != 1 {
		t.Fatalf("Ejections=%d, want 1", c.Ejections())
	}
	if rep := c.Health(); rep.Healthy != 1 || rep.Total != 2 {
		t.Fatalf("health %+v after ejection", rep)
	}
	// Every key now routes locally.
	if owner, local := c.Route("anything"); !local {
		t.Fatalf("key routed to ejected peer %q", owner)
	}

	// A single success re-admits.
	peer.status.Store(http.StatusOK)
	c.ProbeOnce(ctx)
	if !c.ring.Has(ts.URL) {
		t.Fatal("recovered peer not re-admitted")
	}
	if c.Readmissions() != 1 {
		t.Fatalf("Readmissions=%d, want 1", c.Readmissions())
	}
}

func TestReportFillErrorCountsTowardEjection(t *testing.T) {
	c, err := New(Config{
		Self:          "http://self:1",
		Peers:         []string{"http://peer:1"},
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.ReportFillError("http://peer:1")
	if !c.ring.Has("http://peer:1") {
		t.Fatal("one fill error should not eject (threshold 2)")
	}
	c.ReportFillError("http://peer:1")
	if c.ring.Has("http://peer:1") {
		t.Fatal("two fill errors should eject like two failed probes")
	}
	// Unknown peers are ignored, not invented.
	c.ReportFillError("http://stranger:1")
	if rep := c.Health(); rep.Total != 2 {
		t.Fatalf("unknown peer created state: %+v", rep)
	}
}

func TestStartLoopProbes(t *testing.T) {
	peer := &flakyPeer{}
	peer.status.Store(http.StatusServiceUnavailable)
	ts := httptest.NewServer(peer)
	defer ts.Close()

	c, err := New(Config{
		Self:           "http://self:1",
		Peers:          []string{ts.URL},
		HealthInterval: 5 * time.Millisecond,
		FailThreshold:  2,
		Client:         ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for c.ring.Has(ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never ejected a peer answering 503")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFillDecodesResultAndErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(PeerPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HopHeader) == "" {
			t.Error("Fill did not set the hop header")
		}
		var preq wire.PeerScheduleRequest
		if err := json.NewDecoder(r.Body).Decode(&preq); err != nil {
			t.Errorf("decode: %v", err)
		}
		switch preq.Key {
		case "ok":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"result":{"workload":"w","source":"optimal","cost_bits":7},"trace":{"trace_id":"ab12","start_unix_us":1,"spans":[{"name":"peer.serve","start_us":0,"duration_us":5}]}}`)
		case "legacy":
			// Pre-envelope owner: a bare ScheduleResult as the 200 body.
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"workload":"w","source":"optimal","cost_bits":7}`)
		case "shed":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"status":429,"error":"busy","retry_after_s":3}`)
		default:
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, "<html>proxy error</html>")
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{ts.URL}, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, tex, apiErr, ferr := c.Fill(ctx, ts.URL, &wire.PeerScheduleRequest{Key: "ok"})
	if ferr != nil || apiErr != nil || res == nil || res.CostBits != 7 {
		t.Fatalf("ok fill: res=%+v apiErr=%v err=%v", res, apiErr, ferr)
	}
	if tex == nil || tex.TraceID != "ab12" || len(tex.Spans) != 1 {
		t.Fatalf("ok fill trace subtree = %+v, want the owner's peer.serve span", tex)
	}

	res, tex, apiErr, ferr = c.Fill(ctx, ts.URL, &wire.PeerScheduleRequest{Key: "legacy"})
	if ferr != nil || apiErr != nil || res == nil || res.CostBits != 7 {
		t.Fatalf("legacy bare-body fill: res=%+v apiErr=%v err=%v", res, apiErr, ferr)
	}
	if tex != nil {
		t.Fatalf("legacy bare-body fill carried a trace subtree: %+v", tex)
	}

	res, _, apiErr, ferr = c.Fill(ctx, ts.URL, &wire.PeerScheduleRequest{Key: "shed"})
	if ferr != nil || res != nil {
		t.Fatalf("shed fill: res=%+v err=%v", res, ferr)
	}
	if apiErr == nil || apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfterS != 3 {
		t.Fatalf("shed fill apiErr=%+v, want structured 429 with retry_after_s=3", apiErr)
	}

	res, _, apiErr, ferr = c.Fill(ctx, ts.URL, &wire.PeerScheduleRequest{Key: "garbage"})
	if res != nil || apiErr != nil || ferr == nil {
		t.Fatalf("unstructured 502 should be a transport-class error, got res=%v apiErr=%v err=%v", res, apiErr, ferr)
	}

	// Transport failure against a closed server.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	if _, _, _, ferr = c.Fill(ctx, deadURL, &wire.PeerScheduleRequest{Key: "ok"}); ferr == nil {
		t.Fatal("fill against a dead peer returned no error")
	}
}

func TestRegisterMetrics(t *testing.T) {
	c, err := New(Config{Self: "http://self:1", Peers: []string{"http://peer:1"}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"wrbpg_peer_healthy 2",
		"wrbpg_peer_members 2",
		"wrbpg_peer_ejections_total 0",
		"wrbpg_peer_readmissions_total 0",
		"wrbpg_peer_fill_transport_errors_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
