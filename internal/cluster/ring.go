// Package cluster is the distributed wrbpgd layer: a consistent-hash
// ring over a static replica fleet, a peer-fill client speaking the
// internal POST /v1/peer/schedule protocol, and a lightweight health
// loop that ejects degraded peers from the ring and re-admits them on
// recovery (docs/CLUSTER.md).
//
// The content-addressed schedule cache is the fleet's most valuable
// asset — optimal red-blue pebbling schedules are expensive to compute
// (the general problem is hard, Papp–Wattenhofer) — so the ring
// assigns every cache key exactly one owner replica. A replica that
// misses locally asks the owner before cold-solving, and the owner's
// local singleflight dedups all forwarders plus its own traffic: in
// the steady state each key is cold-solved at most once fleet-wide,
// the cluster analogue of the replication-vs-communication trade-off
// Böhnlein–Papp–Yzelman study inside the multiprocessor pebbling
// model.
//
// Availability beats dedup everywhere: every peer interaction is
// bounded by a slice of the request deadline and falls back to a local
// solve, so a cluster replica is never less available than a
// single-node daemon.
package cluster

import (
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per member when Config
// leaves it zero: high enough that one member's share of the key space
// stays within a few percent of 1/N, low enough that ring rebuilds
// (member eject/re-admit) stay microsecond-cheap.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over replica identities (base URLs).
// Keys and members hash onto one 64-bit circle; a key is owned by the
// first member point at or clockwise of its hash. Each member
// contributes vnodes points, so removing a member moves only the keys
// it owned (~1/N of the space) and adding one steals ~1/(N+1) spread
// evenly from everyone — the property the rebalancing tests pin down.
//
// All replicas must build their rings with the same vnodes and seed or
// they will disagree about ownership; the seed exists so distinct
// clusters sharing a key space cannot accidentally agree.
type Ring struct {
	vnodes int
	seed   uint64

	mu      sync.RWMutex
	members map[string]struct{}
	points  []ringPoint // sorted by hash
}

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with the given virtual-node count
// (DefaultVNodes when < 1) and hash seed.
func NewRing(vnodes int, seed uint64) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, seed: seed, members: make(map[string]struct{})}
}

// hash is 64-bit FNV-1a over the seed bytes followed by s, inlined so
// Owner allocates nothing.
func (r *Ring) hash(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (r.seed >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Add inserts member (idempotent) and rebuilds the point list.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	r.rebuild()
}

// Remove deletes member (idempotent) and rebuilds the point list.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	r.rebuild()
}

// Has reports whether member is currently on the ring.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[member]
	return ok
}

// rebuild regenerates the sorted vnode points; caller holds mu. Vnode
// hashes are h(member + "#" + i): deterministic, so every replica
// derives the identical circle from the identical membership.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	var buf [20]byte
	for m := range r.members {
		for i := 0; i < r.vnodes; i++ {
			n := len(buf)
			for x := i; ; x /= 10 {
				n--
				buf[n] = byte('0' + x%10)
				if x < 10 {
					break
				}
			}
			r.points = append(r.points, ringPoint{
				hash:   r.hash(m + "#" + string(buf[n:])),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic under (vanishingly rare) collisions
	})
}

// Owner returns the member owning key, or ok=false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the top of the circle
	}
	return r.points[i].member, true
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the current member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}
