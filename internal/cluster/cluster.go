// Cluster membership and peer health: the static fleet roster, the
// live ring derived from it, and the probe loop that ejects degraded
// peers and re-admits recovered ones.

package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wrbpg/internal/obs"
)

// Doer abstracts *http.Client for tests.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Config is the static membership description of one replica's view of
// the fleet. Every replica must be configured with the same total
// member set (its own Self plus the others as Peers), the same Seed
// and the same VNodes, or the replicas will disagree about key
// ownership — they would still answer correctly (peer fill degrades to
// local solves), but fleet-wide dedup would suffer.
type Config struct {
	// Self is this replica's advertised base URL, e.g.
	// "http://10.0.0.3:8080" — its identity on the ring. Required.
	Self string
	// Peers are the other replicas' base URLs (Self excluded; a listed
	// Self is ignored). An empty list is a single-member cluster: valid,
	// and every key is owned locally.
	Peers []string
	// VNodes is the virtual-node count per member (DefaultVNodes when
	// zero). Must match across the fleet.
	VNodes int
	// Seed perturbs the ring hash so distinct clusters never agree on
	// ownership by accident. Must match across the fleet.
	Seed uint64
	// PeerTimeout bounds one peer-fill round trip (default 250ms). The
	// serving layer additionally caps it to half the request's remaining
	// deadline, so a slow owner can never eat the budget the local
	// fallback solve needs.
	PeerTimeout time.Duration
	// HealthInterval is the probe-loop period (default 1s); each round
	// probes every peer's GET /readyz with a per-probe timeout of the
	// interval (capped at PeerTimeout below it).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed probes eject a peer
	// from the ring (default 2 — one blip never re-rings the fleet);
	// a single successful probe re-admits it.
	FailThreshold int
	// Client overrides the HTTP client used for probes and peer fills
	// (tests); default is an http.Client with a PeerTimeout-scaled
	// timeout.
	Client Doer
}

// peerState tracks one peer's probe history.
type peerState struct {
	url     string
	healthy bool
	fails   int
}

// Cluster is one replica's live view of the fleet: the ring, the peer
// health table, and the fill/probe client. Create with New; Start the
// health loop; the serving layer routes through Route and fills
// through Fill.
type Cluster struct {
	self        string
	ring        *Ring
	hc          Doer
	peerTimeout time.Duration
	interval    time.Duration
	failsAfter  int

	mu    sync.Mutex
	peers map[string]*peerState

	ejections    atomic.Uint64
	readmissions atomic.Uint64
	fillErrors   atomic.Uint64
}

// New validates cfg and builds the cluster with every member on the
// ring (optimistic start: peers are presumed healthy until probed).
func New(cfg Config) (*Cluster, error) {
	self := normalizeURL(cfg.Self)
	if self == "" {
		return nil, fmt.Errorf("cluster: Self (this replica's advertised base URL) is required")
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 250 * time.Millisecond
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.FailThreshold < 1 {
		cfg.FailThreshold = 2
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: cfg.PeerTimeout + 2*time.Second}
	}
	c := &Cluster{
		self:        self,
		ring:        NewRing(cfg.VNodes, cfg.Seed),
		hc:          hc,
		peerTimeout: cfg.PeerTimeout,
		interval:    cfg.HealthInterval,
		failsAfter:  cfg.FailThreshold,
		peers:       make(map[string]*peerState),
	}
	c.ring.Add(self)
	for _, p := range cfg.Peers {
		u := normalizeURL(p)
		if u == "" || u == self {
			continue
		}
		if _, dup := c.peers[u]; dup {
			continue
		}
		c.peers[u] = &peerState{url: u, healthy: true}
		c.ring.Add(u)
	}
	return c, nil
}

// normalizeURL strips the trailing slash so "http://a:1/" and
// "http://a:1" are the same member.
func normalizeURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// Self returns this replica's ring identity.
func (c *Cluster) Self() string { return c.self }

// PeerTimeout returns the configured per-fill bound.
func (c *Cluster) PeerTimeout() time.Duration { return c.peerTimeout }

// Route returns the replica owning key on the current ring. local is
// true when that is this replica — including when every peer is
// ejected and self is the whole ring.
func (c *Cluster) Route(key string) (owner string, local bool) {
	owner, ok := c.ring.Owner(key)
	if !ok {
		return c.self, true
	}
	return owner, owner == c.self
}

// PeerHealth is one peer's row in the health report.
type PeerHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// HealthReport summarizes fleet reachability for /readyz and /statsz.
type HealthReport struct {
	// Total counts cluster members including self; Healthy counts the
	// members currently on the ring (self is always healthy from its own
	// point of view).
	Total   int          `json:"total"`
	Healthy int          `json:"healthy"`
	Peers   []PeerHealth `json:"peers,omitempty"`
}

// Health snapshots peer reachability.
func (c *Cluster) Health() HealthReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := HealthReport{Total: 1 + len(c.peers), Healthy: 1}
	for _, p := range c.peers {
		rep.Peers = append(rep.Peers, PeerHealth{URL: p.url, Healthy: p.healthy})
		if p.healthy {
			rep.Healthy++
		}
	}
	sort.Slice(rep.Peers, func(i, j int) bool { return rep.Peers[i].URL < rep.Peers[j].URL })
	return rep
}

// Start runs the health loop until ctx is canceled. It returns
// immediately for a peerless cluster — there is nothing to probe.
func (c *Cluster) Start(ctx context.Context) {
	c.mu.Lock()
	n := len(c.peers)
	c.mu.Unlock()
	if n == 0 {
		return
	}
	go func() {
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce probes every peer's /readyz once and applies the
// eject/re-admit transitions. Exposed so tests (and the fleet harness)
// can drive health deterministically; the Start loop calls it each
// tick. Probes run sequentially — the fleet is a handful of replicas,
// not hundreds.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	c.mu.Lock()
	urls := make([]string, 0, len(c.peers))
	for u := range c.peers {
		urls = append(urls, u)
	}
	c.mu.Unlock()
	sort.Strings(urls)
	for _, u := range urls {
		c.report(u, c.probe(ctx, u))
	}
}

// probe is one /readyz round trip; ready means HTTP 200 inside the
// probe timeout. A 503 (draining or overloaded) is as disqualifying as
// a refused connection: the ring should not route cold solves to a
// replica that is asking balancers to back off.
func (c *Cluster) probe(ctx context.Context, peer string) bool {
	timeout := c.interval
	if c.peerTimeout < timeout {
		timeout = c.peerTimeout
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, peer+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// report applies one probe (or fill-error) observation to the peer's
// state, moving it on or off the ring at the thresholds.
func (c *Cluster) report(peer string, ok bool) {
	c.mu.Lock()
	p := c.peers[peer]
	var eject, readmit bool
	if p != nil {
		if ok {
			p.fails = 0
			if !p.healthy {
				p.healthy = true
				readmit = true
			}
		} else {
			p.fails++
			if p.healthy && p.fails >= c.failsAfter {
				p.healthy = false
				eject = true
			}
		}
	}
	c.mu.Unlock()
	// Ring mutations outside c.mu: Ring has its own lock, and holding
	// both would order c.mu before ring.mu here against Route's
	// ring.mu-only path — fine today, but no reason to create the pair.
	switch {
	case eject:
		c.ejections.Add(1)
		c.ring.Remove(peer)
	case readmit:
		c.readmissions.Add(1)
		c.ring.Add(peer)
	}
}

// ReportFillError feeds a peer-fill transport failure into the health
// state as one failed probe, so a dead owner is ejected after
// FailThreshold failed fills even between probe ticks.
func (c *Cluster) ReportFillError(peer string) {
	c.fillErrors.Add(1)
	c.report(peer, false)
}

// RegisterMetrics exposes the cluster's health counters on reg
// (wrbpg_peer_healthy, wrbpg_peer_members, ejections/re-admissions).
// The serving layer calls it once with its per-server registry.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("wrbpg_peer_healthy",
		"Cluster members currently on the ring, self included.",
		func() float64 { return float64(c.Health().Healthy) })
	reg.GaugeFunc("wrbpg_peer_members",
		"Static cluster size, self included.",
		func() float64 { return float64(c.Health().Total) })
	reg.CounterFunc("wrbpg_peer_ejections_total",
		"Peers ejected from the ring by the health loop.",
		func() float64 { return float64(c.ejections.Load()) })
	reg.CounterFunc("wrbpg_peer_readmissions_total",
		"Ejected peers re-admitted to the ring on recovery.",
		func() float64 { return float64(c.readmissions.Load()) })
	reg.CounterFunc("wrbpg_peer_fill_transport_errors_total",
		"Peer fills that failed at the transport layer (refused, reset, timed out).",
		func() float64 { return float64(c.fillErrors.Load()) })
}

// Ejections returns how many times the health loop removed a peer.
func (c *Cluster) Ejections() uint64 { return c.ejections.Load() }

// Readmissions returns how many times a peer recovered onto the ring.
func (c *Cluster) Readmissions() uint64 { return c.readmissions.Load() }
