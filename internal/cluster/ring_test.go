package cluster

import (
	"fmt"
	"math"
	"testing"
)

func TestRingEmpty(t *testing.T) {
	r := NewRing(0, 0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if r.Len() != 0 || len(r.Members()) != 0 {
		t.Fatal("empty ring reports members")
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := NewRing(8, 1)
	r.Add("http://a:1")
	for i := 0; i < 100; i++ {
		owner, ok := r.Owner(fmt.Sprintf("key-%d", i))
		if !ok || owner != "http://a:1" {
			t.Fatalf("key-%d: owner=%q ok=%v, want the only member", i, owner, ok)
		}
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	// Two rings built with the same members, vnodes and seed must agree
	// on every key — the property the fleet's dedup rests on. A third
	// ring with a different seed should disagree somewhere.
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, r2, r3 := NewRing(64, 7), NewRing(64, 7), NewRing(64, 8)
	// Insertion order must not matter either.
	for _, m := range members {
		r1.Add(m)
	}
	for i := len(members) - 1; i >= 0; i-- {
		r2.Add(members[i])
		r3.Add(members[i])
	}
	agree3 := 0
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("sha256:%064d", i)
		o1, _ := r1.Owner(k)
		o2, _ := r2.Owner(k)
		o3, _ := r3.Owner(k)
		if o1 != o2 {
			t.Fatalf("same-config rings disagree on %q: %q vs %q", k, o1, o2)
		}
		if o1 == o3 {
			agree3++
		}
	}
	// A different seed re-shuffles ownership; chance agreement is ~1/3.
	if agree3 > 600 {
		t.Fatalf("different-seed ring agrees on %d/1000 keys; seed is not perturbing the hash", agree3)
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(16, 0)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("Len=%d after double Add", r.Len())
	}
	if got := len(r.points); got != 16 {
		t.Fatalf("points=%d after double Add, want 16", got)
	}
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after double Remove: len=%d points=%d", r.Len(), len(r.points))
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per member, each of 4 members should own a share
	// of a large key population within ~2× of the fair 1/4 — consistent
	// hashing is only statistically fair, so the bound is loose but
	// catches gross placement bugs (e.g. all vnodes colliding).
	r := NewRing(64, 42)
	const n = 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("http://replica-%d:8080", i))
	}
	const keys = 20000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("sha256:%x", i*2654435761))
		counts[o]++
	}
	fair := float64(keys) / n
	for m, c := range counts {
		if math.Abs(float64(c)-fair) > fair {
			t.Errorf("member %s owns %d of %d keys (fair share %.0f): distribution badly skewed", m, c, keys, fair)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members own any keys", len(counts), n)
	}
}

func TestRingRebalanceMovesOnlyEvictedShare(t *testing.T) {
	// The consistent-hashing contract: removing one of N members moves
	// exactly the keys that member owned (~1/N) and no others; adding it
	// back restores the original assignment exactly.
	const n, keys = 5, 20000
	r := NewRing(64, 9)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("http://replica-%d:8080", i))
	}
	victim := "http://replica-3:8080"

	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Owner(fmt.Sprintf("key:%d", i))
	}
	r.Remove(victim)
	moved, victimKeys := 0, 0
	for i := range before {
		after, _ := r.Owner(fmt.Sprintf("key:%d", i))
		if before[i] == victim {
			victimKeys++
			if after == victim {
				t.Fatalf("key:%d still owned by removed member", i)
			}
			continue
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner; consistent hashing should move only the evicted share", moved)
	}
	if victimKeys == 0 {
		t.Fatal("victim owned no keys before removal; test is vacuous")
	}
	// The victim's share should be in the ballpark of 1/N.
	fair := float64(keys) / n
	if float64(victimKeys) > 2*fair || float64(victimKeys) < fair/2 {
		t.Errorf("victim owned %d keys, far from fair share %.0f", victimKeys, fair)
	}

	r.Add(victim)
	for i := range before {
		after, _ := r.Owner(fmt.Sprintf("key:%d", i))
		if after != before[i] {
			t.Fatalf("key:%d owner %q != original %q after re-admission; ring rebuild is not deterministic", i, after, before[i])
		}
	}
}
