package mmm

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// Strategy selects one of the three schedule families.
type Strategy uint8

const (
	// CTile keeps a TileRows×TileCols block of output accumulators
	// resident while both operands stream.
	CTile Strategy = iota
	// BResident pins all of B and produces outputs row by row; every
	// input is read exactly once.
	BResident
	// AResident pins all of A and produces outputs column by column.
	AResident
)

func (s Strategy) String() string {
	switch s {
	case CTile:
		return "c-tile"
	case BResident:
		return "b-resident"
	case AResident:
		return "a-resident"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Config parameterizes a schedule. TileRows/TileCols apply to CTile
// only.
type Config struct {
	Strategy           Strategy
	TileRows, TileCols int
}

func (c Config) String() string {
	if c.Strategy == CTile {
		return fmt.Sprintf("c-tile{%d×%d}", c.TileRows, c.TileCols)
	}
	return c.Strategy.String()
}

func (g *Graph) validate(c Config) error {
	switch c.Strategy {
	case CTile:
		if c.TileRows < 1 || c.TileRows > g.M || c.TileCols < 1 || c.TileCols > g.N {
			return fmt.Errorf("mmm: tile %dx%d out of range [1,%d]x[1,%d]", c.TileRows, c.TileCols, g.M, g.N)
		}
	case BResident, AResident:
	default:
		return fmt.Errorf("mmm: unknown strategy %v", c.Strategy)
	}
	return nil
}

// Schedule emits the full WRBPG move sequence for the configuration.
// Its simulated cost and peak always equal PredictCost/PredictPeak
// (asserted by the package tests).
func (g *Graph) Schedule(c Config) (core.Schedule, error) {
	if err := g.validate(c); err != nil {
		return nil, err
	}
	var s core.Schedule
	mv := func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	}
	// cellPass runs column l of cell (i,j): product, accumulation,
	// transient releases. Operand nodes are managed by the caller.
	cellPass := func(i, j, l int) {
		mv(core.M3, g.Prod[i-1][j-1][l-1])
		if l >= 2 {
			mv(core.M3, g.Acc[i-1][j-1][l-2])
			mv(core.M4, g.Prod[i-1][j-1][l-1])
			mv(core.M4, g.Head(i, j, l-1))
		} else if g.K == 1 {
			mv(core.M2, g.Prod[i-1][j-1][0])
			mv(core.M4, g.Prod[i-1][j-1][0])
		}
	}
	store := func(i, j int) {
		if g.K == 1 {
			return // stored inside cellPass
		}
		out := g.Output(i, j)
		mv(core.M2, out)
		mv(core.M4, out)
	}
	switch c.Strategy {
	case CTile:
		for ri := 1; ri <= g.M; ri += c.TileRows {
			rhi := min(ri+c.TileRows-1, g.M)
			for cj := 1; cj <= g.N; cj += c.TileCols {
				chi := min(cj+c.TileCols-1, g.N)
				for l := 1; l <= g.K; l++ {
					for j := cj; j <= chi; j++ {
						mv(core.M1, g.B[l-1][j-1])
					}
					for i := ri; i <= rhi; i++ {
						mv(core.M1, g.A[i-1][l-1])
						for j := cj; j <= chi; j++ {
							cellPass(i, j, l)
						}
						mv(core.M4, g.A[i-1][l-1])
					}
					for j := cj; j <= chi; j++ {
						mv(core.M4, g.B[l-1][j-1])
					}
				}
				for i := ri; i <= rhi; i++ {
					for j := cj; j <= chi; j++ {
						store(i, j)
					}
				}
			}
		}
	case BResident:
		for l := 1; l <= g.K; l++ {
			for j := 1; j <= g.N; j++ {
				mv(core.M1, g.B[l-1][j-1])
			}
		}
		for i := 1; i <= g.M; i++ {
			for l := 1; l <= g.K; l++ {
				mv(core.M1, g.A[i-1][l-1])
				for j := 1; j <= g.N; j++ {
					cellPass(i, j, l)
				}
				mv(core.M4, g.A[i-1][l-1])
			}
			for j := 1; j <= g.N; j++ {
				store(i, j)
			}
		}
		for l := 1; l <= g.K; l++ {
			for j := 1; j <= g.N; j++ {
				mv(core.M4, g.B[l-1][j-1])
			}
		}
	case AResident:
		for i := 1; i <= g.M; i++ {
			for l := 1; l <= g.K; l++ {
				mv(core.M1, g.A[i-1][l-1])
			}
		}
		for j := 1; j <= g.N; j++ {
			for l := 1; l <= g.K; l++ {
				mv(core.M1, g.B[l-1][j-1])
				for i := 1; i <= g.M; i++ {
					cellPass(i, j, l)
				}
				mv(core.M4, g.B[l-1][j-1])
			}
			for i := 1; i <= g.M; i++ {
				store(i, j)
			}
		}
		for i := 1; i <= g.M; i++ {
			for l := 1; l <= g.K; l++ {
				mv(core.M4, g.A[i-1][l-1])
			}
		}
	}
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PredictCost returns the weighted I/O of Schedule(c) in closed form.
func (g *Graph) PredictCost(c Config) cdag.Weight {
	if err := g.validate(c); err != nil {
		return Inf
	}
	wi, wn := g.Cfg.Input(), g.Cfg.Node()
	lb := cdag.Weight(g.M*g.K+g.K*g.N)*wi + cdag.Weight(g.M*g.N)*wn
	if c.Strategy != CTile {
		return lb
	}
	rowTiles := ceilDiv(g.M, c.TileRows)
	colTiles := ceilDiv(g.N, c.TileCols)
	extra := cdag.Weight(g.M*g.K)*cdag.Weight(colTiles-1) + cdag.Weight(g.K*g.N)*cdag.Weight(rowTiles-1)
	return lb + extra*wi
}

// PredictPeak returns the peak red weight of Schedule(c) in closed
// form (bits).
func (g *Graph) PredictPeak(c Config) cdag.Weight {
	if err := g.validate(c); err != nil {
		return Inf
	}
	wi, wn := g.Cfg.Input(), g.Cfg.Node()
	// Working set beyond the resident block: one a (or b) entry, the
	// in-flight product, and (for k ≥ 2) the new accumulator.
	work := func(strip cdag.Weight) cdag.Weight {
		p := strip + wi + wn // operand strip + streamed entry + product
		if g.K >= 2 {
			if q := strip + wi + 2*wn; q > p { // during the accumulation
				p = q
			}
		}
		return p
	}
	switch c.Strategy {
	case CTile:
		tile := cdag.Weight(c.TileRows*c.TileCols) * wn
		if g.K == 1 {
			// Products are stored immediately; no tile accumulates.
			tile = 0
		}
		strip := cdag.Weight(c.TileCols) * wi // the B row segment
		return tile + work(strip)
	case BResident:
		res := cdag.Weight(g.K*g.N) * wi
		heads := cdag.Weight(g.N) * wn
		if g.K == 1 {
			heads = 0
		}
		return res + heads + work(0)
	default: // AResident
		res := cdag.Weight(g.M*g.K) * wi
		heads := cdag.Weight(g.M) * wn
		if g.K == 1 {
			heads = 0
		}
		return res + heads + work(0)
	}
}

// Candidates enumerates the configurations worth searching: tile
// shapes covering every distinct (row-tiles, col-tiles) pair plus the
// two resident-operand strategies.
func (g *Graph) Candidates() []Config {
	var out []Config
	seenR := map[int]bool{}
	for q := 1; q <= g.M; q++ {
		th := ceilDiv(g.M, q)
		if seenR[th] {
			continue
		}
		seenR[th] = true
		seenC := map[int]bool{}
		for r := 1; r <= g.N; r++ {
			tw := ceilDiv(g.N, r)
			if seenC[tw] {
				continue
			}
			seenC[tw] = true
			out = append(out, Config{Strategy: CTile, TileRows: th, TileCols: tw})
		}
	}
	out = append(out, Config{Strategy: BResident}, Config{Strategy: AResident})
	return out
}

// Search returns the minimum-cost configuration fitting the budget.
func (g *Graph) Search(budget cdag.Weight) (Config, cdag.Weight, error) {
	best := Config{}
	bestCost, bestPeak := Inf, Inf
	for _, c := range g.Candidates() {
		peak := g.PredictPeak(c)
		if peak > budget {
			continue
		}
		cost := g.PredictCost(c)
		if cost < bestCost || (cost == bestCost && peak < bestPeak) {
			best, bestCost, bestPeak = c, cost, peak
		}
	}
	if bestCost >= Inf {
		return Config{}, Inf, fmt.Errorf("mmm: no configuration fits budget %d", budget)
	}
	return best, bestCost, nil
}

// MinCost returns the best cost under the budget, Inf if none fits.
func (g *Graph) MinCost(budget cdag.Weight) cdag.Weight {
	_, c, err := g.Search(budget)
	if err != nil {
		return Inf
	}
	return c
}

// MinMemory returns the smallest budget achieving the algorithmic
// lower bound: the cheapest of the full C tile, B-resident and
// A-resident peaks.
func (g *Graph) MinMemory() cdag.Weight {
	best := g.PredictPeak(Config{Strategy: CTile, TileRows: g.M, TileCols: g.N})
	for _, c := range []Config{{Strategy: BResident}, {Strategy: AResident}} {
		if p := g.PredictPeak(c); p < best {
			best = p
		}
	}
	return best
}
