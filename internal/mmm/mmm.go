// Package mmm extends the MVM tiling scheduler to dense matrix-matrix
// multiplication — the direction Section 4.3 closes with: "this
// tiling approach ... is extensible to more complicated tensor
// computations and their graph representations".
//
// MMM(m, k, n) is the CDAG of C = A·B with A ∈ R^{m×k}, B ∈ R^{k×n}:
// mk + kn inputs, mnk products a_{il}·b_{lj}, and mn·(k−1)
// accumulation nodes chaining each output cell across l. Three
// schedule families generalize the MVM strategies:
//
//   - CTile(th, tw): a th×tw tile of output accumulators stays
//     resident while both operands stream; every A entry is read once
//     per column-tile and every B entry once per row-tile — the
//     classic blocked GEMM shape with its 2mnk/√S-style traffic.
//   - BResident: all of B pinned, outputs produced row by row; every
//     input is read exactly once (compulsory-only I/O).
//   - AResident: the transpose-symmetric strategy pinning A.
//
// The weighted model decides between them exactly as it does for MVM:
// which operand (or output tile) deserves residency depends on the
// weight configuration and the matrix shape.
package mmm

import (
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/wcfg"
)

// Inf is the sentinel cost of an infeasible configuration.
const Inf cdag.Weight = math.MaxInt64 / 4

// Graph is an MMM(m, k, n) CDAG with its layout.
type Graph struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// M×K is A's shape, K×N is B's.
	M, K, N int
	// Cfg records the weight configuration.
	Cfg wcfg.Config
	// A[i-1][l-1], B[l-1][j-1] are the operand inputs.
	A, B [][]cdag.NodeID
	// Prod[i-1][j-1][l-1] is a_{il}·b_{lj}.
	Prod [][][]cdag.NodeID
	// Acc[i-1][j-1][l-2] is the partial sum of cell (i,j) after
	// column l ≥ 2.
	Acc [][][]cdag.NodeID
}

// Build constructs MMM(m, k, n); all dimensions ≥ 1, and m·n ≥ 2 so
// that sources and sinks stay disjoint.
func Build(m, k, n int, cfg wcfg.Config) (*Graph, error) {
	if m < 1 || k < 1 || n < 1 || m*n < 2 {
		return nil, fmt.Errorf("mmm: invalid dimensions (%d,%d,%d)", m, k, n)
	}
	g := &cdag.Graph{}
	out := &Graph{G: g, M: m, K: k, N: n, Cfg: cfg}
	wi, wn := cfg.Input(), cfg.Node()

	out.A = make([][]cdag.NodeID, m)
	for i := 1; i <= m; i++ {
		out.A[i-1] = make([]cdag.NodeID, k)
		for l := 1; l <= k; l++ {
			out.A[i-1][l-1] = g.AddNode(wi, fmt.Sprintf("a[%d,%d]", i, l))
		}
	}
	out.B = make([][]cdag.NodeID, k)
	for l := 1; l <= k; l++ {
		out.B[l-1] = make([]cdag.NodeID, n)
		for j := 1; j <= n; j++ {
			out.B[l-1][j-1] = g.AddNode(wi, fmt.Sprintf("b[%d,%d]", l, j))
		}
	}
	out.Prod = make([][][]cdag.NodeID, m)
	out.Acc = make([][][]cdag.NodeID, m)
	for i := 1; i <= m; i++ {
		out.Prod[i-1] = make([][]cdag.NodeID, n)
		out.Acc[i-1] = make([][]cdag.NodeID, n)
		for j := 1; j <= n; j++ {
			out.Prod[i-1][j-1] = make([]cdag.NodeID, k)
			if k > 1 {
				out.Acc[i-1][j-1] = make([]cdag.NodeID, k-1)
			}
		}
	}
	// Products and accumulators in l-major order so accumulation
	// chains point forward.
	for l := 1; l <= k; l++ {
		for i := 1; i <= m; i++ {
			for j := 1; j <= n; j++ {
				out.Prod[i-1][j-1][l-1] = g.AddNode(wn, fmt.Sprintf("p[%d,%d,%d]", i, j, l),
					out.A[i-1][l-1], out.B[l-1][j-1])
			}
		}
		if l >= 2 {
			for i := 1; i <= m; i++ {
				for j := 1; j <= n; j++ {
					out.Acc[i-1][j-1][l-2] = g.AddNode(wn, fmt.Sprintf("s[%d,%d,%d]", i, j, l),
						out.Head(i, j, l-1), out.Prod[i-1][j-1][l-1])
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mmm: internal construction error: %w", err)
	}
	return out, nil
}

// Head returns the node holding cell (i,j)'s partial sum after column
// l (all 1-based).
func (g *Graph) Head(i, j, l int) cdag.NodeID {
	if l == 1 {
		return g.Prod[i-1][j-1][0]
	}
	return g.Acc[i-1][j-1][l-2]
}

// Output returns the sink node of cell (i, j).
func (g *Graph) Output(i, j int) cdag.NodeID { return g.Head(i, j, g.K) }
