package mmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/wcfg"
)

func buildOrFatal(t *testing.T, m, k, n int, cfg wcfg.Config) *Graph {
	t.Helper()
	g, err := Build(m, k, n, cfg)
	if err != nil {
		t.Fatalf("Build(%d,%d,%d): %v", m, k, n, err)
	}
	return g
}

func TestBuildRejectsBadDims(t *testing.T) {
	eq := wcfg.Equal(16)
	for _, d := range [][3]int{{0, 1, 1}, {1, 0, 2}, {2, 2, 0}, {1, 3, 1}} {
		if _, err := Build(d[0], d[1], d[2], eq); err == nil {
			t.Errorf("Build(%v) should fail", d)
		}
	}
}

func TestStructure(t *testing.T) {
	g := buildOrFatal(t, 2, 3, 4, wcfg.Equal(16))
	// 2·3 + 3·4 inputs, 2·4·3 products, 2·4·2 accumulators.
	want := 6 + 12 + 24 + 16
	if g.G.Len() != want {
		t.Fatalf("nodes = %d, want %d", g.G.Len(), want)
	}
	// Product parents.
	ps := g.G.Parents(g.Prod[1][2][1]) // p[2,3,2]
	if ps[0] != g.A[1][1] || ps[1] != g.B[1][2] {
		t.Error("product parents wrong")
	}
	// Accumulator chain.
	ps = g.G.Parents(g.Acc[0][0][0]) // s[1,1,2]
	if ps[0] != g.Prod[0][0][0] || ps[1] != g.Prod[0][0][1] {
		t.Error("first accumulator parents wrong")
	}
	// Outputs are the last accumulators.
	if len(g.G.Sinks()) != 8 {
		t.Errorf("sinks = %d, want 8", len(g.G.Sinks()))
	}
	if g.Output(2, 4) != g.Acc[1][3][1] {
		t.Error("Output wrong")
	}
}

func TestK1ProductsAreOutputs(t *testing.T) {
	g := buildOrFatal(t, 2, 1, 3, wcfg.Equal(16))
	if len(g.G.Sinks()) != 6 {
		t.Fatalf("sinks = %d", len(g.G.Sinks()))
	}
	if g.Output(1, 2) != g.Prod[0][1][0] {
		t.Error("k=1 output should be the product")
	}
}

// TestScheduleValidAndPredicted: every strategy and tile shape
// simulates cleanly with exactly the predicted cost and peak.
func TestScheduleValidAndPredicted(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range [][3]int{{2, 1, 2}, {2, 2, 2}, {3, 2, 4}, {4, 3, 2}, {2, 5, 3}} {
			g := buildOrFatal(t, d[0], d[1], d[2], cfg)
			var configs []Config
			for th := 1; th <= g.M; th++ {
				for tw := 1; tw <= g.N; tw++ {
					configs = append(configs, Config{Strategy: CTile, TileRows: th, TileCols: tw})
				}
			}
			configs = append(configs, Config{Strategy: BResident}, Config{Strategy: AResident})
			for _, c := range configs {
				sched, err := g.Schedule(c)
				if err != nil {
					t.Fatalf("%s MMM%v %v: %v", cfg.Name, d, c, err)
				}
				peak := g.PredictPeak(c)
				stats, err := core.Simulate(g.G, peak, sched)
				if err != nil {
					t.Fatalf("%s MMM%v %v: %v", cfg.Name, d, c, err)
				}
				if stats.PeakRedWeight != peak {
					t.Errorf("%s MMM%v %v: peak %d != predicted %d", cfg.Name, d, c, stats.PeakRedWeight, peak)
				}
				if want := g.PredictCost(c); stats.Cost != want {
					t.Errorf("%s MMM%v %v: cost %d != predicted %d", cfg.Name, d, c, stats.Cost, want)
				}
			}
		}
	}
}

// TestResidentStrategiesMeetLB: pinning either operand yields
// compulsory-only I/O.
func TestResidentStrategiesMeetLB(t *testing.T) {
	g := buildOrFatal(t, 4, 3, 5, wcfg.DoubleAccumulator(16))
	lb := core.LowerBound(g.G)
	for _, s := range []Strategy{BResident, AResident} {
		if got := g.PredictCost(Config{Strategy: s}); got != lb {
			t.Errorf("%v cost = %d, want LB %d", s, got, lb)
		}
	}
	if got := g.PredictCost(Config{Strategy: CTile, TileRows: 4, TileCols: 5}); got != lb {
		t.Errorf("full tile cost = %d, want LB %d", got, lb)
	}
}

// TestShapeDecidesResidency: a wide B favours A-residency and vice
// versa, mirroring the MVM accumulator/vector flip.
func TestShapeDecidesResidency(t *testing.T) {
	eq := wcfg.Equal(16)
	wide := buildOrFatal(t, 4, 3, 40, eq) // B is 3×40: pin A (12 entries)
	tall := buildOrFatal(t, 40, 3, 4, eq) // A is 40×3: pin B (12 entries)
	wideCfg, _, err := wide.Search(wide.MinMemory())
	if err != nil {
		t.Fatal(err)
	}
	tallCfg, _, err := tall.Search(tall.MinMemory())
	if err != nil {
		t.Fatal(err)
	}
	if wideCfg.Strategy != AResident {
		t.Errorf("wide B: strategy = %v, want a-resident", wideCfg)
	}
	if tallCfg.Strategy != BResident {
		t.Errorf("tall A: strategy = %v, want b-resident", tallCfg)
	}
}

// TestSearchMonotone and budget respect.
func TestSearchMonotone(t *testing.T) {
	g := buildOrFatal(t, 6, 4, 8, wcfg.Equal(16))
	prev := Inf
	for b := cdag.Weight(64); b <= g.MinMemory()+64; b += 16 {
		cur := g.MinCost(b)
		if cur > prev {
			t.Fatalf("cost not monotone at %d: %d > %d", b, cur, prev)
		}
		if cur < Inf {
			prev = cur
		}
	}
	if got := g.MinCost(g.MinMemory()); got != core.LowerBound(g.G) {
		t.Errorf("cost at MinMemory = %d, want LB", got)
	}
	if got := g.MinCost(g.MinMemory() - 16); got == core.LowerBound(g.G) {
		t.Error("LB met below MinMemory")
	}
}

// TestGEMMTrafficLaw: with square matrices and a th×th tile, operand
// traffic scales like 2·n³/th — the classic blocked-GEMM law.
func TestGEMMTrafficLaw(t *testing.T) {
	g := buildOrFatal(t, 8, 8, 8, wcfg.Equal(16))
	lb := core.LowerBound(g.G)
	extra := func(th int) cdag.Weight {
		return g.PredictCost(Config{Strategy: CTile, TileRows: th, TileCols: th}) - lb
	}
	// extra(th) = 2·64·(8/th − 1)·16 bits.
	if extra(8) != 0 {
		t.Errorf("extra(8) = %d", extra(8))
	}
	if got, want := extra(4), cdag.Weight(2*64*1*16); got != want {
		t.Errorf("extra(4) = %d, want %d", got, want)
	}
	if got, want := extra(2), cdag.Weight(2*64*3*16); got != want {
		t.Errorf("extra(2) = %d, want %d", got, want)
	}
	if got, want := extra(1), cdag.Weight(2*64*7*16); got != want {
		t.Errorf("extra(1) = %d, want %d", got, want)
	}
}

// TestAgainstExactTiny: MMM(2,1,2) (8 nodes) against the exhaustive
// optimum at generous memory.
func TestAgainstExactTiny(t *testing.T) {
	g := buildOrFatal(t, 2, 1, 2, wcfg.Equal(1))
	b := g.G.TotalWeight()
	res, err := exact.Solve(g.G, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinCost(b); got != res.Cost {
		t.Errorf("search at full memory = %d, exact = %d", got, res.Cost)
	}
}

// TestSearchRespectsBudgetQuick.
func TestSearchRespectsBudgetQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		if m*n < 2 {
			return true
		}
		cfgs := []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)}
		g, err := Build(m, k, n, cfgs[rng.Intn(2)])
		if err != nil {
			return false
		}
		b := cdag.Weight(48) + cdag.Weight(rng.Intn(50))*16
		c, cost, err := g.Search(b)
		if err != nil {
			return true // budget too small for any strategy
		}
		return g.PredictPeak(c) <= b && cost == g.PredictCost(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	g := buildOrFatal(t, 3, 2, 3, wcfg.Equal(16))
	for _, c := range []Config{
		{Strategy: CTile, TileRows: 0, TileCols: 1},
		{Strategy: CTile, TileRows: 4, TileCols: 1},
		{Strategy: CTile, TileRows: 1, TileCols: 9},
		{Strategy: Strategy(9)},
	} {
		if _, err := g.Schedule(c); err == nil {
			t.Errorf("Schedule(%v) should fail", c)
		}
		if g.PredictCost(c) < Inf || g.PredictPeak(c) < Inf {
			t.Errorf("predictions for bad config %v should be Inf", c)
		}
	}
	if (Config{Strategy: CTile, TileRows: 2, TileCols: 3}).String() == "" {
		t.Error("empty config string")
	}
	if BResident.String() == "" || Strategy(9).String() == "" {
		t.Error("strategy strings")
	}
}

func BenchmarkScheduleMMM16(b *testing.B) {
	g, err := Build(16, 16, 16, wcfg.Equal(16))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := g.Schedule(Config{Strategy: CTile, TileRows: 4, TileCols: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
