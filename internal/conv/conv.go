// Package conv builds 1-D finite-impulse-response (FIR) convolution
// dataflows — the generalization the paper defers as future work:
// "wavelet transforms that perform convolutions with more than two
// inputs/averages or coarser operations are left to future work"
// (Section 3.1), and implements a sliding-window scheduler for them.
//
// Conv(n, T, D) computes the valid convolution of an n-sample signal
// with a T-tap filter, downsampling by D:
//
//	y[o] = Σ_{t<T} h_t · x[o·D + t],  o = 0 … (n−T)/D
//
// Each output is a chain of T−1 two-input multiply-accumulate nodes
// (the paper's fine operation granularity); adjacent windows share
// T−D inputs, so inputs have out-degree up to ⌈T/D⌉ and the graph is
// not a tree — data reuse, not tree pebbling, decides the schedule.
// The Haar DWT's single level is the special case T = D = 2 (where
// windows are disjoint); larger T (e.g. Daubechies-4's four taps)
// introduces the overlap this package manages.
//
// The sliding scheduler keeps a suffix buffer of the C most recent
// inputs resident. C = T re-reads nothing and meets the algorithmic
// lower bound with Θ(T) fast memory; smaller buffers trade memory
// for reloads of the window prefix, down to C = 0 which reloads
// every overlapping input.
package conv

import (
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// Inf is the sentinel cost of an infeasible configuration.
const Inf cdag.Weight = math.MaxInt64 / 4

// Graph is a Conv(n, T, D) CDAG with its layout.
type Graph struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// N is the signal length, Taps the filter length, Down the
	// downsampling factor.
	N, Taps, Down int
	// Cfg records the weight configuration.
	Cfg wcfg.Config
	// X[i] is input sample i (0-based).
	X []cdag.NodeID
	// Mac[o][t-1] is output o's chain node after consuming tap t ≥ 1
	// (Mac[o][0] consumes taps 0 and 1). Mac[o][Taps-2] is y[o].
	Mac [][]cdag.NodeID
}

// Build constructs Conv(n, T, D). Requirements: T ≥ 2, 1 ≤ D ≤ T
// (windows must not skip samples), n ≥ T, and (n−T) divisible by D so
// the last window ends exactly at the signal boundary.
func Build(n, taps, down int, cfg wcfg.Config) (*Graph, error) {
	if taps < 2 {
		return nil, fmt.Errorf("conv: taps=%d must be ≥ 2", taps)
	}
	if down < 1 || down > taps {
		return nil, fmt.Errorf("conv: downsample=%d out of range [1,%d]", down, taps)
	}
	if n < taps || (n-taps)%down != 0 {
		return nil, fmt.Errorf("conv: n=%d incompatible with taps=%d, downsample=%d", n, taps, down)
	}
	g := &cdag.Graph{}
	out := &Graph{G: g, N: n, Taps: taps, Down: down, Cfg: cfg}
	out.X = make([]cdag.NodeID, n)
	for i := 0; i < n; i++ {
		out.X[i] = g.AddNode(cfg.Input(), fmt.Sprintf("x[%d]", i))
	}
	numOut := (n-taps)/down + 1
	out.Mac = make([][]cdag.NodeID, numOut)
	for o := 0; o < numOut; o++ {
		base := o * down
		chain := make([]cdag.NodeID, taps-1)
		chain[0] = g.AddNode(cfg.Node(), fmt.Sprintf("m[%d,1]", o), out.X[base], out.X[base+1])
		for t := 2; t < taps; t++ {
			chain[t-1] = g.AddNode(cfg.Node(), fmt.Sprintf("m[%d,%d]", o, t),
				chain[t-2], out.X[base+t])
		}
		out.Mac[o] = chain
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("conv: internal construction error: %w", err)
	}
	return out, nil
}

// Outputs returns the number of output samples.
func (g *Graph) Outputs() int { return len(g.Mac) }

// Output returns y[o]'s node.
func (g *Graph) Output(o int) cdag.NodeID { return g.Mac[o][g.Taps-2] }

// emit drives the sliding-window schedule with a resident suffix
// buffer of bufferC inputs. Schedule materializes the moves;
// PredictCost/PredictPeak run the same loop with counters, so the
// predictions are exact by construction and the package tests verify
// the pair against the independent rule-checking simulator.
func (g *Graph) emit(bufferC int, mv func(core.MoveKind, cdag.NodeID)) error {
	if bufferC < 0 || bufferC > g.Taps {
		return fmt.Errorf("conv: buffer %d out of range [0,%d]", bufferC, g.Taps)
	}
	resident := map[int]bool{} // input indices currently red
	numOut := g.Outputs()
	for o := 0; o < numOut; o++ {
		base := o * g.Down
		end := base + g.Taps // exclusive
		// keepFrom: inputs at or beyond it stay resident after this
		// output (suffix buffer ∩ next window).
		keepFrom := end
		if o+1 < numOut {
			keepFrom = end - bufferC
			if next := (o + 1) * g.Down; keepFrom < next {
				keepFrom = next
			}
		}
		use := func(idx int) {
			if !resident[idx] {
				mv(core.M1, g.X[idx])
				resident[idx] = true
			}
		}
		release := func(idx int) {
			if idx < keepFrom && resident[idx] {
				mv(core.M4, g.X[idx])
				delete(resident, idx)
			}
		}
		use(base)
		use(base + 1)
		mv(core.M3, g.Mac[o][0])
		release(base)
		release(base + 1)
		for t := 2; t < g.Taps; t++ {
			use(base + t)
			mv(core.M3, g.Mac[o][t-1])
			mv(core.M4, g.Mac[o][t-2])
			release(base + t)
		}
		out := g.Output(o)
		mv(core.M2, out)
		mv(core.M4, out)
	}
	// The final window keeps nothing.
	for idx := 0; idx < g.N; idx++ {
		if resident[idx] {
			mv(core.M4, g.X[idx])
		}
	}
	return nil
}

// Schedule emits the sliding-window schedule with a resident suffix
// buffer of bufferC inputs (0 ≤ bufferC ≤ Taps): the buffer carries
// the tail of each window into the next, trading fast memory for
// reloads; everything else is dropped as soon as the chain consumes
// it.
func (g *Graph) Schedule(bufferC int) (core.Schedule, error) {
	var s core.Schedule
	err := g.emit(bufferC, func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// metrics replays the emission with counters.
func (g *Graph) metrics(bufferC int) (cost, peak cdag.Weight, err error) {
	var red cdag.Weight
	err = g.emit(bufferC, func(k core.MoveKind, v cdag.NodeID) {
		w := g.G.Weight(v)
		switch k {
		case core.M1:
			cost += w
			red += w
		case core.M2:
			cost += w
		case core.M3:
			red += w
		case core.M4:
			red -= w
		}
		if red > peak {
			peak = red
		}
	})
	return cost, peak, err
}

// PredictCost returns the exact weighted I/O of Schedule(bufferC).
func (g *Graph) PredictCost(bufferC int) cdag.Weight {
	c, _, err := g.metrics(bufferC)
	if err != nil {
		return Inf
	}
	return c
}

// PredictPeak returns the exact peak red weight of Schedule(bufferC).
func (g *Graph) PredictPeak(bufferC int) cdag.Weight {
	_, p, err := g.metrics(bufferC)
	if err != nil {
		return Inf
	}
	return p
}

// MinMemory returns the smallest budget meeting the algorithmic lower
// bound: the full-buffer peak.
func (g *Graph) MinMemory() cdag.Weight { return g.PredictPeak(g.Taps) }

// Search returns the largest buffer (cheapest cost) whose peak fits
// the budget.
func (g *Graph) Search(budget cdag.Weight) (int, cdag.Weight, error) {
	for c := g.Taps; c >= 0; c-- {
		if g.PredictPeak(c) <= budget {
			return c, g.PredictCost(c), nil
		}
	}
	return 0, Inf, fmt.Errorf("conv: no buffer configuration fits budget %d", budget)
}

// MinCost returns the best cost under the budget, Inf if none fits.
func (g *Graph) MinCost(budget cdag.Weight) cdag.Weight {
	_, c, err := g.Search(budget)
	if err != nil {
		return Inf
	}
	return c
}
