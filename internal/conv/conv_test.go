package conv

import (
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/wcfg"
)

func buildOrFatal(t *testing.T, n, taps, down int, cfg wcfg.Config) *Graph {
	t.Helper()
	g, err := Build(n, taps, down, cfg)
	if err != nil {
		t.Fatalf("Build(%d,%d,%d): %v", n, taps, down, err)
	}
	return g
}

func TestBuildRejectsBadParams(t *testing.T) {
	eq := wcfg.Equal(16)
	for _, d := range [][3]int{{8, 1, 1}, {8, 4, 0}, {8, 4, 5}, {3, 4, 1}, {9, 4, 2}} {
		if _, err := Build(d[0], d[1], d[2], eq); err == nil {
			t.Errorf("Build(%v) should fail", d)
		}
	}
}

func TestStructureHaarSpecialCase(t *testing.T) {
	// T = D = 2: disjoint windows, one chain node per output — the
	// averages half of a Haar DWT level.
	g := buildOrFatal(t, 8, 2, 2, wcfg.Equal(16))
	if g.Outputs() != 4 {
		t.Fatalf("outputs = %d", g.Outputs())
	}
	if g.G.Len() != 8+4 {
		t.Errorf("nodes = %d", g.G.Len())
	}
	for o := 0; o < 4; o++ {
		ps := g.G.Parents(g.Output(o))
		if ps[0] != g.X[2*o] || ps[1] != g.X[2*o+1] {
			t.Errorf("output %d parents wrong", o)
		}
	}
}

func TestStructureDB4Shape(t *testing.T) {
	// T=4, D=2: Daubechies-4-style windows overlapping by two.
	g := buildOrFatal(t, 10, 4, 2, wcfg.Equal(16))
	if g.Outputs() != 4 {
		t.Fatalf("outputs = %d", g.Outputs())
	}
	// Interior inputs feed two windows.
	if g.G.OutDegree(g.X[2]) != 2 || g.G.OutDegree(g.X[3]) != 2 {
		t.Error("overlapping inputs should have out-degree 2")
	}
	if g.G.OutDegree(g.X[0]) != 1 {
		t.Error("first input should feed one window")
	}
	// Chain shape: y[o] has taps−1 = 3 nodes.
	if len(g.Mac[0]) != 3 {
		t.Errorf("chain length = %d", len(g.Mac[0]))
	}
	if g.G.IsTree() {
		t.Error("overlapping windows must not form a tree")
	}
}

// TestScheduleValidAndPredicted across buffers, shapes and weights.
func TestScheduleValidAndPredicted(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, d := range [][3]int{{8, 2, 2}, {10, 4, 2}, {9, 3, 1}, {16, 4, 4}, {11, 5, 3}} {
			g := buildOrFatal(t, d[0], d[1], d[2], cfg)
			for c := 0; c <= g.Taps; c++ {
				sched, err := g.Schedule(c)
				if err != nil {
					t.Fatalf("%s Conv%v C=%d: %v", cfg.Name, d, c, err)
				}
				peak := g.PredictPeak(c)
				stats, err := core.Simulate(g.G, peak, sched)
				if err != nil {
					t.Fatalf("%s Conv%v C=%d: %v", cfg.Name, d, c, err)
				}
				if stats.PeakRedWeight != peak || stats.Cost != g.PredictCost(c) {
					t.Errorf("%s Conv%v C=%d: got (%d,%d), predicted (%d,%d)",
						cfg.Name, d, c, stats.Cost, stats.PeakRedWeight, g.PredictCost(c), peak)
				}
			}
		}
	}
}

// TestFullBufferMeetsLB: C = T reads every input once.
func TestFullBufferMeetsLB(t *testing.T) {
	for _, d := range [][3]int{{10, 4, 2}, {9, 3, 1}, {8, 2, 2}} {
		g := buildOrFatal(t, d[0], d[1], d[2], wcfg.Equal(16))
		if got, want := g.PredictCost(g.Taps), core.LowerBound(g.G); got != want {
			t.Errorf("Conv%v: full-buffer cost %d != LB %d", d, got, want)
		}
	}
}

// TestZeroBufferReloadsEverything: C = 0 loads T inputs per window.
func TestZeroBufferReloadsEverything(t *testing.T) {
	g := buildOrFatal(t, 10, 4, 2, wcfg.Equal(16))
	want := cdag.Weight(4*16*4 + 4*16) // 4 windows × 4 loads + 4 outputs
	if got := g.PredictCost(0); got != want {
		t.Errorf("zero-buffer cost = %d, want %d", got, want)
	}
}

// TestHaarCaseBufferIrrelevant: with disjoint windows (T = D) there
// is no reuse, so every buffer size meets the lower bound.
func TestHaarCaseBufferIrrelevant(t *testing.T) {
	g := buildOrFatal(t, 12, 2, 2, wcfg.DoubleAccumulator(16))
	lb := core.LowerBound(g.G)
	for c := 0; c <= 2; c++ {
		if got := g.PredictCost(c); got != lb {
			t.Errorf("C=%d: cost %d != LB %d", c, got, lb)
		}
	}
}

// TestCostMonotoneInBuffer and peak non-decreasing.
func TestCostMonotoneInBuffer(t *testing.T) {
	f := func(seed int64) bool {
		d := [][3]int{{10, 4, 2}, {9, 3, 1}, {13, 5, 2}, {16, 4, 1}}[int(uint64(seed)%4)]
		g, err := Build(d[0], d[1], d[2], wcfg.Equal(16))
		if err != nil {
			return false
		}
		prevCost, prevPeak := Inf, cdag.Weight(0)
		for c := 0; c <= g.Taps; c++ {
			cost, peak := g.PredictCost(c), g.PredictPeak(c)
			if cost > prevCost {
				return false
			}
			if peak < prevPeak {
				return false
			}
			prevCost, prevPeak = cost, peak
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSearchAndMinMemory(t *testing.T) {
	g := buildOrFatal(t, 10, 4, 2, wcfg.Equal(16))
	b := g.MinMemory()
	c, cost, err := g.Search(b)
	if err != nil {
		t.Fatal(err)
	}
	if c != g.Taps || cost != core.LowerBound(g.G) {
		t.Errorf("at MinMemory: C=%d cost=%d", c, cost)
	}
	if g.MinCost(b-16) == core.LowerBound(g.G) {
		t.Error("LB met below MinMemory")
	}
	if _, _, err := g.Search(16); err == nil {
		t.Error("tiny budget should fail")
	}
}

// TestAgainstExactTiny: Conv(4,2,2) — 6 nodes — at full memory.
func TestAgainstExactTiny(t *testing.T) {
	g := buildOrFatal(t, 4, 2, 2, wcfg.Equal(1))
	b := g.G.TotalWeight()
	res, err := exact.Solve(g.G, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinCost(b); got != res.Cost {
		t.Errorf("conv at full memory = %d, exact = %d", got, res.Cost)
	}
	// Overlapping case: Conv(5,3,2) has 5+2·2 = 9 nodes with windows
	// sharing x[2].
	g2 := buildOrFatal(t, 5, 3, 2, wcfg.Equal(1))
	res2, err := exact.Solve(g2.G, g2.G.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.MinCost(g2.G.TotalWeight()); got != res2.Cost {
		t.Errorf("overlapping conv = %d, exact = %d", got, res2.Cost)
	}
}

// TestEveryNodeComputedOnce at any buffer.
func TestEveryNodeComputedOnce(t *testing.T) {
	g := buildOrFatal(t, 10, 4, 2, wcfg.Equal(16))
	for _, c := range []int{0, 2, 4} {
		sched, err := g.Schedule(c)
		if err != nil {
			t.Fatal(err)
		}
		count := map[cdag.NodeID]int{}
		for _, m := range sched {
			if m.Kind == core.M3 {
				count[m.Node]++
			}
		}
		for o := 0; o < g.Outputs(); o++ {
			for _, v := range g.Mac[o] {
				if count[v] != 1 {
					t.Fatalf("C=%d: node computed %d times", c, count[v])
				}
			}
		}
	}
}
