package conv

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/wcfg"
)

func TestMaxLevels(t *testing.T) {
	cases := []struct {
		n, taps, down int
		want          int
	}{
		{16, 2, 2, 4},
		{256, 2, 2, 8},
		{10, 4, 2, 2}, // 10 → 4 → (4−4)/2+1 = 1
		{3, 4, 2, 0},
		{22, 4, 2, 3}, // 22 → 10 → 4 → 1
	}
	for _, c := range cases {
		if got := MaxLevels(c.n, c.taps, c.down); got != c.want {
			t.Errorf("MaxLevels(%d,%d,%d) = %d, want %d", c.n, c.taps, c.down, got, c.want)
		}
	}
}

func TestBuildMultiLevelRejectsBadParams(t *testing.T) {
	eq := wcfg.Equal(16)
	for _, c := range [][4]int{{16, 2, 2, 0}, {16, 1, 1, 1}, {16, 4, 5, 1}, {9, 4, 2, 1}, {10, 4, 2, 3}} {
		if _, err := BuildMultiLevel(c[0], c[1], c[2], c[3], eq); err == nil {
			t.Errorf("BuildMultiLevel(%v) should fail", c)
		}
	}
}

func TestMultiLevelHaarShapeMatchesDWT(t *testing.T) {
	// T = D = 2 over 3 levels on 16 samples: same node count and the
	// same layer sizes as DWT(16,3).
	m, err := BuildMultiLevel(16, 2, 2, 3, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	dg, err := dwt.Build(16, 3, dwt.ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		t.Fatal(err)
	}
	if m.G.Len() != dg.G.Len() {
		t.Errorf("node counts differ: %d vs %d", m.G.Len(), dg.G.Len())
	}
	if got := m.LevelOutputs(); got[0] != 8 || got[1] != 4 || got[2] != 2 {
		t.Errorf("level outputs = %v", got)
	}
	if core.LowerBound(m.G) != core.LowerBound(dg.G) {
		t.Errorf("LBs differ: %d vs %d", core.LowerBound(m.G), core.LowerBound(dg.G))
	}
}

// TestMultiLevelScheduleValid: the level-sequential schedule
// validates at its own peak for several shapes and weightings.
func TestMultiLevelScheduleValid(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, c := range [][3]int{{16, 2, 4}, {22, 4, 3}, {15, 3, 2}} {
			n, taps, levels := c[0], c[1], c[2]
			m, err := BuildMultiLevel(n, taps, 2, levels, cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", cfg.Name, c, err)
			}
			sched := m.Schedule()
			cost, peak := m.Metrics()
			stats, err := core.Simulate(m.G, peak, sched)
			if err != nil {
				t.Fatalf("%s %v: %v", cfg.Name, c, err)
			}
			if stats.Cost != cost || stats.PeakRedWeight != peak {
				t.Errorf("%s %v: metrics (%d,%d) vs simulated (%d,%d)",
					cfg.Name, c, cost, peak, stats.Cost, stats.PeakRedWeight)
			}
		}
	}
}

// TestLevelSequentialPaysIntermediates: the schedule's cost is
// exactly the lower bound plus one write+read per intermediate
// low-pass value.
func TestLevelSequentialPaysIntermediates(t *testing.T) {
	for _, c := range [][4]int{{16, 2, 2, 4}, {22, 4, 2, 3}} {
		m, err := BuildMultiLevel(c[0], c[1], c[2], c[3], wcfg.Equal(16))
		if err != nil {
			t.Fatal(err)
		}
		cost, _ := m.Metrics()
		want := core.LowerBound(m.G) + 2*m.IntermediateWeight()
		if cost != want {
			t.Errorf("shape %v: cost %d, want LB+2·intermediates = %d", c, cost, want)
		}
	}
}

// TestTreeOptimumBeatsLevelSequentialOnHaar: for the Haar case the
// paper's tree-optimal DWT schedule avoids every intermediate
// round-trip — the exact gap the future-work generalization leaves
// open for T > 2.
func TestTreeOptimumBeatsLevelSequentialOnHaar(t *testing.T) {
	cfg := wcfg.Equal(16)
	m, err := BuildMultiLevel(16, 2, 2, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mlCost, _ := m.Metrics()
	dg, err := dwt.Build(16, 4, dwt.ConfigWeights(cfg))
	if err != nil {
		t.Fatal(err)
	}
	s, err := dwt.NewScheduler(dg)
	if err != nil {
		t.Fatal(err)
	}
	optCost := s.MinCost(dg.G.TotalWeight())
	if gap := mlCost - optCost; gap != 2*m.IntermediateWeight() {
		t.Errorf("gap = %d, want 2·intermediates = %d", gap, 2*m.IntermediateWeight())
	}
}

// TestMultiLevelPeakIsWindowSized: peak memory stays Θ(taps), not
// Θ(n) — the streaming property carries to every level.
func TestMultiLevelPeakIsWindowSized(t *testing.T) {
	cfg := wcfg.Equal(16)
	small, err := BuildMultiLevel(34, 4, 2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BuildMultiLevel(130, 4, 2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ps := small.Metrics()
	_, pb := big.Metrics()
	if pb != ps {
		t.Errorf("peak should be size-independent: %d vs %d", ps, pb)
	}
	if pb > cdag.Weight((4+4)*32) {
		t.Errorf("peak %d larger than a window plus working set", pb)
	}
}
