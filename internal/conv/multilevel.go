package conv

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// MultiLevel is the full multi-resolution wavelet dataflow for an
// arbitrary T-tap filter pair — the complete generalization of the
// paper's DWT(n,d) (which is the T = 2 Haar case) to the wavelets its
// Section 3.1 defers: each level convolves the previous level's
// low-pass outputs with a low-pass filter (feeding the next level)
// and a high-pass filter (producing coefficient outputs), both
// downsampled by Down.
//
// For T > Down adjacent windows overlap, the per-level graphs stop
// being trees, and the paper's tree-optimal scheduling no longer
// applies. The scheduler here runs levels in sequence with a
// sliding resident window per level: every level individually
// performs compulsory-only I/O, but each intermediate low-pass value
// round-trips through slow memory between levels. The Haar
// comparison test quantifies exactly what the paper's tree recursion
// buys: for T = 2 the tree-optimal DWT schedule saves one
// write+read per intermediate average.
type MultiLevel struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// N is the input length; Taps, Down and Levels the filter shape.
	N, Taps, Down, Levels int
	// Cfg records the weight configuration.
	Cfg wcfg.Config
	// Inputs are the level-0 samples.
	Inputs []cdag.NodeID
	// LowChain[l][o] / HighChain[l][o] are the MAC chains of level
	// l+1's output o; the last chain node is the output value.
	LowChain, HighChain [][][]cdag.NodeID
	// sizes[l] is the number of values entering level l+1.
	sizes []int
}

// LevelOutputs returns how many outputs each level produces.
func (m *MultiLevel) LevelOutputs() []int {
	out := make([]int, m.Levels)
	for l := 0; l < m.Levels; l++ {
		out[l] = (m.sizes[l]-m.Taps)/m.Down + 1
	}
	return out
}

// Low returns level l's (1-based) low-pass output o (0-based).
func (m *MultiLevel) Low(l, o int) cdag.NodeID {
	c := m.LowChain[l-1][o]
	return c[len(c)-1]
}

// High returns level l's high-pass output o.
func (m *MultiLevel) High(l, o int) cdag.NodeID {
	c := m.HighChain[l-1][o]
	return c[len(c)-1]
}

// MaxLevels returns how many levels an n-sample signal admits for the
// filter shape.
func MaxLevels(n, taps, down int) int {
	levels := 0
	for n >= taps && (n-taps)%down == 0 {
		n = (n-taps)/down + 1
		levels++
		if n < taps {
			break
		}
	}
	return levels
}

// BuildMultiLevel constructs the multi-resolution graph. Every
// level's input size must satisfy the Conv constraints.
func BuildMultiLevel(n, taps, down, levels int, cfg wcfg.Config) (*MultiLevel, error) {
	if levels < 1 {
		return nil, fmt.Errorf("conv: levels=%d must be ≥ 1", levels)
	}
	if taps < 2 || down < 1 || down > taps {
		return nil, fmt.Errorf("conv: invalid filter shape taps=%d down=%d", taps, down)
	}
	g := &cdag.Graph{}
	m := &MultiLevel{G: g, N: n, Taps: taps, Down: down, Levels: levels, Cfg: cfg}
	m.Inputs = make([]cdag.NodeID, n)
	for i := 0; i < n; i++ {
		m.Inputs[i] = g.AddNode(cfg.Input(), fmt.Sprintf("x[%d]", i))
	}
	prev := m.Inputs
	size := n
	for l := 1; l <= levels; l++ {
		if size < taps || (size-taps)%down != 0 {
			return nil, fmt.Errorf("conv: level %d input size %d incompatible with taps=%d down=%d", l, size, taps, down)
		}
		m.sizes = append(m.sizes, size)
		numOut := (size-taps)/down + 1
		lows := make([][]cdag.NodeID, numOut)
		highs := make([][]cdag.NodeID, numOut)
		nextPrev := make([]cdag.NodeID, numOut)
		for o := 0; o < numOut; o++ {
			base := o * down
			mkChain := func(kind string) []cdag.NodeID {
				chain := make([]cdag.NodeID, taps-1)
				chain[0] = g.AddNode(cfg.Node(), fmt.Sprintf("%s[%d,%d,1]", kind, l, o),
					prev[base], prev[base+1])
				for t := 2; t < taps; t++ {
					chain[t-1] = g.AddNode(cfg.Node(), fmt.Sprintf("%s[%d,%d,%d]", kind, l, o, t),
						chain[t-2], prev[base+t])
				}
				return chain
			}
			lows[o] = mkChain("a")
			highs[o] = mkChain("c")
			nextPrev[o] = lows[o][taps-2]
		}
		m.LowChain = append(m.LowChain, lows)
		m.HighChain = append(m.HighChain, highs)
		prev = nextPrev
		size = numOut
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("conv: internal construction error: %w", err)
	}
	return m, nil
}

// emit drives the level-sequential sliding-window schedule.
func (m *MultiLevel) emit(mv func(core.MoveKind, cdag.NodeID)) {
	prev := m.Inputs
	for l := 1; l <= m.Levels; l++ {
		numOut := len(m.LowChain[l-1])
		resident := map[int]bool{}
		lastUse := func(idx int) int {
			// The window containing idx with the largest base.
			o := idx / m.Down
			if o > numOut-1 {
				o = numOut - 1
			}
			return o
		}
		for o := 0; o < numOut; o++ {
			base := o * m.Down
			for t := 0; t < m.Taps; t++ {
				if !resident[base+t] {
					mv(core.M1, prev[base+t])
					resident[base+t] = true
				}
			}
			runChain := func(chain []cdag.NodeID) {
				mv(core.M3, chain[0])
				for t := 1; t < len(chain); t++ {
					mv(core.M3, chain[t])
					mv(core.M4, chain[t-1])
				}
				out := chain[len(chain)-1]
				mv(core.M2, out)
				mv(core.M4, out)
			}
			runChain(m.LowChain[l-1][o])
			runChain(m.HighChain[l-1][o])
			for t := 0; t < m.Taps; t++ {
				idx := base + t
				if resident[idx] && lastUse(idx) == o {
					mv(core.M4, prev[idx])
					delete(resident, idx)
				}
			}
		}
		next := make([]cdag.NodeID, numOut)
		for o := 0; o < numOut; o++ {
			next[o] = m.Low(l, o)
		}
		prev = next
	}
}

// Schedule returns the level-sequential sliding-window schedule.
func (m *MultiLevel) Schedule() core.Schedule {
	var s core.Schedule
	m.emit(func(k core.MoveKind, v cdag.NodeID) {
		s = append(s, core.Move{Kind: k, Node: v})
	})
	return s
}

// Metrics returns the schedule's exact weighted I/O and peak red
// weight.
func (m *MultiLevel) Metrics() (cost, peak cdag.Weight) {
	var red cdag.Weight
	m.emit(func(k core.MoveKind, v cdag.NodeID) {
		w := m.G.Weight(v)
		switch k {
		case core.M1:
			cost += w
			red += w
		case core.M2:
			cost += w
		case core.M3:
			red += w
		case core.M4:
			red -= w
		}
		if red > peak {
			peak = red
		}
	})
	return cost, peak
}

// IntermediateWeight returns the total weight of low-pass values that
// are neither inputs nor final outputs — the values the
// level-sequential schedule round-trips and a fused (tree-style)
// schedule could keep resident.
func (m *MultiLevel) IntermediateWeight() cdag.Weight {
	var w cdag.Weight
	for l := 1; l < m.Levels; l++ {
		for o := range m.LowChain[l-1] {
			w += m.G.Weight(m.Low(l, o))
		}
	}
	return w
}
