// Package pipeline implements the paper's modular composition story:
// "the designer can therefore express computational tasks in parts,
// where each part is associated with an efficient pebbling algorithm
// that produces minimum-cost schedules. These schedules can then be
// stitched together and reordered to obtain an efficient schedule for
// the overall computational task" (Section 1).
//
// A Stage couples a CDAG with a schedule computed for it in
// isolation; Compose splices the stages into one CDAG — binding each
// stage's designated input sources to the previous stage's outputs —
// and rewrites the per-stage schedules into one schedule for the
// whole graph. Stage boundaries round-trip through slow memory (the
// producing stage stores its sinks, the consuming stage loads them),
// which is exactly the modularity cost the model makes explicit: the
// composed schedule is valid by construction and its weighted cost is
// the sum of the stage costs.
package pipeline

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// Stage is one module of a pipeline.
type Stage struct {
	// Name labels the stage in errors and reports.
	Name string
	// G is the stage's CDAG.
	G *cdag.Graph
	// Schedule is a valid WRBPG schedule for G in isolation (it must
	// fit the composed budget).
	Schedule core.Schedule
	// Inputs lists the sources of G that consume the previous stage's
	// outputs, in output order. Empty for the first stage. Sources
	// not listed remain fresh inputs of the composed graph (e.g. a
	// decoder's weight matrix).
	Inputs []cdag.NodeID
	// Outputs lists the sinks of G exposed to the next stage, in the
	// order its Inputs expects. The final stage's outputs are the
	// pipeline's outputs (any unlisted sinks are also pipeline
	// outputs).
	Outputs []cdag.NodeID
}

// Composed is a stitched pipeline.
type Composed struct {
	// G is the spliced CDAG.
	G *cdag.Graph
	// Schedule is the stitched schedule, already validated.
	Schedule core.Schedule
	// Stats is the simulation result of Schedule at the composition
	// budget.
	Stats core.Stats
	// NodeMaps[k][v] is the composed node ID of stage k's node v.
	NodeMaps [][]cdag.NodeID
	// Budget is the fast-memory budget the composition was validated
	// under.
	Budget cdag.Weight
}

// Compose splices the stages and validates the stitched schedule
// under the budget.
func Compose(budget cdag.Weight, stages ...Stage) (*Composed, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	g := &cdag.Graph{}
	maps := make([][]cdag.NodeID, len(stages))
	var prevOutputs []cdag.NodeID // composed IDs of the previous stage's exposed outputs

	for k, st := range stages {
		if st.G == nil {
			return nil, fmt.Errorf("pipeline: stage %d (%s) has no graph", k, st.Name)
		}
		if err := st.G.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: stage %d (%s): %w", k, st.Name, err)
		}
		if k == 0 && len(st.Inputs) != 0 {
			return nil, fmt.Errorf("pipeline: first stage (%s) cannot bind inputs", st.Name)
		}
		if k > 0 && len(st.Inputs) != len(prevOutputs) {
			return nil, fmt.Errorf("pipeline: stage %d (%s) binds %d inputs but stage %d exposes %d outputs",
				k, st.Name, len(st.Inputs), k-1, len(prevOutputs))
		}
		bound := map[cdag.NodeID]cdag.NodeID{}
		for i, in := range st.Inputs {
			if !st.G.IsSource(in) {
				return nil, fmt.Errorf("pipeline: stage %d (%s): bound input %d is not a source", k, st.Name, in)
			}
			if st.G.Weight(in) != g.Weight(prevOutputs[i]) {
				return nil, fmt.Errorf("pipeline: stage %d (%s): input %d weight %d != producer weight %d",
					k, st.Name, in, st.G.Weight(in), g.Weight(prevOutputs[i]))
			}
			bound[in] = prevOutputs[i]
		}
		m := make([]cdag.NodeID, st.G.Len())
		for v := 0; v < st.G.Len(); v++ {
			id := cdag.NodeID(v)
			if b, ok := bound[id]; ok {
				m[v] = b
				continue
			}
			ps := st.G.Parents(id)
			mapped := make([]cdag.NodeID, len(ps))
			for i, p := range ps {
				mapped[i] = m[p]
			}
			name := st.G.Name(id)
			if st.Name != "" {
				name = st.Name + "/" + name
			}
			m[v] = g.AddNode(st.G.Weight(id), name, mapped...)
		}
		maps[k] = m
		for _, out := range st.Outputs {
			if !st.G.IsSink(out) {
				return nil, fmt.Errorf("pipeline: stage %d (%s): exposed output %d is not a sink", k, st.Name, out)
			}
		}
		prevOutputs = prevOutputs[:0]
		for _, out := range st.Outputs {
			prevOutputs = append(prevOutputs, m[out])
		}
	}

	// Stitch the schedules with remapped node IDs.
	var sched core.Schedule
	for k, st := range stages {
		for _, mv := range st.Schedule {
			if int(mv.Node) < 0 || int(mv.Node) >= len(maps[k]) {
				return nil, fmt.Errorf("pipeline: stage %d (%s): schedule references node %d outside its graph", k, st.Name, mv.Node)
			}
			sched = append(sched, core.Move{Kind: mv.Kind, Node: maps[k][mv.Node]})
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: composed graph invalid: %w", err)
	}
	stats, err := core.Simulate(g, budget, sched)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stitched schedule invalid: %w", err)
	}
	return &Composed{G: g, Schedule: sched, Stats: stats, NodeMaps: maps, Budget: budget}, nil
}

// BoundaryCost returns the weighted traffic the stage boundaries add
// over a hypothetical fused kernel: each exposed intermediate output
// is written by its producer and re-read by its consumer.
func BoundaryCost(stages ...Stage) cdag.Weight {
	var w cdag.Weight
	for k := 0; k+1 < len(stages); k++ {
		for _, out := range stages[k].Outputs {
			w += 2 * stages[k].G.Weight(out)
		}
	}
	return w
}

// MinBudget returns the smallest budget the composed schedule needs:
// the maximum of the per-stage peak red weights, which Compose
// preserves because stages run strictly one after another.
func MinBudget(stages ...Stage) (cdag.Weight, error) {
	var max cdag.Weight
	for k, st := range stages {
		stats, err := core.Simulate(st.G, st.G.TotalWeight(), st.Schedule)
		if err != nil {
			return 0, fmt.Errorf("pipeline: stage %d (%s): %w", k, st.Name, err)
		}
		if stats.PeakRedWeight > max {
			max = stats.PeakRedWeight
		}
	}
	return max, nil
}
