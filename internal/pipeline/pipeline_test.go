package pipeline

import (
	"math"
	"math/rand"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/linalg"
	"wrbpg/internal/machine"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

// dwtStage builds a DWT stage with its optimal schedule at minimum
// memory, exposing all sinks (coefficients then final averages, in
// sink order).
func dwtStage(t *testing.T, n, d int, cfg wcfg.Config) (Stage, *dwt.Graph) {
	t.Helper()
	g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
	if err != nil {
		t.Fatal(err)
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MinMemory(16)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	return Stage{Name: "dwt", G: g.G, Schedule: sched, Outputs: g.G.Sinks()}, g
}

// mvmStage builds an MVM stage whose vector inputs bind upstream,
// scheduled by tiling at its minimum memory.
func mvmStage(t *testing.T, m, n int, cfg wcfg.Config) (Stage, *mvm.Graph) {
	t.Helper()
	g, err := mvm.Build(m, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := g.MinMemory()
	tc, _, err := g.Search(b)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := g.TileSchedule(tc)
	if err != nil {
		t.Fatal(err)
	}
	return Stage{Name: "decode", G: g.G, Schedule: sched, Inputs: g.X, Outputs: g.Outputs()}, g
}

// TestComposeDWTIntoMVM: the paper's BCI pipeline in miniature — a
// DWT front end feeding a linear decoder — stitched and validated.
func TestComposeDWTIntoMVM(t *testing.T) {
	cfg := wcfg.Equal(16)
	dst, dg := dwtStage(t, 16, 4, cfg)
	// DWT(16,4) has 16 sinks; decode 4 outputs from those 16 features.
	mst, mg := mvmStage(t, 4, 16, cfg)
	budget, err := MinBudget(dst, mst)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compose(budget, dst, mst)
	if err != nil {
		t.Fatal(err)
	}
	// Structure: composed size = sum minus the bound sources.
	want := dg.G.Len() + mg.G.Len() - 16
	if c.G.Len() != want {
		t.Errorf("composed nodes = %d, want %d", c.G.Len(), want)
	}
	// Cost = sum of stage costs.
	dStats, err := core.Simulate(dg.G, budget, dst.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	mStats, err := core.Simulate(mg.G, budget, mst.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Cost != dStats.Cost+mStats.Cost {
		t.Errorf("composed cost %d != %d + %d", c.Stats.Cost, dStats.Cost, mStats.Cost)
	}
	// Peak = max of stage peaks.
	wantPeak := dStats.PeakRedWeight
	if mStats.PeakRedWeight > wantPeak {
		wantPeak = mStats.PeakRedWeight
	}
	if c.Stats.PeakRedWeight != wantPeak {
		t.Errorf("composed peak %d != max(%d, %d)", c.Stats.PeakRedWeight, dStats.PeakRedWeight, mStats.PeakRedWeight)
	}
	// Sinks of the composition are exactly the decoder outputs.
	if got := len(c.G.Sinks()); got != 4 {
		t.Errorf("composed sinks = %d, want 4", got)
	}
}

// TestComposedExecutionMatchesReferences: the stitched program
// computes DWT-then-decode exactly.
func TestComposedExecutionMatchesReferences(t *testing.T) {
	cfg := wcfg.Equal(16)
	rng := rand.New(rand.NewSource(41))
	dst, dg := dwtStage(t, 16, 4, cfg)
	mst, mg := mvmStage(t, 4, 16, cfg)
	budget, err := MinBudget(dst, mst)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compose(budget, dst, mst)
	if err != nil {
		t.Fatal(err)
	}

	signal := make([]float64, 16)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	dProg, err := machine.FromDWT(dg, signal)
	if err != nil {
		t.Fatal(err)
	}
	W := linalg.NewMatrix(4, 16)
	for i := range W.Data {
		W.Data[i] = rng.NormFloat64()
	}
	// The MVM program needs placeholder vector values for its bound
	// sources; they are ignored by ComposePrograms.
	mProg, err := machine.FromMVM(mg, W.Data, make([]float64, 16))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ComposePrograms(c, []Stage{dst, mst}, []*machine.Program{dProg, mProg})
	if err != nil {
		t.Fatal(err)
	}
	values, stats, err := machine.Run(prog, budget, c.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrafficBits != c.Stats.Cost {
		t.Errorf("machine traffic %d != schedule cost %d", stats.TrafficBits, c.Stats.Cost)
	}

	// Reference: wavelet features in DWT sink order, then W·features.
	levels, err := wavelet.Transform(signal, 4)
	if err != nil {
		t.Fatal(err)
	}
	feat := make([]float64, 0, 16)
	// Sink order is creation order: per layer, coefficients first
	// appear interleaved — recover values via a reference machine run
	// of the DWT stage alone instead of re-deriving the order.
	dVals, _, err := machine.Run(dProg, dg.G.TotalWeight(), mustSched(t, dg))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dg.G.Sinks() {
		feat = append(feat, dVals[s])
	}
	_ = levels
	want, err := W.MulVec(feat)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 4; r++ {
		got := values[c.NodeMaps[1][mg.Output(r)]]
		if math.Abs(got-want[r-1]) > 1e-9 {
			t.Errorf("output %d: %g, want %g", r, got, want[r-1])
		}
	}
}

func mustSched(t *testing.T, dg *dwt.Graph) core.Schedule {
	t.Helper()
	s, err := dwt.NewScheduler(dg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Schedule(dg.G.TotalWeight())
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestThreeStagePipeline: DWT → DWT (on the averages) is rejected
// because the second DWT consumes only part of the first's outputs…
// so instead chain two tiny hand-built stages plus a decoder to cover
// >2 stages.
func TestThreeStagePipeline(t *testing.T) {
	mk := func(name string, nIn int) (Stage, *cdag.Graph) {
		g := &cdag.Graph{}
		var ins []cdag.NodeID
		for i := 0; i < nIn; i++ {
			ins = append(ins, g.AddNode(16, "in"))
		}
		var outs []cdag.NodeID
		for i := 0; i+1 < nIn; i += 2 {
			outs = append(outs, g.AddNode(16, "out", ins[i], ins[i+1]))
		}
		var sched core.Schedule
		for i, o := range outs {
			sched = append(sched,
				core.Move{Kind: core.M1, Node: ins[2*i]},
				core.Move{Kind: core.M1, Node: ins[2*i+1]},
				core.Move{Kind: core.M3, Node: o},
				core.Move{Kind: core.M2, Node: o},
				core.Move{Kind: core.M4, Node: ins[2*i]},
				core.Move{Kind: core.M4, Node: ins[2*i+1]},
				core.Move{Kind: core.M4, Node: o},
			)
		}
		return Stage{Name: name, G: g, Schedule: sched, Inputs: ins, Outputs: outs}, g
	}
	s1, _ := mk("a", 8)
	s1.Inputs = nil // first stage has free inputs
	s2, _ := mk("b", 4)
	s3, _ := mk("c", 2)
	c, err := Compose(48, s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.G.Sinks()) != 1 {
		t.Errorf("sinks = %d, want 1", len(c.G.Sinks()))
	}
	if c.Stats.Cost != (8+4+4+2+2+1)*16 {
		t.Errorf("cost = %d", c.Stats.Cost)
	}
	// Boundary cost: stage-1 outputs (4) + stage-2 outputs (2), ×2.
	if got := BoundaryCost(s1, s2, s3); got != (4+2)*2*16 {
		t.Errorf("boundary cost = %d", got)
	}
}

func TestComposeErrors(t *testing.T) {
	cfg := wcfg.Equal(16)
	dst, _ := dwtStage(t, 16, 4, cfg)
	// Mismatched arity.
	bad, _ := mvmStage(t, 4, 8, cfg)
	if _, err := Compose(4096, dst, bad); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Mismatched weights.
	dstDA, _ := dwtStage(t, 16, 4, wcfg.DoubleAccumulator(16))
	mst, _ := mvmStage(t, 4, 16, cfg)
	if _, err := Compose(4096, dstDA, mst); err == nil {
		t.Error("weight mismatch accepted (DA outputs are 32-bit, Equal inputs 16)")
	}
	// First stage with bound inputs.
	withInputs := dst
	withInputs.Inputs = dst.G.Sources()[:1]
	if _, err := Compose(4096, withInputs); err == nil {
		t.Error("first stage with bindings accepted")
	}
	// Empty pipeline.
	if _, err := Compose(100); err == nil {
		t.Error("empty pipeline accepted")
	}
	// Budget too small for the stitched schedule.
	mst2, _ := mvmStage(t, 4, 16, cfg)
	if _, err := Compose(64, dst, mst2); err == nil {
		t.Error("tiny budget accepted")
	}
}

// TestModularityGap: composition pays the boundary round-trip over a
// fused exact optimum on a tiny two-stage pipeline.
func TestModularityGap(t *testing.T) {
	// Stage 1: two inputs → one sum. Stage 2: that sum + fresh input
	// → output.
	g1 := &cdag.Graph{}
	a := g1.AddNode(1, "a")
	b := g1.AddNode(1, "b")
	s := g1.AddNode(1, "s", a, b)
	sched1 := core.Schedule{{Kind: core.M1, Node: a}, {Kind: core.M1, Node: b}, {Kind: core.M3, Node: s},
		{Kind: core.M2, Node: s}, {Kind: core.M4, Node: a}, {Kind: core.M4, Node: b}, {Kind: core.M4, Node: s}}
	st1 := Stage{Name: "sum", G: g1, Schedule: sched1, Outputs: []cdag.NodeID{s}}

	g2 := &cdag.Graph{}
	in := g2.AddNode(1, "in")
	c2 := g2.AddNode(1, "c")
	o := g2.AddNode(1, "o", in, c2)
	sched2 := core.Schedule{{Kind: core.M1, Node: in}, {Kind: core.M1, Node: c2}, {Kind: core.M3, Node: o},
		{Kind: core.M2, Node: o}, {Kind: core.M4, Node: in}, {Kind: core.M4, Node: c2}, {Kind: core.M4, Node: o}}
	st2 := Stage{Name: "fuse", G: g2, Schedule: sched2, Inputs: []cdag.NodeID{in}, Outputs: []cdag.NodeID{o}}

	comp, err := Compose(3, st1, st2)
	if err != nil {
		t.Fatal(err)
	}
	// Composed cost: 3 loads + 2 stores + 1 boundary re-read = 6.
	if comp.Stats.Cost != 6 {
		t.Errorf("composed cost = %d, want 6", comp.Stats.Cost)
	}
	// A fused schedule can keep the boundary value red: cost 4.
	fused := core.Schedule{
		{Kind: core.M1, Node: comp.NodeMaps[0][a]}, {Kind: core.M1, Node: comp.NodeMaps[0][b]},
		{Kind: core.M3, Node: comp.NodeMaps[0][s]},
		{Kind: core.M4, Node: comp.NodeMaps[0][a]}, {Kind: core.M4, Node: comp.NodeMaps[0][b]},
		{Kind: core.M1, Node: comp.NodeMaps[1][c2]},
		{Kind: core.M3, Node: comp.NodeMaps[1][o]},
		{Kind: core.M2, Node: comp.NodeMaps[1][o]},
		{Kind: core.M4, Node: comp.NodeMaps[1][c2]}, {Kind: core.M4, Node: comp.NodeMaps[1][o]},
		{Kind: core.M4, Node: comp.NodeMaps[0][s]},
	}
	fStats, err := core.Simulate(comp.G, 3, fused)
	if err != nil {
		t.Fatal(err)
	}
	if fStats.Cost != 4 {
		t.Errorf("fused cost = %d, want 4", fStats.Cost)
	}
	if got := BoundaryCost(st1, st2); got != comp.Stats.Cost-fStats.Cost {
		t.Errorf("BoundaryCost = %d, want %d", got, comp.Stats.Cost-fStats.Cost)
	}
}
