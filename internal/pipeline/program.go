package pipeline

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/machine"
)

// ComposePrograms splices per-stage executable programs (package
// machine) into one program for the composed graph: operations are
// remapped node for node, input values are taken from each stage's
// program for every source that was not bound to an upstream output.
// The result runs the whole pipeline end to end on the two-level
// memory machine.
func ComposePrograms(c *Composed, stages []Stage, progs []*machine.Program) (*machine.Program, error) {
	if len(stages) != len(c.NodeMaps) || len(progs) != len(stages) {
		return nil, fmt.Errorf("pipeline: %d stages, %d maps, %d programs", len(stages), len(c.NodeMaps), len(progs))
	}
	out := machine.NewProgram(c.G)
	for k, st := range stages {
		p := progs[k]
		if p == nil || p.G != st.G {
			return nil, fmt.Errorf("pipeline: program %d does not belong to stage %q", k, st.Name)
		}
		bound := map[cdag.NodeID]bool{}
		for _, in := range st.Inputs {
			bound[in] = true
		}
		for v := 0; v < st.G.Len(); v++ {
			id := cdag.NodeID(v)
			cid := c.NodeMaps[k][v]
			if st.G.IsSource(id) {
				if bound[id] {
					continue // value produced upstream
				}
				val, ok := p.Inputs[id]
				if !ok {
					return nil, fmt.Errorf("pipeline: stage %q source %d has no input value", st.Name, id)
				}
				out.Inputs[cid] = val
				continue
			}
			if p.Ops[id] == nil {
				return nil, fmt.Errorf("pipeline: stage %q node %d has no operation", st.Name, id)
			}
			out.Ops[cid] = p.Ops[id]
		}
	}
	return out, nil
}
