package stream

import (
	"math"
	"math/rand"
	"testing"

	"wrbpg/internal/wavelet"
	"wrbpg/internal/wcfg"
)

func randSignal(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestProcessMatchesPerWindowTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	r, err := NewDWT(16, 4, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	signal := randSignal(rng, 64)
	for _, hop := range []int{16, 8, 4} { // disjoint and overlapping
		windows, stats, err := r.Process(signal, hop)
		if err != nil {
			t.Fatalf("hop=%d: %v", hop, err)
		}
		wantCount := (64-16)/hop + 1
		if len(windows) != wantCount || stats.Windows != wantCount {
			t.Fatalf("hop=%d: windows = %d, want %d", hop, len(windows), wantCount)
		}
		for _, w := range windows {
			levels, err := wavelet.Transform(signal[w.Start:w.Start+16], 4)
			if err != nil {
				t.Fatal(err)
			}
			wantC, wantA := wavelet.Outputs(levels)
			for l := range wantC {
				for j := range wantC[l] {
					if math.Abs(w.Coeffs[l][j]-wantC[l][j]) > 1e-9 {
						t.Fatalf("hop=%d window@%d level %d: %g vs %g",
							hop, w.Start, l+1, w.Coeffs[l][j], wantC[l][j])
					}
				}
			}
			for j := range wantA {
				if math.Abs(w.FinalAvg[j]-wantA[j]) > 1e-9 {
					t.Fatalf("final avg mismatch at window %d", w.Start)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	r, err := NewDWT(16, 4, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	signal := randSignal(rand.New(rand.NewSource(72)), 48)
	_, stats, err := r.Process(signal, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 3 {
		t.Fatalf("windows = %d", stats.Windows)
	}
	// Per-window traffic is the compulsory 2·16 words; three windows.
	if stats.TrafficBits != 3*32*16 {
		t.Errorf("traffic = %d, want %d", stats.TrafficBits, 3*32*16)
	}
	if stats.Computes != 3*30 {
		t.Errorf("computes = %d, want %d", stats.Computes, 3*30)
	}
}

func TestProcessErrors(t *testing.T) {
	r, err := NewDWT(16, 4, wcfg.Equal(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Process(make([]float64, 8), 4); err == nil {
		t.Error("short signal accepted")
	}
	if _, _, err := r.Process(make([]float64, 32), 0); err == nil {
		t.Error("zero hop accepted")
	}
}

func TestNewDWTRejectsBadShape(t *testing.T) {
	if _, err := NewDWT(12, 4, wcfg.Equal(16)); err == nil {
		t.Error("incompatible (n,d) accepted")
	}
}

func TestBandEnergy(t *testing.T) {
	r, err := NewDWT(16, 4, wcfg.DoubleAccumulator(16))
	if err != nil {
		t.Fatal(err)
	}
	// A pure alternating signal concentrates in level 1.
	signal := make([]float64, 16)
	for i := range signal {
		if i%2 == 0 {
			signal[i] = 1
		} else {
			signal[i] = -1
		}
	}
	windows, _, err := r.Process(signal, 16)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := BandEnergy(windows[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for l := 1; l <= 4; l++ {
		e, err := BandEnergy(windows[0], l)
		if err != nil {
			t.Fatal(err)
		}
		total += e
	}
	if e1 < 0.99*total {
		t.Errorf("level-1 share = %f of %f", e1, total)
	}
	if _, err := BandEnergy(windows[0], 0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := BandEnergy(windows[0], 9); err == nil {
		t.Error("level 9 accepted")
	}
}
