// Package stream is the deployment loop the schedules are compiled
// for: a BCI processes an unbounded sample stream in fixed windows,
// executing one precompiled WRBPG schedule per window inside the
// synthesized fast memory. The schedule is compiled once (at the
// workload's minimum memory by default), then re-executed with fresh
// input bindings every hop — the firmware pattern core.Manifest
// serializes.
package stream

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/machine"
	"wrbpg/internal/wcfg"
)

// Stats accumulates execution counters across windows.
type Stats struct {
	// Windows is the number of windows processed.
	Windows int
	// TrafficBits is the total data moved between memories.
	TrafficBits cdag.Weight
	// Computes is the total number of M3 executions.
	Computes int
}

// DWT is a compiled streaming wavelet front end.
type DWT struct {
	// Graph is the per-window dataflow; Budget the fast memory the
	// schedule was compiled for; Schedule the compiled moves.
	Graph  *dwt.Graph
	Budget cdag.Weight
	// Schedule is replayed once per window.
	Schedule core.Schedule
}

// NewDWT compiles an n-sample, d-level window at the optimum
// scheduler's minimum fast memory.
func NewDWT(n, d int, cfg wcfg.Config) (*DWT, error) {
	g, err := dwt.Build(n, d, dwt.ConfigWeights(cfg))
	if err != nil {
		return nil, err
	}
	s, err := dwt.NewScheduler(g)
	if err != nil {
		return nil, err
	}
	b, err := s.MinMemory(cdag.Weight(cfg.WordBits))
	if err != nil {
		return nil, err
	}
	sched, err := s.Schedule(b)
	if err != nil {
		return nil, err
	}
	return &DWT{Graph: g, Budget: b, Schedule: sched}, nil
}

// Window is one processed hop.
type Window struct {
	// Start is the window's first sample index in the stream.
	Start int
	// Coeffs[l] holds level l+1's wavelet coefficients; FinalAvg the
	// last level's scaling outputs.
	Coeffs   [][]float64
	FinalAvg []float64
}

// Process runs the compiled schedule over every hop-aligned window
// that fits in the signal. hop must be positive; hop < n yields
// overlapping windows.
func (r *DWT) Process(signal []float64, hop int) ([]Window, Stats, error) {
	if hop <= 0 {
		return nil, Stats{}, fmt.Errorf("stream: hop must be positive, got %d", hop)
	}
	n := r.Graph.N
	if len(signal) < n {
		return nil, Stats{}, fmt.Errorf("stream: signal length %d shorter than window %d", len(signal), n)
	}
	var out []Window
	var st Stats
	for start := 0; start+n <= len(signal); start += hop {
		prog, err := machine.FromDWT(r.Graph, signal[start:start+n])
		if err != nil {
			return nil, st, err
		}
		values, ms, err := machine.Run(prog, r.Budget, r.Schedule)
		if err != nil {
			return nil, st, fmt.Errorf("stream: window at %d: %w", start, err)
		}
		coeffs, finalAvg := machine.DWTOutputs(r.Graph, values)
		out = append(out, Window{Start: start, Coeffs: coeffs, FinalAvg: finalAvg})
		st.Windows++
		st.TrafficBits += ms.TrafficBits
		st.Computes += ms.Computes
	}
	return out, st, nil
}

// BandEnergy returns the summed squared coefficients of one level
// across a window — the feature seizure detectors threshold.
func BandEnergy(w Window, level int) (float64, error) {
	if level < 1 || level > len(w.Coeffs) {
		return 0, fmt.Errorf("stream: level %d out of range [1,%d]", level, len(w.Coeffs))
	}
	var e float64
	for _, c := range w.Coeffs[level-1] {
		e += c * c
	}
	return e, nil
}
