package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilCheckerIsFree(t *testing.T) {
	var c *Checker
	if err := c.Tick(); err != nil {
		t.Fatalf("nil Tick = %v", err)
	}
	if err := c.AddMemo(1 << 30); err != nil {
		t.Fatalf("nil AddMemo = %v", err)
	}
	if err := c.AddStates(1 << 30); err != nil {
		t.Fatalf("nil AddStates = %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("nil Err = %v", err)
	}
	c.Release() // must not panic
	if c.Context() == nil {
		t.Fatal("nil Context() = nil")
	}
}

func TestTickCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{})
	defer c.Release()
	if err := c.Tick(); err != nil {
		t.Fatalf("live context tripped: %v", err)
	}
	cancel()
	// The poll is throttled; within 256+1 ticks it must land.
	var err error
	for i := 0; i < 2*(tickMask+1); i++ {
		if err = c.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("after cancel: err = %v, want ErrCanceled", err)
	}
	// Latched: every later call returns the same reason immediately.
	if err := c.Tick(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("latched err = %v", err)
	}
	if err := c.AddMemo(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("AddMemo after trip = %v", err)
	}
}

func TestDeadlineFromLimits(t *testing.T) {
	c := New(context.Background(), Limits{Deadline: time.Millisecond})
	defer c.Release()
	deadline := time.Now().Add(500 * time.Millisecond)
	var err error
	for time.Now().Before(deadline) {
		if err = c.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestMemoAndStateBudgets(t *testing.T) {
	c := New(context.Background(), Limits{MaxMemoEntries: 3})
	defer c.Release()
	for i := 0; i < 3; i++ {
		if err := c.AddMemo(1); err != nil {
			t.Fatalf("AddMemo #%d = %v", i, err)
		}
	}
	if err := c.AddMemo(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("4th AddMemo = %v, want ErrBudgetExceeded", err)
	}

	s := New(context.Background(), Limits{MaxStates: 2})
	defer s.Release()
	if err := s.AddStates(2); err != nil {
		t.Fatalf("AddStates(2) = %v", err)
	}
	if err := s.AddStates(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("AddStates over = %v, want ErrBudgetExceeded", err)
	}
}

func TestWrapAndDegradable(t *testing.T) {
	if Wrap(nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
	if !errors.Is(Wrap(context.Canceled), ErrCanceled) {
		t.Fatal("Wrap(Canceled) != ErrCanceled")
	}
	if !errors.Is(Wrap(context.DeadlineExceeded), ErrDeadline) {
		t.Fatal("Wrap(DeadlineExceeded) != ErrDeadline")
	}
	other := errors.New("other")
	if Wrap(other) != other {
		t.Fatal("Wrap(other) changed the error")
	}
	if Degradable(ErrCanceled) {
		t.Fatal("ErrCanceled must not be degradable")
	}
	if !Degradable(ErrDeadline) || !Degradable(ErrBudgetExceeded) {
		t.Fatal("deadline/budget must be degradable")
	}
}

func TestClampDeadline(t *testing.T) {
	bg := context.Background()
	if d := ClampDeadline(bg, 0, 0); d != 0 {
		t.Fatalf("no bounds: %v, want 0", d)
	}
	if d := ClampDeadline(bg, time.Second, 0); d != time.Second {
		t.Fatalf("want only: %v, want 1s", d)
	}
	if d := ClampDeadline(bg, time.Minute, time.Second); d != time.Second {
		t.Fatalf("max clamps want: %v, want 1s", d)
	}
	if d := ClampDeadline(bg, 0, time.Second); d != time.Second {
		t.Fatalf("max bounds unlimited want: %v, want 1s", d)
	}
	if d := ClampDeadline(nil, time.Second, 0); d != time.Second {
		t.Fatalf("nil ctx: %v, want 1s", d)
	}
	// A context deadline tightens but never loosens.
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	if d := ClampDeadline(ctx, time.Minute, 0); d > 50*time.Millisecond {
		t.Fatalf("ctx must tighten: %v", d)
	}
	if d := ClampDeadline(ctx, time.Nanosecond, time.Minute); d > time.Nanosecond {
		t.Fatalf("want below ctx deadline must survive: %v", d)
	}
	// An already-expired context yields a positive sentinel, not 0
	// ("no deadline") and not a negative duration.
	expired, cancel2 := context.WithDeadline(bg, time.Now().Add(-time.Second))
	defer cancel2()
	if d := ClampDeadline(expired, time.Minute, 0); d <= 0 {
		t.Fatalf("expired ctx: %v, want > 0", d)
	}
}

func TestUnlimited(t *testing.T) {
	if !(Limits{}).Unlimited() {
		t.Fatal("zero Limits must be Unlimited")
	}
	if (Limits{MaxStates: 1}).Unlimited() {
		t.Fatal("MaxStates=1 is not Unlimited")
	}
}
