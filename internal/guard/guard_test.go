package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilCheckerIsFree(t *testing.T) {
	var c *Checker
	if err := c.Tick(); err != nil {
		t.Fatalf("nil Tick = %v", err)
	}
	if err := c.AddMemo(1 << 30); err != nil {
		t.Fatalf("nil AddMemo = %v", err)
	}
	if err := c.AddStates(1 << 30); err != nil {
		t.Fatalf("nil AddStates = %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("nil Err = %v", err)
	}
	c.Release() // must not panic
	if c.Context() == nil {
		t.Fatal("nil Context() = nil")
	}
}

func TestTickCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{})
	defer c.Release()
	if err := c.Tick(); err != nil {
		t.Fatalf("live context tripped: %v", err)
	}
	cancel()
	// The poll is throttled; within 256+1 ticks it must land.
	var err error
	for i := 0; i < 2*(tickMask+1); i++ {
		if err = c.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("after cancel: err = %v, want ErrCanceled", err)
	}
	// Latched: every later call returns the same reason immediately.
	if err := c.Tick(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("latched err = %v", err)
	}
	if err := c.AddMemo(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("AddMemo after trip = %v", err)
	}
}

func TestDeadlineFromLimits(t *testing.T) {
	c := New(context.Background(), Limits{Deadline: time.Millisecond})
	defer c.Release()
	deadline := time.Now().Add(500 * time.Millisecond)
	var err error
	for time.Now().Before(deadline) {
		if err = c.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestMemoAndStateBudgets(t *testing.T) {
	c := New(context.Background(), Limits{MaxMemoEntries: 3})
	defer c.Release()
	for i := 0; i < 3; i++ {
		if err := c.AddMemo(1); err != nil {
			t.Fatalf("AddMemo #%d = %v", i, err)
		}
	}
	if err := c.AddMemo(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("4th AddMemo = %v, want ErrBudgetExceeded", err)
	}

	s := New(context.Background(), Limits{MaxStates: 2})
	defer s.Release()
	if err := s.AddStates(2); err != nil {
		t.Fatalf("AddStates(2) = %v", err)
	}
	if err := s.AddStates(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("AddStates over = %v, want ErrBudgetExceeded", err)
	}
}

func TestWrapAndDegradable(t *testing.T) {
	if Wrap(nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
	if !errors.Is(Wrap(context.Canceled), ErrCanceled) {
		t.Fatal("Wrap(Canceled) != ErrCanceled")
	}
	if !errors.Is(Wrap(context.DeadlineExceeded), ErrDeadline) {
		t.Fatal("Wrap(DeadlineExceeded) != ErrDeadline")
	}
	other := errors.New("other")
	if Wrap(other) != other {
		t.Fatal("Wrap(other) changed the error")
	}
	if Degradable(ErrCanceled) {
		t.Fatal("ErrCanceled must not be degradable")
	}
	if !Degradable(ErrDeadline) || !Degradable(ErrBudgetExceeded) {
		t.Fatal("deadline/budget must be degradable")
	}
}

func TestUnlimited(t *testing.T) {
	if !(Limits{}).Unlimited() {
		t.Fatal("zero Limits must be Unlimited")
	}
	if (Limits{MaxStates: 1}).Unlimited() {
		t.Fatal("MaxStates=1 is not Unlimited")
	}
}
