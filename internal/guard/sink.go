// Context-carried counts aggregation: the serving layer's per-request
// cost accounting (wire.CostMeta) needs the solver-progress Counts of
// whatever solves a request triggered — one-shot solvers, warm session
// sweeps, anytime search workers — without threading a new parameter
// through every solver API. A CountsSink rides the request context;
// Checkers capture it at New/Reset and tee their TakeCounts deltas
// into it, so every existing flush point feeds the request's meter for
// free. Contexts without a sink (the warm zero-allocation paths) pay
// one ctx.Value lookup and nothing else.
package guard

import (
	"context"
	"sync"
)

// CountsSink accumulates solver-progress Counts across goroutines for
// one request. The mutex (rather than atomics) keeps Add a single
// uncontended lock on the per-flush path — flushes are per solve, not
// per DP cell — and tolerates late flushes from solver goroutines the
// request already abandoned.
type CountsSink struct {
	mu sync.Mutex
	c  Counts
}

// Add accumulates c. Safe on nil.
func (s *CountsSink) Add(c Counts) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.c.Add(c)
	s.mu.Unlock()
}

// Snapshot returns the totals accumulated so far.
func (s *CountsSink) Snapshot() Counts {
	if s == nil {
		return Counts{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// sinkKey is the context key for the request's CountsSink.
type sinkKey struct{}

// WithSink returns a context carrying s: Checkers built (New) or
// reinitialized (Reset) under the returned context tee their
// TakeCounts deltas into s.
func WithSink(ctx context.Context, s *CountsSink) context.Context {
	return context.WithValue(ctx, sinkKey{}, s)
}

// SinkFrom returns the sink carried by ctx, or nil.
func SinkFrom(ctx context.Context) *CountsSink {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(sinkKey{}).(*CountsSink)
	return s
}
