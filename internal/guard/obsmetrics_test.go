package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestCountsSurviveReset: budget charges reset per query, but the
// observation counts must accumulate across Reset for the checker's
// lifetime — that is what lets a warm session flush deltas per query.
func TestCountsSurviveReset(t *testing.T) {
	ck := New(context.Background(), Limits{})
	defer ck.Release()
	ck.NoteHit()
	ck.NoteHit()
	ck.NoteSplit()
	if err := ck.AddMemo(3); err != nil {
		t.Fatal(err)
	}
	ck.Reset(context.Background(), Limits{MaxMemoEntries: 100})
	ck.NoteHit()
	if err := ck.AddStates(5); err != nil {
		t.Fatal(err)
	}
	got := ck.Counts()
	want := Counts{MemoHits: 3, MemoEntries: 3, States: 5, IntervalSplits: 1}
	if got != want {
		t.Fatalf("Counts after Reset = %+v, want %+v", got, want)
	}
}

// TestTakeCountsDelta: TakeCounts must return the delta since the last
// take and zero the accumulator, so successive flushes never
// double-count.
func TestTakeCountsDelta(t *testing.T) {
	ck := New(context.Background(), Limits{})
	defer ck.Release()
	ck.NoteHit()
	if got := ck.TakeCounts(); got.MemoHits != 1 {
		t.Fatalf("first take = %+v, want MemoHits 1", got)
	}
	if got := ck.TakeCounts(); got != (Counts{}) {
		t.Fatalf("second take = %+v, want zero", got)
	}
	ck.NoteSplit()
	if got := ck.TakeCounts(); got.IntervalSplits != 1 || got.MemoHits != 0 {
		t.Fatalf("third take = %+v, want only the new split", got)
	}
}

// TestNoteNilSafe: the observation hooks sit on the warmest solver
// paths and must be no-ops on a nil checker.
func TestNoteNilSafe(t *testing.T) {
	var ck *Checker
	ck.NoteHit()
	ck.NoteSplit()
}

// TestFamilyCountersRecord: Record flushes a delta into the registry,
// CountersFor caches per family, and a nil receiver is a no-op.
func TestFamilyCountersRecord(t *testing.T) {
	// A family name private to this test keeps the process-global
	// counters free of crosstalk with other tests.
	fc := CountersFor("testfam_record")
	if CountersFor("testfam_record") != fc {
		t.Fatal("CountersFor did not cache the family set")
	}
	fc.Record(Counts{MemoHits: 7, IntervalSplits: 2})
	fc.Record(Counts{}) // all-warm flush: only the query counter moves
	if got := fc.queries.Value(); got != 2 {
		t.Errorf("queries = %d, want 2", got)
	}
	if got := fc.hits.Value(); got != 7 {
		t.Errorf("hits = %d, want 7", got)
	}
	if got := fc.splits.Value(); got != 2 {
		t.Errorf("splits = %d, want 2", got)
	}
	if got := fc.entries.Value(); got != 0 {
		t.Errorf("entries = %d, want 0", got)
	}
	var nilFC *FamilyCounters
	nilFC.Record(Counts{MemoHits: 1}) // must not panic
}

// TestAbortReason pins the classification vocabulary shared by
// wrbpg_guard_aborts_total and wrbpg_fallback_total.
func TestAbortReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrCanceled, "canceled"},
		{context.Canceled, "canceled"},
		{fmt.Errorf("dwt: %w", ErrDeadline), "deadline"},
		{context.DeadlineExceeded, "deadline"},
		{fmt.Errorf("ktree: %w", ErrBudgetExceeded), "budget"},
		{errors.New("disk on fire"), "other"},
	}
	for _, c := range cases {
		if got := AbortReason(c.err); got != c.want {
			t.Errorf("AbortReason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
