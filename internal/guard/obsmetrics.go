// The guard → obs bridge: process-wide solver counters in the
// obs.Default registry, fed by the solver sessions (per-query Counts
// deltas) and by the checker itself (abort reasons). guard sits below
// every solver package, so this is the one place the family-labeled
// counter set can live without import cycles.
package guard

import (
	"context"
	"errors"
	"sync"

	"wrbpg/internal/obs"
)

var (
	solverQueries = obs.Default.CounterVec("wrbpg_solver_queries_total",
		"Solver count flushes, by dataflow family: one per single query, one per whole sweep.", "family")
	solverMemoHits = obs.Default.CounterVec("wrbpg_solver_memo_hits_total",
		"Warm DP memo hits (cells or budget intervals answered without recomputation).", "family")
	solverMemoEntries = obs.Default.CounterVec("wrbpg_solver_memo_entries_total",
		"DP memo cells created.", "family")
	solverStates = obs.Default.CounterVec("wrbpg_solver_states_total",
		"Search states explored (exact Dijkstra search).", "family")
	solverSplits = obs.Default.CounterVec("wrbpg_solver_interval_splits_total",
		"Budget-interval memo stores clipped against an existing step.", "family")
	solverInvalidated = obs.Default.CounterVec("wrbpg_solver_cells_invalidated_total",
		"Memo cells cleared by patch invalidations (changed node in their subtree).", "family")
	solverReused = obs.Default.CounterVec("wrbpg_solver_cells_reused_total",
		"Memo cells surviving patch invalidations (work an incremental re-solve avoids).", "family")
	guardAborts = obs.Default.CounterVec("wrbpg_guard_aborts_total",
		"Solves aborted by the guard, by reason (canceled, deadline, budget).", "reason")
)

// FamilyCounters is the pre-resolved counter set for one dataflow
// family, so the per-query flush is a handful of atomic adds with no
// label lookups on the serving hot path.
type FamilyCounters struct {
	queries, hits, entries, states, splits *obs.Counter
	invalidated, reused                    *obs.Counter
}

var (
	fcMu sync.Mutex
	fcs  = map[string]*FamilyCounters{}
)

// CountersFor returns the (cached) counter set for the family.
func CountersFor(family string) *FamilyCounters {
	fcMu.Lock()
	defer fcMu.Unlock()
	if fc, ok := fcs[family]; ok {
		return fc
	}
	fc := &FamilyCounters{
		queries:     solverQueries.With(family),
		hits:        solverMemoHits.With(family),
		entries:     solverMemoEntries.With(family),
		states:      solverStates.With(family),
		splits:      solverSplits.With(family),
		invalidated: solverInvalidated.With(family),
		reused:      solverReused.With(family),
	}
	fcs[family] = fc
	return fc
}

// Record flushes one query's (or one sweep's) Counts delta into the
// registry. Zero counts skip their atomic add, so an all-warm sweep
// costs two adds total.
func (fc *FamilyCounters) Record(c Counts) {
	if fc == nil {
		return
	}
	fc.queries.Inc()
	if c.MemoHits > 0 {
		fc.hits.Add(uint64(c.MemoHits))
	}
	if c.MemoEntries > 0 {
		fc.entries.Add(uint64(c.MemoEntries))
	}
	if c.States > 0 {
		fc.states.Add(uint64(c.States))
	}
	if c.IntervalSplits > 0 {
		fc.splits.Add(uint64(c.IntervalSplits))
	}
	if c.CellsInvalidated > 0 {
		fc.invalidated.Add(uint64(c.CellsInvalidated))
	}
	if c.CellsReused > 0 {
		fc.reused.Add(uint64(c.CellsReused))
	}
}

// noteAbort feeds the abort-reason counter when a checker first trips.
// Aborts are rare (at most one per solve), so the label lookup is fine
// here.
func noteAbort(err error) {
	switch {
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		guardAborts.With("canceled").Inc()
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		guardAborts.With("deadline").Inc()
	case errors.Is(err, ErrBudgetExceeded):
		guardAborts.With("budget").Inc()
	default:
		guardAborts.With("other").Inc()
	}
}

// AbortReason classifies err into the metric label vocabulary shared
// by wrbpg_guard_aborts_total and wrbpg_fallback_total: "canceled",
// "deadline", "budget", "panic" or "other" ("" for nil).
func AbortReason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrBudgetExceeded), errors.Is(err, ErrOptimalInfeasible):
		return "budget"
	default:
		return "other"
	}
}
