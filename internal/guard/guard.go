// Package guard provides the shared runtime-protection vocabulary for
// the solver packages: typed abort errors, resource limits, and a
// cheap cancellation/budget checker threaded through the DP loops.
//
// The hardness results for red-blue pebbling (Papp et al.) mean the
// exponential solvers (exact search, memory-state DPs) cannot be given
// unbounded time or memory in a serving system. Every long-running
// solver therefore accepts a context plus a Limits value and checks a
// *Checker at its iteration points; a tripped checker makes the solver
// unwind promptly with one of the typed errors below, without
// poisoning its memo tables (partial results computed after the trip
// are never stored).
//
// The zero Checker pointer (nil) is valid and free: every method is
// nil-safe, so solvers pay a single pointer test on their hot paths
// when no guard is installed.
package guard

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Typed abort reasons. Callers classify with errors.Is; the solve
// facade degrades to the baseline scheduler on ErrDeadline and
// ErrBudgetExceeded, and propagates ErrCanceled (the caller went away,
// so no answer is wanted at all).
var (
	// ErrCanceled reports that the caller's context was canceled.
	ErrCanceled = errors.New("guard: solve canceled")
	// ErrDeadline reports that the context deadline (or Limits.Deadline)
	// expired before the solver finished.
	ErrDeadline = errors.New("guard: solve deadline exceeded")
	// ErrBudgetExceeded reports that a resource ceiling of Limits was
	// hit (memo entries or explored states).
	ErrBudgetExceeded = errors.New("guard: resource budget exceeded")
	// ErrOptimalInfeasible reports a memory budget outside the optimal
	// tier's search space (e.g. below MVM's tiling minimum) even though
	// the budget clears the schedule-existence bound — the baseline
	// scheduler can still answer, so the error is degradable.
	ErrOptimalInfeasible = errors.New("guard: budget outside optimal search space")
)

// Limits bounds a single solve. The zero value imposes no bounds.
type Limits struct {
	// MaxMemoEntries caps the number of memoized DP cells a scheduler
	// may create (dwt, ktree, memstate). 0 = unlimited.
	MaxMemoEntries int
	// MaxStates caps the number of distinct game states the exact
	// Dijkstra search may track. 0 = unlimited.
	MaxStates int
	// Deadline, when positive, bounds the wall-clock time of the solve;
	// it composes with (tightens, never loosens) any deadline already
	// carried by the caller's context.
	Deadline time.Duration
}

// Unlimited reports whether the limits impose no resource ceilings.
func (l Limits) Unlimited() bool {
	return l.MaxMemoEntries == 0 && l.MaxStates == 0 && l.Deadline == 0
}

// tickMask throttles context polling: the Done channel is consulted
// once every tickMask+1 Tick calls, keeping checkpoints to a counter
// increment in the common case.
const tickMask = 255

// Counts is the observation side of a Checker: cheap solver-progress
// counters the DP kernels feed as they run. Unlike the budget charges
// (which reset per query so Limits stay per-query), counts accumulate
// across Reset for the checker's lifetime — a warm session owns one
// Checker, so the serving layer reads deltas between queries and feeds
// its metrics registry without touching the DP hot paths twice.
type Counts struct {
	// MemoHits counts warm memo probes (a cell or interval answered
	// without recomputation).
	MemoHits int64
	// MemoEntries counts memoized cells created (AddMemo charges).
	MemoEntries int64
	// States counts tracked search states (AddStates charges).
	States int64
	// IntervalSplits counts budget-interval memo stores that were
	// clipped against an existing neighbouring step (dense sweeps split
	// the budget axis finer and finer; a high rate means queries land
	// between known steps).
	IntervalSplits int64
	// CellsInvalidated counts memo cells (or budget intervals) cleared
	// by a patch invalidation — the work an incremental re-solve pays.
	CellsInvalidated int64
	// CellsReused counts memo cells that survived a patch invalidation
	// — the work an incremental re-solve avoids redoing.
	CellsReused int64
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.MemoHits += other.MemoHits
	c.MemoEntries += other.MemoEntries
	c.States += other.States
	c.IntervalSplits += other.IntervalSplits
	c.CellsInvalidated += other.CellsInvalidated
	c.CellsReused += other.CellsReused
}

// Checker is the per-solve cancellation and budget monitor. It is not
// safe for concurrent use — each goroutine (or worker-pool chunk)
// installs its own. A nil *Checker is valid and disables all checks.
type Checker struct {
	ctx    context.Context
	cancel context.CancelFunc
	lim    Limits
	ticks  uint
	memo   int
	states int
	err    error
	counts Counts
	sink   *CountsSink // tee target for TakeCounts; captured from ctx
}

// New builds a checker for one solve. When lim.Deadline is positive a
// timeout context is derived; Release must be called (defer it) to
// free the timer.
func New(ctx context.Context, lim Limits) *Checker {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Checker{ctx: ctx, lim: lim, sink: SinkFrom(ctx)}
	if lim.Deadline > 0 {
		c.ctx, c.cancel = context.WithTimeout(ctx, lim.Deadline)
	}
	return c
}

// Reset reinitializes c in place for a new solve under ctx and lim,
// reusing the allocation — solver sessions own one Checker value and
// Reset it per budget query, so a warm query allocates nothing (a
// timeout context is still derived, and costs, when lim.Deadline is
// positive; deadline-free sessions poll ctx directly). Any deadline
// timer from the previous solve is released first, so Reset may be
// called without an intervening Release.
func (c *Checker) Reset(ctx context.Context, lim Limits) {
	if c.cancel != nil {
		c.cancel()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Budget charges reset (Limits are per query); observation counts
	// survive, so session owners can read cumulative progress. The tee
	// sink follows the new context: a warm session's checker reports to
	// whichever request is currently driving it.
	*c = Checker{ctx: ctx, lim: lim, counts: c.counts, sink: SinkFrom(ctx)}
	if lim.Deadline > 0 {
		c.ctx, c.cancel = context.WithTimeout(ctx, lim.Deadline)
	}
}

// Release frees the deadline timer, if any. Safe on nil.
func (c *Checker) Release() {
	if c != nil && c.cancel != nil {
		c.cancel()
	}
}

// Context returns the (possibly deadline-narrowed) context the checker
// polls, for handing to worker pools. Background for a nil checker.
func (c *Checker) Context() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// Err returns the tripped error, or nil while the solve may continue.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

// trip latches the first abort reason and feeds the process-wide
// abort counter (wrbpg_guard_aborts_total).
func (c *Checker) trip(err error) error {
	if c.err == nil {
		c.err = err
		noteAbort(err)
	}
	return c.err
}

// Tick is the periodic cancellation checkpoint: call it once per DP
// cell / search iteration. It returns non-nil once the solve must
// abort. The context is polled once every 256 calls, so a checkpoint
// normally costs a counter increment.
func (c *Checker) Tick() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.ticks++
	if c.ticks&tickMask != 0 {
		return nil
	}
	return c.poll()
}

// poll consults the context immediately (no throttling).
func (c *Checker) poll() error {
	select {
	case <-c.ctx.Done():
		return c.trip(Wrap(c.ctx.Err()))
	default:
		return nil
	}
}

// NoteHit records one warm memo hit. It sits on the warmest solver
// paths, so it is a nil test plus a plain increment — no atomics, the
// checker is single-goroutine by contract.
func (c *Checker) NoteHit() {
	if c != nil {
		c.counts.MemoHits++
	}
}

// NoteSplit records one clipped budget-interval store.
func (c *Checker) NoteSplit() {
	if c != nil {
		c.counts.IntervalSplits++
	}
}

// NoteInvalidation records one patch invalidation: invalidated memo
// cells cleared because a changed node sits in their subtree, and
// reused cells that survived. Patching runs outside any query, so this
// is plain arithmetic like the other observation notes.
func (c *Checker) NoteInvalidation(invalidated, reused int64) {
	if c != nil {
		c.counts.CellsInvalidated += invalidated
		c.counts.CellsReused += reused
	}
}

// Counts returns the cumulative observation counters (they survive
// Reset). Zero for a nil checker.
func (c *Checker) Counts() Counts {
	if c == nil {
		return Counts{}
	}
	return c.counts
}

// TakeCounts returns the cumulative observation counters and zeroes
// them, so per-query deltas need no bookkeeping on the caller's side.
// The delta is also teed into the CountsSink carried by the context
// the checker was last built or Reset under, feeding the serving
// layer's per-request cost accounting.
func (c *Checker) TakeCounts() Counts {
	if c == nil {
		return Counts{}
	}
	ct := c.counts
	c.counts = Counts{}
	c.sink.Add(ct)
	return ct
}

// AddMemo charges n new memo entries against Limits.MaxMemoEntries and
// returns non-nil once the ceiling is exceeded (or the checker already
// tripped). Call it before storing a fresh DP cell and skip the store
// on error.
func (c *Checker) AddMemo(n int) error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.memo += n
	c.counts.MemoEntries += int64(n)
	if c.lim.MaxMemoEntries > 0 && c.memo > c.lim.MaxMemoEntries {
		return c.trip(fmt.Errorf("%w: %d memo entries exceed limit %d",
			ErrBudgetExceeded, c.memo, c.lim.MaxMemoEntries))
	}
	return nil
}

// AddStates charges n tracked search states against Limits.MaxStates.
func (c *Checker) AddStates(n int) error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.states += n
	c.counts.States += int64(n)
	if c.lim.MaxStates > 0 && c.states > c.lim.MaxStates {
		return c.trip(fmt.Errorf("%w: %d search states exceed limit %d",
			ErrBudgetExceeded, c.states, c.lim.MaxStates))
	}
	return nil
}

// Wrap maps a context error onto the typed taxonomy: Canceled →
// ErrCanceled, DeadlineExceeded → ErrDeadline. Other errors (and nil)
// pass through unchanged.
func Wrap(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return err
	}
}

// ClampDeadline maps a caller-facing deadline request onto a solve
// budget: it starts from want (0 = unlimited), never exceeds max
// (0 = no ceiling), and never outlives a deadline already carried by
// ctx — so a solver handed the result unwinds before the transport
// (e.g. an HTTP request context) gives up on it. The returned duration
// is at least 1ns whenever any bound applies, keeping "deadline
// already passed" distinguishable from "no deadline" (0).
func ClampDeadline(ctx context.Context, want, max time.Duration) time.Duration {
	d := want
	if max > 0 && (d == 0 || d > max) {
		d = max
	}
	if ctx != nil {
		if t, ok := ctx.Deadline(); ok {
			if left := time.Until(t); d == 0 || left < d {
				d = left
			}
		}
	}
	if d < 0 {
		d = time.Nanosecond
	}
	return d
}

// Degradable reports whether err is a reason to fall back to the
// baseline scheduler rather than fail outright: the solver ran out of
// time or resources — or its search space excludes the budget — but
// the caller is still waiting for an answer. Cancellation is not
// degradable — the caller abandoned the request.
func Degradable(err error) bool {
	return errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrOptimalInfeasible) ||
		errors.Is(err, context.DeadlineExceeded)
}
