// Frontier sharding: one mutex-guarded min-heap per worker. A child
// state lands on the shard its hash owns (spreading hot subtrees
// across workers), and a worker pops its own shard first, then steals
// from the others — so the pool stays busy even when one region of the
// search space collapses under pruning.

package anytime

import "sync"

type frontierShard struct {
	mu   sync.Mutex
	heap []*state
}

// better orders the frontier: smallest f first (best-first), deepest
// state on ties (closer to a complete schedule, so incumbents arrive
// early — the anytime property depends on reaching goals fast).
func better(a, b *state) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.nDone > b.nDone
}

func (fs *frontierShard) push(st *state) {
	fs.mu.Lock()
	h := fs.heap
	h = append(h, st)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !better(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	fs.heap = h
	fs.mu.Unlock()
}

func (fs *frontierShard) pop() *state {
	fs.mu.Lock()
	h := fs.heap
	n := len(h)
	if n == 0 {
		fs.mu.Unlock()
		return nil
	}
	top := h[0]
	n--
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && better(h[l], h[m]) {
			m = l
		}
		if r < n && better(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	fs.heap = h
	fs.mu.Unlock()
	return top
}

// push routes a child to the shard owning its hash.
func (s *searcher) push(h uint64, st *state) {
	s.shards[h%uint64(len(s.shards))].push(st)
}

// pop serves worker id: its own shard first, then a scan of the others
// (work stealing). Returns nil when every shard is empty right now.
func (s *searcher) pop(id int) *state {
	n := len(s.shards)
	for k := 0; k < n; k++ {
		if st := s.shards[(id+k)%n].pop(); st != nil {
			return st
		}
	}
	return nil
}
