// Property tests for the anytime tier, the satellite contract of the
// general-DAG scheduler: every result is Simulate-valid, bounded below
// by Proposition 2.4, never worse than either baseline, and the
// incumbent trajectory is monotone — under -race and with par fault
// injection killing workers.

package anytime

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// roster returns the fixed random-CDAG roster shared with the
// cdag-check gate and BENCH_9: count graphs, 15–60 nodes, seeded.
func roster(count int) []*cdag.Graph {
	out := make([]*cdag.Graph, count)
	for i := range out {
		out[i] = cdag.Random(int64(1000+i), 15+(i*45)/max(count-1, 1))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// budgetFor picks a budget tight enough for eviction pressure but
// comfortably above the existence bound.
func budgetFor(g *cdag.Graph) cdag.Weight {
	return core.MinExistenceBudget(g) * 2
}

func TestSearchPropertyBounds(t *testing.T) {
	for i, g := range roster(12) {
		b := budgetFor(g)
		res, err := Search(context.Background(), g, b,
			guard.Limits{Deadline: 40 * time.Millisecond, MaxStates: 200000}, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		stats, err := core.Simulate(g, b, res.Schedule)
		if err != nil {
			t.Fatalf("graph %d: incumbent not Simulate-valid: %v", i, err)
		}
		if stats.Cost != res.Cost {
			t.Fatalf("graph %d: reported cost %d != simulated %d", i, res.Cost, stats.Cost)
		}
		if res.Cost < core.LowerBound(g) {
			t.Fatalf("graph %d: cost %d below Proposition 2.4 bound %d", i, res.Cost, core.LowerBound(g))
		}
		if lbl, err := baseline.LayerByLayer(g, DepthLayers(g), b); err == nil {
			if c := core.Cost(g, lbl); res.Cost > c {
				t.Fatalf("graph %d: cost %d worse than layer-by-layer %d", i, res.Cost, c)
			}
		}
		if gr, err := baseline.Greedy(g, b); err == nil {
			if c := core.Cost(g, gr); res.Cost > c {
				t.Fatalf("graph %d: cost %d worse than greedy %d", i, res.Cost, c)
			}
		}
		if res.Cost > res.SeedCost {
			t.Fatalf("graph %d: cost %d above seed %d", i, res.Cost, res.SeedCost)
		}
	}
}

// TestSearchTrajectoryMonotone is the deadline-slice contract: the
// incumbent the caller would receive at any deadline slice within one
// run never costs more than at an earlier slice.
func TestSearchTrajectoryMonotone(t *testing.T) {
	for i, g := range roster(8) {
		b := budgetFor(g)
		res, err := Search(context.Background(), g, b,
			guard.Limits{Deadline: 30 * time.Millisecond}, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if len(res.Trajectory) == 0 {
			t.Fatalf("graph %d: empty trajectory", i)
		}
		if res.Trajectory[0].Cost != res.SeedCost {
			t.Fatalf("graph %d: trajectory starts at %d, seed is %d",
				i, res.Trajectory[0].Cost, res.SeedCost)
		}
		for j := 1; j < len(res.Trajectory); j++ {
			if res.Trajectory[j].Cost >= res.Trajectory[j-1].Cost {
				t.Fatalf("graph %d: trajectory not strictly decreasing at %d: %v",
					i, j, res.Trajectory)
			}
			if res.Trajectory[j].Elapsed < res.Trajectory[j-1].Elapsed {
				t.Fatalf("graph %d: trajectory time not monotone: %v", i, res.Trajectory)
			}
		}
		if res.Trajectory[len(res.Trajectory)-1].Cost != res.Cost {
			t.Fatalf("graph %d: trajectory ends at %d, cost is %d",
				i, res.Trajectory[len(res.Trajectory)-1].Cost, res.Cost)
		}
	}
}

// TestSearchCompleteVsExact: on tiny graphs the drained search is
// optimal within the no-recompute subspace, so it must sit between the
// unrestricted exact optimum and the baselines.
func TestSearchCompleteVsExact(t *testing.T) {
	for i := 0; i < 6; i++ {
		g := cdag.Random(int64(7000+i), 9)
		b := budgetFor(g)
		res, err := Search(context.Background(), g, b, guard.Limits{MaxStates: 2000000}, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !res.Complete {
			t.Fatalf("graph %d: tiny search did not complete", i)
		}
		ex, err := exact.SolveCtx(context.Background(), g, b, guard.Limits{})
		if err != nil {
			t.Fatalf("graph %d: exact: %v", i, err)
		}
		if res.Cost < ex.Cost {
			t.Fatalf("graph %d: anytime %d beat the exact optimum %d (invalid schedule?)",
				i, res.Cost, ex.Cost)
		}
	}
}

func TestSearchInfeasibleBudget(t *testing.T) {
	g := cdag.Random(42, 20)
	_, err := Search(context.Background(), g, core.MinExistenceBudget(g)-1, guard.Limits{}, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSearchCanceled(t *testing.T) {
	g := cdag.Random(43, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Search(ctx, g, budgetFor(g), guard.Limits{}, Options{})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestSearchFaultInjectedWorkers kills a subset of the pool at spawn
// via the par fault hook: the survivors must still return a valid,
// bounded incumbent (width degrades, the answer does not).
func TestSearchFaultInjectedWorkers(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 workers")
	}
	restore := par.SetFaultHook(func(index int) {
		if index%2 == 1 {
			panic("injected worker fault")
		}
	})
	defer restore()
	for i, g := range roster(4) {
		b := budgetFor(g)
		res, err := Search(context.Background(), g, b,
			guard.Limits{Deadline: 25 * time.Millisecond}, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if res.Complete {
			t.Fatalf("graph %d: crashed-worker search reported Complete", i)
		}
		if _, err := core.Simulate(g, b, res.Schedule); err != nil {
			t.Fatalf("graph %d: invalid incumbent after fault: %v", i, err)
		}
		if res.Cost > res.SeedCost {
			t.Fatalf("graph %d: fault run regressed below the seed", i)
		}
	}
}

// TestSearchTargetCost stops at a reference cost without claiming
// completeness — the BENCH_9 time-to-match mode.
func TestSearchTargetCost(t *testing.T) {
	g := cdag.Random(99, 30)
	b := budgetFor(g)
	ref, err := Search(context.Background(), g, b,
		guard.Limits{Deadline: 30 * time.Millisecond}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(context.Background(), g, b,
		guard.Limits{Deadline: 5 * time.Second}, Options{TargetCost: ref.Cost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > ref.Cost {
		t.Fatalf("target run stopped at %d above target %d", res.Cost, ref.Cost)
	}
	if _, err := core.Simulate(g, b, res.Schedule); err != nil {
		t.Fatalf("invalid target-run incumbent: %v", err)
	}
}

// TestRosterAcceptance is the PR's headline criterion: on the fixed
// 20-graph roster (15–60 nodes), 50 ms per graph, the anytime tier is
// never worse than baseline.LayerByLayer and strictly beats it on at
// least half the graphs. The ties in practice are exactly the graphs
// where the baseline already meets the Proposition 2.4 bound (nothing
// left to win). Skipped under -short: the strict-beat half is timing
// sensitive on starved CI runners; make cdag-check runs it in full.
func TestRosterAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive roster acceptance; run via make cdag-check")
	}
	const graphs = 20
	better := 0
	for i := 0; i < graphs; i++ {
		g := cdag.Random(int64(1000+i), 15+(i*45)/(graphs-1))
		b := budgetFor(g)
		lbl, err := baseline.LayerByLayer(g, DepthLayers(g), b)
		if err != nil {
			t.Fatalf("graph %d: baseline: %v", i, err)
		}
		lc := core.Cost(g, lbl)
		res, err := Search(context.Background(), g, b,
			guard.Limits{Deadline: 50 * time.Millisecond}, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if _, err := core.Simulate(g, b, res.Schedule); err != nil {
			t.Fatalf("graph %d: invalid schedule: %v", i, err)
		}
		if res.Cost > lc {
			t.Fatalf("graph %d: anytime %d worse than layer-by-layer %d", i, res.Cost, lc)
		}
		if res.Cost < lc {
			better++
		}
	}
	if better*2 < graphs {
		t.Fatalf("anytime strictly beat the baseline on only %d/%d graphs (want ≥ half)",
			better, graphs)
	}
}

func TestDepthLayers(t *testing.T) {
	g := cdag.Random(7, 25)
	layers := DepthLayers(g)
	for _, v := range layers[0] {
		if !g.IsSource(v) {
			t.Fatalf("layer 0 holds non-source %d", v)
		}
	}
	seen := 0
	for d, l := range layers {
		seen += len(l)
		for _, v := range l {
			for _, p := range g.Parents(v) {
				pd := 0
				for dd, ll := range layers {
					for _, u := range ll {
						if u == p {
							pd = dd
						}
					}
				}
				if pd >= d {
					t.Fatalf("node %d at depth %d has parent %d at depth %d", v, d, p, pd)
				}
			}
		}
	}
	if seen != g.Len() {
		t.Fatalf("layers cover %d of %d nodes", seen, g.Len())
	}
}
