// Duplicate-state suppression: a sharded open-addressed hash table
// mapping (done, red, blue) to the cheapest cost reaching that class,
// in the style of memstate's pmTable (flat slot array, inlined integer
// hash, linear probing, grow at 3/4 occupancy) but with packed
// memstate.Bitset keys and a mutex per shard — different shards insert
// concurrently, and the hash picking the shard is the same one probing
// the slots, so contention spreads with the key space.

package anytime

import (
	"sync"

	"wrbpg/internal/cdag"
	"wrbpg/internal/memstate"
)

// visitedShards is the fixed shard count; a power of two so the shard
// picker is a mask over bits the in-shard probe does not reuse.
const visitedShards = 16

type vSlot struct {
	hash uint64
	done memstate.Bitset
	red  memstate.Bitset
	blue memstate.Bitset
	cost cdag.Weight
	full bool
}

type visitedShard struct {
	mu    sync.Mutex
	mask  uint64
	n     int
	slots []vSlot
}

// visitShard picks the shard from the high hash bits; the low bits
// drive the in-shard probe sequence.
func (s *searcher) visitShard(h uint64) *visitedShard {
	return &s.visited[(h>>48)&(visitedShards-1)]
}

// insert records st's class at its cost. It returns false when an
// equal-or-cheaper visit of the same (done, red, blue) class already
// exists — the caller drops the duplicate. A costlier prior visit is
// overwritten (the cheaper realization dominates it).
func (t *visitedShard) insert(h uint64, st *state) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		sl := &t.slots[i]
		if !sl.full {
			*sl = vSlot{hash: h, done: st.done, red: st.red, blue: st.blue, cost: st.cost, full: true}
			t.n++
			return true
		}
		if sl.hash == h && sl.done.Equal(st.done) && sl.red.Equal(st.red) && sl.blue.Equal(st.blue) {
			if sl.cost <= st.cost {
				return false
			}
			sl.cost = st.cost
			return true
		}
	}
}

func (t *visitedShard) grow() {
	old := t.slots
	size := 256
	if len(old) > 0 {
		size = len(old) * 2
	}
	t.slots = make([]vSlot, size)
	t.mask = uint64(size - 1)
	for i := range old {
		if !old[i].full {
			continue
		}
		for j := old[i].hash & t.mask; ; j = (j + 1) & t.mask {
			if !t.slots[j].full {
				t.slots[j] = old[i]
				break
			}
		}
	}
}
