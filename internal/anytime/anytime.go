// Package anytime implements the general-DAG scheduler tier: a
// parallel best-first branch-and-bound search over partial WRBPG
// schedules for arbitrary CDAGs.
//
// Exact general red-blue pebbling is intractable (Papp–Wattenhofer),
// so the search is an *anytime* solver: it seeds a feasible incumbent
// from the baseline schedulers (so the floor equals the degradation
// ladder's fallback), then explores the space of partial schedules,
// keeping the best complete schedule found so far in a lock-free
// shared incumbent. On deadline or state-budget exhaustion it returns
// the incumbent — later answers never cost more than earlier ones, and
// never more than baseline.LayerByLayer.
//
// The search space is the no-recompute subspace: every node is
// computed exactly once and a computed (or source) value is never
// lost — it stays red or blue until its last consumer is computed.
// Both baselines live in this subspace, so feasibility at any budget
// at or above the Proposition 2.3 existence bound is guaranteed, and
// every complete search-space schedule is a valid upper bound for the
// unrestricted game.
//
// A search node is the triple (computed set, red set, blue set) plus
// cost-so-far; branching picks the next node to compute, realized by a
// deterministic micro-move sequence (load missing parents, heuristic
// eviction for room, M3, release dead values, store sinks). Pruning
// compares cost-so-far + a state-generalized Proposition 2.4 residual
// (mandatory future reloads of live non-resident values plus stores of
// unstored sinks) against the incumbent via one atomic load. The
// frontier is sharded across internal/par workers (each worker pops
// its own shard first and steals from the others), and duplicate
// states are suppressed by a sharded open-addressed visited table over
// packed memstate.Bitset keys.
package anytime

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/memstate"
	"wrbpg/internal/obs"
	"wrbpg/internal/par"
)

// ErrInfeasible reports a budget below the Proposition 2.3 existence
// bound: no schedule exists at all, so there is nothing anytime about
// it. It is not degradable — the baseline cannot answer either.
var ErrInfeasible = errors.New("anytime: no valid schedule exists under the budget")

// Options tune one Search beyond its guard.Limits.
type Options struct {
	// Workers is the parallel search width; ≤0 selects GOMAXPROCS.
	Workers int
	// TargetCost, when positive, stops the search as soon as the
	// incumbent reaches it — the "time to match a reference cost"
	// mode of the BENCH_9 speedup kernels.
	TargetCost cdag.Weight
}

// Improvement is one step of the incumbent trajectory: the incumbent
// cost and the wall-clock offset at which it was installed. The first
// entry is the baseline seed.
type Improvement struct {
	Cost    cdag.Weight   `json:"cost"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Result reports one anytime search.
type Result struct {
	// Schedule is the incumbent: the cheapest complete schedule found.
	Schedule core.Schedule
	// Cost is the incumbent's weighted I/O cost.
	Cost cdag.Weight
	// SeedCost is the baseline incumbent the search started from
	// (min of layer-by-layer over depth layers and greedy).
	SeedCost cdag.Weight
	// LowerBound is the Proposition 2.4 bound for the graph.
	LowerBound cdag.Weight
	// Complete reports that the incumbent is optimal within the
	// no-recompute search space: the frontier drained, or the incumbent
	// met the lower bound (in which case it is globally optimal).
	// Deadline, state-budget, target-cost and worker-crash exits leave
	// it false.
	Complete bool
	// Expanded, Pruned and Deduped count search states expanded,
	// cut by the bound, and suppressed by the visited table.
	Expanded, Pruned, Deduped int64
	// Improvements counts incumbent replacements (seed excluded).
	Improvements int64
	// Workers is the parallel width the search ran at.
	Workers int
	// Trajectory is the incumbent cost over time, starting at the seed.
	// It is non-increasing — the monotone anytime contract.
	Trajectory []Improvement
}

// state is one search node: the partial-schedule equivalence class
// (done, red, blue) with its cheapest known realization.
type state struct {
	parent *state
	moves  []core.Move // micro-moves applied on top of parent
	done   memstate.Bitset
	red    memstate.Bitset
	blue   memstate.Bitset
	redW   cdag.Weight
	cost   cdag.Weight
	f      cdag.Weight // cost + admissible residual
	nDone  int32
}

// searcher owns the shared search structures of one Search call.
type searcher struct {
	g         *cdag.Graph
	budget    cdag.Weight
	lb        cdag.Weight
	target    cdag.Weight
	nonSource int32
	isSource  []bool
	start     time.Time

	// best is the lock-free incumbent cost bound (atomic CAS); the
	// schedule and trajectory behind it live under incMu.
	best         atomic.Int64
	incMu        sync.Mutex
	incCost      cdag.Weight
	incSched     core.Schedule
	traj         []Improvement
	improvements atomic.Int64

	shards  []frontierShard
	visited []visitedShard
	// pending counts frontier states not yet fully expanded; drain to
	// zero is the natural-termination signal.
	pending atomic.Int64
	// stop makes every worker exit promptly; the flags record why.
	stop       atomic.Bool
	optimalHit atomic.Bool // incumbent met the lower bound
	tripped    atomic.Bool // a worker hit its deadline/state budget
	targetHit  atomic.Bool // TargetCost reached

	expanded atomic.Int64
	pruned   atomic.Int64
	deduped  atomic.Int64
}

// DepthLayers partitions the nodes by longest-path depth from the
// sources: layer 0 is exactly the source set, and every node's parents
// sit in strictly earlier layers — the layer structure the baseline
// layer-by-layer scheduler needs on an arbitrary CDAG.
func DepthLayers(g *cdag.Graph) [][]cdag.NodeID {
	n := g.Len()
	depth := make([]int, n)
	maxd := 0
	for v := 0; v < n; v++ {
		d := 0
		for _, p := range g.Parents(cdag.NodeID(v)) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[v] = d
		if d > maxd {
			maxd = d
		}
	}
	layers := make([][]cdag.NodeID, maxd+1)
	for v := 0; v < n; v++ {
		layers[depth[v]] = append(layers[depth[v]], cdag.NodeID(v))
	}
	return layers
}

// Seed returns the baseline incumbent the search starts from: the
// cheaper of greedy and layer-by-layer over depth layers. It is the
// anytime tier's floor — Search never returns a worse schedule.
func Seed(g *cdag.Graph, budget cdag.Weight) (core.Schedule, cdag.Weight, error) {
	var sched core.Schedule
	var cost cdag.Weight
	if s, err := baseline.LayerByLayer(g, DepthLayers(g), budget); err == nil {
		sched, cost = s, core.Cost(g, s)
	}
	if s, err := baseline.Greedy(g, budget); err == nil {
		if c := core.Cost(g, s); sched == nil || c < cost {
			sched, cost = s, c
		}
	}
	if sched == nil {
		return nil, 0, fmt.Errorf("%w: budget %d below existence bound %d",
			ErrInfeasible, budget, core.MinExistenceBudget(g))
	}
	return sched, cost, nil
}

// Search runs the anytime branch-and-bound under ctx and lim. It
// returns a valid schedule for every budget at or above the existence
// bound: the incumbent at deadline/state-budget exhaustion
// (Complete=false) or the subspace optimum when the frontier drains
// (Complete=true). Context cancellation returns guard.ErrCanceled with
// no schedule — the caller went away. A crashed worker (recovered by
// internal/par) degrades the search width, never the answer: the
// survivors keep searching and the incumbent still comes back.
func Search(ctx context.Context, g *cdag.Graph, budget cdag.Weight, lim guard.Limits, opt Options) (Result, error) {
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	if !core.ScheduleExists(g, budget) {
		return Result{}, fmt.Errorf("%w: budget %d below existence bound %d",
			ErrInfeasible, budget, core.MinExistenceBudget(g))
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sctx, span := obs.StartSpan(ctx, "anytime.search")

	seedSched, seedCost, err := Seed(g, budget)
	if err != nil {
		span.SetAttr("err", err.Error())
		span.End()
		return Result{}, err
	}

	s := &searcher{
		g:        g,
		budget:   budget,
		lb:       core.LowerBound(g),
		target:   opt.TargetCost,
		isSource: make([]bool, g.Len()),
		start:    time.Now(),
		shards:   make([]frontierShard, workers),
		visited:  make([]visitedShard, visitedShards),
	}
	var sources memstate.Bitset
	for v := 0; v < g.Len(); v++ {
		id := cdag.NodeID(v)
		if g.IsSource(id) {
			s.isSource[v] = true
			sources = sources.With(id)
		} else {
			s.nonSource++
		}
	}
	s.best.Store(int64(seedCost))
	s.incCost, s.incSched = seedCost, seedSched
	s.traj = []Improvement{{Cost: seedCost, Elapsed: time.Since(s.start)}}

	res := Result{
		SeedCost:   seedCost,
		LowerBound: s.lb,
		Workers:    workers,
	}
	if seedCost <= s.lb {
		// The baseline already meets the Proposition 2.4 bound: globally
		// optimal, nothing to search.
		s.finish(&res, true)
		span.SetAttr("complete", "true")
		span.End()
		return res, nil
	}

	root := &state{blue: sources, f: s.lb}
	s.pending.Store(1)
	s.shards[0].push(root)

	wlim := guard.Limits{Deadline: lim.Deadline}
	if lim.MaxStates > 0 {
		wlim.MaxStates = lim.MaxStates / workers
		if wlim.MaxStates == 0 {
			wlim.MaxStates = 1
		}
	}
	ids := make([]int, workers)
	for i := range ids {
		ids[i] = i
	}
	_, werr := par.MapCtx(sctx, workers, ids, func(id int) (struct{}, error) {
		return struct{}{}, s.worker(sctx, id, wlim)
	})

	var pe *par.PanicError
	switch {
	case werr == nil:
	case errors.As(werr, &pe):
		// A worker crashed (or a fault hook killed it); its recovered
		// panic degraded the width, not the answer. Mark incomplete.
		s.tripped.Store(true)
	case errors.Is(werr, guard.ErrCanceled):
		span.SetAttr("err", werr.Error())
		span.End()
		return Result{}, werr
	default:
		span.SetAttr("err", werr.Error())
		span.End()
		return Result{}, werr
	}

	complete := s.optimalHit.Load() ||
		(!s.tripped.Load() && !s.targetHit.Load() && s.pending.Load() == 0)
	s.finish(&res, complete)
	span.SetAttr("workers", strconv.Itoa(workers))
	span.SetAttr("expanded", strconv.FormatInt(res.Expanded, 10))
	span.SetAttr("pruned", strconv.FormatInt(res.Pruned, 10))
	span.SetAttr("improvements", strconv.FormatInt(res.Improvements, 10))
	span.SetAttr("complete", strconv.FormatBool(res.Complete))
	span.End()
	return res, nil
}

// finish copies the incumbent and counters into res.
func (s *searcher) finish(res *Result, complete bool) {
	s.incMu.Lock()
	res.Schedule = s.incSched
	res.Cost = s.incCost
	res.Trajectory = append([]Improvement(nil), s.traj...)
	s.incMu.Unlock()
	res.Complete = complete
	res.Expanded = s.expanded.Load()
	res.Pruned = s.pruned.Load()
	res.Deduped = s.deduped.Load()
	res.Improvements = s.improvements.Load()
}

// worker is one parallel search loop. Deadline and state-budget trips
// stop the whole search and are swallowed (the anytime contract:
// return the incumbent); cancellation propagates.
func (s *searcher) worker(ctx context.Context, id int, wlim guard.Limits) error {
	ck := guard.New(ctx, wlim)
	defer ck.Release()
	defer func() { guard.CountersFor("anytime").Record(ck.TakeCounts()) }()
	for {
		if s.stop.Load() {
			return nil
		}
		st := s.pop(id)
		if st == nil {
			if s.pending.Load() == 0 {
				return nil
			}
			// Starved but work is in flight elsewhere: nap briefly, but
			// stay responsive to the deadline.
			select {
			case <-ck.Context().Done():
				return s.trip(guard.Wrap(ck.Context().Err()))
			case <-time.After(100 * time.Microsecond):
			}
			continue
		}
		if err := s.expandTracked(ck, st); err != nil {
			return s.trip(err)
		}
	}
}

// trip classifies a worker abort: cancellation propagates (and still
// stops the siblings), every other trip is the anytime exit.
func (s *searcher) trip(err error) error {
	s.stop.Store(true)
	if errors.Is(err, guard.ErrCanceled) {
		return err
	}
	s.tripped.Store(true)
	return nil
}

// expandTracked wraps expand so pending is decremented even if the
// expansion panics (the sibling workers must not wait forever for a
// state a crashed worker took).
func (s *searcher) expandTracked(ck *guard.Checker, st *state) error {
	defer s.pending.Add(-1)
	return s.expand(ck, st)
}

// expand generates every compute-successor of st, pruning against the
// incumbent bound and the visited table.
func (s *searcher) expand(ck *guard.Checker, st *state) error {
	if err := ck.Tick(); err != nil {
		return err
	}
	if e := s.expanded.Add(1); e&127 == 1 {
		// Periodic incumbent probe: a greedy min-f rollout from this
		// state down to a complete schedule. Best-first alone can plateau
		// on a sea of shallow states whose f still equals the lower bound
		// (no spill cost accrued yet); the dive supplies tight incumbents
		// early, which turns the bound into an actual pruner and is where
		// the anytime tier's time-to-first-improvement comes from.
		s.dive(st)
	}
	if st.f >= cdag.Weight(s.best.Load()) {
		// The incumbent improved since st was pushed.
		s.pruned.Add(1)
		return nil
	}
	n := s.g.Len()
	for v := 0; v < n; v++ {
		id := cdag.NodeID(v)
		if s.isSource[v] || st.done.Has(id) {
			continue
		}
		ready := true
		for _, p := range s.g.Parents(id) {
			if !s.isSource[p] && !st.done.Has(p) {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		child := s.makeChild(st, id)
		if child == nil {
			s.pruned.Add(1)
			continue
		}
		if child.nDone == s.nonSource {
			s.offer(child)
			continue
		}
		child.f = child.cost + s.residual(child)
		if child.f >= cdag.Weight(s.best.Load()) {
			s.pruned.Add(1)
			continue
		}
		h := stateHash(child)
		if !s.visitShard(h).insert(h, child) {
			s.deduped.Add(1)
			continue
		}
		if err := ck.AddStates(1); err != nil {
			return err
		}
		s.pending.Add(1)
		s.push(h, child)
		if s.stop.Load() {
			return nil
		}
	}
	return nil
}

// live reports whether u's value still has a consumer: a child not yet
// computed. Dead values may be dropped (and need never be stored,
// sinks excepted — sinks are stored at compute time).
func (s *searcher) live(u cdag.NodeID, done memstate.Bitset) bool {
	for _, c := range s.g.Children(u) {
		if !done.Has(c) {
			return true
		}
	}
	return false
}

// residual is the state-generalized Proposition 2.4 bound: every live
// computed-or-source value not resident in fast memory must be loaded
// again before its remaining consumers compute (no-recompute subspace:
// reloading is the only way), and every uncomputed sink must still be
// stored. The two sets are disjoint and the costs unavoidable, so
// cost + residual is admissible; at the root it equals
// core.LowerBound.
func (s *searcher) residual(st *state) cdag.Weight {
	var r cdag.Weight
	n := s.g.Len()
	for v := 0; v < n; v++ {
		id := cdag.NodeID(v)
		if s.isSource[v] || st.done.Has(id) {
			if !st.red.Has(id) && s.live(id, st.done) {
				r += s.g.Weight(id)
			}
		} else if s.g.IsSink(id) {
			r += s.g.Weight(id)
		}
	}
	return r
}

// makeChild realizes "compute v next" on top of st: load v's missing
// parents (evicting for room with a store-cost-aware heuristic),
// compute v, store it if it is a sink, and release every value v's
// computation killed. The micro-move order is deterministic, so equal
// (done, red, blue) classes collapse in the visited table. Returns nil
// only if eviction cannot make room, which cannot happen at budgets
// over the existence bound (defensive prune, not an error path).
func (s *searcher) makeChild(st *state, v cdag.NodeID) *state {
	g := s.g
	wv := g.Weight(v)
	parents := g.Parents(v)
	done, red, blue := st.done, st.red, st.blue
	redW, cost := st.redW, st.cost
	moves := make([]core.Move, 0, 2*len(parents)+4)

	pinned := func(u cdag.NodeID) bool {
		if u == v {
			return true
		}
		for _, p := range parents {
			if p == u {
				return true
			}
		}
		return false
	}
	// makeRoom evicts resident values until need more bits fit. Every
	// resident is live (dead values are released eagerly below), so an
	// evicted unstored value must be written back first — the heuristic
	// prefers already-stored values (future reload w only, no store),
	// then frees the most room per eviction.
	makeRoom := func(need cdag.Weight) bool {
		for redW+need > s.budget {
			u := cdag.None
			uStored := false
			red.ForEach(func(c cdag.NodeID) {
				if pinned(c) {
					return
				}
				cStored := blue.Has(c)
				switch {
				case u == cdag.None:
				case cStored != uStored:
					if !cStored {
						return
					}
				case g.Weight(c) < g.Weight(u):
					return
				case g.Weight(c) == g.Weight(u) && c > u:
					return
				}
				u, uStored = c, cStored
			})
			if u == cdag.None {
				return false
			}
			if !uStored {
				moves = append(moves, core.Move{Kind: core.M2, Node: u})
				blue = blue.With(u)
				cost += g.Weight(u)
			}
			moves = append(moves, core.Move{Kind: core.M4, Node: u})
			red = red.Without(u)
			redW -= g.Weight(u)
		}
		return true
	}
	for _, p := range parents {
		if red.Has(p) {
			continue
		}
		// Invariant: a computed-or-source value is red or blue, so a
		// non-red parent is loadable.
		if !makeRoom(g.Weight(p)) {
			return nil
		}
		moves = append(moves, core.Move{Kind: core.M1, Node: p})
		red = red.With(p)
		redW += g.Weight(p)
		cost += g.Weight(p)
	}
	if !makeRoom(wv) {
		return nil
	}
	moves = append(moves, core.Move{Kind: core.M3, Node: v})
	red = red.With(v)
	redW += wv
	done = done.With(v)
	if g.IsSink(v) {
		moves = append(moves, core.Move{Kind: core.M2, Node: v})
		blue = blue.With(v)
		cost += wv
	}
	// Computing v can only kill v's parents (and v itself, when it is a
	// sink); release them so states canonicalize and room frees early.
	// Dead non-sinks are never needed again, dead sinks are already
	// stored: a bare M4 suffices either way.
	for _, p := range parents {
		if red.Has(p) && !s.live(p, done) {
			moves = append(moves, core.Move{Kind: core.M4, Node: p})
			red = red.Without(p)
			redW -= g.Weight(p)
		}
	}
	if !s.live(v, done) {
		moves = append(moves, core.Move{Kind: core.M4, Node: v})
		red = red.Without(v)
		redW -= wv
	}
	return &state{
		parent: st,
		moves:  moves,
		done:   done,
		red:    red,
		blue:   blue,
		redW:   redW,
		cost:   cost,
		nDone:  st.nDone + 1,
	}
}

// dive rolls greedily from st to a complete schedule, at every step
// committing to the ready node whose realization has the smallest
// cost + residual (first in ID order on ties), and offers the result
// as an incumbent. Dive states bypass the frontier and the visited
// table: the rollout is a bound probe, not part of the systematic
// search.
func (s *searcher) dive(st *state) {
	cur := st
	n := s.g.Len()
	for cur.nDone < s.nonSource {
		var best *state
		var bestF cdag.Weight
		for v := 0; v < n; v++ {
			id := cdag.NodeID(v)
			if s.isSource[v] || cur.done.Has(id) {
				continue
			}
			ready := true
			for _, p := range s.g.Parents(id) {
				if !s.isSource[p] && !cur.done.Has(p) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			child := s.makeChild(cur, id)
			if child == nil {
				continue
			}
			f := child.cost + s.residual(child)
			if best == nil || f < bestF {
				best, bestF = child, f
			}
		}
		if best == nil {
			return
		}
		cur = best
	}
	s.offer(cur)
}

// offer installs a complete schedule as the incumbent if it improves
// on it: a CAS loop on the atomic cost bound (so concurrent losers
// back off without a lock), then the schedule swap under the mutex.
// The incumbent only ever improves — the monotone anytime guarantee.
func (s *searcher) offer(st *state) {
	c := st.cost
	for {
		cur := s.best.Load()
		if int64(c) >= cur {
			s.pruned.Add(1)
			return
		}
		if s.best.CompareAndSwap(cur, int64(c)) {
			break
		}
	}
	sched := reconstruct(st)
	s.incMu.Lock()
	if c < s.incCost {
		s.incCost = c
		s.incSched = sched
		s.traj = append(s.traj, Improvement{Cost: c, Elapsed: time.Since(s.start)})
		s.improvements.Add(1)
	}
	s.incMu.Unlock()
	if c <= s.lb {
		// Met the admissible global bound: provably optimal, stop.
		s.optimalHit.Store(true)
		s.stop.Store(true)
	} else if s.target > 0 && c <= s.target {
		s.targetHit.Store(true)
		s.stop.Store(true)
	}
}

// reconstruct concatenates the micro-move segments from the root to
// st into one schedule.
func reconstruct(st *state) core.Schedule {
	total := 0
	for x := st; x != nil; x = x.parent {
		total += len(x.moves)
	}
	out := make(core.Schedule, total)
	i := total
	for x := st; x != nil; x = x.parent {
		i -= len(x.moves)
		copy(out[i:], x.moves)
	}
	return out
}

// stateHash chains the three packed set hashes into the key the
// visited table and the frontier sharding share.
func stateHash(st *state) uint64 {
	h := st.blue.Hash(0x9E3779B97F4A7C15)
	h = st.red.Hash(h)
	return st.done.Hash(h)
}
