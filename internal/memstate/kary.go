package memstate

import (
	"fmt"

	"wrbpg/internal/cdag"
)

// KScheduler generalizes the Pm recursion of Eq. 8 from the paper's
// "for simplicity, we will take the case where k = 2" to arbitrary
// in-degrees up to ktree.MaxK: for every parent permutation σ and
// keep/spill vector δ, the parent computed at position i sees the
// budget reduced by the still-resident initial states of the parents
// computed after it and by the reuse states (plus kept red pebbles)
// of the parents computed before it — the direct product of Eq. 6's
// strategy enumeration with Eq. 8's state threading.
type KScheduler struct {
	g    *cdag.Graph
	memo map[string]cdag.Weight
}

// maxK mirrors ktree.MaxK without importing it (memstate must stay
// import-light); 2^k·k! growth makes anything larger impractical
// anyway.
const maxK = 8

// NewKScheduler wraps an in-tree with in-degree at most maxK.
func NewKScheduler(g *cdag.Graph) (*KScheduler, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsTree() {
		return nil, fmt.Errorf("memstate: graph is not an in-tree")
	}
	if k := g.MaxInDegree(); k > maxK {
		return nil, fmt.Errorf("memstate: in-degree %d exceeds %d", k, maxK)
	}
	return &KScheduler{g: g, memo: map[string]cdag.Weight{}}, nil
}

// Cost returns the k-ary Pm(v, b, I_v, R_v).
func (s *KScheduler) Cost(v cdag.NodeID, b cdag.Weight, initial, reuse NodeSet) cdag.Weight {
	return s.pmk(v, b, restrict(s.g, initial, v), restrict(s.g, reuse, v))
}

// PlainCost is Cost with empty states; it coincides with the k-ary
// tree DP Pt.
func (s *KScheduler) PlainCost(v cdag.NodeID, b cdag.Weight) cdag.Weight {
	return s.Cost(v, b, nil, nil)
}

func (s *KScheduler) pmk(v cdag.NodeID, b cdag.Weight, ini, reuse NodeSet) cdag.Weight {
	key := fmt.Sprintf("%d|%d|%s|%s", v, b, ini.key(), reuse.key())
	if c, ok := s.memo[key]; ok {
		return c
	}
	g := s.g
	// Guard: v, its parents and its reuse set must co-reside.
	guardSet := NodeSet{v: true}
	for r := range reuse {
		guardSet[r] = true
	}
	for _, p := range g.Parents(v) {
		guardSet[p] = true
	}
	var cost cdag.Weight
	switch {
	case guardSet.Weight(g) > b:
		cost = Inf
	case ini[v]:
		cost = 0
		for r := range reuse {
			if !ini[r] {
				cost += g.Weight(r)
			}
		}
	case g.InDegree(v) == 0:
		cost = g.Weight(v)
	default:
		parents := g.Parents(v)
		k := len(parents)
		// Per-parent restricted states and their weights.
		iniP := make([]NodeSet, k)
		reuseP := make([]NodeSet, k)
		iniW := make([]cdag.Weight, k)
		reuseW := make([]cdag.Weight, k)
		for i, p := range parents {
			iniP[i] = restrict(g, ini, p)
			reuseP[i] = restrict(g, reuse, p)
			iniW[i] = iniP[i].Weight(g)
			reuseW[i] = reuseP[i].Weight(g)
		}
		best := Inf
		perm := make([]int, k)
		for i := range perm {
			perm[i] = i
		}
		var rec func(n int)
		eval := func(order []int) {
			for delta := 0; delta < 1<<uint(k); delta++ {
				var total, heldBefore cdag.Weight
				// Initial states of parents not yet computed occupy
				// memory during earlier parents' phases.
				var pendingIni cdag.Weight
				for _, oi := range order {
					pendingIni += iniW[oi]
				}
				bad := false
				for i := 0; i < k; i++ {
					oi := order[i]
					pendingIni -= iniW[oi] // its own subtree is being computed now
					sub := s.pmk(parents[oi], b-pendingIni-heldBefore, iniP[oi], reuseP[oi])
					if sub >= Inf {
						bad = true
						break
					}
					total += sub
					heldBefore += reuseW[oi]
					if delta&(1<<uint(i)) != 0 {
						// Eq. 8 holds R_p ∪ {p}: no double count when
						// the parent is itself a reuse node.
						if !reuseP[oi][parents[oi]] {
							heldBefore += g.Weight(parents[oi])
						}
					} else {
						total += 2 * g.Weight(parents[oi])
					}
				}
				if !bad && total < best {
					best = total
				}
			}
		}
		rec = func(n int) {
			if n == 1 {
				eval(perm)
				return
			}
			for i := 0; i < n; i++ {
				rec(n - 1)
				if n%2 == 0 {
					perm[i], perm[n-1] = perm[n-1], perm[i]
				} else {
					perm[0], perm[n-1] = perm[n-1], perm[0]
				}
			}
		}
		rec(k)
		cost = best
	}
	s.memo[key] = cost
	return cost
}
