package memstate

import (
	"context"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/perm"
)

// KScheduler generalizes the Pm recursion of Eq. 8 from the paper's
// "for simplicity, we will take the case where k = 2" to arbitrary
// in-degrees up to ktree.MaxK: for every parent permutation σ and
// keep/spill vector δ, the parent computed at position i sees the
// budget reduced by the still-resident initial states of the parents
// computed after it and by the reuse states (plus kept red pebbles)
// of the parents computed before it — the direct product of Eq. 6's
// strategy enumeration with Eq. 8's state threading.
//
// The permutation tables are shared process-wide (package perm) and
// the memo is keyed by packed comparable structs, so evaluating a
// cached cell performs zero allocations.
type KScheduler struct {
	g    *cdag.Graph
	memo pmTable
	ix   *setIndex
	anc  []Bitset
	gs   genState
	// ck, when non-nil, is the active cancellation/budget guard of a
	// CostCtx call; see Scheduler.ck.
	ck *guard.Checker
}

// maxK mirrors ktree.MaxK (= perm.MaxK); 2^k·k! growth makes anything
// larger impractical anyway.
const maxK = perm.MaxK

// NewKScheduler wraps an in-tree with in-degree at most maxK.
func NewKScheduler(g *cdag.Graph) (*KScheduler, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsTree() {
		return nil, fmt.Errorf("memstate: graph is not an in-tree")
	}
	if k := g.MaxInDegree(); k > maxK {
		return nil, fmt.Errorf("memstate: in-degree %d exceeds %d", k, maxK)
	}
	// Warm the shared permutation tables for every arity the tree
	// uses, so DP cells never pay the sync.Once fence on first touch.
	for v := 0; v < g.Len(); v++ {
		if k := g.InDegree(cdag.NodeID(v)); k > 0 {
			perm.Table(k)
		}
	}
	return &KScheduler{
		g:   g,
		ix:  newSetIndex(g.Len()),
		anc: ancestorMasks(g),
		gs:  newGenState(g.Len()),
	}, nil
}

// SetWeights applies weight deltas to the tree and invalidates (via
// generation stamps) exactly the memo cells whose subtree contains a
// changed node; see genState. The graph is reverted unchanged on any
// error. It returns the number of intervals invalidated and the
// number surviving.
func (s *KScheduler) SetWeights(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	return s.gs.setWeights(s.g, ds)
}

// Restrict returns X_u = X ∩ (pred(u) ∪ {u}).
func (s *KScheduler) Restrict(x Bitset, u cdag.NodeID) Bitset {
	return x.and(s.anc[u])
}

// Cost returns the k-ary Pm(v, b, I_v, R_v).
func (s *KScheduler) Cost(v cdag.NodeID, b cdag.Weight, initial, reuse Bitset) cdag.Weight {
	c, _, _ := s.pmk(v, b, s.Restrict(initial, v), s.Restrict(reuse, v))
	return c
}

// CostCtx is Cost under a cancellation context and resource limits,
// with the same abort semantics as Scheduler.CostCtx.
func (s *KScheduler) CostCtx(ctx context.Context, lim guard.Limits, v cdag.NodeID, b cdag.Weight, initial, reuse Bitset) (cdag.Weight, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	s.ck = ck
	defer func() { s.ck = nil }()
	c := s.Cost(v, b, initial, reuse)
	if err := ck.Err(); err != nil {
		return 0, fmt.Errorf("memstate: %w", err)
	}
	return c, nil
}

// PlainCost is Cost with empty states; it coincides with the k-ary
// tree DP Pt.
func (s *KScheduler) PlainCost(v cdag.NodeID, b cdag.Weight) cdag.Weight {
	return s.Cost(v, b, Bitset{}, Bitset{})
}

// pmk holds only the memo probe so warm hits run in a tiny frame; the
// enumeration lives in pmkCold with its large stack arrays. Like
// Scheduler.pm it returns the value together with the budget interval
// [lo, hi] ∋ b on which it is valid.
func (s *KScheduler) pmk(v cdag.NodeID, b cdag.Weight, ini, reuse Bitset) (cdag.Weight, cdag.Weight, cdag.Weight) {
	key := pmKey{v: v, ini: s.ix.handle(ini), reuse: s.ix.handle(reuse)}
	if c, lo, hi, ok := s.memo.get(key, s.gs.gens[v], b); ok {
		s.ck.NoteHit()
		return c, lo, hi
	}
	return s.pmkCold(key, v, b, ini, reuse)
}

func (s *KScheduler) pmkCold(key pmKey, v cdag.NodeID, b cdag.Weight, ini, reuse Bitset) (cdag.Weight, cdag.Weight, cdag.Weight) {
	// Cancellation checkpoint on the cold path only: warm hits never
	// reach this function. The tripped return carries an empty-width
	// interval so enclosing cells cannot widen around a poisoned value.
	if s.ck != nil && s.ck.Tick() != nil {
		return Inf, b, b
	}
	g := s.g
	// Guard: v, its parents and its reuse set must co-reside.
	guard := reuse.Weight(g)
	cover := reuse
	if !cover.Has(v) {
		guard += g.Weight(v)
		cover = cover.With(v)
	}
	for _, p := range g.Parents(v) {
		if !cover.Has(p) {
			guard += g.Weight(p)
			cover = cover.With(p)
		}
	}
	var cost cdag.Weight
	lo, hi := guard, cdag.Weight(budgetMax)
	switch {
	case guard > b:
		cost, lo, hi = Inf, budgetMin, guard-1
	case ini.Has(v):
		cost = 0
		reuse.ForEach(func(r cdag.NodeID) {
			if !ini.Has(r) {
				cost += g.Weight(r)
			}
		})
	case g.InDegree(v) == 0:
		cost = g.Weight(v)
	default:
		parents := g.Parents(v)
		k := len(parents)
		// Per-parent restricted states and their weights, in fixed
		// stack arrays so the enumeration allocates nothing beyond the
		// recursive subproblems themselves.
		var iniP, reuseP [maxK]Bitset
		var iniW, reuseW [maxK]cdag.Weight
		var allIniW cdag.Weight
		for i, p := range parents {
			iniP[i] = s.Restrict(ini, p)
			reuseP[i] = s.Restrict(reuse, p)
			iniW[i] = iniP[i].Weight(g)
			reuseW[i] = reuseP[i].Weight(g)
			allIniW += iniW[i]
		}
		best := Inf
		for _, order := range perm.Table(k) {
			for delta := 0; delta < 1<<uint(k); delta++ {
				var total, heldBefore cdag.Weight
				// Initial states of parents not yet computed occupy
				// memory during earlier parents' phases.
				pendingIni := allIniW
				bad := false
				for i := 0; i < k; i++ {
					oi := order[i]
					pendingIni -= iniW[oi] // its own subtree is being computed now
					shift := pendingIni + heldBefore
					sub, slo, shi := s.pmk(parents[oi], b-shift, iniP[oi], reuseP[oi])
					// Intersect the sub-call's validity interval
					// (shifted back to this cell's budget axis) before
					// acting on its value: the enumeration's outcome —
					// including this break — is constant only where
					// every consulted sub-value is.
					if nlo := slo + shift; nlo > lo {
						lo = nlo
					}
					if nhi := shi + shift; nhi < hi {
						hi = nhi
					}
					if sub >= Inf {
						bad = true
						break
					}
					total += sub
					heldBefore += reuseW[oi]
					if delta&(1<<uint(i)) != 0 {
						// Eq. 8 holds R_p ∪ {p}: no double count when
						// the parent is itself a reuse node.
						if !reuseP[oi].Has(parents[oi]) {
							heldBefore += g.Weight(parents[oi])
						}
					} else {
						total += 2 * g.Weight(parents[oi])
					}
				}
				if !bad && total < best {
					best = total
				}
			}
		}
		cost = best
	}
	// Never memoize after a trip: children returned poisoned Inf costs
	// that must not survive into later solves.
	if s.ck == nil || (s.ck.Err() == nil && s.ck.AddMemo(1) == nil) {
		stored, clipped := s.memo.put(key, s.gs.gens[v], pmIval{lo: lo, hi: hi, cost: cost})
		if stored {
			s.gs.noteStore(v)
		}
		if clipped {
			s.ck.NoteSplit()
		}
	}
	return cost, lo, hi
}
