package memstate

import (
	"math/rand"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/ktree"
)

// TestSetWeightsMatchesColdScheduler is the incremental-determinism
// property for the state-threaded DP: a Scheduler patched through a
// shuffled random delta sequence must answer Pm(root, b, I, R)
// bit-identically to a cold scheduler at the same weights, across
// random initial/reuse states — the generation stamps must never
// serve a stale interval.
func TestSetWeightsMatchesColdScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr, err := ktree.FullTree(2, 4, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%2) })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.G.Len()
	all := tr.G.TopoOrder()
	for round := 0; round < 25; round++ {
		ds := make([]cdag.WeightDelta, 1+rng.Intn(3))
		for i := range ds {
			ds[i] = cdag.WeightDelta{
				Node:   cdag.NodeID(rng.Intn(n)),
				Weight: 1 + cdag.Weight(rng.Intn(3)),
			}
		}
		if _, _, err := s.SetWeights(ds); err != nil {
			t.Fatalf("round %d: SetWeights(%v): %v", round, ds, err)
		}
		// Random states restricted to the root's subtree (the whole
		// tree) — a couple of reuse nodes, sometimes an initial one.
		ini, reuse := Bitset{}, Bitset{}
		if rng.Intn(2) == 0 {
			ini = ini.With(all[rng.Intn(len(all))])
		}
		for i := 0; i < rng.Intn(3); i++ {
			reuse = reuse.With(all[rng.Intn(len(all))])
		}
		cold, err := NewScheduler(cloneTree(t, tr, 2, 4))
		if err != nil {
			t.Fatal(err)
		}
		min := core.MinExistenceBudget(tr.G)
		for _, b := range []cdag.Weight{min - 1, min + 1, min + 4, min + 9} {
			warm := s.Cost(tr.Root, b, ini, reuse)
			if c := cold.Cost(tr.Root, b, ini, reuse); warm != c {
				t.Fatalf("round %d budget %d: warm %d != cold %d after %v", round, b, warm, c, ds)
			}
		}
	}
}

// TestKSetWeightsMatchesColdScheduler runs the same property through
// the k-ary generalization (KScheduler) on a 3-ary tree.
func TestKSetWeightsMatchesColdScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr, err := ktree.FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewKScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.G.Len()
	reuse := NewBitset(tr.G.Sources()[0])
	for round := 0; round < 20; round++ {
		ds := make([]cdag.WeightDelta, 1+rng.Intn(3))
		for i := range ds {
			ds[i] = cdag.WeightDelta{
				Node:   cdag.NodeID(rng.Intn(n)),
				Weight: 1 + cdag.Weight(rng.Intn(3)),
			}
		}
		if _, _, err := s.SetWeights(ds); err != nil {
			t.Fatalf("round %d: SetWeights(%v): %v", round, ds, err)
		}
		cold, err := NewKScheduler(cloneTree(t, tr, 3, 3))
		if err != nil {
			t.Fatal(err)
		}
		min := core.MinExistenceBudget(tr.G)
		for _, b := range []cdag.Weight{min - 1, min + 2, min + 6} {
			warm := s.Cost(tr.Root, b, Bitset{}, reuse)
			if c := cold.Cost(tr.Root, b, Bitset{}, reuse); warm != c {
				t.Fatalf("round %d budget %d: warm %d != cold %d after %v", round, b, warm, c, ds)
			}
		}
	}
}

// cloneTree rebuilds tr's graph at its current weights (FullTree
// numbering is deterministic, so node IDs coincide).
func cloneTree(t *testing.T, tr *ktree.Tree, k, height int) *cdag.Graph {
	t.Helper()
	tr2, err := ktree.FullTree(k, height, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.G.Len(); v++ {
		if err := tr2.G.TrySetWeight(cdag.NodeID(v), tr.G.Weight(cdag.NodeID(v))); err != nil {
			t.Fatal(err)
		}
	}
	return tr2.G
}

// TestSetWeightsRevertsOnError: a failing delta list leaves the graph
// and every generation stamp untouched, so prior answers still serve.
func TestSetWeightsRevertsOnError(t *testing.T) {
	tr, err := ktree.FullTree(2, 3, func(d, i int) cdag.Weight { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	b := core.MinExistenceBudget(tr.G) + 3
	want := s.PlainCost(tr.Root, b)
	gens := append([]uint32(nil), s.gs.gens...)
	for _, bad := range [][]cdag.WeightDelta{
		{{Node: 0, Weight: 0}},
		{{Node: -1, Weight: 1}},
		{{Node: 0, Weight: 3}, {Node: cdag.NodeID(tr.G.Len()), Weight: 1}},
	} {
		if _, _, err := s.SetWeights(bad); err == nil {
			t.Fatalf("SetWeights(%v): want error", bad)
		}
		for v, g := range gens {
			if s.gs.gens[v] != g {
				t.Fatalf("after failed %v: node %d generation bumped", bad, v)
			}
		}
		if got := s.PlainCost(tr.Root, b); got != want {
			t.Fatalf("after failed %v: PlainCost %d, want %d", bad, got, want)
		}
	}
}
