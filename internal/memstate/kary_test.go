package memstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/ktree"
)

func TestKSchedulerRejectsBadGraphs(t *testing.T) {
	g := &cdag.Graph{}
	a := g.AddNode(1, "a")
	b := g.AddNode(1, "b", a)
	c := g.AddNode(1, "c", a)
	g.AddNode(1, "d", b, c)
	if _, err := NewKScheduler(g); err == nil {
		t.Error("diamond accepted")
	}
}

// TestKaryMatchesBinaryPm: on binary trees the k-ary generalization
// reproduces the Eq. 8 implementation exactly, states included.
func TestKaryMatchesBinaryPm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := func(depth, index int) cdag.Weight { return 1 + cdag.Weight(rng.Intn(3)) }
		tr, err := ktree.FullTree(2, 1+rng.Intn(3), wf)
		if err != nil {
			return false
		}
		bin, err := NewScheduler(tr.G)
		if err != nil {
			return false
		}
		kar, err := NewKScheduler(tr.G)
		if err != nil {
			return false
		}
		all := tr.G.TopoOrder()
		ini := Bitset{}
		reuse := Bitset{}
		if rng.Intn(2) == 0 {
			ini = ini.With(all[rng.Intn(len(all))])
		}
		if rng.Intn(2) == 0 {
			reuse = reuse.With(all[rng.Intn(len(all))])
		}
		b := core.MinExistenceBudget(tr.G) + cdag.Weight(rng.Intn(8))
		pb := bin.Cost(tr.Root, b, ini, reuse)
		pk := kar.Cost(tr.Root, b, ini, reuse)
		if pb != pk {
			t.Logf("seed %d b=%d: binary %d vs k-ary %d (I=%s R=%s)",
				seed, b, pb, pk, Describe(tr.G, ini), Describe(tr.G, reuse))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKaryPlainMatchesKtree: with empty states the k-ary Pm equals Pt
// for ternary and quaternary trees too.
func TestKaryPlainMatchesKtree(t *testing.T) {
	for _, k := range []int{3, 4} {
		tr, err := ktree.FullTree(k, 1, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
		if err != nil {
			t.Fatal(err)
		}
		ks := ktree.NewScheduler(tr)
		ms, err := NewKScheduler(tr.G)
		if err != nil {
			t.Fatal(err)
		}
		minB := core.MinExistenceBudget(tr.G)
		for b := minB; b <= minB+5; b++ {
			want := ks.MinCost(b) - tr.G.Weight(tr.Root)
			if got := ms.PlainCost(tr.Root, b); got != want {
				t.Errorf("k=%d b=%d: Pm %d != Pt %d", k, b, got, want)
			}
		}
	}
}

// TestKaryInitialParents: a ternary root with all parents resident
// costs nothing.
func TestKaryInitialParents(t *testing.T) {
	tr, err := ktree.FullTree(3, 1, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewKScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	ps := tr.G.Parents(tr.Root)
	ini := NewBitset(ps...)
	if got := ms.Cost(tr.Root, 10, ini, Bitset{}); got != 0 {
		t.Errorf("cost = %d, want 0", got)
	}
	// Two of three resident: one leaf load.
	ini2 := NewBitset(ps[0], ps[1])
	if got := ms.Cost(tr.Root, 10, ini2, Bitset{}); got != 1 {
		t.Errorf("cost = %d, want 1", got)
	}
}

// TestKaryReuseGuard: demanding co-residency of a distant node
// tightens feasibility, as in the binary case.
func TestKaryReuseGuard(t *testing.T) {
	tr, err := ktree.FullTree(3, 2, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewKScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.G.Sources()[0]
	minB := core.MinExistenceBudget(tr.G) // root + 3 parents = 4
	if got := ms.Cost(tr.Root, minB, Bitset{}, Bitset{}); got >= Inf {
		t.Fatalf("plain cost should be feasible at %d", minB)
	}
	if got := ms.Cost(tr.Root, minB, Bitset{}, NewBitset(leaf)); got < Inf {
		t.Error("distant reuse at the existence bound should be infeasible")
	}
	if got := ms.Cost(tr.Root, minB+1, Bitset{}, NewBitset(leaf)); got >= Inf {
		t.Error("one extra unit should restore feasibility")
	}
}

// TestKaryMonotone: k-ary Pm never increases with budget.
func TestKaryMonotone(t *testing.T) {
	tr, err := ktree.FullTree(3, 2, func(d, i int) cdag.Weight { return 1 + cdag.Weight(d%2) })
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewKScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.G.Sources()[1]
	minB := core.MinExistenceBudget(tr.G)
	prev := ms.Cost(tr.Root, minB, Bitset{}, NewBitset(leaf))
	for b := minB + 1; b <= minB+12; b++ {
		cur := ms.Cost(tr.Root, b, Bitset{}, NewBitset(leaf))
		if cur > prev {
			t.Fatalf("not monotone at %d: %d > %d", b, cur, prev)
		}
		prev = cur
	}
}
