package memstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/ktree"
)

func TestBitsetNarrowOps(t *testing.T) {
	s := NewBitset(0, 3, 63)
	if !s.Has(0) || !s.Has(3) || !s.Has(63) || s.Has(1) || s.Has(64) {
		t.Errorf("membership wrong: %v", s.Sorted())
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	s2 := s.With(5)
	if s.Has(5) {
		t.Error("With mutated the receiver")
	}
	if !s2.Has(5) || s2.Count() != 4 {
		t.Error("With missed")
	}
	if !(Bitset{}).Empty() || s.Empty() {
		t.Error("Empty wrong")
	}
	// With is idempotent.
	if s3 := s.With(3); s3.Count() != 3 {
		t.Error("duplicate With changed count")
	}
}

func TestBitsetWideOps(t *testing.T) {
	s := NewBitset(1, 64, 130, 200)
	for _, v := range []cdag.NodeID{1, 64, 130, 200} {
		if !s.Has(v) {
			t.Errorf("missing %d", v)
		}
	}
	if s.Has(65) || s.Has(199) {
		t.Error("spurious member")
	}
	ids := s.Sorted()
	want := []cdag.NodeID{1, 64, 130, 200}
	if len(ids) != len(want) {
		t.Fatalf("Sorted = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Sorted = %v", ids)
		}
	}
	// and/or across the inline/ext boundary, including trailing-word
	// normalization: and-ing away all high bits must compare equal to
	// an inline-only set under the intern index.
	a := NewBitset(1, 64)
	b := NewBitset(1, 2)
	got := a.and(b)
	if got.Count() != 1 || !got.Has(1) {
		t.Errorf("and = %v", got.Sorted())
	}
	ix := newSetIndex(256)
	if ix.handle(got) != ix.handle(NewBitset(1)) {
		t.Error("normalized wide-and does not intern equal to its narrow twin")
	}
	u := a.or(b)
	for _, v := range []cdag.NodeID{1, 2, 64} {
		if !u.Has(v) {
			t.Errorf("or missing %d", v)
		}
	}
}

func TestSetIndexHandles(t *testing.T) {
	// Narrow graphs: the handle is the word itself — distinct sets get
	// distinct handles with no interning.
	ix := newSetIndex(10)
	if ix.wide {
		t.Fatal("10-node index should be narrow")
	}
	if ix.handle(NewBitset(1, 3)) == ix.handle(NewBitset(1, 2)) {
		t.Error("narrow handles collide")
	}
	// Wide: same set → same handle, different set → different handle.
	wx := newSetIndex(100)
	if !wx.wide {
		t.Fatal("100-node index should be wide")
	}
	h1 := wx.handle(NewBitset(1, 70))
	h2 := wx.handle(NewBitset(1, 70))
	h3 := wx.handle(NewBitset(1, 71))
	if h1 != h2 || h1 == h3 {
		t.Errorf("wide handles: %d %d %d", h1, h2, h3)
	}
}

// TestCostMemoHitZeroAlloc: once a (v,b,I,R) tuple is memoized,
// re-querying it performs no allocations — the packed pmKey and the
// inline-word handles keep the hot path off the heap.
func TestCostMemoHitZeroAlloc(t *testing.T) {
	tr, err := ktree.FullTree(2, 4, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%3) })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.G.Sources()[0]
	reuse := NewBitset(leaf)
	b := core.MinExistenceBudget(tr.G) + 4
	want := s.Cost(tr.Root, b, Bitset{}, reuse) // warm the memo
	if n := testing.AllocsPerRun(100, func() {
		if got := s.Cost(tr.Root, b, Bitset{}, reuse); got != want {
			t.Fatalf("cost changed: %d != %d", got, want)
		}
	}); n != 0 {
		t.Errorf("memo-hit Cost allocates %v times per run, want 0", n)
	}
}

// TestKCostMemoHitZeroAlloc: same contract for the k-ary scheduler,
// whose per-call permutation/delta state lives in stack arrays.
func TestKCostMemoHitZeroAlloc(t *testing.T) {
	tr, err := ktree.FullTree(3, 2, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewKScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.G.Sources()[0]
	reuse := NewBitset(leaf)
	b := core.MinExistenceBudget(tr.G) + 3
	want := s.Cost(tr.Root, b, Bitset{}, reuse)
	if n := testing.AllocsPerRun(100, func() {
		if got := s.Cost(tr.Root, b, Bitset{}, reuse); got != want {
			t.Fatalf("cost changed: %d != %d", got, want)
		}
	}); n != 0 {
		t.Errorf("memo-hit k-ary Cost allocates %v times per run, want 0", n)
	}
}

// TestPmMatchesExactOptimum: on random small trees the bitset-keyed
// DP is cross-checked against the exact Dijkstra optimum. The DP cost
// is achievable, so it can never undercut the exact solver, and the
// two agree exactly once the budget holds the whole tree. Under tight
// budgets the exact solver may be strictly cheaper: Pm evaluates
// subtrees contiguously, while the full schedule space also contains
// interleavings that pause one subtree to hold a grandchild red (see
// the ktree optimality test for a 10-node counterexample). The exact
// cost includes the final store of the root, which PlainCost
// excludes, so the comparison adds w_root.
func TestPmMatchesExactOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := ktree.Random(rng, 1+rng.Intn(3), 2, 3)
		if err != nil || tr.G.Len() > exact.MaxNodes {
			return true // skip shapes the exact solver cannot take
		}
		s, err := NewKScheduler(tr.G)
		if err != nil {
			return true // e.g. in-degree beyond the k-ary bound
		}
		b := core.MinExistenceBudget(tr.G) + cdag.Weight(rng.Intn(5))
		res, err := exact.Solve(tr.G, b)
		if err != nil {
			return true
		}
		got := s.PlainCost(tr.Root, b) + tr.G.Weight(tr.Root)
		if got < res.Cost {
			t.Logf("seed %d (n=%d, b=%d): DP %d below exact %d", seed, tr.G.Len(), b, got, res.Cost)
			return false
		}
		if b >= tr.G.TotalWeight() && got != res.Cost {
			t.Logf("seed %d (n=%d, b=%d ≥ total): DP %d != exact %d", seed, tr.G.Len(), b, got, res.Cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedulerCostWarm(b *testing.B) {
	tr, err := ktree.FullTree(2, 6, func(d, i int) cdag.Weight { return 1 + cdag.Weight((d+i)%3) })
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		b.Fatal(err)
	}
	reuse := NewBitset(tr.G.Sources()[0])
	budget := core.MinExistenceBudget(tr.G) + 4
	s.Cost(tr.Root, budget, Bitset{}, reuse)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cost(tr.Root, budget, Bitset{}, reuse)
	}
}

func BenchmarkKSchedulerCostCold(b *testing.B) {
	tr, err := ktree.FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
	if err != nil {
		b.Fatal(err)
	}
	budget := core.MinExistenceBudget(tr.G) + 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewKScheduler(tr.G)
		if err != nil {
			b.Fatal(err)
		}
		s.PlainCost(tr.Root, budget)
	}
}
