package memstate

import (
	"context"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
)

// Session answers repeated budget queries Pm(v, b, I, R) against one
// warm KScheduler, with the query node and the initial/reuse memory
// states pinned at construction so the budget is the only axis — the
// shape budget sweeps and the serving layer need. The pmTable memo
// shares all sub-budget cells across queries, so a sweep over k
// budgets costs roughly one cold solve at the largest budget.
//
// No-poison semantics carry over from the scheduler: an aborted query
// never memoizes partial results, so the session stays reusable. A
// Session is not safe for concurrent use.
type Session struct {
	s          *KScheduler
	v          cdag.NodeID
	ini, reuse Bitset
	ck         guard.Checker
}

// NewSession wraps an in-tree (in-degree ≤ ktree.MaxK) with the query
// node and memory states fixed. Pass the tree root and empty bitsets
// for plain Pt-equivalent sweeps.
func NewSession(g *cdag.Graph, v cdag.NodeID, initial, reuse Bitset) (*Session, error) {
	s, err := NewKScheduler(g)
	if err != nil {
		return nil, err
	}
	if int(v) < 0 || int(v) >= g.Len() {
		return nil, fmt.Errorf("memstate: query node %d out of range [0,%d)", v, g.Len())
	}
	return &Session{s: s, v: v, ini: initial, reuse: reuse}, nil
}

// KScheduler returns the warm scheduler, for plain (unguarded) queries
// or queries at other nodes/states.
func (se *Session) KScheduler() *KScheduler { return se.s }

// Node returns the pinned query node.
func (se *Session) Node() cdag.NodeID { return se.v }

// TakeCounts returns and resets the session's cumulative solver
// observation counters (memo hits, entries, splits) for metric export.
func (se *Session) TakeCounts() guard.Counts { return se.ck.TakeCounts() }

// Patch applies weight deltas to the underlying tree, invalidating
// only the memo cells whose subtree contains a changed node (via the
// generation stamps of KScheduler.SetWeights); everything else stays
// warm, so the next query re-solves just the dirtied root chain. On
// error the tree and memo are unchanged. The invalidated/reused counts
// feed the session's observation counters (wrbpg_solver_cells_* after
// the next flush) and are also returned.
func (se *Session) Patch(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	invalidated, reused, err = se.s.SetWeights(ds)
	if err != nil {
		return 0, 0, err
	}
	se.ck.NoteInvalidation(invalidated, reused)
	return invalidated, reused, nil
}

// CostCtx returns Pm(v, b, I, R) for the pinned node and states under
// the session's warm memo (Inf when infeasible). The error is non-nil
// only when the query was aborted; resource limits in lim are per
// query, not cumulative.
func (se *Session) CostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	se.ck.Reset(ctx, lim)
	defer func() {
		se.s.ck = nil
		se.ck.Release()
	}()
	se.s.ck = &se.ck
	c := se.s.Cost(se.v, b, se.ini, se.reuse)
	if err := se.ck.Err(); err != nil {
		return 0, fmt.Errorf("memstate: %w", err)
	}
	return c, nil
}
