package memstate

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// This file turns the Pm cost recursion into executable move
// fragments. A fragment starts from a state where the initial-state
// nodes I hold red pebbles (fast-memory-resident, not backed in slow
// memory), all other sources hold blue pebbles, and everything else
// is empty; it ends with the target node red, every reuse node R red,
// and no other red pebbles in the target's subtree.
//
// The generator can beat Pm by one node weight per spilled source:
// a source already holds a blue pebble, so its "spill" needs no M2.
// Fragments therefore satisfy cost ≤ Pm (never worse), which the
// package tests assert, alongside full rule-validation via
// core.SimulateFrom.

type choice int8

const (
	choiceNone choice = iota
	choiceKeep1
	choiceKeep2
	choiceSpill1
	choiceSpill2
)

// choices mirrors the memo of pm; it is filled lazily by pmChoice.
func (s *Scheduler) pmChoice(v cdag.NodeID, b cdag.Weight, ini, reuse Bitset) choice {
	g := s.g
	if ini.Has(v) || g.InDegree(v) == 0 {
		return choiceNone
	}
	ps := g.Parents(v)
	p1, p2 := ps[0], ps[1]
	i1, i2 := s.Restrict(ini, p1), s.Restrict(ini, p2)
	r1, r2 := s.Restrict(reuse, p1), s.Restrict(reuse, p2)
	w1, w2 := g.Weight(p1), g.Weight(p2)
	add := func(xs ...cdag.Weight) cdag.Weight {
		var t cdag.Weight
		for _, x := range xs {
			if x >= Inf {
				return Inf
			}
			t += x
		}
		return t
	}
	unionW := func(x Bitset, p cdag.NodeID) cdag.Weight {
		w := x.Weight(g)
		if !x.Has(p) {
			w += g.Weight(p)
		}
		return w
	}
	pm := func(p cdag.NodeID, pb cdag.Weight, pi, pr Bitset) cdag.Weight {
		c, _, _ := s.pm(p, pb, pi, pr)
		return c
	}
	keep1 := add(pm(p1, b-i2.Weight(g), i1, r1), pm(p2, b-unionW(r1, p1), i2, r2))
	keep2 := add(pm(p2, b-i1.Weight(g), i2, r2), pm(p1, b-unionW(r2, p2), i1, r1))
	spill1 := add(pm(p1, b-i2.Weight(g), i1, r1), pm(p2, b-r1.Weight(g), i2, r2), 2*w1)
	spill2 := add(pm(p2, b-i1.Weight(g), i2, r2), pm(p1, b-r2.Weight(g), i1, r1), 2*w2)

	best, c := keep1, choiceKeep1
	if keep2 < best {
		best, c = keep2, choiceKeep2
	}
	if spill1 < best {
		best, c = spill1, choiceSpill1
	}
	if spill2 < best {
		best, c = spill2, choiceSpill2
	}
	_ = best
	return c
}

// StartLabels returns the label vector of a fragment's starting
// state: initial-state nodes red (fast-memory-only); sources blue
// (the game's starting condition); and reuse nodes outside the
// initial state blue as well — Section 4.1's assumption that reuse
// values "have blue pebbles on them and do not need to be
// recomputed".
func (s *Scheduler) StartLabels(ini, reuse Bitset) []core.Label {
	labels := make([]core.Label, s.g.Len())
	for _, v := range s.g.Sources() {
		labels[v] = core.LabelBlue
	}
	reuse.ForEach(func(v cdag.NodeID) {
		if !ini.Has(v) {
			labels[v] = core.LabelBlue
		}
	})
	ini.ForEach(func(v cdag.NodeID) {
		labels[v] = core.LabelRed
	})
	return labels
}

// Schedule generates a fragment realizing Pm(v, b, I_v, R_v): it
// computes v (unless v ∈ I) while honouring the initial and reuse
// memory states. Replay it with core.SimulateFrom from a state built
// with StartLabels.
func (s *Scheduler) Schedule(v cdag.NodeID, b cdag.Weight, initial, reuse Bitset) (core.Schedule, error) {
	ini := s.Restrict(initial, v)
	r := s.Restrict(reuse, v)
	if c, _, _ := s.pm(v, b, ini, r); c >= Inf {
		return nil, fmt.Errorf("memstate: Pm(%d, %d, %s, %s) is infeasible",
			v, b, Describe(s.g, ini), Describe(s.g, r))
	}
	var out core.Schedule
	// Initial-state nodes shadowed by another initial-state node on
	// their path to v are never visited by the recursion; they would
	// sit in fast memory unaccounted by Eq. 8's budget adjustments,
	// so the fragment frees them first (they are not part of the
	// post-state contract unless they are reuse nodes).
	for _, m := range ini.Sorted() {
		if r.Has(m) {
			continue
		}
		if s.shadowed(m, v, ini) {
			out = append(out, core.Move{Kind: core.M4, Node: m})
		}
	}
	if err := s.gen(v, b, ini, r, ini, r, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// shadowed reports whether another initial-state node lies on the
// path from m (exclusive) to v (inclusive) — in an in-tree the path
// is the unique child chain.
func (s *Scheduler) shadowed(m, v cdag.NodeID, ini Bitset) bool {
	cur := m
	for cur != v {
		cs := s.g.Children(cur)
		if len(cs) == 0 {
			return false
		}
		cur = cs[0]
		if ini.Has(cur) {
			return true
		}
	}
	return false
}

// gen emits the fragment for one subtree. globalIni and globalReuse
// carry the caller's full state sets, so spill emission can tell
// whether a node already holds a blue pebble (sources and reuse nodes
// outside the initial state start blue) and parent releases can tell
// whether a parent must stay resident.
func (s *Scheduler) gen(v cdag.NodeID, b cdag.Weight, ini, reuse, globalIni, globalReuse Bitset, out *core.Schedule) error {
	g := s.g
	if ini.Has(v) {
		// v already resident: only fetch missing reuse nodes, which
		// hold blue pebbles by assumption (Section 4.1).
		for _, r := range reuse.Sorted() {
			if !ini.Has(r) {
				*out = append(*out, core.Move{Kind: core.M1, Node: r})
			}
		}
		return nil
	}
	if g.InDegree(v) == 0 {
		*out = append(*out, core.Move{Kind: core.M1, Node: v})
		return nil
	}
	ps := g.Parents(v)
	p1, p2 := ps[0], ps[1]
	c := s.pmChoice(v, b, ini, reuse)
	first, second := p1, p2
	if c == choiceKeep2 || c == choiceSpill2 {
		first, second = p2, p1
	}
	spill := c == choiceSpill1 || c == choiceSpill2
	iF, iS := s.Restrict(ini, first), s.Restrict(ini, second)
	rF, rS := s.Restrict(reuse, first), s.Restrict(reuse, second)

	if err := s.gen(first, b-iS.Weight(g), iF, rF, globalIni, globalReuse, out); err != nil {
		return err
	}
	if spill {
		// Nodes that started with blue pebbles — sources and reuse
		// nodes outside the initial state — need no write-back.
		startBlue := !globalIni.Has(first) && (g.IsSource(first) || globalReuse.Has(first))
		if !startBlue {
			*out = append(*out, core.Move{Kind: core.M2, Node: first})
		}
		*out = append(*out, core.Move{Kind: core.M4, Node: first})
		if err := s.gen(second, b-rF.Weight(g), iS, rS, globalIni, globalReuse, out); err != nil {
			return err
		}
		*out = append(*out, core.Move{Kind: core.M1, Node: first})
	} else {
		heldFirst := rF.Weight(g)
		if !rF.Has(first) {
			heldFirst += g.Weight(first)
		}
		if err := s.gen(second, b-heldFirst, iS, rS, globalIni, globalReuse, out); err != nil {
			return err
		}
	}
	*out = append(*out, core.Move{Kind: core.M3, Node: v})
	// Release parents the reuse state does not demand. Initial-state
	// parents are released too: Eq. 8 charges only R_p (not I_p)
	// against the remaining budget once a parent's subtree is done,
	// so initial residents not in R must leave after their single use
	// (each tree node has exactly one child).
	for _, p := range ps {
		if !globalReuse.Has(p) {
			*out = append(*out, core.Move{Kind: core.M4, Node: p})
		}
	}
	return nil
}
