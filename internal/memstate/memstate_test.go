package memstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/ktree"
)

// buildBinary returns a complete binary tree of the given height with
// the weight function.
func buildBinary(t *testing.T, height int, wf func(depth, index int) cdag.Weight) (*ktree.Tree, *Scheduler) {
	t.Helper()
	tr, err := ktree.FullTree(2, height, wf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func TestRejectsNonBinary(t *testing.T) {
	tr, err := ktree.FullTree(3, 1, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(tr.G); err == nil {
		t.Error("ternary tree should be rejected (Eq. 8 is for k=2)")
	}
	chain, err := ktree.Chain(3, func(i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(chain.G); err == nil {
		t.Error("chain (in-degree 1) should be rejected")
	}
}

// TestEmptyStatesMatchKtree: with I = R = ∅, Pm coincides with the
// k-ary tree DP Pt on binary trees.
func TestEmptyStatesMatchKtree(t *testing.T) {
	for _, h := range []int{1, 2, 3} {
		wf := func(depth, index int) cdag.Weight { return cdag.Weight(1 + (depth+index)%3) }
		tr, s := buildBinary(t, h, wf)
		ks := ktree.NewScheduler(tr)
		minB := core.MinExistenceBudget(tr.G)
		for b := minB; b <= minB+6; b++ {
			want := ks.MinCost(b) - tr.G.Weight(tr.Root) // Pt(root,b) without the final store
			got := s.PlainCost(tr.Root, b)
			if got != want {
				t.Errorf("h=%d b=%d: Pm=%d Pt=%d", h, b, got, want)
			}
		}
	}
}

func TestEmptyStatesMatchKtreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := func(depth, index int) cdag.Weight { return 1 + cdag.Weight(rng.Intn(3)) }
		tr, err := ktree.FullTree(2, 1+rng.Intn(3), wf)
		if err != nil {
			return false
		}
		s, err := NewScheduler(tr.G)
		if err != nil {
			return false
		}
		ks := ktree.NewScheduler(tr)
		b := core.MinExistenceBudget(tr.G) + cdag.Weight(rng.Intn(6))
		return s.PlainCost(tr.Root, b) == ks.MinCost(b)-tr.G.Weight(tr.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestInitialStateSkipsComputation: if v itself is in I and R is
// empty, nothing needs to move: cost 0.
func TestInitialStateSkipsComputation(t *testing.T) {
	tr, s := buildBinary(t, 2, func(d, i int) cdag.Weight { return 2 })
	root := tr.Root
	got := s.Cost(root, 100, NewBitset(root), Bitset{})
	if got != 0 {
		t.Errorf("Pm(v∈I, R=∅) = %d, want 0", got)
	}
}

// TestInitialStateWithReuse: v ∈ I and R \ I nonempty costs exactly
// the weight of the missing reuse nodes.
func TestInitialStateWithReuse(t *testing.T) {
	tr, s := buildBinary(t, 2, func(d, i int) cdag.Weight { return 2 })
	root := tr.Root
	leaf := tr.G.Sources()[0]
	got := s.Cost(root, 100, NewBitset(root), NewBitset(leaf))
	if got != 2 {
		t.Errorf("Pm = %d, want 2 (one leaf brought in)", got)
	}
	// If the reuse node is already in I, it costs nothing.
	got = s.Cost(root, 100, NewBitset(root, leaf), NewBitset(leaf))
	if got != 0 {
		t.Errorf("Pm = %d, want 0 (reuse node already resident)", got)
	}
}

// TestReuseTightensBudget: demanding a reuse node makes tight budgets
// infeasible — the guard includes R ∪ H(v) ∪ {v}.
func TestReuseTightensBudget(t *testing.T) {
	tr, s := buildBinary(t, 1, func(d, i int) cdag.Weight { return 1 })
	root := tr.Root
	leaf := tr.G.Sources()[0]
	// Computing the root alone needs budget 3 (root + 2 leaves).
	if got := s.Cost(root, 3, Bitset{}, Bitset{}); got >= Inf {
		t.Fatalf("plain cost should be feasible at 3, got Inf")
	}
	// Keeping one leaf around afterwards does not change the guard
	// (it is already a parent)...
	if got := s.Cost(root, 3, Bitset{}, NewBitset(leaf)); got >= Inf {
		t.Errorf("reuse of a parent should still fit in budget 3")
	}
}

// TestReuseOfDistantNodeRaisesGuard: reusing a node that is not a
// parent of v raises the co-residency requirement.
func TestReuseOfDistantNodeRaisesGuard(t *testing.T) {
	tr, s := buildBinary(t, 2, func(d, i int) cdag.Weight { return 1 })
	root := tr.Root
	leaf := tr.G.Sources()[0] // a grandparent-level input, not a parent of root
	// Plain: root + 2 mid nodes = 3.
	if got := s.Cost(root, 3, Bitset{}, Bitset{}); got >= Inf {
		t.Fatalf("plain cost should be feasible at 3")
	}
	// With leaf reuse the guard becomes 4.
	if got := s.Cost(root, 3, Bitset{}, NewBitset(leaf)); got < Inf {
		t.Errorf("budget 3 with distant reuse should be infeasible, got %d", got)
	}
	if got := s.Cost(root, 4, Bitset{}, NewBitset(leaf)); got >= Inf {
		t.Errorf("budget 4 with distant reuse should be feasible")
	}
}

// TestInitialStateReducesCost: parents already resident cut the cost
// of computing v to zero I/O.
func TestInitialStateReducesCost(t *testing.T) {
	tr, s := buildBinary(t, 1, func(d, i int) cdag.Weight { return 1 })
	root := tr.Root
	ps := tr.G.Parents(root)
	plain := s.Cost(root, 10, Bitset{}, Bitset{})
	if plain != 2 {
		t.Fatalf("plain cost = %d, want 2 (two leaf loads)", plain)
	}
	withI := s.Cost(root, 10, NewBitset(ps[0], ps[1]), Bitset{})
	if withI != 0 {
		t.Errorf("cost with resident parents = %d, want 0", withI)
	}
	half := s.Cost(root, 10, NewBitset(ps[0]), Bitset{})
	if half != 1 {
		t.Errorf("cost with one resident parent = %d, want 1", half)
	}
}

// TestMonotoneInBudget: Pm never increases with budget.
func TestMonotoneInBudget(t *testing.T) {
	tr, s := buildBinary(t, 3, func(d, i int) cdag.Weight { return cdag.Weight(1 + d%2) })
	root := tr.Root
	leaf := tr.G.Sources()[2]
	minB := core.MinExistenceBudget(tr.G)
	prev := s.Cost(root, minB, Bitset{}, NewBitset(leaf))
	for b := minB + 1; b <= minB+15; b++ {
		cur := s.Cost(root, b, Bitset{}, NewBitset(leaf))
		if cur > prev {
			t.Fatalf("not monotone at b=%d: %d > %d", b, cur, prev)
		}
		prev = cur
	}
}

// TestReuseCostBounds: requiring a leaf to stay resident can only
// raise the cost (more constraints), and never beyond the plain cost
// at the budget reduced by the leaf's weight — take the optimal plain
// schedule under b − w(leaf) and keep the leaf red from its first
// load onward; the peak grows by at most w(leaf) and no move gets
// more expensive. (The naive bound plain(b) + w(leaf) does NOT hold:
// Eq. 8 keeps reuse nodes co-resident from the moment they are
// computed, and under tight budgets that forces spill strategies
// elsewhere that cost more than one extra load of the leaf.)
func TestReuseCostBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := func(depth, index int) cdag.Weight { return 1 + cdag.Weight(rng.Intn(2)) }
		tr, err := ktree.FullTree(2, 1+rng.Intn(2), wf)
		if err != nil {
			return false
		}
		s, err := NewScheduler(tr.G)
		if err != nil {
			return false
		}
		leaves := tr.G.Sources()
		leaf := leaves[rng.Intn(len(leaves))]
		b := core.MinExistenceBudget(tr.G) + tr.G.Weight(leaf) + cdag.Weight(rng.Intn(4))
		plain := s.PlainCost(tr.Root, b)
		withR := s.Cost(tr.Root, b, Bitset{}, NewBitset(leaf))
		if plain >= Inf || withR >= Inf {
			return true
		}
		if withR < plain {
			t.Logf("seed %d: withR %d < plain %d", seed, withR, plain)
			return false
		}
		reduced := s.PlainCost(tr.Root, b-tr.G.Weight(leaf))
		if reduced < Inf && withR > reduced {
			t.Logf("seed %d: withR %d > plain(b-w) %d", seed, withR, reduced)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	tr, _ := buildBinary(t, 1, func(d, i int) cdag.Weight { return 1 })
	set := NewBitset(tr.G.Sources()[0], tr.Root)
	s := Describe(tr.G, set)
	if s == "" || s == "{}" {
		t.Errorf("Describe = %q", s)
	}
}

func TestBitsetHelpers(t *testing.T) {
	s := NewBitset(3, 1, 2)
	ids := s.Sorted()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("Sorted = %v", ids)
	}
}
