package memstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/ktree"
)

// replay builds the starting state and runs the fragment, returning
// the final state and stats.
func replay(t *testing.T, s *Scheduler, b cdag.Weight, ini, reuse Bitset, frag core.Schedule) (*core.State, core.Stats) {
	t.Helper()
	st, err := core.NewStateWithLabels(s.g, b, s.StartLabels(ini, reuse))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.SimulateFrom(st, frag)
	if err != nil {
		t.Fatalf("fragment invalid: %v", err)
	}
	return st, stats
}

// TestFragmentContract: across small trees, budgets and random
// initial/reuse sets, the fragment (a) obeys all rules, (b) ends with
// the target and every reuse node red, (c) costs at most Pm.
func TestFragmentContract(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wf := func(depth, index int) cdag.Weight { return 1 + cdag.Weight(rng.Intn(2)) }
		tr, err := ktree.FullTree(2, 1+rng.Intn(3), wf)
		if err != nil {
			return false
		}
		s, err := NewScheduler(tr.G)
		if err != nil {
			return false
		}
		root := tr.Root
		// Random initial state: maybe the root, maybe a mid node.
		ini := Bitset{}
		if rng.Intn(3) == 0 {
			ini = ini.With(root)
		}
		all := tr.G.TopoOrder()
		if rng.Intn(2) == 0 {
			ini = ini.With(all[rng.Intn(len(all))])
		}
		// Random reuse: a couple of nodes.
		reuse := Bitset{}
		for i := 0; i < rng.Intn(3); i++ {
			reuse = reuse.With(all[rng.Intn(len(all))])
		}
		reuse = s.Restrict(reuse, root)
		ini = s.Restrict(ini, root)

		b := core.MinExistenceBudget(tr.G) + ini.Weight(tr.G) + reuse.Weight(tr.G) + cdag.Weight(rng.Intn(6))
		cost := s.Cost(root, b, ini, reuse)
		if cost >= Inf {
			return true // infeasible combination; nothing to generate
		}
		frag, err := s.Schedule(root, b, ini, reuse)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		st, err := core.NewStateWithLabels(tr.G, b, s.StartLabels(ini, reuse))
		if err != nil {
			return false
		}
		stats, err := core.SimulateFrom(st, frag)
		if err != nil {
			t.Logf("seed %d: fragment invalid: %v", seed, err)
			return false
		}
		if !st.Label(root).HasRed() {
			t.Logf("seed %d: root not red at end", seed)
			return false
		}
		for _, r := range reuse.Sorted() {
			if !st.Label(r).HasRed() {
				t.Logf("seed %d: reuse node %d not red at end", seed, r)
				return false
			}
		}
		if stats.Cost > cost {
			t.Logf("seed %d: fragment cost %d exceeds Pm %d", seed, stats.Cost, cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFragmentPlainMatchesKtreeSchedule: with empty states the
// fragment cost equals Pm exactly on instances where no source spill
// is chosen (generous budgets force keep strategies).
func TestFragmentPlainGenerousBudget(t *testing.T) {
	tr, err := ktree.FullTree(2, 3, func(d, i int) cdag.Weight { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.G.TotalWeight()
	frag, err := s.Schedule(tr.Root, b, Bitset{}, Bitset{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats := replay(t, s, b, Bitset{}, Bitset{}, frag)
	if want := s.PlainCost(tr.Root, b); stats.Cost != want {
		t.Errorf("fragment cost %d != Pm %d", stats.Cost, want)
	}
	// With the whole tree resident, only leaf loads are paid.
	if stats.Cost != tr.G.SourceWeight() {
		t.Errorf("cost %d, want leaf weight %d", stats.Cost, tr.G.SourceWeight())
	}
}

// TestFragmentRootInInitial: nothing to compute, only reuse loads.
func TestFragmentRootInInitial(t *testing.T) {
	tr, err := ktree.FullTree(2, 2, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.G.Sources()[1]
	ini := NewBitset(tr.Root)
	reuse := NewBitset(leaf)
	frag, err := s.Schedule(tr.Root, 10, ini, reuse)
	if err != nil {
		t.Fatal(err)
	}
	if len(frag) != 1 || frag[0].Kind != core.M1 || frag[0].Node != leaf {
		t.Fatalf("fragment = %v, want single M1(leaf)", frag)
	}
	st, stats := replay(t, s, 10, ini, reuse, frag)
	if stats.Cost != 1 || !st.Label(leaf).HasRed() || !st.Label(tr.Root).HasRed() {
		t.Errorf("unexpected end state")
	}
}

// TestFragmentResidentParents: with both parents in I, computing the
// root moves nothing.
func TestFragmentResidentParents(t *testing.T) {
	tr, err := ktree.FullTree(2, 1, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	ps := tr.G.Parents(tr.Root)
	ini := NewBitset(ps[0], ps[1])
	frag, err := s.Schedule(tr.Root, 10, ini, Bitset{})
	if err != nil {
		t.Fatal(err)
	}
	st, stats := replay(t, s, 10, ini, Bitset{}, frag)
	if stats.Cost != 0 {
		t.Errorf("cost = %d, want 0", stats.Cost)
	}
	if !st.Label(tr.Root).HasRed() {
		t.Error("root not computed")
	}
}

// TestFragmentReuseStaysThroughTightBudget: a reused leaf survives a
// budget that forces spilling elsewhere.
func TestFragmentReuseStaysThroughTightBudget(t *testing.T) {
	tr, err := ktree.FullTree(2, 2, func(d, i int) cdag.Weight { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.G.Sources()[0]
	reuse := NewBitset(leaf)
	b := core.MinExistenceBudget(tr.G) + 1 // 4: tight but feasible with reuse
	cost := s.Cost(tr.Root, b, Bitset{}, reuse)
	if cost >= Inf {
		t.Skip("combination infeasible at this budget")
	}
	frag, err := s.Schedule(tr.Root, b, Bitset{}, reuse)
	if err != nil {
		t.Fatal(err)
	}
	st, stats := replay(t, s, b, Bitset{}, reuse, frag)
	if !st.Label(leaf).HasRed() {
		t.Error("reuse leaf evicted")
	}
	if stats.PeakRedWeight > b {
		t.Errorf("peak %d > budget %d", stats.PeakRedWeight, b)
	}
}

// TestScheduleInfeasible: generation refuses infeasible inputs.
func TestScheduleInfeasible(t *testing.T) {
	tr, err := ktree.FullTree(2, 1, func(d, i int) cdag.Weight { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(tr.Root, 10, Bitset{}, Bitset{}); err == nil {
		t.Error("budget 10 < 15 should fail")
	}
}
