package memstate

import (
	"context"
	"errors"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/ktree"
)

func sessionFixture(t *testing.T) (*ktree.Tree, cdag.NodeID, Bitset) {
	t.Helper()
	tr, err := ktree.FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.Root, NewBitset(tr.G.Sources()[0])
}

// TestSessionMatchesOneShot: warm session answers over an out-of-order
// budget list must equal independent cold KScheduler queries with the
// same pinned (node, initial, reuse) arguments.
func TestSessionMatchesOneShot(t *testing.T) {
	tr, root, reuse := sessionFixture(t)
	se, err := NewSession(tr.G, root, Bitset{}, reuse)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	min := core.MinExistenceBudget(tr.G)
	budgets := []cdag.Weight{min + 12, min, min + 5, min - 1, min + 12, min + 2}
	for _, b := range budgets {
		got, err := se.CostCtx(ctx, guard.Limits{}, b)
		if err != nil {
			t.Fatalf("CostCtx(%d): %v", b, err)
		}
		s, err := NewKScheduler(tr.G)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.Cost(root, b, Bitset{}, reuse); got != want {
			t.Errorf("CostCtx(%d) = %d, cold Cost = %d", b, got, want)
		}
	}
}

// TestSessionWarmCostZeroAlloc: a repeated budget query is a pure memo
// probe through the session's reused guard checker.
func TestSessionWarmCostZeroAlloc(t *testing.T) {
	tr, root, reuse := sessionFixture(t)
	se, err := NewSession(tr.G, root, Bitset{}, reuse)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := core.MinExistenceBudget(tr.G) + 4
	if _, err := se.CostCtx(ctx, guard.Limits{}, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		se.CostCtx(ctx, guard.Limits{}, b) //nolint:errcheck
	})
	if allocs != 0 {
		t.Errorf("warm CostCtx allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSessionAbortThenReuse: a resource-limited query aborts typed and
// leaves the memo unpoisoned.
func TestSessionAbortThenReuse(t *testing.T) {
	tr, root, reuse := sessionFixture(t)
	se, err := NewSession(tr.G, root, Bitset{}, reuse)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := core.MinExistenceBudget(tr.G) + 6
	if _, err := se.CostCtx(ctx, guard.Limits{MaxMemoEntries: 1}, b); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("limited query: got %v, want ErrBudgetExceeded", err)
	}
	got, err := se.CostCtx(ctx, guard.Limits{}, b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewKScheduler(tr.G)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Cost(root, b, Bitset{}, reuse); got != want {
		t.Errorf("after abort, CostCtx(%d) = %d, want %d", b, got, want)
	}
}
