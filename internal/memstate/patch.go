// Incremental invalidation for the Pm memos. The pmTable is keyed by
// (node, states), not organized per node, so clearing a node's cells
// eagerly would mean a full table scan. Instead each node carries a
// generation stamp: Invalidate bumps the stamps along the changed
// nodes' root chains, and the table treats a slot whose recorded
// generation is stale as empty, resetting it lazily (keeping its
// interval capacity) the next time its key is touched. Pm(v, ·, I, R)
// depends only on weights inside v's subtree (Eq. 8), and in an
// in-tree the nodes whose subtree contains a changed node u are
// exactly u's root chain — so stamping that chain invalidates
// precisely the affected cells.

package memstate

import (
	"fmt"

	"wrbpg/internal/cdag"
)

// genState is the per-node generation and live-cell accounting shared
// by Scheduler and KScheduler.
type genState struct {
	// gens[v] is v's current memo generation; slots recorded under an
	// older generation are stale.
	gens []uint32
	// liveN[v] counts live intervals stored for node v; live is their
	// sum, reported as the reused count after an invalidation.
	liveN []int64
	live  int64
	// mark/epoch deduplicate shared root-chain suffixes when one patch
	// changes several nodes.
	mark  []uint32
	epoch uint32
	saved []cdag.Weight
}

func newGenState(n int) genState {
	return genState{
		gens:  make([]uint32, n),
		liveN: make([]int64, n),
		mark:  make([]uint32, n),
	}
}

// noteStore records one interval stored for v.
func (gs *genState) noteStore(v cdag.NodeID) {
	gs.liveN[v]++
	gs.live++
}

// setWeights applies weight deltas to g (reverting on any error) and
// bumps the generation of every node on each changed node's root
// chain, invalidating their cells lazily. It returns the number of
// intervals invalidated and the number surviving.
func (gs *genState) setWeights(g *cdag.Graph, ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	gs.saved = gs.saved[:0]
	applied := 0
	for _, d := range ds {
		var old cdag.Weight
		if int(d.Node) >= 0 && int(d.Node) < g.Len() {
			old = g.Weight(d.Node)
		}
		if err := g.TrySetWeight(d.Node, d.Weight); err != nil {
			for j := applied - 1; j >= 0; j-- {
				g.SetWeight(ds[j].Node, gs.saved[j])
			}
			return 0, 0, fmt.Errorf("memstate: patch: %w", err)
		}
		gs.saved = append(gs.saved, old)
		applied++
	}
	gs.epoch++
	if gs.epoch == 0 { // wrapped: every stale mark now looks current
		for i := range gs.mark {
			gs.mark[i] = 0
		}
		gs.epoch = 1
	}
	for _, d := range ds {
		for v := d.Node; ; {
			if gs.mark[v] == gs.epoch {
				break
			}
			gs.mark[v] = gs.epoch
			gs.gens[v]++
			invalidated += gs.liveN[v]
			gs.live -= gs.liveN[v]
			gs.liveN[v] = 0
			ch := g.Children(v)
			if len(ch) == 0 {
				break
			}
			v = ch[0] // in-tree: out-degree ≤ 1
		}
	}
	return invalidated, gs.live, nil
}
