// Package memstate extends the k-ary tree pebbling procedure with
// user-defined fast memory states (Section 4.1 of the paper, Eq. 8,
// for k = 2).
//
// The user supplies an initial state I ⊆ V — nodes already resident
// in fast memory before the target node v is computed — and a reuse
// state R ⊆ V — nodes that must be resident after v has been
// computed. Pm(v, b, I, R) is the minimum weighted cost of computing
// v under budget b while honouring those states. For a node u,
// X_u ≜ X ∩ (pred(u) ∪ {u}) restricts a state to u's subtree; budget
// adjustments thread the states through the two parents according to
// their computation order exactly as in Eq. 8.
//
// This machinery is what turns the tree scheduler into a tiling
// scheduler: tiles of the MVM graph are scheduled as binary-tree
// chains whose accumulators and resident vector entries appear in I
// and R (package mvm).
//
// States are packed Bitsets and memo keys are comparable structs
// (see bitset.go), so a memoized Pm lookup performs zero allocations;
// subtree restriction is a single mask intersection against
// precomputed ancestor masks.
package memstate

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
)

// Inf is the sentinel cost of an infeasible subproblem.
const Inf cdag.Weight = math.MaxInt64 / 4

// Budget-interval sentinels: a memoized value valid "for every budget
// from here up" (or down) uses these as its open end.
const (
	budgetMax = Inf
	budgetMin = -Inf
)

// Scheduler evaluates Pm on a binary in-tree.
type Scheduler struct {
	g    *cdag.Graph
	memo pmTable
	ix   *setIndex
	anc  []Bitset
	gs   genState
	// ck, when non-nil, is the active cancellation/budget guard of a
	// CostCtx call. The DP checks it per cold cell and never memoizes
	// results computed after it trips. nil (the default) costs one
	// pointer test per cell.
	ck *guard.Checker
}

// NewScheduler wraps a binary in-tree (every in-degree 0 or 2, unique
// sink); Eq. 8 is stated for k = 2.
func NewScheduler(g *cdag.Graph) (*Scheduler, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsTree() {
		return nil, fmt.Errorf("memstate: graph is not an in-tree")
	}
	for v := 0; v < g.Len(); v++ {
		if d := g.InDegree(cdag.NodeID(v)); d != 0 && d != 2 {
			return nil, fmt.Errorf("memstate: node %d has in-degree %d; Eq. 8 requires a binary tree", v, d)
		}
	}
	return &Scheduler{
		g:   g,
		ix:  newSetIndex(g.Len()),
		anc: ancestorMasks(g),
		gs:  newGenState(g.Len()),
	}, nil
}

// SetWeights applies weight deltas to the tree and invalidates (via
// generation stamps) exactly the memo cells whose subtree contains a
// changed node; see genState. The graph is reverted unchanged on any
// error. It returns the number of intervals invalidated and the
// number surviving.
func (s *Scheduler) SetWeights(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	return s.gs.setWeights(s.g, ds)
}

// Restrict returns X_u = X ∩ (pred(u) ∪ {u}) — one mask intersection.
func (s *Scheduler) Restrict(x Bitset, u cdag.NodeID) Bitset {
	return x.and(s.anc[u])
}

// Cost returns Pm(v, b, I_v, R_v) per Eq. 8. The caller's I and R are
// restricted to v's subtree internally, so passing global states is
// safe.
func (s *Scheduler) Cost(v cdag.NodeID, b cdag.Weight, initial, reuse Bitset) cdag.Weight {
	c, _, _ := s.pm(v, b, s.Restrict(initial, v), s.Restrict(reuse, v))
	return c
}

// CostCtx is Cost under a cancellation context and resource limits. It
// returns guard.ErrCanceled / guard.ErrDeadline /
// guard.ErrBudgetExceeded (wrapped) when the solve was aborted; the
// scheduler remains usable afterwards — partial results computed after
// the abort are never memoized.
func (s *Scheduler) CostCtx(ctx context.Context, lim guard.Limits, v cdag.NodeID, b cdag.Weight, initial, reuse Bitset) (cdag.Weight, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	s.ck = ck
	defer func() { s.ck = nil }()
	c := s.Cost(v, b, initial, reuse)
	if err := ck.Err(); err != nil {
		return 0, fmt.Errorf("memstate: %w", err)
	}
	return c, nil
}

// pm returns Pm(v, b, I, R) together with the budget interval
// [lo, hi] ∋ b on which that value holds. Every case below derives
// its interval from quantities independent of b (the co-residency
// guard, node weights) intersected with the shifted intervals of the
// sub-calls it consulted — on that intersection every consulted value
// is constant, so the minimum is too.
func (s *Scheduler) pm(v cdag.NodeID, b cdag.Weight, ini, reuse Bitset) (cdag.Weight, cdag.Weight, cdag.Weight) {
	key := pmKey{v: v, ini: s.ix.handle(ini), reuse: s.ix.handle(reuse)}
	gen := s.gs.gens[v]
	if c, lo, hi, ok := s.memo.get(key, gen, b); ok {
		s.ck.NoteHit()
		return c, lo, hi
	}
	// Cancellation checkpoint on the cold path only: warm hits return
	// above untouched. The tripped return carries an empty-width
	// interval so enclosing cells cannot widen around a poisoned value.
	if s.ck != nil && s.ck.Tick() != nil {
		return Inf, b, b
	}
	g := s.g
	// Budget guard: v, its parents and its reuse set must co-reside.
	guard := reuse.Weight(g)
	cover := reuse
	if !cover.Has(v) {
		guard += g.Weight(v)
		cover = cover.With(v)
	}
	for _, p := range g.Parents(v) {
		if !cover.Has(p) {
			guard += g.Weight(p)
			cover = cover.With(p)
		}
	}
	var cost cdag.Weight
	lo, hi := guard, cdag.Weight(budgetMax)
	switch {
	case guard > b:
		cost, lo, hi = Inf, budgetMin, guard-1
	case ini.Has(v):
		// v already resident: only bring in reuse nodes not yet in
		// fast memory (they hold blue pebbles).
		cost = 0
		reuse.ForEach(func(r cdag.NodeID) {
			if !ini.Has(r) {
				cost += g.Weight(r)
			}
		})
	case g.InDegree(v) == 0:
		cost = g.Weight(v)
	default:
		ps := g.Parents(v)
		p1, p2 := ps[0], ps[1]
		i1, i2 := s.Restrict(ini, p1), s.Restrict(ini, p2)
		r1, r2 := s.Restrict(reuse, p1), s.Restrict(reuse, p2)
		w1, w2 := g.Weight(p1), g.Weight(p2)

		add := func(xs ...cdag.Weight) cdag.Weight {
			var t cdag.Weight
			for _, x := range xs {
				if x >= Inf {
					return Inf
				}
				t += x
			}
			return t
		}
		// W(R_p ∪ {p}): the kept parent's weight, not double-counted
		// when the parent is itself in its reuse set.
		unionW := func(x Bitset, p cdag.NodeID) cdag.Weight {
			w := x.Weight(g)
			if !x.Has(p) {
				w += g.Weight(p)
			}
			return w
		}
		// sub evaluates one sub-call at budget b-shift and intersects
		// its validity interval (shifted back) into [lo, hi].
		sub := func(p cdag.NodeID, shift cdag.Weight, pi, pr Bitset) cdag.Weight {
			c, slo, shi := s.pm(p, b-shift, pi, pr)
			if nlo := slo + shift; nlo > lo {
				lo = nlo
			}
			if nhi := shi + shift; nhi < hi {
				hi = nhi
			}
			return c
		}

		// Strategy: p1 first. Its budget excludes p2's initially
		// resident nodes; p2's budget then excludes p1's reuse nodes
		// (plus p1 itself if kept red). The six distinct sub-calls are
		// hoisted so each is consulted (and intersected) once.
		first1 := sub(p1, i2.Weight(g), i1, r1)
		first2 := sub(p2, i1.Weight(g), i2, r2)
		spill1 := add(first1, sub(p2, r1.Weight(g), i2, r2), 2*w1)
		keep1 := add(first1, sub(p2, unionW(r1, p1), i2, r2))
		spill2 := add(first2, sub(p1, r2.Weight(g), i1, r1), 2*w2)
		keep2 := add(first2, sub(p1, unionW(r2, p2), i1, r1))

		cost = keep1
		for _, c := range []cdag.Weight{keep2, spill1, spill2} {
			if c < cost {
				cost = c
			}
		}
		if cost >= Inf {
			cost = Inf
		}
	}
	// Never memoize after a trip: children returned poisoned Inf costs
	// that must not survive into later solves.
	if s.ck == nil || (s.ck.Err() == nil && s.ck.AddMemo(1) == nil) {
		stored, clipped := s.memo.put(key, gen, pmIval{lo: lo, hi: hi, cost: cost})
		if stored {
			s.gs.noteStore(v)
		}
		if clipped {
			s.ck.NoteSplit()
		}
	}
	return cost, lo, hi
}

// PlainCost returns Pm with empty states, which coincides with the
// k-ary tree DP Pt for binary trees — the consistency property tested
// in this package.
func (s *Scheduler) PlainCost(v cdag.NodeID, b cdag.Weight) cdag.Weight {
	return s.Cost(v, b, Bitset{}, Bitset{})
}

// Root returns the unique sink of the tree.
func (s *Scheduler) Root() cdag.NodeID { return s.g.Sinks()[0] }

// Describe renders a state compactly for error messages and logs.
func Describe(g *cdag.Graph, set Bitset) string {
	ids := set.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		name := g.Name(id)
		if name == "" {
			name = fmt.Sprintf("v%d", id)
		}
		parts[i] = name
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " ") + "}"
}
