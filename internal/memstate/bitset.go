package memstate

import (
	"encoding/binary"
	"math/bits"

	"wrbpg/internal/cdag"
)

// Bitset is a packed set of node IDs: bit j of word i holds node
// 64·i + j. The zero value is the empty set. Sets over graphs with at
// most 64 nodes — every tree the paper's experiments schedule — live
// entirely in the inline first word, so copying, intersecting and
// hashing them never allocates; wider sets spill into ext.
//
// Bitsets are immutable values: With and and return new sets and the
// ext slice, once created, is never written through.
type Bitset struct {
	w0  uint64
	ext []uint64 // words 1+; normalized: never ends in a zero word
}

// NewBitset builds a set from IDs.
func NewBitset(ids ...cdag.NodeID) Bitset {
	var s Bitset
	for _, id := range ids {
		s = s.With(id)
	}
	return s
}

// Has reports whether v is a member.
func (s Bitset) Has(v cdag.NodeID) bool {
	w, b := int(v)>>6, uint(v)&63
	if w == 0 {
		return s.w0&(1<<b) != 0
	}
	if w-1 >= len(s.ext) {
		return false
	}
	return s.ext[w-1]&(1<<b) != 0
}

// With returns s ∪ {v}.
func (s Bitset) With(v cdag.NodeID) Bitset {
	w, b := int(v)>>6, uint(v)&63
	if w == 0 {
		return Bitset{w0: s.w0 | 1<<b, ext: s.ext}
	}
	n := len(s.ext)
	if w > n {
		n = w
	}
	ext := make([]uint64, n)
	copy(ext, s.ext)
	ext[w-1] |= 1 << b
	return Bitset{w0: s.w0, ext: ext}
}

// Without returns s \ {v}. Like With it never mutates the receiver's
// storage, and it keeps the no-trailing-zero-word normalization so
// equal sets always share one packed representation.
func (s Bitset) Without(v cdag.NodeID) Bitset {
	if !s.Has(v) {
		return s
	}
	w, b := int(v)>>6, uint(v)&63
	if w == 0 {
		return Bitset{w0: s.w0 &^ (1 << b), ext: s.ext}
	}
	ext := make([]uint64, len(s.ext))
	copy(ext, s.ext)
	ext[w-1] &^= 1 << b
	for len(ext) > 0 && ext[len(ext)-1] == 0 {
		ext = ext[:len(ext)-1]
	}
	if len(ext) == 0 {
		ext = nil
	}
	return Bitset{w0: s.w0, ext: ext}
}

// Equal reports whether s and o hold the same members. Normalization
// (no trailing zero words) makes this a word-by-word comparison.
func (s Bitset) Equal(o Bitset) bool {
	if s.w0 != o.w0 || len(s.ext) != len(o.ext) {
		return false
	}
	for i, w := range s.ext {
		if o.ext[i] != w {
			return false
		}
	}
	return true
}

// Hash mixes the set's words into a 64-bit hash, seeded so composite
// keys (several bitsets) can chain hashes without collapsing on equal
// components. The mixing constants match pmKey.hash.
func (s Bitset) Hash(seed uint64) uint64 {
	h := seed*0x9E3779B97F4A7C15 + 0x27D4EB2F165667C5
	mix := func(w uint64) {
		h ^= w * 0x165667B19E3779F9
		h ^= h >> 32
		h *= 0xD6E8FEB86659FD93
	}
	mix(s.w0)
	for _, w := range s.ext {
		mix(w)
	}
	return h ^ h>>29
}

// Empty reports whether the set has no members.
func (s Bitset) Empty() bool { return s.w0 == 0 && len(s.ext) == 0 }

// Count returns the number of members.
func (s Bitset) Count() int {
	n := bits.OnesCount64(s.w0)
	for _, w := range s.ext {
		n += bits.OnesCount64(w)
	}
	return n
}

// and returns s ∩ o without allocating when both sets fit the inline
// word — the restrict operation of Eq. 8 on the hot path.
func (s Bitset) and(o Bitset) Bitset {
	out := Bitset{w0: s.w0 & o.w0}
	n := len(s.ext)
	if len(o.ext) < n {
		n = len(o.ext)
	}
	// Trim trailing zero words up front so equal sets always share one
	// packed representation.
	for n > 0 && s.ext[n-1]&o.ext[n-1] == 0 {
		n--
	}
	if n > 0 {
		ext := make([]uint64, n)
		for i := 0; i < n; i++ {
			ext[i] = s.ext[i] & o.ext[i]
		}
		out.ext = ext
	}
	return out
}

// or returns s ∪ o; used when precomputing ancestor masks.
func (s Bitset) or(o Bitset) Bitset {
	out := Bitset{w0: s.w0 | o.w0}
	n := len(s.ext)
	if len(o.ext) > n {
		n = len(o.ext)
	}
	if n > 0 {
		ext := make([]uint64, n)
		copy(ext, s.ext)
		for i, w := range o.ext {
			ext[i] |= w
		}
		out.ext = ext
	}
	return out
}

// ForEach calls f with every member in ascending order.
func (s Bitset) ForEach(f func(cdag.NodeID)) {
	for w := s.w0; w != 0; w &= w - 1 {
		f(cdag.NodeID(bits.TrailingZeros64(w)))
	}
	for i, word := range s.ext {
		base := (i + 1) << 6
		for w := word; w != 0; w &= w - 1 {
			f(cdag.NodeID(base + bits.TrailingZeros64(w)))
		}
	}
}

// Sorted returns the members in ascending order.
func (s Bitset) Sorted() []cdag.NodeID {
	out := make([]cdag.NodeID, 0, s.Count())
	s.ForEach(func(v cdag.NodeID) { out = append(out, v) })
	return out
}

// Weight sums the weights of the members. It iterates set bits
// directly and never allocates.
func (s Bitset) Weight(g *cdag.Graph) cdag.Weight {
	var total cdag.Weight
	for w := s.w0; w != 0; w &= w - 1 {
		total += g.Weight(cdag.NodeID(bits.TrailingZeros64(w)))
	}
	for i, word := range s.ext {
		base := (i + 1) << 6
		for w := word; w != 0; w &= w - 1 {
			total += g.Weight(cdag.NodeID(base + bits.TrailingZeros64(w)))
		}
	}
	return total
}

// setIndex maps bitsets to the uint64 handles used inside comparable
// memo keys. Graphs with at most 64 nodes need no table at all: the
// inline word is the handle. Wider graphs intern each distinct set
// once and hand out its dense index, so memo lookups stay
// allocation-free in both modes.
type setIndex struct {
	wide    bool
	ids     map[string]uint64
	scratch []byte
}

func newSetIndex(n int) *setIndex {
	ix := &setIndex{wide: n > 64}
	if ix.wide {
		ix.ids = make(map[string]uint64)
	}
	return ix
}

// handle returns the memo handle of s: the packed word for narrow
// graphs, the interned index for wide ones. Only the first occurrence
// of a distinct wide set allocates (its intern entry). The narrow case
// must stay inlinable — it sits on the warm memo-probe path of every
// DP cell — so the wide machinery lives in handleWide.
func (ix *setIndex) handle(s Bitset) uint64 {
	if !ix.wide {
		return s.w0
	}
	return ix.handleWide(s)
}

func (ix *setIndex) handleWide(s Bitset) uint64 {
	buf := ix.scratch[:0]
	buf = binary.LittleEndian.AppendUint64(buf, s.w0)
	for _, w := range s.ext {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	ix.scratch = buf
	if h, ok := ix.ids[string(buf)]; ok {
		return h
	}
	h := uint64(len(ix.ids))
	ix.ids[string(buf)] = h
	return h
}

// ancestorMasks precomputes, for every node u, the mask
// pred(u) ∪ {u}; restricting a state to u's subtree (X_u of Eq. 8) is
// then a single intersection. Insertion order is topological by
// construction, so one forward pass suffices.
func ancestorMasks(g *cdag.Graph) []Bitset {
	masks := make([]Bitset, g.Len())
	for v := 0; v < g.Len(); v++ {
		m := NewBitset(cdag.NodeID(v))
		for _, p := range g.Parents(cdag.NodeID(v)) {
			m = m.or(masks[p])
		}
		masks[v] = m
	}
	return masks
}

// pmKey is the packed budget-free DP state of Eq. 8: target node and
// the handles of the initial and reuse sets. The budget is *not* part
// of the key — Pm(v, ·, I, R) is a non-increasing step function of
// the budget, so each key owns a list of disjoint budget intervals on
// which the value is constant (pmIval). It is a comparable struct, so
// memo lookups build no strings and perform zero allocations.
type pmKey struct {
	v          cdag.NodeID
	ini, reuse uint64
}

// hash mixes the three key fields; it must stay inlinable — it runs
// on every memo probe, warm or cold.
func (k pmKey) hash() uint64 {
	h := uint64(uint32(k.v)) * 0x9E3779B97F4A7C15
	h ^= k.ini * 0x165667B19E3779F9
	h ^= k.reuse * 0x27D4EB2F165667C5
	h ^= h >> 32
	h *= 0xD6E8FEB86659FD93
	return h ^ h>>29
}

// pmIval records that Pm for its key equals cost on every budget in
// [lo, hi]. Intervals in a slot are sorted by lo and pairwise
// disjoint.
type pmIval struct {
	lo, hi cdag.Weight
	cost   cdag.Weight
}

// pmTable is the Pm memo: an open-addressed hash table with linear
// probing, specialized to pmKey, whose slots hold sorted
// budget-interval lists. Probing a flat slot array with an inlined
// integer hash skips the runtime's generic hashing and bucket walk,
// and a warm hit answers a whole budget *range* per entry — the
// mechanism that lets a k-budget sweep cost about one solve instead
// of k. The zero value is an empty table; there is no deletion —
// instead every access carries the key node's current generation
// stamp (genState), and a slot recorded under an older generation is
// treated as empty and lazily reset, keeping its interval capacity.
type pmTable struct {
	mask  uint64
	n     int
	slots []pmSlot
}

type pmSlot struct {
	key   pmKey
	gen   uint32
	ivals []pmIval
	full  bool
}

// get returns the memoized cost covering budget b along with its
// validity interval. gen is the key node's current generation; a slot
// stamped older was invalidated by a patch and reads as a miss (its
// storage is reclaimed on the next put). The binary search allocates
// nothing.
func (t *pmTable) get(k pmKey, gen uint32, b cdag.Weight) (cdag.Weight, cdag.Weight, cdag.Weight, bool) {
	if t.slots == nil {
		return 0, 0, 0, false
	}
	for i := k.hash() & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.full {
			return 0, 0, 0, false
		}
		if s.key == k {
			if s.gen != gen {
				return 0, 0, 0, false
			}
			row := s.ivals
			lo, hi := 0, len(row)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if row[mid].lo <= b {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo > 0 && row[lo-1].hi >= b {
				iv := row[lo-1]
				return iv.cost, iv.lo, iv.hi, true
			}
			return 0, 0, 0, false
		}
	}
}

// put inserts iv under the key node's current generation, clipped to
// the uncovered gap it lands in. Neighbours are restrictions of the
// same step function, so on any overlap they agree and clipping
// discards only redundancy. A slot stamped with an older generation
// holds only invalidated intervals: it is reset in place (keeping its
// capacity) before the insert. stored reports whether iv survived
// (false when clipping emptied it); clipped reports whether clipping
// happened (an interval split, for the observation counters).
func (t *pmTable) put(k pmKey, gen uint32, iv pmIval) (stored, clipped bool) {
	// Grow at 3/4 occupancy so probe chains stay short.
	if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	for i := k.hash() & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if !s.full {
			*s = pmSlot{key: k, gen: gen, ivals: append(s.ivals[:0], iv), full: true}
			t.n++
			return true, false
		}
		if s.key == k {
			if s.gen != gen {
				s.gen = gen
				s.ivals = s.ivals[:0]
			}
			row := s.ivals
			lo, hi := 0, len(row)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if row[mid].lo <= iv.lo {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo > 0 && row[lo-1].hi >= iv.lo {
				iv.lo = row[lo-1].hi + 1
				clipped = true
			}
			if lo < len(row) && row[lo].lo <= iv.hi {
				iv.hi = row[lo].lo - 1
				clipped = true
			}
			if iv.lo > iv.hi {
				return false, clipped
			}
			row = append(row, pmIval{})
			copy(row[lo+1:], row[lo:])
			row[lo] = iv
			s.ivals = row
			return true, clipped
		}
	}
}

func (t *pmTable) grow() {
	old := t.slots
	size := 256
	if len(old) > 0 {
		size = len(old) * 2
	}
	t.slots = make([]pmSlot, size)
	t.mask = uint64(size - 1)
	for i := range old {
		if !old[i].full {
			continue
		}
		for j := old[i].key.hash() & t.mask; ; j = (j + 1) & t.mask {
			if !t.slots[j].full {
				t.slots[j] = old[i]
				break
			}
		}
	}
}
