// Package dwt builds the DWT(n, d) dataflow graphs of Definition 3.1
// — the Haar discrete wavelet transform as a CDAG — and implements the
// paper's optimum WRBPG scheduler for them (Algorithm 1,
// Theorem 3.5), together with the pruning transform of Lemma 3.2 and
// the minimum fast memory search of Definition 2.6.
//
// Layer S_1 holds the n input samples; layer S_i (i ≥ 2) holds the
// level-(i−1) averages at odd indices and coefficients at even
// indices. Every even-index node in layers above S_1 is a sink
// (coefficient output); the odd-index nodes of the final layer S_{d+1}
// are the final averages, also sinks.
package dwt

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/wcfg"
)

// WeightFunc assigns a weight (in bits) to the node at 1-based
// (layer, index); layer 1 nodes are inputs.
type WeightFunc func(layer, index int) cdag.Weight

// ConfigWeights adapts a wcfg.Config to a WeightFunc.
func ConfigWeights(c wcfg.Config) WeightFunc {
	return func(layer, index int) cdag.Weight {
		if layer == 1 {
			return c.Input()
		}
		return c.Node()
	}
}

// Graph is a DWT(n, d) CDAG plus its layer layout.
type Graph struct {
	// G is the underlying node-weighted CDAG.
	G *cdag.Graph
	// N is the number of input samples, D the transform level.
	N, D int
	// Layers[i-1] lists the node IDs of layer S_i in index order, so
	// Layers[i-1][j-1] is v^i_j in the paper's notation.
	Layers [][]cdag.NodeID
}

// Build constructs DWT(n, d) per Definition 3.1. n must be a positive
// multiple of 2^d and d ≥ 1.
func Build(n, d int, wf WeightFunc) (*Graph, error) {
	if d < 1 {
		return nil, fmt.Errorf("dwt: level d must be ≥ 1, got %d", d)
	}
	if d > 30 {
		return nil, fmt.Errorf("dwt: level d=%d too large", d)
	}
	p := 1 << uint(d)
	if n <= 0 || n%p != 0 {
		return nil, fmt.Errorf("dwt: n=%d must be a positive multiple of 2^d=%d", n, p)
	}
	g := &cdag.Graph{}
	layers := make([][]cdag.NodeID, d+1)

	// S_1: inputs.
	layers[0] = make([]cdag.NodeID, n)
	for j := 1; j <= n; j++ {
		layers[0][j-1] = g.AddNode(wf(1, j), fmt.Sprintf("x[%d]", j))
	}
	// S_2: n nodes; v²_j (j odd) = average of inputs (j, j+1),
	// v²_j (j even) = coefficient of inputs (j−1, j).
	layers[1] = make([]cdag.NodeID, n)
	for j := 1; j <= n; j++ {
		var p1, p2 cdag.NodeID
		if j%2 == 1 {
			p1, p2 = layers[0][j-1], layers[0][j]
		} else {
			p1, p2 = layers[0][j-2], layers[0][j-1]
		}
		layers[1][j-1] = g.AddNode(wf(2, j), nodeName(2, j), p1, p2)
	}
	// S_{i+1} for 2 ≤ i ≤ d: |S_{i+1}| = |S_i|/2. Parents of v^{i+1}_J:
	// J odd → {v^i_{2J−1}, v^i_{2J+1}}; J even → {v^i_{2J−3}, v^i_{2J−1}}.
	// (These are the averages of layer i, which sit at odd indices.)
	for i := 2; i <= d; i++ {
		sz := len(layers[i-1]) / 2
		layers[i] = make([]cdag.NodeID, sz)
		for J := 1; J <= sz; J++ {
			var a, b int
			if J%2 == 1 {
				a, b = 2*J-1, 2*J+1
			} else {
				a, b = 2*J-3, 2*J-1
			}
			p1 := layers[i-1][a-1]
			p2 := layers[i-1][b-1]
			layers[i][J-1] = g.AddNode(wf(i+1, J), nodeName(i+1, J), p1, p2)
		}
	}
	dg := &Graph{G: g, N: n, D: d, Layers: layers}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dwt: internal construction error: %w", err)
	}
	return dg, nil
}

func nodeName(layer, j int) string {
	kind := "a"
	if j%2 == 0 {
		kind = "c"
	}
	return fmt.Sprintf("%s%d[%d]", kind, layer-1, j)
}

// NodeAt returns v^layer_j (1-based layer and index).
func (d *Graph) NodeAt(layer, j int) cdag.NodeID { return d.Layers[layer-1][j-1] }

// Roots returns the odd-index nodes of the final layer S_{d+1}: the
// roots of the independent binary trees of the pruned graph, in index
// order. PebbleDWT (Algorithm 1) iterates over exactly these.
func (d *Graph) Roots() []cdag.NodeID {
	last := d.Layers[d.D]
	out := make([]cdag.NodeID, 0, (len(last)+1)/2)
	for j := 1; j <= len(last); j += 2 {
		out = append(out, last[j-1])
	}
	return out
}

// Sibling returns the pruned sibling u = v^i_{j+1} of an odd-index
// non-input node v = v^i_j — the coefficient sharing v's parents — or
// cdag.None for inputs and even-index nodes.
func (d *Graph) Sibling(v cdag.NodeID) cdag.NodeID {
	layer, j, ok := d.locate(v)
	if !ok || layer == 1 || j%2 == 0 {
		return cdag.None
	}
	return d.Layers[layer-1][j]
}

// locate returns the (layer, index) of a node, both 1-based.
func (d *Graph) locate(v cdag.NodeID) (layer, index int, ok bool) {
	// Node IDs are assigned layer by layer in index order, so locate
	// can binary-search by first-ID per layer; layers are small enough
	// that a linear scan over layers suffices.
	for i, l := range d.Layers {
		if len(l) == 0 {
			continue
		}
		first, last := l[0], l[len(l)-1]
		if v >= first && v <= last {
			return i + 1, int(v-first) + 1, true
		}
	}
	return 0, 0, false
}

// Layer returns the 1-based layer of node v.
func (d *Graph) Layer(v cdag.NodeID) int {
	layer, _, _ := d.locate(v)
	return layer
}

// Index returns the 1-based index of node v within its layer.
func (d *Graph) Index(v cdag.NodeID) int {
	_, j, _ := d.locate(v)
	return j
}

// PrunedNodes returns the node set removed by Lemma 3.2: every
// even-index node in layers i > 1 (all coefficient outputs).
func (d *Graph) PrunedNodes() map[cdag.NodeID]bool {
	out := map[cdag.NodeID]bool{}
	for i := 2; i <= d.D+1; i++ {
		l := d.Layers[i-1]
		for j := 2; j <= len(l); j += 2 {
			out[l[j-1]] = true
		}
	}
	return out
}

// Prune returns the pruned graph G′ of Lemma 3.2 — the disjoint
// union of binary trees obtained by deleting all even-index nodes in
// layers above S_1 — plus the old→new ID mapping.
func (d *Graph) Prune() (*cdag.Graph, []cdag.NodeID, error) {
	return d.G.Prune(d.PrunedNodes())
}

// CheckWeightAssumption verifies the hypothesis of Lemma 3.2: for
// every layer i > 1, even-index (coefficient) weights do not exceed
// odd-index (average) sibling weights. The optimum scheduler requires
// it; Equal and Double Accumulator configurations satisfy it.
func (d *Graph) CheckWeightAssumption() error {
	for i := 2; i <= d.D+1; i++ {
		l := d.Layers[i-1]
		for j := 1; j+1 <= len(l); j += 2 {
			wv := d.G.Weight(l[j-1])
			wu := d.G.Weight(l[j])
			if wu > wv {
				return fmt.Errorf("dwt: weight assumption violated at layer %d pair (%d,%d): coefficient weight %d > average weight %d", i, j, j+1, wu, wv)
			}
		}
	}
	return nil
}

// MaxLevel returns the largest admissible d for a given n: the number
// of times 2 divides n (the d* of Figure 6).
func MaxLevel(n int) int {
	d := 0
	for n > 0 && n%2 == 0 {
		n /= 2
		d++
	}
	return d
}
