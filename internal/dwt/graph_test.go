package dwt

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/wcfg"
)

func equalWeights(layer, index int) cdag.Weight { return 16 }

func buildOrFatal(t *testing.T, n, d int, wf WeightFunc) *Graph {
	t.Helper()
	g, err := Build(n, d, wf)
	if err != nil {
		t.Fatalf("Build(%d,%d): %v", n, d, err)
	}
	return g
}

func TestBuildRejectsBadParams(t *testing.T) {
	cases := []struct{ n, d int }{
		{0, 1}, {-4, 1}, {4, 0}, {3, 1}, {6, 2}, {4, 3}, {2, 2}, {5, 1},
	}
	for _, c := range cases {
		if _, err := Build(c.n, c.d, equalWeights); err == nil {
			t.Errorf("Build(%d,%d) should fail", c.n, c.d)
		}
	}
}

func TestBuildAcceptsNonPowerOfTwoMultiples(t *testing.T) {
	// n = k·2^d with k not a power of two is explicitly allowed.
	for _, c := range []struct{ n, d int }{{6, 1}, {12, 2}, {24, 3}, {80, 4}} {
		g := buildOrFatal(t, c.n, c.d, equalWeights)
		if err := g.G.Validate(); err != nil {
			t.Errorf("DWT(%d,%d): %v", c.n, c.d, err)
		}
	}
}

func TestDWT41Structure(t *testing.T) {
	// Figure 2a: DWT(4,1) — S1 and S2 with 4 nodes each.
	g := buildOrFatal(t, 4, 1, equalWeights)
	if got := g.G.Len(); got != 8 {
		t.Fatalf("node count = %d, want 8", got)
	}
	if len(g.Layers) != 2 || len(g.Layers[0]) != 4 || len(g.Layers[1]) != 4 {
		t.Fatalf("layer sizes wrong: %v", g.Layers)
	}
	// v²_1 and v²_2 share parents {v¹_1, v¹_2}; v²_3 and v²_4 share
	// parents {v¹_3, v¹_4}.
	for j := 1; j <= 4; j++ {
		v := g.NodeAt(2, j)
		ps := g.G.Parents(v)
		if len(ps) != 2 {
			t.Fatalf("v2_%d has %d parents", j, len(ps))
		}
		pair := (j + 1) / 2
		want1, want2 := g.NodeAt(1, 2*pair-1), g.NodeAt(1, 2*pair)
		if ps[0] != want1 || ps[1] != want2 {
			t.Errorf("v2_%d parents = %v, want {%d,%d}", j, ps, want1, want2)
		}
	}
	// All of S2 are sinks; all of S1 are sources.
	if got := len(g.G.Sources()); got != 4 {
		t.Errorf("sources = %d, want 4", got)
	}
	if got := len(g.G.Sinks()); got != 4 {
		t.Errorf("sinks = %d, want 4", got)
	}
}

func TestDWT42Structure(t *testing.T) {
	// Figure 2b: DWT(4,2) — layers of size 4, 4, 2.
	g := buildOrFatal(t, 4, 2, equalWeights)
	if got := g.G.Len(); got != 10 {
		t.Fatalf("node count = %d, want 10", got)
	}
	// v³_1 (avg) and v³_2 (coeff) both have parents {v²_1, v²_3}.
	for j := 1; j <= 2; j++ {
		ps := g.G.Parents(g.NodeAt(3, j))
		if len(ps) != 2 || ps[0] != g.NodeAt(2, 1) || ps[1] != g.NodeAt(2, 3) {
			t.Errorf("v3_%d parents = %v, want {v2_1, v2_3}", j, ps)
		}
	}
	// Sinks: v²_2, v²_4 (coefficients) and v³_1, v³_2.
	sinks := g.G.Sinks()
	want := []cdag.NodeID{g.NodeAt(2, 2), g.NodeAt(2, 4), g.NodeAt(3, 1), g.NodeAt(3, 2)}
	if len(sinks) != len(want) {
		t.Fatalf("sinks = %v, want %v", sinks, want)
	}
	for i := range want {
		if sinks[i] != want[i] {
			t.Fatalf("sinks = %v, want %v", sinks, want)
		}
	}
}

func TestDWT83StructureMatchesFigure3(t *testing.T) {
	g := buildOrFatal(t, 8, 3, equalWeights)
	// Layers: 8, 8, 4, 2.
	sizes := []int{8, 8, 4, 2}
	for i, want := range sizes {
		if got := len(g.Layers[i]); got != want {
			t.Errorf("|S%d| = %d, want %d", i+1, got, want)
		}
	}
	// v³_3, v³_4 have parents {v²_5, v²_7} (Figure 3a).
	for j := 3; j <= 4; j++ {
		ps := g.G.Parents(g.NodeAt(3, j))
		if ps[0] != g.NodeAt(2, 5) || ps[1] != g.NodeAt(2, 7) {
			t.Errorf("v3_%d parents = %v, want {v2_5, v2_7}", j, ps)
		}
	}
	// v⁴_1, v⁴_2 have parents {v³_1, v³_3}.
	for j := 1; j <= 2; j++ {
		ps := g.G.Parents(g.NodeAt(4, j))
		if ps[0] != g.NodeAt(3, 1) || ps[1] != g.NodeAt(3, 3) {
			t.Errorf("v4_%d parents = %v, want {v3_1, v3_3}", j, ps)
		}
	}
}

func TestLayerSizes(t *testing.T) {
	g := buildOrFatal(t, 256, 8, equalWeights)
	want := []int{256, 256, 128, 64, 32, 16, 8, 4, 2}
	if len(g.Layers) != len(want) {
		t.Fatalf("layer count = %d, want %d", len(g.Layers), len(want))
	}
	total := 0
	for i, w := range want {
		if len(g.Layers[i]) != w {
			t.Errorf("|S%d| = %d, want %d", i+1, len(g.Layers[i]), w)
		}
		total += w
	}
	if g.G.Len() != total {
		t.Errorf("total nodes = %d, want %d", g.G.Len(), total)
	}
}

func TestPruneFormsBinaryTrees(t *testing.T) {
	// Figure 3b: pruning DWT(8,3) leaves a single binary tree with
	// 8 leaves and 7 internal nodes.
	g := buildOrFatal(t, 8, 3, equalWeights)
	pruned, mapping, err := g.Prune()
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if got := pruned.Len(); got != 15 {
		t.Fatalf("pruned node count = %d, want 15", got)
	}
	if !pruned.IsTree() {
		t.Error("pruned DWT(8,3) should be a single binary tree")
	}
	if pruned.MaxInDegree() != 2 {
		t.Errorf("pruned max in-degree = %d, want 2", pruned.MaxInDegree())
	}
	// Mapping marks removed nodes as None.
	removed := 0
	for _, m := range mapping {
		if m == cdag.None {
			removed++
		}
	}
	if removed != 22-15 {
		t.Errorf("removed = %d, want 7", removed)
	}
}

func TestPruneDWT41TwoTrees(t *testing.T) {
	g := buildOrFatal(t, 4, 1, equalWeights)
	pruned, _, err := g.Prune()
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if pruned.Len() != 6 {
		t.Fatalf("pruned node count = %d, want 6", pruned.Len())
	}
	if pruned.IsTree() {
		t.Error("pruned DWT(4,1) has two independent trees; IsTree should be false")
	}
	if got := len(g.Roots()); got != 2 {
		t.Errorf("roots = %d, want 2", got)
	}
}

func TestSibling(t *testing.T) {
	g := buildOrFatal(t, 8, 3, equalWeights)
	if u := g.Sibling(g.NodeAt(2, 1)); u != g.NodeAt(2, 2) {
		t.Errorf("sibling(v2_1) = %d, want v2_2", u)
	}
	if u := g.Sibling(g.NodeAt(4, 1)); u != g.NodeAt(4, 2) {
		t.Errorf("sibling(v4_1) = %d, want v4_2", u)
	}
	if u := g.Sibling(g.NodeAt(2, 2)); u != cdag.None {
		t.Errorf("sibling of even node = %d, want None", u)
	}
	if u := g.Sibling(g.NodeAt(1, 1)); u != cdag.None {
		t.Errorf("sibling of input = %d, want None", u)
	}
}

func TestLocate(t *testing.T) {
	g := buildOrFatal(t, 16, 4, equalWeights)
	for i := 1; i <= 5; i++ {
		for j := 1; j <= len(g.Layers[i-1]); j++ {
			v := g.NodeAt(i, j)
			if g.Layer(v) != i || g.Index(v) != j {
				t.Fatalf("locate(v%d_%d) = (%d,%d)", i, j, g.Layer(v), g.Index(v))
			}
		}
	}
}

func TestWeightAssumption(t *testing.T) {
	g := buildOrFatal(t, 4, 1, ConfigWeights(wcfg.DoubleAccumulator(16)))
	if err := g.CheckWeightAssumption(); err != nil {
		t.Errorf("DA weights should satisfy the assumption: %v", err)
	}
	// Make a coefficient heavier than its average sibling.
	g.G.SetWeight(g.NodeAt(2, 2), 64)
	if err := g.CheckWeightAssumption(); err == nil {
		t.Error("expected weight assumption violation")
	}
}

func TestMaxLevel(t *testing.T) {
	cases := map[int]int{2: 1, 4: 2, 6: 1, 8: 3, 12: 2, 256: 8, 192: 6, 100: 2}
	for n, want := range cases {
		if got := MaxLevel(n); got != want {
			t.Errorf("MaxLevel(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestConfigWeights(t *testing.T) {
	da := ConfigWeights(wcfg.DoubleAccumulator(16))
	if da(1, 3) != 16 {
		t.Errorf("input weight = %d, want 16", da(1, 3))
	}
	if da(2, 1) != 32 {
		t.Errorf("node weight = %d, want 32", da(2, 1))
	}
}
