package dwt

import (
	"context"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
)

// Session answers repeated CostCtx/ScheduleCtx budget queries against
// one warm Scheduler: the P(v, b) memo (Lemma 3.3) shares all
// sub-budget cells across budget queries, so sweeping k budgets costs
// roughly one cold solve at the largest budget. Queries reuse one
// guard.Checker, so a warm query allocates nothing for its guard when
// lim carries no deadline.
//
// No-poison semantics carry over from the Scheduler: an aborted query
// never memoizes partial results, so the session stays reusable. A
// Session is not safe for concurrent use.
type Session struct {
	s  *Scheduler
	ck guard.Checker
}

// NewSession builds a session (and its warm Scheduler) for the graph.
func NewSession(dg *Graph) (*Session, error) {
	s, err := NewScheduler(dg)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Scheduler returns the warm scheduler, for plain (unguarded) queries.
func (se *Session) Scheduler() *Scheduler { return se.s }

// Graph returns the underlying DWT graph.
func (se *Session) Graph() *Graph { return se.s.dg }

// TakeCounts returns and resets the session's cumulative solver
// observation counters (memo hits, entries) for metric export.
func (se *Session) TakeCounts() guard.Counts { return se.ck.TakeCounts() }

// Patch applies weight deltas to the underlying graph, invalidating
// only the memo cells whose subtree contains a changed node
// (Scheduler.SetWeights); every other cell stays warm, so the next
// query re-solves just the dirtied cone. On error (bad node, bad
// weight, Lemma 3.2 violated) the graph and memo are unchanged. The
// invalidated/reused cell counts feed the session's observation
// counters (wrbpg_solver_cells_* after the next flush) and are also
// returned for the caller's own accounting.
func (se *Session) Patch(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	invalidated, reused, err = se.s.SetWeights(ds)
	if err != nil {
		return 0, 0, err
	}
	se.ck.NoteInvalidation(invalidated, reused)
	return invalidated, reused, nil
}

func (se *Session) begin(ctx context.Context, lim guard.Limits) {
	se.ck.Reset(ctx, lim)
	se.s.ck = &se.ck
}

func (se *Session) end() {
	se.s.ck = nil
	se.ck.Release()
}

// CostCtx returns MinCost(b) under the session's warm memo (Inf when
// no schedule exists). The error is non-nil only when the query was
// aborted; resource limits in lim are per query, not cumulative.
func (se *Session) CostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	se.begin(ctx, lim)
	defer se.end()
	c := se.s.MinCost(b)
	if err := se.ck.Err(); err != nil {
		return 0, fmt.Errorf("dwt: %w", err)
	}
	return c, nil
}

// ScheduleCtx returns Schedule(b) under the session's warm memo, with
// CostCtx's abort semantics.
func (se *Session) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	se.begin(ctx, lim)
	defer se.end()
	sched, err := se.s.Schedule(b)
	if cerr := se.ck.Err(); cerr != nil {
		return nil, fmt.Errorf("dwt: %w", cerr)
	}
	return sched, err
}
