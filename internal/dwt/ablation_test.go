package dwt

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// TestNoMemoMatchesMemoized: the ablation recursion returns exactly
// the DP's answers (it only trades time, never value).
func TestNoMemoMatchesMemoized(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, nd := range []struct{ n, d int }{{4, 2}, {8, 3}, {16, 4}} {
			g, s := newSched(t, nd.n, nd.d, ConfigWeights(cfg))
			minB := core.MinExistenceBudget(g.G)
			for b := minB; b <= minB+cdag.Weight(6*cfg.WordBits); b += cdag.Weight(cfg.WordBits) {
				if got, want := MinCostNoMemo(g, b), s.MinCost(b); got != want {
					t.Errorf("%s DWT(%d,%d) b=%d: no-memo %d != memo %d", cfg.Name, nd.n, nd.d, b, got, want)
				}
			}
		}
	}
}

func TestNoMemoInfeasible(t *testing.T) {
	g := buildOrFatal(t, 8, 3, equalWeights)
	if MinCostNoMemo(g, core.MinExistenceBudget(g.G)-1) < Inf {
		t.Error("infeasible budget should be Inf")
	}
	// Violated weight assumption is also rejected.
	g.G.SetWeight(g.NodeAt(2, 2), 1000)
	if MinCostNoMemo(g, 10000) < Inf {
		t.Error("violated assumption should be Inf")
	}
}
