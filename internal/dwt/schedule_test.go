package dwt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/exact"
	"wrbpg/internal/wcfg"
)

func newSched(t *testing.T, n, d int, wf WeightFunc) (*Graph, *Scheduler) {
	t.Helper()
	g := buildOrFatal(t, n, d, wf)
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	return g, s
}

// TestScheduleSimulatesToMinCost is the central contract: for a range
// of budgets, the generated schedule passes the rule-checking
// simulator and its measured cost equals the DP's MinCost.
func TestScheduleSimulatesToMinCost(t *testing.T) {
	configs := []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)}
	for _, cfg := range configs {
		for _, nd := range []struct{ n, d int }{{4, 1}, {4, 2}, {8, 3}, {16, 4}, {32, 5}, {64, 3}} {
			g, s := newSched(t, nd.n, nd.d, ConfigWeights(cfg))
			minB := core.MinExistenceBudget(g.G)
			for b := minB; b <= minB+cdag.Weight(12*cfg.WordBits); b += cdag.Weight(cfg.WordBits) {
				want := s.MinCost(b)
				if want >= Inf {
					t.Fatalf("%s DWT(%d,%d) b=%d: infeasible above existence bound", cfg.Name, nd.n, nd.d, b)
				}
				sched, err := s.Schedule(b)
				if err != nil {
					t.Fatalf("%s DWT(%d,%d) b=%d: %v", cfg.Name, nd.n, nd.d, b, err)
				}
				stats, err := core.Simulate(g.G, b, sched)
				if err != nil {
					t.Fatalf("%s DWT(%d,%d) b=%d: simulate: %v", cfg.Name, nd.n, nd.d, b, err)
				}
				if stats.Cost != want {
					t.Fatalf("%s DWT(%d,%d) b=%d: simulated cost %d != DP cost %d", cfg.Name, nd.n, nd.d, b, stats.Cost, want)
				}
				if stats.PeakRedWeight > b {
					t.Fatalf("peak red %d exceeds budget %d", stats.PeakRedWeight, b)
				}
			}
		}
	}
}

// TestOptimalityAgainstExact certifies the DP against exhaustive
// state-space search on small instances.
func TestOptimalityAgainstExact(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(1), wcfg.DoubleAccumulator(1)} {
		// 4^|V| nominal states: instances above ~12 nodes make the
		// exact solver explode, so the certification set stays small.
		for _, nd := range []struct{ n, d int }{{4, 1}, {4, 2}} {
			g, s := newSched(t, nd.n, nd.d, ConfigWeights(cfg))
			minB := core.MinExistenceBudget(g.G)
			for b := minB; b <= minB+4; b++ {
				res, err := exact.Solve(g.G, b)
				if err != nil {
					t.Fatalf("exact DWT(%d,%d) b=%d: %v", nd.n, nd.d, b, err)
				}
				if got := s.MinCost(b); got != res.Cost {
					t.Errorf("%s DWT(%d,%d) b=%d: DP=%d exact=%d", cfg.Name, nd.n, nd.d, b, got, res.Cost)
				}
			}
		}
	}
}

// TestOptimalityRandomWeightsQuick drives the exact comparison with
// random integer weights satisfying the Lemma 3.2 assumption.
func TestOptimalityRandomWeightsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random weights in [1,4]; coefficients get the min of the
		// pair to satisfy the assumption.
		inputW := make([]cdag.Weight, 4)
		for i := range inputW {
			inputW[i] = cdag.Weight(1 + r.Intn(4))
		}
		avgW := cdag.Weight(1 + r.Intn(4))
		coefW := cdag.Weight(1 + r.Intn(int(avgW)))
		wf := func(layer, index int) cdag.Weight {
			if layer == 1 {
				return inputW[(index-1)%len(inputW)]
			}
			if index%2 == 1 {
				return avgW
			}
			return coefW
		}
		g, err := Build(4, 2, wf)
		if err != nil {
			return false
		}
		s, err := NewScheduler(g)
		if err != nil {
			return false
		}
		minB := core.MinExistenceBudget(g.G)
		b := minB + cdag.Weight(r.Intn(5))
		res, err := exact.Solve(g.G, b)
		if err != nil {
			return false
		}
		if s.MinCost(b) != res.Cost {
			t.Logf("seed=%d b=%d DP=%d exact=%d", seed, b, s.MinCost(b), res.Cost)
			return false
		}
		// The generated schedule must realize the cost.
		sched, err := s.Schedule(b)
		if err != nil {
			return false
		}
		stats, err := core.Simulate(g.G, b, sched)
		return err == nil && stats.Cost == res.Cost
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMinCostMonotone checks the property the binary search relies on:
// more budget never increases the optimal cost.
func TestMinCostMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfgs := []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)}
		cfg := cfgs[r.Intn(2)]
		_, s := newSched(t, 16, 4, ConfigWeights(cfg))
		minB := core.MinExistenceBudget(s.dg.G)
		prev := s.MinCost(minB)
		for b := minB + 16; b <= minB+320; b += 16 {
			cur := s.MinCost(b)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestTable1DWTAnchors reproduces the DWT optimum rows of Table 1:
// minimum fast memory of 10 words (Equal) and 18 words (DA) for
// DWT(256,8).
func TestTable1DWTAnchors(t *testing.T) {
	cases := []struct {
		cfg   wcfg.Config
		words int
	}{
		{wcfg.Equal(16), 10},
		{wcfg.DoubleAccumulator(16), 18},
	}
	for _, c := range cases {
		_, s := newSched(t, 256, 8, ConfigWeights(c.cfg))
		got, err := s.MinMemory(16)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if int(got/16) != c.words {
			t.Errorf("%s DWT(256,8) min memory = %d words, want %d", c.cfg.Name, got/16, c.words)
		}
	}
}

// TestAlgorithmicLowerBounds checks the Fig. 5 anchor values.
func TestAlgorithmicLowerBounds(t *testing.T) {
	g, _ := newSched(t, 256, 8, ConfigWeights(wcfg.Equal(16)))
	if lb := core.LowerBound(g.G); lb != 8192 {
		t.Errorf("Equal DWT(256,8) LB = %d, want 8192", lb)
	}
	g2, _ := newSched(t, 256, 8, ConfigWeights(wcfg.DoubleAccumulator(16)))
	if lb := core.LowerBound(g2.G); lb != 12288 {
		t.Errorf("DA DWT(256,8) LB = %d, want 12288", lb)
	}
}

// TestLBAttainedAtMinMemory: at the reported minimum memory the
// schedule cost equals the lower bound, and one word less falls short.
func TestLBAttainedAtMinMemory(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		g, s := newSched(t, 64, 6, ConfigWeights(cfg))
		b, err := s.MinMemory(16)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		lb := core.LowerBound(g.G)
		if got := s.MinCost(b); got != lb {
			t.Errorf("%s: cost at min memory = %d, want LB %d", cfg.Name, got, lb)
		}
		if b-16 >= core.MinExistenceBudget(g.G) {
			if got := s.MinCost(b - 16); got == lb {
				t.Errorf("%s: cost at min memory − 1 word already equals LB; MinMemory not minimal", cfg.Name)
			}
		}
	}
}

// TestInfeasibleBudget: below the existence bound there is no valid
// schedule and MinCost reports Inf.
func TestInfeasibleBudget(t *testing.T) {
	g, s := newSched(t, 8, 3, ConfigWeights(wcfg.Equal(16)))
	b := core.MinExistenceBudget(g.G) - 1
	if got := s.MinCost(b); got < Inf {
		t.Errorf("MinCost(%d) = %d, want Inf", b, got)
	}
	if _, err := s.Schedule(b); err == nil {
		t.Error("Schedule below existence bound should fail")
	}
}

// TestScheduleMoveAccounting: every non-pruned non-source node is
// computed exactly once at generous budgets (no recomputation), and
// every sink is stored exactly once.
func TestScheduleMoveAccounting(t *testing.T) {
	g, s := newSched(t, 32, 5, ConfigWeights(wcfg.Equal(16)))
	b := g.G.TotalWeight()
	sched, err := s.Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	m2 := map[cdag.NodeID]int{}
	m3 := map[cdag.NodeID]int{}
	for _, mv := range sched {
		switch mv.Kind {
		case core.M2:
			m2[mv.Node]++
		case core.M3:
			m3[mv.Node]++
		}
	}
	for _, v := range g.G.Sinks() {
		if m2[v] != 1 {
			t.Errorf("sink %d stored %d times, want 1", v, m2[v])
		}
	}
	for v := 0; v < g.G.Len(); v++ {
		id := cdag.NodeID(v)
		if g.G.IsSource(id) {
			continue
		}
		if m3[id] != 1 {
			t.Errorf("node %d computed %d times at full budget, want 1", id, m3[id])
		}
	}
}

// TestSchedulerRejectsBadWeights: the Lemma 3.2 hypothesis is checked
// up front.
func TestSchedulerRejectsBadWeights(t *testing.T) {
	g := buildOrFatal(t, 4, 1, equalWeights)
	g.G.SetWeight(g.NodeAt(2, 2), 1000)
	if _, err := NewScheduler(g); err == nil {
		t.Error("expected weight-assumption error")
	}
}

// TestLargeBudgetCostEqualsLB: with the whole graph resident the
// optimum equals the algorithmic lower bound.
func TestLargeBudgetCostEqualsLB(t *testing.T) {
	for _, nd := range []struct{ n, d int }{{4, 1}, {16, 2}, {64, 6}, {256, 8}} {
		g, s := newSched(t, nd.n, nd.d, ConfigWeights(wcfg.Equal(16)))
		if got, want := s.MinCost(g.G.TotalWeight()), core.LowerBound(g.G); got != want {
			t.Errorf("DWT(%d,%d): cost=%d want LB=%d", nd.n, nd.d, got, want)
		}
	}
}

func BenchmarkScheduleDWT256(b *testing.B) {
	g, err := Build(256, 8, ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, _ := NewScheduler(g)
		if _, err := s.Schedule(160); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostSweepDWT256(b *testing.B) {
	g, err := Build(256, 8, ConfigWeights(wcfg.Equal(16)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, _ := NewScheduler(g)
		for budget := cdag.Weight(48); budget <= 8192; budget *= 2 {
			s.MinCost(budget)
		}
	}
}
