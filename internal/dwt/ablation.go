package dwt

import (
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// MinCostNoMemo recomputes the minimum schedule cost without
// memoization — the exponential recursion the DP of Theorem 3.5
// collapses. It exists purely for the ablation benchmark comparing
// the two; use Scheduler.MinCost for real work.
func MinCostNoMemo(dg *Graph, b cdag.Weight) cdag.Weight {
	if err := dg.CheckWeightAssumption(); err != nil {
		return Inf
	}
	if !core.ScheduleExists(dg.G, b) {
		return Inf
	}
	g := dg.G
	var p func(v cdag.NodeID, b cdag.Weight) cdag.Weight
	p = func(v cdag.NodeID, b cdag.Weight) cdag.Weight {
		if g.IsSource(v) {
			if g.Weight(v) <= b {
				return g.Weight(v)
			}
			return Inf
		}
		ps := g.Parents(v)
		p1, p2 := ps[0], ps[1]
		w1, w2 := g.Weight(p1), g.Weight(p2)
		if g.Weight(v)+w1+w2 > b {
			return Inf
		}
		add := func(a, c cdag.Weight) cdag.Weight {
			if a >= Inf || c >= Inf {
				return Inf
			}
			return a + c
		}
		best := add(p(p1, b), p(p2, b-w1))
		if c := add(p(p2, b), p(p1, b-w2)); c < best {
			best = c
		}
		if c := add(add(p(p1, b), p(p2, b)), 2*w1); c < best {
			best = c
		}
		if c := add(add(p(p2, b), p(p1, b)), 2*w2); c < best {
			best = c
		}
		return best
	}
	var total cdag.Weight
	for _, r := range dg.Roots() {
		c := p(r, b)
		if c >= Inf {
			return Inf
		}
		total += c + g.Weight(r)
	}
	for v := range dg.PrunedNodes() {
		total += g.Weight(v)
	}
	return total
}
