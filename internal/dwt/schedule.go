package dwt

import (
	"context"
	"fmt"
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/memdesign"
)

// Inf is the sentinel cost of an infeasible subproblem (the ∞ entries
// of Eq. 2). It is large enough that sums of Inf with node weights
// never overflow int64.
const Inf cdag.Weight = math.MaxInt64 / 4

// strategy identifies one of the four representative parent-scheduling
// strategies of Eq. 4. Keep strategies retain the first parent's red
// pebble while the second parent's subtree is computed under a reduced
// budget; spill strategies write the first parent to slow memory,
// compute the second at full budget, and reload.
type strategy int8

const (
	stratLeaf    strategy = iota - 1 // base case: M1 on an input
	stratKeepP1                      // (4): red p1, red p2 — P(p1,b) + P(p2,b−w1)
	stratKeepP2                      // (8): red p2, red p1 — P(p2,b) + P(p1,b−w2)
	stratSpillP1                     // (3): blue p1, red p2 — P(p1,b) + P(p2,b) + 2w1
	stratSpillP2                     // (7): blue p2, red p1 — P(p2,b) + P(p1,b) + 2w2
)

type entry struct {
	cost   cdag.Weight
	choice strategy
	valid  bool
}

// Scheduler computes minimum weighted WRBPG schedules for a DWT graph
// via the memoized dynamic program P(v, b) of Lemma 3.3 and generates
// the corresponding move sequences (Algorithm 1). A Scheduler caches
// subproblem solutions across budgets, so sweeping budgets on one
// graph reuses work.
//
// The memo is a per-node slice indexed by a dense budget index:
// distinct budgets get consecutive indices as they are first seen, so
// a P(v, b) cache hit is one small map probe and a slice load instead
// of two map lookups, with zero allocations.
type Scheduler struct {
	dg        *Graph
	budgetIdx map[cdag.Weight]int
	memo      [][]entry
	// roots and pruned cache Graph.Roots / Graph.PrunedNodes, so MinCost
	// iterates plain slices instead of allocating per call — required by
	// the zero-allocation warm query and patch paths.
	roots  []cdag.NodeID
	pruned []cdag.NodeID
	// live counts currently valid memo cells; SetWeights reports it as
	// the reused-cell count after an invalidation.
	live int64
	// mark/epoch/stack are the SetWeights cone-walk scratch: mark[v]
	// equal to the current epoch means v's row is already cleared in
	// this patch, so overlapping descendant cones are walked once.
	mark  []uint32
	epoch uint32
	stack []cdag.NodeID
	saved []cdag.Weight
	// ck, when non-nil, is the active cancellation/budget guard of a
	// *Ctx call. The DP checks it per cell and never memoizes results
	// computed after it trips, so an aborted solve cannot poison later
	// ones. nil (the default) costs one pointer test per cell.
	ck *guard.Checker
}

// NewScheduler validates the weight assumption of Lemma 3.2 and
// returns a scheduler for the graph.
func NewScheduler(dg *Graph) (*Scheduler, error) {
	if err := dg.CheckWeightAssumption(); err != nil {
		return nil, err
	}
	// Pruned (even-index, layer > 1) nodes in ID order, mirroring
	// Graph.PrunedNodes without its map.
	var pruned []cdag.NodeID
	for i := 2; i <= dg.D+1; i++ {
		l := dg.Layers[i-1]
		for j := 2; j <= len(l); j += 2 {
			pruned = append(pruned, l[j-1])
		}
	}
	return &Scheduler{
		dg:        dg,
		budgetIdx: map[cdag.Weight]int{},
		memo:      make([][]entry, dg.G.Len()),
		roots:     dg.Roots(),
		pruned:    pruned,
		mark:      make([]uint32, dg.G.Len()),
	}, nil
}

// SetWeights applies weight deltas to the graph and invalidates
// exactly the memo cells whose value can change: P(v, b) depends only
// on weights inside v's subtree (Lemma 3.3), so a change at u dirties
// the rows of u and its descendants and nothing else. Deltas are
// validated (positive weights, in-range nodes, the Lemma 3.2 weight
// assumption must still hold afterwards) and the graph is reverted
// unchanged on any error. It returns the number of cells cleared and
// the number surviving; rows keep their capacity, so re-solving after
// a patch allocates nothing in steady state.
func (s *Scheduler) SetWeights(ds []cdag.WeightDelta) (invalidated, reused int64, err error) {
	g := s.dg.G
	s.saved = s.saved[:0]
	applied := 0
	for _, d := range ds {
		var old cdag.Weight
		if int(d.Node) >= 0 && int(d.Node) < g.Len() {
			old = g.Weight(d.Node)
		}
		if err := g.TrySetWeight(d.Node, d.Weight); err != nil {
			s.revert(ds, applied)
			return 0, 0, fmt.Errorf("dwt: patch: %w", err)
		}
		s.saved = append(s.saved, old)
		applied++
	}
	if err := s.dg.CheckWeightAssumption(); err != nil {
		s.revert(ds, applied)
		return 0, 0, err
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: every stale mark now looks current
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	stack := s.stack[:0]
	for _, d := range ds {
		stack = append(stack, d.Node)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.mark[v] == s.epoch {
			continue
		}
		s.mark[v] = s.epoch
		row := s.memo[v]
		for i := range row {
			if row[i].valid {
				invalidated++
				row[i] = entry{}
			}
		}
		stack = append(stack, g.Children(v)...)
	}
	s.stack = stack
	s.live -= invalidated
	return invalidated, s.live, nil
}

// revert restores the first applied weights of a failed SetWeights, in
// reverse order so duplicate-node delta lists unwind correctly.
func (s *Scheduler) revert(ds []cdag.WeightDelta, applied int) {
	for j := applied - 1; j >= 0; j-- {
		s.dg.G.SetWeight(ds[j].Node, s.saved[j])
	}
}

// cell returns a pointer to the memo slot for (v, b), growing the
// node's row on first touch of a new budget index.
func (s *Scheduler) cell(v cdag.NodeID, b cdag.Weight) *entry {
	bi, ok := s.budgetIdx[b]
	if !ok {
		bi = len(s.budgetIdx)
		s.budgetIdx[b] = bi
	}
	row := s.memo[v]
	if bi >= len(row) {
		grown := make([]entry, bi+1)
		copy(grown, row)
		s.memo[v] = grown
		row = grown
	}
	return &row[bi]
}

// store memoizes a freshly computed cell unless the guard has tripped
// (poisoned partial results must never persist) or the memo budget is
// exhausted (which trips the guard for the rest of the solve).
func (s *Scheduler) store(v cdag.NodeID, b cdag.Weight, e entry) {
	if s.ck != nil && (s.ck.Err() != nil || s.ck.AddMemo(1) != nil) {
		return
	}
	*s.cell(v, b) = e
	s.live++
}

// p computes P(v, b): the minimum weighted cost to place a red pebble
// on v, starting from blue pebbles on the subtree's inputs, using at
// most b red weight inside the subtree, and leaving no other red
// pebbles behind. Results are memoized per (v, b).
func (s *Scheduler) p(v cdag.NodeID, b cdag.Weight) entry {
	if c := s.cell(v, b); c.valid {
		s.ck.NoteHit()
		return *c
	}
	// Cancellation checkpoint on the cold path only: warm hits return
	// above untouched, and an all-warm solve finishes in microseconds.
	if s.ck != nil && s.ck.Tick() != nil {
		return entry{cost: Inf}
	}
	g := s.dg.G
	var e entry
	if g.IsSource(v) {
		if g.Weight(v) <= b {
			e = entry{cost: g.Weight(v), choice: stratLeaf, valid: true}
		} else {
			e = entry{cost: Inf, choice: stratLeaf, valid: true}
		}
		s.store(v, b, e)
		return e
	}
	ps := g.Parents(v)
	p1, p2 := ps[0], ps[1]
	w1, w2 := g.Weight(p1), g.Weight(p2)
	if g.Weight(v)+w1+w2 > b {
		e = entry{cost: Inf, choice: stratKeepP1, valid: true}
		s.store(v, b, e)
		return e
	}
	// Keep strategies are evaluated first so that ties resolve to
	// them; spill strategies on source parents are strictly dominated
	// (see package tests), so the generator never has to write a blue
	// pebble onto a node that already has one.
	best := entry{cost: Inf, choice: stratKeepP1}
	consider := func(c cdag.Weight, st strategy) {
		if c < best.cost {
			best = entry{cost: c, choice: st}
		}
	}
	add := func(a, b cdag.Weight) cdag.Weight {
		if a >= Inf || b >= Inf {
			return Inf
		}
		return a + b
	}
	consider(add(s.p(p1, b).cost, s.p(p2, b-w1).cost), stratKeepP1)
	consider(add(s.p(p2, b).cost, s.p(p1, b-w2).cost), stratKeepP2)
	consider(add(add(s.p(p1, b).cost, s.p(p2, b).cost), 2*w1), stratSpillP1)
	consider(add(add(s.p(p2, b).cost, s.p(p1, b).cost), 2*w2), stratSpillP2)
	best.valid = true
	s.store(v, b, best)
	return best
}

// MinCost returns the cost of the minimum weighted schedule for the
// whole DWT graph under budget b, per Lemma 3.4: the DP cost of every
// pruned-tree root, plus the weights of all pruned (coefficient)
// nodes, plus the final blue-pebble placements on the roots. It
// returns Inf when no valid schedule exists under b.
func (s *Scheduler) MinCost(b cdag.Weight) cdag.Weight {
	if !core.ScheduleExists(s.dg.G, b) {
		return Inf
	}
	g := s.dg.G
	var total cdag.Weight
	for _, r := range s.roots {
		e := s.p(r, b)
		if e.cost >= Inf {
			return Inf
		}
		total += e.cost + g.Weight(r) // P(r, B) plus the root's own M2
	}
	for _, v := range s.pruned {
		total += g.Weight(v) // each pruned coefficient is written once
	}
	return total
}

// MinCostCtx is MinCost under a cancellation context and resource
// limits. It returns guard.ErrCanceled / guard.ErrDeadline /
// guard.ErrBudgetExceeded (wrapped) when the solve was aborted; the
// scheduler remains usable afterwards — partial results computed after
// the abort are never memoized.
func (s *Scheduler) MinCostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	defer func() { guard.CountersFor("dwt").Record(ck.TakeCounts()) }()
	s.ck = ck
	defer func() { s.ck = nil }()
	c := s.MinCost(b)
	if err := ck.Err(); err != nil {
		return 0, fmt.Errorf("dwt: %w", err)
	}
	return c, nil
}

// ScheduleCtx is Schedule under a cancellation context and resource
// limits, with the same abort semantics as MinCostCtx.
func (s *Scheduler) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	ck := guard.New(ctx, lim)
	defer ck.Release()
	defer func() { guard.CountersFor("dwt").Record(ck.TakeCounts()) }()
	s.ck = ck
	defer func() { s.ck = nil }()
	sched, err := s.Schedule(b)
	if cerr := ck.Err(); cerr != nil {
		return nil, fmt.Errorf("dwt: %w", cerr)
	}
	return sched, err
}

// Schedule generates a minimum weighted WRBPG schedule for budget b
// (Algorithm 1: PebbleDWT). The returned schedule always passes
// core.Simulate with exactly MinCost(b) weighted I/O.
func (s *Scheduler) Schedule(b cdag.Weight) (core.Schedule, error) {
	if c := s.MinCost(b); c >= Inf {
		return nil, fmt.Errorf("dwt: no valid schedule under budget %d (existence bound %d)", b, core.MinExistenceBudget(s.dg.G))
	}
	var sched core.Schedule
	for _, r := range s.roots {
		if err := s.gen(r, b, &sched); err != nil {
			return nil, err
		}
		sched = sched.Append(
			core.Move{Kind: core.M2, Node: r},
			core.Move{Kind: core.M4, Node: r},
		)
	}
	return sched, nil
}

// gen emits the moves realizing P(v, b), leaving a red pebble on v and
// no other red pebbles in v's subtree. For non-input v it also emits
// the sibling coefficient's compute/store (the C block of Algorithm 1,
// line 25), whose M2 cost is the pruned-node term of Lemma 3.4.
func (s *Scheduler) gen(v cdag.NodeID, b cdag.Weight, sched *core.Schedule) error {
	g := s.dg.G
	e := s.p(v, b)
	if e.cost >= Inf {
		return fmt.Errorf("dwt: internal error: generating infeasible subproblem for node %d at budget %d", v, b)
	}
	if e.choice == stratLeaf {
		*sched = sched.Append(core.Move{Kind: core.M1, Node: v})
		return nil
	}
	ps := g.Parents(v)
	p1, p2 := ps[0], ps[1]
	first, second := p1, p2
	if e.choice == stratKeepP2 || e.choice == stratSpillP2 {
		first, second = p2, p1
	}
	spill := e.choice == stratSpillP1 || e.choice == stratSpillP2

	if err := s.gen(first, b, sched); err != nil {
		return err
	}
	if spill {
		if g.IsSource(first) {
			// Strictly dominated by the keep strategy with swapped
			// order; selecting it would make the generated cost
			// diverge from P(v, b).
			return fmt.Errorf("dwt: internal error: spill strategy selected for source parent %d", first)
		}
		*sched = sched.Append(
			core.Move{Kind: core.M2, Node: first},
			core.Move{Kind: core.M4, Node: first},
		)
		if err := s.gen(second, b, sched); err != nil {
			return err
		}
		*sched = sched.Append(core.Move{Kind: core.M1, Node: first})
	} else {
		if err := s.gen(second, b-g.Weight(first), sched); err != nil {
			return err
		}
	}
	// Both parents now hold red pebbles. Emit the pruned sibling's
	// compute/store/delete, then compute v and release the parents.
	if u := s.dg.Sibling(v); u != cdag.None {
		*sched = sched.Append(
			core.Move{Kind: core.M3, Node: u},
			core.Move{Kind: core.M2, Node: u},
			core.Move{Kind: core.M4, Node: u},
		)
	}
	*sched = sched.Append(
		core.Move{Kind: core.M3, Node: v},
		core.Move{Kind: core.M4, Node: p1},
		core.Move{Kind: core.M4, Node: p2},
	)
	return nil
}

// MinMemory returns the minimum fast memory size of Definition 2.6:
// the smallest budget (searched on multiples of step) whose minimum
// schedule cost equals the algorithmic lower bound. MinCost is
// monotone non-increasing in the budget, so the binary search of
// memdesign.SearchMonotone applies, and it runs inside this
// scheduler's warm memo.
func (s *Scheduler) MinMemory(step cdag.Weight) (cdag.Weight, error) {
	g := s.dg.G
	lb := core.LowerBound(g)
	b, err := memdesign.SearchMonotone(s.MinCost, lb, core.MinExistenceBudget(g), g.TotalWeight(), step)
	if err != nil {
		return 0, fmt.Errorf("dwt: %w", err)
	}
	return b, nil
}
