package dwt

import (
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/ktree"
	"wrbpg/internal/memstate"
	"wrbpg/internal/wcfg"
)

// TestDWTMatchesKtreeOnPrunedTree cross-validates the two independent
// dynamic programs: the DWT scheduler's P(v,b) (Eq. 2) and the k-ary
// tree scheduler's Pt(v,b) (Eq. 6) must agree on the pruned DWT
// graph, whose components are exactly binary trees. The DWT total
// additionally pays one store per pruned coefficient and per root.
func TestDWTMatchesKtreeOnPrunedTree(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		for _, nd := range []struct{ n, d int }{{8, 3}, {16, 4}, {12, 2}, {32, 5}} {
			g, s := newSched(t, nd.n, nd.d, ConfigWeights(cfg))
			pruned, _, err := g.Prune()
			if err != nil {
				t.Fatal(err)
			}
			// Identify the pruned forest's components by repeated
			// tree extraction: component roots are the sinks.
			roots := pruned.Sinks()
			var prunedWeight cdag.Weight
			for v := range g.PrunedNodes() {
				prunedWeight += g.G.Weight(v)
			}
			minB := core.MinExistenceBudget(g.G)
			for b := minB; b <= minB+cdag.Weight(8*cfg.WordBits); b += cdag.Weight(cfg.WordBits) {
				// Sum the per-tree optima from the ktree DP.
				var ktreeTotal cdag.Weight
				feasible := true
				for _, r := range roots {
					sub := extractSubtree(t, pruned, r)
					ks := ktree.NewScheduler(sub)
					c := ks.MinCost(b)
					if c >= ktree.Inf {
						feasible = false
						break
					}
					ktreeTotal += c
				}
				if !feasible {
					continue
				}
				want := ktreeTotal + prunedWeight
				if got := s.MinCost(b); got != want {
					t.Errorf("%s DWT(%d,%d) b=%d: DWT DP %d != ktree DP %d + pruned %d",
						cfg.Name, nd.n, nd.d, b, got, ktreeTotal, prunedWeight)
				}
			}
		}
	}
}

// extractSubtree copies the ancestor closure of root r in g into a
// fresh graph and wraps it as a ktree.Tree.
func extractSubtree(t *testing.T, g *cdag.Graph, r cdag.NodeID) *ktree.Tree {
	t.Helper()
	keep := g.Ancestors(r)
	keep[r] = true
	sub := &cdag.Graph{}
	mapping := make(map[cdag.NodeID]cdag.NodeID)
	for v := 0; v < g.Len(); v++ {
		id := cdag.NodeID(v)
		if !keep[id] {
			continue
		}
		ps := g.Parents(id)
		mapped := make([]cdag.NodeID, len(ps))
		for i, p := range ps {
			mapped[i] = mapping[p]
		}
		mapping[id] = sub.AddNode(g.Weight(id), g.Name(id), mapped...)
	}
	tr, err := ktree.New(sub)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDWTMatchesMemstateOnPrunedTree: with empty memory states, the
// Pm recursion (Eq. 8) agrees with P (Eq. 2) too — all three DPs
// coincide where their domains overlap.
func TestDWTMatchesMemstateOnPrunedTree(t *testing.T) {
	g, s := newSched(t, 16, 4, ConfigWeights(wcfg.Equal(16)))
	pruned, _, err := g.Prune()
	if err != nil {
		t.Fatal(err)
	}
	roots := pruned.Sinks()
	if len(roots) != 1 {
		t.Fatalf("pruned DWT(16,4) should be a single tree, got %d roots", len(roots))
	}
	ms, err := memstate.NewScheduler(pruned)
	if err != nil {
		t.Fatal(err)
	}
	var prunedWeight cdag.Weight
	for v := range g.PrunedNodes() {
		prunedWeight += g.G.Weight(v)
	}
	minB := core.MinExistenceBudget(g.G)
	for b := minB; b <= minB+8*16; b += 16 {
		pm := ms.PlainCost(roots[0], b)
		if pm >= memstate.Inf {
			continue
		}
		// Pm excludes the final root store; the DWT total includes it
		// plus the pruned coefficients.
		want := pm + pruned.Weight(roots[0]) + prunedWeight
		if got := s.MinCost(b); got != want {
			t.Errorf("b=%d: DWT DP %d != memstate DP %d (+stores)", b, got, want)
		}
	}
}
