package dwt

import (
	"math/rand"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/wcfg"
)

// coldMinCost rebuilds the graph at g's current weights and solves
// cold — the reference an incrementally patched scheduler must match
// bit-identically.
func coldMinCost(t *testing.T, g *Graph, b cdag.Weight) cdag.Weight {
	t.Helper()
	g2, err := Build(g.N, g.D, ConfigWeights(wcfg.Equal(4)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.G.Len(); v++ {
		if err := g2.G.TrySetWeight(cdag.NodeID(v), g.G.Weight(cdag.NodeID(v))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewScheduler(g2)
	if err != nil {
		t.Fatal(err)
	}
	return s.MinCost(b)
}

// TestSetWeightsMatchesColdScheduler is the incremental-determinism
// property: a scheduler patched through a random delta sequence must
// answer every budget bit-identically to a cold scheduler built at the
// same weights. Deltas hit input-layer nodes (layer-1 weights are
// outside the Lemma 3.2 pair constraint, so every toggle is valid) in
// shuffled, duplicated order.
func TestSetWeightsMatchesColdScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := Build(16, 4, ConfigWeights(wcfg.Equal(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	srcs := g.G.Sources()
	for round := 0; round < 30; round++ {
		ds := make([]cdag.WeightDelta, 1+rng.Intn(3))
		for i := range ds {
			ds[i] = cdag.WeightDelta{
				Node:   srcs[rng.Intn(len(srcs))],
				Weight: 1 + cdag.Weight(rng.Intn(5)),
			}
		}
		inv, reused, err := s.SetWeights(ds)
		if err != nil {
			t.Fatalf("round %d: SetWeights(%v): %v", round, ds, err)
		}
		if inv < 0 || reused < 0 {
			t.Fatalf("round %d: negative counts inv=%d reused=%d", round, inv, reused)
		}
		min := core.MinExistenceBudget(g.G)
		for _, b := range []cdag.Weight{min - 1, min, min + 3, min + 9} {
			warm := s.MinCost(b)
			if cold := coldMinCost(t, g, b); warm != cold {
				t.Fatalf("round %d budget %d: warm %d != cold %d after %v", round, b, warm, cold, ds)
			}
		}
	}
}

// TestSetWeightsRevertsOnError: a failing delta list (bad weight, bad
// node, Lemma 3.2 violation) leaves the graph and the memo exactly as
// they were — the same queries answer identically before and after.
func TestSetWeightsRevertsOnError(t *testing.T) {
	g, err := Build(16, 4, ConfigWeights(wcfg.Equal(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	b := core.MinExistenceBudget(g.G) + 6
	want := s.MinCost(b)
	src := g.G.Sources()[0]
	// The coefficient (even-index) node of the first layer-2 pair: its
	// weight may not exceed the sibling average's (Lemma 3.2).
	coef := g.Layers[1][1]
	saved := make([]cdag.Weight, g.G.Len())
	for v := range saved {
		saved[v] = g.G.Weight(cdag.NodeID(v))
	}
	for _, bad := range [][]cdag.WeightDelta{
		{{Node: src, Weight: 0}},
		{{Node: -1, Weight: 2}},
		{{Node: cdag.NodeID(g.G.Len()), Weight: 2}},
		// First delta applies, second fails: the applied prefix must
		// unwind too.
		{{Node: src, Weight: 3}, {Node: coef, Weight: 1 << 40}},
	} {
		if _, _, err := s.SetWeights(bad); err == nil {
			t.Fatalf("SetWeights(%v): want error", bad)
		}
		for v := range saved {
			if w := g.G.Weight(cdag.NodeID(v)); w != saved[v] {
				t.Fatalf("after failed %v: node %d weight %d, want %d", bad, v, w, saved[v])
			}
		}
		if got := s.MinCost(b); got != want {
			t.Fatalf("after failed %v: MinCost %d, want %d", bad, got, want)
		}
	}
}

// TestSetWeightsInvalidationCounts: patching before any query
// invalidates nothing; re-querying then patching the same node again
// invalidates only the dirtied cone and reports the surviving cells.
func TestSetWeightsInvalidationCounts(t *testing.T) {
	g, err := Build(16, 4, ConfigWeights(wcfg.Equal(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.G.Sources()[0]
	if inv, reused, err := s.SetWeights([]cdag.WeightDelta{{Node: src, Weight: 5}}); err != nil || inv != 0 || reused != 0 {
		t.Fatalf("pre-query patch: inv=%d reused=%d err=%v, want 0,0,nil", inv, reused, err)
	}
	b := core.MinExistenceBudget(g.G) + 6
	s.MinCost(b)
	inv, reused, err := s.SetWeights([]cdag.WeightDelta{{Node: src, Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if inv <= 0 {
		t.Errorf("post-query patch invalidated %d cells, want > 0", inv)
	}
	if reused <= 0 {
		t.Errorf("post-query patch reports %d surviving cells, want > 0 (untouched subtrees stay warm)", reused)
	}
}
