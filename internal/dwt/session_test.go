package dwt

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/wcfg"
)

func sessionGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(16, 3, ConfigWeights(wcfg.Equal(8)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSessionMatchesOneShot: warm session answers over an out-of-order
// budget list must be identical to independent cold schedulers.
func TestSessionMatchesOneShot(t *testing.T) {
	g := sessionGraph(t)
	se, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	min := core.MinExistenceBudget(g.G)
	budgets := []cdag.Weight{min + 64, min, min + 24, min - 8, min + 64, min + 8}
	cold := func() *Scheduler {
		s, err := NewScheduler(g)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, b := range budgets {
		got, err := se.CostCtx(ctx, guard.Limits{}, b)
		if err != nil {
			t.Fatalf("CostCtx(%d): %v", b, err)
		}
		if want := cold().MinCost(b); got != want {
			t.Errorf("CostCtx(%d) = %d, cold MinCost = %d", b, got, want)
		}
		gs, gerr := se.ScheduleCtx(ctx, guard.Limits{}, b)
		ws, werr := cold().Schedule(b)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("ScheduleCtx(%d) err %v, cold Schedule err %v", b, gerr, werr)
		}
		if gerr == nil && !reflect.DeepEqual(gs, ws) {
			t.Errorf("ScheduleCtx(%d) differs from cold Schedule", b)
		}
	}
}

// TestSessionAbortThenReuse: a resource-limited query aborts typed,
// then the same session answers correctly — no memo poisoning.
func TestSessionAbortThenReuse(t *testing.T) {
	g := sessionGraph(t)
	se, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := core.MinExistenceBudget(g.G) + 32
	if _, err := se.CostCtx(ctx, guard.Limits{MaxMemoEntries: 1}, b); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("limited query: got %v, want ErrBudgetExceeded", err)
	}
	got, err := se.CostCtx(ctx, guard.Limits{}, b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.MinCost(b); got != want {
		t.Errorf("after abort, CostCtx(%d) = %d, want %d", b, got, want)
	}
}
