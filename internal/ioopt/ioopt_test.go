package ioopt

import (
	"testing"

	"wrbpg/internal/wcfg"
)

func TestTable1Anchors(t *testing.T) {
	eq := New(96, 120, wcfg.Equal(16))
	if got := eq.MinMemoryWords(); got != 193 {
		t.Errorf("Equal IOOpt UB min memory = %d words, want 193", got)
	}
	if got := eq.MinMemoryBits(); got != 3088 {
		t.Errorf("Equal IOOpt UB min memory = %d bits, want 3088", got)
	}
	da := New(96, 120, wcfg.DoubleAccumulator(16))
	if got := da.MinMemoryWords(); got != 289 {
		t.Errorf("DA IOOpt UB min memory = %d words, want 289", got)
	}
	if got := da.MinMemoryBits(); got != 4624 {
		t.Errorf("DA IOOpt UB min memory = %d bits, want 4624", got)
	}
}

func TestUpperBoundFloor(t *testing.T) {
	eq := New(96, 120, wcfg.Equal(16))
	// (mn + n)·16 + 2m·16
	if got, want := eq.UpperBoundFloor(), int64((96*120+120)*16+2*96*16); int64(got) != want {
		t.Errorf("Equal UB floor = %d, want %d", got, want)
	}
	if got := eq.UpperBound(10 * 96); got != eq.UpperBoundFloor() {
		t.Errorf("UB at large memory %d != floor %d", got, eq.UpperBoundFloor())
	}
}

func TestUpperBoundMonotone(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		m := New(96, 120, cfg)
		prev := Inf
		for s := 3; s <= 600; s++ {
			cur := m.UpperBound(s)
			if cur > prev {
				t.Fatalf("%s: UB increased at %d words", cfg.Name, s)
			}
			if cur < Inf {
				prev = cur
			}
		}
	}
}

func TestUpperBoundInfeasibleSmall(t *testing.T) {
	eq := New(96, 120, wcfg.Equal(16))
	if eq.UpperBound(2) < Inf {
		t.Error("2 words should be infeasible (no room for one accumulator)")
	}
	da := New(96, 120, wcfg.DoubleAccumulator(16))
	if da.UpperBound(96) < Inf {
		t.Error("DA: budgets below the extra allocation should be infeasible")
	}
}

func TestLowerBoundShape(t *testing.T) {
	eq := New(96, 120, wcfg.Equal(16))
	// Non-increasing in memory, converging to the compulsory traffic.
	prev := Inf
	for s := 1; s <= 200; s++ {
		cur := eq.LowerBound(s)
		if cur > prev {
			t.Fatalf("LB increased at %d words", s)
		}
		prev = cur
	}
	want := int64((96*120+120)*16 + 96*16)
	if got := eq.LowerBound(96); int64(got) != want {
		t.Errorf("LB at 96 words = %d, want compulsory %d", got, want)
	}
	if eq.LowerBound(0) < Inf {
		t.Error("LB at 0 words should be Inf")
	}
}

func TestDALowerBoundDoublesOutputs(t *testing.T) {
	eq := New(96, 120, wcfg.Equal(16))
	da := New(96, 120, wcfg.DoubleAccumulator(16))
	diff := da.LowerBound(500) - eq.LowerBound(500)
	if diff != 96*16 {
		t.Errorf("DA−Equal LB difference = %d, want one extra 16-bit word per output (%d)", diff, 96*16)
	}
}

// TestUBAboveLB: the model's upper bound dominates its lower bound at
// every feasible memory size.
func TestUBAboveLB(t *testing.T) {
	for _, cfg := range []wcfg.Config{wcfg.Equal(16), wcfg.DoubleAccumulator(16)} {
		m := New(96, 120, cfg)
		for s := 3; s <= 600; s++ {
			ub := m.UpperBound(s)
			if ub >= Inf {
				continue
			}
			if lb := m.LowerBound(s); ub < lb {
				t.Fatalf("%s: UB %d < LB %d at %d words", cfg.Name, ub, lb, s)
			}
		}
	}
}

// TestTilingBeatsIOOptUB: the paper's headline MVM comparison — the
// tiling minimum memory undercuts IOOpt's by 48.7% (Equal) and 56.4%
// (DA) for MVM(96,120).
func TestTilingBeatsIOOptUB(t *testing.T) {
	cases := []struct {
		cfg          wcfg.Config
		tilingWords  int
		reductionPct float64
	}{
		{wcfg.Equal(16), 99, 48.7},
		{wcfg.DoubleAccumulator(16), 126, 56.4},
	}
	for _, c := range cases {
		m := New(96, 120, c.cfg)
		io := m.MinMemoryWords()
		red := 100 * float64(io-c.tilingWords) / float64(io)
		if red < c.reductionPct-0.5 || red > c.reductionPct+0.5 {
			t.Errorf("%s: reduction = %.1f%%, want ≈%.1f%%", c.cfg.Name, red, c.reductionPct)
		}
	}
}
