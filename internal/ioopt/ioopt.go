// Package ioopt reproduces the IOOpt lower and upper bounds the paper
// compares against for MVM(m, n) (Section 5.2), including the
// weighted adjustments the authors apply for the Double Accumulator
// configuration.
//
// IOOpt itself (Olivry et al., PLDI'20/'21) is a polyhedral tool; the
// paper consumes only the bound *values* it produces for the MVM loop
// nest. This package implements those bounds in closed form with the
// modelling assumptions the paper states:
//
//   - The upper bound splits fast memory in a fixed ratio, giving
//     just under half — ⌊(S−1)/2⌋ words — to outputs; with h resident
//     output accumulators the vector is reloaded ⌈m/h⌉ times, and
//     every one of the m outputs is both read and written (unlike the
//     tiling scheduler, which writes each output exactly once).
//   - For Double Accumulator, the lower bound doubles the output
//     term; the upper bound double-weights all non-input/output
//     (accumulator) movements; and the memory budget is grown by one
//     extra accumulator allocation (m words), doubling the allocation
//     of the original split. These are exactly the adjustments of
//     Section 5.2, and they pin the Table 1 anchors: the upper bound
//     reaches its floor at 2m+1 = 193 words (Equal) and
//     3m+1 = 289 words (DA) for m = 96.
//   - The lower bound keeps the memory-independent mn + n + m term
//     and adds a capacity-driven vector-reload term that vanishes
//     once a row block fits, giving the decreasing-in-S shape of
//     Figure 5.
package ioopt

import (
	"math"

	"wrbpg/internal/cdag"
	"wrbpg/internal/wcfg"
)

// Inf marks budgets below the model's feasibility threshold.
const Inf cdag.Weight = math.MaxInt64 / 4

// Model evaluates IOOpt-style bounds for an MVM(m, n) workload under
// a weight configuration.
type Model struct {
	M, N int
	Cfg  wcfg.Config
}

// New returns a bound model for MVM(m, n).
func New(m, n int, cfg wcfg.Config) *Model {
	return &Model{M: m, N: n, Cfg: cfg}
}

// doubleAcc reports whether the configuration needs the paper's
// Double Accumulator adjustments.
func (md *Model) doubleAcc() bool { return md.Cfg.NodeWords > md.Cfg.InputWords }

// accHoldWords returns how many memory words one resident accumulator
// occupies under the model (1 for Equal; the DA case is handled by
// the extra-allocation budget shift instead, per Section 5.2).
func (md *Model) outHalfWords(sWords int) int {
	s := sWords
	if md.doubleAcc() {
		// The DA budget is grown by one extra accumulator allocation
		// of m words; equivalently, m words of the stated budget are
		// consumed by the doubled accumulator precision before the
		// original fixed split applies.
		s -= md.M
	}
	return (s - 1) / 2
}

// UpperBound returns IOOpt's achievable I/O (bits) at a fast memory
// of sWords words, or Inf when the model cannot place even one
// accumulator.
func (md *Model) UpperBound(sWords int) cdag.Weight {
	h := md.outHalfWords(sWords)
	if h < 1 {
		return Inf
	}
	if h > md.M {
		h = md.M
	}
	wi := md.Cfg.Input()
	wout := md.Cfg.Node()
	q := (md.M + h - 1) / h
	inputs := wi * cdag.Weight(md.M*md.N+md.N*q)
	// Every output is read once and written once.
	outputs := 2 * wout * cdag.Weight(md.M)
	return inputs + outputs
}

// UpperBoundFloor returns the asymptotic (large-memory) upper bound.
func (md *Model) UpperBoundFloor() cdag.Weight {
	wi := md.Cfg.Input()
	wout := md.Cfg.Node()
	return wi*cdag.Weight(md.M*md.N+md.N) + 2*wout*cdag.Weight(md.M)
}

// LowerBound returns IOOpt's I/O lower bound (bits) at sWords words:
// the compulsory traffic plus a vector-reload term for row blocks
// that do not fit.
func (md *Model) LowerBound(sWords int) cdag.Weight {
	if sWords < 1 {
		return Inf
	}
	wi := md.Cfg.Input()
	wout := md.Cfg.Node()
	base := wi*cdag.Weight(md.M*md.N+md.N) + wout*cdag.Weight(md.M)
	q := (md.M + sWords - 1) / sWords
	reloads := wi * cdag.Weight(md.N) * cdag.Weight(q-1)
	return base + reloads
}

// MinMemoryWords returns the smallest fast memory (in words) at which
// the upper bound reaches its floor — the quantity Table 1 reports
// for "IOOpt UB". For m = 96 this is 193 words (Equal) and 289 words
// (Double Accumulator).
func (md *Model) MinMemoryWords() int {
	floor := md.UpperBoundFloor()
	// UpperBound is non-increasing in sWords; the floor is reached as
	// soon as the output half holds all m accumulators.
	lo, hi := 3, 4*md.M+3
	for md.UpperBound(hi) != floor {
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if md.UpperBound(mid) == floor {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// MinMemoryBits returns MinMemoryWords in bits.
func (md *Model) MinMemoryBits() cdag.Weight {
	return cdag.Weight(md.MinMemoryWords()) * cdag.Weight(md.Cfg.WordBits)
}
