package solve

import (
	"context"
	"errors"
	"testing"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
	"wrbpg/internal/wcfg"
)

func TestDegradedServesBaseline(t *testing.T) {
	g, err := dwt.Build(16, 4, dwt.ConfigWeights(wcfg.Equal(8)))
	if err != nil {
		t.Fatal(err)
	}
	budget := core.MinExistenceBudget(g.G) + 64

	var hooked int
	restore := SetHook(func(name string, out Outcome, err error) { hooked++ })
	defer restore()

	out, err := Degraded(context.Background(), DWT(g), budget)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if !errors.Is(out.Err, ErrShed) {
		t.Fatalf("Outcome.Err = %v, want ErrShed", out.Err)
	}
	if got := FallbackReason(out.Err); got != "shed" {
		t.Fatalf("FallbackReason = %q, want shed", got)
	}
	if len(out.Schedule) == 0 {
		t.Fatal("empty schedule")
	}
	// The schedule passed Simulate: its stats describe a real run.
	if out.Stats.Cost <= 0 {
		t.Fatalf("Stats.Cost = %d, want positive", out.Stats.Cost)
	}
	if hooked != 1 {
		t.Fatalf("hook fired %d times, want 1", hooked)
	}
}

func TestDegradedCanceledContext(t *testing.T) {
	g, err := dwt.Build(16, 2, dwt.ConfigWeights(wcfg.Equal(8)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Degraded(ctx, DWT(g), core.MinExistenceBudget(g.G)+64)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
}

// TestRunPanicErrorValueDegrades: a *par.PanicError returned as a
// plain error from the optimal tier (a pool worker panicked and par
// recovered it) must degrade to the baseline exactly like a panic
// caught by Run's own recover — not surface as a hard failure.
func TestRunPanicErrorValueDegrades(t *testing.T) {
	g, err := dwt.Build(16, 2, dwt.ConfigWeights(wcfg.Equal(8)))
	if err != nil {
		t.Fatal(err)
	}
	p := DWT(g)
	p.Optimal = func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
		return nil, &par.PanicError{Index: 3, Value: "injected"}
	}
	budget := core.MinExistenceBudget(g.G) + 64
	out, err := Run(context.Background(), p, budget, guard.Limits{Deadline: time.Minute})
	if err != nil {
		t.Fatalf("Run failed instead of degrading: %v", err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if got := FallbackReason(out.Err); got != "panic" {
		t.Fatalf("FallbackReason = %q, want panic", got)
	}
}
