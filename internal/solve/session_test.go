package solve

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// sweepInstance is small enough for fast cold solves but large enough
// that a cold budget query passes the guard's 256-tick context poll —
// the cancellation tests below depend on that. With the
// budget-interval memo a cold query ticks roughly once per node, so
// the tree must clear 256 nodes (4-ary height 4 has 341).
func sweepInstance() Instance {
	return Instance{Family: FamilyKTree, K: 4, Height: 4, Cfg: equalCfg()}
}

// sweepBudgets is a deliberately out-of-order, repeating budget list
// spanning infeasible (below existence) through comfortable, exercising
// memo sharing in a non-monotone access pattern.
func sweepBudgets(s *Session) []cdag.Weight {
	min := s.MinExistence()
	return []cdag.Weight{
		min + 17, min + 3, min + 11, min - 1, min, min + 17,
		min + 7, min + 1, min + 11, min + 14,
	}
}

// TestSessionSweepMatchesColdSolves is the determinism property: a
// warm session answering a shuffled budget list must produce costs,
// feasibility and schedules identical to an independent cold session
// per budget. The memo only changes how much work a query performs,
// never its answer.
func TestSessionSweepMatchesColdSolves(t *testing.T) {
	inst := sweepInstance()
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	budgets := sweepBudgets(s)
	pts, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(budgets) {
		t.Fatalf("got %d points for %d budgets", len(pts), len(budgets))
	}
	for i, p := range pts {
		if p.Err != nil {
			t.Fatalf("budget %d: unexpected error %v", p.Budget, p.Err)
		}
		cold, err := NewSession(inst)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := cold.CostCtx(context.Background(), guard.Limits{}, budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost != wc || p.Feasible != (wc < infCost) {
			t.Errorf("budget %d: warm (cost=%d feasible=%v) vs cold cost=%d", p.Budget, p.Cost, p.Feasible, wc)
		}
		if !p.Feasible {
			continue
		}
		ws, err := s.ScheduleCtx(context.Background(), guard.Limits{}, budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		cs, err := cold.ScheduleCtx(context.Background(), guard.Limits{}, budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ws, cs) {
			t.Errorf("budget %d: warm schedule differs from cold", p.Budget)
		}
	}

	// SolveSweep (fresh session) must reproduce the same points.
	again, err := SolveSweep(context.Background(), inst, budgets, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, again) {
		t.Errorf("SolveSweep differs from Session.SweepCosts")
	}
}

// TestSessionSweepFaultInjection: an injected panic at one budget index
// surfaces as a *par.PanicError on that item only; siblings are
// unaffected, and with the hook removed the same session reproduces the
// clean answers — the fault never poisons warm state.
func TestSessionSweepFaultInjection(t *testing.T) {
	inst := sweepInstance()
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	budgets := sweepBudgets(s)
	const faultAt = 3
	restore := par.SetFaultHook(func(i int) {
		if i == faultAt {
			panic("injected sweep fault")
		}
	})
	pts, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	var pe *par.PanicError
	if pts[faultAt].Err == nil || !errors.As(pts[faultAt].Err, &pe) || pe.Index != faultAt {
		t.Fatalf("item %d: got %v, want *par.PanicError for that index", faultAt, pts[faultAt].Err)
	}
	clean, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range clean {
		if p.Err != nil {
			t.Fatalf("post-fault budget %d: %v", p.Budget, p.Err)
		}
		if i != faultAt && (p.Cost != pts[i].Cost || p.Feasible != pts[i].Feasible) {
			t.Errorf("budget %d changed across fault run: %+v vs %+v", p.Budget, pts[i], p)
		}
	}
	// And the post-fault answers match independent cold solves.
	cold, err := SolveSweep(context.Background(), inst, budgets, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, cold) {
		t.Errorf("post-fault session answers differ from cold solves")
	}
}

// TestSessionSweepCanceledMidSweep: a dead context aborts the sweep at
// its first expensive query, returning the partial prefix with
// guard.ErrCanceled — and the session stays fully usable afterwards
// (no-poison memoization).
func TestSessionSweepCanceledMidSweep(t *testing.T) {
	inst := sweepInstance()
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	budgets := sweepBudgets(s)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	pts, err := s.SweepCosts(canceled, guard.Limits{}, budgets, nil)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("sweep under dead context: err = %v, want ErrCanceled", err)
	}
	if len(pts) == 0 || len(pts) > len(budgets) || !errors.Is(pts[len(pts)-1].Err, guard.ErrCanceled) {
		t.Fatalf("expected a partial prefix ending in ErrCanceled, got %d points", len(pts))
	}
	after, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveSweep(context.Background(), inst, budgets, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, cold) {
		t.Errorf("session answers after cancellation differ from cold solves")
	}
}

// TestSessionSweepDeadlinePerItem: an impossible per-query deadline
// marks items with ErrDeadline while the sweep itself continues, and
// the session answers correctly once the limit is lifted.
func TestSessionSweepDeadlinePerItem(t *testing.T) {
	inst := sweepInstance()
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	budgets := sweepBudgets(s)
	pts, err := s.SweepCosts(context.Background(), guard.Limits{Deadline: 1}, budgets, nil)
	if err != nil {
		t.Fatalf("per-item deadline must not abort the sweep: %v", err)
	}
	if len(pts) != len(budgets) {
		t.Fatalf("got %d points for %d budgets", len(pts), len(budgets))
	}
	sawDeadline := false
	for _, p := range pts {
		if errors.Is(p.Err, guard.ErrDeadline) {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("1ns per-query deadline tripped no item")
	}
	after, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveSweep(context.Background(), inst, budgets, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, cold) {
		t.Errorf("session answers after deadline aborts differ from cold solves")
	}
}
