// Canonical instance representation: the cacheable identity of one
// solve. A serving system (cmd/wrbpgd) keys its schedule cache on
// Instance.Key, so two requests naming the same dataflow family, the
// same parameters, the same node weights and the same budget are the
// same content-addressed instance — regardless of field order in the
// request JSON, node display names, or which client sent them.

package solve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/ktree"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wcfg"
)

// Family names a dataflow family the solve facade can build and
// schedule from parameters alone (plus "cdag" for explicit graphs).
const (
	FamilyDWT   = "dwt"
	FamilyKTree = "ktree"
	FamilyMVM   = "mvm"
	FamilyCDAG  = "cdag"
)

// Instance is the canonical, cacheable description of one solvable
// instance: a graph family with its parameters and weight
// configuration (or an explicit CDAG), ready to be turned into a
// Problem. Instances are content-addressed via Key.
type Instance struct {
	// Family is one of the Family* constants.
	Family string
	// N is the DWT input count or the MVM column count.
	N int
	// D is the DWT level.
	D int
	// M is the MVM row count.
	M int
	// K and Height describe a full k-ary tree (ktree family).
	K, Height int
	// Cfg assigns the node weights for the parametric families; it is
	// ignored for FamilyCDAG, whose graph carries explicit weights.
	Cfg wcfg.Config
	// G is the explicit graph of a FamilyCDAG instance.
	G *cdag.Graph
	// Perm, when non-nil, records the relabeling Canonicalize applied:
	// Perm[requestID] = canonical ID. It is not part of the instance's
	// content-addressed identity (that is the point of canonicalizing);
	// serving layers keep it to remap canonical-space move lists back
	// into the requester's numbering.
	Perm []cdag.NodeID
	// Deltas, when non-empty, are per-node weight overrides applied on
	// top of the Cfg-derived weights — the canonical delta form of the
	// incremental re-solve engine. They must be in canonical order
	// (strictly increasing node IDs, see cdag.CanonicalDeltas) and are
	// part of the instance's content-addressed identity: Key and
	// ShapeKey cover them, BaseShapeKey does not. Only the incremental
	// families (dwt, ktree) accept deltas.
	Deltas []cdag.WeightDelta
}

// Validate checks the cheap structural requirements without building
// the graph: a known family, parameters in range, and for FamilyCDAG a
// present, valid graph. Family-specific constructors re-validate on
// Build; Validate exists so a server can reject malformed requests
// before paying for construction.
func (in *Instance) Validate() error {
	switch in.Family {
	case FamilyDWT:
		if in.D < 1 || in.N < 1 {
			return fmt.Errorf("solve: dwt requires n ≥ 1 and d ≥ 1, got n=%d d=%d", in.N, in.D)
		}
	case FamilyKTree:
		if in.K < 1 || in.K > ktree.MaxK || in.Height < 1 {
			return fmt.Errorf("solve: ktree requires 1 ≤ k ≤ %d and height ≥ 1, got k=%d height=%d",
				ktree.MaxK, in.K, in.Height)
		}
	case FamilyMVM:
		if in.M < 2 || in.N < 1 {
			return fmt.Errorf("solve: mvm requires m ≥ 2 and n ≥ 1, got m=%d n=%d", in.M, in.N)
		}
	case FamilyCDAG:
		if in.G == nil {
			return fmt.Errorf("solve: cdag instance has no graph")
		}
		if err := in.G.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("solve: unknown family %q (want dwt, ktree, mvm or cdag)", in.Family)
	}
	if in.Family != FamilyCDAG {
		if in.Cfg.WordBits < 1 || in.Cfg.InputWords < 1 || in.Cfg.NodeWords < 1 {
			return fmt.Errorf("solve: weight config must be positive, got word=%d input=%d node=%d",
				in.Cfg.WordBits, in.Cfg.InputWords, in.Cfg.NodeWords)
		}
	}
	if len(in.Deltas) > 0 {
		if in.Family != FamilyDWT && in.Family != FamilyKTree {
			return fmt.Errorf("solve: family %q does not support weight deltas (mvm weights are tied to the tiling config; cdag graphs carry explicit weights)", in.Family)
		}
		for i, d := range in.Deltas {
			if d.Node < 0 {
				return fmt.Errorf("solve: delta %d names negative node %d", i, d.Node)
			}
			if d.Weight < 1 {
				return fmt.Errorf("solve: delta %d sets non-positive weight %d on node %d", i, d.Weight, d.Node)
			}
			if i > 0 && d.Node <= in.Deltas[i-1].Node {
				return fmt.Errorf("solve: deltas not canonical at index %d: node %d after node %d (sort by node, merge duplicates — cdag.CanonicalDeltas)", i, d.Node, in.Deltas[i-1].Node)
			}
		}
	}
	return nil
}

// Label returns a human-readable name for reports, e.g.
// "Equal DWT(256,8)".
func (in *Instance) Label() string {
	switch in.Family {
	case FamilyDWT:
		return fmt.Sprintf("%s DWT(%d,%d)", in.Cfg.Name, in.N, in.D)
	case FamilyKTree:
		return fmt.Sprintf("%s KTree(k=%d,h=%d)", in.Cfg.Name, in.K, in.Height)
	case FamilyMVM:
		return fmt.Sprintf("%s MVM(%d,%d)", in.Cfg.Name, in.M, in.N)
	case FamilyCDAG:
		n := 0
		if in.G != nil {
			n = in.G.Len()
		}
		return fmt.Sprintf("CDAG(%d nodes)", n)
	default:
		return in.Family
	}
}

// Key returns the content-addressed cache key of the instance at the
// given budget: "<family>/<hex sha-256>" over a canonical binary
// serialization of family, parameters, weight configuration and
// budget. For FamilyCDAG the digest covers the full semantic content
// of the graph — per-node weights and parent lists — but not display
// names, which do not affect schedules.
func (in *Instance) Key(budget cdag.Weight) string {
	return in.digest(true, budget)
}

// ShapeKey returns the budget-free content-addressed identity of the
// instance: two instances share a ShapeKey exactly when they describe
// the same graph (including any weight deltas), so a warm solver
// session built for one answers budget queries for the other.
func (in *Instance) ShapeKey() string {
	return in.digest(false, 0)
}

// BaseShapeKey returns the ShapeKey of the instance with its weight
// deltas stripped — the identity of the *base* graph a patch applies
// to. Serving layers key their warm session pool on it, so every
// patched variant of one base instance lands on (and re-patches) the
// same pooled session instead of spawning one session per delta list.
// For a delta-free instance it equals ShapeKey.
func (in *Instance) BaseShapeKey() string {
	if len(in.Deltas) == 0 {
		return in.digest(false, 0)
	}
	base := *in
	base.Deltas = nil
	return base.digest(false, 0)
}

// digest implements Key and ShapeKey over one canonical serialization.
func (in *Instance) digest(withBudget bool, budget cdag.Weight) string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	h.Write([]byte(in.Family))
	h.Write([]byte{0})
	if withBudget {
		put(int64(budget))
	}
	if in.Family == FamilyCDAG && in.G != nil {
		put(int64(in.G.Len()))
		for v := 0; v < in.G.Len(); v++ {
			id := cdag.NodeID(v)
			put(in.G.Weight(id))
			ps := in.G.Parents(id)
			put(int64(len(ps)))
			for _, p := range ps {
				put(int64(p))
			}
		}
	} else {
		put(int64(in.N))
		put(int64(in.D))
		put(int64(in.M))
		put(int64(in.K))
		put(int64(in.Height))
		put(int64(in.Cfg.WordBits))
		put(int64(in.Cfg.InputWords))
		put(int64(in.Cfg.NodeWords))
	}
	// Delta-free instances write nothing here, so their keys are
	// byte-identical to the pre-delta serialization (cache continuity).
	if len(in.Deltas) > 0 {
		put(int64(len(in.Deltas)))
		for _, d := range in.Deltas {
			put(int64(d.Node))
			put(int64(d.Weight))
		}
	}
	return in.Family + "/" + hex.EncodeToString(h.Sum(nil))
}

// Build constructs the instance's graph and wraps it as a Problem for
// Run. The returned graph is the Problem's underlying CDAG (for lower
// bounds, existence checks and validation). Construction routes
// through the family constructors' error paths, so malformed
// parameters surface as errors, never panics.
func (in *Instance) Build() (Problem, *cdag.Graph, error) {
	if err := in.Validate(); err != nil {
		return Problem{}, nil, err
	}
	switch in.Family {
	case FamilyDWT:
		g, err := in.buildDWT()
		if err != nil {
			return Problem{}, nil, err
		}
		return DWT(g), g.G, nil
	case FamilyKTree:
		tr, err := in.buildKTree()
		if err != nil {
			return Problem{}, nil, err
		}
		return KTree(tr), tr.G, nil
	case FamilyMVM:
		g, err := in.buildMVM()
		if err != nil {
			return Problem{}, nil, err
		}
		return MVM(g), g.G, nil
	case FamilyCDAG:
		return AnytimeCDAG(in.G), in.G, nil
	}
	return Problem{}, nil, fmt.Errorf("solve: unknown family %q", in.Family)
}

// Canonicalize relabels a FamilyCDAG instance's graph into the
// structural canonical form (cdag.Canonical) and records the applied
// permutation in Perm, so isomorphic submissions of the same dataflow
// share one Key regardless of node order or names. Non-cdag families
// are already canonical (their identity is their parameters); calling
// it twice is harmless (the second relabeling is an identity composed
// into Perm).
func (in *Instance) Canonicalize() {
	if in.Family != FamilyCDAG || in.G == nil || in.G.Validate() != nil {
		return
	}
	canon, perm := cdag.Canonical(in.G)
	if in.Perm == nil {
		in.Perm = perm
	} else {
		composed := make([]cdag.NodeID, len(in.Perm))
		for orig, mid := range in.Perm {
			composed[orig] = perm[mid]
		}
		in.Perm = composed
	}
	in.G = canon
}

// RequestSchedule expresses a canonical-space schedule back in the
// requester's original node numbering — the inverse of the relabeling
// Canonicalize recorded in Perm. When no relabeling was applied the
// schedule is returned unchanged.
func (in *Instance) RequestSchedule(s core.Schedule) core.Schedule {
	if len(in.Perm) == 0 || s == nil {
		return s
	}
	inv := cdag.InversePerm(in.Perm)
	out := make(core.Schedule, len(s))
	for i, m := range s {
		out[i] = core.Move{Kind: m.Kind, Node: inv[m.Node]}
	}
	return out
}

// buildDWT, buildKTree and buildMVM construct the family-typed graphs;
// Build wraps them as Problems and NewSession as warm sessions. The
// incremental families apply any weight deltas after construction, so
// the cold path solves exactly the graph a patched session holds.
func (in *Instance) buildDWT() (*dwt.Graph, error) {
	g, err := dwt.Build(in.N, in.D, dwt.ConfigWeights(in.Cfg))
	if err != nil {
		return nil, err
	}
	if err := in.applyDeltas(g.G); err != nil {
		return nil, err
	}
	if len(in.Deltas) > 0 {
		// Deltas can break the Lemma 3.2 weight assumption the DWT
		// scheduler relies on; fail here, before any solver state exists.
		if err := g.CheckWeightAssumption(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (in *Instance) buildKTree() (*ktree.Tree, error) {
	tr, err := ktree.FullTree(in.K, in.Height, func(depth, index int) cdag.Weight {
		if depth == in.Height {
			return in.Cfg.Input()
		}
		return in.Cfg.Node()
	})
	if err != nil {
		return nil, err
	}
	if err := in.applyDeltas(tr.G); err != nil {
		return nil, err
	}
	return tr, nil
}

func (in *Instance) applyDeltas(g *cdag.Graph) error {
	for _, d := range in.Deltas {
		if err := g.TrySetWeight(d.Node, d.Weight); err != nil {
			return fmt.Errorf("solve: %w", err)
		}
	}
	return nil
}

func (in *Instance) buildMVM() (*mvm.Graph, error) {
	return mvm.Build(in.M, in.N, in.Cfg)
}
