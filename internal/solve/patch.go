// The incremental re-solve API of a warm Session. PatchTo moves the
// session's graph to a declarative target weight state (base weights
// plus a canonical delta list), computing the minimal set of actual
// weight writes against the current state, handing them to the family
// scheduler's dependency-tracked invalidation (dwt cone walk, ktree /
// memstate root chains), and leaving every untouched memo cell warm —
// so the next query re-solves a single-node change in a small fraction
// of a cold solve (BENCH_6.json, docs/PERFORMANCE.md §incremental).
//
// Budget changes need no patching at all: the budget-interval memos
// absorb them (a new budget is just another query point). Only weight
// changes invalidate.
//
// No-poison semantics compose: patching happens strictly between
// queries (never during one), an errored patch reverts the graph
// unchanged, and aborted queries after a patch never memoize — so a
// session interleaving patches, sweeps, faults and aborts never serves
// a stale or poisoned cell.

package solve

import (
	"fmt"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
)

// PatchStats reports what one PatchTo / Patch call did.
type PatchStats struct {
	// Changed is the number of node weights actually written: the
	// merge-diff of the requested target against the session's current
	// state (re-asserting the current weight writes nothing).
	Changed int
	// Invalidated is the number of memo cells (DP entries or budget
	// intervals) cleared because a changed node sits in their subtree.
	Invalidated int64
	// Reused is the number of memo cells that survived — the work the
	// incremental re-solve avoids redoing.
	Reused int64
}

// Deltas returns the session's current canonical delta state relative
// to its base instance (nil when the session sits at base weights).
// The returned slice is owned by the session; do not mutate it.
func (s *Session) Deltas() []cdag.WeightDelta { return s.cur }

// PatchTo moves the session to the target weight state: base instance
// weights overridden by target, which must be canonical (strictly
// increasing node IDs, positive weights — cdag.CanonicalDeltas).
// Nodes named in a previous patch but absent from target revert to
// their base weights, so PatchTo(nil) restores the base instance
// exactly. Only the diff against the current state is applied and
// invalidated; a PatchTo re-asserting the current state is O(|target|)
// and touches no memo cell. In steady state (capacities warmed, no
// new nodes patched) it allocates nothing.
//
// On error — malformed target, unknown node, a family constraint like
// the DWT weight assumption violated — the session is unchanged and
// remains usable.
func (s *Session) PatchTo(target []cdag.WeightDelta) (PatchStats, error) {
	n := s.g.Len()
	for i, d := range target {
		if d.Node < 0 || int(d.Node) >= n {
			return PatchStats{}, fmt.Errorf("solve: patch: node %d out of range [0,%d)", d.Node, n)
		}
		if d.Weight < 1 {
			return PatchStats{}, fmt.Errorf("solve: patch: non-positive weight %d on node %d", d.Weight, d.Node)
		}
		if i > 0 && d.Node <= target[i-1].Node {
			return PatchStats{}, fmt.Errorf("solve: patch: deltas not canonical at index %d: node %d after node %d", i, d.Node, target[i-1].Node)
		}
	}
	// Merge-diff current state against target: revert nodes that fell
	// out, write nodes whose effective weight differs.
	ch := s.scratch[:0]
	i, j := 0, 0
	for i < len(s.cur) || j < len(target) {
		switch {
		case j >= len(target) || (i < len(s.cur) && s.cur[i].Node < target[j].Node):
			if v := s.cur[i].Node; s.g.Weight(v) != s.baseW[v] {
				ch = append(ch, cdag.WeightDelta{Node: v, Weight: s.baseW[v]})
			}
			i++
		default:
			if d := target[j]; s.g.Weight(d.Node) != d.Weight {
				ch = append(ch, d)
			}
			if i < len(s.cur) && s.cur[i].Node == target[j].Node {
				i++
			}
			j++
		}
	}
	s.scratch = ch
	st := PatchStats{Changed: len(ch)}
	if len(ch) > 0 {
		if s.patch == nil {
			return PatchStats{}, fmt.Errorf("solve: family %q does not support incremental patching", s.inst.Family)
		}
		inv, reused, err := s.patch(ch)
		if err != nil {
			return PatchStats{}, err
		}
		st.Invalidated, st.Reused = inv, reused
		// Weights moved, so the cached bounds must too (both are
		// allocation-free single passes over the graph).
		s.lb = core.LowerBound(s.g)
		s.minExist = core.MinExistenceBudget(s.g)
		s.flush()
	}
	s.cur = append(s.cur[:0], target...)
	return st, nil
}

// Patch applies deltas on top of the session's *current* state (the
// imperative form of PatchTo): deltas are canonicalized, merged over
// the current delta state (new values win), and the result applied via
// PatchTo. Unlike PatchTo it never reverts nodes it does not name.
func (s *Session) Patch(ds []cdag.WeightDelta) (PatchStats, error) {
	cds := cdag.CanonicalDeltas(ds)
	if len(cds) == 0 {
		return PatchStats{}, nil
	}
	merged := s.merged[:0]
	i, j := 0, 0
	for i < len(s.cur) || j < len(cds) {
		switch {
		case j >= len(cds) || (i < len(s.cur) && s.cur[i].Node < cds[j].Node):
			merged = append(merged, s.cur[i])
			i++
		default:
			merged = append(merged, cds[j])
			if i < len(s.cur) && s.cur[i].Node == cds[j].Node {
				i++
			}
			j++
		}
	}
	s.merged = merged
	return s.PatchTo(merged)
}
