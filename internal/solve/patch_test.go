package solve

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"wrbpg/internal/cdag"
	"wrbpg/internal/dwt"
	"wrbpg/internal/guard"
	"wrbpg/internal/par"
)

// patchTargets builds a random canonical delta list over the
// instance's source nodes (always patch-safe for dwt and ktree).
func patchTargets(rng *rand.Rand, srcs []cdag.NodeID, maxLen int) []cdag.WeightDelta {
	ds := make([]cdag.WeightDelta, 1+rng.Intn(maxLen))
	for i := range ds {
		ds[i] = cdag.WeightDelta{
			Node:   srcs[rng.Intn(len(srcs))],
			Weight: 1 + cdag.Weight(rng.Intn(5)),
		}
	}
	return cdag.CanonicalDeltas(ds)
}

// TestSessionPatchToMatchesColdSolves is the end-to-end incremental
// determinism property at the facade layer: a session driven through a
// random PatchTo sequence must answer every sweep bit-identically to a
// cold session built directly from the patched instance — for both
// incremental families.
func TestSessionPatchToMatchesColdSolves(t *testing.T) {
	for _, inst := range []Instance{
		{Family: FamilyKTree, K: 4, Height: 3, Cfg: equalCfg()},
		{Family: FamilyDWT, N: 16, D: 4, Cfg: equalCfg()},
	} {
		t.Run(inst.Family, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s, err := NewSession(inst)
			if err != nil {
				t.Fatal(err)
			}
			srcs := s.Graph().Sources()
			for round := 0; round < 10; round++ {
				target := patchTargets(rng, srcs, 3)
				st, err := s.PatchTo(target)
				if err != nil {
					t.Fatalf("round %d: PatchTo(%v): %v", round, target, err)
				}
				if !reflect.DeepEqual(s.Deltas(), target) {
					t.Fatalf("round %d: Deltas() = %v, want %v", round, s.Deltas(), target)
				}
				patched := inst
				patched.Deltas = target
				cold, err := NewSession(patched)
				if err != nil {
					t.Fatal(err)
				}
				if s.LowerBound() != cold.LowerBound() || s.MinExistence() != cold.MinExistence() {
					t.Fatalf("round %d: bounds diverged: warm (lb=%d min=%d) cold (lb=%d min=%d)",
						round, s.LowerBound(), s.MinExistence(), cold.LowerBound(), cold.MinExistence())
				}
				min := s.MinExistence()
				budgets := []cdag.Weight{min - 1, min, min + 5, min + 11}
				warm, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := cold.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm, want) {
					t.Fatalf("round %d: patched sweep differs from cold instance sweep after %v", round, target)
				}
				if round > 0 && st.Changed == 0 && len(target) > 0 {
					// Not an invariant violation — the rng may re-assert the
					// same weights — but the diff must then be empty-safe.
					if st.Invalidated != 0 {
						t.Fatalf("round %d: no weights changed but %d cells invalidated", round, st.Invalidated)
					}
				}
			}
		})
	}
}

// TestSessionPatchToRevertsToBase: PatchTo(nil) restores the base
// instance exactly — weights, bounds, delta state and answers.
func TestSessionPatchToRevertsToBase(t *testing.T) {
	inst := Instance{Family: FamilyKTree, K: 3, Height: 3, Cfg: equalCfg()}
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []cdag.Weight{s.MinExistence() - 1, s.MinExistence(), s.MinExistence() + 6}
	base, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	node := s.Graph().Sources()[0]
	w := s.Graph().Weight(node)
	if _, err := s.PatchTo([]cdag.WeightDelta{{Node: node, Weight: w + 9}}); err != nil {
		t.Fatal(err)
	}
	st, err := s.PatchTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed != 1 {
		t.Fatalf("revert wrote %d weights, want 1", st.Changed)
	}
	if len(s.Deltas()) != 0 {
		t.Fatalf("after PatchTo(nil): Deltas() = %v, want empty", s.Deltas())
	}
	if got := s.Graph().Weight(node); got != w {
		t.Fatalf("after PatchTo(nil): node %d weight %d, want base %d", node, got, w)
	}
	again, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, base) {
		t.Errorf("answers after revert differ from the original base answers")
	}
	// Re-asserting the current (base) state is a no-op.
	if st, err := s.PatchTo(nil); err != nil || st.Changed != 0 {
		t.Fatalf("idempotent revert: stats=%+v err=%v, want zero stats", st, err)
	}
}

// TestSessionPatchMergesOverCurrentState: the imperative Patch form
// overlays deltas on the current state — prior patched nodes it does
// not name keep their patched weights, and the resulting delta state
// is the canonical merge.
func TestSessionPatchMergesOverCurrentState(t *testing.T) {
	inst := Instance{Family: FamilyKTree, K: 3, Height: 3, Cfg: equalCfg()}
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	srcs := s.Graph().Sources()
	a, b := srcs[0], srcs[1]
	if _, err := s.Patch([]cdag.WeightDelta{{Node: a, Weight: 7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Patch([]cdag.WeightDelta{{Node: b, Weight: 9}}); err != nil {
		t.Fatal(err)
	}
	want := cdag.CanonicalDeltas([]cdag.WeightDelta{{Node: a, Weight: 7}, {Node: b, Weight: 9}})
	if !reflect.DeepEqual(s.Deltas(), want) {
		t.Fatalf("Deltas() = %v, want merged %v", s.Deltas(), want)
	}
	if got := s.Graph().Weight(a); got != 7 {
		t.Fatalf("node %d weight %d after unrelated Patch, want 7 to survive", a, got)
	}
	// Patch with an empty list is a no-op, not a revert.
	if st, err := s.Patch(nil); err != nil || st.Changed != 0 {
		t.Fatalf("Patch(nil): stats=%+v err=%v, want no-op", st, err)
	}
	if len(s.Deltas()) != 2 {
		t.Fatalf("Patch(nil) cleared delta state: %v", s.Deltas())
	}
}

// TestSessionPatchErrorLeavesSessionUsable: a rejected patch (bad node,
// bad weight, non-canonical target) changes nothing — the session keeps
// answering from its pre-patch state.
func TestSessionPatchErrorLeavesSessionUsable(t *testing.T) {
	inst := Instance{Family: FamilyKTree, K: 3, Height: 3, Cfg: equalCfg()}
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	b := s.MinExistence() + 4
	want, err := s.CostCtx(context.Background(), guard.Limits{}, b)
	if err != nil {
		t.Fatal(err)
	}
	n := cdag.NodeID(s.Graph().Len())
	for _, bad := range [][]cdag.WeightDelta{
		{{Node: -1, Weight: 2}},
		{{Node: n, Weight: 2}},
		{{Node: 0, Weight: 0}},
		{{Node: 1, Weight: 3}, {Node: 1, Weight: 4}}, // not canonical
	} {
		if _, err := s.PatchTo(bad); err == nil {
			t.Fatalf("PatchTo(%v): want error", bad)
		}
		if len(s.Deltas()) != 0 {
			t.Fatalf("failed PatchTo(%v) left delta state %v", bad, s.Deltas())
		}
		got, err := s.CostCtx(context.Background(), guard.Limits{}, b)
		if err != nil || got != want {
			t.Fatalf("after failed PatchTo(%v): cost %d (err %v), want %d", bad, got, err, want)
		}
	}
}

// TestSessionPatchFaultInjection is the no-poison property of the full
// patch/sweep interleaving (ISSUE 6 satellite c): a panic injected
// mid-sweep between patches must surface on its item only, and every
// subsequent answer — at patched and at reverted weights — must match
// an independent cold solve. Run it under -race to also certify the
// fault path publishes no state unsynchronized.
func TestSessionPatchFaultInjection(t *testing.T) {
	inst := sweepInstance()
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	budgets := sweepBudgets(s)
	node := s.Graph().Sources()[0]
	target := []cdag.WeightDelta{{Node: node, Weight: s.Graph().Weight(node) + 3}}

	// Warm the base memos, then patch and sweep with a fault firing in
	// the middle of the post-patch sweep.
	if _, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PatchTo(target); err != nil {
		t.Fatal(err)
	}
	const faultAt = 4
	restore := par.SetFaultHook(func(i int) {
		if i == faultAt {
			panic("injected patch-sweep fault")
		}
	})
	pts, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	var pe *par.PanicError
	if pts[faultAt].Err == nil || !errors.As(pts[faultAt].Err, &pe) || pe.Index != faultAt {
		t.Fatalf("item %d: got %v, want *par.PanicError for that index", faultAt, pts[faultAt].Err)
	}

	// The faulted sweep must not have poisoned the patched state: a
	// clean re-sweep matches a cold session built at the patched
	// weights, item for item.
	patched := inst
	patched.Deltas = target
	cold, err := NewSession(patched)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, want) {
		t.Errorf("post-fault patched answers differ from cold solves at patched weights")
	}

	// And reverting to base after the fault restores the base answers.
	if _, err := s.PatchTo(nil); err != nil {
		t.Fatal(err)
	}
	after, err := s.SweepCosts(context.Background(), guard.Limits{}, budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := SolveSweep(context.Background(), inst, budgets, guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, base) {
		t.Errorf("post-fault reverted answers differ from cold base solves")
	}
}

// TestInstanceKeysCoverDeltas: Key and ShapeKey change with the delta
// list, BaseShapeKey strips it, and a delta-free instance keeps the
// pre-delta serialization (cache continuity across the schema change).
func TestInstanceKeysCoverDeltas(t *testing.T) {
	base := Instance{Family: FamilyKTree, K: 3, Height: 3, Cfg: equalCfg()}
	patched := base
	patched.Deltas = []cdag.WeightDelta{{Node: 5, Weight: 9}}
	if base.ShapeKey() != base.BaseShapeKey() {
		t.Error("delta-free instance: ShapeKey != BaseShapeKey")
	}
	if patched.ShapeKey() == base.ShapeKey() {
		t.Error("deltas did not change ShapeKey")
	}
	if patched.Key(10) == base.Key(10) {
		t.Error("deltas did not change Key")
	}
	if patched.BaseShapeKey() != base.ShapeKey() {
		t.Error("BaseShapeKey of a patched instance must equal the base's ShapeKey")
	}
	other := patched
	other.Deltas = []cdag.WeightDelta{{Node: 5, Weight: 10}}
	if other.ShapeKey() == patched.ShapeKey() {
		t.Error("different delta weights share a ShapeKey")
	}
}

// TestInstanceDeltaValidation: only the incremental families accept
// deltas, and the delta list must be canonical and positive.
func TestInstanceDeltaValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   Instance
	}{
		{"mvm", Instance{Family: FamilyMVM, M: 4, N: 4, Cfg: equalCfg(),
			Deltas: []cdag.WeightDelta{{Node: 0, Weight: 2}}}},
		{"negative-node", Instance{Family: FamilyKTree, K: 3, Height: 2, Cfg: equalCfg(),
			Deltas: []cdag.WeightDelta{{Node: -1, Weight: 2}}}},
		{"zero-weight", Instance{Family: FamilyKTree, K: 3, Height: 2, Cfg: equalCfg(),
			Deltas: []cdag.WeightDelta{{Node: 0, Weight: 0}}}},
		{"not-canonical", Instance{Family: FamilyKTree, K: 3, Height: 2, Cfg: equalCfg(),
			Deltas: []cdag.WeightDelta{{Node: 3, Weight: 2}, {Node: 3, Weight: 4}}}},
	} {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.in.Deltas)
		}
	}
	// A DWT delta violating the Lemma 3.2 weight assumption passes the
	// cheap Validate but must fail at build, before solver state exists.
	in := Instance{Family: FamilyDWT, N: 8, D: 3, Cfg: equalCfg()}
	dg, err := dwt.Build(in.N, in.D, dwt.ConfigWeights(in.Cfg))
	if err != nil {
		t.Fatal(err)
	}
	coef := dg.Layers[1][1]
	bad := in
	bad.Deltas = []cdag.WeightDelta{{Node: coef, Weight: 1 << 40}}
	if err := bad.Validate(); err != nil {
		t.Fatalf("Validate must not evaluate family constraints: %v", err)
	}
	if _, err := NewSession(bad); err == nil {
		t.Error("NewSession accepted a DWT delta violating the weight assumption")
	}
}
