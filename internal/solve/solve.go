// Package solve is the hardened entry point to the optimal schedulers:
// it runs a solver under a context, a deadline and resource limits,
// and degrades gracefully to the baseline scheduler (Section 5.1) when
// the optimal solve cannot finish — so a caller always gets a valid
// schedule within its budget envelope, or a typed error explaining why
// not even the baseline could deliver one.
//
// The degradation contract:
//
//   - The optimal solver runs in its own goroutine with a panic
//     recover, so a crashing or genuinely hung solver (one that
//     ignores its context) cannot take the caller down or block it
//     past the deadline.
//   - Deadline expiry, resource-budget exhaustion (guard.Limits),
//     solver panics and invalid optimal schedules degrade to the
//     layer-by-layer baseline (layered graphs) or the greedy
//     topological baseline (arbitrary CDAGs).
//   - Cancellation (guard.ErrCanceled) never degrades: the caller went
//     away, so no answer is wanted at all.
//   - Every returned schedule — optimal or fallback — has passed
//     core.Simulate under the requested budget.
package solve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"wrbpg/internal/anytime"
	"wrbpg/internal/baseline"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/exact"
	"wrbpg/internal/guard"
	"wrbpg/internal/ktree"
	"wrbpg/internal/mvm"
	"wrbpg/internal/obs"
	"wrbpg/internal/par"
)

// ErrPanic marks degradations caused by a recovered solver panic, so
// callers can classify the cause with errors.Is without string
// matching. It reads naturally inside the wrapping message
// ("optimal solver panicked: …").
var ErrPanic = errors.New("panicked")

// ErrShed marks a solve that never attempted the optimal tier: the
// serving layer's overload control shed it straight to the baseline
// scheduler (see Degraded). It reads naturally inside the wrapping
// message ("shed by overload control").
var ErrShed = errors.New("shed by overload control")

// FallbackReason classifies a degradation (or abort) cause into the
// label vocabulary shared by the wrbpg_fallback_total metric and the
// wire-level fallback_reason field: "canceled", "deadline", "budget",
// "panic", "shed" or "other" ("" for nil). It extends guard.AbortReason
// with the causes only this layer can see (the Run recover,
// *par.PanicError from sweep workers, and overload sheds).
func FallbackReason(err error) string {
	var pe *par.PanicError
	if errors.Is(err, ErrShed) {
		return "shed"
	}
	if errors.Is(err, ErrPanic) || errors.As(err, &pe) {
		return "panic"
	}
	return guard.AbortReason(err)
}

// Source identifies which scheduler produced an Outcome's schedule.
type Source int

const (
	// SourceOptimal marks a schedule from the dataflow-specific
	// optimal solver.
	SourceOptimal Source = iota
	// SourceFallback marks a schedule from the baseline scheduler,
	// produced because the optimal solve was aborted.
	SourceFallback
	// SourceAnytime marks a schedule from the anytime branch-and-bound
	// tier (family cdag): the best schedule found within the deadline,
	// never worse than the baseline, optimal only when
	// Outcome.Anytime.Complete is set.
	SourceAnytime
)

func (s Source) String() string {
	switch s {
	case SourceOptimal:
		return "optimal"
	case SourceFallback:
		return "fallback"
	case SourceAnytime:
		return "anytime"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Problem packages one schedulable instance: the underlying CDAG (for
// validation and the fallback), its layer structure when it has one,
// and the optimal solver to attempt first.
type Problem struct {
	// Name labels the instance in errors and degradation logs.
	Name string
	// G is the underlying CDAG; the fallback scheduler and the
	// core.Simulate validation run against it.
	G *cdag.Graph
	// Layers, when non-nil, routes the fallback through
	// baseline.LayerByLayer; nil falls back to baseline.Greedy.
	Layers [][]cdag.NodeID
	// Optimal attempts the optimal solve. It must honour ctx and lim
	// cooperatively (the *Ctx solver methods do); Run additionally
	// isolates it in a goroutine so even a non-cooperative solver
	// cannot hang the caller.
	Optimal func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error)
	// Anytime marks problems whose Optimal is the anytime tier: a
	// successful return is labeled SourceAnytime and carries the info
	// the closure deposited in the info holder.
	Anytime bool
	// info receives the anytime search report. The Optimal closure
	// writes it before returning; Run reads it only after receiving the
	// closure's result from its channel (a happens-before edge), and
	// never on the abandoned-goroutine path.
	info *AnytimeInfo
}

// AnytimeInfo reports the anytime search behind a SourceAnytime
// outcome: whether the search completed (frontier drained or the
// Proposition 2.4 bound met — the result is then optimal within the
// no-recompute space and safe to cache), the baseline seed it started
// from, and the search counters the serving layer feeds its
// wrbpg_anytime_* metrics from.
type AnytimeInfo struct {
	Complete     bool
	SeedCost     cdag.Weight
	Cost         cdag.Weight
	LowerBound   cdag.Weight
	Expanded     int64
	Pruned       int64
	Deduped      int64
	Improvements int64
	Workers      int
}

// Outcome reports one hardened solve.
type Outcome struct {
	// Source says which scheduler produced Schedule.
	Source Source
	// Schedule is the validated schedule.
	Schedule core.Schedule
	// Stats is the core.Simulate result for Schedule under Budget.
	Stats core.Stats
	// Budget is the fast-memory budget the solve ran under.
	Budget cdag.Weight
	// Err, when Source is SourceFallback, is the typed reason the
	// optimal solve was abandoned (the degradation event to log). It
	// is nil for SourceOptimal.
	Err error
	// Elapsed is the wall-clock time of the whole solve, fallback
	// included.
	Elapsed time.Duration
	// Anytime, set on SourceAnytime outcomes, reports the search behind
	// the schedule (completeness, seed, pruning counters).
	Anytime *AnytimeInfo
}

// optResult carries the optimal goroutine's answer.
type optResult struct {
	sched    core.Schedule
	err      error
	panicked bool
}

// Hook observes every completed Run: the problem name, its outcome
// (source, stats, elapsed time, degradation reason) and the terminal
// error, if any. Serving layers install one to feed their metrics
// (fallback counters, solve-latency histograms) without threading an
// observer through every call site.
type Hook func(name string, out Outcome, err error)

// hook holds the installed observer; nil means no observation.
var hook atomic.Pointer[Hook]

// SetHook installs h as the process-wide Run observer and returns a
// restore function reinstating the previous hook. h must be safe for
// concurrent use; SetHook(nil) clears the hook.
func SetHook(h Hook) (restore func()) {
	var prev *Hook
	if h == nil {
		prev = hook.Swap(nil)
	} else {
		prev = hook.Swap(&h)
	}
	return func() { hook.Store(prev) }
}

// Run attempts p.Optimal under ctx and lim and degrades to the
// baseline scheduler when the attempt times out, exhausts its resource
// limits, panics, or returns an invalid schedule. The fallback runs
// without limits (it is linear-time) but is still validated; if it
// fails too, Run returns an error wrapping both causes. Cancellation
// of ctx itself is returned as guard.ErrCanceled without fallback.
func Run(ctx context.Context, p Problem, budget cdag.Weight, lim guard.Limits) (Outcome, error) {
	out, err := run(ctx, p, budget, lim)
	if h := hook.Load(); h != nil {
		(*h)(p.Name, out, err)
	}
	return out, err
}

// run is Run without the observation hook.
func run(ctx context.Context, p Problem, budget cdag.Weight, lim guard.Limits) (Outcome, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	rctx := ctx
	cancel := context.CancelFunc(func() {})
	if lim.Deadline > 0 {
		rctx, cancel = context.WithTimeout(ctx, lim.Deadline)
	}
	defer cancel()

	// The optimal attempt, its validation and the fallback each get a
	// trace span when the caller's context carries a trace (nil no-op
	// spans otherwise). Spans parent under the caller's active span, not
	// under each other: they are sequential phases of one solve.
	octx, osp := obs.StartSpan(rctx, "solve.optimal")

	ch := make(chan optResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- optResult{
					err:      fmt.Errorf("solve: %s optimal solver %w: %v", p.Name, ErrPanic, r),
					panicked: true,
				}
			}
		}()
		sched, err := p.Optimal(octx, lim, budget)
		ch <- optResult{sched: sched, err: err}
	}()

	var optErr error
	degrade := false
	out := Outcome{Source: SourceOptimal, Budget: budget}
	select {
	case r := <-ch:
		optErr = r.err
		// A solver bug (panic) is degradable: the caller still wants an
		// answer, and the baseline is an independent code path.
		degrade = r.panicked
		if r.panicked {
			osp.SetAttr("panic", "true")
		} else if optErr != nil {
			osp.SetAttr("err", optErr.Error())
		}
		osp.End()
		if optErr == nil {
			_, ssp := obs.StartSpan(ctx, "solve.simulate")
			stats, err := core.Simulate(p.G, budget, r.sched)
			ssp.End()
			if err != nil {
				// An invalid "optimal" schedule is a solver bug, but the
				// caller still wants an answer: degrade and surface it.
				optErr = fmt.Errorf("solve: %s optimal schedule failed validation: %w", p.Name, err)
				degrade = true
			} else {
				out.Schedule = r.sched
				out.Stats = stats
				if p.Anytime {
					out.Source = SourceAnytime
					if p.info != nil {
						info := *p.info
						out.Anytime = &info
					}
				}
			}
		}
	case <-rctx.Done():
		// The solver did not return by the deadline — either it is
		// mid-unwind (cooperative) or genuinely hung (it ignores its
		// context). Abandon the goroutine; the buffered channel lets it
		// exit whenever it eventually finishes.
		optErr = guard.Wrap(rctx.Err())
		osp.SetAttr("err", optErr.Error())
		osp.SetAttr("abandoned", "true")
		osp.End()
	}

	if optErr == nil {
		out.Elapsed = time.Since(start)
		return out, nil
	}
	if !degrade {
		// A *par.PanicError returned as a plain error (a pool worker
		// panicked inside the optimal tier, already recovered by par) is
		// the same solver-bug case as the goroutine recover above: the
		// caller still wants an answer and the baseline is an independent
		// code path.
		degrade = guard.Degradable(optErr) || FallbackReason(optErr) == "panic"
	}
	if !degrade {
		return Outcome{Source: SourceOptimal, Budget: budget, Err: optErr, Elapsed: time.Since(start)},
			fmt.Errorf("solve: %s: %w", p.Name, optErr)
	}

	_, fsp := obs.StartSpan(ctx, "solve.fallback")
	fsp.SetAttr("reason", FallbackReason(optErr))
	sched, err := fallback(p, budget)
	if err != nil {
		fsp.End()
		return Outcome{Source: SourceFallback, Budget: budget, Err: optErr, Elapsed: time.Since(start)},
			fmt.Errorf("solve: %s: optimal failed (%v) and fallback failed: %w", p.Name, optErr, err)
	}
	stats, err := core.Simulate(p.G, budget, sched)
	fsp.End()
	if err != nil {
		return Outcome{Source: SourceFallback, Budget: budget, Err: optErr, Elapsed: time.Since(start)},
			fmt.Errorf("solve: %s: fallback schedule failed validation: %w", p.Name, err)
	}
	return Outcome{
		Source:   SourceFallback,
		Schedule: sched,
		Stats:    stats,
		Budget:   budget,
		Err:      optErr,
		Elapsed:  time.Since(start),
	}, nil
}

// fallback produces the baseline schedule for the problem.
func fallback(p Problem, budget cdag.Weight) (core.Schedule, error) {
	if p.Layers != nil {
		return baseline.LayerByLayer(p.G, p.Layers, budget)
	}
	return baseline.Greedy(p.G, budget)
}

// Degraded runs only the baseline scheduler — the overload answer of a
// serving layer whose admission control decided this request cannot
// afford (or must not touch) the optimal tier. The schedule is still
// Simulate-validated, the Outcome is flagged SourceFallback with
// Err = ErrShed (FallbackReason "shed"), and the observation hook
// fires exactly as for Run, so shed solves land in the same fallback
// metrics and logs as deadline degradations.
func Degraded(ctx context.Context, p Problem, budget cdag.Weight) (Outcome, error) {
	out, err := degraded(ctx, p, budget)
	if h := hook.Load(); h != nil {
		(*h)(p.Name, out, err)
	}
	return out, err
}

// degraded is Degraded without the observation hook.
func degraded(ctx context.Context, p Problem, budget cdag.Weight) (Outcome, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		werr := guard.Wrap(err)
		return Outcome{Source: SourceFallback, Budget: budget, Err: werr, Elapsed: time.Since(start)},
			fmt.Errorf("solve: %s: %w", p.Name, werr)
	}
	_, fsp := obs.StartSpan(ctx, "solve.fallback")
	fsp.SetAttr("reason", "shed")
	sched, err := fallback(p, budget)
	if err != nil {
		fsp.End()
		return Outcome{Source: SourceFallback, Budget: budget, Err: ErrShed, Elapsed: time.Since(start)},
			fmt.Errorf("solve: %s: %w and baseline failed: %v", p.Name, ErrShed, err)
	}
	stats, serr := core.Simulate(p.G, budget, sched)
	fsp.End()
	if serr != nil {
		return Outcome{Source: SourceFallback, Budget: budget, Err: ErrShed, Elapsed: time.Since(start)},
			fmt.Errorf("solve: %s: shed baseline schedule failed validation: %w", p.Name, serr)
	}
	return Outcome{
		Source:   SourceFallback,
		Schedule: sched,
		Stats:    stats,
		Budget:   budget,
		Err:      ErrShed,
		Elapsed:  time.Since(start),
	}, nil
}

// DWT wraps a DWT graph: the optimal solver is the P(v, b) dynamic
// program (Lemma 3.3) and the fallback is layer-by-layer over the
// graph's layer structure.
func DWT(g *dwt.Graph) Problem {
	return Problem{
		Name:   "dwt",
		G:      g.G,
		Layers: g.Layers,
		Optimal: func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
			s, err := dwt.NewScheduler(g)
			if err != nil {
				return nil, err
			}
			return s.ScheduleCtx(ctx, lim, budget)
		},
	}
}

// KTree wraps a k-ary tree: the optimal solver is the Pt(v, b) dynamic
// program (Eq. 6) and the fallback is the greedy topological baseline.
func KTree(t *ktree.Tree) Problem {
	return Problem{
		Name: "ktree",
		G:    t.G,
		Optimal: func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
			return ktree.NewScheduler(t).ScheduleCtx(ctx, lim, budget)
		},
	}
}

// MVM wraps an MVM graph: the optimal solver is the tile-configuration
// search of Section 4.3 and the fallback is the greedy topological
// baseline.
func MVM(g *mvm.Graph) Problem {
	return Problem{
		Name: "mvm",
		G:    g.G,
		Optimal: func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
			tc, _, err := g.SearchCtx(ctx, lim, budget)
			if err != nil {
				return nil, err
			}
			return g.TileSchedule(tc)
		},
	}
}

// anytimeMargin returns how much of the caller's deadline the anytime
// search leaves on the table so its incumbent wins the race against
// Run's watchdog: the search polls its deadline every few hundred
// expansions, so without a margin the watchdog (which fires at exactly
// lim.Deadline) would declare the solve late and serve the bare
// baseline instead of the strictly-better incumbent sitting in the
// returning goroutine.
func anytimeMargin(d time.Duration) time.Duration {
	m := d / 8
	if m > 25*time.Millisecond {
		m = 25 * time.Millisecond
	}
	if m < time.Millisecond {
		m = time.Millisecond
	}
	return m
}

// AnytimeCDAG wraps an arbitrary CDAG with the anytime tier: the
// "optimal" attempt is the parallel branch-and-bound search of
// internal/anytime, which returns the best schedule found within the
// deadline (never worse than the baselines it seeds from), and the
// fallback — reachable only through sheds and crashes, since the
// search itself degrades internally — is layer-by-layer over the
// graph's depth layers. A successful Run is labeled SourceAnytime and
// carries Outcome.Anytime. The returned Problem must not be Run
// concurrently with itself (the info holder is per-Problem).
func AnytimeCDAG(g *cdag.Graph) Problem {
	info := &AnytimeInfo{}
	return Problem{
		Name:    "cdag",
		G:       g,
		Layers:  anytime.DepthLayers(g),
		Anytime: true,
		info:    info,
		Optimal: func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
			if lim.Deadline > 0 {
				inner := lim.Deadline - anytimeMargin(lim.Deadline)
				if inner < time.Millisecond {
					inner = lim.Deadline / 2
				}
				lim.Deadline = inner
			}
			res, err := anytime.Search(ctx, g, budget, lim, anytime.Options{})
			if err != nil {
				return nil, err
			}
			*info = AnytimeInfo{
				Complete:     res.Complete,
				SeedCost:     res.SeedCost,
				Cost:         res.Cost,
				LowerBound:   res.LowerBound,
				Expanded:     res.Expanded,
				Pruned:       res.Pruned,
				Deduped:      res.Deduped,
				Improvements: res.Improvements,
				Workers:      res.Workers,
			}
			return res.Schedule, nil
		},
	}
}

// Exact wraps an arbitrary small CDAG: the optimal solver is the
// exhaustive Dijkstra search (bounded by lim.MaxStates) and the
// fallback is the greedy topological baseline.
func Exact(g *cdag.Graph) Problem {
	return Problem{
		Name: "exact",
		G:    g,
		Optimal: func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
			res, err := exact.SolveCtx(ctx, g, budget, lim)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		},
	}
}
