package solve

import (
	"context"
	"testing"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/guard"
	"wrbpg/internal/wcfg"
)

func equalCfg() wcfg.Config { return wcfg.Equal(16) }

// TestInstanceKeyStability: the key depends on exactly the semantic
// content — family, parameters, weights, budget — and nothing else.
func TestInstanceKeyStability(t *testing.T) {
	a := Instance{Family: FamilyDWT, N: 64, D: 4, Cfg: equalCfg()}
	b := Instance{Family: FamilyDWT, N: 64, D: 4, Cfg: equalCfg()}
	if a.Key(512) != b.Key(512) {
		t.Fatal("identical instances produced different keys")
	}
	if a.Key(512) == a.Key(513) {
		t.Fatal("budget must be part of the key")
	}
	c := Instance{Family: FamilyDWT, N: 64, D: 5, Cfg: equalCfg()}
	if a.Key(512) == c.Key(512) {
		t.Fatal("parameters must be part of the key")
	}
	d := Instance{Family: FamilyDWT, N: 64, D: 4, Cfg: wcfg.DoubleAccumulator(16)}
	if a.Key(512) == d.Key(512) {
		t.Fatal("weight configuration must be part of the key")
	}
	e := Instance{Family: FamilyMVM, M: 64, N: 4, Cfg: equalCfg()}
	if a.Key(512) == e.Key(512) {
		t.Fatal("family must be part of the key")
	}
}

// TestInstanceKeyCDAG: explicit graphs are content-addressed on
// weights and edges, not on display names.
func TestInstanceKeyCDAG(t *testing.T) {
	build := func(name string, w cdag.Weight) *cdag.Graph {
		g := &cdag.Graph{}
		a := g.AddNode(8, name)
		b := g.AddNode(8, "b")
		g.AddNode(w, "root", a, b)
		return g
	}
	base := Instance{Family: FamilyCDAG, G: build("a", 16)}
	renamed := Instance{Family: FamilyCDAG, G: build("zzz", 16)}
	if base.Key(64) != renamed.Key(64) {
		t.Fatal("node names must not affect the key")
	}
	reweighted := Instance{Family: FamilyCDAG, G: build("a", 24)}
	if base.Key(64) == reweighted.Key(64) {
		t.Fatal("node weights must affect the key")
	}
}

// TestInstanceValidate: malformed instances are rejected with errors,
// never panics.
func TestInstanceValidate(t *testing.T) {
	bad := []Instance{
		{Family: "nope", Cfg: equalCfg()},
		{Family: FamilyDWT, N: 0, D: 3, Cfg: equalCfg()},
		{Family: FamilyDWT, N: 64, D: 0, Cfg: equalCfg()},
		{Family: FamilyMVM, M: 0, N: 8, Cfg: equalCfg()}, // the MVM(0,n) case
		{Family: FamilyMVM, M: 1, N: 8, Cfg: equalCfg()},
		{Family: FamilyKTree, K: 0, Height: 2, Cfg: equalCfg()},
		{Family: FamilyKTree, K: 99, Height: 2, Cfg: equalCfg()},
		{Family: FamilyCDAG, G: nil},
		{Family: FamilyDWT, N: 64, D: 4, Cfg: wcfg.Config{WordBits: -8, InputWords: 1, NodeWords: 1}},
		{Family: FamilyDWT, N: 64, D: 4, Cfg: wcfg.Config{WordBits: 16, InputWords: 0, NodeWords: 1}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%s): Validate accepted a malformed instance", i, in.Family)
		}
		if _, _, err := in.Build(); err == nil {
			t.Errorf("case %d (%s): Build accepted a malformed instance", i, in.Family)
		}
	}
	// dwt n not a multiple of 2^d passes Validate's cheap checks but
	// must fail Build through the constructor's own validation.
	odd := Instance{Family: FamilyDWT, N: 65, D: 4, Cfg: equalCfg()}
	if _, _, err := odd.Build(); err == nil {
		t.Error("dwt n=65 d=4 must fail Build")
	}
}

// TestInstanceBuildAndSolve: every family builds into a Problem that
// solves optimally end to end.
func TestInstanceBuildAndSolve(t *testing.T) {
	cg := &cdag.Graph{}
	a := cg.AddNode(4, "a")
	b := cg.AddNode(4, "b")
	cg.AddNode(8, "root", a, b)

	cases := []Instance{
		{Family: FamilyDWT, N: 16, D: 4, Cfg: equalCfg()},
		{Family: FamilyKTree, K: 2, Height: 3, Cfg: equalCfg()},
		{Family: FamilyMVM, M: 4, N: 6, Cfg: equalCfg()},
		{Family: FamilyCDAG, G: cg},
	}
	for _, in := range cases {
		p, g, err := in.Build()
		if err != nil {
			t.Fatalf("%s: %v", in.Family, err)
		}
		if g == nil || p.G != g {
			t.Fatalf("%s: Problem graph mismatch", in.Family)
		}
		budget := core.MinExistenceBudget(g) + 64
		out, err := Run(context.Background(), p, budget, guard.Limits{Deadline: time.Minute})
		if err != nil {
			t.Fatalf("%s: %v", in.Family, err)
		}
		// cdag routes through the anytime tier; on a graph this small the
		// search drains its frontier, so Complete certifies the answer.
		if in.Family == FamilyCDAG {
			if out.Source != SourceAnytime {
				t.Fatalf("%s: Source = %v, want anytime", in.Family, out.Source)
			}
			if out.Anytime == nil || !out.Anytime.Complete {
				t.Fatalf("%s: tiny anytime search did not report Complete (%+v)", in.Family, out.Anytime)
			}
		} else if out.Source != SourceOptimal {
			t.Fatalf("%s: Source = %v, want optimal", in.Family, out.Source)
		}
		if _, err := core.Simulate(g, budget, out.Schedule); err != nil {
			t.Fatalf("%s: schedule invalid: %v", in.Family, err)
		}
		if in.Label() == "" {
			t.Fatalf("%s: empty label", in.Family)
		}
	}
}

// TestSetHook: the installed hook observes outcomes and restore
// reinstates the previous state.
func TestSetHook(t *testing.T) {
	var seen []string
	restore := SetHook(func(name string, out Outcome, err error) {
		seen = append(seen, name+":"+out.Source.String())
	})
	defer restore()

	in := Instance{Family: FamilyDWT, N: 16, D: 4, Cfg: equalCfg()}
	p, g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	budget := core.MinExistenceBudget(g) + 64
	if _, err := Run(context.Background(), p, budget, guard.Limits{Deadline: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "dwt:optimal" {
		t.Fatalf("hook observed %v, want [dwt:optimal]", seen)
	}
	restore()
	if _, err := Run(context.Background(), p, budget, guard.Limits{Deadline: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatal("hook fired after restore")
	}
}
