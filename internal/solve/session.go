// Warm multi-budget sessions over the family solvers. One Session owns
// one instance's warm solver state (the DP memo tables, the tile-search
// memo) and answers repeated budget queries against it: the DP
// recurrences share all sub-budget cells across budget queries, so a
// sweep over k budgets costs roughly one cold solve at the largest
// budget instead of k cold solves (BENCH_4.json, docs/PERFORMANCE.md).
//
// Sessions trade Run's goroutine isolation for warm state: queries run
// cooperatively on the caller's goroutine under guard checkpoints, with
// panics recovered per budget during sweeps. They are not safe for
// concurrent use — serving layers serialize access per session
// (internal/serve's session pool).

package solve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"wrbpg/internal/anytime"
	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/guard"
	"wrbpg/internal/ktree"
	"wrbpg/internal/mvm"
	"wrbpg/internal/par"
)

// infCost is the shared infeasibility threshold: every family solver
// uses math.MaxInt64/4 as its Inf sentinel, so any cost at or above it
// means "no schedule exists under this budget".
const infCost cdag.Weight = math.MaxInt64 / 4

// CostPoint is one budget's answer in a sweep.
type CostPoint struct {
	// Budget is the queried fast-memory budget.
	Budget cdag.Weight
	// Cost is the optimal weighted I/O under Budget; it is the family's
	// Inf sentinel (≥ infCost) when Feasible is false.
	Cost cdag.Weight
	// Feasible reports whether any schedule exists under Budget.
	Feasible bool
	// Err, when non-nil, is the typed reason this budget's query was
	// aborted (guard.ErrDeadline, guard.ErrCanceled, a *par.PanicError,
	// …); Cost and Feasible are meaningless then. Other budgets in the
	// same sweep are unaffected unless the whole sweep was canceled.
	Err error
}

// Session is a persistent warm solver for one instance, answering
// repeated cost/schedule queries across budgets. Create with
// NewSession; it implements memdesign.CostQuerier.
type Session struct {
	inst     Instance
	label    string
	g        *cdag.Graph
	lb       cdag.Weight
	minExist cdag.Weight
	cost     func(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error)
	sched    func(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error)
	// fc/takeCounts export the family session's solver-progress counters
	// (memo hits, cells, splits) into the obs registry. Public queries
	// flush per call; SweepCosts flushes once per sweep, keeping the
	// warm-sweep hot path at a couple of atomic adds total. Nil for
	// FamilyCDAG, where anytime.Search flushes internally.
	fc         *guard.FamilyCounters
	takeCounts func() guard.Counts
	// patch, for the incremental families (dwt, ktree), applies weight
	// deltas to the family session with dependency-tracked invalidation;
	// baseW snapshots the base instance's weights so PatchTo can revert
	// nodes that fall out of the target delta list; cur is the canonical
	// delta state the session currently sits at; scratch/merged are
	// retained merge buffers keeping the steady-state patch path
	// allocation-free.
	patch   func(ds []cdag.WeightDelta) (invalidated, reused int64, err error)
	baseW   []cdag.Weight
	cur     []cdag.WeightDelta
	scratch []cdag.WeightDelta
	merged  []cdag.WeightDelta
}

// flush records the accumulated solver counts since the last flush.
func (s *Session) flush() {
	if s.takeCounts != nil {
		s.fc.Record(s.takeCounts())
	}
}

// NewSession builds the instance's graph once and wraps the family
// solver's warm session around it. For FamilyCDAG there is no reusable
// memo, so every budget query is a cold (but guarded) anytime search —
// the Session still provides the uniform surface.
//
// For the incremental families the *base* graph (deltas stripped) is
// built first and any instance deltas are then applied through PatchTo,
// so a session constructed from a patched instance and a base session
// patched afterwards are in identical states.
func NewSession(inst Instance) (*Session, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	s := &Session{inst: inst, label: inst.Label()}
	base := inst
	base.Deltas = nil
	switch inst.Family {
	case FamilyDWT:
		g, err := base.buildDWT()
		if err != nil {
			return nil, err
		}
		se, err := dwt.NewSession(g)
		if err != nil {
			return nil, err
		}
		s.g = g.G
		s.cost = se.CostCtx
		s.sched = se.ScheduleCtx
		s.fc = guard.CountersFor("dwt")
		s.takeCounts = se.TakeCounts
		s.patch = se.Patch
	case FamilyKTree:
		tr, err := base.buildKTree()
		if err != nil {
			return nil, err
		}
		se := ktree.NewSession(tr)
		s.g = tr.G
		s.cost = se.CostCtx
		s.sched = se.ScheduleCtx
		s.fc = guard.CountersFor("ktree")
		s.takeCounts = se.TakeCounts
		s.patch = se.Patch
	case FamilyMVM:
		g, err := inst.buildMVM()
		if err != nil {
			return nil, err
		}
		se := mvm.NewSession(g)
		s.g = g.G
		s.cost = se.CostCtx
		s.sched = se.ScheduleCtx
		s.fc = guard.CountersFor("mvm")
		s.takeCounts = se.TakeCounts
	case FamilyCDAG:
		// The general-DAG tier: every budget query is an anytime search
		// (the exact Dijkstra solver stays available as a library for
		// certification, but cannot answer within serving deadlines on
		// arbitrary graphs). Costs are upper bounds unless the search
		// reports Complete; they are still monotone enough for sweeps
		// because every query seeds from the same baselines.
		g := inst.G
		s.g = g
		s.cost = func(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
			res, err := anytime.Search(ctx, g, b, lim, anytime.Options{})
			if errors.Is(err, anytime.ErrInfeasible) {
				return infCost, nil
			}
			if err != nil {
				return 0, err
			}
			return res.Cost, nil
		}
		s.sched = func(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
			res, err := anytime.Search(ctx, g, b, lim, anytime.Options{})
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		}
	default:
		return nil, fmt.Errorf("solve: unknown family %q", inst.Family)
	}
	s.lb = core.LowerBound(s.g)
	s.minExist = core.MinExistenceBudget(s.g)
	if len(inst.Deltas) > 0 {
		s.baseW = snapshotWeights(s.g)
		if _, err := s.PatchTo(inst.Deltas); err != nil {
			return nil, err
		}
	} else if s.patch != nil {
		s.baseW = snapshotWeights(s.g)
	}
	return s, nil
}

func snapshotWeights(g *cdag.Graph) []cdag.Weight {
	w := make([]cdag.Weight, g.Len())
	for v := range w {
		w[v] = g.Weight(cdag.NodeID(v))
	}
	return w
}

// Label returns the human-readable instance label.
func (s *Session) Label() string { return s.label }

// Graph returns the underlying CDAG.
func (s *Session) Graph() *cdag.Graph { return s.g }

// LowerBound returns the cached Proposition 2.4 lower bound.
func (s *Session) LowerBound() cdag.Weight { return s.lb }

// MinExistence returns the cached Proposition 2.3 existence bound.
func (s *Session) MinExistence() cdag.Weight { return s.minExist }

// CostCtx returns the optimal cost under the budget against the warm
// state (the family Inf sentinel when infeasible); it satisfies
// memdesign.CostQuerier, so the session plugs into the memdesign
// search helpers. Resource limits in lim are per query.
func (s *Session) CostCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	defer s.flush()
	return s.costCtx(ctx, lim, b)
}

// costCtx is CostCtx without the metrics flush, for sweep internals
// that flush once per sweep instead of once per budget.
func (s *Session) costCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (cdag.Weight, error) {
	if b < s.minExist {
		return infCost, nil
	}
	return s.cost(ctx, lim, b)
}

// ScheduleCtx generates an optimal schedule under the budget against
// the warm state. Unlike Run it neither validates the schedule nor
// degrades to the baseline — callers wanting the hardened contract
// wrap the instance in Run.
func (s *Session) ScheduleCtx(ctx context.Context, lim guard.Limits, b cdag.Weight) (core.Schedule, error) {
	defer s.flush()
	return s.sched(ctx, lim, b)
}

// SweepCosts answers every budget in order against the warm state,
// appending one CostPoint per budget to out (pass a retained out[:0]
// for allocation-free steady state; nil grows a fresh slice).
//
// Per-budget failures — deadline, resource budget, a solver panic —
// are recorded on that budget's CostPoint and the sweep continues, so
// a mid-sweep deadline yields valid answers for the budgets served
// before it; no-poison memoization keeps the session reusable after
// any abort. Cancellation stops the sweep (the caller is gone) and
// returns the partial prefix with guard.ErrCanceled. Each item passes
// through par.Fault, so par.SetFaultHook fault-injection tests
// exercise this path like any pool worker.
func (s *Session) SweepCosts(ctx context.Context, lim guard.Limits, budgets []cdag.Weight, out []CostPoint) ([]CostPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One metrics flush covers the whole sweep: per-budget flushing
	// would double the cost of an all-warm sweep.
	defer s.flush()
	for i, b := range budgets {
		cp := s.costPoint(ctx, lim, i, b)
		out = append(out, cp)
		if cp.Err != nil && errors.Is(cp.Err, guard.ErrCanceled) {
			return out, guard.ErrCanceled
		}
	}
	return out, nil
}

// costPoint answers one budget with pool-worker crash isolation: a
// panicking solver (or injected fault) surfaces as a *par.PanicError
// on the point, never as a process crash, and the deferred guard
// teardown in the family sessions keeps their memo state consistent.
func (s *Session) costPoint(ctx context.Context, lim guard.Limits, i int, b cdag.Weight) (cp CostPoint) {
	cp.Budget = b
	defer func() {
		if r := recover(); r != nil {
			cp = CostPoint{Budget: b, Err: &par.PanicError{Index: i, Value: r, Stack: debug.Stack()}}
		}
	}()
	par.Fault(i)
	c, err := s.costCtx(ctx, lim, b)
	if err != nil {
		cp.Err = err
		return cp
	}
	cp.Cost = c
	cp.Feasible = c < infCost
	return cp
}

// SolveSweep is the multi-budget entry point: it builds one warm
// session for the instance and answers the whole budget list from it.
// Results are deterministic and identical to independent one-shot
// solves at each budget — the memo only changes how much work each
// query performs, never its answer.
func SolveSweep(ctx context.Context, inst Instance, budgets []cdag.Weight, lim guard.Limits) ([]CostPoint, error) {
	s, err := NewSession(inst)
	if err != nil {
		return nil, err
	}
	return s.SweepCosts(ctx, lim, budgets, make([]CostPoint, 0, len(budgets)))
}
