package solve

import (
	"context"
	"errors"
	"testing"
	"time"

	"wrbpg/internal/cdag"
	"wrbpg/internal/core"
	"wrbpg/internal/dwt"
	"wrbpg/internal/guard"
	"wrbpg/internal/ktree"
	"wrbpg/internal/mvm"
	"wrbpg/internal/wcfg"
)

func mvmProblem(t *testing.T, m, n int) (Problem, *mvm.Graph) {
	t.Helper()
	g, err := mvm.Build(m, n, wcfg.Equal(8))
	if err != nil {
		t.Fatal(err)
	}
	return MVM(g), g
}

// delayed wraps a problem's optimal solver with a context-respecting
// stall, simulating a solver that is too slow for the deadline without
// depending on the real solver's (microsecond) runtime.
func delayed(p Problem, d time.Duration) Problem {
	inner := p.Optimal
	p.Optimal = func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, guard.Wrap(ctx.Err())
		}
		return inner(ctx, lim, budget)
	}
	return p
}

func TestRunOptimalPath(t *testing.T) {
	g, err := dwt.Build(16, 4, dwt.ConfigWeights(wcfg.Equal(8)))
	if err != nil {
		t.Fatal(err)
	}
	budget := core.MinExistenceBudget(g.G) + 64
	out, err := Run(context.Background(), DWT(g), budget, guard.Limits{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceOptimal {
		t.Fatalf("Source = %v, want optimal", out.Source)
	}
	if out.Err != nil {
		t.Fatalf("Outcome.Err = %v on the optimal path", out.Err)
	}
	if len(out.Schedule) == 0 {
		t.Fatal("empty schedule")
	}
	if _, err := core.Simulate(g.G, budget, out.Schedule); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
}

// TestRunDeadlineDegrades: a 1 ms deadline on a large MVM instance
// whose solver stalls degrades to the baseline, and the fallback
// schedule passes core.Simulate.
func TestRunDeadlineDegrades(t *testing.T) {
	p, g := mvmProblem(t, 64, 48)
	budget := g.TilingMinBudget() + 256
	out, err := Run(context.Background(), delayed(p, 200*time.Millisecond), budget,
		guard.Limits{Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if !errors.Is(out.Err, guard.ErrDeadline) {
		t.Fatalf("Outcome.Err = %v, want guard.ErrDeadline", out.Err)
	}
	if _, err := core.Simulate(g.G, budget, out.Schedule); err != nil {
		t.Fatalf("fallback schedule invalid: %v", err)
	}
}

// TestRunHungSolver: a solver that ignores its context entirely is
// abandoned at the deadline; the caller still gets a validated
// fallback schedule within ~the deadline, not after the hang.
func TestRunHungSolver(t *testing.T) {
	p, g := mvmProblem(t, 32, 24)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	p.Optimal = func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
		<-release // ignores ctx: simulates a genuinely hung solver
		return nil, errors.New("never reached in time")
	}
	budget := g.TilingMinBudget() + 256
	start := time.Now()
	out, err := Run(context.Background(), p, budget, guard.Limits{Deadline: 50 * time.Millisecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if !errors.Is(out.Err, guard.ErrDeadline) {
		t.Fatalf("Outcome.Err = %v, want guard.ErrDeadline", out.Err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Run took %v; the hung solver was not abandoned", elapsed)
	}
	if _, err := core.Simulate(g.G, budget, out.Schedule); err != nil {
		t.Fatalf("fallback schedule invalid: %v", err)
	}
}

// TestRunPanicDegrades: a panicking solver is recovered and degraded,
// not propagated as a crash.
func TestRunPanicDegrades(t *testing.T) {
	p, g := mvmProblem(t, 16, 12)
	p.Optimal = func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
		panic("solver bug")
	}
	budget := g.TilingMinBudget() + 256
	out, err := Run(context.Background(), p, budget, guard.Limits{Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if out.Err == nil || out.Err.Error() == "" {
		t.Fatal("panic reason missing from Outcome.Err")
	}
}

// TestRunBudgetExhaustionDegrades: exact search under a tiny MaxStates
// limit trips guard.ErrBudgetExceeded and degrades to the greedy
// baseline on an arbitrary CDAG.
func TestRunBudgetExhaustionDegrades(t *testing.T) {
	tr, err := ktree.FullTree(2, 3, func(d, i int) cdag.Weight { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	budget := core.MinExistenceBudget(tr.G) + 8
	out, err := Run(context.Background(), Exact(tr.G), budget,
		guard.Limits{MaxStates: 3, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if !errors.Is(out.Err, guard.ErrBudgetExceeded) {
		t.Fatalf("Outcome.Err = %v, want guard.ErrBudgetExceeded", out.Err)
	}
	if _, err := core.Simulate(tr.G, budget, out.Schedule); err != nil {
		t.Fatalf("fallback schedule invalid: %v", err)
	}
}

// TestRunCanceledDoesNotDegrade: cancellation means the caller is
// gone; Run returns the typed error and no fallback schedule.
func TestRunCanceledDoesNotDegrade(t *testing.T) {
	p, g := mvmProblem(t, 32, 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Run(ctx, delayed(p, time.Second), g.TilingMinBudget()+256, guard.Limits{})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want guard.ErrCanceled", err)
	}
	if out.Schedule != nil {
		t.Fatal("cancellation must not produce a fallback schedule")
	}
}

// TestRunKTreeOptimal exercises the ktree constructor end to end.
func TestRunKTreeOptimal(t *testing.T) {
	tr, err := ktree.FullTree(3, 3, func(d, i int) cdag.Weight { return 1 + cdag.Weight(i%2) })
	if err != nil {
		t.Fatal(err)
	}
	budget := core.MinExistenceBudget(tr.G) + 16
	out, err := Run(context.Background(), KTree(tr), budget, guard.Limits{Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceOptimal {
		t.Fatalf("Source = %v, want optimal", out.Source)
	}
	if _, err := core.Simulate(tr.G, budget, out.Schedule); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
}

// TestRunInvalidOptimalDegrades: a solver returning a bogus schedule
// fails validation and degrades.
func TestRunInvalidOptimalDegrades(t *testing.T) {
	p, g := mvmProblem(t, 16, 12)
	p.Optimal = func(ctx context.Context, lim guard.Limits, budget cdag.Weight) (core.Schedule, error) {
		// M2 on a node with no red pebble is always invalid.
		return core.Schedule{{Kind: core.M2, Node: g.Output(1)}}, nil
	}
	budget := g.TilingMinBudget() + 256
	out, err := Run(context.Background(), p, budget, guard.Limits{Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceFallback {
		t.Fatalf("Source = %v, want fallback", out.Source)
	}
	if out.Err == nil {
		t.Fatal("validation failure missing from Outcome.Err")
	}
}

func TestSourceString(t *testing.T) {
	if SourceOptimal.String() != "optimal" || SourceFallback.String() != "fallback" {
		t.Fatal("Source.String mismatch")
	}
}
