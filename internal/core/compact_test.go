package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
)

func TestCompactDropsUselessLoad(t *testing.T) {
	g, a, b, c := pair(1, 1, 1)
	s := Schedule{
		{M1, a}, {M4, a}, // useless round trip
		{M1, a}, {M1, b}, {M3, c}, {M2, c}, {M4, a}, {M4, b}, {M4, c},
	}
	out := Compact(g, s)
	if len(out) != len(s)-2 {
		t.Fatalf("compacted to %d moves, want %d", len(out), len(s)-2)
	}
	if _, err := Simulate(g, 3, out); err != nil {
		t.Fatal(err)
	}
}

func TestCompactDropsUselessStore(t *testing.T) {
	// A chain x→mid→end where the middle node is pointlessly stored.
	g2 := &cdag.Graph{}
	x := g2.AddNode(1, "x")
	mid := g2.AddNode(1, "mid", x)
	end := g2.AddNode(1, "end", mid)
	sched := Schedule{
		{M1, x}, {M3, mid}, {M2, mid}, // useless store: mid is re-used red, never reloaded
		{M4, x}, {M3, end}, {M2, end}, {M4, mid}, {M4, end},
	}
	out := Compact(g2, sched)
	if len(out) != len(sched)-1 {
		t.Fatalf("compacted to %d moves, want %d", len(out), len(sched)-1)
	}
	for _, m := range out {
		if m.Kind == M2 && m.Node == mid {
			t.Fatal("useless store survived")
		}
	}
	if _, err := Simulate(g2, 3, out); err != nil {
		t.Fatal(err)
	}
}

func TestCompactKeepsNeededStore(t *testing.T) {
	// Spill-and-reload of a computed value: every move is load-bearing.
	g2 := &cdag.Graph{}
	x1 := g2.AddNode(1, "x1")
	x2 := g2.AddNode(1, "x2")
	m1 := g2.AddNode(1, "m1", x1, x2)
	m2 := g2.AddNode(1, "m2", x1, x2)
	out := g2.AddNode(1, "out", m1, m2)
	sched := Schedule{
		{M1, x1}, {M1, x2}, {M3, m1}, {M2, m1}, {M4, m1}, // spill m1
		{M3, m2}, {M4, x1}, {M4, x2},
		{M1, m1}, // reload
		{M3, out}, {M2, out}, {M4, m1}, {M4, m2}, {M4, out},
	}
	if _, err := Simulate(g2, 3, sched); err != nil {
		t.Fatal(err)
	}
	c2 := Compact(g2, sched)
	if len(c2) != len(sched) {
		t.Fatalf("compaction altered a tight schedule: %d -> %d", len(sched), len(c2))
	}
}

// TestCompactIdempotentAndSound: inject junk into optimal schedules;
// compaction must strip it back while preserving validity, cost and
// the stopping condition.
func TestCompactIdempotentAndSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, a, b, c := pair(cdag.Weight(1+rng.Intn(3)), cdag.Weight(1+rng.Intn(3)), cdag.Weight(1+rng.Intn(3)))
		base := Schedule{{M1, a}, {M1, b}, {M3, c}, {M2, c}, {M4, a}, {M4, b}, {M4, c}}
		big := g.TotalWeight()
		// Inject junk: useless load/evict pairs at random points.
		junk := base
		for k := 0; k < 1+rng.Intn(3); k++ {
			v := []cdag.NodeID{a, b}[rng.Intn(2)]
			pos := rng.Intn(len(junk) + 1)
			ins := Schedule{{M1, v}, {M4, v}}
			// Only inject where v is currently blue and not red: at
			// the very start is always safe; elsewhere simulate to
			// check.
			cand := append(append(append(Schedule{}, junk[:pos]...), ins...), junk[pos:]...)
			if _, err := Simulate(g, big, cand); err == nil {
				junk = cand
			}
		}
		compacted := Compact(g, junk)
		statsC, err := Simulate(g, big, compacted)
		if err != nil {
			return false
		}
		statsB, err := Simulate(g, big, base)
		if err != nil {
			return false
		}
		if statsC.Cost > statsB.Cost {
			return false
		}
		// Idempotent.
		again := Compact(g, compacted)
		return len(again) == len(compacted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCompactOnRealSchedules: compaction leaves the optimal DWT and
// tiling schedules untouched (they contain no fat) — checked
// indirectly: cost and validity preserved, length never grows.
func TestCompactNeverBreaksValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random chain with a random valid greedy schedule.
		g := &cdag.Graph{}
		prev := g.AddNode(cdag.Weight(1+rng.Intn(2)), "x")
		var sched Schedule
		sched = append(sched, Move{M1, prev})
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			v := g.AddNode(cdag.Weight(1+rng.Intn(2)), "n", prev)
			sched = append(sched, Move{M3, v}, Move{M4, prev})
			prev = v
		}
		sched = append(sched, Move{M2, prev}, Move{M4, prev})
		big := g.TotalWeight()
		before, err := Simulate(g, big, sched)
		if err != nil {
			return false
		}
		out := Compact(g, sched)
		after, err := Simulate(g, big, out)
		if err != nil {
			return false
		}
		return after.Cost <= before.Cost && len(out) <= len(sched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
