package core

import (
	"strings"
	"testing"
)

// FuzzParseSchedule: the firmware text format must never panic and
// must round-trip whatever it accepts.
func FuzzParseSchedule(f *testing.F) {
	f.Add("M1 0\nM3 2\nM2 2\n")
	f.Add("# comment\n\nM4 1")
	f.Add("M9 1")
	f.Add("M1 -3")
	f.Add("M1 99999999999999999999")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSchedule(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must survive a marshal/parse round trip.
		data, err := s.MarshalText()
		if err != nil {
			t.Fatalf("marshal of accepted schedule failed: %v", err)
		}
		var back Schedule
		if err := back.UnmarshalText(data); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back) != len(s) {
			t.Fatalf("round trip changed length: %d vs %d", len(back), len(s))
		}
		for i := range s {
			if back[i] != s[i] {
				t.Fatalf("round trip changed move %d", i)
			}
		}
	})
}
