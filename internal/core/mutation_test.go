package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrbpg/internal/cdag"
)

// Adversarial mutation tests: corrupting a valid schedule must never
// yield a valid schedule that beats the known optimum, and most
// corruptions must be rejected outright by the simulator. This is the
// failure-injection counterpart of the constructive tests — it checks
// that the rule checker has no blind spots the schedulers could
// accidentally exploit.

// optimalPairSchedule returns the cost-9 optimal schedule for the
// 2/3/4-weighted pair graph.
func optimalPairSchedule() Schedule {
	return Schedule{{M1, 0}, {M1, 1}, {M3, 2}, {M2, 2}, {M4, 0}, {M4, 1}, {M4, 2}}
}

func mutate(rng *rand.Rand, s Schedule) Schedule {
	out := append(Schedule(nil), s...)
	if len(out) == 0 {
		return out
	}
	switch rng.Intn(4) {
	case 0: // drop a move
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	case 1: // duplicate a move
		i := rng.Intn(len(out))
		out = append(out[:i+1], append(Schedule{out[i]}, out[i+1:]...)...)
	case 2: // swap adjacent moves
		if len(out) >= 2 {
			i := rng.Intn(len(out) - 1)
			out[i], out[i+1] = out[i+1], out[i]
		}
	default: // retarget a move to a random node
		i := rng.Intn(len(out))
		out[i].Node = cdag.NodeID(rng.Intn(3))
	}
	return out
}

// TestMutationsNeverBeatOptimum: on the pair graph, whose optimum (9)
// equals the algorithmic lower bound, no sequence of mutations can
// produce a valid schedule costing less.
func TestMutationsNeverBeatOptimum(t *testing.T) {
	g, _, _, _ := pair(2, 3, 4)
	base := optimalPairSchedule()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := base
		for i := 0; i <= rng.Intn(4); i++ {
			s = mutate(rng, s)
		}
		stats, err := Simulate(g, 9, s)
		if err != nil {
			return true // rejected: fine
		}
		return stats.Cost >= 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDroppingLoadBreaksSchedule: removing any M1 or the M3 or the M2
// from the pair schedule must invalidate it.
func TestDroppingEssentialMoves(t *testing.T) {
	g, _, _, _ := pair(2, 3, 4)
	base := optimalPairSchedule()
	for i := 0; i < 4; i++ { // the first four moves are all essential
		s := append(Schedule{}, base[:i]...)
		s = append(s, base[i+1:]...)
		if _, err := Simulate(g, 9, s); err == nil {
			t.Errorf("dropping move %d (%v) should invalidate the schedule", i, base[i])
		}
	}
}

// TestReorderingComputeBeforeLoadFails.
func TestReorderingComputeBeforeLoadFails(t *testing.T) {
	g, _, _, _ := pair(2, 3, 4)
	s := Schedule{{M3, 2}, {M1, 0}, {M1, 1}, {M2, 2}}
	if _, err := Simulate(g, 9, s); err == nil {
		t.Error("compute before loads accepted")
	}
}

// TestBudgetFuzzNeverUndercounts: for random small chains, the
// simulator's peak always bounds the budget check — a schedule valid
// at budget B is valid at every B' ≥ B and invalid below its peak.
func TestBudgetFuzzNeverUndercounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &cdag.Graph{}
		prev := g.AddNode(cdag.Weight(1+rng.Intn(3)), "x")
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			prev = g.AddNode(cdag.Weight(1+rng.Intn(3)), "n", prev)
		}
		// Greedy chain schedule.
		var s Schedule
		var last cdag.NodeID
		for v := 0; v < g.Len(); v++ {
			id := cdag.NodeID(v)
			if g.IsSource(id) {
				s = append(s, Move{M1, id})
			} else {
				s = append(s, Move{M3, id})
				s = append(s, Move{M4, last})
			}
			last = id
		}
		s = append(s, Move{M2, last}, Move{M4, last})
		big := g.TotalWeight()
		stats, err := Simulate(g, big, s)
		if err != nil {
			return false
		}
		if _, err := Simulate(g, stats.PeakRedWeight, s); err != nil {
			return false // must be valid exactly at its peak
		}
		if _, err := Simulate(g, stats.PeakRedWeight-1, s); err == nil {
			return false // must fail below its peak
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
