package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wrbpg/internal/cdag"
)

// Schedules are deployment artifacts: in the paper's domain they are
// compiled offline and burned into an implant's firmware alongside
// the memory design they were sized for. This file provides two
// interchange formats — a line-oriented text format ("M1 3") that is
// trivial to parse from C firmware, and JSON for tooling — plus a
// manifest type binding a schedule to the graph and budget it was
// generated for.

// MarshalText renders the schedule one move per line: "<kind> <node>".
func (s Schedule) MarshalText() ([]byte, error) {
	var b strings.Builder
	for _, m := range s {
		fmt.Fprintf(&b, "%s %d\n", m.Kind, m.Node)
	}
	return []byte(b.String()), nil
}

// UnmarshalText parses the line-oriented format produced by
// MarshalText. Blank lines and lines starting with '#' are ignored.
func (s *Schedule) UnmarshalText(data []byte) error {
	parsed, err := ParseSchedule(strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ParseSchedule reads the text format from r.
func ParseSchedule(r io.Reader) (Schedule, error) {
	var out Schedule
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("core: schedule line %d: want \"<kind> <node>\", got %q", line, text)
		}
		var kind MoveKind
		switch fields[0] {
		case "M1":
			kind = M1
		case "M2":
			kind = M2
		case "M3":
			kind = M3
		case "M4":
			kind = M4
		default:
			return nil, fmt.Errorf("core: schedule line %d: unknown move kind %q", line, fields[0])
		}
		node, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || node < 0 {
			return nil, fmt.Errorf("core: schedule line %d: bad node %q", line, fields[1])
		}
		out = append(out, Move{Kind: kind, Node: cdag.NodeID(node)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// moveJSON is the JSON wire form of a move.
type moveJSON struct {
	Kind string      `json:"kind"`
	Node cdag.NodeID `json:"node"`
}

// MarshalJSON encodes the schedule as an array of {kind, node}.
func (s Schedule) MarshalJSON() ([]byte, error) {
	out := make([]moveJSON, len(s))
	for i, m := range s {
		out[i] = moveJSON{Kind: m.Kind.String(), Node: m.Node}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the array form.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var raw []moveJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Schedule, len(raw))
	for i, m := range raw {
		switch m.Kind {
		case "M1":
			out[i] = Move{M1, m.Node}
		case "M2":
			out[i] = Move{M2, m.Node}
		case "M3":
			out[i] = Move{M3, m.Node}
		case "M4":
			out[i] = Move{M4, m.Node}
		default:
			return fmt.Errorf("core: unknown move kind %q at index %d", m.Kind, i)
		}
	}
	*s = out
	return nil
}

// Manifest binds a schedule to the budget and expected metrics it was
// generated under, so a loader can refuse a schedule that does not
// match its memory design.
type Manifest struct {
	// Workload is a free-form label, e.g. "DWT(256,8)/Equal".
	Workload string `json:"workload"`
	// BudgetBits is the fast-memory budget the schedule was sized for.
	BudgetBits cdag.Weight `json:"budget_bits"`
	// CostBits and PeakBits are the expected weighted I/O and peak
	// residency; Verify checks them.
	CostBits cdag.Weight `json:"cost_bits"`
	PeakBits cdag.Weight `json:"peak_bits"`
	// Moves is the schedule itself.
	Moves Schedule `json:"moves"`
}

// NewManifest simulates the schedule and records its metrics.
func NewManifest(workload string, g *cdag.Graph, budget cdag.Weight, s Schedule) (*Manifest, error) {
	stats, err := Simulate(g, budget, s)
	if err != nil {
		return nil, err
	}
	return &Manifest{
		Workload:   workload,
		BudgetBits: budget,
		CostBits:   stats.Cost,
		PeakBits:   stats.PeakRedWeight,
		Moves:      s,
	}, nil
}

// Verify re-simulates the manifest against a graph and confirms the
// recorded metrics still hold — the loader-side check.
func (m *Manifest) Verify(g *cdag.Graph) error {
	stats, err := Simulate(g, m.BudgetBits, m.Moves)
	if err != nil {
		return fmt.Errorf("core: manifest %q: %w", m.Workload, err)
	}
	if stats.Cost != m.CostBits {
		return fmt.Errorf("core: manifest %q: cost %d != recorded %d", m.Workload, stats.Cost, m.CostBits)
	}
	if stats.PeakRedWeight != m.PeakBits {
		return fmt.Errorf("core: manifest %q: peak %d != recorded %d", m.Workload, stats.PeakRedWeight, m.PeakBits)
	}
	return nil
}

// WriteManifest serializes a manifest as indented JSON.
func WriteManifest(w io.Writer, m *Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses a manifest written by WriteManifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
