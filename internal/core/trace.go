package core

import (
	"strings"

	"wrbpg/internal/cdag"
)

// OccupancyTrace replays a schedule and returns the red weight after
// every move (index 0 is the starting state) — the fast-memory
// occupancy timeline hardware designers read sizing decisions from.
func OccupancyTrace(g *cdag.Graph, budget cdag.Weight, s Schedule) ([]cdag.Weight, error) {
	st := NewState(g, budget)
	out := make([]cdag.Weight, 0, len(s)+1)
	out = append(out, 0)
	for i, m := range s {
		if _, err := st.Apply(m); err != nil {
			re := err.(*RuleError)
			re.Index = i
			return nil, re
		}
		out = append(out, st.RedWeight())
	}
	return out, nil
}

// sparkRunes are the eight fill levels of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders an occupancy trace as a fixed-width terminal
// sparkline scaled to the budget; width ≤ 0 defaults to 80 columns.
// Each column shows the maximum occupancy of its time slice, so
// budget-critical spikes always remain visible.
func Sparkline(trace []cdag.Weight, budget cdag.Weight, width int) string {
	if len(trace) == 0 || budget <= 0 {
		return ""
	}
	if width <= 0 {
		width = 80
	}
	if width > len(trace) {
		width = len(trace)
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		lo := c * len(trace) / width
		hi := (c + 1) * len(trace) / width
		if hi <= lo {
			hi = lo + 1
		}
		var max cdag.Weight
		for _, v := range trace[lo:hi] {
			if v > max {
				max = v
			}
		}
		idx := int(int64(max) * int64(len(sparkRunes)-1) / int64(budget))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
