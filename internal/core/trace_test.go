package core

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestOccupancyTrace(t *testing.T) {
	g, a, b, c := pair(2, 3, 4)
	sched := Schedule{{M1, a}, {M1, b}, {M3, c}, {M2, c}, {M4, a}, {M4, b}, {M4, c}}
	trace, err := OccupancyTrace(g, 9, sched)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 5, 9, 9, 7, 4, 0}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if int64(trace[i]) != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if _, err := OccupancyTrace(g, 8, sched); err == nil {
		t.Error("over-budget trace should fail")
	}
}

func TestSparkline(t *testing.T) {
	g, a, b, c := pair(2, 3, 4)
	sched := Schedule{{M1, a}, {M1, b}, {M3, c}, {M2, c}, {M4, a}, {M4, b}, {M4, c}}
	trace, err := OccupancyTrace(g, 9, sched)
	if err != nil {
		t.Fatal(err)
	}
	s := Sparkline(trace, 9, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Errorf("sparkline width = %d, want 8", utf8.RuneCountInString(s))
	}
	if !strings.ContainsRune(s, '█') {
		t.Errorf("peak at budget should render full block: %q", s)
	}
	if !strings.ContainsRune(s, '▁') {
		t.Errorf("empty start should render empty block: %q", s)
	}
	// Degenerate inputs.
	if Sparkline(nil, 9, 8) != "" || Sparkline(trace, 0, 8) != "" {
		t.Error("degenerate sparkline should be empty")
	}
	// Width capped at trace length.
	if got := utf8.RuneCountInString(Sparkline(trace, 9, 100)); got != len(trace) {
		t.Errorf("capped width = %d", got)
	}
	// Default width.
	if utf8.RuneCountInString(Sparkline(trace, 9, 0)) == 0 {
		t.Error("default width should render")
	}
}
